//===- bench/fig20_aging_overhead.cpp - Figure 20 reproduction --------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// Figure 20: the cost of the aging *mechanism itself* — aging with
// threshold 2 promotes after one survived collection, exactly like the
// simple policy, so any difference is pure overhead: the age-table sweeps,
// the always-on card marking, and the Section 7.2 three-step card
// clearing.  Paper: mostly negative (aging costs up to 14%).
//
// Reported as % improvement of aging(threshold 2) over the simple
// promotion mechanism, per young size, with object marking.
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <cstdio>

#include "harness/BenchHarness.h"

using namespace gengc;
using namespace gengc::bench;
using namespace gengc::workload;

namespace {
struct PaperRow {
  const char *Name;
  double Values[4]; // 1m 2m 4m 8m
};
} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Base = parseBenchOptions(
      Argc, Argv, {.Run = {.Scale = 0.5, .Reps = 3}});
  printFigureHeader("Figure 20",
                    "overhead of aging (threshold 2) vs simple promotion");

  const PaperRow Paper[] = {
      {"compress", {0.09, -0.18, -0.97, -0.16}},
      {"jess", {-3.21, -3.43, -3.54, -1.24}},
      {"db", {-1.38, -0.99, 0.16, 0.34}},
      {"javac", {-14.06, -10.69, -7.51, -0.62}},
      {"mtrt", {-14.40, -11.57, -9.06, -1.74}},
      {"jack", {-3.01, -2.88, -1.48, 0.40}},
      {"anagram", {-2.11, -9.10, -3.63, 3.34}},
  };
  const unsigned YoungMb[] = {1, 2, 4, 8};

  Table T({"benchmark", "1m (paper/meas)", "2m", "4m", "8m"});
  for (const PaperRow &Row : Paper) {
    Profile P = profileByName(Row.Name);
    std::vector<std::string> Cells{Row.Name};
    for (unsigned Y = 0; Y < 4; ++Y) {
      BenchOptions Simple = Base;
      Simple.YoungBytes = uint64_t(YoungMb[Y]) << 20;
      BenchOptions Aging = Simple;
      Aging.Aging = true;
      Aging.OldestAge = 2;

      // Median over paired runs of (simple, aging-2).
      std::vector<double> Deltas;
      for (unsigned Rep = 0; Rep < Base.Run.Reps; ++Rep) {
        Profile Shifted = P;
        Shifted.Seed += Rep;
        BenchOptions One = Simple;
        One.Run.Reps = 1;
        RunResult SimpleRun =
            runMedian(Shifted, CollectorChoice::Generational, One);
        One = Aging;
        One.Run.Reps = 1;
        RunResult AgingRun =
            runMedian(Shifted, CollectorChoice::Generational, One);
        double SimpleCpu = metricValue(Shifted, SimpleRun, Metric::CpuSeconds);
        double AgingCpu = metricValue(Shifted, AgingRun, Metric::CpuSeconds);
        Deltas.push_back(SimpleCpu > 0
                             ? 100.0 * (SimpleCpu - AgingCpu) / SimpleCpu
                             : 0.0);
      }
      std::sort(Deltas.begin(), Deltas.end());
      Cells.push_back(Table::percent(Row.Values[Y]) + " / " +
                      Table::percent(Deltas[Deltas.size() / 2]));
    }
    T.addRow(Cells);
  }
  T.print(stdout);
  printFigureFooter();
  return 0;
}

//===- bench/fig22_dirty_cards.cpp - Figure 22 reproduction -----------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// Figure 22: the percentage of allocated cards that are dirty at partial
// collections, per card size.  Shape: bigger cards mean a larger dirty
// percentage (one store dirties a wider region); anagram stays near zero
// at every size (almost no reference stores), jess reaches 60%.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "harness/BenchHarness.h"

using namespace gengc;
using namespace gengc::bench;
using namespace gengc::workload;

namespace {
struct PaperRow {
  const char *Name;
  double Values[9]; // 16..4096
};
} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Base = parseBenchOptions(
      Argc, Argv, {.Run = {.Scale = 0.5, .Reps = 1}});
  printFigureHeader("Figure 22", "% dirty cards of allocated cards");

  const PaperRow Paper[] = {
      {"compress", {0.01, 0.01, 0.02, 0.04, 0.05, 0.08, 0.11, 0.18, 0.27}},
      {"jess",
       {15.81, 30.70, 42.85, 50.16, 53.43, 56.65, 59.46, 59.08, 61.18}},
      {"db",
       {19.96, 19.97, 20.20, 20.41, 20.58, 20.64, 20.55, 20.80, 21.36}},
      {"javac",
       {9.58, 17.54, 26.41, 32.18, 38.51, 43.67, 48.47, 52.81, 59.49}},
      {"mtrt", {1.76, 3.73, 4.92, 6.90, 9.33, 12.59, 17.40, 23.54, 29.99}},
      {"jack",
       {17.66, 28.71, 32.51, 34.47, 35.19, 38.41, 40.01, 40.53, 44.11}},
      {"anagram", {1.14, 0.78, 2.07, 1.22, 1.22, 1.25, 1.22, 1.23, 1.31}},
  };

  std::vector<std::string> Header{"benchmark"};
  for (uint32_t Card = 16; Card <= 4096; Card *= 2)
    Header.push_back(std::to_string(Card) + "B");
  Table T(Header);

  for (const PaperRow &Row : Paper) {
    Profile P = profileByName(Row.Name);
    std::vector<std::string> Cells{Row.Name};
    unsigned Idx = 0;
    for (uint32_t Card = 16; Card <= 4096; Card *= 2, ++Idx) {
      BenchOptions Options = Base;
      Options.CardBytes = Card;
      RunResult Gen =
          runMedian(P, CollectorChoice::Generational, Options);
      double Dirty =
          Gen.Gc.mean(CycleKind::Partial, &CycleStats::DirtyCardsAtStart);
      double Allocated =
          Gen.Gc.mean(CycleKind::Partial, &CycleStats::AllocatedCards);
      double Pct = Allocated > 0 ? 100.0 * Dirty / Allocated : 0.0;
      Cells.push_back(Table::number(Row.Values[Idx], 2) + "/" +
                      Table::number(Pct, 2));
    }
    T.addRow(Cells);
  }
  T.print(stdout);
  std::printf("\n(cells: paper %% / measured %%)\n");
  printFigureFooter();
  return 0;
}

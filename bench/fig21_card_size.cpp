//===- bench/fig21_card_size.cpp - Figure 21 reproduction -------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// Figure 21: % improvement of generations for every power-of-two card size
// from 16 to 4096 bytes (young generation fixed at 4 MB).  Paper shape:
// card size barely matters for most benchmarks; javac prefers the smallest
// cards, anagram the largest, jess likes the two extremes.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "harness/BenchHarness.h"

using namespace gengc;
using namespace gengc::bench;
using namespace gengc::workload;

namespace {
struct PaperRow {
  const char *Name;
  double Values[9]; // 16..4096
};
} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Base = parseBenchOptions(
      Argc, Argv, {.Run = {.Scale = 0.5, .Reps = 1}});
  printFigureHeader("Figure 21", "% improvement per card size (16..4096)");

  const PaperRow Paper[] = {
      {"compress",
       {0.11, 0.16, 0.10, -0.41, 0.25, 0.33, 0.40, 0.46, 0.62}},
      {"jess",
       {-4.25, -4.02, -6.64, -9.17, -7.24, -7.17, -6.96, -7.01, -6.65}},
      {"db", {-0.45, -0.87, -0.30, -0.03, -0.70, 0.06, -0.12, 0.33, -0.63}},
      {"javac",
       {18.82, 16.22, 15.50, 14.78, 13.88, 13.21, 12.22, 11.87, 11.83}},
      {"mtrt", {9.05, 7.72, 9.58, 8.36, 9.11, 9.63, 8.24, 8.78, 8.90}},
      {"jack",
       {-7.43, -6.24, -7.01, -6.12, -6.79, -7.16, -6.78, -6.72, -6.50}},
      {"anagram",
       {23.61, 18.92, 24.04, 28.59, 31.35, 33.09, 33.41, 34.48, 35.24}},
  };

  std::vector<std::string> Header{"benchmark"};
  for (uint32_t Card = 16; Card <= 4096; Card *= 2)
    Header.push_back(std::to_string(Card) + "B");
  Table T(Header);

  for (const PaperRow &Row : Paper) {
    Profile P = profileByName(Row.Name);
    std::vector<std::string> Cells{Row.Name};
    unsigned Idx = 0;
    for (uint32_t Card = 16; Card <= 4096; Card *= 2, ++Idx) {
      BenchOptions Options = Base;
      Options.CardBytes = Card;
      double Measured =
            medianImprovement(P, Options, Metric::CpuSeconds);
      Cells.push_back(Table::percent(Row.Values[Idx]) + "/" +
                      Table::percent(Measured));
    }
    T.addRow(Cells);
  }
  T.print(stdout);
  std::printf("\n(cells: paper %% / measured %%)\n");
  printFigureFooter();
  return 0;
}

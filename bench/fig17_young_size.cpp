//===- bench/fig17_young_size.cpp - Figure 17 reproduction ------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// Figure 17: tuning the young-generation size for the SPECjvm benchmarks
// (plus Anagram): % improvement of generations under block marking and
// object marking with young sizes 1/2/4/8 MB.  Paper shape: no single best
// size, but 4 MB is the best average; tiny young generations hurt the
// promotion-heavy benchmarks (jess, javac at 1m) badly.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "harness/BenchHarness.h"

using namespace gengc;
using namespace gengc::bench;
using namespace gengc::workload;

namespace {
struct PaperRow {
  const char *Name;
  double Block[4];  // 1m 2m 4m 8m
  double Object[4]; // 1m 2m 4m 8m
};
} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Base = parseBenchOptions(
      Argc, Argv, {.Run = {.Scale = 0.5, .Reps = 1}});
  printFigureHeader("Figure 17", "young-size tuning, SPECjvm benchmarks");

  const PaperRow Paper[] = {
      {"compress", {-0.41, 0.19, -0.05, 0.46}, {-0.04, 0.11, 0.02, 0.29}},
      {"jess",
       {-22.44, -12.97, -5.05, -1.55},
       {-13.77, -8.72, -3.7, -5.66}},
      {"db", {-0.50, 0.44, -0.97, 0.15}, {-1.00, 0.11, -0.91, -0.22}},
      {"javac", {-16.73, -3.11, 10.89, 20.85}, {7.21, 13.24, 17.23, 19.57}},
      {"mtrt", {-2.16, 5.36, 9.49, 0.09}, {-5.48, 5.45, 7.01, -0.40}},
      {"jack", {-12.14, -6.27, -2.83, -14.84}, {-6.85, -3.45, -2.12, -2.23}},
      {"anagram", {14.43, 30.03, 37.17, 38.73}, {-8.67, 12.06, 24.67, 26.42}},
  };
  const unsigned YoungMb[] = {1, 2, 4, 8};

  for (bool ObjectMarking : {false, true}) {
    std::printf("-- %s --\n", ObjectMarking
                                  ? "object marking (16B cards)"
                                  : "block marking (4096B cards)");
    Table T({"benchmark", "1m (paper/meas)", "2m", "4m", "8m"});
    for (const PaperRow &Row : Paper) {
      Profile P = profileByName(Row.Name);
      std::vector<std::string> Cells{Row.Name};
      for (unsigned Y = 0; Y < 4; ++Y) {
        BenchOptions Options = Base;
        Options.YoungBytes = uint64_t(YoungMb[Y]) << 20;
        Options.CardBytes = ObjectMarking ? 16 : 4096;
        double Measured =
            medianImprovement(P, Options, Metric::CpuSeconds);
        double PaperValue =
            ObjectMarking ? Row.Object[Y] : Row.Block[Y];
        Cells.push_back(Table::percent(PaperValue) + " / " +
                        Table::percent(Measured));
      }
      T.addRow(Cells);
    }
    T.print(stdout);
    std::printf("\n");
  }
  printFigureFooter();
  return 0;
}

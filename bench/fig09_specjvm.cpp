//===- bench/fig09_specjvm.cpp - Figure 9 reproduction ----------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// Figure 9: percentage improvement of the generational collector for the
// SPECjvm benchmarks, multiprocessor and uniprocessor.  The shape to
// reproduce: mtrt and javac gain clearly, compress and db are flat, jess
// and jack lose a little (the paper's anti-generational benchmarks).
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "harness/BenchHarness.h"

using namespace gengc;
using namespace gengc::bench;
using namespace gengc::workload;

namespace {
struct PaperRow {
  const char *Name;
  double Multi;
  double Uni;
};
} // namespace

int main(int Argc, char **Argv) {
  printFigureHeader("Figure 9", "% improvement for SPECjvm benchmarks");

  const PaperRow Paper[] = {
      {"mtrt", 7.0, 25.2},   {"compress", 0.0, 2.0}, {"db", -0.9, 0.7},
      {"jess", -3.7, -2.5},  {"javac", 17.2, 15.3},  {"jack", -2.12, -7.7},
  };

  BenchOptions Options = parseBenchOptions(
      Argc, Argv, {.Run = {.Scale = 0.5, .Reps = 3}});

  Table T({"benchmark", "paper multi %", "paper uni %",
           "measured CPU-cost %", "measured wall-clock %"});
  for (const PaperRow &Row : Paper) {
    Profile P = profileByName(Row.Name);
    double CpuImp = medianImprovement(P, Options, Metric::CpuSeconds);
    double WallImp = medianImprovement(P, Options, Metric::Elapsed);
    T.addRow({std::string("_") + Row.Name, Table::percent(Row.Multi),
              Table::percent(Row.Uni), Table::percent(CpuImp),
              Table::percent(WallImp)});
  }
  T.print(stdout);
  std::printf("\nThe CPU-cost metric (mutator seconds + collector seconds) models the\n"
              "paper's saturated machine, where collector cycles displace mutator\n"
              "work; wall-clock on this 2-core host lets the collector hide on the\n"
              "spare core, which resembles the paper's lightly-loaded case.\n");
  T.print(stdout);
  printFigureFooter();
  return 0;
}

//===- bench/fig11_scanned.cpp - Figure 11 reproduction ---------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// Figure 11: generational characterization, part 1 — average number of
// objects scanned per collection: old objects scanned for inter-
// generational pointers (dirty cards), objects scanned by partial and by
// full collections, and by the non-generational baseline.  The headline
// shape: partial collections scan orders of magnitude fewer objects than
// whole-heap collections, except where inter-generational pointers are
// rampant (jess, javac).
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "harness/BenchHarness.h"

using namespace gengc;
using namespace gengc::bench;
using namespace gengc::workload;

namespace {
struct PaperRow {
  const char *Name;
  double InterGen, Partial, Full, NonGen;
};
} // namespace

int main(int Argc, char **Argv) {
  printFigureHeader("Figure 11",
                    "avg objects scanned per collection (part 1)");

  const PaperRow Paper[] = {
      {"mtrt", 280, 1023, -1, 238703},
      {"compress", 3, 168, 4789, 4778},
      {"db", 7, 399, 294534, 287522},
      {"jess", 1373, 3797, 25411, 25446},
      {"javac", 16184, 53833, 213735, 194267},
      {"jack", 151, 4890, 14972, 11241},
      {"anagram", 1, 863, 273248, 271453},
  };

  BenchOptions Options = parseBenchOptions(
      Argc, Argv, {.Run = {.Scale = 1.0, .Reps = 1}});

  auto Cell = [](double Value) {
    return Value < 0 ? std::string("N/A") : Table::number(Value, 0);
  };

  Table T({"benchmark", "inter-gen (paper)", "inter-gen", "partial (paper)",
           "partial", "full (paper)", "full", "non-gen (paper)", "non-gen"});
  for (const PaperRow &Row : Paper) {
    Profile P = profileByName(Row.Name);
    RunResult Gen = runMedian(P, CollectorChoice::Generational, Options);
    RunResult Base = runMedian(P, CollectorChoice::NonGenerational, Options);
    double MeasuredFull =
        Gen.Gc.count(CycleKind::Full)
            ? Gen.Gc.mean(CycleKind::Full, &CycleStats::ObjectsTraced)
            : -1;
    T.addRow({Row.Name, Cell(Row.InterGen),
              Cell(Gen.Gc.mean(CycleKind::Partial,
                               &CycleStats::OldObjectsScanned)),
              Cell(Row.Partial),
              Cell(Gen.Gc.mean(CycleKind::Partial,
                               &CycleStats::ObjectsTraced)),
              Cell(Row.Full), Cell(MeasuredFull), Cell(Row.NonGen),
              Cell(Base.Gc.mean(CycleKind::NonGenerational,
                                &CycleStats::ObjectsTraced))});
  }
  T.print(stdout);
  printFigureFooter();
  return 0;
}

//===- bench/micro_obs_overhead.cpp - Tracing overhead microbenchmarks ------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// The observability budget: the hot paths (allocation, write barrier,
// cooperate) must cost the same with event tracing compiled in whether it
// is enabled or not — the emit sites are a null-pointer test when tracing
// is off, and lock-free ring stores when on.  Each benchmark here runs the
// identical loop with tracing off (arg 0) and on (arg 1); comparing the
// pairs in BENCH_obs_overhead.json bounds the overhead (budget: < 5%).
//
//===----------------------------------------------------------------------===//

#include <benchmark/benchmark.h>

#include "core/GenGc.h"

using namespace gengc;

namespace {

RuntimeConfig obsConfig(bool Tracing) {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 32ull << 20;
  Config.Choice = CollectorChoice::Generational;
  // Manual triggering: the loops below measure mutator-side cost only.
  Config.Collector.Trigger.YoungBytes = 1ull << 40;
  Config.Collector.Trigger.InitialSoftBytes = 32ull << 20;
  Config.Collector.Trigger.FullFraction = 1.1;
  Config.Collector.Obs.Tracing = Tracing;
  return Config;
}

/// Allocation fast path: cache pops, with the periodic refill slow path
/// (which carries the stall-instrumentation branches).
void allocTracing(benchmark::State &State) {
  Runtime RT(obsConfig(State.range(0) != 0));
  auto M = RT.attachMutator();
  RootScope Roots(*M);
  size_t Slot = Roots.addSlot(NullRef);
  unsigned Count = 0;
  for (auto _ : State) {
    Roots.set(Slot, M->allocate(2, 16));
    // Drop the chain periodically so the heap does not fill up.
    if (++Count % 1024 == 0) {
      Roots.set(Slot, NullRef);
      RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
    }
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(allocTracing)->Arg(0)->Arg(1);

/// Write barrier: tracing adds nothing here (no emit site), so the pair
/// doubles as a control — any measured difference is noise floor.
void barrierTracing(benchmark::State &State) {
  Runtime RT(obsConfig(State.range(0) != 0));
  auto M = RT.attachMutator();
  RootScope Roots(*M);
  ObjectRef A = Roots.add(M->allocate(2, 8));
  ObjectRef B = Roots.add(M->allocate(2, 8));
  for (auto _ : State) {
    M->writeRef(A, 0, B);
    M->writeRef(B, 0, A);
  }
  State.SetItemsProcessed(2 * State.iterations());
}
BENCHMARK(barrierTracing)->Arg(0)->Arg(1);

/// cooperate() with no pending handshake: the per-operation polling cost
/// every embedding program pays.
void cooperateTracing(benchmark::State &State) {
  Runtime RT(obsConfig(State.range(0) != 0));
  auto M = RT.attachMutator();
  for (auto _ : State)
    M->cooperate();
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(cooperateTracing)->Arg(0)->Arg(1);

/// Full alloc + barrier + cooperate churn loop under collection pressure:
/// the end-to-end number the <5% budget is stated against.  Cycles run
/// concurrently, so the collector-side emit sites are also exercised.
void churnTracing(benchmark::State &State) {
  Runtime RT(obsConfig(State.range(0) != 0));
  auto M = RT.attachMutator();
  RootScope Roots(*M);
  constexpr unsigned Window = 64;
  for (unsigned I = 0; I < Window; ++I)
    Roots.add(NullRef);
  unsigned Cursor = 0;
  unsigned Count = 0;
  for (auto _ : State) {
    ObjectRef Node = M->allocate(2, 16);
    M->writeRef(Node, 0, Roots.get(Cursor));
    Roots.set(Cursor, Node);
    Cursor = (Cursor + 1) % Window;
    M->cooperate();
    // The slots chain every allocation into the live set; cut the chains
    // periodically so cycles have garbage to reclaim, and alternate
    // partial/full so promoted survivors do not accumulate.
    if (++Count % 2048 == 0)
      for (unsigned I = 0; I < Window; ++I)
        Roots.set(I, NullRef);
    if (Count % 8192 == 0)
      RT.collector().requestCycle(Count % 16384 ? CycleRequest::Partial
                                                : CycleRequest::Full);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(churnTracing)->Arg(0)->Arg(1);

} // namespace

//===- bench/micro_barrier.cpp - Write-barrier microbenchmarks --------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// Section 6 argues that packing card marks, ages or colors into shared
// bytes would force a compare-and-swap on every pointer update, which the
// authors measured to be too costly for Java programs.  These benchmarks
// quantify the barrier's cost in each collector phase, and the CAS
// alternative the paper rejected.
//
//===----------------------------------------------------------------------===//

#include <benchmark/benchmark.h>

#include "core/Runtime.h"

using namespace gengc;

namespace {

struct BarrierFixture {
  RuntimeConfig makeConfig(BarrierKind Kind) {
    RuntimeConfig Config;
    Config.Heap.HeapBytes = 32ull << 20;
    Config.Choice = Kind == BarrierKind::NonGenerational
                        ? CollectorChoice::NonGenerational
                        : CollectorChoice::Generational;
    Config.Collector.Aging = Kind == BarrierKind::Aging;
    Config.Collector.Trigger.YoungBytes = 1ull << 40;
    Config.Collector.Trigger.InitialSoftBytes = 32ull << 20;
    Config.Collector.Trigger.FullFraction = 1.1;
    return Config;
  }
};

/// Barrier cost while the collector is idle (async, not tracing): the
/// common case — one card-table store for the generational barriers.
void barrierIdlePhase(benchmark::State &State) {
  BarrierFixture Fixture;
  Runtime RT(Fixture.makeConfig(BarrierKind(State.range(0))));
  auto M = RT.attachMutator();
  ObjectRef A = M->allocate(2, 8);
  ObjectRef B = M->allocate(2, 8);
  M->pushRoot(A);
  M->pushRoot(B);
  for (auto _ : State) {
    M->writeRef(A, 0, B);
    M->writeRef(B, 0, A);
  }
  State.SetItemsProcessed(2 * State.iterations());
  M->popRoots(2);
}
BENCHMARK(barrierIdlePhase)
    ->Arg(int(BarrierKind::NonGenerational))
    ->Arg(int(BarrierKind::Simple))
    ->Arg(int(BarrierKind::Aging));

/// The raw store with no barrier at all, as a floor.
void rawStoreFloor(benchmark::State &State) {
  BarrierFixture Fixture;
  Runtime RT(Fixture.makeConfig(BarrierKind::Simple));
  auto M = RT.attachMutator();
  ObjectRef A = M->allocate(2, 8);
  ObjectRef B = M->allocate(2, 8);
  M->pushRoot(A);
  M->pushRoot(B);
  for (auto _ : State) {
    storeRefSlotRaw(RT.heap(), A, 0, B);
    storeRefSlotRaw(RT.heap(), B, 0, A);
  }
  State.SetItemsProcessed(2 * State.iterations());
  M->popRoots(2);
}
BENCHMARK(rawStoreFloor);

/// The alternative the paper rejected: a CAS on a shared byte per update.
void casPerUpdateAlternative(benchmark::State &State) {
  BarrierFixture Fixture;
  Runtime RT(Fixture.makeConfig(BarrierKind::Simple));
  auto M = RT.attachMutator();
  ObjectRef A = M->allocate(2, 8);
  ObjectRef B = M->allocate(2, 8);
  M->pushRoot(A);
  M->pushRoot(B);
  std::atomic<uint8_t> SharedByte{0};
  for (auto _ : State) {
    // Store + CAS-merged mark, the layout Section 6 decided against.
    storeRefSlotRaw(RT.heap(), A, 0, B);
    uint8_t Expected = SharedByte.load(std::memory_order_relaxed);
    SharedByte.compare_exchange_strong(Expected, uint8_t(Expected | 1),
                                       std::memory_order_acq_rel);
    benchmark::DoNotOptimize(Expected);
  }
  State.SetItemsProcessed(State.iterations());
  M->popRoots(2);
}
BENCHMARK(casPerUpdateAlternative);

/// Barrier cost while a trace is running (shades the overwritten value).
void barrierDuringTrace(benchmark::State &State) {
  BarrierFixture Fixture;
  Runtime RT(Fixture.makeConfig(BarrierKind::Simple));
  auto M = RT.attachMutator();
  ObjectRef A = M->allocate(2, 8);
  ObjectRef B = M->allocate(2, 8);
  M->pushRoot(A);
  M->pushRoot(B);
  // Force the phase the barrier sees, without a real collection.
  RT.state().Phase.store(GcPhase::Trace, std::memory_order_release);
  for (auto _ : State) {
    M->writeRef(A, 0, B);
    M->writeRef(B, 0, A);
  }
  RT.state().Phase.store(GcPhase::Idle, std::memory_order_release);
  State.SetItemsProcessed(2 * State.iterations());
  M->popRoots(2);
}
BENCHMARK(barrierDuringTrace);

/// Card sizes: smaller cards mean a bigger, less cache-friendly table.
void barrierCardSizes(benchmark::State &State) {
  BarrierFixture Fixture;
  RuntimeConfig Config = Fixture.makeConfig(BarrierKind::Simple);
  Config.Heap.CardBytes = uint32_t(State.range(0));
  Runtime RT(Config);
  auto M = RT.attachMutator();
  // Spread updates over many objects so the card-table working set shows.
  constexpr unsigned NumObjects = 4096;
  std::vector<ObjectRef> Objects;
  for (unsigned I = 0; I < NumObjects; ++I)
    Objects.push_back(M->allocate(2, 40));
  ObjectRef Anchor = M->allocate(1, 8);
  M->pushRoot(Anchor);
  unsigned Cursor = 0;
  for (auto _ : State) {
    M->writeRef(Objects[Cursor], 1, Anchor);
    Cursor = (Cursor + 257) % NumObjects;
  }
  State.SetItemsProcessed(State.iterations());
  M->popRoots(1);
}
BENCHMARK(barrierCardSizes)->Arg(16)->Arg(256)->Arg(4096);

} // namespace

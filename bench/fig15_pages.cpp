//===- bench/fig15_pages.cpp - Figure 15 reproduction -----------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// Figure 15: average number of pages the collector touches during a cycle
// (trace + sweep, including all side tables).  The paper's point: partial
// collections touch noticeably fewer pages — generations pay off when
// physical memory is tight.  Anagram shows the smallest partial/full ratio
// (~20%), javac the largest (~70%).
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "harness/BenchHarness.h"

using namespace gengc;
using namespace gengc::bench;
using namespace gengc::workload;

namespace {
struct PaperRow {
  const char *Name;
  double Partial, Full, NonGen;
};
} // namespace

int main(int Argc, char **Argv) {
  printFigureHeader("Figure 15", "average pages touched per collection");

  const PaperRow Paper[] = {
      {"mtrt", 1489, -1, 3355},  {"compress", 76, 124, 109},
      {"db", 944, 2794, 2827},   {"jess", 1304, 2227, 2048},
      {"javac", 2607, 3709, 3080}, {"jack", 1199, 2052, 1767},
      {"anagram", 1082, 4938, 5054},
  };

  BenchOptions Options = parseBenchOptions(
      Argc, Argv, {.Run = {.Scale = 1.0, .Reps = 1}});
  Options.TrackPages = true;

  auto Cell = [](double Value) {
    return Value < 0 ? std::string("N/A") : Table::number(Value, 0);
  };

  Table T({"benchmark", "partial (paper)", "partial", "full (paper)", "full",
           "non-gen (paper)", "non-gen", "partial/full ratio"});
  for (const PaperRow &Row : Paper) {
    Profile P = profileByName(Row.Name);
    RunResult Gen = runMedian(P, CollectorChoice::Generational, Options);
    RunResult Base = runMedian(P, CollectorChoice::NonGenerational, Options);
    double Partial =
        Gen.Gc.mean(CycleKind::Partial, &CycleStats::PagesTouched);
    double Full = Gen.Gc.count(CycleKind::Full)
                      ? Gen.Gc.mean(CycleKind::Full, &CycleStats::PagesTouched)
                      : -1;
    double NonGen = Base.Gc.mean(CycleKind::NonGenerational,
                                 &CycleStats::PagesTouched);
    double Ratio = Full > 0 ? Partial / Full : 0.0;
    T.addRow({Row.Name, Cell(Row.Partial), Cell(Partial), Cell(Row.Full),
              Cell(Full), Cell(Row.NonGen), Cell(NonGen),
              Full > 0 ? Table::number(Ratio, 2) : std::string("N/A")});
  }
  T.print(stdout);
  printFigureFooter();
  return 0;
}

//===- bench/fig18_aging_lo.cpp - Figure 18 reproduction --------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// Figure 18: the aging mechanism (Section 6) with tenuring thresholds 4
// and 6, young sizes 1/2/4/8 MB, object marking — % improvement over the
// NON-generational collector.  Paper conclusion: "the results for aging
// are disappointing" — aging mostly loses to the simple promotion policy.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "harness/BenchHarness.h"

using namespace gengc;
using namespace gengc::bench;
using namespace gengc::workload;

namespace {
struct PaperRow {
  const char *Name;
  double Values[4]; // 1m 2m 4m 8m
};

void agingSweep(const BenchOptions &Base, unsigned OldestAge,
                const PaperRow (&Paper)[7]) {
  std::printf("-- object marking with aging, age %u is old --\n", OldestAge);
  const unsigned YoungMb[] = {1, 2, 4, 8};
  Table T({"benchmark", "1m (paper/meas)", "2m", "4m", "8m"});
  for (const PaperRow &Row : Paper) {
    Profile P = profileByName(Row.Name);
    std::vector<std::string> Cells{Row.Name};
    for (unsigned Y = 0; Y < 4; ++Y) {
      BenchOptions Options = Base;
      Options.YoungBytes = uint64_t(YoungMb[Y]) << 20;
      Options.Aging = true;
      Options.OldestAge = uint8_t(OldestAge);
      double Measured =
            medianImprovement(P, Options, Metric::CpuSeconds);
      Cells.push_back(Table::percent(Row.Values[Y]) + " / " +
                      Table::percent(Measured));
    }
    T.addRow(Cells);
  }
  T.print(stdout);
  std::printf("\n");
}
} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Base = parseBenchOptions(
      Argc, Argv, {.Run = {.Scale = 0.5, .Reps = 1}});
  printFigureHeader("Figure 18", "aging mechanism, thresholds 4 and 6");

  const PaperRow Age4[] = {
      {"compress", {0.3, 0.1, -0.5, 0.4}},
      {"jess", {-17.7, -15.8, -10.1, -7.8}},
      {"db", {-2.4, -0.7, -1.4, -0.4}},
      {"javac", {-14.7, -3.6, -5.9, 17.2}},
      {"mtrt", {-21.0, -13.4, 1.1, -1.9}},
      {"jack", {-11.4, -6.7, -1.8, -1.5}},
      {"anagram", {-10.8, 1.9, 20.0, 29.6}},
  };
  const PaperRow Age6[] = {
      {"compress", {0.5, 0.2, -2.0, 0.1}},
      {"jess", {-12.6, -13.7, -10.3, -9.2}},
      {"db", {-3.1, -1.3, -1.1, -0.1}},
      {"javac", {-21.2, -8.7, 3.9, 17.1}},
      {"mtrt", {-21.2, -8.0, -2.6, -2.7}},
      {"jack", {-12.6, -6.4, -2.5, -0.9}},
      {"anagram", {-11.2, 0.8, 18.3, 26.7}},
  };
  agingSweep(Base, 4, Age4);
  agingSweep(Base, 6, Age6);
  printFigureFooter();
  return 0;
}

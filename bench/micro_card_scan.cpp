//===- bench/micro_card_scan.cpp - Dirty-card scan throughput ---------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// The partial-collection hot loop in isolation (Section 8.5.3): enumerate
// every dirty card of a 32 MB card table, at the paper's card sizes
// (16/128/4096) and a sweep of dirty densities (0, 0.1%, 1%, 10% of all
// cards, the second benchmark argument in per-mille).  Two scanners:
//
//  - cardScanLinear: the pre-summary path — walk [0, numCards) with the
//    word-hint dirty scan (8 card bytes per load).
//  - cardScanSummary: the two-level path — sweep the dirty-summary index
//    (8 summary bytes = 512 cards per load), open only dirty chunks.
//
// Compare cardScanSummary/16/0 against cardScanLinear/16/0 for the clean
// table speedup tracked in BENCH_card_scan.json; bytes/s counters report
// effective clean-scan throughput over the cards covered.
//
//===----------------------------------------------------------------------===//

#include <benchmark/benchmark.h>

#include "heap/CardTable.h"
#include "support/Random.h"

using namespace gengc;

namespace {

constexpr uint64_t HeapBytes = 32ull << 20;

/// Dirties \p PerMille/1000 of the cards, scattered with a fixed seed so
/// every run and both scanners see the same table.
void seedDirtyCards(CardTable &T, int64_t PerMille) {
  Rng Rand(0x5CA2CAFE);
  size_t Target = size_t(uint64_t(T.numCards()) * uint64_t(PerMille) / 1000);
  for (size_t I = 0; I < Target; ++I)
    T.markCardIndex(size_t(Rand.nextBelow(T.numCards())));
}

void cardScanLinear(benchmark::State &State) {
  CardTable T(HeapBytes, uint32_t(State.range(0)));
  seedDirtyCards(T, State.range(1));
  uint64_t Dirty = 0;
  for (auto _ : State) {
    uint64_t Found = 0;
    T.forEachDirtyIndexInRange(0, T.numCards(),
                               [&](size_t) { ++Found; });
    benchmark::DoNotOptimize(Found);
    Dirty = Found;
  }
  State.counters["dirty_cards"] = double(Dirty);
  State.SetBytesProcessed(int64_t(State.iterations()) *
                          int64_t(T.numCards()));
}
BENCHMARK(cardScanLinear)
    ->ArgsProduct({{16, 128, 4096}, {0, 1, 10, 100}})
    ->ArgNames({"card", "permille"});

void cardScanSummary(benchmark::State &State) {
  CardTable T(HeapBytes, uint32_t(State.range(0)));
  seedDirtyCards(T, State.range(1));
  uint64_t Dirty = 0, Chunks = 0;
  for (auto _ : State) {
    uint64_t Found = 0, Opened = 0;
    T.forEachDirtySummaryChunkInRange(
        0, T.numSummaryChunks(), [&](size_t Chunk) {
          ++Opened;
          T.forEachDirtyIndexInRange(T.chunkCardBegin(Chunk),
                                     T.chunkCardEnd(Chunk),
                                     [&](size_t) { ++Found; });
        });
    benchmark::DoNotOptimize(Found);
    Dirty = Found;
    Chunks = Opened;
  }
  State.counters["dirty_cards"] = double(Dirty);
  State.counters["chunks_opened"] = double(Chunks);
  State.SetBytesProcessed(int64_t(State.iterations()) *
                          int64_t(T.numCards()));
}
BENCHMARK(cardScanSummary)
    ->ArgsProduct({{16, 128, 4096}, {0, 1, 10, 100}})
    ->ArgNames({"card", "permille"});

} // namespace

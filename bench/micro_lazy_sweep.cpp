//===- bench/micro_lazy_sweep.cpp - Eager vs lazy sweep ---------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// SweepPolicy::Eager vs SweepPolicy::Lazy, two views:
//
//  - visibleCycle: single mutator builds a heap of garbage, then waits for a
//    synchronous full collection; items/sec is visible cycles per second.
//    Lazy ends its cycle at PublishSweep (a block-stamp walk) instead of the
//    whole-heap cell sweep, so the visible cycle is shorter; the per-cycle
//    mean of CycleStats::SweepNanos (and ResidueNanos) is exported as a
//    counter so the sweep-phase reduction is directly visible in the JSON.
//
//  - allocChurn: 1..8 mutators hammer allocate() under the generational
//    collector's normal triggers.  Under Lazy the refill path occasionally
//    sweeps a published block inline, so this guards the other side of the
//    trade: allocation throughput must stay within the bench_diff gate.
//
// ctest -L bench-smoke runs a tiny subset as a crash canary; the
// bench_lazy_sweep_check target re-runs the full bench and diffs against
// bench/baselines/BENCH_lazy_sweep.json (>15% regression at the 1- and
// 8-thread points fails).
//
//===----------------------------------------------------------------------===//

#include <benchmark/benchmark.h>

#include <condition_variable>
#include <mutex>

#include "core/Runtime.h"

using namespace gengc;

namespace {

RuntimeConfig churnConfig(SweepPolicy Policy) {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 64ull << 20;
  Config.Choice = CollectorChoice::Generational;
  Config.Collector.GcThreads = 2;
  Config.Collector.Sweep = Policy;
  return Config;
}

RuntimeConfig cycleConfig(SweepPolicy Policy) {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 64ull << 20;
  Config.Choice = CollectorChoice::NonGenerational;
  Config.Collector.GcThreads = 2;
  Config.Collector.Sweep = Policy;
  // Cycles are driven manually; the triggers stay out of the way.
  Config.Collector.Trigger.YoungBytes = 1ull << 40;
  Config.Collector.Trigger.InitialSoftBytes = 1ull << 40;
  Config.Collector.Trigger.FullFraction = 100.0;
  return Config;
}

/// One Runtime shared by every benchmark thread, with explicit create /
/// destroy rendezvous (benchmark threads enter and leave the function
/// unsynchronized, so thread 0 must not delete the runtime while a sibling
/// still holds a mutator).
struct SharedRuntime {
  std::mutex M;
  std::condition_variable Cv;
  Runtime *RT = nullptr;
  int Exited = 0;

  Runtime &acquire(benchmark::State &State, const RuntimeConfig &Config) {
    std::unique_lock Locked(M);
    if (State.thread_index() == 0) {
      RT = new Runtime(Config);
      Exited = 0;
      Cv.notify_all();
    } else {
      Cv.wait(Locked, [&] { return RT != nullptr; });
    }
    return *RT;
  }

  void release(benchmark::State &State) {
    std::unique_lock Locked(M);
    ++Exited;
    Cv.notify_all();
    if (State.thread_index() == 0) {
      Cv.wait(Locked, [&] { return Exited == State.threads(); });
      delete RT;
      RT = nullptr;
    }
  }
};

SharedRuntime Shared;

/// The visible cost of a collection cycle: garbage, then one synchronous
/// full collection per iteration.  Single-threaded.
void visibleCycle(benchmark::State &State, SweepPolicy Policy) {
  Runtime RT(cycleConfig(Policy));
  {
    auto M = RT.attachMutator();
    for (auto _ : State) {
      // ~6 MB of dead small objects per cycle: enough blocks that the
      // whole-heap sweep is the dominant eager phase.
      for (int I = 0; I < 20000; ++I) {
        uint32_t Bytes = I % 3 == 0 ? 16 : (I % 3 == 1 ? 48 : 256);
        ObjectRef Ref = M->allocate(1, Bytes);
        benchmark::DoNotOptimize(Ref);
        if (I % 64 == 0)
          M->cooperate();
      }
      RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
    }
  }
  State.SetItemsProcessed(State.iterations());

  // Mean per-cycle phase times, so the JSON shows where the sweep went.
  GcRunStats Stats = RT.collector().statsSnapshot();
  if (!Stats.Cycles.empty()) {
    State.counters["sweep_phase_ns_mean"] = benchmark::Counter(
        double(Stats.totalAll(&CycleStats::SweepNanos)) /
        double(Stats.Cycles.size()));
    State.counters["residue_phase_ns_mean"] = benchmark::Counter(
        double(Stats.totalAll(&CycleStats::ResidueNanos)) /
        double(Stats.Cycles.size()));
    State.counters["cycle_ns_mean"] = benchmark::Counter(
        double(Stats.totalAll(&CycleStats::DurationNanos)) /
        double(Stats.Cycles.size()));
  }
}

/// Allocation throughput with the collector on its normal triggers: under
/// Lazy, cache refills sweep published blocks inline.
void allocChurn(benchmark::State &State, SweepPolicy Policy) {
  Runtime &RT = Shared.acquire(State, churnConfig(Policy));
  {
    auto M = RT.attachMutator();
    uint64_t I = 0;
    constexpr uint64_t BatchIters = 1024;
    // The harness rendezvous-barriers threads inside KeepRunningBatch; a
    // parked thread cannot cooperate with handshakes, so the mutator is
    // declared Blocked across every harness call (see micro_alloc_scale).
    M->enterBlocked();
    while (State.KeepRunningBatch(BatchIters)) {
      M->exitBlocked();
      for (uint64_t J = 0; J < BatchIters; ++J) {
        uint32_t Bytes = I % 3 == 0 ? 16 : (I % 3 == 1 ? 48 : 256);
        ObjectRef Ref = M->allocate(1, Bytes);
        benchmark::DoNotOptimize(Ref);
        if (++I % 64 == 0)
          M->cooperate();
      }
      M->enterBlocked();
    }
    M->exitBlocked();
  }
  State.SetItemsProcessed(State.iterations());
  Shared.release(State);
}

BENCHMARK_CAPTURE(visibleCycle, eager, SweepPolicy::Eager);
BENCHMARK_CAPTURE(visibleCycle, lazy, SweepPolicy::Lazy);

BENCHMARK_CAPTURE(allocChurn, eager, SweepPolicy::Eager)
    ->ThreadRange(1, 8)
    ->UseRealTime();
BENCHMARK_CAPTURE(allocChurn, lazy, SweepPolicy::Lazy)
    ->ThreadRange(1, 8)
    ->UseRealTime();

} // namespace

//===- bench/fig14_cycle_gain.cpp - Figure 14 reproduction ------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// Figure 14: average gain from collections — objects and bytes freed per
// partial / full / non-generational cycle.  Shape: a partial collection
// recovers a large fraction of what a whole-heap collection would, at the
// Figure 13 fraction of the cost.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "harness/BenchHarness.h"

using namespace gengc;
using namespace gengc::bench;
using namespace gengc::workload;

namespace {
struct PaperRow {
  const char *Name;
  double ObjPartial, ObjFull, ObjNonGen;
  double SpacePartial, SpaceFull, SpaceNonGen;
};
} // namespace

int main(int Argc, char **Argv) {
  printFigureHeader("Figure 14", "average objects/space freed per cycle");

  const PaperRow Paper[] = {
      {"mtrt", 161441, -1, 261305, 4008271, -1, 6517749},
      {"compress", 112, 112, 111, 1057472, 6922551, 67953331},
      {"db", 170175, 187882, 217685, 3914861, 6196926, 5188449},
      {"jess", 106185, 166720, 160458, 3934524, 6759448, 5982237},
      {"javac", 82536, 178289, 71024, 2863730, 5788769, 2387539},
      {"jack", 133671, 186370, 202109, 3677861, 6905298, 5841292},
      {"anagram", 12251, 30088, 41370, 3515684, 13279332, 12590566},
  };

  BenchOptions Options = parseBenchOptions(
      Argc, Argv, {.Run = {.Scale = 1.0, .Reps = 1}});

  auto Cell = [](double Value) {
    return Value < 0 ? std::string("N/A") : Table::number(Value, 0);
  };

  Table T({"benchmark", "obj/partial (paper)", "obj/partial",
           "obj/full (paper)", "obj/full", "obj/non-gen (paper)",
           "obj/non-gen", "bytes/partial (paper)", "bytes/partial",
           "bytes/full (paper)", "bytes/full", "bytes/non-gen (paper)",
           "bytes/non-gen"});
  for (const PaperRow &Row : Paper) {
    Profile P = profileByName(Row.Name);
    RunResult Gen = runMedian(P, CollectorChoice::Generational, Options);
    RunResult Base = runMedian(P, CollectorChoice::NonGenerational, Options);
    bool HasFull = Gen.Gc.count(CycleKind::Full) != 0;
    T.addRow(
        {Row.Name, Cell(Row.ObjPartial),
         Cell(Gen.Gc.mean(CycleKind::Partial, &CycleStats::ObjectsFreed)),
         Cell(Row.ObjFull),
         Cell(HasFull
                  ? Gen.Gc.mean(CycleKind::Full, &CycleStats::ObjectsFreed)
                  : -1),
         Cell(Row.ObjNonGen),
         Cell(Base.Gc.mean(CycleKind::NonGenerational,
                           &CycleStats::ObjectsFreed)),
         Cell(Row.SpacePartial),
         Cell(Gen.Gc.mean(CycleKind::Partial, &CycleStats::BytesFreed)),
         Cell(Row.SpaceFull),
         Cell(HasFull ? Gen.Gc.mean(CycleKind::Full, &CycleStats::BytesFreed)
                      : -1),
         Cell(Row.SpaceNonGen),
         Cell(Base.Gc.mean(CycleKind::NonGenerational,
                           &CycleStats::BytesFreed))});
  }
  T.print(stdout);
  printFigureFooter();
  return 0;
}

//===- bench/fig07_raytracer.cpp - Figure 7 reproduction --------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// Figure 7: percentage improvement (elapsed time) of the generational
// collector for the multithreaded Ray Tracer, with 2..10 application
// threads, on a saturated multiprocessor.  Paper: 1.3 / 2.6 / 10.6 / 16.0 /
// 11.7 percent — generations help more once threads oversubscribe the
// processors, because every collector cycle saved returns a whole CPU to
// the application.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "harness/BenchHarness.h"

using namespace gengc;
using namespace gengc::bench;
using namespace gengc::workload;

int main(int Argc, char **Argv) {
  BenchOptions Options = parseBenchOptions(
      Argc, Argv, {.Run = {.Scale = 0.5, .Reps = 3}});
  printFigureHeader("Figure 7",
                    "% improvement, multithreaded Ray Tracer, 2-10 threads");

  const unsigned ThreadCounts[] = {2, 4, 6, 8, 10};
  const double Paper[] = {1.3, 2.6, 10.6, 16.0, 11.7};

  Table T({"threads", "paper %", "measured %"});
  for (unsigned I = 0; I < 5; ++I) {
    Profile P = profileByName("raytracer");
    P.Threads = ThreadCounts[I];
    // Fixed total work regardless of thread count, as in the paper's
    // fixed-size rendering job.
    P.AllocBytesPerThread =
        (P.AllocBytesPerThread * 4) / ThreadCounts[I];
    double Improvement = medianImprovement(P, Options, Metric::CpuSeconds);
    T.addRow({Table::count(ThreadCounts[I]), Table::percent(Paper[I]),
              Table::percent(Improvement)});
  }
  T.print(stdout);
  printFigureFooter();
  return 0;
}

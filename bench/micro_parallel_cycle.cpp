//===- bench/micro_parallel_cycle.cpp - GC worker pool scaling --------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// Scaling of the parallel cycle engine: each benchmark builds a fixed
// object population, then measures full collection cycles end-to-end while
// varying CollectorConfig::GcThreads.  Two shapes are measured:
//
//  - cycleTraceHeavy: a dense, deep object graph where the work-stealing
//    trace dominates the cycle.
//  - cycleSweepHeavy: a mostly-dead heap where the block-partitioned
//    parallel sweep dominates.
//
// Compare `.../1` against `.../4` to read the speedup.  On a single-core
// host the lanes time-slice and the ratio is ~1x (plus handoff overhead);
// the speedup target only applies on multi-core hardware.
//
//===----------------------------------------------------------------------===//

#include <benchmark/benchmark.h>

#include "core/Runtime.h"

using namespace gengc;

namespace {

RuntimeConfig cycleConfig(unsigned GcThreads) {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 256ull << 20;
  Config.Choice = CollectorChoice::Generational;
  Config.Collector.GcThreads = GcThreads;
  // Cycles run only when the benchmark loop requests them.
  Config.Collector.Trigger.YoungBytes = 1ull << 40;
  Config.Collector.Trigger.InitialSoftBytes = 256ull << 20;
  Config.Collector.Trigger.FullFraction = 1.1;
  return Config;
}

/// Trace-bound cycle: a large rooted graph survives every cycle, so the
/// collector spends its time shading and scanning live objects.
void cycleTraceHeavy(benchmark::State &State) {
  Runtime RT(cycleConfig(unsigned(State.range(0))));
  auto M = RT.attachMutator();
  constexpr unsigned Chains = 64, ChainLen = 4000;
  for (unsigned C = 0; C < Chains; ++C) {
    M->pushRoot(NullRef);
    for (unsigned I = 0; I < ChainLen; ++I) {
      ObjectRef Node = M->allocate(2, 32);
      M->writeRef(Node, 0, M->root(C));
      M->setRoot(C, Node);
    }
  }
  for (auto _ : State)
    RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  GcRunStats Stats = RT.gcStats();
  State.counters["objects_traced_per_cycle"] = double(
      Stats.Cycles.empty() ? 0 : Stats.Cycles.back().ObjectsTraced);
  State.SetItemsProcessed(int64_t(State.iterations()) * Chains * ChainLen);
  M->popRoots(M->numRoots());
}
BENCHMARK(cycleTraceHeavy)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Sweep-bound cycle: each iteration re-fills the heap with short-lived
/// garbage and keeps only a token live set, so the cycle is dominated by
/// walking blocks and reclaiming dead cells.
void cycleSweepHeavy(benchmark::State &State) {
  Runtime RT(cycleConfig(unsigned(State.range(0))));
  auto M = RT.attachMutator();
  M->pushRoot(NullRef);
  constexpr unsigned Garbage = 400000;
  for (auto _ : State) {
    State.PauseTiming();
    for (unsigned I = 0; I < Garbage; ++I)
      benchmark::DoNotOptimize(M->allocate(1, 24));
    State.ResumeTiming();
    RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  }
  GcRunStats Stats = RT.gcStats();
  State.counters["objects_freed_per_cycle"] = double(
      Stats.Cycles.empty() ? 0 : Stats.Cycles.back().ObjectsFreed);
  State.SetItemsProcessed(int64_t(State.iterations()) * Garbage);
  M->popRoots(M->numRoots());
}
BENCHMARK(cycleSweepHeavy)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

} // namespace

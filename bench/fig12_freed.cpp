//===- bench/fig12_freed.cpp - Figure 12 reproduction -----------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// Figure 12: generational characterization, part 2 — the percentage of
// bytes/objects freed by partial collections (of the young generation) and
// of objects freed by full / non-generational collections (of everything
// allocated).  The generational hypothesis in numbers: where the partial
// percentage is high and the full percentage low (mtrt, db, anagram),
// generations win; where full collections free as much as partials (jess,
// jack), the old generation is a revolving door and generations only add
// overhead.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "harness/BenchHarness.h"

using namespace gengc;
using namespace gengc::bench;
using namespace gengc::workload;

namespace {
struct PaperRow {
  const char *Name;
  double BytesPartial, ObjPartial, ObjFull, ObjNonGen;
};
} // namespace

int main(int Argc, char **Argv) {
  printFigureHeader("Figure 12", "percentage freed per collection (part 2)");

  const PaperRow Paper[] = {
      {"mtrt", 99.89, 99.54, -1, 52.3},
      {"compress", 19.29, 40.43, 2.6, 2.3},
      {"db", 97.66, 99.77, 22.2, 43.1},
      {"jess", 98.02, 97.88, 87.2, 86.3},
      {"javac", 71.25, 68.67, 44.7, 26.8},
      {"jack", 91.63, 96.58, 90.8, 94.7},
      {"anagram", 86.22, 93.43, 14.2, 13.2},
  };

  BenchOptions Options = parseBenchOptions(
      Argc, Argv, {.Run = {.Scale = 1.0, .Reps = 1}});

  auto Cell = [](double Value) {
    return Value < 0 ? std::string("N/A") : Table::number(Value);
  };

  Table T({"benchmark", "%bytes partial (paper)", "%bytes partial",
           "%obj partial (paper)", "%obj partial", "%obj full (paper)",
           "%obj full", "%obj non-gen (paper)", "%obj non-gen"});
  for (const PaperRow &Row : Paper) {
    Profile P = profileByName(Row.Name);
    RunResult Gen = runMedian(P, CollectorChoice::Generational, Options);
    RunResult Base = runMedian(P, CollectorChoice::NonGenerational, Options);
    double FullPct = Gen.Gc.count(CycleKind::Full)
                         ? Gen.Gc.percentFreedWholeHeap(CycleKind::Full)
                         : -1;
    T.addRow({Row.Name, Cell(Row.BytesPartial),
              Cell(Gen.Gc.percentFreedPartialBytes()), Cell(Row.ObjPartial),
              Cell(Gen.Gc.percentFreedPartialObjects()), Cell(Row.ObjFull),
              Cell(FullPct), Cell(Row.ObjNonGen),
              Cell(Base.Gc.percentFreedWholeHeap(
                  CycleKind::NonGenerational))});
  }
  T.print(stdout);
  printFigureFooter();
  return 0;
}

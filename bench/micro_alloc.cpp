//===- bench/micro_alloc.cpp - Allocation fast-path microbenchmarks ---------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// The DLG design requires object allocation with no synchronization
// between threads (Section 7); these benchmarks verify the thread-local
// cache keeps the fast path at a handful of nanoseconds, and measure the
// cost of the cache-refill slow path and of large-object allocation.
//
//===----------------------------------------------------------------------===//

#include <benchmark/benchmark.h>

#include "core/Runtime.h"

using namespace gengc;

namespace {

RuntimeConfig benchConfig() {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 256ull << 20;
  Config.Choice = CollectorChoice::Generational;
  // Collector idle: measure mutator-side costs only.
  Config.Collector.Trigger.YoungBytes = 1ull << 40;
  Config.Collector.Trigger.InitialSoftBytes = 256ull << 20;
  Config.Collector.Trigger.FullFraction = 1.1;
  return Config;
}

void allocSmall(benchmark::State &State) {
  Runtime RT(benchConfig());
  auto M = RT.attachMutator();
  uint64_t Budget = 0;
  for (auto _ : State) {
    ObjectRef Ref = M->allocate(2, 24);
    benchmark::DoNotOptimize(Ref);
    // Recycle memory periodically so the heap is not exhausted.
    if (++Budget % 1000000 == 0)
      RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(allocSmall);

void allocSizes(benchmark::State &State) {
  Runtime RT(benchConfig());
  auto M = RT.attachMutator();
  uint32_t DataBytes = uint32_t(State.range(0));
  uint64_t Budget = 0;
  for (auto _ : State) {
    ObjectRef Ref = M->allocate(1, DataBytes);
    benchmark::DoNotOptimize(Ref);
    if (++Budget % 500000 == 0)
      RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(allocSizes)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void allocLarge(benchmark::State &State) {
  Runtime RT(benchConfig());
  auto M = RT.attachMutator();
  uint64_t Budget = 0;
  for (auto _ : State) {
    ObjectRef Ref = M->allocate(1, 32 << 10);
    benchmark::DoNotOptimize(Ref);
    if (++Budget % 2000 == 0)
      RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(allocLarge);

void allocMultiThreaded(benchmark::State &State) {
  static Runtime *RT;
  if (State.thread_index() == 0)
    RT = new Runtime(benchConfig());
  {
    auto M = RT->attachMutator();
    uint64_t Budget = 0;
    for (auto _ : State) {
      ObjectRef Ref = M->allocate(2, 24);
      benchmark::DoNotOptimize(Ref);
      if (++Budget % 500000 == 0)
        RT->collector().collectSyncCooperating(CycleRequest::Full, *M);
      M->cooperate();
    }
  }
  State.SetItemsProcessed(State.iterations());
  if (State.thread_index() == 0) {
    delete RT;
    RT = nullptr;
  }
}
BENCHMARK(allocMultiThreaded)->Threads(2)->Threads(4)->UseRealTime();

} // namespace

//===- bench/fig23_card_scan_area.cpp - Figure 23 reproduction --------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// Figure 23: the area scanned because of dirty cards at partial
// collections, per card size.  Shape: finer cards pinpoint the modified
// objects so less area is scanned (jess 1237 -> 4780 going from 16B to
// 4096B cards); db is flat (its dirty objects are concentrated, so card
// granularity does not matter); anagram is near zero everywhere.
//
// The paper's unit is unspecified; we report KB of objects examined while
// scanning dirty cards — compare ratios across card sizes, not magnitudes.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "harness/BenchHarness.h"

using namespace gengc;
using namespace gengc::bench;
using namespace gengc::workload;

namespace {
struct PaperRow {
  const char *Name;
  double Values[9]; // 16..4096
};
} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Base = parseBenchOptions(
      Argc, Argv, {.Run = {.Scale = 0.5, .Reps = 1}});
  printFigureHeader("Figure 23", "area scanned for dirty cards");

  const PaperRow Paper[] = {
      {"compress", {1, 2, 4, 6, 9, 13, 19, 31, 47}},
      {"jess", {1237, 2421, 3426, 3888, 4191, 4387, 4499, 4626, 4780}},
      {"db", {2696, 2724, 2772, 2754, 2775, 2785, 2807, 2841, 2893}},
      {"javac", {1524, 2616, 3850, 4873, 5773, 6537, 7477, 8027, 9427}},
      {"mtrt", {231, 462, 651, 896, 1197, 1611, 2227, 3015, 3854}},
      {"jack", {1309, 2059, 2319, 2450, 2562, 2717, 2821, 2983, 3226}},
      {"anagram", {107, 175, 170, 168, 167, 170, 165, 167, 178}},
  };

  std::vector<std::string> Header{"benchmark"};
  for (uint32_t Card = 16; Card <= 4096; Card *= 2)
    Header.push_back(std::to_string(Card) + "B");
  Table T(Header);

  for (const PaperRow &Row : Paper) {
    Profile P = profileByName(Row.Name);
    std::vector<std::string> Cells{Row.Name};
    unsigned Idx = 0;
    for (uint32_t Card = 16; Card <= 4096; Card *= 2, ++Idx) {
      BenchOptions Options = Base;
      Options.CardBytes = Card;
      RunResult Gen =
          runMedian(P, CollectorChoice::Generational, Options);
      double AreaKb =
          Gen.Gc.mean(CycleKind::Partial, &CycleStats::CardScanAreaBytes) /
          1024.0;
      Cells.push_back(Table::number(Row.Values[Idx], 0) + "/" +
                      Table::number(AreaKb, 0));
    }
    T.addRow(Cells);
  }
  T.print(stdout);
  std::printf("\n(cells: paper / measured KB per partial collection)\n");
  printFigureFooter();
  return 0;
}

//===- bench/ablation_remset.cpp - Cards vs remembered sets -----------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// The design choice of Section 3.1, measured: "we may choose between card
// marking and remembered sets.  In our implementation, we only used card
// marking.  The reason is that in Java we expect many pointer updates, and
// the cost of an update must be minimal."
//
// This ablation runs the generational collector with both mechanisms and
// reports the improvement over the non-generational baseline plus the
// collector-side scanning statistics, so the barrier-cost vs.
// scan-precision tradeoff the paper describes is visible: remembered sets
// record exactly the updated objects (no card-table scan at all) but pay a
// read-modify-write per recording store; cards pay a plain byte store but
// scan the whole card table every partial collection.
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <cstdio>

#include "harness/BenchHarness.h"

using namespace gengc;
using namespace gengc::bench;
using namespace gengc::workload;

int main(int Argc, char **Argv) {
  BenchOptions Options = parseBenchOptions(
      Argc, Argv, {.Run = {.Scale = 0.5, .Reps = 3}});
  printFigureHeader("Ablation",
                    "inter-generational tracking: cards vs remembered sets");

  Table T({"benchmark", "mechanism", "improvement % (CPU)",
           "old objects scanned/partial", "entries or dirty cards/partial"});
  for (const char *Name : {"jess", "javac", "db", "anagram"}) {
    Profile P = profileByName(Name);
    struct Mech {
      const char *Label;
      bool RemSet;
      uint32_t CardBytes;
    } Mechs[] = {
        {"cards 16B (paper's choice)", false, 16},
        {"cards 512B", false, 512},
        {"remembered sets", true, 0},
    };
    for (const Mech &M : Mechs) {
      BenchOptions Local = Options;
      if (M.RemSet)
        Local.CardBytes = 16; // table exists but is never used
      else
        Local.CardBytes = M.CardBytes;

      // Improvement vs the baseline, with the mechanism applied.
      std::vector<double> Improvements;
      RunResult GenKept;
      workload::RunOptions One = Local.Run;
      One.Reps = 1;
      for (unsigned Rep = 0; Rep < Local.Run.Reps; ++Rep) {
        One.Seed = P.Seed + Rep;
        RuntimeConfig BaseConfig =
            configFor(CollectorChoice::NonGenerational, Local);
        RuntimeConfig GenConfig =
            configFor(CollectorChoice::Generational, Local);
        GenConfig.Collector.RememberedSets = M.RemSet;
        RunResult Base = runWorkload(P, BaseConfig, One);
        RunResult Gen = runWorkload(P, GenConfig, One);
        double BaseCpu = metricValue(P, Base, Metric::CpuSeconds);
        double GenCpu = metricValue(P, Gen, Metric::CpuSeconds);
        Improvements.push_back(
            BaseCpu > 0 ? 100.0 * (BaseCpu - GenCpu) / BaseCpu : 0.0);
        GenKept = Gen;
      }
      std::sort(Improvements.begin(), Improvements.end());

      T.addRow({Name, M.Label,
                Table::percent(Improvements[Improvements.size() / 2]),
                Table::number(GenKept.Gc.mean(CycleKind::Partial,
                                              &CycleStats::OldObjectsScanned),
                              0),
                Table::number(GenKept.Gc.mean(CycleKind::Partial,
                                              &CycleStats::DirtyCardsAtStart),
                              0)});
    }
    T.addSeparator();
  }
  T.print(stdout);
  printFigureFooter();
  return 0;
}

//===- bench/fig08_anagram.cpp - Figure 8 reproduction ----------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// Figure 8: percentage improvement for Anagram — the paper's most
// collection-intensive benchmark: 25.0% on the saturated multiprocessor,
// 32.7% on a uniprocessor.
//
// "Multiprocessor" here follows the paper's methodology of running
// simultaneous copies so every processor is busy (Section 8.1), scaled to
// this machine's core count; "uniprocessor" is a single copy.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "harness/BenchHarness.h"

using namespace gengc;
using namespace gengc::bench;
using namespace gengc::workload;

int main(int Argc, char **Argv) {
  printFigureHeader("Figure 8", "% improvement for Anagram");

  Profile P = profileByName("anagram");

  BenchOptions Options = parseBenchOptions(
      Argc, Argv, {.Run = {.Scale = 0.5, .Reps = 3}});
  double MultiImprovement = medianImprovement(P, Options, Metric::CpuSeconds);
  double UniImprovement = medianImprovement(P, Options, Metric::Elapsed);

  Table T({"benchmark", "paper multi %", "paper uni %",
           "measured CPU-cost %", "measured wall-clock %"});
  T.addRow({"Anagram", "25.0", "32.7", Table::percent(MultiImprovement),
            Table::percent(UniImprovement)});
  T.print(stdout);
  printFigureFooter();
  return 0;
}

//===- bench/micro_trace_scale.cpp - Trace-engine throughput ----------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// Trace throughput of the segmented-gray-stack engine across GcThreads
// 1..16 on three live-graph shapes that stress different engine paths:
//
//  - wide: a high-fanout tree — the gray stack grows to thousands of
//    refs, so segment offload/steal traffic dominates at multiple lanes.
//  - deep: one long linked list — a serial pointer chase with no
//    available parallelism; lanes beyond the first should cost (almost)
//    nothing, and the prefetch window cannot help (each load depends on
//    the previous one).
//  - chase: many interleaved linked lists allocated round-robin — a
//    pointer chase WITH memory-level parallelism, the shape the software
//    prefetch window exists for.
//
// Each iteration is one synchronous full collection of a fixed live graph,
// so items/sec ~ collections/sec over a constant traced set; the JSON also
// carries objects_traced_per_cycle plus the mean trace-phase and
// termination-scan wall times from CycleStats, making both acceptance
// numbers (single-lane trace throughput, termination-scan time) directly
// readable from the committed baseline.  The gc:1/pf:0 point is the exact
// historical scalar loop; gc:1/pf:4 isolates the prefetch delta.
//
// ctest -L bench-smoke runs a tiny subset as a crash canary; the
// bench_trace_check target re-runs the full bench and diffs against
// bench/baselines/BENCH_trace_scale.json.
//
//===----------------------------------------------------------------------===//

#include <benchmark/benchmark.h>

#include <vector>

#include "core/Runtime.h"

using namespace gengc;

namespace {

enum class Shape { Wide, Deep, Chase };

RuntimeConfig traceConfig(unsigned GcThreads, unsigned PrefetchDepth) {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 64ull << 20;
  Config.Choice = CollectorChoice::NonGenerational;
  Config.Collector.GcThreads = GcThreads;
  Config.Collector.PrefetchDepth = PrefetchDepth;
  // Cycles are driven manually; the triggers stay out of the way.
  Config.Collector.Trigger.YoungBytes = 1ull << 40;
  Config.Collector.Trigger.InitialSoftBytes = 1ull << 40;
  Config.Collector.Trigger.FullFraction = 100.0;
  return Config;
}

constexpr unsigned NumNodes = 400000;

/// Builds the live graph for \p Kind: always exactly NumNodes objects,
/// reachable from the mutator's root stack.  No cycle can run during the
/// build (triggers are off), so parking refs in plain vectors is safe.
void buildGraph(Mutator &M, Shape Kind) {
  switch (Kind) {
  case Shape::Wide: {
    // 8-ary tree, breadth-first: parents sit next to each other while
    // their children spread out, and the gray stack holds whole levels.
    std::vector<ObjectRef> Frontier;
    ObjectRef Root = M.allocate(8, 64);
    M.pushRoot(Root);
    Frontier.push_back(Root);
    unsigned Built = 1;
    for (size_t Next = 0; Built < NumNodes; ++Next) {
      ObjectRef Parent = Frontier[Next];
      for (unsigned Slot = 0; Slot < 8 && Built < NumNodes; ++Slot) {
        ObjectRef Child = M.allocate(8, 64);
        M.writeRef(Parent, Slot, Child);
        Frontier.push_back(Child);
        if (++Built % 4096 == 0)
          M.cooperate();
      }
    }
    break;
  }
  case Shape::Deep: {
    // One chain: the trace is a fully serial pointer chase.
    M.pushRoot(NullRef);
    for (unsigned I = 0; I < NumNodes; ++I) {
      ObjectRef Node = M.allocate(1, 16);
      M.writeRef(Node, 0, M.root(0));
      M.setRoot(0, Node);
      if (I % 4096 == 0)
        M.cooperate();
    }
    break;
  }
  case Shape::Chase: {
    // 128 chains, nodes allocated round-robin: successive nodes of one
    // chain are 128 allocations apart, so chasing any single chain misses
    // the cache while 127 other independent chains offer the prefetch
    // window its memory-level parallelism.
    constexpr unsigned Chains = 128;
    for (unsigned C = 0; C < Chains; ++C)
      M.pushRoot(NullRef);
    for (unsigned I = 0; I < NumNodes; ++I) {
      unsigned C = I % Chains;
      ObjectRef Node = M.allocate(1, 16);
      M.writeRef(Node, 0, M.root(C));
      M.setRoot(C, Node);
      if (I % 4096 == 0)
        M.cooperate();
    }
    break;
  }
  }
}

/// One synchronous full collection per iteration over a fixed live graph.
/// GcThreads comes in as the benchmark arg (State.range(0)).
void traceCycle(benchmark::State &State, Shape Kind, unsigned PrefetchDepth) {
  Runtime RT(traceConfig(unsigned(State.range(0)), PrefetchDepth));
  {
    auto M = RT.attachMutator();
    buildGraph(*M, Kind);
    for (auto _ : State)
      RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
    M->popRoots(M->numRoots());
  }
  State.SetItemsProcessed(State.iterations() * NumNodes);

  GcRunStats Stats = RT.collector().statsSnapshot();
  if (!Stats.Cycles.empty()) {
    double Cycles = double(Stats.Cycles.size());
    State.counters["objects_traced_per_cycle"] = benchmark::Counter(
        double(Stats.totalAll(&CycleStats::ObjectsTraced)) / Cycles);
    State.counters["trace_ns_mean"] = benchmark::Counter(
        double(Stats.totalAll(&CycleStats::TraceNanos)) / Cycles);
    State.counters["term_scan_ns_mean"] = benchmark::Counter(
        double(Stats.totalAll(&CycleStats::TraceTermScanNanos)) / Cycles);
    State.counters["segment_steals_per_cycle"] = benchmark::Counter(
        double(Stats.totalAll(&CycleStats::TraceSteals)) / Cycles);
  }
}

#define TRACE_SCALE_BENCH(name, shape, depth)                                  \
  BENCHMARK_CAPTURE(traceCycle, name, shape, depth)                            \
      ->RangeMultiplier(2)                                                     \
      ->Range(1, 16)                                                           \
      ->UseRealTime()

// Default engine (prefetch window 4) across the lane sweep.
TRACE_SCALE_BENCH(wide, Shape::Wide, 4);
TRACE_SCALE_BENCH(deep, Shape::Deep, 4);
TRACE_SCALE_BENCH(chase, Shape::Chase, 4);

// Prefetch ablation at one lane: pf:0 is the exact historical scalar loop,
// so chase/pf:0 vs chase (gc:1) is the acceptance criterion's ratio.
BENCHMARK_CAPTURE(traceCycle, wide_pf0, Shape::Wide, 0)->Arg(1)->UseRealTime();
BENCHMARK_CAPTURE(traceCycle, deep_pf0, Shape::Deep, 0)->Arg(1)->UseRealTime();
BENCHMARK_CAPTURE(traceCycle, chase_pf0, Shape::Chase, 0)
    ->Arg(1)
    ->UseRealTime();

} // namespace

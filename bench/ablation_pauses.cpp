//===- bench/ablation_pauses.cpp - Why on-the-fly: pause times --------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// Not a paper figure — the paper's *premise*, quantified:  "it is not
// desirable to stop the program and perform the collection … as this leads
// both to long pause times and poor processor utilization" (Section 1).
//
// Runs the same workload under three collectors and reports the mutator-
// observed stalls: a classic stop-the-world mark-sweep (every cycle stops
// every thread), the non-generational DLG on-the-fly collector, and the
// paper's generational on-the-fly collector.  For the on-the-fly
// collectors the only possible stalls are allocation-throttle waits; there
// are no stop-the-world pauses at all.
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <cstdio>
#include <thread>

#include "harness/BenchHarness.h"
#include "support/Random.h"
#include "support/Timer.h"
#include "workload/Program.h"

using namespace gengc;
using namespace gengc::bench;
using namespace gengc::workload;

namespace {

struct PauseReport {
  double ElapsedSec = 0;
  size_t Cycles = 0;
  uint64_t StwPauses = 0;
  double MaxStwPauseMs = 0;
  uint64_t Stalls = 0;
  double MaxPauseMs = 0;
  double TotalPauseMs = 0;
};

/// Like workload::runWorkload but also harvests the per-thread pause
/// statistics the program records.
PauseReport runWithPauses(const Profile &P, CollectorChoice Choice,
                          double Scale) {
  RuntimeConfig Config = makeConfig(Choice);
  Runtime RT(Config);
  PauseReport Report;

  auto Setup = RT.attachMutator();
  LongLivedTable Table(RT, *Setup, P.LongLivedSlots);
  if (P.PopulateAtStart) {
    Rng Rand(P.Seed);
    for (size_t I = 0; I < Table.size(); ++I)
      Table.put(*Setup, I,
                Setup->allocate(P.RefSlots,
                                uint32_t(Rand.nextInRange(P.MinDataBytes,
                                                          P.MaxDataBytes))));
    RT.collector().collectSyncCooperating(CycleRequest::Full, *Setup);
  }
  RT.collector().resetStats();

  uint64_t Start = nowNanos();
  std::vector<ThreadResult> Results(P.Threads);
  {
    std::vector<std::thread> Threads;
    for (unsigned T = 1; T < P.Threads; ++T)
      Threads.emplace_back([&, T] {
        Results[T] = runMutatorProgram(RT, P, Table, T, Scale);
      });
    {
      BlockedScope Blocked(*Setup);
      Results[0] = runMutatorProgram(RT, P, Table, 0, Scale);
      for (std::thread &T : Threads)
        T.join();
    }
  }
  Report.ElapsedSec = double(nowNanos() - Start) * 1e-9;
  Report.Cycles = RT.gcStats().Cycles.size();
  for (const ThreadResult &R : Results) {
    Report.StwPauses += R.Pauses.StwCount;
    Report.MaxStwPauseMs =
        std::max(Report.MaxStwPauseMs, double(R.Pauses.StwMaxNanos) * 1e-6);
    Report.Stalls += R.Pauses.Count;
    Report.TotalPauseMs += double(R.Pauses.TotalNanos) * 1e-6;
    Report.MaxPauseMs =
        std::max(Report.MaxPauseMs, double(R.Pauses.MaxNanos) * 1e-6);
  }
  return Report;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Options = parseBenchOptions(
      Argc, Argv, {.Run = {.Scale = 0.5, .Reps = 1}});
  printFigureHeader("Ablation",
                    "mutator pause times: stop-the-world vs on-the-fly");

  Table T({"collector", "workload", "cycles", "world stops",
           "max stop ms", "voluntary stalls", "max stall ms",
           "total stalled ms"});
  for (const char *Name : {"mtrt", "javac"}) {
    Profile P = profileByName(Name);
    struct Row {
      const char *Label;
      CollectorChoice Choice;
    } Rows[] = {
        {"stop-the-world", CollectorChoice::StopTheWorld},
        {"DLG on-the-fly", CollectorChoice::NonGenerational},
        {"generational on-the-fly", CollectorChoice::Generational},
    };
    for (const Row &R : Rows) {
      PauseReport Report = runWithPauses(P, R.Choice, Options.Run.Scale);
      T.addRow({R.Label, Name, Table::count(Report.Cycles),
                Table::count(Report.StwPauses),
                Table::number(Report.MaxStwPauseMs, 2),
                Table::count(Report.Stalls - Report.StwPauses),
                Table::number(Report.MaxPauseMs, 2),
                Table::number(Report.TotalPauseMs, 1)});
    }
    T.addSeparator();
  }
  T.print(stdout);
  std::printf("\nStop-the-world pauses stop EVERY thread for the whole "
              "trace+sweep; the\non-the-fly collectors never stop a thread "
              "— their only stalls are\nallocation-throttle waits when the "
              "mutators outrun the collector.\n");
  printFigureFooter();
  return 0;
}

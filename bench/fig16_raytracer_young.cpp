//===- bench/fig16_raytracer_young.cpp - Figure 16 reproduction -------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// Figure 16: tuning the young-generation size for the multithreaded Ray
// Tracer — % improvement of generations for block marking (4096-byte
// cards) and object marking (16-byte cards), young sizes 1/2/4/8 MB,
// threads 2..10.  Paper shape: more threads and bigger young generations
// help; object marking with 8 MB young is best.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "harness/BenchHarness.h"

using namespace gengc;
using namespace gengc::bench;
using namespace gengc::workload;

int main(int Argc, char **Argv) {
  BenchOptions Base = parseBenchOptions(
      Argc, Argv, {.Run = {.Scale = 0.35, .Reps = 1}});
  printFigureHeader("Figure 16",
                    "young-size tuning, multithreaded Ray Tracer");

  const unsigned ThreadCounts[] = {2, 4, 6, 8, 10};
  const unsigned YoungMb[] = {1, 2, 4, 8};
  const struct {
    const char *Label;
    uint32_t CardBytes;
    double Paper[4][5]; // [young][threads]
  } Markings[] = {
      {"block marking (4096B cards)",
       4096,
       {{-3.9, -8.8, 5.0, 9.0, 8.2},
        {0.8, -7.1, 6.0, 9.8, 8.7},
        {1.1, -2.5, 6.6, 9.8, 7.4},
        {-0.9, 4.7, 7.7, 10.9, 8.8}}},
      {"object marking (16B cards)",
       16,
       {{-4.7, -2.6, 4.3, 14.0, 13.0},
        {1.4, -4.4, 5.9, 11.3, 8.6},
        {1.3, 2.6, 10.6, 16.0, 11.7},
        {1.9, 8.0, 13.2, 18.8, 15.4}}},
  };

  for (const auto &Marking : Markings) {
    std::printf("-- %s --\n", Marking.Label);
    Table T({"young", "2 thr (paper/meas)", "4 thr", "6 thr", "8 thr",
             "10 thr"});
    for (unsigned Y = 0; Y < 4; ++Y) {
      std::vector<std::string> Row{std::to_string(YoungMb[Y]) + "m"};
      for (unsigned TIdx = 0; TIdx < 5; ++TIdx) {
        Profile P = profileByName("raytracer");
        P.Threads = ThreadCounts[TIdx];
        P.AllocBytesPerThread =
            (P.AllocBytesPerThread * 4) / ThreadCounts[TIdx];
        BenchOptions Options = Base;
        Options.YoungBytes = uint64_t(YoungMb[Y]) << 20;
        Options.CardBytes = Marking.CardBytes;
        double Measured =
            medianImprovement(P, Options, Metric::CpuSeconds);
        Row.push_back(Table::percent(Marking.Paper[Y][TIdx]) + " / " +
                      Table::percent(Measured));
      }
      T.addRow(Row);
    }
    T.print(stdout);
    std::printf("\n");
  }
  printFigureFooter();
  return 0;
}

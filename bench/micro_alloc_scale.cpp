//===- bench/micro_alloc_scale.cpp - Allocation-path scalability ------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// Allocation-churn throughput as mutator count grows 1 -> 256, for the
// sharded central free lists (AllocShards=8, batched refill) against the
// pre-sharding configuration (one shard, one chain per refill).  Every
// thread hammers allocate() with a small-object size mix while the
// collector runs on its normal triggers, so the measurement covers the
// whole path the refactor touched: thread cache -> home shard -> steal ->
// lock-free block claim -> carve, plus sweep returning chains to shards.
//
// ctest -L bench-smoke runs the 1- and 8-thread points as a crash/regression
// canary; the bench_alloc_scale_json target writes the full curve to
// BENCH_alloc_scale.json, and tools/bench_diff.py compares that file against
// bench/baselines/BENCH_alloc_scale.json (>15% throughput regression at the
// 1- and 8-thread points fails).
//
//===----------------------------------------------------------------------===//

#include <benchmark/benchmark.h>

#include <condition_variable>
#include <mutex>

#include "core/Runtime.h"

using namespace gengc;

namespace {

RuntimeConfig scaleConfig(uint32_t Shards, uint32_t RefillBatchMax) {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 64ull << 20;
  Config.Heap.AllocShards = Shards;
  Config.Heap.RefillBatchMax = RefillBatchMax;
  Config.Choice = CollectorChoice::Generational;
  Config.Collector.GcThreads = 2;
  return Config;
}

/// One Runtime shared by every benchmark thread, with explicit create /
/// destroy rendezvous (benchmark threads enter and leave the function
/// unsynchronized, so thread 0 must not delete the runtime while a sibling
/// still holds a mutator).
struct SharedRuntime {
  std::mutex M;
  std::condition_variable Cv;
  Runtime *RT = nullptr;
  int Exited = 0;

  Runtime &acquire(benchmark::State &State, const RuntimeConfig &Config) {
    std::unique_lock Locked(M);
    if (State.thread_index() == 0) {
      RT = new Runtime(Config);
      Exited = 0;
      Cv.notify_all();
    } else {
      Cv.wait(Locked, [&] { return RT != nullptr; });
    }
    return *RT;
  }

  void release(benchmark::State &State) {
    std::unique_lock Locked(M);
    ++Exited;
    Cv.notify_all();
    if (State.thread_index() == 0) {
      Cv.wait(Locked, [&] { return Exited == State.threads(); });
      delete RT;
      RT = nullptr;
    }
  }
};

SharedRuntime Shared;

void allocChurn(benchmark::State &State, uint32_t Shards,
                uint32_t RefillBatchMax) {
  Runtime &RT = Shared.acquire(State, scaleConfig(Shards, RefillBatchMax));
  {
    auto M = RT.attachMutator();
    uint64_t I = 0;
    constexpr uint64_t BatchIters = 1024;
    // The benchmark harness rendezvous-barriers all threads inside the
    // first and the final KeepRunningBatch call.  A thread parked there
    // cannot cooperate with handshakes, which would wedge the collector
    // (and any sibling waiting on memory), so the mutator is declared
    // Blocked across every harness call — the collector responds on its
    // behalf — and live only while actually allocating.
    M->enterBlocked();
    while (State.KeepRunningBatch(BatchIters)) {
      M->exitBlocked();
      for (uint64_t J = 0; J < BatchIters; ++J) {
        // Three size classes so refills hit several shard rows; objects
        // are dropped immediately — the young trigger recycles them.
        uint32_t Bytes = I % 3 == 0 ? 16 : (I % 3 == 1 ? 48 : 256);
        ObjectRef Ref = M->allocate(1, Bytes);
        benchmark::DoNotOptimize(Ref);
        if (++I % 64 == 0)
          M->cooperate();
      }
      M->enterBlocked();
    }
    M->exitBlocked();
  }
  State.SetItemsProcessed(State.iterations());
  Shared.release(State);
}

BENCHMARK_CAPTURE(allocChurn, sharded, /*Shards=*/8u, /*RefillBatchMax=*/8u)
    ->ThreadRange(1, 256)
    ->UseRealTime();
BENCHMARK_CAPTURE(allocChurn, single_shard, /*Shards=*/1u,
                  /*RefillBatchMax=*/1u)
    ->ThreadRange(1, 256)
    ->UseRealTime();

} // namespace

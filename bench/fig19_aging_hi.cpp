//===- bench/fig19_aging_hi.cpp - Figure 19 reproduction --------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// Figure 19: the aging mechanism with tenuring thresholds 8 and 10 (the
// second half of the paper's aging sweep; see fig18 for 4 and 6).  Same
// conclusion: higher thresholds do not rescue aging.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "harness/BenchHarness.h"

using namespace gengc;
using namespace gengc::bench;
using namespace gengc::workload;

namespace {
struct PaperRow {
  const char *Name;
  double Values[4]; // 1m 2m 4m 8m
};

void agingSweep(const BenchOptions &Base, unsigned OldestAge,
                const PaperRow (&Paper)[7]) {
  std::printf("-- object marking with aging, age %u is old --\n", OldestAge);
  const unsigned YoungMb[] = {1, 2, 4, 8};
  Table T({"benchmark", "1m (paper/meas)", "2m", "4m", "8m"});
  for (const PaperRow &Row : Paper) {
    Profile P = profileByName(Row.Name);
    std::vector<std::string> Cells{Row.Name};
    for (unsigned Y = 0; Y < 4; ++Y) {
      BenchOptions Options = Base;
      Options.YoungBytes = uint64_t(YoungMb[Y]) << 20;
      Options.Aging = true;
      Options.OldestAge = uint8_t(OldestAge);
      double Measured =
            medianImprovement(P, Options, Metric::CpuSeconds);
      Cells.push_back(Table::percent(Row.Values[Y]) + " / " +
                      Table::percent(Measured));
    }
    T.addRow(Cells);
  }
  T.print(stdout);
  std::printf("\n");
}
} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Base = parseBenchOptions(
      Argc, Argv, {.Run = {.Scale = 0.5, .Reps = 1}});
  printFigureHeader("Figure 19", "aging mechanism, thresholds 8 and 10");

  const PaperRow Age8[] = {
      {"compress", {0.8, 0.2, -0.2, 0.1}},
      {"jess", {-14.6, -17.3, -5.1, -3.8}},
      {"db", {-3.0, -1.5, -1.2, 0.0}},
      {"javac", {-27.0, -13.1, 3.6, 17.4}},
      {"mtrt", {-10.3, -8.0, -3.1, -2.8}},
      {"jack", {-11.6, -3.5, -2.0, -0.4}},
      {"anagram", {-11.8, -0.4, 16.1, 23.9}},
  };
  const PaperRow Age10[] = {
      {"compress", {0.7, 0.5, -0.3, 0.2}},
      {"jess", {-17.6, -9.4, -4.9, -3.6}},
      {"db", {-3.5, -2.0, -1.7, -0.3}},
      {"javac", {-33.5, -16.2, 3.2, 15.5}},
      {"mtrt", {-22.9, -10.6, -1.7, -1.4}},
      {"jack", {-14.4, -4.2, -2.6, -1.2}},
      {"anagram", {-11.7, -1.6, 14.9, 23.4}},
  };
  agingSweep(Base, 8, Age8);
  agingSweep(Base, 10, Age10);
  printFigureFooter();
  return 0;
}

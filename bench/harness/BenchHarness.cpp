//===- bench/harness/BenchHarness.cpp - Shared bench plumbing --------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "harness/BenchHarness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

using namespace gengc;
using namespace gengc::bench;
using namespace gengc::workload;

namespace {

/// Parsed value of one "--name=value" / env knob.
bool parseDouble(const char *Text, double &Out) {
  char *End = nullptr;
  double Value = std::strtod(Text, &End);
  if (End == Text || *End != '\0' || Value <= 0.0)
    return false;
  Out = Value;
  return true;
}

bool parseUnsigned(const char *Text, unsigned &Out) {
  char *End = nullptr;
  unsigned long Value = std::strtoul(Text, &End, 10);
  if (End == Text || *End != '\0' || Value == 0 || Value > 1u << 20)
    return false;
  Out = unsigned(Value);
  return true;
}

bool parseSeed(const char *Text, uint64_t &Out) {
  char *End = nullptr;
  unsigned long long Value = std::strtoull(Text, &End, 0);
  if (End == Text || *End != '\0')
    return false;
  Out = Value;
  return true;
}

[[noreturn]] void usageError(const char *Arg) {
  std::fprintf(stderr,
               "unknown argument: %s\n"
               "shared bench options: --scale=X --reps=N --copies=N "
               "--warmup=N --seed=N\n"
               "(or GENGC_SCALE / GENGC_REPS / GENGC_COPIES / GENGC_WARMUP / "
               "GENGC_SEED)\n",
               Arg);
  std::exit(2);
}

/// Applies one knob by name; returns false if \p Name is not a shared
/// option.  \p Source is "argument" or "environment" for diagnostics.
bool applyOption(BenchOptions &Options, const char *Name, const char *Value,
                 const char *Source) {
  bool Ok = true;
  if (std::strcmp(Name, "scale") == 0) {
    double Scale = 1.0;
    Ok = parseDouble(Value, Scale);
    if (Ok)
      Options.Run.Scale *= Scale; // multiplies the bench default
  } else if (std::strcmp(Name, "reps") == 0) {
    Ok = parseUnsigned(Value, Options.Run.Reps);
  } else if (std::strcmp(Name, "copies") == 0) {
    Ok = parseUnsigned(Value, Options.Run.Copies);
  } else if (std::strcmp(Name, "warmup") == 0) {
    unsigned Warmup = 0;
    char *End = nullptr;
    unsigned long Parsed = std::strtoul(Value, &End, 10);
    Ok = End != Value && *End == '\0' && Parsed <= 1u << 20;
    if (Ok)
      Warmup = unsigned(Parsed);
    Options.Run.Warmup = Warmup;
  } else if (std::strcmp(Name, "seed") == 0) {
    Ok = parseSeed(Value, Options.Run.Seed);
  } else {
    return false;
  }
  if (!Ok) {
    std::fprintf(stderr, "invalid %s: %s=%s\n", Source, Name, Value);
    std::exit(2);
  }
  return true;
}

BenchOptions GlobalOptions;

} // namespace

BenchOptions gengc::bench::parseBenchOptions(int &Argc, char **Argv,
                                             BenchOptions Defaults,
                                             bool AllowUnknown) {
  BenchOptions Options = Defaults;

  // Environment first; argv below overrides it.
  static const struct {
    const char *Env;
    const char *Name;
  } EnvKnobs[] = {{"GENGC_SCALE", "scale"},
                  {"GENGC_REPS", "reps"},
                  {"GENGC_COPIES", "copies"},
                  {"GENGC_WARMUP", "warmup"},
                  {"GENGC_SEED", "seed"}};
  for (const auto &Knob : EnvKnobs)
    if (const char *Value = std::getenv(Knob.Env))
      applyOption(Options, Knob.Name, Value, "environment");

  // Consume recognized --name=value arguments, compacting Argv in place so
  // the caller can forward the rest (google-benchmark flags, matrix flags).
  int Out = 1;
  for (int In = 1; In < Argc; ++In) {
    char *Arg = Argv[In];
    bool Consumed = false;
    if (Arg[0] == '-' && Arg[1] == '-') {
      if (const char *Eq = std::strchr(Arg + 2, '=')) {
        std::string Name(Arg + 2, size_t(Eq - (Arg + 2)));
        Consumed = applyOption(Options, Name.c_str(), Eq + 1, "argument");
      }
    }
    if (!Consumed) {
      if (!AllowUnknown)
        usageError(Arg);
      Argv[Out++] = Arg;
    }
  }
  if (AllowUnknown) {
    Argc = Out;
    Argv[Argc] = nullptr;
  }
  return Options;
}

const BenchOptions &gengc::bench::globalBenchOptions() { return GlobalOptions; }

void gengc::bench::setGlobalBenchOptions(const BenchOptions &Options) {
  GlobalOptions = Options;
}

RuntimeConfig gengc::bench::configFor(CollectorChoice Choice,
                                      const BenchOptions &Options) {
  RuntimeConfig Config = makeConfig(Choice, Options.YoungBytes,
                                    Options.CardBytes);
  Config.Collector.Aging = Options.Aging;
  Config.Collector.OldestAge = Options.OldestAge;
  Config.Heap.TrackPages = Options.TrackPages;
  return Config;
}

RunResult gengc::bench::runMedian(const Profile &P, CollectorChoice Choice,
                                  const BenchOptions &Options) {
  return runWorkload(P, configFor(Choice, Options), Options.Run);
}

double gengc::bench::metricValue(const Profile &P, const RunResult &R,
                                 Metric M) {
  if (M == Metric::Elapsed)
    return R.ElapsedSeconds;
  return R.ElapsedSeconds * double(P.Threads) +
         double(R.Gc.GcActiveNanos) * 1e-9;
}

double gengc::bench::medianImprovement(const Profile &P,
                                       const BenchOptions &Options,
                                       Metric M) {
  // Each rep pairs one run of each collector on the same seed, so noise on
  // a shared machine cancels within the pair; the median improvement is
  // reported (not the improvement of medians).
  RunOptions One = Options.Run;
  One.Reps = 1;
  uint64_t BaseSeed = Options.Run.Seed ? Options.Run.Seed : P.Seed;
  std::vector<double> Improvements;
  for (unsigned Rep = 0; Rep < Options.Run.Reps; ++Rep) {
    One.Seed = BaseSeed + Rep;
    RunResult Base = runWorkload(
        P, configFor(CollectorChoice::NonGenerational, Options), One);
    RunResult Gen = runWorkload(
        P, configFor(CollectorChoice::Generational, Options), One);
    double BaseValue = metricValue(P, Base, M);
    double GenValue = metricValue(P, Gen, M);
    Improvements.push_back(
        BaseValue > 0 ? 100.0 * (BaseValue - GenValue) / BaseValue : 0.0);
  }
  std::sort(Improvements.begin(), Improvements.end());
  return Improvements[Improvements.size() / 2];
}

void gengc::bench::printFigureHeader(const char *Figure, const char *Title) {
  std::printf("\n=== %s — %s ===\n", Figure, Title);
  std::printf("(Domani/Kolodner/Petrank, PLDI 2000; \"paper\" columns are "
              "the published values)\n\n");
}

void gengc::bench::printFigureFooter() {
  std::printf("\nNote: our substrate is a synthetic runtime on different "
              "hardware; compare shapes\n(sign, ordering, rough ratios), "
              "not absolute values.  --scale/--reps (or GENGC_SCALE /\n"
              "GENGC_REPS) adjust run length and repetitions.\n");
}

//===- bench/harness/BenchHarness.cpp - Shared bench plumbing --------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "harness/BenchHarness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace gengc;
using namespace gengc::bench;
using namespace gengc::workload;

BenchOptions gengc::bench::withEnv(BenchOptions Options) {
  Options.Scale *= envScale(1.0);
  if (const char *Reps = std::getenv("GENGC_REPS")) {
    int Value = std::atoi(Reps);
    if (Value > 0)
      Options.Reps = unsigned(Value);
  }
  return Options;
}

RuntimeConfig gengc::bench::configFor(CollectorChoice Choice,
                                      const BenchOptions &Options) {
  RuntimeConfig Config = makeConfig(Choice, Options.YoungBytes,
                                    Options.CardBytes);
  Config.Collector.Aging = Options.Aging;
  Config.Collector.OldestAge = Options.OldestAge;
  Config.Heap.TrackPages = Options.TrackPages;
  return Config;
}

RunResult gengc::bench::runMedian(const Profile &P, CollectorChoice Choice,
                                  const BenchOptions &Options) {
  std::vector<RunResult> Runs;
  Runs.reserve(Options.Reps);
  for (unsigned Rep = 0; Rep < Options.Reps; ++Rep) {
    Profile Shifted = P;
    Shifted.Seed += Rep; // independent allocation streams per repetition
    Runs.push_back(runWorkloadCopies(Shifted, configFor(Choice, Options),
                                     Options.Copies, Options.Scale));
  }
  std::sort(Runs.begin(), Runs.end(),
            [](const RunResult &A, const RunResult &B) {
              return A.ElapsedSeconds < B.ElapsedSeconds;
            });
  return Runs[Runs.size() / 2];
}

double gengc::bench::metricValue(const Profile &P, const RunResult &R,
                                 Metric M) {
  if (M == Metric::Elapsed)
    return R.ElapsedSeconds;
  return R.ElapsedSeconds * double(P.Threads) +
         double(R.Gc.GcActiveNanos) * 1e-9;
}

double gengc::bench::medianImprovement(const Profile &P,
                                       const BenchOptions &Options,
                                       Metric M) {
  std::vector<double> Improvements;
  for (unsigned Rep = 0; Rep < Options.Reps; ++Rep) {
    Profile Shifted = P;
    Shifted.Seed += Rep;
    RunResult Base =
        runWorkloadCopies(Shifted, configFor(CollectorChoice::NonGenerational,
                                             Options),
                          Options.Copies, Options.Scale);
    RunResult Gen =
        runWorkloadCopies(Shifted, configFor(CollectorChoice::Generational,
                                             Options),
                          Options.Copies, Options.Scale);
    double BaseValue = metricValue(Shifted, Base, M);
    double GenValue = metricValue(Shifted, Gen, M);
    Improvements.push_back(
        BaseValue > 0 ? 100.0 * (BaseValue - GenValue) / BaseValue : 0.0);
  }
  std::sort(Improvements.begin(), Improvements.end());
  return Improvements[Improvements.size() / 2];
}

void gengc::bench::printFigureHeader(const char *Figure, const char *Title) {
  std::printf("\n=== %s — %s ===\n", Figure, Title);
  std::printf("(Domani/Kolodner/Petrank, PLDI 2000; \"paper\" columns are "
              "the published values)\n\n");
}

void gengc::bench::printFigureFooter() {
  std::printf("\nNote: our substrate is a synthetic runtime on different "
              "hardware; compare shapes\n(sign, ordering, rough ratios), "
              "not absolute values.  GENGC_SCALE / GENGC_REPS\nadjust run "
              "length and repetitions.\n");
}

//===- bench/harness/BenchMain.cpp - Shared micro-bench main ---------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// main() for the google-benchmark micro benches: the shared gengc option
/// surface (--scale/--seed etc., see BenchHarness.h) is parsed and stripped
/// first — benches read it via globalBenchOptions() — and everything left
/// is handed to google-benchmark unchanged.  Replaces
/// benchmark::benchmark_main so the micro benches accept the same flags as
/// the figure and scenario binaries.
///
//===----------------------------------------------------------------------===//

#include <benchmark/benchmark.h>

#include "harness/BenchHarness.h"

int main(int Argc, char **Argv) {
  gengc::bench::setGlobalBenchOptions(gengc::bench::parseBenchOptions(
      Argc, Argv, {}, /*AllowUnknown=*/true));
  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

//===- bench/harness/BenchHarness.h - Shared bench plumbing -----*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the per-figure bench binaries: run a workload under
/// one or both collectors, repeat runs and take medians (the paper averaged
/// 8 runs per data point), and print tables that put the paper's published
/// numbers next to ours.
///
/// Every binary honors:
///   GENGC_SCALE  — multiplies every allocation budget (default per-bench;
///                  raise it for more stable numbers, lower for smoke runs);
///   GENGC_REPS   — overrides the repetition count for timing benches.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_BENCH_BENCHHARNESS_H
#define GENGC_BENCH_BENCHHARNESS_H

#include <string>

#include "support/Table.h"
#include "workload/Runner.h"

namespace gengc::bench {

/// Run parameters shared by the figure benches.
struct BenchOptions {
  double Scale = 1.0;
  unsigned Reps = 3;
  unsigned Copies = 1;
  uint64_t YoungBytes = 4ull << 20;
  uint32_t CardBytes = 16;
  bool Aging = false;
  uint8_t OldestAge = 2;
  bool TrackPages = false;
};

/// Applies GENGC_SCALE / GENGC_REPS on top of the bench's defaults.
BenchOptions withEnv(BenchOptions Options);

/// Builds the runtime configuration for \p Choice under \p Options.
RuntimeConfig configFor(CollectorChoice Choice, const BenchOptions &Options);

/// Runs \p P under \p Choice, repeating Options.Reps times and returning
/// the run with the median elapsed time (counts come from that same run).
workload::RunResult runMedian(const workload::Profile &P,
                              CollectorChoice Choice,
                              const BenchOptions &Options);

/// What a comparison measures.
enum class Metric {
  /// Wall-clock elapsed time of the program — the paper's uniprocessor
  /// measurement (the collector largely hides on the spare core).
  Elapsed,
  /// Total CPU cost: mutator-thread seconds plus collector-active seconds.
  /// Our substitute for the paper's saturated-multiprocessor runs: when
  /// every processor is busy, every collector second displaces a mutator
  /// second, so the cheaper total wins.  (Running real simultaneous copies
  /// on this machine oversubscribes the cores and handshake scheduling
  /// latency — milliseconds per handshake — swamps the signal.)
  CpuSeconds,
};

/// Extracts \p Metric from a run of \p P.
double metricValue(const workload::Profile &P, const workload::RunResult &R,
                   Metric M);

/// Median improvement of the generational collector over the baseline for
/// \p P under \p Metric (each rep pairs one run of each collector).
double medianImprovement(const workload::Profile &P,
                         const BenchOptions &Options,
                         Metric M = Metric::Elapsed);

/// Prints the standard figure banner.
void printFigureHeader(const char *Figure, const char *Title);

/// Prints the standard trailer explaining the comparison semantics.
void printFigureFooter();

} // namespace gengc::bench

#endif // GENGC_BENCH_BENCHHARNESS_H

//===- bench/harness/BenchHarness.h - Shared bench plumbing -----*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the bench binaries: one option surface (env + argv)
/// for figure benches, google-benchmark micro benches and the scenario
/// matrix alike; run a workload under one or both collectors; repeat runs
/// and take medians (the paper averaged 8 runs per data point); print
/// tables that put the paper's published numbers next to ours.
///
/// Every binary honors (argv wins over env wins over the bench's defaults):
///   GENGC_SCALE  / --scale=X   — multiplies every volume knob (allocation
///                                budgets, request counts).  Multiplies the
///                                bench default rather than replacing it,
///                                so smoke scripts can halve every bench
///                                uniformly;
///   GENGC_REPS   / --reps=N    — timed repetitions (median is reported);
///   GENGC_COPIES / --copies=N  — simultaneous workload copies;
///   GENGC_WARMUP / --warmup=N  — discarded warmup runs;
///   GENGC_SEED   / --seed=N    — workload seed override.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_BENCH_BENCHHARNESS_H
#define GENGC_BENCH_BENCHHARNESS_H

#include <string>

#include "support/Table.h"
#include "workload/Runner.h"

namespace gengc::bench {

/// Run parameters shared by the bench binaries: how to run (the RunOptions
/// forwarded to the workload layer) plus the collector-config knobs the
/// figure benches sweep.
struct BenchOptions {
  /// Scale/reps/copies/warmup/seed, forwarded verbatim to runWorkload /
  /// runScenario.
  workload::RunOptions Run;
  uint64_t YoungBytes = 4ull << 20;
  uint32_t CardBytes = 16;
  bool Aging = false;
  uint8_t OldestAge = 2;
  bool TrackPages = false;
};

/// Parses the shared option surface (header comment) on top of
/// \p Defaults.  Recognized flags are removed from Argv (Argc is updated),
/// so remaining arguments can be forwarded — google-benchmark flags for the
/// micro benches, matrix-specific flags for the scenario driver.  When
/// \p AllowUnknown is false, any argument left over after parsing is a
/// usage error and the process exits with a diagnostic.
BenchOptions parseBenchOptions(int &Argc, char **Argv, BenchOptions Defaults,
                               bool AllowUnknown = false);

/// The options parsed by the shared bench main (harness/BenchMain.cpp).
/// Micro benches read their scale from here; defaults are all-default
/// BenchOptions until the main runs.
const BenchOptions &globalBenchOptions();

/// Installs \p Options as the globalBenchOptions() value (called by the
/// shared main; exposed for tests).
void setGlobalBenchOptions(const BenchOptions &Options);

/// Builds the runtime configuration for \p Choice under \p Options.
RuntimeConfig configFor(CollectorChoice Choice, const BenchOptions &Options);

/// Runs \p P under \p Choice per Options.Run (median of Options.Run.Reps
/// timed repetitions; counts come from that same run).
workload::RunResult runMedian(const workload::Profile &P,
                              CollectorChoice Choice,
                              const BenchOptions &Options);

/// What a comparison measures.
enum class Metric {
  /// Wall-clock elapsed time of the program — the paper's uniprocessor
  /// measurement (the collector largely hides on the spare core).
  Elapsed,
  /// Total CPU cost: mutator-thread seconds plus collector-active seconds.
  /// Our substitute for the paper's saturated-multiprocessor runs: when
  /// every processor is busy, every collector second displaces a mutator
  /// second, so the cheaper total wins.  (Running real simultaneous copies
  /// on this machine oversubscribes the cores and handshake scheduling
  /// latency — milliseconds per handshake — swamps the signal.)
  CpuSeconds,
};

/// Extracts \p Metric from a run of \p P.
double metricValue(const workload::Profile &P, const workload::RunResult &R,
                   Metric M);

/// Median improvement of the generational collector over the baseline for
/// \p P under \p Metric (each rep pairs one run of each collector).
double medianImprovement(const workload::Profile &P,
                         const BenchOptions &Options,
                         Metric M = Metric::Elapsed);

/// Prints the standard figure banner.
void printFigureHeader(const char *Figure, const char *Title);

/// Prints the standard trailer explaining the comparison semantics.
void printFigureFooter();

} // namespace gengc::bench

#endif // GENGC_BENCH_BENCHHARNESS_H

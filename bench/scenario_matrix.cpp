//===- bench/scenario_matrix.cpp - The server scenario scoreboard -----------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// Not a paper figure — the evaluation the paper would run today.  The
// paper scored its collector on SPECjvm98 throughput; a collector serving
// live traffic is scored on *tail latency under sustained request load*.
// This driver runs the server scenario family (workload/Scenario.h) as a
// matrix — collector {stw, dlg, gen} x scenario {churn, cache, mixed,
// burst} x configuration — and reports, per cell, open-loop request
// latency quantiles (p50/p99/p999 from MetricsSnapshot::RequestNanos — no
// ad-hoc timing), completed-request throughput, and the share of elapsed
// time a collection was active.
//
// The headline the matrix exists to pin: in the churn scenario the
// stop-the-world collector's whole trace lands in the request tail (p99 in
// the milliseconds), while the on-the-fly generational collector keeps the
// tail at queueing-jitter scale.  tools/bench_diff.py gates both the
// throughput and the p99 of every cell against the committed baseline
// (bench/baselines/BENCH_scenario_matrix.json).
//
//   scenario_matrix [--scale=X --reps=N ...] [--scenario=NAME]
//                   [--collector=stw|dlg|gen] [--json=PATH]
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "harness/BenchHarness.h"
#include "support/FaultInjector.h"
#include "workload/Scenario.h"

using namespace gengc;
using namespace gengc::bench;
using namespace gengc::workload;

namespace {

struct CollectorRow {
  const char *Label;
  CollectorChoice Choice;
};

const CollectorRow Collectors[] = {
    {"stw", CollectorChoice::StopTheWorld},
    {"dlg", CollectorChoice::NonGenerational},
    {"gen", CollectorChoice::Generational},
};

/// One configuration column of the matrix.  "base" runs under every
/// collector; the variants sweep generational-only knobs (they are
/// meaningless or identical for the other collectors).
struct ConfigRow {
  const char *Label;
  void (*Apply)(RuntimeConfig &);
};

const ConfigRow Configs[] = {
    {"base", [](RuntimeConfig &) {}},
    {"gct4", [](RuntimeConfig &C) { C.Collector.GcThreads = 4; }},
    {"lazy", [](RuntimeConfig &C) { C.Collector.Sweep = SweepPolicy::Lazy; }},
    {"young8",
     [](RuntimeConfig &C) { C.Collector.Trigger.YoungBytes = 8ull << 20; }},
};

/// One measured cell.
struct Cell {
  std::string Scenario;
  std::string Collector;
  std::string Config;
  uint64_t Requests = 0;
  double Rps = 0.0;
  double P50Usec = 0.0;
  double P99Usec = 0.0;
  double P999Usec = 0.0;
  double GcActivePercent = 0.0;
  size_t Cycles = 0;
  size_t Aborts = 0;
  size_t DegradedCycles = 0;
};

/// Arms the deterministic fault mix behind --faults: fixed seeds, so every
/// run of the column sees the same firing sequence.  Delay sites model a
/// noisy host; the bounded TraceAbort exercises the cycle-abort unwind and
/// the escalation ladder (DESIGN.md §19) under real request load.
void armBenchFaults() {
  FaultInjector::arm(FaultSite::HandshakeDelay,
                     FaultConfig{.Probability = 0.10,
                                 .DelayNanos = 500'000, .MaxHits = 64},
                     /*Seed=*/1);
  FaultInjector::arm(FaultSite::WorkerLaneStall,
                     FaultConfig{.Probability = 0.25,
                                 .DelayNanos = 200'000, .MaxHits = 64},
                     /*Seed=*/2);
  FaultInjector::arm(FaultSite::CardScanDelay,
                     FaultConfig{.Probability = 0.10,
                                 .DelayNanos = 100'000, .MaxHits = 64},
                     /*Seed=*/3);
  FaultInjector::arm(FaultSite::TraceAbort,
                     FaultConfig{.Probability = 0.5, .MaxHits = 2},
                     /*Seed=*/4);
}

Cell runCell(const ServerProfile &SP, const CollectorRow &Collector,
             const ConfigRow &Config, const BenchOptions &Options,
             bool Faults = false) {
  RuntimeConfig RC = configFor(Collector.Choice, Options);
  Config.Apply(RC);
  if (Faults) {
    // The faulted column runs the full escalation ladder so a wedged
    // handshake degrades the cell instead of hanging the benchmark.
    RC.Collector.Watchdog.Policy = WatchdogPolicy::Escalate;
    RC.Collector.Watchdog.DeadlineNanos = 2'000'000;
    RC.Collector.Watchdog.EscalateAfterFires = 2;
    armBenchFaults();
  }
  RunResult R = runScenario(SP, RC, Options.Run);
  if (Faults)
    FaultInjector::disarmAll();

  Cell C;
  C.Scenario = SP.Name;
  C.Collector = Collector.Label;
  C.Config = Faults ? "faults" : Config.Label;
  C.Requests = R.Requests;
  C.Rps = R.requestsPerSecond();
  C.P50Usec = R.Metrics.RequestNanos.quantileNanos(0.50) * 1e-3;
  C.P99Usec = R.Metrics.RequestNanos.quantileNanos(0.99) * 1e-3;
  C.P999Usec = R.Metrics.RequestNanos.quantileNanos(0.999) * 1e-3;
  C.GcActivePercent = R.percentGcActive();
  C.Cycles = R.Gc.Cycles.size();
  for (const CycleStats &Cycle : R.Gc.Cycles) {
    C.Aborts += Cycle.Aborted ? 1 : 0;
    C.DegradedCycles += Cycle.Degraded ? 1 : 0;
  }
  return C;
}

void writeJson(const std::string &Path, const std::vector<Cell> &Cells,
               double Scale) {
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
    std::exit(1);
  }
  Out << "{\n  \"schema\": \"gengc-scenario-matrix\",\n";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.4f", Scale);
  Out << "  \"scale\": " << Buf << ",\n  \"cells\": [\n";
  for (size_t I = 0; I < Cells.size(); ++I) {
    const Cell &C = Cells[I];
    Out << "    {\"scenario\": \"" << C.Scenario << "\", \"collector\": \""
        << C.Collector << "\", \"config\": \"" << C.Config << "\",\n";
    Out << "     \"requests\": " << C.Requests << ", ";
    std::snprintf(Buf, sizeof(Buf), "%.1f", C.Rps);
    Out << "\"requests_per_second\": " << Buf << ",\n     ";
    std::snprintf(Buf, sizeof(Buf), "%.2f", C.P50Usec);
    Out << "\"p50_usec\": " << Buf << ", ";
    std::snprintf(Buf, sizeof(Buf), "%.2f", C.P99Usec);
    Out << "\"p99_usec\": " << Buf << ", ";
    std::snprintf(Buf, sizeof(Buf), "%.2f", C.P999Usec);
    Out << "\"p999_usec\": " << Buf << ",\n     ";
    std::snprintf(Buf, sizeof(Buf), "%.2f", C.GcActivePercent);
    Out << "\"gc_active_percent\": " << Buf << ", \"cycles\": " << C.Cycles;
    // Only the opt-in faulted column carries resilience counters, so the
    // committed baseline schema is byte-identical without --faults.
    if (C.Config == "faults")
      Out << ", \"cycle_aborts\": " << C.Aborts
          << ", \"degraded_cycles\": " << C.DegradedCycles;
    Out << "}";
    Out << (I + 1 < Cells.size() ? ",\n" : "\n");
  }
  Out << "  ]\n}\n";
  std::printf("wrote %s (%zu cells)\n", Path.c_str(), Cells.size());
}

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: scenario_matrix [shared bench options] "
               "[--scenario=churn|cache|mixed|burst]\n"
               "                       [--collector=stw|dlg|gen] "
               "[--json=PATH] [--faults]\n");
  std::exit(2);
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Options = parseBenchOptions(
      Argc, Argv, {.Run = {.Scale = 1.0, .Reps = 1}}, /*AllowUnknown=*/true);

  std::string OnlyScenario, OnlyCollector, JsonPath;
  bool WithFaults = false;
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--scenario=", 11) == 0)
      OnlyScenario = Arg + 11;
    else if (std::strncmp(Arg, "--collector=", 12) == 0)
      OnlyCollector = Arg + 12;
    else if (std::strncmp(Arg, "--json=", 7) == 0)
      JsonPath = Arg + 7;
    else if (std::strcmp(Arg, "--faults") == 0)
      WithFaults = true;
    else
      usage();
  }

  printFigureHeader("Scenario matrix",
                    "server workloads x collectors: latency SLO scoreboard");
  std::printf("open-loop request latency = completion - scheduled arrival "
              "(collector backlog\nshows up as queueing delay; no "
              "coordinated omission).  Quantiles come from\n"
              "MetricsSnapshot::RequestNanos.\n\n");

  std::vector<Cell> Cells;
  Table T({"scenario", "collector", "config", "req/s", "p50 us", "p99 us",
           "p999 us", "GC act %", "cycles"});
  for (const std::string &Name : serverScenarioNames()) {
    if (!OnlyScenario.empty() && Name != OnlyScenario)
      continue;
    ServerProfile SP = serverScenarioByName(Name);
    // All three collectors at the base config, then the generational-only
    // configuration sweep.  (The variant columns are not run under stw/dlg:
    // on this machine the full cross product triples the matrix runtime for
    // columns that only restate the base cell.)
    for (const CollectorRow &Collector : Collectors) {
      if (!OnlyCollector.empty() && OnlyCollector != Collector.Label)
        continue;
      for (const ConfigRow &Config : Configs) {
        bool GenOnly = std::strcmp(Config.Label, "base") != 0;
        if (GenOnly && Collector.Choice != CollectorChoice::Generational)
          continue;
        Cell C = runCell(SP, Collector, Config, Options);
        T.addRow({C.Scenario, C.Collector, C.Config,
                  Table::number(C.Rps, 0), Table::number(C.P50Usec, 1),
                  Table::number(C.P99Usec, 1), Table::number(C.P999Usec, 1),
                  Table::number(C.GcActivePercent, 1),
                  Table::count(C.Cycles)});
        Cells.push_back(std::move(C));
      }
      // The opt-in faulted column: the base configuration again, but under
      // the deterministic fault mix and the Escalate ladder.  Off by
      // default so the committed baseline never sees it.
      if (WithFaults) {
        Cell C = runCell(SP, Collector, Configs[0], Options, /*Faults=*/true);
        T.addRow({C.Scenario, C.Collector, C.Config,
                  Table::number(C.Rps, 0), Table::number(C.P50Usec, 1),
                  Table::number(C.P99Usec, 1), Table::number(C.P999Usec, 1),
                  Table::number(C.GcActivePercent, 1),
                  Table::count(C.Cycles)});
        std::printf("  [faults] %s/%s: %zu aborts, %zu degraded cycles\n",
                    C.Scenario.c_str(), C.Collector.c_str(), C.Aborts,
                    C.DegradedCycles);
        Cells.push_back(std::move(C));
      }
    }
    T.addSeparator();
  }
  T.print(stdout);
  printFigureFooter();

  if (!JsonPath.empty())
    writeJson(JsonPath, Cells, Options.Run.Scale);
  return 0;
}

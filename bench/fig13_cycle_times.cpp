//===- bench/fig13_cycle_times.cpp - Figure 13 reproduction -----------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// Figure 13: average elapsed time of collection cycles — partial vs full vs
// non-generational.  The paper's observation to reproduce: partial
// collections are cheaper but not drastically so, because a mark-and-sweep
// sweep costs the same either way; only the trace shrinks.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "harness/BenchHarness.h"

using namespace gengc;
using namespace gengc::bench;
using namespace gengc::workload;

namespace {
struct PaperRow {
  const char *Name;
  double PartialMs, FullMs, NonGenMs;
};
} // namespace

int main(int Argc, char **Argv) {
  printFigureHeader("Figure 13", "average elapsed time of collection cycles");

  const PaperRow Paper[] = {
      {"mtrt", 99, -1, 260},   {"compress", 17, 35, 31},
      {"db", 80, 270, 215},    {"jess", 61, 116, 87},
      {"javac", 145, 367, 249}, {"jack", 60, 95, 71},
      {"anagram", 52, 429, 346},
  };

  BenchOptions Options = parseBenchOptions(
      Argc, Argv, {.Run = {.Scale = 1.0, .Reps = 1}});

  auto Cell = [](double Value) {
    return Value < 0 ? std::string("N/A") : Table::number(Value, 2);
  };

  Table T({"benchmark", "partial ms (paper)", "partial ms",
           "full ms (paper)", "full ms", "non-gen ms (paper)",
           "non-gen ms"});
  for (const PaperRow &Row : Paper) {
    Profile P = profileByName(Row.Name);
    RunResult Gen = runMedian(P, CollectorChoice::Generational, Options);
    RunResult Base = runMedian(P, CollectorChoice::NonGenerational, Options);
    // Mean cycle times come from the shared metrics snapshot.
    double PartialMs = Gen.Metrics.meanCycleNanos(CycleKind::Partial) * 1e-6;
    double FullMs = Gen.Metrics.count(CycleKind::Full)
                        ? Gen.Metrics.meanCycleNanos(CycleKind::Full) * 1e-6
                        : -1;
    double NonGenMs =
        Base.Metrics.meanCycleNanos(CycleKind::NonGenerational) * 1e-6;
    T.addRow({Row.Name, Cell(Row.PartialMs), Cell(PartialMs),
              Cell(Row.FullMs), Cell(FullMs), Cell(Row.NonGenMs),
              Cell(NonGenMs)});
  }
  T.print(stdout);
  printFigureFooter();
  return 0;
}

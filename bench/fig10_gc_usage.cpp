//===- bench/fig10_gc_usage.cpp - Figure 10 reproduction --------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// Figure 10: how much each application uses the collector — percent of time
// a collection is active, number of partial and full collections with the
// generational collector, and the same for the non-generational baseline.
// The shapes: Anagram and javac are collection-bound, compress and db
// barely collect, and the generational collector turns almost all full
// collections into partial ones.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "harness/BenchHarness.h"

using namespace gengc;
using namespace gengc::bench;
using namespace gengc::workload;

namespace {
struct PaperRow {
  const char *Name;
  double PctGen;
  unsigned Partial, Full;
  double PctBase;
  unsigned CyclesBase;
};
} // namespace

int main(int Argc, char **Argv) {
  printFigureHeader("Figure 10", "use of garbage collection in application");

  const PaperRow Paper[] = {
      {"mtrt", 21.5, 36, 0, 30.5, 26},   {"compress", 1.7, 5, 15, 1.2, 17},
      {"db", 2.4, 15, 1, 3.4, 15},       {"jess", 13.3, 70, 2, 14.8, 51},
      {"javac", 23.8, 36, 16, 43.3, 82}, {"jack", 7.7, 45, 4, 6.3, 35},
      {"anagram", 62.8, 152, 8, 78.9, 56},
  };

  BenchOptions Options = parseBenchOptions(
      Argc, Argv, {.Run = {.Scale = 1.0, .Reps = 1}});

  Table T({"benchmark", "%GC (paper)", "%GC", "#partial (paper)", "#partial",
           "#full (paper)", "#full", "%GC w/o gen (paper)", "%GC w/o gen",
           "#GC w/o gen (paper)", "#GC w/o gen"});
  for (const PaperRow &Row : Paper) {
    Profile P = profileByName(Row.Name);
    RunResult Gen = runMedian(P, CollectorChoice::Generational, Options);
    RunResult Base = runMedian(P, CollectorChoice::NonGenerational, Options);
    // Counts and active time come from the shared metrics snapshot.
    T.addRow({Row.Name, Table::number(Row.PctGen),
              Table::number(Gen.percentGcActive()), Table::count(Row.Partial),
              Table::count(Gen.Metrics.count(CycleKind::Partial)),
              Table::count(Row.Full),
              Table::count(Gen.Metrics.count(CycleKind::Full)),
              Table::number(Row.PctBase),
              Table::number(Base.percentGcActive()),
              Table::count(Row.CyclesBase),
              Table::count(Base.Metrics.count(CycleKind::NonGenerational))});
  }
  T.print(stdout);
  printFigureFooter();
  return 0;
}

//===- support/FaultInjector.cpp - Deterministic fault injection -----------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"

#include <chrono>
#include <mutex>
#include <thread>

#include "support/Random.h"

using namespace gengc;

namespace {
/// Slow-path state of one site, touched only while the site is armed.
struct SiteState {
  std::mutex Mutex;
  FaultConfig Config;
  Rng Stream;
  uint64_t Hits = 0;
};

SiteState &siteState(FaultSite Site) {
  // Function-local so the registry needs no static-initialization ordering
  // guarantees relative to tests that arm sites from global fixtures.
  static SiteState States[NumFaultSites];
  return States[unsigned(Site)];
}
} // namespace

std::atomic<uint32_t> FaultInjector::ArmedMask{0};

const char *gengc::faultSiteName(FaultSite Site) {
  switch (Site) {
  case FaultSite::AllocFail:
    return "alloc-fail";
  case FaultSite::HandshakeDelay:
    return "handshake-delay";
  case FaultSite::WorkerLaneStall:
    return "worker-lane-stall";
  case FaultSite::CardScanDelay:
    return "card-scan-delay";
  case FaultSite::ThreadStall:
    return "thread-stall";
  case FaultSite::TraceAbort:
    return "trace-abort";
  case FaultSite::SweepAbort:
    return "sweep-abort";
  }
  return "invalid";
}

void FaultInjector::arm(FaultSite Site, const FaultConfig &Config,
                        uint64_t Seed) {
  SiteState &S = siteState(Site);
  {
    std::scoped_lock Locked(S.Mutex);
    S.Config = Config;
    S.Stream.reseed(Seed);
    S.Hits = 0;
  }
  ArmedMask.fetch_or(1u << unsigned(Site), std::memory_order_relaxed);
}

void FaultInjector::disarm(FaultSite Site) {
  ArmedMask.fetch_and(~(1u << unsigned(Site)), std::memory_order_relaxed);
}

void FaultInjector::disarmAll() {
  ArmedMask.store(0, std::memory_order_relaxed);
  for (unsigned I = 0; I < NumFaultSites; ++I) {
    SiteState &S = siteState(FaultSite(I));
    std::scoped_lock Locked(S.Mutex);
    S.Hits = 0;
  }
}

uint64_t FaultInjector::hitCount(FaultSite Site) {
  SiteState &S = siteState(Site);
  std::scoped_lock Locked(S.Mutex);
  return S.Hits;
}

bool FaultInjector::fireSlow(FaultSite Site) {
  SiteState &S = siteState(Site);
  uint64_t DelayNanos = 0;
  {
    std::scoped_lock Locked(S.Mutex);
    // Re-check under the lock: a racing disarm between the fast-path load
    // and here must not fire.
    if ((ArmedMask.load(std::memory_order_relaxed) &
         (1u << unsigned(Site))) == 0)
      return false;
    if (S.Config.MaxHits != 0 && S.Hits >= S.Config.MaxHits)
      return false;
    if (!S.Stream.nextBool(S.Config.Probability))
      return false;
    ++S.Hits;
    DelayNanos = S.Config.DelayNanos;
  }
  // Sleep outside the lock so a delay site never serializes other threads
  // consulting the same site.
  if (DelayNanos != 0)
    std::this_thread::sleep_for(std::chrono::nanoseconds(DelayNanos));
  return true;
}

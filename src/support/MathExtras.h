//===- support/MathExtras.h - Small integer math helpers -------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Alignment and power-of-two helpers used throughout the heap manager.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_SUPPORT_MATHEXTRAS_H
#define GENGC_SUPPORT_MATHEXTRAS_H

#include <bit>
#include <cstddef>
#include <cstdint>

#include "support/Assert.h"

namespace gengc {

/// Returns true if \p Value is a power of two (zero is not).
constexpr bool isPowerOf2(uint64_t Value) {
  return Value != 0 && (Value & (Value - 1)) == 0;
}

/// Rounds \p Value up to the next multiple of \p Align.
/// \p Align must be a power of two.
constexpr uint64_t alignTo(uint64_t Value, uint64_t Align) {
  return (Value + Align - 1) & ~(Align - 1);
}

/// Returns floor(log2(Value)); \p Value must be non-zero.
inline unsigned log2Floor(uint64_t Value) {
  GENGC_ASSERT(Value != 0, "log2 of zero");
  return 63 - std::countl_zero(Value);
}

/// Returns ceil(log2(Value)); \p Value must be non-zero.
inline unsigned log2Ceil(uint64_t Value) {
  GENGC_ASSERT(Value != 0, "log2 of zero");
  return Value == 1 ? 0 : 64 - std::countl_zero(Value - 1);
}

/// Integer division rounding up.
constexpr uint64_t divideCeil(uint64_t Numerator, uint64_t Denominator) {
  return (Numerator + Denominator - 1) / Denominator;
}

} // namespace gengc

#endif // GENGC_SUPPORT_MATHEXTRAS_H

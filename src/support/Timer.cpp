//===- support/Timer.cpp - Wall-clock timing helpers ----------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "support/Timer.h"

#include <chrono>

#include "support/Assert.h"

using namespace gengc;

uint64_t gengc::nowNanos() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

void StopWatch::start() {
  GENGC_ASSERT(!Running, "StopWatch started twice");
  Running = true;
  StartedAt = nowNanos();
}

uint64_t StopWatch::stop() {
  GENGC_ASSERT(Running, "StopWatch stopped while not running");
  Running = false;
  uint64_t Interval = nowNanos() - StartedAt;
  Accumulated += Interval;
  return Interval;
}

//===- support/Timer.h - Wall-clock timing helpers -------------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monotonic timing for the collector's per-cycle accounting and for the
/// benchmark harness.  The paper reports elapsed (wall-clock) times on a
/// dedicated machine; we do the same with std::chrono::steady_clock.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_SUPPORT_TIMER_H
#define GENGC_SUPPORT_TIMER_H

#include <cstdint>

namespace gengc {

/// Returns nanoseconds from an arbitrary fixed origin (monotonic).
uint64_t nowNanos();

/// A stopwatch accumulating elapsed time across start/stop pairs.  Used for
/// "percent of time GC is active" (paper Figure 10) where the collector
/// starts the watch when a cycle begins and stops it when sweep finishes.
class StopWatch {
public:
  /// Begins a timing interval; must not already be running.
  void start();

  /// Ends the current interval, adding it to the accumulated total.
  /// \returns the length of the interval that just ended, in nanoseconds.
  uint64_t stop();

  /// Total accumulated nanoseconds over all completed intervals.
  uint64_t totalNanos() const { return Accumulated; }

  /// Total accumulated time in milliseconds as a double.
  double totalMillis() const { return double(Accumulated) * 1e-6; }

  /// Discards all accumulated time.
  void reset() { Accumulated = 0; }

private:
  uint64_t Accumulated = 0;
  uint64_t StartedAt = 0;
  bool Running = false;
};

} // namespace gengc

#endif // GENGC_SUPPORT_TIMER_H

//===- support/Table.h - Fixed-width table formatting ----------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny text-table builder used by every bench binary to print the paper's
/// tables next to our measured values.  Writes with std::fprintf; library
/// code never includes <iostream>.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_SUPPORT_TABLE_H
#define GENGC_SUPPORT_TABLE_H

#include <cstdio>
#include <string>
#include <vector>

namespace gengc {

/// Accumulates rows of string cells and prints them with aligned columns.
///
/// Typical usage:
/// \code
///   Table T({"Benchmark", "paper %", "measured %"});
///   T.addRow({"_213_javac", "17.2", Table::percent(Measured)});
///   T.print(stdout);
/// \endcode
class Table {
public:
  /// Creates a table whose first row is \p Header.
  explicit Table(std::vector<std::string> Header);

  /// Appends one data row; its arity may differ from the header's (short
  /// rows are padded with empty cells).
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator line.
  void addSeparator();

  /// Renders all rows with each column padded to its widest cell.
  void print(std::FILE *Out) const;

  /// Formats \p Value with \p Decimals digits after the point.
  static std::string number(double Value, int Decimals = 1);

  /// Formats \p Value as a signed percentage, e.g. "-3.7".
  static std::string percent(double Value, int Decimals = 1);

  /// Formats an integer count with no grouping.
  static std::string count(uint64_t Value);

private:
  std::vector<std::vector<std::string>> Rows;
  size_t Columns;
};

} // namespace gengc

#endif // GENGC_SUPPORT_TABLE_H

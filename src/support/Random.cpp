//===- support/Random.cpp - xoshiro256** implementation -------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

using namespace gengc;

static uint64_t splitMix64(uint64_t &X) {
  X += 0x9E3779B97F4A7C15ull;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

void Rng::reseed(uint64_t Seed) {
  for (uint64_t &Word : State)
    Word = splitMix64(Seed);
  // xoshiro must not start from the all-zero state.
  if ((State[0] | State[1] | State[2] | State[3]) == 0)
    State[0] = 1;
}

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

uint64_t Rng::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

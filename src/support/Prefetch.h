//===- support/Prefetch.h - Software prefetch hints -------------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Best-effort software prefetch, used by the trace engine to overlap the
/// cache misses of upcoming gray objects with the tracing of the current
/// one (the classic mark-loop prefetch window of Cher/Hosking/Vijaykumar).
/// The root CMakeLists probes for __builtin_prefetch and defines
/// GENGC_PREFETCH when available; without it the hint compiles to nothing
/// and the trace engine forces its window depth to 0, so behavior is
/// identical on toolchains without the builtin.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_SUPPORT_PREFETCH_H
#define GENGC_SUPPORT_PREFETCH_H

namespace gengc {

/// True when prefetch hints are real instructions in this build.
#if GENGC_PREFETCH
inline constexpr bool PrefetchAvailable = true;
#else
inline constexpr bool PrefetchAvailable = false;
#endif

/// Hints that \p Addr will be read soon.  A pure performance hint: never
/// faults, never changes program semantics, no-op without GENGC_PREFETCH.
inline void prefetchRead(const void *Addr) {
#if GENGC_PREFETCH
  __builtin_prefetch(Addr, /*rw=*/0, /*locality=*/3);
#else
  (void)Addr;
#endif
}

} // namespace gengc

#endif // GENGC_SUPPORT_PREFETCH_H

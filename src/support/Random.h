//===- support/Random.h - Deterministic pseudo-random numbers --*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic PRNG (xoshiro256**) used by the synthetic
/// workloads and the property-based tests.  We do not use <random> engines on
/// hot paths: workload threads draw a random number per simulated operation,
/// and Mersenne Twister state is needlessly large for that.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_SUPPORT_RANDOM_H
#define GENGC_SUPPORT_RANDOM_H

#include <cstdint>

namespace gengc {

/// xoshiro256** seeded via SplitMix64.  Deterministic across platforms for a
/// fixed seed, which keeps workload allocation traces reproducible.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ull) { reseed(Seed); }

  /// Re-initializes the state from \p Seed using SplitMix64 so that nearby
  /// seeds give independent streams.
  void reseed(uint64_t Seed);

  /// Returns the next 64 uniformly distributed bits.
  uint64_t next();

  /// Returns a uniformly distributed value in [0, Bound); Bound must be > 0.
  /// Uses Lemire's multiply-shift rejection-free reduction (the slight bias
  /// is irrelevant for workload generation).
  uint64_t nextBelow(uint64_t Bound) {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * Bound) >> 64);
  }

  /// Returns a uniformly distributed value in [Lo, Hi] inclusive.
  uint64_t nextInRange(uint64_t Lo, uint64_t Hi) {
    return Lo + nextBelow(Hi - Lo + 1);
  }

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBool(double P) { return nextDouble() < P; }

private:
  uint64_t State[4];
};

} // namespace gengc

#endif // GENGC_SUPPORT_RANDOM_H

//===- support/Table.cpp - Fixed-width table formatting -------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <cinttypes>

#include "support/Assert.h"

using namespace gengc;

Table::Table(std::vector<std::string> Header) : Columns(Header.size()) {
  GENGC_ASSERT(Columns > 0, "table needs at least one column");
  Rows.push_back(std::move(Header));
}

void Table::addRow(std::vector<std::string> Cells) {
  if (Cells.size() > Columns)
    Columns = Cells.size();
  Rows.push_back(std::move(Cells));
}

void Table::addSeparator() {
  // An empty row is rendered as a dashed line across all columns.
  Rows.push_back({});
}

void Table::print(std::FILE *Out) const {
  std::vector<size_t> Widths(Columns, 0);
  for (const auto &Row : Rows)
    for (size_t I = 0; I < Row.size(); ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();

  size_t Total = 0;
  for (size_t W : Widths)
    Total += W + 3;

  for (size_t RowIdx = 0; RowIdx < Rows.size(); ++RowIdx) {
    const auto &Row = Rows[RowIdx];
    if (Row.empty()) {
      for (size_t I = 0; I < Total; ++I)
        std::fputc('-', Out);
      std::fputc('\n', Out);
      continue;
    }
    for (size_t I = 0; I < Columns; ++I) {
      const std::string Cell = I < Row.size() ? Row[I] : std::string();
      std::fprintf(Out, "%-*s", int(Widths[I] + 3), Cell.c_str());
    }
    std::fputc('\n', Out);
    // Underline the header row.
    if (RowIdx == 0) {
      for (size_t I = 0; I < Total; ++I)
        std::fputc('=', Out);
      std::fputc('\n', Out);
    }
  }
}

std::string Table::number(double Value, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, Value);
  return Buf;
}

std::string Table::percent(double Value, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%+.*f", Decimals, Value);
  return Buf;
}

std::string Table::count(uint64_t Value) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, Value);
  return Buf;
}

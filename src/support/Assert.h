//===- support/Assert.h - Assertions and unreachable markers ---*- C++ -*-===//
//
// Part of the gengc project: a reproduction of "A Generational On-the-fly
// Garbage Collector for Java" (Domani, Kolodner, Petrank; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assertion helpers shared by every gengc library.  The collector code
/// asserts liberally (the algorithms are full of subtle invariants), so the
/// macros here stay enabled in all build types unless GENGC_NO_ASSERTS is
/// defined explicitly.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_SUPPORT_ASSERT_H
#define GENGC_SUPPORT_ASSERT_H

#include <cstdio>
#include <cstdlib>

namespace gengc {

/// Prints \p Msg with source location context and aborts.  Used by the
/// assertion macros below; also callable directly for fatal runtime errors
/// that are not programmer errors (e.g. out-of-memory on a fixed arena).
[[noreturn]] inline void fatalError(const char *Msg, const char *File,
                                    int Line) {
  std::fprintf(stderr, "gengc fatal: %s (%s:%d)\n", Msg, File, Line);
  std::abort();
}

} // namespace gengc

/// Always-on assertion.  The collector's fine-grained concurrency invariants
/// are cheap to check and catastrophic to violate, so we do not compile these
/// out in release builds.
#ifndef GENGC_NO_ASSERTS
#define GENGC_ASSERT(Cond, Msg)                                                \
  do {                                                                         \
    if (!(Cond))                                                               \
      ::gengc::fatalError("assertion failed: " #Cond " — " Msg, __FILE__,      \
                          __LINE__);                                           \
  } while (false)
#else
#define GENGC_ASSERT(Cond, Msg)                                                \
  do {                                                                         \
  } while (false)
#endif

/// Marks a point in the code that must never execute.
#define GENGC_UNREACHABLE(Msg)                                                 \
  ::gengc::fatalError("unreachable: " Msg, __FILE__, __LINE__)

/// Detects ThreadSanitizer builds (GCC defines __SANITIZE_THREAD__; Clang
/// exposes it through __has_feature).  Deliberate benign races — racy word
/// hints — switch to per-byte atomic loads under TSan so the tool stays
/// able to flag every *unintended* race.
#if defined(__SANITIZE_THREAD__)
#define GENGC_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GENGC_TSAN_ENABLED 1
#endif
#endif
#ifndef GENGC_TSAN_ENABLED
#define GENGC_TSAN_ENABLED 0
#endif

#endif // GENGC_SUPPORT_ASSERT_H

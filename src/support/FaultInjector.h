//===- support/FaultInjector.h - Deterministic fault injection --*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seedable fault injection for the hardening tests.  The
/// runtime is sprinkled with *named sites* — points where a test can force
/// an allocation to fail, delay a handshake response, stall a GC worker
/// lane or slow down the card scan — so stall detection (the watchdog) and
/// the recoverable-OOM ladder can be exercised on demand instead of waiting
/// for a 32 MB heap to misbehave on its own.
///
/// Cost model: when nothing is armed, a site is one relaxed atomic load and
/// a branch (the header-inlined fast path below), so the instrumented
/// builds are the shipping builds — there is no "fault-injection build"
/// whose timings differ from production.  Arming is process-global and
/// meant for tests; it is synchronized, but the runtime paths that consult
/// sites never block on the injector's lock unless their site is armed.
///
/// Determinism: each armed site draws from its own Rng stream seeded at
/// arm() time, so a single-threaded caller hitting a site sees the same
/// fire/skip sequence for the same seed.  (Across racing threads the
/// interleaving of draws is scheduling-dependent, as any probabilistic
/// fault model must be.)
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_SUPPORT_FAULTINJECTOR_H
#define GENGC_SUPPORT_FAULTINJECTOR_H

#include <atomic>
#include <cstdint>

namespace gengc {

/// The named fault sites wired into the runtime.
enum class FaultSite : uint8_t {
  /// Mutator::refillCache / allocateLarge: a firing makes one allocation
  /// attempt behave as if the heap were exhausted.
  AllocFail = 0,
  /// Mutator::cooperate: a firing delays the handshake response (the
  /// unresponsive-mutator scenario the watchdog exists for).
  HandshakeDelay,
  /// GcWorkerPool: a firing stalls a worker lane at job start.
  WorkerLaneStall,
  /// The generational card scan: a firing delays one summary-chunk open.
  CardScanDelay,
  /// Mutator::cooperate: a firing swallows the handshake response entirely
  /// — the mutator keeps running but never adopts the posted status on its
  /// own (the uncooperative-thread scenario WatchdogPolicy::Escalate
  /// exists for).  Unlike HandshakeDelay this costs no wall-clock sleep,
  /// so tests bound it with MaxHits instead of DelayNanos.
  ThreadStall,
  /// Collector trace-phase entry: a firing aborts the on-the-fly cycle
  /// before any object is traced (exercises Collector::abortCycle).
  TraceAbort,
  /// Collector sweep/publish-phase entry: a firing aborts the cycle before
  /// any cell is reclaimed.
  SweepAbort,
};

/// Number of distinct fault sites (array sizing).
constexpr unsigned NumFaultSites = unsigned(FaultSite::SweepAbort) + 1;

/// Returns a printable name for \p Site.
const char *faultSiteName(FaultSite Site);

/// How an armed site behaves when consulted.
struct FaultConfig {
  /// Probability that a consultation fires, in [0, 1].
  double Probability = 1.0;
  /// Nanoseconds the firing thread sleeps inside fire() (delay sites).
  /// Zero makes fire() return without sleeping — the AllocFail site wants
  /// the verdict, not a delay.
  uint64_t DelayNanos = 0;
  /// Maximum number of firings before the site stops firing (it stays
  /// armed, so hit counting keeps working).  0 means unlimited.
  uint64_t MaxHits = 0;
};

/// Process-global fault-injection registry.  All members are static: the
/// runtime consults sites from deep inside allocation and handshake paths
/// where threading a pointer through every layer would distort the very
/// code the injector exists to test.
class FaultInjector {
public:
  /// Consults \p Site: returns true if the site is armed and fired (after
  /// sleeping the site's DelayNanos, if any).  The disabled path is one
  /// relaxed load and a branch.
  static bool fire(FaultSite Site) {
    uint32_t Mask = ArmedMask.load(std::memory_order_relaxed);
    if ((Mask & (1u << unsigned(Site))) == 0)
      return false;
    return fireSlow(Site);
  }

  /// Arms \p Site with \p Config, reseeding its Rng stream from \p Seed and
  /// resetting its hit count.
  static void arm(FaultSite Site, const FaultConfig &Config,
                  uint64_t Seed = 0x5eed);

  /// Disarms \p Site (its hit count remains readable).
  static void disarm(FaultSite Site);

  /// Disarms every site and clears all hit counts.  Tests call this in
  /// teardown so armed faults never leak across test cases.
  static void disarmAll();

  /// Number of times \p Site fired since it was last armed.
  static uint64_t hitCount(FaultSite Site);

private:
  static bool fireSlow(FaultSite Site);

  /// Bit i set = site i armed.  The only state the disabled fast path
  /// touches.
  static std::atomic<uint32_t> ArmedMask;
};

} // namespace gengc

#endif // GENGC_SUPPORT_FAULTINJECTOR_H

//===- support/Backoff.h - Capped exponential backoff ----------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small capped-exponential-backoff helper for the runtime's wait loops
/// (allocation throttling, stop-the-world parking, out-of-memory waits,
/// synchronous-cycle polling).  Fixed-period sleeps force a bad trade-off:
/// a short period burns CPU for the whole (possibly long) wait, a long one
/// adds latency to the (common) short wait.  Doubling the sleep from a
/// fine-grained start up to a cap keeps short waits responsive and long
/// waits cheap, without any shared state or configuration.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_SUPPORT_BACKOFF_H
#define GENGC_SUPPORT_BACKOFF_H

#include <chrono>
#include <cstdint>
#include <thread>

namespace gengc {

/// Capped exponential backoff: each pause() sleeps the current delay and
/// doubles it, saturating at the cap.  Stateless apart from the current
/// delay, so it is cheap to construct one per wait.
class Backoff {
public:
  /// \p InitialNanos is the first pause length, \p CapNanos the saturation
  /// point (both must be positive; Initial is clamped to the cap).
  Backoff(uint64_t InitialNanos, uint64_t CapNanos)
      : Current(InitialNanos < CapNanos ? InitialNanos : CapNanos),
        Initial(Current), Cap(CapNanos) {}

  /// Sleeps for the current delay, then doubles it up to the cap.
  void pause() {
    std::this_thread::sleep_for(std::chrono::nanoseconds(Current));
    Current = Current >= Cap / 2 ? Cap : Current * 2;
  }

  /// The delay the next pause() would sleep, in nanoseconds.
  uint64_t currentNanos() const { return Current; }

  /// Returns the current delay and doubles it up to the cap *without*
  /// sleeping — for schedules paced against an external clock, like the
  /// watchdog's capped-exponential re-fire intervals, where the caller is
  /// already inside its own poll loop.
  uint64_t advance() {
    uint64_t Delay = Current;
    Current = Current >= Cap / 2 ? Cap : Current * 2;
    return Delay;
  }

  /// Restarts the schedule from the initial delay (call when the awaited
  /// condition made progress, so the next wait starts fine-grained again).
  void reset() { Current = Initial; }

private:
  uint64_t Current;
  uint64_t Initial;
  uint64_t Cap;
};

} // namespace gengc

#endif // GENGC_SUPPORT_BACKOFF_H

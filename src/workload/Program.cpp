//===- workload/Program.cpp - The synthetic mutator program ----------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "workload/Program.h"

#include "runtime/RootScope.h"
#include "support/MathExtras.h"
#include "support/Random.h"

using namespace gengc;
using namespace gengc::workload;

/// Type tags so heap dumps are interpretable in tests.
enum : uint16_t {
  TagLeaf = 1,
  TagDirectory = 2,
  TagWorkObject = 3,
  TagAnchor = 4,
};

LongLivedTable::LongLivedTable(Runtime &RT, Mutator &M, size_t Slots)
    : Slots(Slots) {
  size_t NumLeaves = size_t(divideCeil(Slots, LeafSlots));
  GENGC_ASSERT(NumLeaves >= 1, "table needs at least one leaf");

  // Build the directory first and root it, so the leaves become reachable
  // the moment they are linked in; no window where a collection could
  // reclaim a half-built table.
  RootScope Roots(M);
  ObjectRef Dir = Roots.add(M.allocate(uint32_t(NumLeaves), 0, TagDirectory));
  RT.globalRoots().addRoot(Dir);

  Anchors.reserve(Slots);
  for (size_t I = 0; I < NumLeaves; ++I) {
    ObjectRef Leaf = M.allocate(LeafSlots, 0, TagLeaf);
    M.writeRef(Dir, uint32_t(I), Leaf);
    for (uint32_t J = 0; J < LeafSlots && Anchors.size() < Slots; ++J) {
      ObjectRef Anchor = M.allocate(AnchorSlots, 8, TagAnchor);
      M.writeRef(Leaf, J, Anchor);
      Anchors.push_back(Anchor);
    }
  }
}

void LongLivedTable::put(Mutator &M, size_t Index, ObjectRef Value) {
  GENGC_ASSERT(Index < Slots, "long-lived table index out of range");
  M.writeRef(Anchors[Index], 0, Value);
}

ObjectRef LongLivedTable::get(const Mutator &M, size_t Index) const {
  GENGC_ASSERT(Index < Slots, "long-lived table index out of range");
  return M.readRef(Anchors[Index], 0);
}

/// A few rounds of integer mixing standing in for application compute.
static uint64_t computeWork(uint64_t Seed, uint32_t Iterations) {
  uint64_t X = Seed | 1;
  for (uint32_t I = 0; I < Iterations; ++I) {
    X ^= X << 13;
    X ^= X >> 7;
    X ^= X << 17;
  }
  return X;
}

ThreadResult gengc::workload::runMutatorProgram(Runtime &RT, const Profile &P,
                                                LongLivedTable &Table,
                                                unsigned ThreadIdx,
                                                double Scale) {
  ThreadResult Result;
  Rng Rand(P.Seed + 0x9E37 * (ThreadIdx + 1));
  std::unique_ptr<Mutator> M = RT.attachMutator();

  // The young window lives in the shadow stack: stack slot writes are
  // barrier-free, exactly like Java locals in the paper's JVM.
  uint32_t Window = P.YoungWindow ? P.YoungWindow : 1;
  RootScope Roots(*M);
  for (uint32_t I = 0; I < Window; ++I)
    Roots.add(NullRef);

  uint64_t Budget = uint64_t(double(P.AllocBytesPerThread) * Scale);
  uint64_t Allocated = 0;
  uint64_t Count = 0;
  uint32_t WindowCursor = 0;
  // Young objects link to a shared *batch head* rather than chaining to
  // their predecessor: the pointers are young-to-young (they exercise the
  // card-marking barrier) but reachability stays bounded — a head dies
  // once the whole batch has left the window, with no unlink writes that
  // would dirty the cards of dying objects.
  constexpr uint32_t BatchSize = 32;
  ObjectRef BatchHead = NullRef;

  while (Allocated < Budget) {
    M->cooperate();

    // Shape.
    uint32_t DataBytes;
    if (P.LargeObjectChance > 0.0 && Rand.nextBool(P.LargeObjectChance))
      DataBytes =
          uint32_t(Rand.nextInRange(P.MinLargeBytes, P.MaxLargeBytes));
    else
      DataBytes = uint32_t(Rand.nextInRange(P.MinDataBytes, P.MaxDataBytes));

    ObjectRef Obj = M->allocate(P.RefSlots, DataBytes, TagWorkObject);
    Result.AllocatedObjects += 1;
    uint64_t Bytes = objectBytesFor(P.RefSlots, DataBytes);
    Result.AllocatedBytes += Bytes;
    Allocated += Bytes;
    ++Count;

    // Link young objects to the current batch head (young-to-young heap
    // pointers).  Only a YoungLinkRate fraction of objects receive a
    // reference store; the rest carry pure scalar payload, like anagram's
    // strings.
    if (P.RefSlots > 0) {
      if (Count % BatchSize == 1 || BatchHead == NullRef)
        BatchHead = Obj;
      else if (P.YoungLinkRate >= 1.0 || Rand.nextBool(P.YoungLinkRate))
        M->writeRef(Obj, 0, BatchHead);
    }

    // Enter the window; the evicted object dies unless promoted.
    M->setRoot(WindowCursor, Obj);
    WindowCursor = (WindowCursor + 1) % Window;

    // Tenuring: store into the long-lived table, killing the evicted
    // occupant.
    if (P.PromoteEvery != 0 && Count % P.PromoteEvery == 0)
      Table.put(*M, size_t(Rand.nextBelow(Table.size())), Obj);

    // Old-generation pointer mutation: rewire one anchor's lateral link to
    // another anchor (old-to-old), dirtying one small old object's card.
    if (P.OldMutationRate > 0.0 && Rand.nextBool(P.OldMutationRate)) {
      ObjectRef A = Table.anchor(size_t(Rand.nextBelow(Table.size())));
      ObjectRef B = Table.anchor(size_t(Rand.nextBelow(Table.size())));
      M->writeRef(A, 1, B);
    }

    // Application compute.
    Result.Checksum ^= computeWork(Result.Checksum + Count, P.ComputePerAlloc);
    if (P.RefSlots > 0) {
      // Touch the data payload so the object is genuinely used.
      if (DataBytes >= 4)
        storeDataWord(RT.heap(), Obj, 0, uint32_t(Result.Checksum));
    }
  }

  Result.Pauses = M->pauseStats();
  return Result;
}

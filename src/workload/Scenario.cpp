//===- workload/Scenario.cpp - Server-shaped workload family ---------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "workload/Scenario.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "runtime/RootScope.h"
#include "support/Assert.h"
#include "support/Random.h"
#include "support/Timer.h"
#include "workload/Program.h"

using namespace gengc;
using namespace gengc::workload;

namespace {

/// Type tags so heap dumps are interpretable in tests (the figure program
/// uses 1-4).
enum : uint16_t {
  TagRequestNode = 5,
  TagSession = 6,
  TagCacheEntry = 7,
};

/// Same integer mixing as the figure program's compute kernel.
uint64_t computeWork(uint64_t Seed, uint32_t Iterations) {
  uint64_t X = Seed | 1;
  for (uint32_t I = 0; I < Iterations; ++I) {
    X ^= X << 13;
    X ^= X >> 7;
    X ^= X << 17;
  }
  return X;
}

/// One phase of the schedule, resolved against Scale and the base rate.
struct PhaseRt {
  uint64_t FirstIndex = 0;     // first request index of this phase
  uint64_t Count = 0;          // requests in this phase (scaled)
  double StartNanos = 0.0;     // schedule offset of the phase start
  double IntervalNanos = 0.0;  // inter-arrival gap within the phase
};

/// Everything the workers share for one scenario copy.
struct ScenarioShared {
  const ServerProfile &SP;
  Runtime &RT;
  std::vector<PhaseRt> Phases;
  uint64_t Total = 0;
  uint64_t T0 = 0;
  std::atomic<uint64_t> Next{0};
  /// FIFO session-aging clock: the next new session evicts the slot the
  /// clock points at, so slots age out in insertion order.
  std::atomic<uint64_t> SessionClock{0};
  LongLivedTable *Sessions = nullptr;
  LongLivedTable *Cache = nullptr;

  ScenarioShared(const ServerProfile &SP, Runtime &RT, double Scale)
      : SP(SP), RT(RT) {
    GENGC_ASSERT(SP.RequestsPerSecond > 0.0, "scenario needs a request rate");
    GENGC_ASSERT(!SP.Phases.empty(), "scenario needs at least one phase");
    double Offset = 0.0;
    for (const ScenarioPhase &P : SP.Phases) {
      GENGC_ASSERT(P.RateMultiplier > 0.0, "phase rate must be positive");
      PhaseRt Rt;
      Rt.FirstIndex = Total;
      Rt.Count = uint64_t(double(P.Requests) * Scale);
      Rt.StartNanos = Offset;
      Rt.IntervalNanos = 1e9 / (SP.RequestsPerSecond * P.RateMultiplier);
      Offset += double(Rt.Count) * Rt.IntervalNanos;
      Total += Rt.Count;
      Phases.push_back(Rt);
    }
    if (Total == 0) { // degenerate scale: keep one request so runs complete
      Total = 1;
      Phases.back().Count = 1;
    }
  }

  /// Scheduled arrival of request \p Idx, nanoseconds after T0.
  uint64_t offsetNanos(uint64_t Idx) const {
    const PhaseRt *P = &Phases.back();
    for (const PhaseRt &Rt : Phases)
      if (Idx < Rt.FirstIndex + Rt.Count && Rt.Count > 0) {
        P = &Rt;
        break;
      }
    uint64_t InPhase = Idx >= P->FirstIndex ? Idx - P->FirstIndex : 0;
    return uint64_t(P->StartNanos + double(InPhase + 1) * P->IntervalNanos);
  }
};

/// Per-worker tallies (summed into the RunResult after the join).
struct WorkerStats {
  uint64_t Requests = 0;
  uint64_t AllocatedObjects = 0;
  uint64_t AllocatedBytes = 0;
  uint64_t Checksum = 0;
};

/// Open-loop pacing: block (handshake-safe) for long gaps, spin-cooperate
/// for the last stretch so arrival jitter stays small.
void waitUntilNanos(Mutator &M, uint64_t Deadline) {
  for (;;) {
    uint64_t Now = nowNanos();
    if (Now >= Deadline)
      return;
    uint64_t Left = Deadline - Now;
    if (Left > 200'000) {
      BlockedScope Blocked(M);
      std::this_thread::sleep_for(std::chrono::nanoseconds(Left - 100'000));
    } else {
      M.cooperate();
      std::this_thread::yield();
    }
  }
}

/// One server worker: pull the next scheduled request, pace to its arrival,
/// run the handler, record completion-minus-scheduled-arrival.
void serverWorker(ScenarioShared &S, WorkerStats &Out) {
  const ServerProfile &SP = S.SP;
  std::unique_ptr<Mutator> M = S.RT.attachMutator();

  // The request root window: graph nodes stay rooted until the next
  // request's nodes overwrite the slots — young death by overwrite, no
  // unlink stores.
  RootScope Roots(*M);
  uint32_t GraphNodes = SP.GraphNodesPerRequest ? SP.GraphNodesPerRequest : 1;
  size_t FirstSlot = Roots.addSlot(NullRef);
  for (uint32_t J = 1; J < GraphNodes; ++J)
    Roots.addSlot(NullRef);

  for (;;) {
    uint64_t Idx = S.Next.fetch_add(1, std::memory_order_relaxed);
    if (Idx >= S.Total)
      break;
    uint64_t Sched = S.T0 + S.offsetNanos(Idx);
    waitUntilNanos(*M, Sched);

    // Request content is a pure function of (seed, index): the checksum
    // and allocation stream cannot depend on the collector or on which
    // worker drew the request.
    Rng R(SP.Seed + 0x9E3779B97F4A7C15ull * (Idx + 1));

    // Ephemeral graph: allocate + link, rooted in the worker's window.
    ObjectRef Prev = NullRef;
    uint32_t PrevBytes = 0;
    for (uint32_t J = 0; J < GraphNodes; ++J) {
      uint32_t Bytes =
          uint32_t(R.nextInRange(SP.MinNodeBytes, SP.MaxNodeBytes));
      ObjectRef Node = M->allocate(SP.NodeRefSlots, Bytes, TagRequestNode);
      Roots.set(FirstSlot + J, Node);
      if (Prev != NullRef && SP.NodeRefSlots > 0)
        M->writeRef(Node, 0, Prev);
      Prev = Node;
      PrevBytes = Bytes;
      ++Out.AllocatedObjects;
      Out.AllocatedBytes += objectBytesFor(SP.NodeRefSlots, Bytes);
    }

    // Session layer: a few reads, sometimes a new session that FIFO-evicts
    // the oldest slot.
    if (S.Sessions) {
      for (uint32_t T = 0; T < SP.SessionTouchesPerRequest; ++T)
        (void)S.Sessions->get(*M, size_t(R.nextBelow(SP.SessionSlots)));
      if (R.nextBool(SP.NewSessionChance)) {
        ObjectRef Sess = M->allocate(1, SP.SessionBytes, TagSession);
        ++Out.AllocatedObjects;
        Out.AllocatedBytes += objectBytesFor(1, SP.SessionBytes);
        uint64_t Clock = S.SessionClock.fetch_add(1, std::memory_order_relaxed);
        S.Sessions->put(*M, size_t(Clock % SP.SessionSlots), Sess);
      }
    }

    // Cache lookup; a miss allocates the replacement entry — old-generation
    // churn and a dirtied old card.
    if (S.Cache) {
      size_t Slot = size_t(R.nextBelow(SP.CacheSlots));
      if (R.nextBool(SP.CacheHitRate)) {
        (void)S.Cache->get(*M, Slot);
      } else {
        ObjectRef Entry = M->allocate(1, SP.CacheEntryBytes, TagCacheEntry);
        ++Out.AllocatedObjects;
        Out.AllocatedBytes += objectBytesFor(1, SP.CacheEntryBytes);
        S.Cache->put(*M, Slot, Entry);
      }
    }

    // Application compute; the result is the request's checksum share.
    uint64_t C = computeWork(R.next() + Idx, SP.ComputePerRequest);
    Out.Checksum ^= C;
    if (Prev != NullRef && PrevBytes >= 4)
      storeDataWord(S.RT.heap(), Prev, 0, uint32_t(C));

    S.RT.obs().requestHistogram().record(nowNanos() - Sched);
    ++Out.Requests;
    M->cooperate();
  }
}

/// One copy of the scenario under its own Runtime.
RunResult runScenarioOnce(const ServerProfile &SP0,
                          const RuntimeConfig &Config, double Scale,
                          uint64_t Seed) {
  ServerProfile SP = SP0;
  SP.Seed = Seed;
  GENGC_ASSERT(SP.Workers >= 1, "scenario needs at least one worker");

  Runtime RT(Config);
  RunResult Result;
  {
    std::unique_ptr<Mutator> M = RT.attachMutator();

    // Untimed setup: build the session ring and prefill the cache, then
    // tenure both with one full collection so the timed phase starts from
    // the steady state a warmed-up server is in.
    std::unique_ptr<LongLivedTable> Sessions, Cache;
    if (SP.SessionSlots > 0)
      Sessions = std::make_unique<LongLivedTable>(RT, *M, SP.SessionSlots);
    if (SP.CacheSlots > 0) {
      Cache = std::make_unique<LongLivedTable>(RT, *M, SP.CacheSlots);
      for (size_t I = 0; I < Cache->size(); ++I)
        Cache->put(*M, I, M->allocate(1, SP.CacheEntryBytes, TagCacheEntry));
    }
    RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
    RT.collector().resetStats();

    ScenarioShared Shared(SP, RT, Scale);
    Shared.Sessions = Sessions.get();
    Shared.Cache = Cache.get();

    std::vector<WorkerStats> PerWorker(SP.Workers);
    Shared.T0 = nowNanos();
    {
      std::vector<std::thread> Threads;
      for (unsigned W = 1; W < SP.Workers; ++W)
        Threads.emplace_back(
            [&, W] { serverWorker(Shared, PerWorker[W]); });
      {
        BlockedScope Blocked(*M);
        serverWorker(Shared, PerWorker[0]);
        for (std::thread &T : Threads)
          T.join();
      }
    }
    Result.ElapsedSeconds = double(nowNanos() - Shared.T0) * 1e-9;

    for (const WorkerStats &W : PerWorker) {
      Result.Requests += W.Requests;
      Result.AllocatedObjects += W.AllocatedObjects;
      Result.AllocatedBytes += W.AllocatedBytes;
      Result.Checksum ^= W.Checksum;
    }
  }

  Result.Gc = RT.gcStats();
  Result.Metrics = RT.metrics();
  Result.Trace = RT.traceSnapshot();
  Result.SoftLimitBytes = RT.collector().trigger().softLimitBytes();
  return Result;
}

} // namespace

uint64_t ServerProfile::totalRequests(double Scale) const {
  uint64_t Total = 0;
  for (const ScenarioPhase &P : Phases)
    Total += uint64_t(double(P.Requests) * Scale);
  return Total ? Total : 1;
}

RunResult gengc::workload::runScenario(const ServerProfile &SP,
                                       const RuntimeConfig &Config,
                                       const RunOptions &Options) {
  return runRepeated(
      [&](uint64_t Seed) {
        return runScenarioOnce(SP, Config, Options.Scale, Seed);
      },
      SP.Seed, Options);
}

/// churn: the request-handler shape — big ephemeral graphs per request,
/// small session/cache layers.  Young-generation churn dominates; this is
/// the cell where an on-the-fly generational collector should hold p99
/// while a stop-the-world collector pays its whole trace in tail latency.
static ServerProfile churnScenario() {
  ServerProfile SP;
  SP.Name = "churn";
  SP.Workers = 2;
  SP.RequestsPerSecond = 24000.0;
  SP.Phases = {{"steady", 48000, 1.0}};
  SP.GraphNodesPerRequest = 64;
  SP.ComputePerRequest = 300;
  SP.SessionSlots = 2048;
  SP.SessionTouchesPerRequest = 1;
  SP.NewSessionChance = 0.05;
  SP.SessionBytes = 96;
  SP.CacheSlots = 8192;
  SP.CacheHitRate = 0.98;
  SP.CacheEntryBytes = 384;
  return SP;
}

/// cache: a read-mostly service in front of a big in-process store — a
/// large prefilled old generation, small requests, miss-driven churn into
/// tenured space.  Stresses whole-heap trace cost and card precision.
static ServerProfile cacheScenario() {
  ServerProfile SP;
  SP.Name = "cache";
  SP.Workers = 2;
  SP.RequestsPerSecond = 24000.0;
  SP.Phases = {{"steady", 48000, 1.0}};
  SP.GraphNodesPerRequest = 8;
  SP.ComputePerRequest = 600;
  SP.SessionSlots = 4096;
  SP.SessionTouchesPerRequest = 2;
  SP.NewSessionChance = 0.10;
  SP.SessionBytes = 128;
  SP.CacheSlots = 24576;
  SP.CacheHitRate = 0.70;
  SP.CacheEntryBytes = 384;
  return SP;
}

/// mixed: the middle of the road — moderate graphs, active sessions, a
/// warm cache.  The default cell for config sweeps.
static ServerProfile mixedScenario() {
  ServerProfile SP;
  SP.Name = "mixed";
  return SP;
}

/// burst: the mixed shape under a phase-shifting schedule — a 3x burst the
/// machine cannot sustain, a steady recovery, then an idle trickle.  The
/// workload the planned adaptive controller (ROADMAP "Self-tuning GC")
/// must be scored on.
static ServerProfile burstScenario() {
  ServerProfile SP = mixedScenario();
  SP.Name = "burst";
  SP.Phases = {{"burst", 24000, 3.0},
               {"steady", 16000, 1.0},
               {"idle", 800, 0.05}};
  return SP;
}

ServerProfile gengc::workload::serverScenarioByName(const std::string &Name) {
  if (Name == "churn")
    return churnScenario();
  if (Name == "cache")
    return cacheScenario();
  if (Name == "mixed")
    return mixedScenario();
  if (Name == "burst")
    return burstScenario();
  fatalError("unknown server scenario (known: churn, cache, mixed, burst)",
             __FILE__, __LINE__);
}

std::vector<std::string> gengc::workload::serverScenarioNames() {
  return {"churn", "cache", "mixed", "burst"};
}

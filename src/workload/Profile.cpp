//===- workload/Profile.cpp - Synthetic benchmark profiles -----------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
//
// Each preset is calibrated against the paper's own characterization of the
// benchmark (Figures 10-12):
//
//  - LongLivedSlots sets the old-generation live set; with anchors plus
//    payloads it is tuned to the "objects scanned w/o generations" column
//    of Figure 11 (the whole-heap trace size);
//  - YoungWindow sets the young survivors, tuned to the "objects scanned
//    in partial collections" column;
//  - PromoteEvery and OldMutationRate set the dirty-anchor traffic, tuned
//    to the "old objects scanned for inter-gen pointers" column;
//  - eviction speed (PromoteEvery vs table size) reproduces whether
//    tenured objects die soon (jess/jack) or persist (db/compress);
//  - ComputePerAlloc tunes the share of runtime spent collecting
//    (Figure 10's "% time GC active").
//
//===----------------------------------------------------------------------===//

#include "workload/Profile.h"

#include "support/Assert.h"

using namespace gengc;
using namespace gengc::workload;

/// Anagram: "collection-intensive, creating and freeing many strings".
/// Paper: 62.8% GC time; 152 partial + 8 full cycles; ~1 old object
/// scanned per partial (strings are character data — almost no reference
/// stores); partials trace 863 objects while whole-heap traces cover 273K
/// (a dictionary and result set built once and kept).
static Profile anagramProfile() {
  Profile P;
  P.Name = "anagram";
  P.AllocBytesPerThread = 192ull << 20;
  P.Threads = 1;
  P.MinDataBytes = 8;
  P.MaxDataBytes = 40;    // short permutation strings
  P.RefSlots = 1;
  P.YoungLinkRate = 0.02; // char data, few reference stores
  P.YoungWindow = 512;
  P.PromoteEvery = 50000; // results accumulate rarely
  P.LongLivedSlots = 131072;
  P.PopulateAtStart = true; // the dictionary + result set
  P.OldMutationRate = 0.0;
  P.ComputePerAlloc = 10; // permutation work is cheap per string
  return P;
}

/// _227_mtrt: two render threads; everything dies young (99.5% of young
/// objects freed, zero full collections), whole-heap traces cover 238K
/// objects (the scene), 280 old objects dirty per partial.
static Profile mtrtProfile() {
  Profile P;
  P.Name = "mtrt";
  P.AllocBytesPerThread = 64ull << 20;
  P.Threads = 2;
  P.MinDataBytes = 16;
  P.MaxDataBytes = 72; // intersection records, vectors
  P.RefSlots = 2;
  P.YoungLinkRate = 0.30;
  P.YoungWindow = 256; // per thread; partials trace ~1000 objects
  P.PromoteEvery = 400;
  P.LongLivedSlots = 40960; // the scene: ~83K live objects with payloads
  P.PopulateAtStart = true;
  P.OldMutationRate = 0.0;
  P.ComputePerAlloc = 150; // ray math dominates
  return P;
}

/// Multithreaded Ray Tracer: the paper's modified _227_mtrt with a bigger
/// matrix and a configurable render-thread count (Section 8.2).  Total
/// work is fixed; benches divide AllocBytesPerThread by the thread count.
static Profile raytracerProfile() {
  Profile P = mtrtProfile();
  P.Name = "raytracer";
  P.AllocBytesPerThread = 32ull << 20;
  P.Threads = 4;
  return P;
}

/// _201_compress: barely collects (1.7% GC time); works on few, large,
/// long-lived buffers — partials trace only 168 objects yet free just 40%
/// of them, and full collections free 2.6% (112 objects averaging tens of
/// KB each).
static Profile compressProfile() {
  Profile P;
  P.Name = "compress";
  P.AllocBytesPerThread = 80ull << 20;
  P.Threads = 1;
  P.MinDataBytes = 4096;
  P.MaxDataBytes = 8192;
  P.RefSlots = 1;
  P.YoungLinkRate = 0.10;
  P.LargeObjectChance = 0.10; // compression buffers dominate the bytes
  P.MinLargeBytes = 16u << 10;
  P.MaxLargeBytes = 64u << 10;
  P.YoungWindow = 80; // most of the few young objects stay reachable
  P.PromoteEvery = 200;
  P.LongLivedSlots = 2560;
  P.PopulateAtStart = true;
  P.OldMutationRate = 0.0;
  P.ComputePerAlloc = 30000; // compression math dominates utterly
  return P;
}

/// _209_db: a big stable in-memory database built up-front (~282K live
/// objects; full collections free only 22%) with query churn on top
/// (99.8% of young objects die; 7 old objects dirty per partial).
static Profile dbProfile() {
  Profile P;
  P.Name = "db";
  P.AllocBytesPerThread = 64ull << 20;
  P.Threads = 1;
  P.MinDataBytes = 16;
  P.MaxDataBytes = 64;
  P.RefSlots = 2;
  P.YoungLinkRate = 0.35;
  P.YoungWindow = 256; // partials trace ~400 objects
  P.PromoteEvery = 10000; // the database barely changes
  P.LongLivedSlots = 141312;
  P.PopulateAtStart = true;
  P.OldMutationRate = 0.0;
  P.ComputePerAlloc = 220; // sorting/searching dominates
  return P;
}

/// _202_jess: the anti-generational benchmark.  36.2% of partial-collection
/// scanning is dirty old objects (1373 of 3797), and tenured working-memory
/// facts are retracted soon after promotion, so full collections free 87%
/// — as much as partials.  Both effects cost more than generations save.
static Profile jessProfile() {
  Profile P;
  P.Name = "jess";
  P.AllocBytesPerThread = 128ull << 20;
  P.Threads = 1;
  P.MinDataBytes = 16;
  P.MaxDataBytes = 56;
  P.RefSlots = 3; // rule-network nodes
  P.YoungLinkRate = 0.90;
  P.YoungWindow = 512;
  P.PromoteEvery = 80;      // heavy tenuring of working-memory facts...
  P.LongLivedSlots = 10240; // ...that are retracted (die) soon after
  P.PopulateAtStart = false;
  P.OldMutationRate = 0.0045; // rule network rewiring dirties old cards
  P.ComputePerAlloc = 30;
  return P;
}

/// _213_javac: the generational success story (15-17% improvement) despite
/// the heaviest inter-generational load (16184 dirty old objects per
/// partial): a large, growing live set that still lets partials free 68%.
static Profile javacProfile() {
  Profile P;
  P.Name = "javac";
  P.AllocBytesPerThread = 128ull << 20;
  P.Threads = 1;
  P.MinDataBytes = 24;
  P.MaxDataBytes = 96; // AST nodes, symbols
  P.RefSlots = 3;
  P.YoungLinkRate = 0.80;
  P.YoungWindow = 6144;
  P.PromoteEvery = 8;       // ASTs and symbol tables are retained in bulk
  P.LongLivedSlots = 81920; // released per compiled class; the set grows
  P.PopulateAtStart = false;
  P.OldMutationRate = 0.18; // symbol tables are rewritten constantly
  P.ComputePerAlloc = 45;
  return P;
}

/// _228_jack: like jess, tenured objects die quickly (full collections
/// free 90.8%), but with far less old-generation mutation (151 dirty old
/// objects); generations give a small net loss.
static Profile jackProfile() {
  Profile P;
  P.Name = "jack";
  P.AllocBytesPerThread = 96ull << 20;
  P.Threads = 1;
  P.MinDataBytes = 12;
  P.MaxDataBytes = 48; // tokens, parser states
  P.RefSlots = 2;
  P.YoungLinkRate = 0.60;
  P.YoungWindow = 4096;
  P.PromoteEvery = 500;
  P.LongLivedSlots = 4096;
  P.PopulateAtStart = false;
  P.OldMutationRate = 0.0;
  P.ComputePerAlloc = 45;
  return P;
}

Profile gengc::workload::profileByName(const std::string &Name) {
  if (Name == "anagram")
    return anagramProfile();
  if (Name == "mtrt")
    return mtrtProfile();
  if (Name == "raytracer")
    return raytracerProfile();
  if (Name == "compress")
    return compressProfile();
  if (Name == "db")
    return dbProfile();
  if (Name == "jess")
    return jessProfile();
  if (Name == "javac")
    return javacProfile();
  if (Name == "jack")
    return jackProfile();
  fatalError("unknown workload profile name", __FILE__, __LINE__);
}

std::vector<std::string> gengc::workload::specJvmProfileNames() {
  return {"mtrt", "compress", "db", "jess", "javac", "jack"};
}

std::vector<std::string> gengc::workload::allProfileNames() {
  return {"mtrt", "compress", "db",     "jess",
          "javac", "jack",    "anagram"};
}

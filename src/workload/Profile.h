//===- workload/Profile.h - Synthetic benchmark profiles --------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized synthetic workloads standing in for the paper's benchmark
/// suite (SPECjvm98, Anagram, multithreaded Ray Tracer), which we cannot
/// run without a JVM.  Each profile is tuned to the *generational behavior*
/// the paper itself measured for the benchmark (Figures 10-12): allocation
/// volume, how young objects die, how much gets tenured and how fast
/// tenured objects die, and how heavily old-generation pointers are
/// mutated.  The absolute numbers differ from the paper's 1999 hardware;
/// the shapes — who wins with generations and why — are what we reproduce.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_WORKLOAD_PROFILE_H
#define GENGC_WORKLOAD_PROFILE_H

#include <cstdint>
#include <string>
#include <vector>

namespace gengc::workload {

/// Knobs of one synthetic mutator program.
struct Profile {
  std::string Name = "custom";

  //===-- Volume ----------------------------------------------------------===
  /// Total bytes each thread allocates (before Runner scaling).
  uint64_t AllocBytesPerThread = 64ull << 20;
  /// Number of mutator threads.
  unsigned Threads = 1;

  //===-- Object shape ----------------------------------------------------===
  /// Scalar payload size range, uniform (bytes).
  uint32_t MinDataBytes = 8;
  uint32_t MaxDataBytes = 56;
  /// Reference slots per object.
  uint32_t RefSlots = 2;
  /// Probability that an allocation is a large object instead.
  double LargeObjectChance = 0.0;
  /// Large object payload range (bytes).
  uint32_t MinLargeBytes = 16u << 10;
  uint32_t MaxLargeBytes = 64u << 10;

  /// Probability that a new object is linked to its predecessor with a
  /// reference store.  Only reference stores mark cards (primitive stores
  /// do not, in the paper's JVM and here), so this controls the dirty-card
  /// density of the young region: anagram's char-array strings barely
  /// store references (1.1% dirty cards in Figure 22), jess's rule network
  /// is nothing but reference stores (15-61%).
  double YoungLinkRate = 1.0;

  //===-- Lifetimes -------------------------------------------------------===
  /// Per-thread sliding window of rooted young objects; leaving the window
  /// is death for objects that were never promoted ("most objects die
  /// young").
  uint32_t YoungWindow = 2048;
  /// Every k-th allocation is additionally stored into the global
  /// long-lived table, evicting (usually killing) a previous entry.  Models
  /// tenuring; small values mean heavy promotion traffic (jess/jack), large
  /// values a quiet old generation (anagram).
  uint32_t PromoteEvery = 64;
  /// Entries in the global long-lived table.  Together with PromoteEvery
  /// this sets how long tenured objects live: a small table with frequent
  /// promotion means tenured objects die soon after promotion — the
  /// non-generational lifetime pattern that hurt _202_jess and _228_jack.
  uint32_t LongLivedSlots = 16384;
  /// Fill the table up-front with objects that then live for the whole run
  /// (models _209_db's big stable in-memory database).
  bool PopulateAtStart = false;

  //===-- Old-generation mutation ------------------------------------------===
  /// Probability, per allocation, of shuffling pointers between long-lived
  /// table entries.  Dirties old-generation cards without changing
  /// liveness: the "application modifies too many pointers in the old
  /// generation" cost of Section 1.1.
  double OldMutationRate = 0.0;

  //===-- CPU work ---------------------------------------------------------===
  /// Iterations of scalar computation per allocation; controls the share
  /// of runtime spent allocating vs. computing (Figure 10's "% time GC
  /// active" column).
  uint32_t ComputePerAlloc = 64;

  /// Workload PRNG seed (per-thread streams derive from it).
  uint64_t Seed = 0x5EED;
};

/// Returns the named preset profile.  Known names: anagram, mtrt,
/// raytracer, compress, db, jess, javac, jack.  Aborts on unknown names.
Profile profileByName(const std::string &Name);

/// Names of the SPECjvm-derived presets, in the paper's table order
/// (mtrt, compress, db, jess, javac, jack).
std::vector<std::string> specJvmProfileNames();

/// All preset names including anagram and raytracer.
std::vector<std::string> allProfileNames();

} // namespace gengc::workload

#endif // GENGC_WORKLOAD_PROFILE_H

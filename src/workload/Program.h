//===- workload/Program.h - The synthetic mutator program -------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mutator program every profile runs:
///
///  - a per-thread *young window* of rooted objects: each allocation enters
///    the window and evicts the oldest entry, so an object that is never
///    promoted lives for exactly YoungWindow allocations — young death;
///  - a global *long-lived table* (GC objects referenced from a global
///    root): every PromoteEvery-th allocation is stored into a random slot,
///    killing the previous occupant — tenuring and old-generation death;
///  - optional *old-generation mutation*: shuffles pointers between table
///    slots, dirtying cards the way pointer-heavy applications do;
///  - scalar compute between allocations.
///
/// All heap pointer stores go through the write barrier; the window lives
/// in the shadow stack (barrier-free, like Java locals).
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_WORKLOAD_PROGRAM_H
#define GENGC_WORKLOAD_PROGRAM_H

#include "core/Runtime.h"
#include "workload/Profile.h"

namespace gengc::workload {

/// The global long-lived table: fixed-size leaf arrays (reachable from a
/// global root) hold immortal small *anchor* objects; each anchor's first
/// reference slot carries the current payload.  Storing a payload dirties
/// only the anchor's card — one small old object, exactly the granularity
/// at which the paper's applications mutate their old generations.  The
/// leaves are written once during construction and never again, so they
/// stop appearing on dirty cards after the first collection.
class LongLivedTable {
public:
  /// Slots per leaf array.
  static constexpr uint32_t LeafSlots = 1024;
  /// Reference slots per anchor (payload + a lateral link for the
  /// old-mutation traffic).
  static constexpr uint32_t AnchorSlots = 2;

  /// Allocates the structure via \p M and anchors it in a global root of
  /// \p RT.
  LongLivedTable(Runtime &RT, Mutator &M, size_t Slots);

  size_t size() const { return Slots; }

  /// Barriered store of table[Index]'s payload.
  void put(Mutator &M, size_t Index, ObjectRef Value);

  /// Reads table[Index]'s payload.
  ObjectRef get(const Mutator &M, size_t Index) const;

  /// The anchor object of \p Index (for lateral old-to-old mutation).
  ObjectRef anchor(size_t Index) const {
    GENGC_ASSERT(Index < Slots, "long-lived table index out of range");
    return Anchors[Index];
  }

private:
  size_t Slots;
  /// Anchor refs are cached raw: they are immortal (reachable from a
  /// global root for the runtime's lifetime) and objects never move.
  std::vector<ObjectRef> Anchors;
};

/// Per-thread outcome of the program.
struct ThreadResult {
  uint64_t AllocatedObjects = 0;
  uint64_t AllocatedBytes = 0;
  /// Checksum of the compute work (defeats dead-code elimination; also a
  /// determinism check across collector configurations).
  uint64_t Checksum = 0;
  /// Collector-induced stalls this thread experienced (stop-the-world
  /// parks, allocation-throttle waits, out-of-memory waits).
  Mutator::PauseStats Pauses;
};

/// Runs the mutator program for one thread until its allocation budget
/// (\p Profile.AllocBytesPerThread scaled by \p Scale) is exhausted.
/// Attaches and detaches its own Mutator.
ThreadResult runMutatorProgram(Runtime &RT, const Profile &P,
                               LongLivedTable &Table, unsigned ThreadIdx,
                               double Scale);

} // namespace gengc::workload

#endif // GENGC_WORKLOAD_PROGRAM_H

//===- workload/Runner.cpp - Benchmark orchestration ------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "workload/Runner.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "support/Assert.h"
#include "support/Random.h"
#include "support/Timer.h"
#include "workload/Program.h"

using namespace gengc;
using namespace gengc::workload;

namespace {

/// Runs one copy of the figure-shaped mutator program under its own
/// Runtime.  ElapsedSeconds covers this copy's timed phase only; the group
/// driver overwrites it with the group wall time for multi-copy runs.
RunResult runProfileOnce(const Profile &P, const RuntimeConfig &Config,
                         double Scale, uint64_t Seed) {
  Profile Seeded = P;
  Seeded.Seed = Seed;
  Runtime RT(Config);
  RunResult Result;

  // Setup phase (untimed): build and optionally populate the long-lived
  // table, then let one collection tenure it so the timed region starts
  // from the steady state the paper's measurements describe.
  {
    std::unique_ptr<Mutator> M = RT.attachMutator();
    LongLivedTable Table(RT, *M, Seeded.LongLivedSlots);
    if (Seeded.PopulateAtStart) {
      Rng Rand(Seeded.Seed);
      for (size_t I = 0; I < Table.size(); ++I) {
        uint32_t DataBytes = uint32_t(
            Rand.nextInRange(Seeded.MinDataBytes, Seeded.MaxDataBytes));
        Table.put(*M, I, M->allocate(Seeded.RefSlots, DataBytes));
      }
      RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
    }
    RT.collector().resetStats();

    // Timed phase.
    uint64_t Start = nowNanos();
    {
      std::vector<std::thread> Threads;
      std::vector<ThreadResult> PerThread(Seeded.Threads);
      for (unsigned T = 1; T < Seeded.Threads; ++T)
        Threads.emplace_back([&, T] {
          PerThread[T] = runMutatorProgram(RT, Seeded, Table, T, Scale);
        });
      // Thread 0's share runs on this thread, via its own fresh Mutator —
      // the setup mutator M must not be used concurrently.
      {
        BlockedScope Blocked(*M);
        PerThread[0] = runMutatorProgram(RT, Seeded, Table, 0, Scale);
        for (std::thread &T : Threads)
          T.join();
      }
      for (const ThreadResult &R : PerThread) {
        Result.AllocatedObjects += R.AllocatedObjects;
        Result.AllocatedBytes += R.AllocatedBytes;
        Result.Checksum ^= R.Checksum;
      }
    }
    Result.ElapsedSeconds = double(nowNanos() - Start) * 1e-9;
  }

  Result.Gc = RT.gcStats();
  Result.Metrics = RT.metrics();
  Result.Trace = RT.traceSnapshot();
  Result.SoftLimitBytes = RT.collector().trigger().softLimitBytes();
  return Result;
}

/// Aggregates \p Copy into \p Total: counters sum, histograms merge,
/// checksums XOR, gauges take the maximum where summing is meaningless.
void aggregateCopy(RunResult &Total, const RunResult &Copy) {
  Total.AllocatedObjects += Copy.AllocatedObjects;
  Total.AllocatedBytes += Copy.AllocatedBytes;
  Total.Checksum ^= Copy.Checksum;
  Total.Requests += Copy.Requests;
  Total.SoftLimitBytes = std::max(Total.SoftLimitBytes, Copy.SoftLimitBytes);
  Total.Metrics.merge(Copy.Metrics);
  Total.Gc.Cycles.insert(Total.Gc.Cycles.end(), Copy.Gc.Cycles.begin(),
                         Copy.Gc.Cycles.end());
  Total.Gc.GcActiveNanos += Copy.Gc.GcActiveNanos;
}

/// Runs one group of Options.Copies simultaneous copies and returns the
/// aggregate under the group's wall-clock time.
RunResult runGroup(const std::function<RunResult(uint64_t Seed)> &RunOne,
                   uint64_t Seed, unsigned Copies) {
  if (Copies <= 1) {
    RunResult R = RunOne(Seed);
    // Single-copy runs keep their own timed-phase elapsed (setup excluded).
    return R;
  }

  std::vector<RunResult> Results(Copies);
  uint64_t Start = nowNanos();
  {
    std::vector<std::thread> Threads;
    for (unsigned C = 1; C < Copies; ++C)
      Threads.emplace_back(
          [&, C] { Results[C] = RunOne(Seed + C * 0x1234567); });
    Results[0] = RunOne(Seed);
    for (std::thread &T : Threads)
      T.join();
  }

  RunResult Combined = Results[0];
  for (unsigned C = 1; C < Copies; ++C)
    aggregateCopy(Combined, Results[C]);
  // The paper reports the elapsed time of the saturated machine: the wall
  // time of the whole group, not copy 0's timed phase.
  Combined.ElapsedSeconds = double(nowNanos() - Start) * 1e-9;
  return Combined;
}

} // namespace

RunResult
gengc::workload::runRepeated(const std::function<RunResult(uint64_t)> &RunOne,
                             uint64_t BaseSeed, const RunOptions &Options) {
  GENGC_ASSERT(Options.Reps >= 1, "need at least one timed repetition");
  GENGC_ASSERT(Options.Copies >= 1, "need at least one copy");
  uint64_t Seed = Options.Seed ? Options.Seed : BaseSeed;

  // Warmup reps run the full group shape but are discarded; they shift the
  // seed backwards so they never share a stream with a timed rep.
  for (unsigned W = 0; W < Options.Warmup; ++W)
    (void)runGroup(RunOne, Seed + 0xC0FFEE + W, Options.Copies);

  std::vector<RunResult> Reps;
  Reps.reserve(Options.Reps);
  for (unsigned Rep = 0; Rep < Options.Reps; ++Rep)
    Reps.push_back(runGroup(RunOne, Seed + Rep, Options.Copies));

  std::sort(Reps.begin(), Reps.end(),
            [](const RunResult &A, const RunResult &B) {
              return A.ElapsedSeconds < B.ElapsedSeconds;
            });
  return Reps[Reps.size() / 2];
}

RunResult gengc::workload::runWorkload(const Profile &P,
                                       const RuntimeConfig &Config,
                                       const RunOptions &Options) {
  return runRepeated(
      [&](uint64_t Seed) {
        return runProfileOnce(P, Config, Options.Scale, Seed);
      },
      P.Seed, Options);
}

RuntimeConfig gengc::workload::makeConfig(CollectorChoice Choice,
                                          uint64_t YoungBytes,
                                          uint32_t CardBytes) {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 32ull << 20; // the paper's maximum heap
  Config.Heap.CardBytes = CardBytes;
  Config.Collector.Trigger.YoungBytes = YoungBytes;
  Config.Choice = Choice;
  return Config;
}

double gengc::workload::improvementPercent(const RunResult &Base,
                                           const RunResult &Gen) {
  if (Base.ElapsedSeconds <= 0.0)
    return 0.0;
  return 100.0 * (Base.ElapsedSeconds - Gen.ElapsedSeconds) /
         Base.ElapsedSeconds;
}

//===- workload/Runner.cpp - Benchmark orchestration ------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "workload/Runner.h"

#include <cstdlib>
#include <thread>

#include "support/Random.h"
#include "support/Timer.h"
#include "workload/Program.h"

using namespace gengc;
using namespace gengc::workload;

RunResult gengc::workload::runWorkload(const Profile &P,
                                       const RuntimeConfig &Config,
                                       double Scale) {
  Runtime RT(Config);
  RunResult Result;

  // Setup phase (untimed): build and optionally populate the long-lived
  // table, then let one collection tenure it so the timed region starts
  // from the steady state the paper's measurements describe.
  {
    std::unique_ptr<Mutator> M = RT.attachMutator();
    LongLivedTable Table(RT, *M, P.LongLivedSlots);
    if (P.PopulateAtStart) {
      Rng Rand(P.Seed);
      for (size_t I = 0; I < Table.size(); ++I) {
        uint32_t DataBytes =
            uint32_t(Rand.nextInRange(P.MinDataBytes, P.MaxDataBytes));
        Table.put(*M, I, M->allocate(P.RefSlots, DataBytes));
      }
      RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
    }
    RT.collector().resetStats();

    // Timed phase.
    uint64_t Start = nowNanos();
    {
      std::vector<std::thread> Threads;
      std::vector<ThreadResult> PerThread(P.Threads);
      for (unsigned T = 1; T < P.Threads; ++T)
        Threads.emplace_back([&, T] {
          PerThread[T] = runMutatorProgram(RT, P, Table, T, Scale);
        });
      // Thread 0's share runs on this thread, via its own fresh Mutator —
      // the setup mutator M must not be used concurrently.
      {
        BlockedScope Blocked(*M);
        PerThread[0] = runMutatorProgram(RT, P, Table, 0, Scale);
        for (std::thread &T : Threads)
          T.join();
      }
      for (const ThreadResult &R : PerThread) {
        Result.AllocatedObjects += R.AllocatedObjects;
        Result.AllocatedBytes += R.AllocatedBytes;
        Result.Checksum ^= R.Checksum;
      }
    }
    Result.ElapsedSeconds = double(nowNanos() - Start) * 1e-9;
  }

  Result.Gc = RT.gcStats();
  Result.Metrics = RT.metrics();
  Result.Trace = RT.traceSnapshot();
  Result.SoftLimitBytes = RT.collector().trigger().softLimitBytes();
  return Result;
}

RunResult gengc::workload::runWorkloadCopies(const Profile &P,
                                             const RuntimeConfig &Config,
                                             unsigned Copies, double Scale) {
  GENGC_ASSERT(Copies >= 1, "need at least one copy");
  if (Copies == 1)
    return runWorkload(P, Config, Scale);

  std::vector<RunResult> Results(Copies);
  uint64_t Start = nowNanos();
  {
    std::vector<std::thread> Threads;
    for (unsigned C = 1; C < Copies; ++C)
      Threads.emplace_back([&, C] {
        Profile Shifted = P;
        Shifted.Seed += C * 0x1234567;
        Results[C] = runWorkload(Shifted, Config, Scale);
      });
    Results[0] = runWorkload(P, Config, Scale);
    for (std::thread &T : Threads)
      T.join();
  }
  RunResult Combined = Results[0];
  // The paper reports the elapsed time of the saturated machine.
  Combined.ElapsedSeconds = double(nowNanos() - Start) * 1e-9;
  return Combined;
}

RuntimeConfig gengc::workload::makeConfig(CollectorChoice Choice,
                                          uint64_t YoungBytes,
                                          uint32_t CardBytes) {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 32ull << 20; // the paper's maximum heap
  Config.Heap.CardBytes = CardBytes;
  Config.Collector.Trigger.YoungBytes = YoungBytes;
  Config.Choice = Choice;
  return Config;
}

double gengc::workload::improvementPercent(const RunResult &Base,
                                           const RunResult &Gen) {
  if (Base.ElapsedSeconds <= 0.0)
    return 0.0;
  return 100.0 * (Base.ElapsedSeconds - Gen.ElapsedSeconds) /
         Base.ElapsedSeconds;
}

double gengc::workload::envScale(double Default) {
  const char *Env = std::getenv("GENGC_SCALE");
  if (!Env)
    return Default;
  double Value = std::atof(Env);
  return Value > 0.0 ? Value : Default;
}

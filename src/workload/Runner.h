//===- workload/Runner.h - Benchmark orchestration --------------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a complete workload: builds a Runtime, populates the long-lived
/// table, spawns the profile's mutator threads, and collects elapsed time
/// plus the collector's statistics.  The single entry point takes a
/// RunOptions bundle — scale, simultaneous copies (the paper's Section 8.1
/// machine-saturation methodology), warmup runs, timed repetitions with
/// median selection, and a seed override — and every driver (figure
/// benches, micro benches, the scenario matrix, tools, tests) goes through
/// it.  Multi-copy runs return a true aggregate: summed allocation
/// counters, merged latency histograms, XOR-combined checksums.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_WORKLOAD_RUNNER_H
#define GENGC_WORKLOAD_RUNNER_H

#include <functional>

#include "core/Runtime.h"
#include "workload/Profile.h"

namespace gengc::workload {

/// How to run a workload, orthogonal to *what* runs (Profile or
/// ServerProfile) and *under which collector* (RuntimeConfig).
struct RunOptions {
  /// Multiplies the workload's volume knob: allocation budgets for the
  /// figure profiles, per-phase request counts for server scenarios.
  double Scale = 1.0;
  /// Simultaneous, independent copies of the workload — the paper's way of
  /// making sure "all the processors [are] busy all the time, and the more
  /// efficient garbage collector [wins]".  Each copy gets its own Runtime
  /// and a shifted seed; the result aggregates all copies under the group's
  /// wall-clock elapsed time.
  unsigned Copies = 1;
  /// Untimed, discarded runs before the timed repetitions (cache/branch
  /// warmup on shared benchmark machines).
  unsigned Warmup = 0;
  /// Timed repetitions; the rep with the median elapsed time is returned
  /// (counts and histograms come from that same rep).  Each rep shifts the
  /// seed so repetitions are independent allocation streams.
  unsigned Reps = 1;
  /// When nonzero, overrides the workload's own seed.
  uint64_t Seed = 0;
};

/// Outcome of one workload run.
struct RunResult {
  double ElapsedSeconds = 0.0;
  GcRunStats Gc;
  /// The runtime's metrics snapshot, taken after the timed phase: the same
  /// cycle aggregates as Gc plus latency histograms and gauges.  The figure
  /// benches read their numbers from here; for multi-copy runs this is the
  /// merged aggregate across all copies (see MetricsSnapshot::merge).
  MetricsSnapshot Metrics;
  /// All recorded events (empty unless Config.Collector.Obs.Tracing; for
  /// multi-copy runs, copy 0's trace — rings are per-runtime).
  TraceSnapshot Trace;
  uint64_t AllocatedObjects = 0;
  uint64_t AllocatedBytes = 0;
  uint64_t Checksum = 0;
  /// Final soft heap limit (how far the heap grew; max across copies).
  uint64_t SoftLimitBytes = 0;
  /// Requests completed — nonzero only for server scenarios
  /// (workload/Scenario.h), whose latency samples are in
  /// Metrics.RequestNanos.
  uint64_t Requests = 0;

  /// Percent of elapsed time a collection cycle was active (Figure 10).
  /// Multi-copy runs sum GC-active time across copies, so this can exceed
  /// 100 on a saturated machine.
  double percentGcActive() const {
    return Metrics.percentActive(uint64_t(ElapsedSeconds * 1e9));
  }

  /// Completed requests per second of elapsed time (0 for figure
  /// workloads).
  double requestsPerSecond() const {
    return ElapsedSeconds > 0.0 ? double(Requests) / ElapsedSeconds : 0.0;
  }
};

/// Runs \p P under \p Config per \p Options (see RunOptions for the
/// warmup/reps/copies semantics).
RunResult runWorkload(const Profile &P, const RuntimeConfig &Config,
                      const RunOptions &Options = {});

/// The generic orchestration under runWorkload and runScenario: \p Warmup
/// discarded runs, then \p Reps timed repetitions of \p Copies simultaneous
/// copies, returning the median-elapsed rep's aggregate.  \p RunOne runs a
/// single copy with the given workload seed and must fill every RunResult
/// field except ElapsedSeconds-of-the-group.  Exposed so new workload
/// families plug into the same methodology instead of reimplementing it.
RunResult runRepeated(const std::function<RunResult(uint64_t Seed)> &RunOne,
                      uint64_t BaseSeed, const RunOptions &Options);

/// Baseline runtime configuration used across the benchmark suite:
/// 32 MB max heap (the paper's setting), collector per \p Choice.
RuntimeConfig makeConfig(CollectorChoice Choice,
                         uint64_t YoungBytes = 4ull << 20,
                         uint32_t CardBytes = 16);

/// Percentage improvement of \p Gen over \p Base in elapsed time
/// (positive = generational is faster), the paper's headline metric.
double improvementPercent(const RunResult &Base, const RunResult &Gen);

} // namespace gengc::workload

#endif // GENGC_WORKLOAD_RUNNER_H

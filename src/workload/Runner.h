//===- workload/Runner.h - Benchmark orchestration --------------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a complete workload: builds a Runtime, populates the long-lived
/// table, spawns the profile's mutator threads, and collects elapsed time
/// plus the collector's statistics.  Also provides the paper's measurement
/// methodology helpers: running N simultaneous copies to saturate the
/// machine (Section 8.1) and computing the percentage improvement of the
/// generational collector over the baseline.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_WORKLOAD_RUNNER_H
#define GENGC_WORKLOAD_RUNNER_H

#include "core/Runtime.h"
#include "workload/Profile.h"

namespace gengc::workload {

/// Outcome of one workload run.
struct RunResult {
  double ElapsedSeconds = 0.0;
  GcRunStats Gc;
  /// The runtime's metrics snapshot, taken after the timed phase: the same
  /// cycle aggregates as Gc plus latency histograms and gauges.  The figure
  /// benches read their numbers from here.
  MetricsSnapshot Metrics;
  /// All recorded events (empty unless Config.Collector.Obs.Tracing).
  TraceSnapshot Trace;
  uint64_t AllocatedObjects = 0;
  uint64_t AllocatedBytes = 0;
  uint64_t Checksum = 0;
  /// Final soft heap limit (how far the heap grew).
  uint64_t SoftLimitBytes = 0;

  /// Percent of elapsed time a collection cycle was active (Figure 10).
  double percentGcActive() const {
    return Metrics.percentActive(uint64_t(ElapsedSeconds * 1e9));
  }
};

/// Runs \p P once under \p Config.  \p Scale multiplies the allocation
/// budget (benchmarks use it to trade accuracy for wall-clock time).
RunResult runWorkload(const Profile &P, const RuntimeConfig &Config,
                      double Scale = 1.0);

/// Runs \p Copies simultaneous, independent copies of the workload — the
/// paper's way of making sure "all the processors [are] busy all the time,
/// and the more efficient garbage collector [wins]".  Returns the total
/// elapsed wall time plus copy 0's detailed result.
RunResult runWorkloadCopies(const Profile &P, const RuntimeConfig &Config,
                            unsigned Copies, double Scale = 1.0);

/// Baseline runtime configuration used across the benchmark suite:
/// 32 MB max heap (the paper's setting), collector per \p Choice.
RuntimeConfig makeConfig(CollectorChoice Choice,
                         uint64_t YoungBytes = 4ull << 20,
                         uint32_t CardBytes = 16);

/// Percentage improvement of \p Gen over \p Base in elapsed time
/// (positive = generational is faster), the paper's headline metric.
double improvementPercent(const RunResult &Base, const RunResult &Gen);

/// Reads the GENGC_SCALE environment variable (default \p Default); the
/// bench binaries use it so a full suite can be dialed up or down.
double envScale(double Default = 1.0);

} // namespace gengc::workload

#endif // GENGC_WORKLOAD_RUNNER_H

//===- workload/Scenario.h - Server-shaped workload family ------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The server scenario family: request/response traffic instead of the
/// figure benches' fixed allocation budgets.  The paper evaluated its
/// collector the 1999 way — SPECjvm98-shaped throughput — but a collector
/// serving live traffic is scored on *mutator tail latency under sustained
/// request load*, so scenarios model exactly that:
///
///  - an **open-loop arrival process**: requests are scheduled at a
///    configured rate regardless of whether the server keeps up, so
///    collector-induced backlog shows up as queueing delay in every
///    subsequent sample (no coordinated omission).  Per-request latency is
///    completion minus *scheduled arrival*, recorded into the runtime's
///    always-on request histogram — p50/p99/p999 come straight from
///    MetricsSnapshot::RequestNanos, never from ad-hoc timing;
///  - **per-request ephemeral work**: each request allocates and links a
///    small object graph that dies as soon as the next requests overwrite
///    the worker's root window — the young-generation churn of request
///    handlers;
///  - a **session table**: a fixed ring of anchors aged FIFO (oldest
///    session evicted by the next new one) — the middle-aged state that
///    defeats a pure "most objects die young" heuristic and feeds the
///    Section 6 aging machinery;
///  - a **long-lived in-process cache**: prefilled before timing starts,
///    mutated on misses — the stable old generation whose size dictates
///    what a stop-the-world trace costs while the world is stopped;
///  - **phase-shifting schedules**: each scenario is a list of phases
///    (burst -> steady -> idle) with per-phase rate multipliers, the
///    traffic shape the planned adaptive controller must react to.
///
/// Request *content* is a pure function of (seed, request index), so the
/// request count and checksum are identical across collectors and runs —
/// the determinism the workload tests pin — while timing, liveness overlap
/// and GC interleaving remain free.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_WORKLOAD_SCENARIO_H
#define GENGC_WORKLOAD_SCENARIO_H

#include <string>
#include <vector>

#include "workload/Runner.h"

namespace gengc::workload {

/// One segment of a scenario's traffic schedule.
struct ScenarioPhase {
  std::string Name = "steady";
  /// Requests issued in this phase (scaled by RunOptions::Scale).
  uint64_t Requests = 0;
  /// Multiplies ServerProfile::RequestsPerSecond for this phase's
  /// inter-arrival spacing (3.0 = burst, 0.05 = idle trickle).
  double RateMultiplier = 1.0;
};

/// Knobs of one server scenario.
struct ServerProfile {
  std::string Name = "custom";

  //===-- Traffic ---------------------------------------------------------===
  /// Server worker threads pulling from the shared arrival schedule.
  unsigned Workers = 2;
  /// Base open-loop arrival rate (requests/second) at RateMultiplier 1.
  double RequestsPerSecond = 20000.0;
  /// The schedule; phases run back to back.
  std::vector<ScenarioPhase> Phases = {{"steady", 40000, 1.0}};

  //===-- Per-request ephemeral graph -------------------------------------===
  /// Nodes allocated and linked per request; they live in the worker's
  /// root window until the following requests overwrite it.
  uint32_t GraphNodesPerRequest = 32;
  uint32_t NodeRefSlots = 2;
  uint32_t MinNodeBytes = 24;
  uint32_t MaxNodeBytes = 72;
  /// Iterations of scalar compute per request (the non-allocating share of
  /// request handling).
  uint32_t ComputePerRequest = 400;

  //===-- Session table (middle generation) --------------------------------===
  /// Session anchors; 0 disables the session layer.
  uint32_t SessionSlots = 8192;
  /// Session-table reads per request.
  uint32_t SessionTouchesPerRequest = 2;
  /// Probability a request creates a session, FIFO-evicting the oldest
  /// slot: sessions live SessionSlots/(rate * chance) seconds — too long
  /// for the young generation, too short to be immortal.
  double NewSessionChance = 0.15;
  /// Scalar payload of a session object.
  uint32_t SessionBytes = 128;

  //===-- In-process cache (old generation) --------------------------------===
  /// Cache anchors, prefilled before the timed phase; 0 disables.
  uint32_t CacheSlots = 8192;
  /// Probability a request's cache lookup hits; a miss allocates a
  /// replacement entry and stores it (old-generation mutation + churn).
  double CacheHitRate = 0.9;
  /// Scalar payload of a cache entry.
  uint32_t CacheEntryBytes = 256;

  /// Scenario PRNG seed (request streams derive from it).
  uint64_t Seed = 0x5E55;

  /// Total requests over all phases at \p Scale (>= 1).
  uint64_t totalRequests(double Scale) const;
};

/// Runs \p SP under \p Config per \p Options (same warmup/reps/copies
/// semantics as runWorkload).  The result's Requests and
/// Metrics.RequestNanos carry the SLO numbers; requestsPerSecond() and
/// percentGcActive() the throughput and collector-load columns.
RunResult runScenario(const ServerProfile &SP, const RuntimeConfig &Config,
                      const RunOptions &Options = {});

/// Returns the named preset scenario.  Known names: churn, cache, mixed,
/// burst.  Aborts on unknown names.
ServerProfile serverScenarioByName(const std::string &Name);

/// All preset scenario names, in matrix order.
std::vector<std::string> serverScenarioNames();

} // namespace gengc::workload

#endif // GENGC_WORKLOAD_SCENARIO_H

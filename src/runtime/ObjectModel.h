//===- runtime/ObjectModel.h - Object headers and slots ---------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The toy runtime's object layout.  An object is:
///
///     +0   uint32   NumRefSlots (low 16 bits) | TypeTag (high 16 bits)
///     +4   uint32   AllocBytes — the requested size including the header
///     +8   ObjectRef RefSlot[NumRefSlots]     — the pointer fields
///     +8+4*N        raw data words             — scalar payload
///
/// Reference slots come first so the tracer can scan them without a type
/// map; the paper's JVM walks per-class reference maps, which visits the
/// same set of slots.  All accesses go through the heap's atomic words so
/// concurrent mutator stores and collector loads are well-defined.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_RUNTIME_OBJECTMODEL_H
#define GENGC_RUNTIME_OBJECTMODEL_H

#include "heap/Heap.h"
#include "heap/Ref.h"

namespace gengc {

/// Size of the fixed object header in bytes.
inline constexpr uint32_t ObjectHeaderBytes = 8;

/// Size of one reference slot in bytes.
inline constexpr uint32_t RefSlotBytes = 4;

/// Maximum number of reference slots in one object.
inline constexpr uint32_t MaxRefSlots = 0xFFFF;

/// Bytes needed for an object with \p RefSlots pointers and \p DataBytes of
/// scalar payload (before size-class rounding).
inline uint32_t objectBytesFor(uint32_t RefSlots, uint32_t DataBytes) {
  return ObjectHeaderBytes + RefSlots * RefSlotBytes + DataBytes;
}

/// Initializes the header and clears all reference slots of a freshly
/// popped cell.  Must run before the object's color is published.
void initObject(Heap &H, ObjectRef Ref, uint32_t RefSlots, uint16_t Tag,
                uint32_t AllocBytes);

/// Number of reference slots of the object at \p Ref.
inline uint32_t objectRefSlots(const Heap &H, ObjectRef Ref) {
  return H.wordAt(Ref).load(std::memory_order_acquire) & 0xFFFF;
}

/// Type tag of the object at \p Ref (free for the embedder's use).
inline uint16_t objectTag(const Heap &H, ObjectRef Ref) {
  return uint16_t(H.wordAt(Ref).load(std::memory_order_acquire) >> 16);
}

/// Requested allocation size (including header) of the object at \p Ref.
inline uint32_t objectAllocBytes(const Heap &H, ObjectRef Ref) {
  return H.wordAt(Ref + 4).load(std::memory_order_acquire);
}

/// Arena byte offset of reference slot \p Index of the object at \p Ref.
inline uint64_t refSlotOffset(ObjectRef Ref, uint32_t Index) {
  return uint64_t(Ref) + ObjectHeaderBytes + uint64_t(Index) * RefSlotBytes;
}

/// Loads reference slot \p Index (collector and mutator reads).
inline ObjectRef loadRefSlot(const Heap &H, ObjectRef Ref, uint32_t Index) {
  return H.wordAt(refSlotOffset(Ref, Index))
      .load(std::memory_order_acquire);
}

/// Stores reference slot \p Index *without* a write barrier.  Only legal
/// before the object is published (during initialization) or from tests
/// that stop the collector.  Live code goes through Mutator::writeRef.
inline void storeRefSlotRaw(Heap &H, ObjectRef Ref, uint32_t Index,
                            ObjectRef Value) {
  H.wordAt(refSlotOffset(Ref, Index))
      .store(Value, std::memory_order_release);
}

/// Number of whole scalar data words that fit after the reference slots,
/// given the object's *requested* size.
inline uint32_t objectDataWords(const Heap &H, ObjectRef Ref) {
  uint32_t Bytes = objectAllocBytes(H, Ref);
  uint32_t Used = ObjectHeaderBytes + objectRefSlots(H, Ref) * RefSlotBytes;
  return (Bytes - Used) / 4;
}

/// Arena offset of scalar data word \p Index.
inline uint64_t dataWordOffset(const Heap &H, ObjectRef Ref, uint32_t Index) {
  return refSlotOffset(Ref, objectRefSlots(H, Ref)) +
         uint64_t(Index) * 4;
}

/// Loads scalar data word \p Index of the object at \p Ref.
inline uint32_t loadDataWord(const Heap &H, ObjectRef Ref, uint32_t Index) {
  return H.wordAt(dataWordOffset(H, Ref, Index))
      .load(std::memory_order_relaxed);
}

/// Stores scalar data word \p Index of the object at \p Ref.  Data words
/// carry no references, so no barrier is involved.
inline void storeDataWord(Heap &H, ObjectRef Ref, uint32_t Index,
                          uint32_t Value) {
  H.wordAt(dataWordOffset(H, Ref, Index))
      .store(Value, std::memory_order_relaxed);
}

} // namespace gengc

#endif // GENGC_RUNTIME_OBJECTMODEL_H

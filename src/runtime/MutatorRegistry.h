//===- runtime/MutatorRegistry.h - Thread registration ----------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tracks the set of live mutators so the collector can run handshakes.
/// Threads may register and deregister at any time, including mid-cycle:
/// a registering mutator adopts the collector's current status under the
/// registry lock (so it owes no pending response), and a deregistering one
/// simply disappears from the set the collector polls.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_RUNTIME_MUTATORREGISTRY_H
#define GENGC_RUNTIME_MUTATORREGISTRY_H

#include <mutex>
#include <vector>

#include "runtime/CollectorState.h"

namespace gengc {

class Mutator;

/// The set of registered mutators, guarded by one mutex.
class MutatorRegistry {
public:
  explicit MutatorRegistry(CollectorState &S) : State(S) {}

  /// Registers \p M and synchronizes its status with the collector's.
  void add(Mutator &M);

  /// Removes \p M; blocks while the collector is inspecting the set.
  void remove(Mutator &M);

  /// Number of registered mutators.
  size_t size() const;

  /// Runs \p Fn(Mutator&) for every registered mutator, under the registry
  /// lock (collector only; keep the callback short).
  template <typename Fn> void forEach(Fn Callback) {
    std::scoped_lock Locked(Mutex);
    for (Mutator *M : Mutators)
      Callback(*M);
  }

  /// Returns the number of mutators whose status differs from \p Status,
  /// helping blocked ones respond along the way.  Used by waitHandshake.
  size_t countLaggingAndHelp(HandshakeStatus Status);

private:
  CollectorState &State;
  mutable std::mutex Mutex;
  std::vector<Mutator *> Mutators;
  /// Next registration id handed out by add().  Ids are stable for a
  /// mutator's lifetime and never reused; the heap hashes them to home
  /// shards (Heap::homeShardFor), so registration order — not thread
  /// scheduling — decides shard placement.
  uint64_t NextId = 0;
};

} // namespace gengc

#endif // GENGC_RUNTIME_MUTATORREGISTRY_H

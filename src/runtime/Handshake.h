//===- runtime/Handshake.h - The soft handshake protocol --------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The collector side of the DLG handshake: postHandshake publishes a new
/// collector status, waitHandshake spins until every registered mutator has
/// adopted it (responding on behalf of blocked threads).  Like the paper we
/// split the handshake into the two halves so the collector can do work —
/// clearing cards, toggling colors — between posting and waiting
/// (Section 7: "we separate the handshake into two parts, postHandshake and
/// waitHandshake, instead of using a second collector thread").
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_RUNTIME_HANDSHAKE_H
#define GENGC_RUNTIME_HANDSHAKE_H

#include "obs/EventRing.h"
#include "runtime/CollectorState.h"
#include "runtime/MutatorRegistry.h"
#include "runtime/Watchdog.h"

namespace gengc {

/// Collector-side handshake driver.
class HandshakeDriver {
public:
  HandshakeDriver(CollectorState &S, MutatorRegistry &Registry)
      : State(S), Registry(Registry) {}

  /// Routes HandshakeReq events to \p Ring (the collector's event ring;
  /// null disables emission).  Called once at collector construction.
  void setObsRing(EventRing *Ring) { Obs = Ring; }

  /// Installs the stall watchdog (null disables it).  Called once at
  /// collector construction; the config must outlive the driver.
  void setWatchdog(const WatchdogConfig *Config) { Watchdog = Config; }

  /// Publishes \p Status as the collector status (postHandshake).
  void post(HandshakeStatus Status);

  /// Spins until every mutator matches the posted status (waitHandshake).
  /// If a watchdog is installed with a nonzero DeadlineNanos and some
  /// mutator is still lagging past it, fires the stall policy — and keeps
  /// re-firing on a capped-exponential schedule while the wait stays
  /// stalled.  Returns true when every mutator adopted the status.  Under
  /// WatchdogPolicy::Escalate only, a wait that reaches EscalateAfterFires
  /// fires instead force-completes the laggards (their responses are
  /// adopted on their behalf, WITHOUT the root shades a real response
  /// performs) and returns false: the caller must abort the cycle, whose
  /// trace can no longer be trusted.  All other policies never return
  /// false.
  bool wait();

  /// post + wait.
  bool handshake(HandshakeStatus Status) {
    post(Status);
    return wait();
  }

  /// Assembles a StallReport (snapshotting every registered mutator) and
  /// applies the watchdog policy.  Public so the collector can report
  /// whole-cycle deadline overruns and stop-the-world timeouts through the
  /// same machinery; no-op when no watchdog is installed.  \p Escalation is
  /// the 1-based fire index within the stalled wait.
  void fireStall(const char *What, uint64_t WaitedNanos,
                 uint64_t Escalation = 1);

  /// Adopts the posted status on behalf of every mutator still lagging
  /// behind \p Status (Mutator::forceAdopt: no root shading, no
  /// last-response update) and returns how many were forced.  Only sound
  /// when the in-flight cycle is about to be aborted — public because
  /// Collector::abortCycle uses it to finish the unwind's return-to-Async
  /// handshake.
  uint64_t forceCompleteLaggards(HandshakeStatus Status);

  /// Fire count of the most recent wait() that returned false (telemetry
  /// for the abort path; collector-thread only).
  uint64_t lastEscalation() const { return LastEscalation; }

private:
  CollectorState &State;
  MutatorRegistry &Registry;
  EventRing *Obs = nullptr;
  const WatchdogConfig *Watchdog = nullptr;
  uint64_t LastEscalation = 0;
};

} // namespace gengc

#endif // GENGC_RUNTIME_HANDSHAKE_H

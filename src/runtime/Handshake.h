//===- runtime/Handshake.h - The soft handshake protocol --------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The collector side of the DLG handshake: postHandshake publishes a new
/// collector status, waitHandshake spins until every registered mutator has
/// adopted it (responding on behalf of blocked threads).  Like the paper we
/// split the handshake into the two halves so the collector can do work —
/// clearing cards, toggling colors — between posting and waiting
/// (Section 7: "we separate the handshake into two parts, postHandshake and
/// waitHandshake, instead of using a second collector thread").
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_RUNTIME_HANDSHAKE_H
#define GENGC_RUNTIME_HANDSHAKE_H

#include "obs/EventRing.h"
#include "runtime/CollectorState.h"
#include "runtime/MutatorRegistry.h"

namespace gengc {

/// Collector-side handshake driver.
class HandshakeDriver {
public:
  HandshakeDriver(CollectorState &S, MutatorRegistry &Registry)
      : State(S), Registry(Registry) {}

  /// Routes HandshakeReq events to \p Ring (the collector's event ring;
  /// null disables emission).  Called once at collector construction.
  void setObsRing(EventRing *Ring) { Obs = Ring; }

  /// Publishes \p Status as the collector status (postHandshake).
  void post(HandshakeStatus Status);

  /// Spins until every mutator matches the posted status (waitHandshake).
  void wait();

  /// post + wait.
  void handshake(HandshakeStatus Status) {
    post(Status);
    wait();
  }

private:
  CollectorState &State;
  MutatorRegistry &Registry;
  EventRing *Obs = nullptr;
};

} // namespace gengc

#endif // GENGC_RUNTIME_HANDSHAKE_H

//===- runtime/Handshake.h - The soft handshake protocol --------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The collector side of the DLG handshake: postHandshake publishes a new
/// collector status, waitHandshake spins until every registered mutator has
/// adopted it (responding on behalf of blocked threads).  Like the paper we
/// split the handshake into the two halves so the collector can do work —
/// clearing cards, toggling colors — between posting and waiting
/// (Section 7: "we separate the handshake into two parts, postHandshake and
/// waitHandshake, instead of using a second collector thread").
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_RUNTIME_HANDSHAKE_H
#define GENGC_RUNTIME_HANDSHAKE_H

#include "obs/EventRing.h"
#include "runtime/CollectorState.h"
#include "runtime/MutatorRegistry.h"
#include "runtime/Watchdog.h"

namespace gengc {

/// Collector-side handshake driver.
class HandshakeDriver {
public:
  HandshakeDriver(CollectorState &S, MutatorRegistry &Registry)
      : State(S), Registry(Registry) {}

  /// Routes HandshakeReq events to \p Ring (the collector's event ring;
  /// null disables emission).  Called once at collector construction.
  void setObsRing(EventRing *Ring) { Obs = Ring; }

  /// Installs the stall watchdog (null disables it).  Called once at
  /// collector construction; the config must outlive the driver.
  void setWatchdog(const WatchdogConfig *Config) { Watchdog = Config; }

  /// Publishes \p Status as the collector status (postHandshake).
  void post(HandshakeStatus Status);

  /// Spins until every mutator matches the posted status (waitHandshake).
  /// If a watchdog is installed with a nonzero DeadlineNanos and some
  /// mutator is still lagging past it, fires the stall policy once and
  /// keeps waiting (unless the policy aborted).
  void wait();

  /// post + wait.
  void handshake(HandshakeStatus Status) {
    post(Status);
    wait();
  }

  /// Assembles a StallReport (snapshotting every registered mutator) and
  /// applies the watchdog policy.  Public so the collector can report
  /// whole-cycle deadline overruns through the same machinery; no-op when
  /// no watchdog is installed.
  void fireStall(const char *What, uint64_t WaitedNanos);

private:
  CollectorState &State;
  MutatorRegistry &Registry;
  EventRing *Obs = nullptr;
  const WatchdogConfig *Watchdog = nullptr;
};

} // namespace gengc

#endif // GENGC_RUNTIME_HANDSHAKE_H

//===- runtime/MutatorRegistry.cpp - Thread registration -------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "runtime/MutatorRegistry.h"

#include <algorithm>

#include "runtime/Mutator.h"
#include "support/Assert.h"

using namespace gengc;

void MutatorRegistry::add(Mutator &M) {
  std::scoped_lock Locked(Mutex);
  // Adopt the collector's status under the registry lock: the collector
  // only advances StatusC while holding no expectation about threads it has
  // not yet seen, so a fresh mutator owes no pending handshake response.
  M.StatusM.store(State.StatusC.load(std::memory_order_acquire),
                  std::memory_order_release);
  M.Id = NextId++;
  Mutators.push_back(&M);
}

void MutatorRegistry::remove(Mutator &M) {
  std::scoped_lock Locked(Mutex);
  auto It = std::find(Mutators.begin(), Mutators.end(), &M);
  GENGC_ASSERT(It != Mutators.end(), "removing an unregistered mutator");
  Mutators.erase(It);
}

size_t MutatorRegistry::size() const {
  std::scoped_lock Locked(Mutex);
  return Mutators.size();
}

size_t MutatorRegistry::countLaggingAndHelp(HandshakeStatus Status) {
  std::scoped_lock Locked(Mutex);
  size_t Lagging = 0;
  for (Mutator *M : Mutators) {
    if (M->status() == Status)
      continue;
    M->helpIfBlocked();
    if (M->status() != Status)
      ++Lagging;
  }
  return Lagging;
}

//===- runtime/GrayBuffer.h - Pending gray objects --------------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mechanism for "keeping track of the objects remaining to be traced"
/// that the DLG papers leave unspecified (Section 7).  Every successful
/// shade-to-gray appends the object here; the tracer drains it.  Shading is
/// rare (once per object per cycle, only during collection stages), so a
/// mutex-protected vector is plenty — the write barrier's fast path never
/// touches it.
///
/// The buffer is an optimization, not the correctness anchor: the tracer
/// finishes with a verification scan of the color table, so an enqueue
/// that is still in flight when the buffer looks empty is caught there.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_RUNTIME_GRAYBUFFER_H
#define GENGC_RUNTIME_GRAYBUFFER_H

#include <mutex>
#include <vector>

#include "heap/Ref.h"

namespace gengc {

/// A multi-producer buffer of objects shaded gray.
class GrayBuffer {
public:
  /// Appends \p Ref (mutators and collector, after winning a gray CAS).
  void push(ObjectRef Ref) {
    std::scoped_lock Locked(Mutex);
    Pending.push_back(Ref);
  }

  /// Appends many refs under one lock acquisition (collector bulk shading,
  /// e.g. ClearCards re-graying thousands of old objects).
  void pushMany(const std::vector<ObjectRef> &Refs) {
    if (Refs.empty())
      return;
    std::scoped_lock Locked(Mutex);
    Pending.insert(Pending.end(), Refs.begin(), Refs.end());
  }

  /// Moves all pending entries into \p Out (collector only).
  /// \returns true if anything was drained.
  bool drainTo(std::vector<ObjectRef> &Out) {
    std::scoped_lock Locked(Mutex);
    if (Pending.empty())
      return false;
    Out.insert(Out.end(), Pending.begin(), Pending.end());
    Pending.clear();
    return true;
  }

  /// Drains all pending entries through \p Callback(ObjectRef), in push
  /// order, outside the buffer lock (the tracer's segmented stacks take
  /// their own pool mutex on refill, which must not nest inside ours).
  /// \returns true if anything was drained.
  template <typename Fn> bool drainEach(Fn Callback) {
    std::vector<ObjectRef> Local;
    {
      std::scoped_lock Locked(Mutex);
      if (Pending.empty())
        return false;
      Local.swap(Pending);
    }
    for (ObjectRef Ref : Local)
      Callback(Ref);
    return true;
  }

  /// Discards stale entries (start of a cycle; leftovers from late shades
  /// of the previous cycle are re-discovered by color if still gray).
  void clear() {
    std::scoped_lock Locked(Mutex);
    Pending.clear();
  }

private:
  std::mutex Mutex;
  std::vector<ObjectRef> Pending;
};

} // namespace gengc

#endif // GENGC_RUNTIME_GRAYBUFFER_H

//===- runtime/Watchdog.cpp - Handshake/cycle stall detection --------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "runtime/Watchdog.h"

#include <cinttypes>
#include <cstdio>

using namespace gengc;

const char *gengc::handshakeStatusName(HandshakeStatus Status) {
  switch (Status) {
  case HandshakeStatus::Async:
    return "async";
  case HandshakeStatus::Sync1:
    return "sync1";
  case HandshakeStatus::Sync2:
    return "sync2";
  }
  return "invalid";
}

void gengc::dumpStallReport(const StallReport &Report) {
  std::fprintf(stderr,
               "gengc watchdog: %s stalled for %.1f ms (posted status %s, "
               "fire %" PRIu64 ", %zu mutators)\n",
               Report.What, double(Report.WaitedNanos) / 1e6,
               handshakeStatusName(Report.Posted), Report.Escalation,
               Report.Mutators.size());
  for (size_t I = 0; I < Report.Mutators.size(); ++I) {
    const MutatorDiag &D = Report.Mutators[I];
    bool Never = D.SinceResponseNanos == UINT64_MAX;
    double SinceMs = Never ? 0.0 : double(D.SinceResponseNanos) / 1e6;
    std::fprintf(stderr,
                 "  mutator %zu: adopted=%s blocked=%d allocated=%" PRIu64
                 " last-response=%+.1f ms%s\n",
                 I, handshakeStatusName(D.Adopted), int(D.Blocked),
                 D.AllocatedObjects, -SinceMs, Never ? " (never)" : "");
  }
}

//===- runtime/CollectorState.h - State shared with mutators ----*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The handful of atomic variables through which the collector and the
/// mutators coordinate without ever stopping the world:
///
///  - the collector status (async / sync1 / sync2) driving the handshake
///    protocol (Section 2);
///  - the allocation and clear colors of the color toggle (Section 5);
///  - the coarse collector phase, which the write barrier consults for its
///    "Collector is tracing" test (Figure 1);
///  - the barrier variant (none / simple / aging) selecting between the
///    Figure 1 and Figure 4 mutator routines.
///
/// Each mutator additionally keeps its own status (its perception of the
/// current handshake); see runtime/Mutator.h.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_RUNTIME_COLLECTORSTATE_H
#define GENGC_RUNTIME_COLLECTORSTATE_H

#include <atomic>

#include "heap/Color.h"
#include "runtime/GrayBuffer.h"

namespace gengc {

/// Handshake statuses.  A cycle advances async -> sync1 -> sync2 -> async.
enum class HandshakeStatus : uint8_t {
  Async = 0,
  Sync1 = 1,
  Sync2 = 2,
};

/// Coarse collector phase, read (racily, by design) by the write barrier.
enum class GcPhase : uint8_t {
  Idle = 0,
  Clear,
  Mark,
  Trace,
  Sweep,
  /// Lazy sweep (SweepPolicy::Lazy): the phase that replaces Sweep —
  /// publishes every size-class block needs-sweep instead of walking it.
  PublishSweep,
  /// Lazy sweep: drains blocks the mutators have not claimed since the
  /// previous publish.  Runs at the *start* of a cycle, before the toggle.
  SweepResidue,
};

/// Which mutator-side barrier code is in effect.
enum class BarrierKind : uint8_t {
  /// Non-generational DLG: no card marking at all.
  NonGenerational,
  /// Figure 1: card marking during async only; MarkGray also shades
  /// allocation-colored (yellow) objects during sync1/sync2.
  Simple,
  /// Figure 4: card marking in every state, after the store; MarkGray
  /// shades clear-colored objects only.
  Aging,
};

/// Shared collector/mutator coordination state.
struct CollectorState {
  std::atomic<HandshakeStatus> StatusC{HandshakeStatus::Async};

  /// nowNanos() at the most recent handshake post, stored (relaxed) just
  /// before StatusC.  A mutator that adopts the posted status reads this to
  /// compute its request-to-response latency: the seq_cst StatusC load that
  /// revealed the new status orders the relaxed timestamp store before the
  /// read, so the latency can only be over-estimated by the gap between the
  /// two collector stores.  Purely observational — nothing in the protocol
  /// reads it.
  std::atomic<uint64_t> StatusPostNanos{0};
  std::atomic<Color> AllocationColor{Color::White};
  std::atomic<Color> ClearColor{Color::Yellow};
  std::atomic<GcPhase> Phase{GcPhase::Idle};
  std::atomic<BarrierKind> Barrier{BarrierKind::Simple};

  /// Objects shaded gray and not yet traced; drained by the tracer.
  GrayBuffer Grays;

  /// Remembered-set mode (the Section 3.1 alternative to card marking the
  /// paper rejected for Java's update rates): the async write barrier
  /// records the *updated object* here, deduplicated through a side flag
  /// table, instead of dirtying a card.  Simple promotion policy only.
  std::atomic<bool> UseRememberedSets{false};

  /// Objects recorded by the remembered-set barrier, awaiting the next
  /// partial collection.
  GrayBuffer Remembered;

  /// Number of threads currently between winning a gray CAS and finishing
  /// the buffer push.  The tracer's termination protocol waits for zero, so
  /// a shade whose enqueue is still in flight can never be missed.
  std::atomic<int64_t> InFlightShades{0};

  /// Stop-the-world support (the StwCollector comparator, not used by the
  /// paper's on-the-fly collectors): when set, every mutator parks at its
  /// next cooperate() after shading its own roots, and stays parked until
  /// cleared.
  std::atomic<bool> StopWorld{false};

  /// Distinguishes consecutive stop-the-world pauses: bumped (after the
  /// color toggle) each time StopWorld is raised.  A mutator still asleep
  /// in its park loop from pause N re-shades its roots — under the new
  /// colors — when it observes epoch N+1, and the collector counts it
  /// stopped only once the mutator has published the current epoch.
  /// Without this, back-to-back cycles treat stale parkers as stopped and
  /// sweep their never-reshaded roots.
  std::atomic<uint64_t> StopEpoch{0};

  /// Number of mutators currently parked for a stop-the-world pause.
  std::atomic<int64_t> ParkedMutators{0};

  /// Allocation budget (bytes since the last collection) past which
  /// mutators stall while a cycle is in progress.  Concurrent collectors
  /// need this back-pressure: a mutator fleet that outruns the collector
  /// otherwise drives occupancy into permanent full-collection mode.  Set
  /// once by the collector (the same value for both collectors, so
  /// comparisons stay fair); UINT64_MAX disables throttling.
  std::atomic<uint64_t> ThrottleBytes{~0ull};

  /// Number of watchdog deadline expirations so far (handshake waits plus
  /// whole-cycle deadlines).  Bumped by the firing thread, read by tests
  /// and the stats report.
  std::atomic<uint64_t> WatchdogFires{0};

  /// Number of color toggles so far.  Lazy sweep stamps each published
  /// block with this epoch; the block must be swept — its clear-colored
  /// cells freed under the meaning the publish fixed — before the next
  /// toggle reinterprets the colors (verified by HeapVerifier's
  /// deferred-sweep invariant).
  std::atomic<uint32_t> ColorEpoch{0};

  /// Swaps the allocation and clear colors (Section 5's toggle).  Only the
  /// collector calls this, at most once per cycle, so plain exchanged
  /// stores on the two atomics suffice.
  void switchAllocationClearColors() {
    Color Alloc = AllocationColor.load(std::memory_order_relaxed);
    Color Clear = ClearColor.load(std::memory_order_relaxed);
    ClearColor.store(Alloc, std::memory_order_seq_cst);
    AllocationColor.store(Clear, std::memory_order_seq_cst);
    ColorEpoch.fetch_add(1, std::memory_order_seq_cst);
  }

  Color allocationColor() const {
    return AllocationColor.load(std::memory_order_seq_cst);
  }
  Color clearColor() const {
    return ClearColor.load(std::memory_order_seq_cst);
  }

  /// True while the collector is between the start of trace and the end of
  /// trace — the write barrier's "Collector is tracing" test.
  bool isTracing() const {
    return Phase.load(std::memory_order_relaxed) == GcPhase::Trace;
  }

  /// True while a collection cycle is in progress at all.
  bool isCollecting() const {
    return Phase.load(std::memory_order_relaxed) != GcPhase::Idle;
  }
};

} // namespace gengc

#endif // GENGC_RUNTIME_COLLECTORSTATE_H

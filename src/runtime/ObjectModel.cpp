//===- runtime/ObjectModel.cpp - Object headers and slots ------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "runtime/ObjectModel.h"

#include "support/Assert.h"

using namespace gengc;

void gengc::initObject(Heap &H, ObjectRef Ref, uint32_t RefSlots, uint16_t Tag,
                       uint32_t AllocBytes) {
  GENGC_ASSERT(RefSlots <= MaxRefSlots, "too many reference slots");
  GENGC_ASSERT(objectBytesFor(RefSlots, 0) <= AllocBytes,
               "object size does not cover its reference slots");
  GENGC_ASSERT(AllocBytes <= H.storageBytesOf(Ref),
               "object does not fit its cell");
  H.wordAt(Ref).store(RefSlots | (uint32_t(Tag) << 16),
                      std::memory_order_relaxed);
  H.wordAt(Ref + 4).store(AllocBytes, std::memory_order_relaxed);
  // Clear the reference slots: the cell may be reused and the tracer must
  // never chase a stale pointer from the object's previous life.  The color
  // store that publishes the object is a release store, ordering these
  // writes before any collector access.
  for (uint32_t I = 0; I < RefSlots; ++I)
    H.wordAt(refSlotOffset(Ref, I)).store(NullRef, std::memory_order_relaxed);
}

//===- runtime/Roots.cpp - Global roots ------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "runtime/Roots.h"

using namespace gengc;

size_t GlobalRoots::addRoot(ObjectRef Initial) {
  std::scoped_lock Locked(Mutex);
  Slots.emplace_back(Initial);
  return Slots.size() - 1;
}

size_t GlobalRoots::size() const {
  std::scoped_lock Locked(Mutex);
  return Slots.size();
}

ObjectRef GlobalRoots::get(size_t Index) const {
  std::scoped_lock Locked(Mutex);
  GENGC_ASSERT(Index < Slots.size(), "global root index out of range");
  return Slots[Index].load(std::memory_order_acquire);
}

void GlobalRoots::set(size_t Index, ObjectRef Value) {
  {
    std::scoped_lock Locked(Mutex);
    GENGC_ASSERT(Index < Slots.size(), "global root index out of range");
    Slots[Index].store(Value, std::memory_order_release);
  }
  // Shade the stored value while the collector is establishing or tracing
  // its snapshot.  During sweep (and idle) no shading is needed: the trace
  // is complete and the value is already protected — the same holds for
  // the lazy policy's post-trace PublishSweep and pre-toggle SweepResidue.
  GcPhase Phase = State.Phase.load(std::memory_order_acquire);
  if (Phase != GcPhase::Idle && Phase != GcPhase::Sweep &&
      Phase != GcPhase::PublishSweep && Phase != GcPhase::SweepResidue &&
      Value != NullRef) {
    markGrayClearOnly(H, State, Value, StoreShadeCounters);
    // Also cover values carrying the allocation color during the toggle
    // window, mirroring the Figure 1 exception.
    shadeGray(H, State, Value, State.allocationColor());
  }
}

void GlobalRoots::markAll(GrayCounters &Counters) {
  std::scoped_lock Locked(Mutex);
  for (std::atomic<ObjectRef> &Slot : Slots) {
    ObjectRef Root = Slot.load(std::memory_order_acquire);
    if (Root != NullRef)
      markGrayClearOnly(H, State, Root, Counters);
  }
}

//===- runtime/Watchdog.h - Handshake/cycle stall detection -----*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stall detection for the on-the-fly protocol.  The soft handshake is the
/// one place where the collector depends on every mutator: a thread that
/// stops calling cooperate() without declaring itself blocked wedges
/// waitHandshake() forever, and nothing in the paper's protocol can tell
/// "slow" from "stuck".  The watchdog bounds that wait with a configurable
/// deadline; on expiry it snapshots per-mutator diagnostics (posted vs.
/// adopted status, blocked flag, time since the last handshake response)
/// and applies a policy: log the report, hand it to an embedder callback,
/// or abort.  A second, independent deadline covers the whole collection
/// cycle, catching stalls inside the phases themselves.
///
/// Under Log/Callback/Abort, detection never unwedges the protocol — a
/// stuck mutator stays stuck and the wait continues after the report — but
/// it converts a silent hang into an actionable diagnosis.  The Escalate
/// policy goes further and drives a deterministic recovery ladder: the
/// report re-fires on a capped-exponential schedule, then the lagging
/// mutators' handshake responses are completed on their behalf, the
/// on-the-fly cycle is aborted and unwound (Collector::abortCycle), the
/// next cycles run as a cooperating stop-the-world fallback, and on-the-fly
/// collection resumes once a degraded cycle sees every mutator park
/// voluntarily again.  DESIGN.md §19 has the full failure-mode matrix.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_RUNTIME_WATCHDOG_H
#define GENGC_RUNTIME_WATCHDOG_H

#include <cstdint>
#include <functional>
#include <vector>

#include "runtime/CollectorState.h"

namespace gengc {

/// Returns a printable name for \p Status (diagnostics).
const char *handshakeStatusName(HandshakeStatus Status);

/// What the watchdog does when a deadline expires.
enum class WatchdogPolicy : uint8_t {
  /// Print the stall report to stderr.
  Log = 0,
  /// Invoke WatchdogConfig::OnStall with the report (no stderr traffic).
  Callback,
  /// Print the report and abort the process — for deployments where a
  /// wedged collector is worse than a dead one.
  Abort,
  /// Recover instead of report-and-hope: re-fire on a capped backoff
  /// schedule, then force-complete the laggards' handshakes, abort the
  /// cycle, and degrade to cooperating-STW collection until handshakes
  /// succeed again.  Reports go to OnStall when installed, stderr
  /// otherwise.  Requires DeadlineNanos != 0.
  Escalate,
};

/// Point-in-time diagnosis of one registered mutator, taken while a stall
/// report is assembled.  All fields are racy snapshots of live state.
struct MutatorDiag {
  /// The handshake status this mutator has adopted.
  HandshakeStatus Adopted = HandshakeStatus::Async;
  /// Whether the thread has declared itself blocked (the collector responds
  /// on its behalf, so a blocked thread cannot cause a stall).
  bool Blocked = false;
  /// nowNanos() of this thread's most recent handshake response (adoption,
  /// enterBlocked or exitBlocked); 0 if it has never responded.
  uint64_t LastResponseNanos = 0;
  /// Nanoseconds between LastResponseNanos and the report's NowNanos —
  /// the "how long has this thread been silent" number, precomputed so
  /// OnStall handlers need no clock math.  UINT64_MAX if the thread has
  /// never responded.
  uint64_t SinceResponseNanos = 0;
  /// Objects this mutator has allocated so far (helps tell an idle thread
  /// from a hot one in the dump).
  uint64_t AllocatedObjects = 0;
};

/// Everything the watchdog knows when a deadline expires.
struct StallReport {
  /// What stalled: "handshake", "cycle" or "stop-the-world".
  const char *What = "handshake";
  /// The status the collector had posted when the watchdog fired.
  HandshakeStatus Posted = HandshakeStatus::Async;
  /// Printable name of Posted (embedder convenience; always non-null).
  const char *PostedName = "async";
  /// 1-based index of this fire within the current wait: 1 on the first
  /// deadline expiry, counting up as the re-fire schedule (capped
  /// exponential, see WatchdogConfig::RefireCapNanos) keeps firing on a
  /// still-stalled wait.  Always 1 for cycle-deadline reports.
  uint64_t Escalation = 1;
  /// How long the collector had been waiting, in nanoseconds.
  uint64_t WaitedNanos = 0;
  /// nowNanos() when the report was assembled (compare against each
  /// mutator's LastResponseNanos).
  uint64_t NowNanos = 0;
  /// One diagnosis per registered mutator, registry order.
  std::vector<MutatorDiag> Mutators;
};

/// Static watchdog configuration (part of CollectorConfig).
struct WatchdogConfig {
  /// Deadline for one handshake wait, in nanoseconds; 0 disables the
  /// handshake watchdog.  A wait that stays stalled past the first fire
  /// re-fires on a capped-exponential schedule (gaps double from
  /// DeadlineNanos up to RefireCapNanos), with StallReport::Escalation
  /// counting the fires.
  uint64_t DeadlineNanos = 0;
  /// Saturation point of the re-fire schedule, in nanoseconds; 0 means
  /// 8 x DeadlineNanos.
  uint64_t RefireCapNanos = 0;
  /// Escalate only: after this many fires of one wait, the ladder stops
  /// reporting and acts (force-complete laggards, abort the cycle).  The
  /// earlier fires are report-only, giving slow-but-alive mutators
  /// EscalateAfterFires chances before any state is touched.
  unsigned EscalateAfterFires = 3;
  /// Deadline for one whole collection cycle, in nanoseconds; 0 disables.
  /// Checked when the cycle completes (a mid-cycle stall always surfaces
  /// through a handshake wait first, which the deadline above covers).
  uint64_t CycleDeadlineNanos = 0;
  /// What to do on expiry.
  WatchdogPolicy Policy = WatchdogPolicy::Log;
  /// The embedder callback for WatchdogPolicy::Callback.  Runs on the
  /// waiting (collector) thread; must not block on the GC or allocate
  /// through a registered mutator.
  std::function<void(const StallReport &)> OnStall;
};

/// Prints \p Report to stderr, one line per mutator.
void dumpStallReport(const StallReport &Report);

} // namespace gengc

#endif // GENGC_RUNTIME_WATCHDOG_H

//===- runtime/Watchdog.h - Handshake/cycle stall detection -----*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stall detection for the on-the-fly protocol.  The soft handshake is the
/// one place where the collector depends on every mutator: a thread that
/// stops calling cooperate() without declaring itself blocked wedges
/// waitHandshake() forever, and nothing in the paper's protocol can tell
/// "slow" from "stuck".  The watchdog bounds that wait with a configurable
/// deadline; on expiry it snapshots per-mutator diagnostics (posted vs.
/// adopted status, blocked flag, time since the last handshake response)
/// and applies a policy: log the report, hand it to an embedder callback,
/// or abort.  A second, independent deadline covers the whole collection
/// cycle, catching stalls inside the phases themselves.
///
/// Detection never unwedges the protocol — a stuck mutator stays stuck and
/// the wait continues after the report — but it converts a silent hang into
/// an actionable diagnosis, which is what an embedder's own supervisor
/// needs to decide whether to kill the thread, the runtime, or the process.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_RUNTIME_WATCHDOG_H
#define GENGC_RUNTIME_WATCHDOG_H

#include <cstdint>
#include <functional>
#include <vector>

#include "runtime/CollectorState.h"

namespace gengc {

/// Returns a printable name for \p Status (diagnostics).
const char *handshakeStatusName(HandshakeStatus Status);

/// What the watchdog does when a deadline expires.
enum class WatchdogPolicy : uint8_t {
  /// Print the stall report to stderr.
  Log = 0,
  /// Invoke WatchdogConfig::OnStall with the report (no stderr traffic).
  Callback,
  /// Print the report and abort the process — for deployments where a
  /// wedged collector is worse than a dead one.
  Abort,
};

/// Point-in-time diagnosis of one registered mutator, taken while a stall
/// report is assembled.  All fields are racy snapshots of live state.
struct MutatorDiag {
  /// The handshake status this mutator has adopted.
  HandshakeStatus Adopted = HandshakeStatus::Async;
  /// Whether the thread has declared itself blocked (the collector responds
  /// on its behalf, so a blocked thread cannot cause a stall).
  bool Blocked = false;
  /// nowNanos() of this thread's most recent handshake response (adoption,
  /// enterBlocked or exitBlocked); 0 if it has never responded.
  uint64_t LastResponseNanos = 0;
  /// Objects this mutator has allocated so far (helps tell an idle thread
  /// from a hot one in the dump).
  uint64_t AllocatedObjects = 0;
};

/// Everything the watchdog knows when a deadline expires.
struct StallReport {
  /// What stalled: "handshake" or "cycle".
  const char *What = "handshake";
  /// The status the collector had posted when the watchdog fired.
  HandshakeStatus Posted = HandshakeStatus::Async;
  /// How long the collector had been waiting, in nanoseconds.
  uint64_t WaitedNanos = 0;
  /// nowNanos() when the report was assembled (compare against each
  /// mutator's LastResponseNanos).
  uint64_t NowNanos = 0;
  /// One diagnosis per registered mutator, registry order.
  std::vector<MutatorDiag> Mutators;
};

/// Static watchdog configuration (part of CollectorConfig).
struct WatchdogConfig {
  /// Deadline for one handshake wait, in nanoseconds; 0 disables the
  /// handshake watchdog.  Fires at most once per wait.
  uint64_t DeadlineNanos = 0;
  /// Deadline for one whole collection cycle, in nanoseconds; 0 disables.
  /// Checked when the cycle completes (a mid-cycle stall always surfaces
  /// through a handshake wait first, which the deadline above covers).
  uint64_t CycleDeadlineNanos = 0;
  /// What to do on expiry.
  WatchdogPolicy Policy = WatchdogPolicy::Log;
  /// The embedder callback for WatchdogPolicy::Callback.  Runs on the
  /// waiting (collector) thread; must not block on the GC or allocate
  /// through a registered mutator.
  std::function<void(const StallReport &)> OnStall;
};

/// Prints \p Report to stderr, one line per mutator.
void dumpStallReport(const StallReport &Report);

} // namespace gengc

#endif // GENGC_RUNTIME_WATCHDOG_H

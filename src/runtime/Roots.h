//===- runtime/Roots.h - Global roots ---------------------------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Global roots — the analogue of the JVM's static fields.  The collector
/// marks them once per cycle ("mark global roots", Figure 2) after all
/// mutators reached the third handshake.
///
/// Stores into global roots during the clear/mark/trace stages additionally
/// shade the stored value.  A pure snapshot of globals would be unsound in
/// our runtime: a mutator that has not yet responded to the third handshake
/// can park the only reference to a clear-colored object in a global slot
/// *after* the collector scanned globals and then drop it from its stack
/// before marking its own roots.  Shading on the store closes that window
/// at the cost of at most one cycle of floating garbage.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_RUNTIME_ROOTS_H
#define GENGC_RUNTIME_ROOTS_H

#include <deque>
#include <mutex>

#include "heap/Heap.h"
#include "runtime/CollectorState.h"
#include "runtime/WriteBarrier.h"

namespace gengc {

/// A growable set of atomic global root slots.
class GlobalRoots {
public:
  GlobalRoots(Heap &H, CollectorState &S) : H(H), State(S) {}

  /// Adds a root slot holding \p Initial; returns its index.  Thread-safe.
  size_t addRoot(ObjectRef Initial = NullRef);

  /// Number of root slots.
  size_t size() const;

  /// Reads root \p Index.
  ObjectRef get(size_t Index) const;

  /// Writes root \p Index, shading \p Value while a collection's mark/trace
  /// stages are in progress (see the file comment).
  void set(size_t Index, ObjectRef Value);

  /// Collector: shades every root (the "mark global roots" step).  The
  /// shading counters feed the caller's statistics.
  void markAll(GrayCounters &Counters);

private:
  Heap &H;
  CollectorState &State;
  mutable std::mutex Mutex;
  /// deque: push_back never relocates existing atomics.
  std::deque<std::atomic<ObjectRef>> Slots;
  GrayCounters StoreShadeCounters;
};

} // namespace gengc

#endif // GENGC_RUNTIME_ROOTS_H

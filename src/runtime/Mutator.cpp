//===- runtime/Mutator.cpp - Program threads -------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "runtime/Mutator.h"

#include <thread>

#include "runtime/MutatorRegistry.h"
#include "support/Timer.h"

using namespace gengc;

MemoryWaiter::~MemoryWaiter() = default;

Mutator::Mutator(Heap &H, CollectorState &S, MutatorRegistry &Registry)
    : H(H), State(S), Registry(Registry) {
  Registry.add(*this);
}

Mutator::~Mutator() {
  GENGC_ASSERT(Stack.empty(), "mutator exits with live local roots");
  // Return cached cells so the memory is not stranded.  The cells are Blue
  // and the transfer synchronizes through the central-list mutex.
  for (unsigned Class = 0; Class < NumSizeClasses; ++Class) {
    if (Cache[Class].Count != 0)
      H.pushFreeChain(Class, Cache[Class]);
    Cache[Class] = Heap::CellChain();
  }
  Registry.remove(*this);
}

//===----------------------------------------------------------------------===//
// Allocation.
//===----------------------------------------------------------------------===//

void Mutator::recordPause(uint64_t Nanos, bool StopTheWorld) {
  if (Obs)
    (StopTheWorld ? Obs->stwPauseHistogram() : Obs->stallHistogram())
        .record(Nanos);
  PauseCount.fetch_add(1, std::memory_order_relaxed);
  PauseTotalNanos.fetch_add(Nanos, std::memory_order_relaxed);
  uint64_t Max = PauseMaxNanos.load(std::memory_order_relaxed);
  while (Nanos > Max &&
         !PauseMaxNanos.compare_exchange_weak(Max, Nanos,
                                              std::memory_order_relaxed))
    ;
  if (!StopTheWorld)
    return;
  StwPauseCount.fetch_add(1, std::memory_order_relaxed);
  Max = StwPauseMaxNanos.load(std::memory_order_relaxed);
  while (Nanos > Max &&
         !StwPauseMaxNanos.compare_exchange_weak(Max, Nanos,
                                                 std::memory_order_relaxed))
    ;
}

void Mutator::maybeThrottleAllocation() {
  // Allocation stall: while a cycle is in progress and this mutator fleet
  // has already consumed its during-cycle budget, wait for the collector
  // (cooperating, so handshakes keep making progress).  Checked on the
  // cache-refill slow path only — every few hundred allocations.
  uint64_t Limit = State.ThrottleBytes.load(std::memory_order_relaxed);
  if (!State.isCollecting() || H.allocatedSinceGcBytes() < Limit)
    return;
  uint64_t AllocatedAtStall = H.allocatedSinceGcBytes();
  uint64_t Start = nowNanos();
  while (State.isCollecting() &&
         H.allocatedSinceGcBytes() >= Limit) {
    cooperate();
    std::this_thread::sleep_for(std::chrono::microseconds(20));
  }
  uint64_t Stalled = nowNanos() - Start;
  if (Ring)
    Ring->emit(ObsEventKind::AllocStall, Start, Stalled,
               uint64_t(StallCause::Throttle), AllocatedAtStall);
  recordPause(Stalled);
}

void Mutator::refillCache(unsigned ClassIdx) {
  maybeThrottleAllocation();
  for (unsigned Attempt = 0; Attempt < 1000; ++Attempt) {
    Heap::CellChain Chain = H.popFreeChain(ClassIdx);
    if (Chain.Count != 0) {
      Cache[ClassIdx] = Chain;
      return;
    }
    if (!Waiter)
      fatalError("heap exhausted and no memory waiter installed", __FILE__,
                 __LINE__);
    uint64_t Start = Ring ? nowNanos() : 0;
    Waiter->waitForMemory(*this);
    if (Ring)
      Ring->emit(ObsEventKind::AllocStall, Start, nowNanos() - Start,
                 uint64_t(StallCause::OutOfMemory));
  }
  fatalError("heap exhausted: collections reclaimed no memory", __FILE__,
             __LINE__);
}

ObjectRef Mutator::allocateLarge(uint32_t Bytes) {
  maybeThrottleAllocation();
  for (unsigned Attempt = 0; Attempt < 1000; ++Attempt) {
    ObjectRef Ref = H.allocateLarge(Bytes);
    if (Ref != NullRef)
      return Ref;
    if (!Waiter)
      fatalError("heap exhausted (large) and no memory waiter installed",
                 __FILE__, __LINE__);
    uint64_t Start = Ring ? nowNanos() : 0;
    Waiter->waitForMemory(*this);
    if (Ring)
      Ring->emit(ObsEventKind::AllocStall, Start, nowNanos() - Start,
                 uint64_t(StallCause::OutOfMemory));
  }
  fatalError("heap exhausted: no block run for a large object", __FILE__,
             __LINE__);
}

ObjectRef Mutator::allocate(uint32_t RefSlots, uint32_t DataBytes,
                            uint16_t Tag) {
  uint32_t Bytes = objectBytesFor(RefSlots, DataBytes);
  unsigned ClassIdx = sizeClassFor(Bytes);

  ObjectRef Ref;
  if (ClassIdx == NumSizeClasses) {
    Ref = allocateLarge(Bytes);
  } else {
    Heap::CellChain &Chain = Cache[ClassIdx];
    if (Chain.Head == NullRef)
      refillCache(ClassIdx);
    Ref = Cache[ClassIdx].Head;
    Cache[ClassIdx].Head = H.chainNext(Ref);
    --Cache[ClassIdx].Count;
  }

  initObject(H, Ref, RefSlots, Tag, Bytes);
  if (State.Barrier.load(std::memory_order_relaxed) == BarrierKind::Aging)
    H.ages().setAge(Ref, 1); // Section 8.5.2: allocated with age 1.

  // Publishing store: the object becomes visible to sweep and trace with
  // the current allocation color (the "create" routine of Figure 1; the
  // color toggle removed all dependence on the sweep pointer's position).
  H.storeColor(Ref, State.allocationColor(), std::memory_order_release);

  AllocObjects.fetch_add(1, std::memory_order_relaxed);
  AllocBytes.fetch_add(Bytes, std::memory_order_relaxed);
  return Ref;
}

//===----------------------------------------------------------------------===//
// Handshake cooperation.
//===----------------------------------------------------------------------===//

void Mutator::markOwnRoots() {
  // Responding to the third handshake: shade every local root (Figure 1's
  // Cooperate).  The barrier-kind dispatch mirrors writeRef.
  bool Simple =
      State.Barrier.load(std::memory_order_relaxed) == BarrierKind::Simple;
  for (ObjectRef Root : Stack) {
    if (Simple)
      markGraySimple(H, State, StatusM.load(std::memory_order_relaxed), Root,
                     Grays);
    else
      markGrayClearOnly(H, State, Root, Grays);
  }
}

void Mutator::markOwnRootsForStw() {
  // Stop-the-world shading must also cover allocation-colored roots: an
  // object allocated after the toggle but before this thread stopped may be
  // the only path to clear-colored children (no trace has run yet).
  for (ObjectRef Root : Stack)
    markGrayForStw(H, State, Root, Grays);
}

void Mutator::cooperateLocked(bool Helped) {
  HandshakeStatus SC = State.StatusC.load(std::memory_order_acquire);
  HandshakeStatus SM = StatusM.load(std::memory_order_relaxed);
  if (SM == SC)
    return;
  if (SM == HandshakeStatus::Sync2)
    markOwnRoots();
  StatusM.store(SC, std::memory_order_release);
  if (Obs) {
    // Handshake response latency: from the collector's post (whose
    // timestamp store precedes the status store we just observed) to this
    // response.  Always-on histogram sample; span event with tracing.
    uint64_t Post = State.StatusPostNanos.load(std::memory_order_relaxed);
    uint64_t Now = nowNanos();
    uint64_t Latency = Now > Post ? Now - Post : 0;
    Obs->handshakeHistogram().record(Latency);
    if (Ring)
      Ring->emit(ObsEventKind::HandshakeAck, Post, Latency, uint64_t(SC),
                 Helped ? 1 : 0);
  }
}

void Mutator::cooperate() {
  if (State.StopWorld.load(std::memory_order_acquire))
    parkForStopTheWorld();
  if (StatusM.load(std::memory_order_relaxed) ==
      State.StatusC.load(std::memory_order_acquire))
    return;
  std::scoped_lock Locked(CoopMutex);
  cooperateLocked();
}

void Mutator::parkForStopTheWorld() {
  // Shade our roots, then publish the stop epoch we shaded for: the
  // collector counts this thread stopped only once it sees the current
  // epoch here.  The shade is redone per epoch because a new pause can
  // begin (with freshly toggled colors) while this thread is still asleep
  // from the previous one — a stale shading must never be trusted.
  State.ParkedMutators.fetch_add(1, std::memory_order_acq_rel);
  uint64_t Start = nowNanos();
  uint64_t ShadedFor = 0;
  while (State.StopWorld.load(std::memory_order_acquire)) {
    uint64_t Epoch = State.StopEpoch.load(std::memory_order_acquire);
    if (Epoch != ShadedFor) {
      {
        std::scoped_lock Locked(CoopMutex);
        markOwnRootsForStw();
      }
      ShadedFor = Epoch;
      StwParkedEpoch.store(Epoch, std::memory_order_release);
    }
    std::this_thread::sleep_for(std::chrono::microseconds(10));
  }
  StwParkedEpoch.store(0, std::memory_order_release);
  recordPause(nowNanos() - Start, /*StopTheWorld=*/true);
  State.ParkedMutators.fetch_sub(1, std::memory_order_acq_rel);
}

bool Mutator::markRootsIfBlockedForStw() {
  std::scoped_lock Locked(CoopMutex);
  if (!Blocked)
    return false;
  markOwnRootsForStw();
  return true;
}

void Mutator::enterBlocked() {
  std::scoped_lock Locked(CoopMutex);
  cooperateLocked();
  Blocked = true;
}

void Mutator::exitBlocked() {
  {
    std::scoped_lock Locked(CoopMutex);
    Blocked = false;
    cooperateLocked();
  }
  // A stop-the-world pause may be in progress: this thread must not
  // resume mutating until it ends (its roots were already shaded by the
  // collector while it was blocked).
  if (State.StopWorld.load(std::memory_order_acquire))
    parkForStopTheWorld();
}

void Mutator::helpIfBlocked() {
  std::scoped_lock Locked(CoopMutex);
  if (Blocked)
    cooperateLocked(/*Helped=*/true);
}

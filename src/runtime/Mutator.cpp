//===- runtime/Mutator.cpp - Program threads -------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "runtime/Mutator.h"

#include <algorithm>
#include <thread>

#include "runtime/MutatorRegistry.h"
#include "support/Backoff.h"
#include "support/FaultInjector.h"
#include "support/Timer.h"

using namespace gengc;

MemoryWaiter::~MemoryWaiter() = default;

Mutator::Mutator(Heap &H, CollectorState &S, MutatorRegistry &Registry)
    : H(H), State(S), Registry(Registry) {
  Registry.add(*this); // assigns Id under the registry lock
  HomeShard = H.homeShardFor(Id);
  for (unsigned Class = 0; Class < NumSizeClasses; ++Class)
    Batch[Class] = 1;
}

Mutator::~Mutator() {
  GENGC_ASSERT(Stack.empty(), "mutator exits with live local roots");
  // Return cached and spare cells so the memory is not stranded.  The cells
  // are Blue and the transfer synchronizes through the shard mutex.
  for (unsigned Class = 0; Class < NumSizeClasses; ++Class) {
    if (Cache[Class].Count != 0)
      H.pushFreeChain(Class, Cache[Class], HomeShard);
    Cache[Class] = Heap::CellChain();
    while (SpareCount[Class] != 0)
      H.pushFreeChain(Class, Spares[Class][--SpareCount[Class]], HomeShard);
  }
  Registry.remove(*this);
}

//===----------------------------------------------------------------------===//
// Allocation.
//===----------------------------------------------------------------------===//

void Mutator::recordPause(uint64_t Nanos, bool StopTheWorld) {
  if (Obs)
    (StopTheWorld ? Obs->stwPauseHistogram() : Obs->stallHistogram())
        .record(Nanos);
  PauseCount.fetch_add(1, std::memory_order_relaxed);
  PauseTotalNanos.fetch_add(Nanos, std::memory_order_relaxed);
  uint64_t Max = PauseMaxNanos.load(std::memory_order_relaxed);
  while (Nanos > Max &&
         !PauseMaxNanos.compare_exchange_weak(Max, Nanos,
                                              std::memory_order_relaxed))
    ;
  if (!StopTheWorld)
    return;
  StwPauseCount.fetch_add(1, std::memory_order_relaxed);
  Max = StwPauseMaxNanos.load(std::memory_order_relaxed);
  while (Nanos > Max &&
         !StwPauseMaxNanos.compare_exchange_weak(Max, Nanos,
                                                 std::memory_order_relaxed))
    ;
}

void Mutator::maybeThrottleAllocation() {
  // Allocation stall: while a cycle is in progress and this mutator fleet
  // has already consumed its during-cycle budget, wait for the collector
  // (cooperating, so handshakes keep making progress).  Checked on the
  // cache-refill slow path only — every few hundred allocations.
  uint64_t Limit = State.ThrottleBytes.load(std::memory_order_relaxed);
  if (!State.isCollecting() || H.allocatedSinceGcBytes() < Limit)
    return;
  uint64_t AllocatedAtStall = H.allocatedSinceGcBytes();
  uint64_t Start = nowNanos();
  // Capped exponential backoff: short sleeps while the stall is young (the
  // collector usually finishes within tens of microseconds of the budget
  // clearing), longer ones once it clearly is not, so a fleet of throttled
  // mutators does not spin the scheduler.  Cooperate before every sleep or
  // the cycle we are waiting out could not finish its handshakes.
  Backoff Back(/*InitialNanos=*/5 * 1000, /*CapNanos=*/200 * 1000);
  while (State.isCollecting() &&
         H.allocatedSinceGcBytes() >= Limit) {
    cooperate();
    Back.pause();
  }
  uint64_t Stalled = nowNanos() - Start;
  if (Ring)
    Ring->emit(ObsEventKind::AllocStall, Start, Stalled,
               uint64_t(StallCause::Throttle), AllocatedAtStall);
  recordPause(Stalled);
}

void Mutator::flushLocalCaches(unsigned ExceptClass) {
  // Emergency rung: memory parked in this thread's caches is invisible to
  // every other allocator (and to ourselves for other size classes).
  // Returning it — active chains and batched spares alike — to our home
  // shard costs one mutex round per non-empty chain and can be the
  // difference between recovery and abort when the heap is fragmented
  // across caches.  A starved thread finds it there: every refill probes
  // all shards (and the free-block stack) before reporting exhaustion.
  for (unsigned Class = 0; Class < NumSizeClasses; ++Class) {
    if (Class != ExceptClass && Cache[Class].Count != 0) {
      H.pushFreeChain(Class, Cache[Class], HomeShard);
      Cache[Class] = Heap::CellChain();
    }
    while (SpareCount[Class] != 0)
      H.pushFreeChain(Class, Spares[Class][--SpareCount[Class]], HomeShard);
  }
}

template <typename TryFn>
bool Mutator::runOomLadder(bool MayBlock, bool Large, uint64_t RequestBytes,
                           unsigned ExceptClass, TryFn TryOnce,
                           const char *NoWaiterMsg, const char *ExhaustedMsg) {
  static const OomConfig DefaultOom;
  const OomConfig &Cfg = Oom ? *Oom : DefaultOom;
  unsigned TotalAttempts = 0;
  for (;;) {
    // Short pause between futile rounds: waitForMemory already blocks for
    // a full collection, but when collections reclaim nothing the rounds
    // degenerate into a tight retry loop racing other starved threads.
    Backoff Back(/*InitialNanos=*/10 * 1000, /*CapNanos=*/1000 * 1000);
    for (unsigned Attempt = 0; Attempt < Cfg.RetryAttempts; ++Attempt) {
      if (TryOnce())
        return true;
      if (!MayBlock)
        return false;
      if (!Waiter)
        fatalError(NoWaiterMsg, __FILE__, __LINE__);
      OomEscalationStep Step = OomEscalationStep::Wait;
      if (Attempt == Cfg.EmergencyAfter) {
        flushLocalCaches(ExceptClass);
        Step = OomEscalationStep::Emergency;
      }
      if (Ring)
        Ring->instant(ObsEventKind::OomEscalation, nowNanos(),
                      uint64_t(Step), TotalAttempts);
      uint64_t Start = Ring ? nowNanos() : 0;
      Waiter->waitForMemory(*this);
      if (Ring)
        Ring->emit(ObsEventKind::AllocStall, Start, nowNanos() - Start,
                   uint64_t(StallCause::OutOfMemory));
      ++TotalAttempts;
      if (Attempt > 0)
        Back.pause();
    }
    if (!Cfg.Handler)
      fatalError(ExhaustedMsg, __FILE__, __LINE__);
    if (Ring)
      Ring->instant(ObsEventKind::OomEscalation, nowNanos(),
                    uint64_t(OomEscalationStep::Handler), TotalAttempts);
    OomInfo Info;
    Info.RequestBytes = RequestBytes;
    Info.Attempts = TotalAttempts;
    Info.LargeObject = Large;
    if (Cfg.Handler(*this, Info) == OomAction::Retry)
      continue;
    if (Ring)
      Ring->instant(ObsEventKind::OomEscalation, nowNanos(),
                    uint64_t(OomEscalationStep::GaveUp), TotalAttempts);
    return false;
  }
}

bool Mutator::refillCache(unsigned ClassIdx, bool MayBlock) {
  // A spare chain from an earlier batched refill: install it without
  // touching any shared state.
  if (SpareCount[ClassIdx] != 0) {
    Cache[ClassIdx] = Spares[ClassIdx][--SpareCount[ClassIdx]];
    return true;
  }
  if (MayBlock)
    maybeThrottleAllocation();

  // Adapt the batch before the fetch.  The gap (allocations since the last
  // central fetch of this class) is compared against the cells that fetch
  // supplied: a gap within 2x means this class burns through its batch
  // almost back-to-back — double it; a gap beyond 8x means the batch
  // outlives the demand — halve it, so idle classes do not hoard chains.
  uint64_t Allocs = AllocObjects.load(std::memory_order_relaxed);
  uint64_t Gap = Allocs - LastRefillAllocs[ClassIdx];
  unsigned Max = std::min<unsigned>(std::max(H.config().RefillBatchMax, 1u),
                                    MaxRefillBatch);
  unsigned B = Batch[ClassIdx];
  uint64_t LastCells = LastRefillCells[ClassIdx];
  if (LastCells != 0) {
    if (Gap <= 2 * LastCells)
      B *= 2;
    else if (Gap >= 8 * LastCells)
      B /= 2;
  }
  B = std::min(std::max(B, 1u), Max);
  Batch[ClassIdx] = uint8_t(B);
  LastRefillAllocs[ClassIdx] = Allocs;

  return runOomLadder(
      MayBlock, /*Large=*/false, sizeClassBytes(ClassIdx), ClassIdx,
      [this, ClassIdx, B] {
        if (FaultInjector::fire(FaultSite::AllocFail))
          return false;
        Heap::CellChain Chains[MaxRefillBatch];
        Heap::RefillStats Stats;
        unsigned Got = H.popFreeChains(ClassIdx, HomeShard, B, Chains, &Stats);
        if (Got == 0)
          return false;
        Cache[ClassIdx] = Chains[0];
        uint32_t Cells = Chains[0].Count;
        for (unsigned I = 1; I < Got; ++I) {
          Spares[ClassIdx][SpareCount[ClassIdx]++] = Chains[I];
          Cells += Chains[I].Count;
        }
        LastRefillCells[ClassIdx] = Cells;
        if (Ring) {
          if (Stats.StolenFrom >= 0 || Stats.Carved)
            Ring->instant(ObsEventKind::RefillSteal, nowNanos(),
                          Stats.StolenFrom >= 0 ? uint64_t(Stats.StolenFrom)
                                                : HomeShard,
                          Stats.ShardsProbed);
          if (Stats.Contended)
            Ring->instant(ObsEventKind::ShardContention, nowNanos(), ClassIdx,
                          HomeShard);
          if (Stats.LazySwept != 0)
            Ring->instant(ObsEventKind::LazySweepClaim, nowNanos(), ClassIdx,
                          Stats.LazySwept);
        }
        return true;
      },
      "heap exhausted and no memory waiter installed",
      "heap exhausted: collections reclaimed no memory");
}

ObjectRef Mutator::allocateLarge(uint32_t Bytes, bool MayBlock) {
  if (MayBlock)
    maybeThrottleAllocation();
  ObjectRef Ref = NullRef;
  runOomLadder(
      MayBlock, /*Large=*/true, Bytes, /*ExceptClass=*/NumSizeClasses,
      [this, Bytes, &Ref] {
        if (FaultInjector::fire(FaultSite::AllocFail))
          return false;
        Ref = H.allocateLarge(Bytes);
        return Ref != NullRef;
      },
      "heap exhausted (large) and no memory waiter installed",
      "heap exhausted: no block run for a large object");
  return Ref;
}

ObjectRef Mutator::allocate(uint32_t RefSlots, uint32_t DataBytes,
                            uint16_t Tag) {
  return allocateImpl(RefSlots, DataBytes, Tag, /*MayBlock=*/true);
}

ObjectRef Mutator::tryAllocate(uint32_t RefSlots, uint32_t DataBytes,
                               uint16_t Tag) {
  return allocateImpl(RefSlots, DataBytes, Tag, /*MayBlock=*/false);
}

ObjectRef Mutator::allocateImpl(uint32_t RefSlots, uint32_t DataBytes,
                                uint16_t Tag, bool MayBlock) {
  uint32_t Bytes = objectBytesFor(RefSlots, DataBytes);
  unsigned ClassIdx = sizeClassFor(Bytes);

  ObjectRef Ref;
  if (ClassIdx == NumSizeClasses) {
    Ref = allocateLarge(Bytes, MayBlock);
    if (Ref == NullRef)
      return NullRef;
  } else {
    Heap::CellChain &Chain = Cache[ClassIdx];
    if (Chain.Head == NullRef && !refillCache(ClassIdx, MayBlock))
      return NullRef;
    Ref = Cache[ClassIdx].Head;
    Cache[ClassIdx].Head = H.chainNext(Ref);
    --Cache[ClassIdx].Count;
  }

  initObject(H, Ref, RefSlots, Tag, Bytes);
  if (State.Barrier.load(std::memory_order_relaxed) == BarrierKind::Aging)
    H.ages().setAge(Ref, 1); // Section 8.5.2: allocated with age 1.

  // Publishing store: the object becomes visible to sweep and trace with
  // the current allocation color (the "create" routine of Figure 1; the
  // color toggle removed all dependence on the sweep pointer's position).
  H.storeColor(Ref, State.allocationColor(), std::memory_order_release);

  AllocObjects.fetch_add(1, std::memory_order_relaxed);
  AllocBytes.fetch_add(Bytes, std::memory_order_relaxed);
  return Ref;
}

//===----------------------------------------------------------------------===//
// Handshake cooperation.
//===----------------------------------------------------------------------===//

void Mutator::markOwnRoots() {
  // Responding to the third handshake: shade every local root (Figure 1's
  // Cooperate).  The barrier-kind dispatch mirrors writeRef.
  bool Simple =
      State.Barrier.load(std::memory_order_relaxed) == BarrierKind::Simple;
  for (ObjectRef Root : Stack) {
    if (Simple)
      markGraySimple(H, State, StatusM.load(std::memory_order_relaxed), Root,
                     Grays);
    else
      markGrayClearOnly(H, State, Root, Grays);
  }
}

void Mutator::markOwnRootsForStw() {
  // Stop-the-world shading must also cover allocation-colored roots: an
  // object allocated after the toggle but before this thread stopped may be
  // the only path to clear-colored children (no trace has run yet).
  for (ObjectRef Root : Stack)
    markGrayForStw(H, State, Root, Grays);
}

void Mutator::cooperateLocked(bool Helped) {
  HandshakeStatus SC = State.StatusC.load(std::memory_order_acquire);
  HandshakeStatus SM = StatusM.load(std::memory_order_relaxed);
  if (SM == SC)
    return;
  if (SM == HandshakeStatus::Sync2)
    markOwnRoots();
  StatusM.store(SC, std::memory_order_release);
  LastResponseNanos.store(nowNanos(), std::memory_order_relaxed);
  if (Obs) {
    // Handshake response latency: from the collector's post (whose
    // timestamp store precedes the status store we just observed) to this
    // response.  Always-on histogram sample; span event with tracing.
    uint64_t Post = State.StatusPostNanos.load(std::memory_order_relaxed);
    uint64_t Now = nowNanos();
    uint64_t Latency = Now > Post ? Now - Post : 0;
    Obs->handshakeHistogram().record(Latency);
    if (Ring)
      Ring->emit(ObsEventKind::HandshakeAck, Post, Latency, uint64_t(SC),
                 Helped ? 1 : 0);
  }
}

void Mutator::cooperate() {
  if (State.StopWorld.load(std::memory_order_acquire))
    parkForStopTheWorld();
  if (StatusM.load(std::memory_order_relaxed) ==
      State.StatusC.load(std::memory_order_acquire))
    return;
  // Fault site: swallow the response entirely — the thread keeps mutating
  // but the handshake never completes on its own, which is the scenario
  // WatchdogPolicy::Escalate exists for.  Placed after the StopWorld check
  // so a "stalled" thread still parks for the degraded STW fallback
  // (recovery is then observable: the fallback needs no forcing).
  if (FaultInjector::fire(FaultSite::ThreadStall))
    return;
  // Fault site: delay the response while a handshake is actually pending —
  // the unresponsive-mutator scenario the watchdog exists to diagnose.
  FaultInjector::fire(FaultSite::HandshakeDelay);
  std::scoped_lock Locked(CoopMutex);
  cooperateLocked();
}

void Mutator::forceAdopt() {
  // No cooperateLocked: the Sync2 root shade a real response would perform
  // is exactly what cannot be trusted from a wedged thread, and the caller
  // is about to abort the cycle anyway — adopt the status bare so the
  // protocol's bookkeeping (countLaggingAndHelp) terminates.
  std::scoped_lock Locked(CoopMutex);
  StatusM.store(State.StatusC.load(std::memory_order_acquire),
                std::memory_order_release);
}

void Mutator::forceShadeForStw() {
  std::scoped_lock Locked(CoopMutex);
  markOwnRootsForStw();
}

void Mutator::parkForStopTheWorld() {
  // Shade our roots, then publish the stop epoch we shaded for: the
  // collector counts this thread stopped only once it sees the current
  // epoch here.  The shade is redone per epoch because a new pause can
  // begin (with freshly toggled colors) while this thread is still asleep
  // from the previous one — a stale shading must never be trusted.
  State.ParkedMutators.fetch_add(1, std::memory_order_acq_rel);
  uint64_t Start = nowNanos();
  uint64_t ShadedFor = 0;
  Backoff Back(/*InitialNanos=*/5 * 1000, /*CapNanos=*/100 * 1000);
  while (State.StopWorld.load(std::memory_order_acquire)) {
    uint64_t Epoch = State.StopEpoch.load(std::memory_order_acquire);
    if (Epoch != ShadedFor) {
      {
        std::scoped_lock Locked(CoopMutex);
        markOwnRootsForStw();
      }
      ShadedFor = Epoch;
      StwParkedEpoch.store(Epoch, std::memory_order_release);
      // A new epoch means a new pause just began: resume short sleeps so
      // the resume latency of this pause is not inflated by the backoff
      // state of the previous one.
      Back.reset();
    }
    Back.pause();
  }
  StwParkedEpoch.store(0, std::memory_order_release);
  recordPause(nowNanos() - Start, /*StopTheWorld=*/true);
  State.ParkedMutators.fetch_sub(1, std::memory_order_acq_rel);
}

bool Mutator::markRootsIfBlockedForStw() {
  std::scoped_lock Locked(CoopMutex);
  if (!Blocked.load(std::memory_order_relaxed))
    return false;
  markOwnRootsForStw();
  return true;
}

void Mutator::enterBlocked() {
  std::scoped_lock Locked(CoopMutex);
  cooperateLocked();
  Blocked.store(true, std::memory_order_relaxed);
  LastResponseNanos.store(nowNanos(), std::memory_order_relaxed);
}

void Mutator::exitBlocked() {
  {
    std::scoped_lock Locked(CoopMutex);
    Blocked.store(false, std::memory_order_relaxed);
    cooperateLocked();
    LastResponseNanos.store(nowNanos(), std::memory_order_relaxed);
  }
  // A stop-the-world pause may be in progress: this thread must not
  // resume mutating until it ends (its roots were already shaded by the
  // collector while it was blocked).
  if (State.StopWorld.load(std::memory_order_acquire))
    parkForStopTheWorld();
}

void Mutator::helpIfBlocked() {
  std::scoped_lock Locked(CoopMutex);
  if (Blocked.load(std::memory_order_relaxed))
    cooperateLocked(/*Helped=*/true);
}

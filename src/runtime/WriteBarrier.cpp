//===- runtime/WriteBarrier.cpp - MarkGray and update barriers ------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "runtime/WriteBarrier.h"

#include "runtime/Mutator.h"

using namespace gengc;

/// Records a successful clear->gray shade in \p Counters.
static void noteGrayFromClear(Heap &H, ObjectRef X, GrayCounters &Counters) {
  Counters.FromClear.fetch_add(1, std::memory_order_relaxed);
  Counters.FromClearBytes.fetch_add(H.storageBytesOf(X),
                                    std::memory_order_relaxed);
}

/// Shades \p X gray if its color is \p From and enqueues it for the tracer.
/// The CAS-and-push pair runs inside the in-flight window the tracer's
/// termination protocol waits on, so the enqueue cannot be missed.  The
/// cheap pre-check keeps the shared counter off the barrier's common path:
/// colors never *become* the clear color mid-cycle, so a non-matching load
/// is conclusive.
bool gengc::shadeGray(Heap &H, CollectorState &S, ObjectRef X, Color From) {
  if (H.loadColor(X, std::memory_order_acquire) != From ||
      From == Color::Gray)
    return false;
  S.InFlightShades.fetch_add(1, std::memory_order_acq_rel);
  bool Won = tryMarkGray(H, X, From);
  if (Won)
    S.Grays.push(X);
  S.InFlightShades.fetch_sub(1, std::memory_order_acq_rel);
  return Won;
}

void gengc::markGraySimple(Heap &H, CollectorState &S,
                           HandshakeStatus StatusM, ObjectRef X,
                           GrayCounters &Counters) {
  if (X == NullRef)
    return;
  if (shadeGray(H, S, X, S.clearColor())) {
    noteGrayFromClear(H, X, Counters);
    return;
  }
  // The Section 7.1 exception: between the first and third handshakes,
  // allocation-colored (yellow) objects are shaded too, closing the window
  // between the card-table scan and the color toggle.
  if (StatusM != HandshakeStatus::Async)
    shadeGray(H, S, X, S.allocationColor());
}

void gengc::markGrayClearOnly(Heap &H, CollectorState &S, ObjectRef X,
                              GrayCounters &Counters) {
  if (X == NullRef)
    return;
  if (shadeGray(H, S, X, S.clearColor()))
    noteGrayFromClear(H, X, Counters);
}

void gengc::markGrayForStw(Heap &H, CollectorState &S, ObjectRef X,
                           GrayCounters &Counters) {
  if (X == NullRef)
    return;
  if (shadeGray(H, S, X, S.clearColor())) {
    noteGrayFromClear(H, X, Counters);
    return;
  }
  // An object allocated between the color toggle and this thread's park
  // carries the allocation color but has NOT been traced (the trace starts
  // only after the world stops): shade it so its old children are found.
  shadeGray(H, S, X, S.allocationColor());
}

/// Records the inter-generational-pointer candidate created by a store
/// into \p X: a dirty card over the slot (the paper's choice) or a
/// remembered-set entry for X (the Section 3.1 alternative).  Card marking
/// is two plain byte stores — the card byte and its summary-chunk byte
/// (CardTable::markCard) — still free of read-modify-write, preserving the
/// fine-grained-atomicity property the paper demands of the barrier.  The
/// remembered-set flag exchange makes each object enter the set once per
/// cycle; the paper notes this dedup needs a header bit their JVM lacked —
/// our side table provides it, at the cost the paper predicted: a
/// read-modify-write on every recording store instead of plain byte stores.
static void recordInterGen(Heap &H, CollectorState &S, ObjectRef X,
                           uint64_t SlotOffset) {
  if (!S.UseRememberedSets.load(std::memory_order_relaxed)) {
    H.cards().markCard(SlotOffset);
    return;
  }
  if (H.rememberedFlags().entryFor(X).exchange(
          1, std::memory_order_acq_rel) == 0)
    S.Remembered.push(X);
}

//===----------------------------------------------------------------------===//
// The Update routine (Figures 1 and 4), implemented as Mutator::writeRef so
// it can read the mutator's own status and feed its counters.
//===----------------------------------------------------------------------===//

void Mutator::writeRef(ObjectRef X, uint32_t SlotIdx, ObjectRef Y) {
  GENGC_ASSERT(X != NullRef, "update through a null reference");
  GENGC_ASSERT(SlotIdx < objectRefSlots(H, X), "ref slot out of range");
  HandshakeStatus SM = StatusM.load(std::memory_order_relaxed);
  uint64_t SlotOffset = refSlotOffset(X, SlotIdx);

  switch (State.Barrier.load(std::memory_order_relaxed)) {
  case BarrierKind::Simple:
    // Figure 1.  Card marking happens only during async (Section 7.1);
    // during sync1/sync2 the yellow-shading exception substitutes for it.
    if (SM != HandshakeStatus::Async) {
      markGraySimple(H, State, SM, loadRefSlot(H, X, SlotIdx), Grays);
      markGraySimple(H, State, SM, Y, Grays);
    } else if (State.isTracing()) {
      markGraySimple(H, State, SM, loadRefSlot(H, X, SlotIdx), Grays);
      recordInterGen(H, State, X, SlotOffset);
    } else {
      recordInterGen(H, State, X, SlotOffset);
    }
    H.wordAt(SlotOffset).store(Y, std::memory_order_release);
    return;

  case BarrierKind::Aging:
    // Figure 4.  The card (and its summary byte) is marked in *every*
    // state, and strictly after the pointer store: this is the mutator's
    // half of the Section 7.2 two-step/three-step race resolution, run at
    // both levels of the card table.
    if (SM != HandshakeStatus::Async) {
      markGrayClearOnly(H, State, loadRefSlot(H, X, SlotIdx), Grays);
      markGrayClearOnly(H, State, Y, Grays);
    } else if (State.isTracing()) {
      markGrayClearOnly(H, State, loadRefSlot(H, X, SlotIdx), Grays);
    }
    H.wordAt(SlotOffset).store(Y, std::memory_order_release);
    H.cards().markCard(SlotOffset);
    return;

  case BarrierKind::NonGenerational:
    // Original DLG barrier: shade, no cards.
    if (SM != HandshakeStatus::Async) {
      markGrayClearOnly(H, State, loadRefSlot(H, X, SlotIdx), Grays);
      markGrayClearOnly(H, State, Y, Grays);
    } else if (State.isTracing()) {
      markGrayClearOnly(H, State, loadRefSlot(H, X, SlotIdx), Grays);
    }
    H.wordAt(SlotOffset).store(Y, std::memory_order_release);
    return;
  }
  GENGC_UNREACHABLE("unknown barrier kind");
}

//===- runtime/WriteBarrier.h - MarkGray and update barriers ----*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The graying primitives shared by mutators and the collector.
///
/// The paper's MarkGray comes in two variants:
///  - Figure 1 (simple promotion): shade an object whose color is the clear
///    color; during sync1/sync2 *also* shade allocation-colored (yellow)
///    objects — the exception of Section 7.1 that protects objects created
///    during the toggle window.
///  - Figure 4 (aging, also plain DLG): shade clear-colored objects only.
///
/// All color transitions go through a compare-and-swap on the color byte,
/// so the clear->gray (mutator) and clear->blue (sweep) races of Section
/// 7.1 have exactly one winner.  The paper's JVM avoided CAS by a memory-
/// ordering argument specific to its hardware; CAS is the portable, UB-free
/// C++ rendering of the same exactly-once guarantee.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_RUNTIME_WRITEBARRIER_H
#define GENGC_RUNTIME_WRITEBARRIER_H

#include <atomic>

#include "heap/Heap.h"
#include "runtime/CollectorState.h"

namespace gengc {

/// Counters fed by graying: how many objects (and bytes) were shaded from
/// the clear color.  The collector sums these across mutators to compute
/// the young-survivor counts of Figure 12.
struct GrayCounters {
  std::atomic<uint64_t> FromClear{0};
  std::atomic<uint64_t> FromClearBytes{0};

  void reset() {
    FromClear.store(0, std::memory_order_relaxed);
    FromClearBytes.store(0, std::memory_order_relaxed);
  }
};

/// Attempts the color transition \p From -> gray on \p X.
/// \returns true if this caller performed the transition.
inline bool tryMarkGray(Heap &H, ObjectRef X, Color From) {
  if (From == Color::Gray)
    return false;
  Color Current = H.loadColor(X);
  while (Current == From)
    if (H.casColor(X, Current, Color::Gray))
      return true;
  return false;
}

/// Shades \p X gray if its color is \p From and enqueues it on the shared
/// gray buffer inside the in-flight window (see CollectorState).
/// \returns true if this caller performed the transition.
bool shadeGray(Heap &H, CollectorState &S, ObjectRef X, Color From);

/// Figure 1 MarkGray.  \p StatusM is the calling mutator's own handshake
/// status (its perception, not the collector's).  Winners of the gray CAS
/// enqueue the object on the shared gray buffer for the tracer.
void markGraySimple(Heap &H, CollectorState &S, HandshakeStatus StatusM,
                    ObjectRef X, GrayCounters &Counters);

/// Figure 4 MarkGray; also the DLG baseline's shade routine and the one the
/// collector uses for roots and card scanning.
void markGrayClearOnly(Heap &H, CollectorState &S, ObjectRef X,
                       GrayCounters &Counters);

/// Root shade for a stop-the-world park: shades clear-colored AND
/// allocation-colored roots.  Before the world has stopped, "allocation
/// color" does not mean "already traced" — a brand-new object can hold the
/// only path to old clear-colored children, so it must be traced too.
void markGrayForStw(Heap &H, CollectorState &S, ObjectRef X,
                    GrayCounters &Counters);

} // namespace gengc

#endif // GENGC_RUNTIME_WRITEBARRIER_H

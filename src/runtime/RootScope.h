//===- runtime/RootScope.h - Scoped local roots -----------------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAII management of a mutator's shadow stack.  A RootScope remembers the
/// stack depth at construction and pops everything pushed through (or
/// below) it on destruction, so early returns and exceptions cannot leak
/// roots — the raw pushRoot/popRoots pair on Mutator remains available as
/// an escape hatch for code with non-scoped root lifetimes.
///
/// \code
///   gengc::RootScope Scope(*M);
///   gengc::ObjectRef List = Scope.add(M->allocate(2, 0));
///   buildList(*M, List);              // may push more roots, may throw
/// \endcode                            // all of them popped here
///
/// Scopes nest like the call stack they shadow: an inner scope must be
/// destroyed before an outer one (guaranteed when they are locals).
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_RUNTIME_ROOTSCOPE_H
#define GENGC_RUNTIME_ROOTSCOPE_H

#include "runtime/Mutator.h"

namespace gengc {

/// Pops every root pushed while this scope is alive.
class RootScope {
public:
  explicit RootScope(Mutator &M) : M(M), Base(M.numRoots()) {}

  ~RootScope() {
    GENGC_ASSERT(M.numRoots() >= Base,
                 "roots below this scope were popped while it was alive");
    M.popRoots(M.numRoots() - Base);
  }

  RootScope(const RootScope &) = delete;
  RootScope &operator=(const RootScope &) = delete;

  /// Pushes \p Ref as a local root for the lifetime of this scope and
  /// returns it, so allocations can be rooted inline:
  /// `ObjectRef N = Scope.add(M->allocate(...))`.
  ObjectRef add(ObjectRef Ref) {
    M.pushRoot(Ref);
    return Ref;
  }

  /// Pushes \p Ref and returns a handle that stays valid as the scope
  /// grows (an index into the shadow stack, not a pointer).
  size_t addSlot(ObjectRef Ref) { return M.pushRoot(Ref); }

  /// Re-points the root at \p Slot (an index returned by addSlot, or any
  /// slot at or above this scope's base).
  void set(size_t Slot, ObjectRef Ref) {
    GENGC_ASSERT(Slot >= Base, "slot belongs to an enclosing scope");
    M.setRoot(Slot, Ref);
  }

  ObjectRef get(size_t Slot) const { return M.root(Slot); }

  /// Number of roots this scope currently holds.
  size_t size() const { return M.numRoots() - Base; }

  Mutator &mutator() { return M; }

private:
  Mutator &M;
  const size_t Base;
};

} // namespace gengc

#endif // GENGC_RUNTIME_ROOTSCOPE_H

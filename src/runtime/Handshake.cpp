//===- runtime/Handshake.cpp - The soft handshake protocol -----------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "runtime/Handshake.h"

#include <thread>

#include "runtime/Mutator.h"
#include "support/Assert.h"
#include "support/Timer.h"

using namespace gengc;

void HandshakeDriver::post(HandshakeStatus Status) {
  // The timestamp rides ahead of the status store (see StatusPostNanos);
  // mutators subtract it from their adoption time for the handshake-latency
  // histogram.
  uint64_t Now = nowNanos();
  State.StatusPostNanos.store(Now, std::memory_order_relaxed);
  State.StatusC.store(Status, std::memory_order_seq_cst);
  if (Obs)
    Obs->instant(ObsEventKind::HandshakeReq, Now, uint64_t(Status));
}

void HandshakeDriver::wait() {
  HandshakeStatus Status = State.StatusC.load(std::memory_order_relaxed);
  uint64_t Deadline = Watchdog ? Watchdog->DeadlineNanos : 0;
  uint64_t Begin = Deadline ? nowNanos() : 0;
  bool Fired = false;
  // Mutators respond at their own pace; poll, helping blocked threads.
  // The paper's collector behaves the same way ("the collector considers a
  // handshake complete after all mutators have responded").
  for (unsigned Spin = 0;; ++Spin) {
    if (Registry.countLaggingAndHelp(Status) == 0)
      return;
    if (Deadline && !Fired) {
      uint64_t Waited = nowNanos() - Begin;
      if (Waited >= Deadline) {
        // Fire at most once per wait: the report is the diagnosis, and a
        // wedged mutator would otherwise flood stderr at poll frequency.
        Fired = true;
        fireStall("handshake", Waited);
      }
    }
    if (Spin < 64)
      std::this_thread::yield();
    else
      std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

void HandshakeDriver::fireStall(const char *What, uint64_t WaitedNanos) {
  if (!Watchdog)
    return;
  StallReport Report;
  Report.What = What;
  Report.Posted = State.StatusC.load(std::memory_order_relaxed);
  Report.WaitedNanos = WaitedNanos;
  Report.NowNanos = nowNanos();
  // Snapshot every registered mutator.  forEach holds the registry lock;
  // diag() reads only atomics plus the CoopMutex-free racy Blocked flag, so
  // the callback stays short and never blocks on a wedged thread.
  Registry.forEach(
      [&Report](Mutator &M) { Report.Mutators.push_back(M.diag()); });

  State.WatchdogFires.fetch_add(1, std::memory_order_relaxed);
  if (Obs)
    Obs->instant(ObsEventKind::WatchdogFire, Report.NowNanos,
                 uint64_t(Report.Posted), WaitedNanos);

  switch (Watchdog->Policy) {
  case WatchdogPolicy::Log:
    dumpStallReport(Report);
    break;
  case WatchdogPolicy::Callback:
    if (Watchdog->OnStall)
      Watchdog->OnStall(Report);
    break;
  case WatchdogPolicy::Abort:
    dumpStallReport(Report);
    fatalError("watchdog deadline expired (policy abort)", __FILE__,
               __LINE__);
  }
}

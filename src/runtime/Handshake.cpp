//===- runtime/Handshake.cpp - The soft handshake protocol -----------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "runtime/Handshake.h"

#include <algorithm>
#include <thread>

#include "runtime/Mutator.h"
#include "support/Assert.h"
#include "support/Backoff.h"
#include "support/Timer.h"

using namespace gengc;

void HandshakeDriver::post(HandshakeStatus Status) {
  // The timestamp rides ahead of the status store (see StatusPostNanos);
  // mutators subtract it from their adoption time for the handshake-latency
  // histogram.
  uint64_t Now = nowNanos();
  State.StatusPostNanos.store(Now, std::memory_order_relaxed);
  State.StatusC.store(Status, std::memory_order_seq_cst);
  if (Obs)
    Obs->instant(ObsEventKind::HandshakeReq, Now, uint64_t(Status));
}

bool HandshakeDriver::wait() {
  HandshakeStatus Status = State.StatusC.load(std::memory_order_relaxed);
  uint64_t Deadline = Watchdog ? Watchdog->DeadlineNanos : 0;
  uint64_t Begin = Deadline ? nowNanos() : 0;
  uint64_t Fires = 0;
  // Re-fire schedule: first fire at the deadline, then gaps doubling up to
  // the cap — a wedged mutator produces a handful of escalating reports,
  // not one silent line followed by an unbounded hang, and never a flood
  // at poll frequency.
  uint64_t Cap = 0;
  if (Deadline) {
    Cap = Watchdog->RefireCapNanos ? Watchdog->RefireCapNanos : 8 * Deadline;
    if (Cap < Deadline)
      Cap = Deadline;
  }
  Backoff Refire(Deadline ? Deadline : 1, Cap ? Cap : 1);
  uint64_t NextFire = Deadline ? Refire.advance() : 0;
  // Mutators respond at their own pace; poll, helping blocked threads.
  // The paper's collector behaves the same way ("the collector considers a
  // handshake complete after all mutators have responded").
  for (unsigned Spin = 0;; ++Spin) {
    if (Registry.countLaggingAndHelp(Status) == 0)
      return true;
    if (Deadline) {
      uint64_t Waited = nowNanos() - Begin;
      if (Waited >= NextFire) {
        ++Fires;
        fireStall("handshake", Waited, Fires);
        if (Fires > 1 && Obs)
          Obs->instant(ObsEventKind::EscalationStep, nowNanos(),
                       uint64_t(EscalationAction::Refire), Fires);
        if (Watchdog->Policy == WatchdogPolicy::Escalate &&
            Fires >= std::max(1u, Watchdog->EscalateAfterFires)) {
          // End of the report-only rungs: complete the laggards' handshakes
          // on their behalf and hand the (now untrustworthy) cycle back to
          // the collector for abort.
          LastEscalation = Fires;
          forceCompleteLaggards(Status);
          return false;
        }
        NextFire = Waited + Refire.advance();
      }
    }
    if (Spin < 64)
      std::this_thread::yield();
    else
      std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

uint64_t HandshakeDriver::forceCompleteLaggards(HandshakeStatus Status) {
  uint64_t Forced = 0;
  Registry.forEach([&](Mutator &M) {
    if (M.status() != Status) {
      M.forceAdopt();
      ++Forced;
    }
  });
  if (Obs)
    Obs->instant(ObsEventKind::EscalationStep, nowNanos(),
                 uint64_t(EscalationAction::ForceAdopt), Forced);
  return Forced;
}

void HandshakeDriver::fireStall(const char *What, uint64_t WaitedNanos,
                                uint64_t Escalation) {
  if (!Watchdog)
    return;
  StallReport Report;
  Report.What = What;
  Report.Posted = State.StatusC.load(std::memory_order_relaxed);
  Report.PostedName = handshakeStatusName(Report.Posted);
  Report.WaitedNanos = WaitedNanos;
  Report.NowNanos = nowNanos();
  Report.Escalation = Escalation;
  // Snapshot every registered mutator.  forEach holds the registry lock;
  // diag() reads only atomics plus the CoopMutex-free racy Blocked flag, so
  // the callback stays short and never blocks on a wedged thread.
  Registry.forEach(
      [&Report](Mutator &M) { Report.Mutators.push_back(M.diag()); });
  for (MutatorDiag &D : Report.Mutators)
    D.SinceResponseNanos =
        D.LastResponseNanos == 0 || D.LastResponseNanos > Report.NowNanos
            ? UINT64_MAX
            : Report.NowNanos - D.LastResponseNanos;

  State.WatchdogFires.fetch_add(1, std::memory_order_relaxed);
  if (Obs)
    Obs->instant(ObsEventKind::WatchdogFire, Report.NowNanos,
                 uint64_t(Report.Posted), WaitedNanos);

  switch (Watchdog->Policy) {
  case WatchdogPolicy::Log:
    dumpStallReport(Report);
    break;
  case WatchdogPolicy::Callback:
    if (Watchdog->OnStall)
      Watchdog->OnStall(Report);
    break;
  case WatchdogPolicy::Escalate:
    // The ladder's report channel; the escalation decisions themselves
    // live in wait() and the collector.
    if (Watchdog->OnStall)
      Watchdog->OnStall(Report);
    else
      dumpStallReport(Report);
    break;
  case WatchdogPolicy::Abort:
    dumpStallReport(Report);
    fatalError("watchdog deadline expired (policy abort)", __FILE__,
               __LINE__);
  }
}

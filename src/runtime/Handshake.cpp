//===- runtime/Handshake.cpp - The soft handshake protocol -----------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "runtime/Handshake.h"

#include <thread>

#include "support/Timer.h"

using namespace gengc;

void HandshakeDriver::post(HandshakeStatus Status) {
  // The timestamp rides ahead of the status store (see StatusPostNanos);
  // mutators subtract it from their adoption time for the handshake-latency
  // histogram.
  uint64_t Now = nowNanos();
  State.StatusPostNanos.store(Now, std::memory_order_relaxed);
  State.StatusC.store(Status, std::memory_order_seq_cst);
  if (Obs)
    Obs->instant(ObsEventKind::HandshakeReq, Now, uint64_t(Status));
}

void HandshakeDriver::wait() {
  HandshakeStatus Status = State.StatusC.load(std::memory_order_relaxed);
  // Mutators respond at their own pace; poll, helping blocked threads.
  // The paper's collector behaves the same way ("the collector considers a
  // handshake complete after all mutators have responded").
  for (unsigned Spin = 0;; ++Spin) {
    if (Registry.countLaggingAndHelp(Status) == 0)
      return;
    if (Spin < 64)
      std::this_thread::yield();
    else
      std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

//===- runtime/Mutator.h - Program threads ----------------------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Mutator is one program thread as seen by the collector: it allocates
/// objects through a thread-local cache (no synchronization on the fast
/// path), performs pointer updates through the write barrier (Figures 1/4),
/// keeps a shadow stack of local roots, and cooperates with handshakes at
/// the points where the embedding program calls cooperate() — the analogue
/// of the paper's "backward branches and invocations".
///
/// Mutators never respond to a handshake in the middle of an update or an
/// allocation, because cooperation only happens inside cooperate().
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_RUNTIME_MUTATOR_H
#define GENGC_RUNTIME_MUTATOR_H

#include <atomic>
#include <functional>
#include <mutex>
#include <vector>

#include "heap/Heap.h"
#include "obs/ObsRegistry.h"
#include "runtime/CollectorState.h"
#include "runtime/ObjectModel.h"
#include "runtime/Watchdog.h"
#include "runtime/WriteBarrier.h"

namespace gengc {

class Mutator;
class MutatorRegistry;

/// Back-pressure hook for allocation: when the heap has no free memory the
/// mutator asks the waiter (implemented by core/Runtime) to get a collection
/// done.  Implementations must call Mutator::cooperate() while waiting or
/// the collector's handshakes would deadlock against the waiting thread.
class MemoryWaiter {
public:
  virtual ~MemoryWaiter();
  /// Blocks until a collection has plausibly freed memory.
  virtual void waitForMemory(Mutator &M) = 0;
};

/// What an OomHandler tells the allocator to do.
enum class OomAction : uint8_t {
  /// The handler freed memory (dropped roots, shrank a structure); run the
  /// whole wait-and-retry ladder again.
  Retry,
  /// Give up: the allocation returns NullRef to the caller.
  GiveUp,
};

/// What the allocator knows when it invokes the OomHandler.
struct OomInfo {
  /// Size of the allocation that cannot be satisfied, in bytes.
  uint64_t RequestBytes = 0;
  /// Failed attempts (each one a full collection wait) before the handler
  /// was consulted.
  unsigned Attempts = 0;
  /// True for a large-object (block-run) allocation.
  bool LargeObject = false;
};

/// Last-resort out-of-memory hook, invoked on the allocating thread after
/// the retry ladder is exhausted.  The mutator is live: the handler may
/// drop roots, walk its own data structures, even allocate (small amounts —
/// the heap is exhausted).  It must not deregister the mutator.
using OomHandler = std::function<OomAction(Mutator &M, const OomInfo &Info)>;

/// Policy for the out-of-memory escalation ladder (part of RuntimeConfig).
struct OomConfig {
  /// Wait-for-collection attempts before the ladder is exhausted and the
  /// handler (or fatalError) is reached.  Must be >= 1.
  unsigned RetryAttempts = 1000;
  /// After this many futile waits, the mutator returns its thread-local
  /// cache chains to the heap before the next wait, so memory hoarded in
  /// per-thread caches becomes allocatable by anyone.  0 flushes before
  /// the first wait.
  unsigned EmergencyAfter = 3;
  /// Last-resort hook; when absent, an exhausted ladder aborts the process
  /// (the pre-hardening behavior).
  OomHandler Handler;
};

/// One registered program thread.
class Mutator {
public:
  /// Registers this mutator; it adopts the collector's current status.
  Mutator(Heap &H, CollectorState &S, MutatorRegistry &Registry);

  /// Drains the allocation caches back to the heap and deregisters.
  /// The shadow stack must be empty by then.
  ~Mutator();

  Mutator(const Mutator &) = delete;
  Mutator &operator=(const Mutator &) = delete;

  //===--------------------------------------------------------------------===
  // Allocation (the paper's "create" routine).
  //===--------------------------------------------------------------------===

  /// Allocates an object with \p RefSlots cleared pointer fields and
  /// \p DataBytes of uninitialized scalar payload.  The object is created
  /// with the current allocation color (Section 5: there is no create/sweep
  /// race to resolve).  On heap exhaustion it runs the escalation ladder:
  /// wait for collections via the MemoryWaiter (with the configured retry
  /// budget), flush the thread-local caches after a few futile waits, and
  /// finally consult the installed OomHandler.  Returns NullRef only if the
  /// handler chose GiveUp; with no handler an exhausted ladder aborts the
  /// process (the classic behavior).
  ObjectRef allocate(uint32_t RefSlots, uint32_t DataBytes, uint16_t Tag = 0);

  /// Non-blocking variant of allocate: a single pass over the thread cache
  /// and the shared heap, returning NullRef on exhaustion instead of
  /// waiting, escalating or aborting.  For embedders that prefer to handle
  /// memory pressure at the call site.
  ObjectRef tryAllocate(uint32_t RefSlots, uint32_t DataBytes,
                        uint16_t Tag = 0);

  /// Installs the back-pressure hook (done by core/Runtime).
  void setMemoryWaiter(MemoryWaiter *Waiter) { this->Waiter = Waiter; }

  /// Installs the out-of-memory policy (done by core/Runtime; the config
  /// must outlive the mutator).  Null restores the built-in defaults.
  void setOomConfig(const OomConfig *Config) { Oom = Config; }

  /// Connects this mutator to the observability subsystem (done by
  /// core/Runtime): latency samples go to \p Registry's histograms, and —
  /// with tracing enabled — a per-mutator event ring is created for
  /// HandshakeAck and AllocStall events.  Must be called before the first
  /// handshake response if events are to be complete; safe to skip (unit
  /// tests construct bare mutators).
  void setObsRegistry(ObsRegistry *Registry) {
    Obs = Registry;
    Ring = Registry ? Registry->addMutatorRing() : nullptr;
  }

  //===--------------------------------------------------------------------===
  // Heap accesses.
  //===--------------------------------------------------------------------===

  /// Pointer store heap[x, i] <- y through the write barrier (the Update
  /// routine of Figure 1 or Figure 4, selected by the barrier kind).
  void writeRef(ObjectRef X, uint32_t SlotIdx, ObjectRef Y);

  /// Pointer load heap[x, i].  Reads need no barrier in DLG.
  ObjectRef readRef(ObjectRef X, uint32_t SlotIdx) const {
    return loadRefSlot(H, X, SlotIdx);
  }

  //===--------------------------------------------------------------------===
  // Shadow stack (local roots).  Stack writes need no barrier (Section 2).
  //===--------------------------------------------------------------------===

  /// Pushes a local root; returns its index.
  size_t pushRoot(ObjectRef Ref) {
    Stack.push_back(Ref);
    return Stack.size() - 1;
  }

  /// Pops the top \p Count roots.
  void popRoots(size_t Count = 1) {
    GENGC_ASSERT(Count <= Stack.size(), "root stack underflow");
    Stack.resize(Stack.size() - Count);
  }

  ObjectRef root(size_t Index) const {
    GENGC_ASSERT(Index < Stack.size(), "root index out of range");
    return Stack[Index];
  }
  void setRoot(size_t Index, ObjectRef Ref) {
    GENGC_ASSERT(Index < Stack.size(), "root index out of range");
    Stack[Index] = Ref;
  }
  size_t numRoots() const { return Stack.size(); }

  //===--------------------------------------------------------------------===
  // Handshake cooperation.
  //===--------------------------------------------------------------------===

  /// Checks for a pending handshake and responds (the paper's "cooperate").
  /// Embedding programs call this regularly between operations.
  void cooperate();

  /// Marks this mutator blocked: while blocked it promises not to touch the
  /// heap or its shadow stack, and the collector responds to handshakes on
  /// its behalf.  Used around long waits (locks, barriers, sleeps).
  void enterBlocked();

  /// Leaves the blocked state and catches up on any missed handshake.
  void exitBlocked();

  /// This mutator's perception of the handshake status.
  HandshakeStatus status() const {
    return StatusM.load(std::memory_order_acquire);
  }

  /// Collector side: if this mutator is blocked, cooperates on its behalf.
  /// Called with the registry lock held while waiting out a handshake.
  void helpIfBlocked();

  /// Watchdog escalation: adopts the posted status on this thread's behalf
  /// WITHOUT performing the protocol work a real response owes — no root
  /// shading, and LastResponseNanos deliberately stays (the thread itself
  /// never responded).  Only sound because the caller is committed to
  /// aborting the cycle and discarding its trace; see
  /// HandshakeDriver::forceCompleteLaggards.  Relies on the same assumption
  /// BlockedScope makes of a quiet thread: one that has stopped calling
  /// cooperate() is not mid-heap-operation holding CoopMutex.
  void forceAdopt();

  /// Degraded-cycle escalation: shades this thread's roots for a
  /// stop-the-world pause on its behalf, blocked or not (the bounded
  /// world-stop gave up waiting for it to park).  Sound under the same
  /// quiet-thread assumption as forceAdopt — a wedged thread is outside
  /// heap operations, so its shadow stack is stable.
  void forceShadeForStw();

  /// Watchdog side: snapshots this mutator's responsiveness state for a
  /// stall report.  All reads are relaxed — the snapshot is advisory.
  MutatorDiag diag() const {
    MutatorDiag D;
    D.Adopted = StatusM.load(std::memory_order_relaxed);
    D.Blocked = Blocked.load(std::memory_order_relaxed);
    D.LastResponseNanos = LastResponseNanos.load(std::memory_order_relaxed);
    D.AllocatedObjects = AllocObjects.load(std::memory_order_relaxed);
    return D;
  }

  //===--------------------------------------------------------------------===
  // Statistics.
  //===--------------------------------------------------------------------===

  GrayCounters &grayCounters() { return Grays; }

  /// Registration id (assigned by the registry; stable, never reused).
  uint64_t id() const { return Id; }
  /// The central-list shard this mutator's refills and flushes prefer
  /// (Heap::homeShardFor of the registration id).
  unsigned homeShard() const { return HomeShard; }

  uint64_t allocatedObjects() const {
    return AllocObjects.load(std::memory_order_relaxed);
  }
  uint64_t allocatedBytes() const {
    return AllocBytes.load(std::memory_order_relaxed);
  }

  /// Every interval this thread spent NOT running because of the collector,
  /// split into true stop-the-world parks (always zero under the on-the-fly
  /// collectors — the paper's headline property) and voluntary stalls
  /// (allocation throttling, out-of-memory waits).
  struct PauseStats {
    uint64_t Count = 0;
    uint64_t TotalNanos = 0;
    uint64_t MaxNanos = 0;
    uint64_t StwCount = 0;
    uint64_t StwMaxNanos = 0;
  };
  PauseStats pauseStats() const {
    return {PauseCount.load(std::memory_order_relaxed),
            PauseTotalNanos.load(std::memory_order_relaxed),
            PauseMaxNanos.load(std::memory_order_relaxed),
            StwPauseCount.load(std::memory_order_relaxed),
            StwPauseMaxNanos.load(std::memory_order_relaxed)};
  }

  /// Records a collector-induced stall of \p Nanos; \p StopTheWorld marks
  /// a true world-stop park rather than a voluntary stall.
  void recordPause(uint64_t Nanos, bool StopTheWorld = false);

  /// Shades this mutator's roots and parks until StopWorld clears
  /// (StwCollector).  Called from cooperate(); public so tests can drive
  /// the protocol directly.
  void parkForStopTheWorld();

  /// Collector side: if this mutator is blocked, shade its roots on its
  /// behalf for a stop-the-world cycle.  \returns true if it was blocked.
  bool markRootsIfBlockedForStw();

  /// Collector side: whether this mutator is parked for the stop-the-world
  /// pause with the given epoch, having already shaded its roots for it.
  bool stwParkedFor(uint64_t Epoch) const {
    return StwParkedEpoch.load(std::memory_order_acquire) == Epoch;
  }

private:
  /// Responds to the pending handshake.  CoopMutex must be held.
  /// \p Helped marks a response made by the collector on this thread's
  /// behalf (observability only).
  void cooperateLocked(bool Helped = false);

  /// Marks every shadow-stack entry gray (response to the 3rd handshake).
  void markOwnRoots();

  /// Stop-the-world variant: shades clear- AND allocation-colored roots
  /// (see markGrayForStw).  CoopMutex must be held.
  void markOwnRootsForStw();

  /// Stalls while a collection is in progress and the during-cycle
  /// allocation budget is exhausted (see CollectorState::ThrottleBytes).
  void maybeThrottleAllocation();

  /// Shared body of allocate / tryAllocate; \p MayBlock selects between the
  /// escalation ladder and the single-pass NullRef-on-exhaustion contract.
  ObjectRef allocateImpl(uint32_t RefSlots, uint32_t DataBytes, uint16_t Tag,
                         bool MayBlock);

  /// Refills the cache of \p ClassIdx; \returns false on exhaustion (only
  /// possible when \p MayBlock is false or the OomHandler gave up).
  bool refillCache(unsigned ClassIdx, bool MayBlock);

  /// Allocation slow path for objects above MaxSmallObjectBytes; NullRef on
  /// exhaustion under the same contract as refillCache.
  ObjectRef allocateLarge(uint32_t Bytes, bool MayBlock);

  /// The out-of-memory escalation ladder shared by the two slow paths.
  /// Calls \p TryOnce() until it succeeds, interleaving waitForMemory
  /// rounds, a cache flush (sparing \p ExceptClass) on the emergency rung
  /// and finally the OomHandler.  Defined in Mutator.cpp; both callers live
  /// there.
  template <typename TryFn>
  bool runOomLadder(bool MayBlock, bool Large, uint64_t RequestBytes,
                    unsigned ExceptClass, TryFn TryOnce,
                    const char *NoWaiterMsg, const char *ExhaustedMsg);

  /// Returns every thread-local chain — active cache AND parked spares —
  /// except \p ExceptClass's cache to this mutator's home shard (the
  /// emergency rung of the ladder).  Returning to the home shard keeps the
  /// memory findable: a later refill probes the home shard first, then
  /// every other shard, so flushed chains can never be stranded behind an
  /// exhaustion verdict.
  void flushLocalCaches(unsigned ExceptClass);

  Heap &H;
  CollectorState &State;
  MutatorRegistry &Registry;
  MemoryWaiter *Waiter = nullptr;

  /// Out-of-memory policy; null means built-in defaults (see OomConfig).
  const OomConfig *Oom = nullptr;

  /// Observability hookup (see setObsRegistry); null for bare mutators.
  /// Ring is single-producer by protocol: this thread emits while running
  /// (allocation stalls) or under CoopMutex (handshake responses), the
  /// collector emits only under CoopMutex while this thread is Blocked,
  /// and the Blocked transitions themselves happen under CoopMutex.
  ObsRegistry *Obs = nullptr;
  EventRing *Ring = nullptr;

  std::atomic<HandshakeStatus> StatusM{HandshakeStatus::Async};

  /// Serializes handshake responses between the mutator and a helping
  /// collector (when blocked).
  std::mutex CoopMutex;

  /// Whether this thread has declared itself blocked.  Written under
  /// CoopMutex (the protocol reads are all lock-protected too); atomic so
  /// the watchdog's diag() snapshot can read it without taking the mutex
  /// of a possibly-wedged thread.
  std::atomic<bool> Blocked{false};

  /// nowNanos() of this thread's most recent handshake response or blocked
  /// transition; 0 until the first one.  Watchdog diagnostics only.
  std::atomic<uint64_t> LastResponseNanos{0};

  /// The CollectorState::StopEpoch this thread last parked-and-shaded for;
  /// 0 while not parked (epochs start at 1).
  std::atomic<uint64_t> StwParkedEpoch{0};

  std::vector<ObjectRef> Stack;
  Heap::CellChain Cache[NumSizeClasses];

  /// Registration id (written by MutatorRegistry::add under its lock,
  /// before this thread allocates) and the home shard derived from it.
  uint64_t Id = 0;
  unsigned HomeShard = 0;

  /// Compile-time ceiling on HeapConfig::RefillBatchMax (sizes Spares).
  static constexpr unsigned MaxRefillBatch = 16;

  /// Chains a batched refill fetched beyond the one installed in Cache;
  /// consumed LIFO by later refills of the class without touching a lock.
  /// At most MaxRefillBatch - 1 entries are ever parked (a refill fetches
  /// only when the class's spares are gone).
  Heap::CellChain Spares[NumSizeClasses][MaxRefillBatch];
  uint8_t SpareCount[NumSizeClasses] = {};

  /// Adaptive per-class central-refill batch in [1, RefillBatchMax]:
  /// doubled when consecutive central fetches are close together (the
  /// allocation-count gap is small relative to the cells the last fetch
  /// supplied), halved when far apart.  Counts, not clocks, so a
  /// deterministic allocation sequence adapts deterministically.
  uint8_t Batch[NumSizeClasses];
  uint64_t LastRefillAllocs[NumSizeClasses] = {};
  uint32_t LastRefillCells[NumSizeClasses] = {};

  GrayCounters Grays;
  std::atomic<uint64_t> AllocObjects{0};
  std::atomic<uint64_t> AllocBytes{0};
  std::atomic<uint64_t> PauseCount{0};
  std::atomic<uint64_t> PauseTotalNanos{0};
  std::atomic<uint64_t> PauseMaxNanos{0};
  std::atomic<uint64_t> StwPauseCount{0};
  std::atomic<uint64_t> StwPauseMaxNanos{0};

  friend class MutatorRegistry;
};

/// RAII wrapper for Mutator::enterBlocked / exitBlocked.
class BlockedScope {
public:
  explicit BlockedScope(Mutator &M) : M(M) { M.enterBlocked(); }
  ~BlockedScope() { M.exitBlocked(); }
  BlockedScope(const BlockedScope &) = delete;
  BlockedScope &operator=(const BlockedScope &) = delete;

private:
  Mutator &M;
};

} // namespace gengc

#endif // GENGC_RUNTIME_MUTATOR_H

//===- heap/CardTable.h - Inter-generational pointer tracking ---*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Card marking (Sections 3.1 and 8.5.3).  The heap is partitioned into
/// cards of a configurable power-of-two size between 16 bytes ("object
/// marking") and 4096 bytes ("block marking").  Mutators dirty the card of
/// every heap slot they store a pointer into; the collector scans objects on
/// dirty cards for pointers into the young generation and treats them as
/// roots of a partial collection.
///
/// The invariant maintained is the paper's: an inter-generational pointer
/// may exist only on a dirty card.  The delicate set/clear race of Section
/// 7.2 is resolved in the collectors (three-step clear against the
/// mutator's store-then-mark order); this class only provides the atomic
/// byte-per-card storage and scanning statistics.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_HEAP_CARDTABLE_H
#define GENGC_HEAP_CARDTABLE_H

#include <cstdint>

#include "heap/AtomicByteTable.h"
#include "heap/Ref.h"

namespace gengc {

/// Byte-per-card dirty table over the heap arena.
class CardTable {
public:
  /// Minimum card size: one granule, the paper's "object marking".
  static constexpr uint32_t MinCardBytes = 16;
  /// Maximum card size: the paper's "block marking".
  static constexpr uint32_t MaxCardBytes = 4096;

  /// Creates a card table over \p HeapBytes of arena with cards of
  /// \p CardBytes (a power of two in [MinCardBytes, MaxCardBytes]).
  CardTable(uint64_t HeapBytes, uint32_t CardBytes);

  /// Card size in bytes.
  uint32_t cardBytes() const { return 1u << Shift; }

  /// Number of cards covering the heap.
  size_t numCards() const { return Table.size(); }

  /// Card index of the card containing arena byte \p Offset.
  size_t cardIndexFor(uint64_t Offset) const { return Offset >> Shift; }

  /// Arena byte offset of the first byte of card \p Index.
  uint64_t cardStart(size_t Index) const { return uint64_t(Index) << Shift; }

  /// Mutator write barrier: dirties the card containing \p SlotOffset.
  /// A plain atomic store — no synchronization, per DLG's fine-grained
  /// atomicity requirement.
  void markCard(uint64_t SlotOffset) {
    Table.entryFor(SlotOffset).store(1, std::memory_order_relaxed);
  }

  /// Dirties card \p Index directly (collector side of the Section 7.2
  /// three-step protocol).
  void markCardIndex(size_t Index) {
    Table.entry(Index).store(1, std::memory_order_relaxed);
  }

  /// Returns whether card \p Index is dirty.
  bool isDirty(size_t Index) const {
    return Table.entry(Index).load(std::memory_order_relaxed) != 0;
  }

  /// Clears the dirty mark of card \p Index against concurrent mutator
  /// marking (the aging collector's Section 7.2 three-step protocol).  An
  /// acquiring exchange: if it consumes a mark, the pointer store that
  /// preceded the mark (mutator order: store, then mark) is visible to the
  /// collector's subsequent scan of the card, so the scan either finds the
  /// inter-generational pointer and re-marks, or the mutator's mark landed
  /// after the clear and the card simply stays dirty.
  void clearCard(size_t Index) {
    Table.entry(Index).exchange(0, std::memory_order_acq_rel);
  }

  /// Clears the dirty mark of card \p Index when no mutator can be marking
  /// concurrently.  The simple collector's ClearCards runs between the
  /// first and second handshakes, where the Figure 1 barrier does not mark
  /// cards at all (Section 7.1), so a relaxed store suffices — and it is
  /// worth it: this runs once per dirty card on every partial collection.
  void clearCardUncontended(size_t Index) {
    Table.entry(Index).store(0, std::memory_order_relaxed);
  }

  /// Clears every card (used when initiating a full collection).
  void clearAll() { Table.clearAll(); }

  /// Invokes \p Callback(CardIndex) for every dirty card with an index in
  /// [\p IndexBegin, \p IndexEnd), ascending, using racy word hints to skip
  /// clean regions quickly.  A card set concurrently with the scan may be
  /// skipped — equivalent to the scan having passed it already; it simply
  /// stays dirty for the next collection.  This is the sharding primitive
  /// of the parallel card scan: lanes claim disjoint index ranges.
  template <typename Fn>
  void forEachDirtyIndexInRange(size_t IndexBegin, size_t IndexEnd,
                                Fn Callback) const {
    IndexEnd = IndexEnd < Table.size() ? IndexEnd : Table.size();
    if (IndexBegin >= IndexEnd)
      return;
    size_t I = IndexBegin;
    // Leading partial word: per-index checks up to the word boundary.
    while (I != IndexEnd && I % AtomicByteTable::WordEntries != 0) {
      if (isDirty(I))
        Callback(I);
      ++I;
    }
    // Word-aligned interior, eight cards per hint.
    while (I + AtomicByteTable::WordEntries <= IndexEnd) {
      if (Table.racyWord(I / AtomicByteTable::WordEntries) != 0)
        for (size_t J = I; J != I + AtomicByteTable::WordEntries; ++J)
          if (isDirty(J))
            Callback(J);
      I += AtomicByteTable::WordEntries;
    }
    // Trailing partial word.
    for (; I != IndexEnd; ++I)
      if (isDirty(I))
        Callback(I);
  }

  /// Invokes \p Callback(CardIndex) for every dirty card (whole table).
  template <typename Fn> void forEachDirtyIndex(Fn Callback) const {
    forEachDirtyIndexInRange(0, Table.size(), Callback);
  }

  /// Counts currently dirty cards (statistics for Figure 22).
  size_t countDirty() const;

  /// Base address of the backing byte array, for page-touch registration.
  const void *data() const { return Table.data(); }

private:
  unsigned Shift;
  AtomicByteTable Table;
};

} // namespace gengc

#endif // GENGC_HEAP_CARDTABLE_H

//===- heap/CardTable.h - Inter-generational pointer tracking ---*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Card marking (Sections 3.1 and 8.5.3).  The heap is partitioned into
/// cards of a configurable power-of-two size between 16 bytes ("object
/// marking") and 4096 bytes ("block marking").  Mutators dirty the card of
/// every heap slot they store a pointer into; the collector scans objects on
/// dirty cards for pointers into the young generation and treats them as
/// roots of a partial collection.
///
/// The table is two-level.  Level 0 is the paper's byte-per-card dirty
/// table.  Level 1 is a *summary* table with one byte per 64-card chunk —
/// one cache line of card bytes — that the write barrier sets with a second
/// plain store.  The collector consumes dirty cards through the summary:
/// clean chunks are swept 8 summary bytes (512 cards) per 64-bit hint load
/// instead of being walked card by card, which is the difference between
/// touching ~2M card bytes and ~32K summary bytes per partial collection on
/// the paper's 32 MB / 16-byte-card configuration.
///
/// The invariant maintained is the paper's, lifted one level: an
/// inter-generational pointer may exist only on a dirty card, and a dirty
/// card may exist only under a set summary byte.  The delicate set/clear
/// race of Section 7.2 is resolved in the collectors (three-step clear
/// against the mutator's store-then-mark order) and composes with the
/// summary level (see clearSummaryAcquire); this class only provides the
/// atomic byte storage for both levels and the scanning statistics.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_HEAP_CARDTABLE_H
#define GENGC_HEAP_CARDTABLE_H

#include <cstdint>

#include "heap/AtomicByteTable.h"
#include "heap/Ref.h"

namespace gengc {

/// Two-level dirty table over the heap arena: a byte per card plus a byte
/// per 64-card summary chunk.
class CardTable {
public:
  /// Minimum card size: one granule, the paper's "object marking".
  static constexpr uint32_t MinCardBytes = 16;
  /// Maximum card size: the paper's "block marking".
  static constexpr uint32_t MaxCardBytes = 4096;
  /// log2 of the cards summarized by one level-1 byte.  64 card bytes is
  /// one cache line: a summary byte answers "is any card of this line
  /// dirty" without pulling the line itself through the scan.
  static constexpr unsigned SummaryShift = 6;
  /// Cards covered by one summary chunk.
  static constexpr size_t SummaryCards = size_t(1) << SummaryShift;

  /// Creates a card table over \p HeapBytes of arena with cards of
  /// \p CardBytes (a power of two in [MinCardBytes, MaxCardBytes]).
  CardTable(uint64_t HeapBytes, uint32_t CardBytes);

  /// Card size in bytes.
  uint32_t cardBytes() const { return 1u << Shift; }

  /// Number of cards covering the heap.
  size_t numCards() const { return Table.size(); }

  /// Card index of the card containing arena byte \p Offset.
  size_t cardIndexFor(uint64_t Offset) const { return Offset >> Shift; }

  /// Arena byte offset of the first byte of card \p Index.
  uint64_t cardStart(size_t Index) const { return uint64_t(Index) << Shift; }

  //===--------------------------------------------------------------------===
  // Summary geometry.
  //===--------------------------------------------------------------------===

  /// Number of summary chunks covering the card table (the last chunk may
  /// cover fewer than SummaryCards cards).
  size_t numSummaryChunks() const { return Summary.size(); }

  /// Summary chunk containing card \p CardIndex.
  size_t summaryChunkFor(size_t CardIndex) const {
    return CardIndex >> SummaryShift;
  }

  /// First card index of chunk \p Chunk.
  size_t chunkCardBegin(size_t Chunk) const { return Chunk << SummaryShift; }

  /// One past the last card index of chunk \p Chunk.
  size_t chunkCardEnd(size_t Chunk) const {
    size_t End = (Chunk + 1) << SummaryShift;
    return End < Table.size() ? End : Table.size();
  }

  //===--------------------------------------------------------------------===
  // Marking (mutator write barrier + collector re-mark).
  //===--------------------------------------------------------------------===

  /// Mutator write barrier: dirties the card containing \p SlotOffset and
  /// its summary byte.  Two plain stores, no read-modify-write — DLG's
  /// fine-grained atomicity requirement for the barrier is preserved.  The
  /// summary store is a *release* store (free on x86, a plain stlr on ARM):
  /// card byte first, then summary, so a collector whose acquiring summary
  /// exchange consumes the mark also observes the card byte it covers (and
  /// the pointer store before both).  Formally a later plain store by
  /// another mutator to the same summary byte breaks this release sequence;
  /// like clearCard's store-then-mark argument below, the protocol leans on
  /// the machine's per-location coherence there, and any mark that slips
  /// through simply stays dirty for the next collection.
  void markCard(uint64_t SlotOffset) {
    size_t Index = Table.indexFor(SlotOffset);
    Table.entry(Index).store(1, std::memory_order_relaxed);
    Summary.entry(Index >> SummaryShift).store(1, std::memory_order_release);
  }

  /// Dirties card \p Index and its summary byte directly (collector side of
  /// the Section 7.2 three-step protocol, step 3).  Because the re-mark
  /// sets the summary too, a chunk left with a dirty card is always left
  /// with a set summary byte — the chunk level needs no re-set step of its
  /// own.
  void markCardIndex(size_t Index) {
    Table.entry(Index).store(1, std::memory_order_relaxed);
    Summary.entry(Index >> SummaryShift)
        .store(1, std::memory_order_release);
  }

  /// Returns whether card \p Index is dirty.
  bool isDirty(size_t Index) const {
    return Table.entry(Index).load(std::memory_order_relaxed) != 0;
  }

  /// Returns whether summary chunk \p Chunk is marked.
  bool isSummaryDirty(size_t Chunk) const {
    return Summary.entry(Chunk).load(std::memory_order_relaxed) != 0;
  }

  //===--------------------------------------------------------------------===
  // Clearing (collector only).
  //===--------------------------------------------------------------------===

  /// Clears the dirty mark of card \p Index against concurrent mutator
  /// marking (the aging collector's Section 7.2 three-step protocol).  An
  /// acquiring exchange: if it consumes a mark, the pointer store that
  /// preceded the mark (mutator order: store, then mark) is visible to the
  /// collector's subsequent scan of the card, so the scan either finds the
  /// inter-generational pointer and re-marks, or the mutator's mark landed
  /// after the clear and the card simply stays dirty.
  void clearCard(size_t Index) {
    Table.entry(Index).exchange(0, std::memory_order_acq_rel);
  }

  /// Clears the dirty mark of card \p Index when no mutator can be marking
  /// concurrently.  The simple collector's ClearCards runs between the
  /// first and second handshakes, where the Figure 1 barrier does not mark
  /// cards at all (Section 7.1), so a relaxed store suffices — and it is
  /// worth it: this runs once per dirty card on every partial collection.
  void clearCardUncontended(size_t Index) {
    Table.entry(Index).store(0, std::memory_order_relaxed);
  }

  /// Clears summary chunk \p Chunk against concurrent mutator marking: the
  /// Section 7.2 three-step clear lifted to the chunk level, step 1.  The
  /// caller then scans the chunk's cards (running the per-card protocol on
  /// each dirty one); a mark consumed by this exchange left its card byte
  /// visible to that scan (markCard's release ordering), and a mark landing
  /// after it simply re-sets the byte.  Step 3 is implicit: every path that
  /// leaves a card dirty (mutator markCard, collector markCardIndex) also
  /// sets the summary.
  void clearSummaryAcquire(size_t Chunk) {
    Summary.entry(Chunk).exchange(0, std::memory_order_acq_rel);
  }

  /// Clears summary chunk \p Chunk when no mutator can be marking
  /// concurrently (simple-promotion ClearCards; see clearCardUncontended).
  void clearSummaryUncontended(size_t Chunk) {
    Summary.entry(Chunk).store(0, std::memory_order_relaxed);
  }

  /// Clears every card covering arena range [\p ByteBegin, \p ByteEnd)
  /// with plain stores; summary bytes stay (conservatively) set.  Used when
  /// a large-object run is reclaimed: its cards can no longer guard live
  /// pointers, and leaving them dirty would make freed space look
  /// scan-worthy until the blocks are reused.  Callers guarantee nothing
  /// can be marking these cards concurrently (the region is garbage).
  void clearCardsOverRange(uint64_t ByteBegin, uint64_t ByteEnd) {
    if (ByteBegin >= ByteEnd)
      return;
    Table.clearRange(cardIndexFor(ByteBegin), cardIndexFor(ByteEnd - 1) + 1);
  }

  /// Clears every card and every summary byte (used when initiating a full
  /// collection).  May race with mutator marking (the simple collector's
  /// InitFullCollection runs before the first handshake), so the SUMMARY
  /// level clears first: a concurrent markCard (card byte, then summary
  /// byte) whose card store survives our card sweep made its summary store
  /// after our summary sweep too, leaving summary-set/card-clean — the
  /// conservative direction.  The reverse order could strand a dirty card
  /// under a clean summary, invisible to every future summary-guided scan.
  void clearAll() {
    Summary.clearAll();
    Table.clearAll();
  }

  //===--------------------------------------------------------------------===
  // Scanning.
  //===--------------------------------------------------------------------===

  /// Invokes \p Callback(CardIndex) for every dirty card with an index in
  /// [\p IndexBegin, \p IndexEnd), ascending, using racy word hints to skip
  /// clean regions quickly.  A card set concurrently with the scan may be
  /// skipped — equivalent to the scan having passed it already; it simply
  /// stays dirty for the next collection.  This is the per-chunk scanning
  /// primitive of the summary-guided card scan (and the whole-table walk of
  /// the linear fallback): lanes claim disjoint index ranges.
  template <typename Fn>
  void forEachDirtyIndexInRange(size_t IndexBegin, size_t IndexEnd,
                                Fn Callback) const {
    Table.forEachNonZeroEntryInRange(IndexBegin, IndexEnd, Callback);
  }

  /// Invokes \p Callback(CardIndex) for every dirty card (whole table).
  template <typename Fn> void forEachDirtyIndex(Fn Callback) const {
    forEachDirtyIndexInRange(0, Table.size(), Callback);
  }

  /// Invokes \p Callback(Chunk) for every marked summary chunk in
  /// [\p ChunkBegin, \p ChunkEnd), ascending.  Clean space is swept eight
  /// summary bytes — 512 cards — per hint load; the same concurrent-set
  /// allowance as forEachDirtyIndexInRange applies.  This is the work
  /// generator of the sharded card scan: lanes steal dirty chunks, not raw
  /// card-index ranges.
  template <typename Fn>
  void forEachDirtySummaryChunkInRange(size_t ChunkBegin, size_t ChunkEnd,
                                       Fn Callback) const {
    Summary.forEachNonZeroEntryInRange(ChunkBegin, ChunkEnd, Callback);
  }

  /// Counts currently dirty cards (statistics for Figure 22).
  size_t countDirty() const;

  /// Base address of the backing byte array, for page-touch registration.
  const void *data() const { return Table.data(); }

  /// Base address of the summary byte array.
  const void *summaryData() const { return Summary.data(); }

private:
  unsigned Shift;
  AtomicByteTable Table;
  AtomicByteTable Summary;
};

} // namespace gengc

#endif // GENGC_HEAP_CARDTABLE_H

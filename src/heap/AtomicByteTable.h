//===- heap/AtomicByteTable.h - Byte-per-granule side tables ----*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A zero-initialized array of atomic bytes indexed by heap granule (16
/// bytes).  The color table and the age table are instances; the card table
/// builds on the same idea with a configurable granule (the card size).
/// Section 6 of the paper explains why these tables are *byte* tables with
/// no sharing: packing colors, ages and card marks into shared bytes would
/// force compare-and-swap on every write barrier, which the authors measured
/// to be too costly.  A dedicated byte per entry needs plain atomic stores.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_HEAP_ATOMICBYTETABLE_H
#define GENGC_HEAP_ATOMICBYTETABLE_H

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>

#include "support/Assert.h"

namespace gengc {

/// Fixed-size array of atomic bytes, indexed by (byte offset >> Shift).
class AtomicByteTable {
public:
  /// Creates a table covering \p CoveredBytes of address space with one
  /// entry per 2^\p Shift bytes.  All entries start at zero.
  AtomicByteTable(uint64_t CoveredBytes, unsigned Shift)
      : Shift(Shift), NumEntries(CoveredBytes >> Shift),
        Entries(new std::atomic<uint8_t>[NumEntries]) {
    GENGC_ASSERT((CoveredBytes & ((1ull << Shift) - 1)) == 0,
                 "covered size must be a multiple of the granule");
    clearAll();
  }

  /// Number of entries in the table.
  size_t size() const { return NumEntries; }

  /// Entry index for the byte at \p Offset.
  size_t indexFor(uint64_t Offset) const {
    size_t Index = Offset >> Shift;
    GENGC_ASSERT(Index < NumEntries, "side-table offset out of range");
    return Index;
  }

  /// Direct entry access by index.
  std::atomic<uint8_t> &entry(size_t Index) {
    GENGC_ASSERT(Index < NumEntries, "side-table index out of range");
    return Entries[Index];
  }
  const std::atomic<uint8_t> &entry(size_t Index) const {
    GENGC_ASSERT(Index < NumEntries, "side-table index out of range");
    return Entries[Index];
  }

  /// Entry access by covered byte offset.
  std::atomic<uint8_t> &entryFor(uint64_t Offset) {
    return Entries[indexFor(Offset)];
  }
  const std::atomic<uint8_t> &entryFor(uint64_t Offset) const {
    return Entries[indexFor(Offset)];
  }

  /// Resets every entry to zero.  Not atomic with respect to concurrent
  /// writers; callers serialize externally (only used at cycle boundaries
  /// and in tests).
  void clearAll() {
    for (size_t I = 0; I < NumEntries; ++I)
      Entries[I].store(0, std::memory_order_relaxed);
  }

  /// Number of entries covered by one racyWord hint.
  static constexpr size_t WordEntries = 8;

  /// Number of whole hint words in the table.
  size_t numWords() const { return NumEntries / WordEntries; }

  /// Racy 8-entry snapshot used to skip uninteresting table regions
  /// quickly (dirty-card scans, gray-verification scans).  The read is a
  /// deliberate benign race: callers use it only as a HINT whose misses
  /// are conservative — a concurrently-set byte the hint does not show is
  /// simply handled as if the scan had passed it already, which every
  /// caller tolerates (cards stay dirty; shades are caught by the
  /// termination protocol).  Interesting words are re-examined with
  /// proper atomic loads.
  uint64_t racyWord(size_t WordIndex) const {
    GENGC_ASSERT(WordIndex < numWords(), "hint word out of range");
#if GENGC_TSAN_ENABLED
    // Same hint, composed from relaxed per-byte loads so TSan does not
    // report the intentional race; slower, but only in sanitizer builds.
    uint64_t Word = 0;
    for (size_t I = 0; I < WordEntries; ++I)
      Word |= uint64_t(Entries[WordIndex * WordEntries + I].load(
                  std::memory_order_relaxed))
              << (8 * I);
    return Word;
#else
    uint64_t Word;
    std::memcpy(&Word,
                reinterpret_cast<const unsigned char *>(Entries.get()) +
                    WordIndex * WordEntries,
                sizeof(Word));
    return Word;
#endif
  }

  /// True if any byte of \p Word equals \p Value (SWAR zero-byte test).
  static bool wordContainsByte(uint64_t Word, uint8_t Value) {
    uint64_t Spread = 0x0101010101010101ull * Value;
    uint64_t X = Word ^ Spread;
    return ((X - 0x0101010101010101ull) & ~X & 0x8080808080808080ull) != 0;
  }

  /// Invokes \p Callback(ByteIdx) for every non-zero byte of \p Word in
  /// ascending byte order.  Bit trick: the lowest set bit of the word names
  /// the lowest non-zero byte, which is then masked out — cost is one
  /// count-trailing-zeros per *hit*, not one test per byte.
  template <typename Fn> static void forEachNonZeroByte(uint64_t Word, Fn Callback) {
    while (Word != 0) {
      unsigned Byte = unsigned(std::countr_zero(Word)) >> 3;
      Callback(Byte);
      Word &= ~(0xFFull << (Byte * 8));
    }
  }

  /// Invokes \p Callback(Index) for every entry in [\p Begin, \p End) whose
  /// byte is non-zero, ascending, sweeping clean space eight entries per
  /// racyWord load.  Hint-guided: only bytes the hint shows non-zero are
  /// re-examined with proper atomic loads, so a byte set concurrently with
  /// the walk may be skipped — every caller treats that as the walk having
  /// passed it already (see racyWord).
  template <typename Fn>
  void forEachNonZeroEntryInRange(size_t Begin, size_t End, Fn Callback) const {
    End = std::min(End, NumEntries);
    if (Begin >= End)
      return;
    auto Check = [&](size_t Index) {
      if (Entries[Index].load(std::memory_order_relaxed) != 0)
        Callback(Index);
    };
    size_t I = Begin;
    // Leading partial word: per-entry checks up to the word boundary.
    while (I != End && I % WordEntries != 0)
      Check(I++);
    // Word-aligned interior, eight entries per hint.
    while (I + WordEntries <= End) {
      if (uint64_t Word = racyWord(I / WordEntries))
        forEachNonZeroByte(Word, [&](unsigned Byte) { Check(I + Byte); });
      I += WordEntries;
    }
    // Trailing partial word.
    for (; I != End; ++I)
      Check(I);
  }

  /// Invokes \p Callback(Index) for every entry in [\p Begin, \p End) whose
  /// byte equals \p Value, ascending.  Word-gated like the historical
  /// gray-verification scan: a word whose racy hint contains \p Value has
  /// ALL of its entries re-examined with acquire loads (not only the bytes
  /// the hint showed), so a byte stored between the hint read and the
  /// per-entry load is still seen.  A byte set concurrently in a word the
  /// hint showed clean may be skipped — callers treat that exactly like the
  /// benign racyWord miss (the tracer's termination protocol re-discovers
  /// late shades on the next pass or the next cycle).
  template <typename Fn>
  void forEachEntryEqualInRange(size_t Begin, size_t End, uint8_t Value,
                                Fn Callback) const {
    End = std::min(End, NumEntries);
    if (Begin >= End)
      return;
    auto Check = [&](size_t Index) {
      if (Entries[Index].load(std::memory_order_acquire) == Value)
        Callback(Index);
    };
    size_t I = Begin;
    // Leading partial word: per-entry checks up to the word boundary.
    while (I != End && I % WordEntries != 0)
      Check(I++);
    // Word-aligned interior, eight entries per hint.
    while (I + WordEntries <= End) {
      if (wordContainsByte(racyWord(I / WordEntries), Value))
        for (size_t J = I; J != I + WordEntries; ++J)
          Check(J);
      I += WordEntries;
    }
    // Trailing partial word.
    for (; I != End; ++I)
      Check(I);
  }

  /// Zeroes every entry in [\p Begin, \p End) with plain stores.  Racing
  /// writers of *other* entries are unaffected (byte-sized stores); callers
  /// guarantee no one is concurrently setting the cleared entries.
  void clearRange(size_t Begin, size_t End) {
    End = std::min(End, NumEntries);
    for (size_t I = Begin; I < End; ++I)
      Entries[I].store(0, std::memory_order_relaxed);
  }

  /// Base address of the entry array (for page-touch accounting).
  const void *data() const { return Entries.get(); }

  /// log2 of the number of covered bytes per entry.
  unsigned granuleShift() const { return Shift; }

private:
  unsigned Shift;
  size_t NumEntries;
  std::unique_ptr<std::atomic<uint8_t>[]> Entries;
};

} // namespace gengc

#endif // GENGC_HEAP_ATOMICBYTETABLE_H

//===- heap/AgeTable.cpp - Per-object ages in a side table ----------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "heap/AgeTable.h"

using namespace gengc;

AgeTable::AgeTable(uint64_t HeapBytes) : Table(HeapBytes, GranuleShift) {}

//===- heap/PageTouch.cpp - Collector page-residency accounting -----------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "heap/PageTouch.h"

#include <bit>

#include "support/Assert.h"
#include "support/MathExtras.h"

using namespace gengc;

void PageTouchTracker::registerRegion(Region R, uint64_t Bytes) {
  GENGC_ASSERT(size_t(R) < size_t(Region::NumRegions), "bad region");
  RegionBase[size_t(R)] = TotalPages;
  TotalPages += size_t(divideCeil(Bytes, PageBytes));
  Bits.assign(divideCeil(TotalPages, 64), 0);
}

uint64_t PageTouchTracker::countTouched() const {
  uint64_t Count = 0;
  for (uint64_t Word : Bits)
    Count += std::popcount(Word);
  return Count;
}

void PageTouchTracker::reset() { Bits.assign(Bits.size(), 0); }

//===- heap/PageTouch.cpp - Collector page-residency accounting -----------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "heap/PageTouch.h"

#include <bit>

#include "support/Assert.h"
#include "support/MathExtras.h"

using namespace gengc;

void PageTouchTracker::registerRegion(Region R, uint64_t Bytes) {
  GENGC_ASSERT(size_t(R) < size_t(Region::NumRegions), "bad region");
  RegionBase[size_t(R)] = TotalPages;
  TotalPages += size_t(divideCeil(Bytes, PageBytes));
  NumWords = size_t(divideCeil(TotalPages, 64));
  Bits.reset(new std::atomic<uint64_t>[NumWords]);
  for (size_t I = 0; I < NumWords; ++I)
    Bits[I].store(0, std::memory_order_relaxed);
}

uint64_t PageTouchTracker::countTouched() const {
  uint64_t Count = 0;
  for (size_t I = 0; I < NumWords; ++I)
    Count += std::popcount(Bits[I].load(std::memory_order_relaxed));
  return Count;
}

void PageTouchTracker::reset() {
  for (size_t I = 0; I < NumWords; ++I)
    Bits[I].store(0, std::memory_order_relaxed);
}

//===- heap/PageTouch.h - Collector page-residency accounting ---*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 15 of the paper reports the number of pages touched by the
/// collector during trace and sweep, "including all the tables the collector
/// uses (such as the card table)".  This tracker reproduces that metric: the
/// heap registers each memory region (arena, color table, card table, age
/// table) and the collector reports every access through touch().  Pages are
/// 4 KiB.  GC worker lanes record touches concurrently, so the bitmap words
/// are atomic; relaxed fetch_or is all a monotonic set-only bitmap needs.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_HEAP_PAGETOUCH_H
#define GENGC_HEAP_PAGETOUCH_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace gengc {

/// Identifiers for the regions the collector touches.
enum class Region : unsigned {
  Arena = 0,
  ColorTable,
  CardTable,
  CardSummary,
  AgeTable,
  NumRegions,
};

/// Per-collection-cycle page-touch bitmap over all registered regions.
class PageTouchTracker {
public:
  static constexpr uint64_t PageBytes = 4096;

  PageTouchTracker() : RegionBase(size_t(Region::NumRegions), 0) {}

  /// Declares that \p Region spans \p Bytes.  Must be called once per
  /// region before any touch; regions receive consecutive page-index
  /// ranges.
  void registerRegion(Region R, uint64_t Bytes);

  /// Enables or disables recording.  Disabled touch() calls are ~1 branch.
  void setEnabled(bool On) { Enabled = On; }
  bool enabled() const { return Enabled; }

  /// Records that the collector touched byte \p Offset of region \p R.
  void touch(Region R, uint64_t Offset) {
    if (!Enabled)
      return;
    size_t Page = RegionBase[size_t(R)] + size_t(Offset / PageBytes);
    Bits[Page >> 6].fetch_or(1ull << (Page & 63), std::memory_order_relaxed);
  }

  /// Records a touch of \p Len bytes starting at \p Offset.
  void touchRange(Region R, uint64_t Offset, uint64_t Len) {
    if (!Enabled || Len == 0)
      return;
    uint64_t First = Offset / PageBytes, Last = (Offset + Len - 1) / PageBytes;
    for (uint64_t P = First; P <= Last; ++P) {
      size_t Page = RegionBase[size_t(R)] + size_t(P);
      Bits[Page >> 6].fetch_or(1ull << (Page & 63), std::memory_order_relaxed);
    }
  }

  /// Number of distinct pages touched since the last reset().
  uint64_t countTouched() const;

  /// Clears the bitmap for the next collection cycle.
  void reset();

private:
  bool Enabled = false;
  std::vector<size_t> RegionBase;
  size_t TotalPages = 0;
  size_t NumWords = 0;
  std::unique_ptr<std::atomic<uint64_t>[]> Bits;
};

} // namespace gengc

#endif // GENGC_HEAP_PAGETOUCH_H

//===- heap/Heap.h - Non-moving segmented heap ------------------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heap manager underneath both collectors.  It is a non-moving,
/// big-bag-of-pages design:
///
///  - a fixed arena is carved into 64 KiB blocks; a block holds cells of one
///    size class, so a cell's size is a function of its address and sweep
///    can walk the heap without per-object size headers;
///  - objects larger than 8 KiB get whole-block runs;
///  - free cells are threaded into chains (through their first word) and
///    handed to thread-local allocation caches in bulk, so the allocation
///    fast path performs no synchronization — the property DLG requires of
///    the runtime ("a thread-local allocation mechanism necessary to avoid
///    synchronization between threads during object allocation", Section 7);
///  - colors, ages and card marks live in dense side tables (one byte per
///    16-byte granule / card), following the paper's locality argument.
///
/// The heap knows nothing about object layout or the collector's phases;
/// it provides cells, colors and the side tables.  runtime/ObjectModel.h
/// defines headers and slots, and src/gc drives collection.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_HEAP_HEAP_H
#define GENGC_HEAP_HEAP_H

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "heap/AgeTable.h"
#include "heap/AtomicByteTable.h"
#include "heap/Block.h"
#include "heap/CardTable.h"
#include "heap/Color.h"
#include "heap/PageTouch.h"
#include "heap/Ref.h"
#include "heap/SizeClasses.h"

namespace gengc {

/// Static configuration of a Heap.
struct HeapConfig {
  /// Total arena size.  The paper ran all benchmarks with a 32 MB maximum
  /// heap; that is our default too.
  uint64_t HeapBytes = 32ull << 20;

  /// Card size for the card-marking write barrier; a power of two in
  /// [16, 4096].  16 is the paper's "object marking", 4096 its "block
  /// marking"; 16 is the paper's final choice (Section 8.5.3).
  uint32_t CardBytes = 16;

  /// Record the pages the collector touches (Figure 15).  Costs a little
  /// collector time, nothing on mutator paths.
  bool TrackPages = false;

  /// Maximum number of cells per free chain handed to a thread-local
  /// allocation cache.  Bounds how much memory an idle thread can hoard.
  uint32_t ChainCells = 256;

  /// Number of central free-list shards per size class; a power of two, or
  /// 0 to size from the hardware concurrency (rounded up to a power of
  /// two, capped at 64).  Mutators hash to a home shard and steal from
  /// neighbors when it runs dry, so thread-cache refills of independent
  /// threads stop funneling through one mutex.  1 shard reproduces the
  /// historical single-central-list behavior bit-identically.
  uint32_t AllocShards = 0;

  /// Upper bound on the chains a thread-cache refill may transfer under
  /// one shard-lock acquisition.  The per-mutator batch size adapts within
  /// [1, RefillBatchMax] from refill frequency; 1 disables batching.
  uint32_t RefillBatchMax = 8;
};

/// Interface through which the heap's refill path reaches the gc layer's
/// per-block sweep engine under SweepPolicy::Lazy.  The heap layer cannot
/// depend on src/gc, so the collector installs an implementation
/// (gc/LazySweep.h) via Heap::setLazySweeper; a null hook (the default, and
/// the eager policy) leaves every allocation path byte-identical.
class LazySweeper {
public:
  virtual ~LazySweeper() = default;

  /// Claims one needs-sweep block of \p ClassIdx, sweeps it, and deposits
  /// the reclaimed cell chains into central shard \p DepositShard — where
  /// the calling refill is about to look.  Returns false when no
  /// needs-sweep block of the class remains.
  virtual bool sweepOneBlockFor(unsigned ClassIdx, unsigned DepositShard) = 0;
};

/// The arena plus its side tables and free-memory bookkeeping.
class Heap {
public:
  /// log2 of the block size.
  static constexpr unsigned BlockShift = 16;
  /// Block size in bytes (64 KiB).
  static constexpr uint64_t BlockBytes = 1ull << BlockShift;

  /// A chain of free cells of one size class, threaded through each cell's
  /// first word.  The unit of transfer between the central free lists and
  /// the thread-local caches, and the unit in which sweep returns memory.
  struct CellChain {
    ObjectRef Head = NullRef;
    uint32_t Count = 0;
  };

  explicit Heap(const HeapConfig &Config);
  ~Heap();

  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;

  const HeapConfig &config() const { return Config; }
  uint64_t heapBytes() const { return Config.HeapBytes; }

  //===--------------------------------------------------------------------===
  // Word access.  The arena is typed as an array of atomic 32-bit words so
  // that concurrent mutator stores / collector loads are well-defined.
  //===--------------------------------------------------------------------===

  /// The atomic word at arena byte offset \p Offset (must be 4-aligned).
  std::atomic<uint32_t> &wordAt(uint64_t Offset) {
    GENGC_ASSERT(Offset + 4 <= Config.HeapBytes && (Offset & 3) == 0,
                 "word access out of bounds or misaligned");
    return Arena[Offset >> 2];
  }
  const std::atomic<uint32_t> &wordAt(uint64_t Offset) const {
    GENGC_ASSERT(Offset + 4 <= Config.HeapBytes && (Offset & 3) == 0,
                 "word access out of bounds or misaligned");
    return Arena[Offset >> 2];
  }

  /// Raw address of the arena byte at \p Ref, for software-prefetch hints
  /// only (the tracer warms the header line of upcoming gray objects).
  /// Never dereference through this — all real accesses go through the
  /// atomic wordAt/loadColor accessors.
  const void *prefetchAddress(ObjectRef Ref) const {
    return reinterpret_cast<const unsigned char *>(Arena.get()) + Ref;
  }

  /// Raw address of \p Ref's color-table byte, for prefetch hints only.
  const void *colorPrefetchAddress(ObjectRef Ref) const {
    return reinterpret_cast<const unsigned char *>(Colors.data()) +
           (Ref >> GranuleShift);
  }

  //===--------------------------------------------------------------------===
  // Colors.
  //===--------------------------------------------------------------------===

  /// Loads the color of the object at \p Ref.
  Color loadColor(ObjectRef Ref,
                  std::memory_order MO = std::memory_order_acquire) const {
    return Color(Colors.entryFor(Ref).load(MO));
  }

  /// Stores the color of the object at \p Ref.
  void storeColor(ObjectRef Ref, Color C,
                  std::memory_order MO = std::memory_order_release) {
    Colors.entryFor(Ref).store(uint8_t(C), MO);
  }

  /// Single compare-and-swap on the color byte; updates \p Expected on
  /// failure.  All racing color transitions (mutator graying vs. sweep
  /// freeing) funnel through this, so exactly one side wins.
  bool casColor(ObjectRef Ref, Color &Expected, Color Desired) {
    uint8_t Exp = uint8_t(Expected);
    bool Won = Colors.entryFor(Ref).compare_exchange_strong(
        Exp, uint8_t(Desired), std::memory_order_acq_rel,
        std::memory_order_acquire);
    Expected = Color(Exp);
    return Won;
  }

  //===--------------------------------------------------------------------===
  // Side tables.
  //===--------------------------------------------------------------------===

  CardTable &cards() { return Cards; }
  const CardTable &cards() const { return Cards; }
  /// Direct access to the color side-table (gray-verification scans).
  const AtomicByteTable &colors() const { return Colors; }
  /// Per-object remembered-set membership flags (one byte per granule;
  /// the "extra bit" the paper's JVM lacked, Section 3.1).  The flag makes
  /// re-recording an already-remembered object free of buffer traffic.
  AtomicByteTable &rememberedFlags() { return Remembered; }
  AgeTable &ages() { return Ages; }
  const AgeTable &ages() const { return Ages; }
  PageTouchTracker &pages() { return Pages; }

  //===--------------------------------------------------------------------===
  // Allocation and reclamation.  The central free lists are sharded: each
  // size class owns allocShards() independent chain inventories, each
  // behind its own mutex.  A refill serves from the caller's home shard,
  // steals from neighbors when the home shard is dry, and falls back to
  // carving a fresh block (claimed from a lock-free stack) when every
  // shard is empty — so exhaustion is only declared after probing the
  // whole heap.
  //===--------------------------------------------------------------------===

  /// Number of central-list shards per size class (a power of two).
  unsigned allocShards() const { return NumShards; }

  /// Home shard for the actor with stable id \p Id (Fibonacci hash, so
  /// consecutive registration ids spread across shards).
  unsigned homeShardFor(uint64_t Id) const {
    return NumShards == 1
               ? 0
               : unsigned((Id * 0x9E3779B97F4A7C15ull) >> ShardShift);
  }

  /// What a popFreeChains call had to do to find memory (observability;
  /// all fields describe this one call).
  struct RefillStats {
    /// Shards probed beyond the home shard (0 when home served).
    uint32_t ShardsProbed = 0;
    /// Shard the chains actually came from when it was not the home shard;
    /// -1 otherwise.
    int32_t StolenFrom = -1;
    /// A fresh block was carved because every shard was empty.
    bool Carved = false;
    /// The home shard's mutex was contended on entry.
    bool Contended = false;
    /// Needs-sweep blocks claimed and swept inline by this refill (lazy
    /// sweep only).
    uint32_t LazySwept = 0;
  };

  /// Pops one chain of free cells of size class \p ClassIdx, preferring
  /// shard \p HomeShard.  Returns an empty chain only when every shard is
  /// empty AND no free block remains (the caller is expected to wait for a
  /// collection while cooperating with handshakes).
  CellChain popFreeChain(unsigned ClassIdx, unsigned HomeShard = 0);

  /// Batched variant: pops up to \p MaxChains chains under a single shard
  /// lock acquisition into \p Out, returning how many were taken.  Steals
  /// take at most half of a victim shard's inventory (bounded steal), so a
  /// dry home shard cannot drain a busy neighbor wholesale.
  unsigned popFreeChains(unsigned ClassIdx, unsigned HomeShard,
                         unsigned MaxChains, CellChain *Out,
                         RefillStats *Stats = nullptr);

  /// Returns a chain of freed cells to shard \p HomeShard of \p ClassIdx
  /// (sweep, or a thread draining its cache).  Cells must already be Blue.
  void pushFreeChain(unsigned ClassIdx, CellChain Chain,
                     unsigned HomeShard = 0);

  /// Reads the next-link of free cell \p Cell in a chain.
  ObjectRef chainNext(ObjectRef Cell) const {
    return wordAt(Cell).load(std::memory_order_relaxed);
  }

  /// Writes the next-link of free cell \p Cell.
  void setChainNext(ObjectRef Cell, ObjectRef Next) {
    wordAt(Cell).store(Next, std::memory_order_relaxed);
  }

  /// Allocates a large object of \p Bytes (> MaxSmallObjectBytes) as a run
  /// of whole blocks.  Returns NullRef when no contiguous run is free.
  /// The caller sets the color; the run is handed out Blue.
  ObjectRef allocateLarge(uint32_t Bytes);

  /// Frees the large run whose first block is \p BlockIdx (sweep only).
  void freeLargeRun(uint32_t BlockIdx);

  //===--------------------------------------------------------------------===
  // Lazy sweep (SweepPolicy::Lazy).  The collector's PublishSweep phase
  // stamps every size-class block NeedsSweep instead of sweeping it; a
  // refill that finds the central lists dry claims a published block
  // through the installed LazySweeper and sweeps it inline, and the
  // collector drains whatever the mutators never claimed (the residue) at
  // the start of the next cycle and while idle.  Protocol invariant: a
  // block's cells enter a central free list only after the block's Sweep
  // byte returns to Swept, and chains already parked when a block is
  // published are moved into a per-block stash the claimant re-deposits —
  // so a chain observed in a central list always belongs to a swept block
  // (checked by gc/HeapVerifier).
  //===--------------------------------------------------------------------===

  /// Installs (or clears, with nullptr) the gc-layer sweep hook.  A non-null
  /// hook enables the lazy routing in popFreeChains / pushFreeChain.
  void setLazySweeper(LazySweeper *Hook) {
    LazyHook.store(Hook, std::memory_order_seq_cst);
  }
  bool lazySweepEnabled() const {
    return LazyHook.load(std::memory_order_relaxed) != nullptr;
  }

  /// Stamps size-class block \p BlockIdx needs-sweep under color-toggle
  /// epoch \p Epoch (collector publish only).  The block is not claimable
  /// until enqueueNeedsSweep links it; the gap lets the publisher drain the
  /// central lists first.
  void publishNeedsSweep(uint32_t BlockIdx, uint32_t Epoch);

  /// Links published block \p BlockIdx onto its class's needs-sweep stack,
  /// making it claimable (collector publish only, after the free-list
  /// drain).
  void enqueueNeedsSweep(uint32_t BlockIdx);

  /// Pops and claims (Sweep NeedsSweep -> Sweeping CAS) one needs-sweep
  /// block of \p ClassIdx.  Returns 0 when none remains.  The caller must
  /// sweep the block and call markBlockSwept + finishBlockSweep.
  uint32_t claimNeedsSweepBlock(unsigned ClassIdx);

  /// Marks claimed block \p BlockIdx swept.  Must precede pushing any of
  /// its cells to a central list, and precede takePendingStash (the order
  /// that makes a racing pushFreeChain either stash before the take or see
  /// Swept and push normally — never strand a chain).
  void markBlockSwept(uint32_t BlockIdx);

  /// Retires one claimed block after its cells are deposited.
  /// \p MutatorContext selects which counter the sweep is attributed to.
  void finishBlockSweep(bool MutatorContext);

  /// Moves every centrally-parked chain whose block is not Swept into that
  /// block's stash (collector publish only).  Under the lazy policy every
  /// chain holds cells of a single block (carve and per-block sweep both
  /// produce single-block chains), so the chain's head identifies it.
  void drainFreeListsToStashes();

  /// Takes (and empties) block \p BlockIdx's stash of parked chains.
  std::vector<CellChain> takePendingStash(uint32_t BlockIdx);

  /// Re-deposits a stash chain into shard \p HomeShard of \p ClassIdx.
  /// Unlike pushFreeChain this does not touch UsedBytes: stashed cells
  /// were already uncharged when they first left circulation.
  void repushFreeChain(unsigned ClassIdx, CellChain Chain, unsigned HomeShard);

  /// True if a chain with head \p Head is currently parked in shard
  /// \p Shard of \p ClassIdx (verifier re-confirmation; takes the shard
  /// mutex).
  bool freeChainParked(unsigned ClassIdx, unsigned Shard, ObjectRef Head) const;

  /// Blocks currently published and unclaimed / currently claimed mid-sweep.
  uint64_t needsSweepBlockCount() const {
    return NeedsSweepBlocks.load(std::memory_order_acquire);
  }
  uint64_t sweepingBlockCount() const {
    return SweepingBlocks.load(std::memory_order_acquire);
  }

  /// Lifetime lazy-sweep counters (drive MetricsSnapshot).
  uint64_t lazyBlocksPublished() const {
    return LazyPublished.load(std::memory_order_relaxed);
  }
  uint64_t lazyBlocksMutatorSwept() const {
    return LazyMutatorSwept.load(std::memory_order_relaxed);
  }
  uint64_t lazyBlocksResidueSwept() const {
    return LazyResidueSwept.load(std::memory_order_relaxed);
  }

  //===--------------------------------------------------------------------===
  // Geometry.
  //===--------------------------------------------------------------------===

  size_t numBlocks() const { return Blocks.size(); }
  const BlockDescriptor &block(size_t Index) const {
    GENGC_ASSERT(Index < Blocks.size(), "block index out of range");
    return Blocks[Index];
  }

  /// Block index containing arena offset \p Ref.
  uint32_t blockIndexOf(ObjectRef Ref) const {
    GENGC_ASSERT(Ref < Config.HeapBytes, "ref outside arena");
    return uint32_t(Ref >> BlockShift);
  }

  /// Bytes of storage backing the object at \p Ref (the cell size, or the
  /// whole run for a large object).
  uint32_t storageBytesOf(ObjectRef Ref) const;

  /// Invokes \p Fn(ObjectRef) for the start of every cell or large object
  /// that overlaps card \p CardIdx.  Includes free (Blue) cells; the caller
  /// filters by color.
  template <typename Fn>
  void forEachObjectOverlappingCard(size_t CardIdx, Fn Callback) const {
    uint64_t CardStart = Cards.cardStart(CardIdx);
    uint64_t CardEnd = CardStart + Cards.cardBytes();
    uint32_t BlockIdx = uint32_t(CardStart >> BlockShift);
    const BlockDescriptor &Desc = Blocks[BlockIdx];
    switch (Desc.State) {
    case BlockState::Free:
    case BlockState::Reserved:
    case BlockState::Claimed:
      return;
    case BlockState::LargeStart:
      Callback(ObjectRef(uint64_t(BlockIdx) << BlockShift));
      return;
    case BlockState::LargeCont:
      Callback(ObjectRef(uint64_t(Desc.RunStart) << BlockShift));
      return;
    case BlockState::SizeClass: {
      uint64_t Base = uint64_t(BlockIdx) << BlockShift;
      uint32_t First = uint32_t(
          (uint64_t(uint32_t(CardStart - Base)) * Desc.CellRecip) >> 32);
      for (uint32_t Cell = First; Cell < Desc.NumCells; ++Cell) {
        uint64_t Start = Base + uint64_t(Cell) * Desc.CellBytes;
        if (Start >= CardEnd)
          break;
        Callback(ObjectRef(Start));
      }
      return;
    }
    }
  }

  /// Number of cards that lie within blocks currently holding objects
  /// (denominator of Figure 22's "percentage of dirty cards from allocated
  /// cards").
  size_t countAllocatedCards() const;

  /// Invokes \p Callback(ByteBegin, ByteEnd) for every maximal run of
  /// consecutive blocks that currently hold objects (SizeClass, LargeStart
  /// or LargeCont — everything except Free and Reserved, the same predicate
  /// as countAllocatedCards).  The card-scan work generator restricts its
  /// summary sweep to these ranges: cards over never-carved or reclaimed
  /// space cannot be dirty (freeLargeRun clears them), so clean empty heap
  /// costs nothing.  Block states are read racily; concurrent carving only
  /// grows the allocated set, and a block carved after its range was passed
  /// holds no old objects a partial collection could need.
  template <typename Fn> void forEachAllocatedBlockRange(Fn Callback) const {
    size_t NumBlocks = Blocks.size();
    for (size_t I = 0; I < NumBlocks;) {
      BlockState S = Blocks[I].State;
      if (S == BlockState::Free || S == BlockState::Reserved) {
        ++I;
        continue;
      }
      size_t Begin = I;
      while (I < NumBlocks && Blocks[I].State != BlockState::Free &&
             Blocks[I].State != BlockState::Reserved)
        ++I;
      Callback(uint64_t(Begin) << BlockShift, uint64_t(I) << BlockShift);
    }
  }

  //===--------------------------------------------------------------------===
  // Accounting.
  //===--------------------------------------------------------------------===

  /// Bytes handed out of the central free lists and not yet returned.
  /// Includes cells parked in thread-local caches.
  uint64_t usedBytes() const {
    return UsedBytes.load(std::memory_order_relaxed);
  }

  /// Bytes handed out since the last resetAllocatedSinceGc(); drives the
  /// young-generation trigger (Section 3.3).  A lower bound on true
  /// allocation, exactly like the paper's trigger (their footnote 1).
  uint64_t allocatedSinceGcBytes() const {
    return AllocSinceGc.load(std::memory_order_relaxed);
  }
  void resetAllocatedSinceGc() {
    AllocSinceGc.store(0, std::memory_order_relaxed);
  }

  /// Number of blocks neither carved nor in a large run.
  uint64_t freeBlockCount() const {
    return FreeBlockCount.load(std::memory_order_relaxed);
  }

  //===--------------------------------------------------------------------===
  // Allocation-path counters (relaxed; drive MetricsSnapshot).
  //===--------------------------------------------------------------------===

  /// popFreeChains calls that returned at least one chain.
  uint64_t refillCount() const {
    return Refills.load(std::memory_order_relaxed);
  }
  /// Refills served by a non-home shard.
  uint64_t refillStealCount() const {
    return Steals.load(std::memory_order_relaxed);
  }
  /// Refills that carved a fresh block because every shard was empty.
  uint64_t carveFallbackCount() const {
    return Carves.load(std::memory_order_relaxed);
  }
  /// Refills that found their home shard's mutex contended.
  uint64_t shardContentionCount() const {
    return Contentions.load(std::memory_order_relaxed);
  }

  //===--------------------------------------------------------------------===
  // Verifier access.  The heap-invariant verifier (gc/HeapVerifier) needs
  // consistent views of structures whose racy reads are fine for the
  // collector but not for an invariant check.
  //===--------------------------------------------------------------------===

  /// Runs \p Callback with the block-structure lock held, freezing
  /// large-run placement and reclamation for its duration.  Single-block
  /// carving is NOT frozen: carvers claim blocks from the lock-free free
  /// stack without this mutex, so checks against carving must tolerate (or
  /// confirm away) in-flight claims.  The callback must not allocate from
  /// this heap (lock order: shard mutexes come BEFORE BlockMutex — a shard
  /// lock is held across the carve fallback's descriptor publication, and
  /// nothing ever takes a shard lock while holding BlockMutex).
  template <typename Fn> void withBlocksLocked(Fn Callback) const {
    std::scoped_lock Locked(BlockMutex);
    Callback();
  }

  /// Runs \p Callback(ClassIdx, Shard, Chain) for every chain parked in
  /// every shard of every size class's central free list, holding exactly
  /// one shard mutex at a time — the shard owning the chains being visited.
  /// Cell links may be chased through chainNext — a parked chain cannot
  /// change while its shard is locked.  The callback must not touch the
  /// lists themselves.
  template <typename Fn> void forEachFreeChain(Fn Callback) const {
    for (unsigned ClassIdx = 0; ClassIdx < NumSizeClasses; ++ClassIdx) {
      for (unsigned S = 0; S < NumShards; ++S) {
        const CentralShard &Sh = shard(ClassIdx, S);
        std::scoped_lock Locked(Sh.Mutex);
        for (const CellChain &Chain : Sh.Chains)
          Callback(ClassIdx, S, Chain);
      }
    }
  }

private:
  /// One shard of one size class's central free list.  Cache-line sized so
  /// neighboring shards do not false-share their mutexes.
  struct alignas(64) CentralShard {
    mutable std::mutex Mutex;
    std::vector<CellChain> Chains;
  };

  CentralShard &shard(unsigned ClassIdx, unsigned S) {
    return Shards[size_t(ClassIdx) * NumShards + S];
  }
  const CentralShard &shard(unsigned ClassIdx, unsigned S) const {
    return Shards[size_t(ClassIdx) * NumShards + S];
  }

  //===-- Lock-free free-block stack --------------------------------------===
  // A Treiber stack of free block indices, intrusively linked through
  // BlockDescriptor::NextFree.  The head packs {version tag, block index}
  // into one u64 (the tag defeats ABA).  Entries are HINTS: large-run
  // placement claims blocks in place via a CAS on BlockDescriptor::State,
  // leaving the stack entry stale; poppers skip entries whose claim CAS
  // fails.  InStack keeps a block from being linked twice.

  /// Links \p BlockIdx onto the stack unless it is already linked.
  /// Does not touch FreeBlockCount.
  void pushFreeBlock(uint32_t BlockIdx);

  /// Unlinks and returns the top block index, or 0 when empty.  The caller
  /// does not own the block yet — it must still win the State CAS.
  uint32_t popFreeBlockIndex();

  /// Pops until a block is successfully claimed (State Free -> Claimed).
  /// Returns its index and decrements FreeBlockCount, or returns 0 when
  /// the stack is exhausted.
  uint32_t claimFreeBlock();

  /// Carves claimed block \p BlockIdx for \p ClassIdx, depositing its cell
  /// chains into shard \p HomeShard (whose mutex the caller holds).
  void carveClaimedBlock(uint32_t BlockIdx, unsigned ClassIdx,
                         unsigned HomeShard);

  HeapConfig Config;
  std::unique_ptr<std::atomic<uint32_t>[]> Arena;

  AtomicByteTable Colors;
  AtomicByteTable Remembered;
  CardTable Cards;
  AgeTable Ages;
  PageTouchTracker Pages;

  std::vector<BlockDescriptor> Blocks;

  /// Guards large-run placement and reclamation (rare, multi-block
  /// operations that scan the block table).  Single-block carving bypasses
  /// it via the free stack + State CAS.  Mutable so the verifier's const
  /// freeze (withBlocksLocked) can lock it.
  mutable std::mutex BlockMutex;

  /// Head of the lock-free free-block stack: (tag << 32) | block index.
  std::atomic<uint64_t> FreeStackHead{0};

  /// Central free lists: NumSizeClasses * NumShards shards, row-major by
  /// class (see shard()).
  unsigned NumShards = 1;
  /// 64 - log2(NumShards); homeShardFor's hash shift (unused at 1 shard).
  unsigned ShardShift = 64;
  std::unique_ptr<CentralShard[]> Shards;

  std::atomic<uint64_t> UsedBytes{0};
  std::atomic<uint64_t> AllocSinceGc{0};
  std::atomic<uint64_t> FreeBlockCount{0};

  std::atomic<uint64_t> Refills{0};
  std::atomic<uint64_t> Steals{0};
  std::atomic<uint64_t> Carves{0};
  std::atomic<uint64_t> Contentions{0};

  //===-- Lazy sweep ------------------------------------------------------===

  /// The installed gc-layer sweep engine, or null (eager policy).
  std::atomic<LazySweeper *> LazyHook{nullptr};

  /// Per-size-class Treiber stacks of needs-sweep block indices, linked
  /// through BlockDescriptor::NextNeedsSweep; head packs {tag, index} like
  /// FreeStackHead.  Unlike the free-block stack these entries are not
  /// hints: a block is pushed exactly once per publish and claimed by the
  /// pop + Sweep CAS in claimNeedsSweepBlock.
  std::atomic<uint64_t> NeedsSweepHeads[NumSizeClasses] = {};

  /// Guards every per-block stash in Stash.  Acquired after a shard mutex
  /// (pushFreeChain routing, the publish drain) and never held across any
  /// other lock acquisition.
  mutable std::mutex StashMutex;

  /// Per-block stashes of chains parked centrally when the block was
  /// published (one vector per block; see drainFreeListsToStashes).
  std::unique_ptr<std::vector<CellChain>[]> Stash;

  std::atomic<uint64_t> NeedsSweepBlocks{0};
  std::atomic<uint64_t> SweepingBlocks{0};
  std::atomic<uint64_t> LazyPublished{0};
  std::atomic<uint64_t> LazyMutatorSwept{0};
  std::atomic<uint64_t> LazyResidueSwept{0};
};

} // namespace gengc

#endif // GENGC_HEAP_HEAP_H

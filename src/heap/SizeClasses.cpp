//===- heap/SizeClasses.cpp - Segregated-fit size classes -----------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "heap/SizeClasses.h"

#include "heap/Ref.h"
#include "support/Assert.h"

using namespace gengc;

// Power-of-two classes interleaved with 1.5x midpoints keep worst-case
// internal fragmentation at 33% while every class stays a multiple of the
// 16-byte granule (so cell starts are granule-aligned, as the side tables
// require).
static const uint32_t ClassBytes[NumSizeClasses] = {
    16,  32,  48,   64,   96,   128,  192,  256,
    384, 512, 1024, 2048, 3072, 4096, 6144, 8192,
};

uint32_t gengc::sizeClassBytes(unsigned Index) {
  GENGC_ASSERT(Index < NumSizeClasses, "size class out of range");
  return ClassBytes[Index];
}

unsigned gengc::sizeClassFor(uint32_t Bytes) {
  if (Bytes > MaxSmallObjectBytes)
    return NumSizeClasses;
  for (unsigned I = 0; I < NumSizeClasses; ++I)
    if (ClassBytes[I] >= Bytes)
      return I;
  GENGC_UNREACHABLE("size class table does not cover MaxSmallObjectBytes");
}

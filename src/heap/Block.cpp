//===- heap/Block.cpp - 64 KiB block descriptors --------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "heap/Block.h"

using namespace gengc;

const char *gengc::blockStateName(BlockState State) {
  switch (State) {
  case BlockState::Free:
    return "free";
  case BlockState::Reserved:
    return "reserved";
  case BlockState::SizeClass:
    return "size-class";
  case BlockState::LargeStart:
    return "large-start";
  case BlockState::LargeCont:
    return "large-cont";
  case BlockState::Claimed:
    return "claimed";
  }
  return "invalid";
}

//===- heap/AgeTable.h - Per-object ages in a side table --------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The aging mechanism of Section 6 keeps, for every object, the number of
/// collections it has survived.  The paper deliberately stores ages in a
/// separate table — one byte per object — rather than in object headers:
/// sweep walks *all* ages to increment them, and touching a dense table is
/// far cheaper than touching every object in the heap.  We follow suit with
/// one byte per 16-byte granule, indexed by the object's start offset.
///
/// Convention (Section 8.5.2): objects are allocated with age 1; sweep
/// increments the age of young survivors and stops once an object reaches
/// the tenuring threshold ("oldest age").
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_HEAP_AGETABLE_H
#define GENGC_HEAP_AGETABLE_H

#include "heap/AtomicByteTable.h"
#include "heap/Ref.h"

namespace gengc {

/// Byte-per-granule age table.
class AgeTable {
public:
  /// Creates an age table covering \p HeapBytes of arena.
  explicit AgeTable(uint64_t HeapBytes);

  /// Age of the object whose header is at \p Ref.
  uint8_t ageOf(ObjectRef Ref) const {
    return Table.entryFor(Ref).load(std::memory_order_relaxed);
  }

  /// Sets the age of the object at \p Ref (mutator at creation, collector
  /// at sweep).
  void setAge(ObjectRef Ref, uint8_t Age) {
    Table.entryFor(Ref).store(Age, std::memory_order_relaxed);
  }

  /// Resets all ages to zero (tests and full-heap reinitialization).
  void clearAll() { Table.clearAll(); }

  /// Base address of the backing array, for page-touch registration.
  const void *data() const { return Table.data(); }

  /// Number of entries (one per granule).
  size_t size() const { return Table.size(); }

private:
  AtomicByteTable Table;
};

} // namespace gengc

#endif // GENGC_HEAP_AGETABLE_H

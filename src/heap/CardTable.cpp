//===- heap/CardTable.cpp - Inter-generational pointer tracking -----------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "heap/CardTable.h"

#include "support/Assert.h"
#include "support/MathExtras.h"

using namespace gengc;

CardTable::CardTable(uint64_t HeapBytes, uint32_t CardBytes)
    : Shift(log2Floor(CardBytes)), Table(HeapBytes, Shift),
      Summary((Table.size() + SummaryCards - 1) / SummaryCards, 0) {
  GENGC_ASSERT(isPowerOf2(CardBytes), "card size must be a power of two");
  GENGC_ASSERT(CardBytes >= MinCardBytes && CardBytes <= MaxCardBytes,
               "card size outside the paper's 16..4096 range");
}

size_t CardTable::countDirty() const {
  size_t Dirty = 0;
  for (size_t I = 0, E = Table.size(); I != E; ++I)
    if (Table.entry(I).load(std::memory_order_relaxed) != 0)
      ++Dirty;
  return Dirty;
}

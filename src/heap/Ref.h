//===- heap/Ref.h - Object references ---------------------------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ObjectRef is the universal object handle: a byte offset into the heap
/// arena.  Offsets (rather than raw pointers) keep references 4 bytes wide,
/// which matches the 32-bit JVM the paper measured and halves the pointer
/// footprint of the synthetic workloads.  Offset 0 is reserved as the null
/// reference; the heap never hands out the first cell of the arena.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_HEAP_REF_H
#define GENGC_HEAP_REF_H

#include <cstdint>

namespace gengc {

/// A reference to a heap object: the byte offset of the object's header
/// within the arena.  Always a multiple of the 16-byte minimum alignment.
using ObjectRef = uint32_t;

/// The null reference.  Arena offset 0 is never allocated.
inline constexpr ObjectRef NullRef = 0;

/// Objects are aligned to (and sized in multiples of) this many bytes.  The
/// paper's smallest card size, 16 bytes, is exactly one granule, which is why
/// it calls that configuration "object marking".
inline constexpr uint32_t GranuleBytes = 16;

/// log2(GranuleBytes), used for side-table indexing.
inline constexpr unsigned GranuleShift = 4;

} // namespace gengc

#endif // GENGC_HEAP_REF_H

//===- heap/Block.h - 64 KiB block descriptors ------------------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The arena is carved into 64 KiB blocks.  A block is either free, reserved
/// (block 0, so that arena offset 0 can serve as the null reference),
/// dedicated to one small-object size class, or part of a large-object run.
/// Descriptors live in a dense side array owned by the Heap; the arena
/// itself holds no block metadata, keeping sweep's page footprint on the
/// side tables (see Figure 15 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_HEAP_BLOCK_H
#define GENGC_HEAP_BLOCK_H

#include <atomic>
#include <cstdint>

namespace gengc {

/// What a block currently holds.
enum class BlockState : uint8_t {
  /// Unused; available for carving or large runs.
  Free,
  /// Permanently unused (block 0 only; reserves the null reference).
  Reserved,
  /// Carved into fixed-size cells of one size class.
  SizeClass,
  /// First block of a large-object run; the object starts at its base.
  LargeStart,
  /// Continuation block of a large-object run.
  LargeCont,
  /// Transiently claimed by a carver or a large-run placement: the winner
  /// of the CAS from Free owns the block and will publish SizeClass /
  /// LargeStart / LargeCont (or roll back to Free).  Ownership of a free
  /// block is decided by this CAS, not by membership in the free stack —
  /// stack entries are hints that may go stale (see Heap).
  Claimed,
};

/// Lazy-sweep lifecycle of a size-class block (SweepPolicy::Lazy only; under
/// the eager policy every block stays Swept).  Published by the collector's
/// PublishSweep phase, claimed via CAS by exactly one sweeper — a mutator
/// refilling its cache or a collector residue pass — and marked Swept again
/// before any of its cells re-enter a central free list.
enum class BlockSweep : uint8_t {
  /// No reclamation pending; cells may circulate through free lists.
  Swept,
  /// Published after a trace: dead cells are reclaimable, but nothing from
  /// this block may enter a central free list until it is swept under the
  /// epoch it was published with.
  NeedsSweep,
  /// Claimed by exactly one sweeper (NeedsSweep -> Sweeping CAS).
  Sweeping,
};

/// Side metadata for one 64 KiB block.
///
/// Descriptors are written under the heap's block mutex but read lock-free
/// by GC worker lanes (sweep, card scan, recolor all classify blocks by
/// State).  State is therefore atomic, and writers populate the other
/// fields *before* storing an object-holding State: a reader that observes
/// SizeClass or LargeStart through the State load is guaranteed to see the
/// matching field values.
struct BlockDescriptor {
  std::atomic<BlockState> State{BlockState::Free};
  /// Size-class index (State == SizeClass).
  uint8_t SizeClassIdx = 0;
  /// Cell size in bytes (State == SizeClass).
  uint32_t CellBytes = 0;
  /// ceil(2^32 / CellBytes): cell-index computation by multiply-shift
  /// instead of division (exact for block offsets below 2^16).  The card
  /// scan does this once per dirty card, which makes division measurable.
  uint32_t CellRecip = 0;
  /// Number of usable cells (State == SizeClass).  The tail of the block is
  /// unused when CellBytes does not divide the block size.
  uint32_t NumCells = 0;
  /// Requested object size in bytes (State == LargeStart).
  uint32_t LargeBytes = 0;
  /// Number of blocks in the run (State == LargeStart).
  uint32_t RunBlocks = 0;
  /// Block index of the run's first block (State == LargeCont).
  uint32_t RunStart = 0;

  /// Home shard of this block's cells (State == SizeClass): the central-
  /// list shard carving deposited its chains into, and the shard sweep
  /// returns freed cells to, so sweep-to-alloc transfers stay with the
  /// mutators that populated the block.
  uint8_t HomeShard = 0;

  /// Intrusive link of the heap's lock-free free-block stack (the block
  /// index below this one on the stack; 0 terminates, block 0 is
  /// reserved).  Only meaningful while InStack is set.
  std::atomic<uint32_t> NextFree{0};

  /// Whether this block's index is currently linked into the free stack.
  /// Guards against double-linking: a block claimed out from under a stale
  /// stack entry keeps the entry until a pop consumes it.
  std::atomic<uint8_t> InStack{0};

  /// Lazy-sweep state (BlockSweep values; stored as the raw byte so the
  /// claim CAS can run on any thread).  Transitions: Swept -> NeedsSweep
  /// (collector publish, release store after SweepEpoch), NeedsSweep ->
  /// Sweeping (claim CAS; sole claim path is Heap::claimNeedsSweepBlock),
  /// Sweeping -> Swept (release store *before* the claimant pushes the
  /// block's cells, so a chain observed in a central list always belongs to
  /// a swept block).
  std::atomic<uint8_t> Sweep{uint8_t(BlockSweep::Swept)};

  /// Color-toggle epoch (CollectorState::ColorEpoch) this block was
  /// published under.  A needs-sweep block must be swept before the next
  /// toggle: the sweep interprets the clear color the publish fixed, so the
  /// verifier checks SweepEpoch == ColorEpoch for every unswept block.
  std::atomic<uint32_t> SweepEpoch{0};

  /// Intrusive link of the per-size-class needs-sweep stack (block index;
  /// 0 terminates).  Written by the publisher before the block is pushed,
  /// stable until the pop that claims it.
  std::atomic<uint32_t> NextNeedsSweep{0};

  /// True if this block contains allocatable objects.
  bool holdsObjects() const {
    return State == BlockState::SizeClass || State == BlockState::LargeStart;
  }
};

/// Returns a printable name of \p State for diagnostics.
const char *blockStateName(BlockState State);

} // namespace gengc

#endif // GENGC_HEAP_BLOCK_H

//===- heap/Block.h - 64 KiB block descriptors ------------------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The arena is carved into 64 KiB blocks.  A block is either free, reserved
/// (block 0, so that arena offset 0 can serve as the null reference),
/// dedicated to one small-object size class, or part of a large-object run.
/// Descriptors live in a dense side array owned by the Heap; the arena
/// itself holds no block metadata, keeping sweep's page footprint on the
/// side tables (see Figure 15 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_HEAP_BLOCK_H
#define GENGC_HEAP_BLOCK_H

#include <atomic>
#include <cstdint>

namespace gengc {

/// What a block currently holds.
enum class BlockState : uint8_t {
  /// Unused; available for carving or large runs.
  Free,
  /// Permanently unused (block 0 only; reserves the null reference).
  Reserved,
  /// Carved into fixed-size cells of one size class.
  SizeClass,
  /// First block of a large-object run; the object starts at its base.
  LargeStart,
  /// Continuation block of a large-object run.
  LargeCont,
};

/// Side metadata for one 64 KiB block.
///
/// Descriptors are written under the heap's block mutex but read lock-free
/// by GC worker lanes (sweep, card scan, recolor all classify blocks by
/// State).  State is therefore atomic, and writers populate the other
/// fields *before* storing an object-holding State: a reader that observes
/// SizeClass or LargeStart through the State load is guaranteed to see the
/// matching field values.
struct BlockDescriptor {
  std::atomic<BlockState> State{BlockState::Free};
  /// Size-class index (State == SizeClass).
  uint8_t SizeClassIdx = 0;
  /// Cell size in bytes (State == SizeClass).
  uint32_t CellBytes = 0;
  /// ceil(2^32 / CellBytes): cell-index computation by multiply-shift
  /// instead of division (exact for block offsets below 2^16).  The card
  /// scan does this once per dirty card, which makes division measurable.
  uint32_t CellRecip = 0;
  /// Number of usable cells (State == SizeClass).  The tail of the block is
  /// unused when CellBytes does not divide the block size.
  uint32_t NumCells = 0;
  /// Requested object size in bytes (State == LargeStart).
  uint32_t LargeBytes = 0;
  /// Number of blocks in the run (State == LargeStart).
  uint32_t RunBlocks = 0;
  /// Block index of the run's first block (State == LargeCont).
  uint32_t RunStart = 0;

  /// True if this block contains allocatable objects.
  bool holdsObjects() const {
    return State == BlockState::SizeClass || State == BlockState::LargeStart;
  }
};

/// Returns a printable name of \p State for diagnostics.
const char *blockStateName(BlockState State);

} // namespace gengc

#endif // GENGC_HEAP_BLOCK_H

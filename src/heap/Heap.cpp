//===- heap/Heap.cpp - Non-moving segmented heap ---------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "heap/Heap.h"

#include "support/MathExtras.h"

using namespace gengc;

Heap::Heap(const HeapConfig &Config)
    : Config(Config), Arena(new std::atomic<uint32_t>[Config.HeapBytes >> 2]),
      Colors(Config.HeapBytes, GranuleShift),
      Remembered(Config.HeapBytes, GranuleShift),
      Cards(Config.HeapBytes, Config.CardBytes), Ages(Config.HeapBytes),
      Blocks(Config.HeapBytes >> BlockShift) {
  GENGC_ASSERT(Config.HeapBytes >= 2 * BlockBytes,
               "heap needs at least two blocks (one is reserved)");
  GENGC_ASSERT((Config.HeapBytes & (BlockBytes - 1)) == 0,
               "heap size must be a multiple of the block size");

  // The arena contents start undefined but the chain links are read with
  // plain loads, so scrub word 0 of every granule defensively in debug
  // builds only?  No: free-list links are always written before being read
  // (carveBlockLocked below), so no arena initialization is required.

  // Block 0 is reserved so that arena offset 0 can act as the null
  // reference.
  Blocks[0].State = BlockState::Reserved;
  for (uint32_t I = 1; I < Blocks.size(); ++I)
    FreeBlocks.push_back(I);
  // Pop from the back; keep low addresses used first for determinism.
  for (size_t I = 0, J = FreeBlocks.size(); I + 1 < J; ++I, --J)
    std::swap(FreeBlocks[I], FreeBlocks[J - 1]);
  FreeBlockCount.store(FreeBlocks.size(), std::memory_order_relaxed);

  Pages.registerRegion(Region::Arena, Config.HeapBytes);
  Pages.registerRegion(Region::ColorTable, Colors.size());
  Pages.registerRegion(Region::CardTable, Cards.numCards());
  Pages.registerRegion(Region::CardSummary, Cards.numSummaryChunks());
  Pages.registerRegion(Region::AgeTable, Ages.size());
  Pages.setEnabled(Config.TrackPages);
}

Heap::~Heap() = default;

bool Heap::carveBlockLocked(unsigned ClassIdx) {
  if (FreeBlocks.empty())
    return false;
  uint32_t BlockIdx = FreeBlocks.back();
  FreeBlocks.pop_back();
  FreeBlockCount.fetch_sub(1, std::memory_order_relaxed);

  BlockDescriptor &Desc = Blocks[BlockIdx];
  // Fields first, State last: GC lanes read descriptors lock-free and are
  // promised valid fields once they observe an object-holding State.
  Desc.SizeClassIdx = uint8_t(ClassIdx);
  Desc.CellBytes = sizeClassBytes(ClassIdx);
  Desc.CellRecip = uint32_t(divideCeil(1ull << 32, Desc.CellBytes));
  Desc.NumCells = uint32_t(BlockBytes / Desc.CellBytes);
  Desc.State.store(BlockState::SizeClass, std::memory_order_release);

  // Thread all cells into chains of at most ChainCells and queue them.
  uint64_t Base = uint64_t(BlockIdx) << BlockShift;
  CentralList &List = Lists[ClassIdx];
  CellChain Chain;
  for (uint32_t Cell = Desc.NumCells; Cell-- > 0;) {
    ObjectRef Ref = ObjectRef(Base + uint64_t(Cell) * Desc.CellBytes);
    setChainNext(Ref, Chain.Head);
    Chain.Head = Ref;
    if (++Chain.Count == Config.ChainCells) {
      List.Chains.push_back(Chain);
      Chain = CellChain();
    }
  }
  if (Chain.Count != 0)
    List.Chains.push_back(Chain);
  return true;
}

Heap::CellChain Heap::popFreeChain(unsigned ClassIdx) {
  GENGC_ASSERT(ClassIdx < NumSizeClasses, "size class out of range");
  CentralList &List = Lists[ClassIdx];
  CellChain Chain;
  {
    std::scoped_lock Locked(List.Mutex);
    if (List.Chains.empty()) {
      std::scoped_lock BlocksLocked(BlockMutex);
      if (!carveBlockLocked(ClassIdx))
        return CellChain();
    }
    Chain = List.Chains.back();
    List.Chains.pop_back();
  }
  uint64_t Bytes = uint64_t(Chain.Count) * sizeClassBytes(ClassIdx);
  UsedBytes.fetch_add(Bytes, std::memory_order_relaxed);
  AllocSinceGc.fetch_add(Bytes, std::memory_order_relaxed);
  return Chain;
}

void Heap::pushFreeChain(unsigned ClassIdx, CellChain Chain) {
  GENGC_ASSERT(ClassIdx < NumSizeClasses, "size class out of range");
  if (Chain.Count == 0)
    return;
  uint64_t Bytes = uint64_t(Chain.Count) * sizeClassBytes(ClassIdx);
  {
    CentralList &List = Lists[ClassIdx];
    std::scoped_lock Locked(List.Mutex);
    List.Chains.push_back(Chain);
  }
  // UsedBytes can transiently underflow-race with popFreeChain only in the
  // sense of ordinary relaxed-counter imprecision; totals stay consistent.
  UsedBytes.fetch_sub(Bytes, std::memory_order_relaxed);
}

ObjectRef Heap::allocateLarge(uint32_t Bytes) {
  GENGC_ASSERT(Bytes > MaxSmallObjectBytes, "large alloc below threshold");
  uint32_t Needed = uint32_t(divideCeil(Bytes, BlockBytes));
  std::scoped_lock Locked(BlockMutex);

  // First-fit scan for a contiguous run of free blocks.  Linear in the
  // number of blocks, but large allocations are rare in all workloads.
  uint32_t RunStart = 0, RunLen = 0;
  for (uint32_t I = 1; I < Blocks.size(); ++I) {
    if (Blocks[I].State != BlockState::Free) {
      RunLen = 0;
      continue;
    }
    if (RunLen == 0)
      RunStart = I;
    if (++RunLen == Needed)
      break;
  }
  if (RunLen < Needed)
    return NullRef;

  for (uint32_t I = RunStart; I < RunStart + Needed; ++I) {
    BlockDescriptor &Desc = Blocks[I];
    // Fields first, State last (same lock-free reader contract as carving).
    Desc.LargeBytes = I == RunStart ? Bytes : 0;
    Desc.RunBlocks = I == RunStart ? Needed : 0;
    Desc.RunStart = RunStart;
    Desc.State.store(I == RunStart ? BlockState::LargeStart
                                   : BlockState::LargeCont,
                     std::memory_order_release);
  }

  // Remove the run's blocks from the free list.
  std::erase_if(FreeBlocks, [&](uint32_t B) {
    return B >= RunStart && B < RunStart + Needed;
  });
  FreeBlockCount.store(FreeBlocks.size(), std::memory_order_relaxed);

  uint64_t RunBytes = uint64_t(Needed) * BlockBytes;
  UsedBytes.fetch_add(RunBytes, std::memory_order_relaxed);
  AllocSinceGc.fetch_add(RunBytes, std::memory_order_relaxed);
  return ObjectRef(uint64_t(RunStart) << BlockShift);
}

void Heap::freeLargeRun(uint32_t BlockIdx) {
  std::scoped_lock Locked(BlockMutex);
  BlockDescriptor &Start = Blocks[BlockIdx];
  GENGC_ASSERT(Start.State == BlockState::LargeStart,
               "freeLargeRun on a non-run block");
  uint32_t Run = Start.RunBlocks;
  // Scrub the run's dirty cards: the object is garbage, so no mutator can
  // be marking them, and leaving them set would make freed space look
  // scan-worthy to the allocated-range card-scan filter's linear fallback
  // while the summary path (correctly) skips it.  Summary bytes stay set —
  // a chunk can straddle the run boundary and guard a neighbor's cards.
  Cards.clearCardsOverRange(uint64_t(BlockIdx) << BlockShift,
                            uint64_t(BlockIdx + Run) << BlockShift);
  for (uint32_t I = BlockIdx; I < BlockIdx + Run; ++I) {
    BlockDescriptor &Desc = Blocks[I];
    Desc.LargeBytes = 0;
    Desc.RunBlocks = 0;
    Desc.RunStart = 0;
    Desc.State.store(BlockState::Free, std::memory_order_release);
    FreeBlocks.push_back(I);
  }
  FreeBlockCount.store(FreeBlocks.size(), std::memory_order_relaxed);
  UsedBytes.fetch_sub(uint64_t(Run) * BlockBytes, std::memory_order_relaxed);
}

uint32_t Heap::storageBytesOf(ObjectRef Ref) const {
  const BlockDescriptor &Desc = Blocks[blockIndexOf(Ref)];
  switch (Desc.State) {
  case BlockState::SizeClass:
    return Desc.CellBytes;
  case BlockState::LargeStart:
    return uint32_t(uint64_t(Desc.RunBlocks) * BlockBytes);
  case BlockState::LargeCont:
  case BlockState::Free:
  case BlockState::Reserved:
    break;
  }
  GENGC_UNREACHABLE("storageBytesOf on a ref outside any object block");
}

size_t Heap::countAllocatedCards() const {
  size_t CardsPerBlock = size_t(BlockBytes / Cards.cardBytes());
  size_t Allocated = 0;
  for (const BlockDescriptor &Desc : Blocks)
    if (Desc.State != BlockState::Free && Desc.State != BlockState::Reserved)
      Allocated += CardsPerBlock;
  return Allocated;
}

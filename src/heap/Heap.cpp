//===- heap/Heap.cpp - Non-moving segmented heap ---------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "heap/Heap.h"

#include <thread>

#include "support/MathExtras.h"

using namespace gengc;

/// Resolves HeapConfig::AllocShards: 0 means "size from the machine",
/// rounded up to a power of two and capped so HomeShard fits its byte.
static unsigned resolveShardCount(uint32_t Configured) {
  if (Configured != 0) {
    GENGC_ASSERT(isPowerOf2(uint64_t(Configured)) && Configured <= 256,
                 "AllocShards must be a power of two in [1, 256]");
    return Configured;
  }
  unsigned Cores = std::thread::hardware_concurrency();
  if (Cores < 2)
    return 1;
  unsigned Shards = 1;
  while (Shards < Cores && Shards < 64)
    Shards <<= 1;
  return Shards;
}

Heap::Heap(const HeapConfig &Config)
    : Config(Config), Arena(new std::atomic<uint32_t>[Config.HeapBytes >> 2]),
      Colors(Config.HeapBytes, GranuleShift),
      Remembered(Config.HeapBytes, GranuleShift),
      Cards(Config.HeapBytes, Config.CardBytes), Ages(Config.HeapBytes),
      Blocks(Config.HeapBytes >> BlockShift) {
  GENGC_ASSERT(Config.HeapBytes >= 2 * BlockBytes,
               "heap needs at least two blocks (one is reserved)");
  GENGC_ASSERT((Config.HeapBytes & (BlockBytes - 1)) == 0,
               "heap size must be a multiple of the block size");

  NumShards = resolveShardCount(Config.AllocShards);
  ShardShift = 64;
  for (unsigned S = NumShards; S > 1; S >>= 1)
    --ShardShift;
  Shards.reset(new CentralShard[size_t(NumSizeClasses) * NumShards]);
  Stash.reset(new std::vector<CellChain>[Blocks.size()]);

  // The arena contents start undefined but the chain links are read with
  // plain loads, so scrub word 0 of every granule defensively in debug
  // builds only?  No: free-list links are always written before being read
  // (carveClaimedBlock below), so no arena initialization is required.

  // Block 0 is reserved so that arena offset 0 can act as the null
  // reference.  Push the rest highest-first so pops come out in ascending
  // address order (low addresses used first, for determinism).
  Blocks[0].State = BlockState::Reserved;
  for (uint32_t I = uint32_t(Blocks.size()); I-- > 1;)
    pushFreeBlock(I);
  FreeBlockCount.store(Blocks.size() - 1, std::memory_order_relaxed);

  Pages.registerRegion(Region::Arena, Config.HeapBytes);
  Pages.registerRegion(Region::ColorTable, Colors.size());
  Pages.registerRegion(Region::CardTable, Cards.numCards());
  Pages.registerRegion(Region::CardSummary, Cards.numSummaryChunks());
  Pages.registerRegion(Region::AgeTable, Ages.size());
  Pages.setEnabled(Config.TrackPages);
}

Heap::~Heap() = default;

//===----------------------------------------------------------------------===//
// Lock-free free-block stack.
//===----------------------------------------------------------------------===//

void Heap::pushFreeBlock(uint32_t BlockIdx) {
  BlockDescriptor &Desc = Blocks[BlockIdx];
  uint8_t NotLinked = 0;
  // A stale entry (left behind by an in-place large-run claim) still names
  // this block; one entry per block is enough for poppers to find it.
  //
  // The InStack handshake is seq_cst on both sides (here and in
  // popFreeBlockIndex) to close a lost-block window: the pusher stores
  // State=Free then reads InStack, the popper clears InStack then CASes
  // State.  With weaker orders both could use stale values (store-load
  // reordering) — push no-ops against an entry already unlinked AND the
  // popper's claim misses the new Free state — stranding the block.  The
  // single total order of seq_cst operations makes one side see the other.
  if (!Desc.InStack.compare_exchange_strong(NotLinked, 1,
                                            std::memory_order_seq_cst,
                                            std::memory_order_seq_cst))
    return;
  uint64_t Head = FreeStackHead.load(std::memory_order_acquire);
  for (;;) {
    Desc.NextFree.store(uint32_t(Head), std::memory_order_relaxed);
    uint64_t NewHead = ((Head >> 32) + 1) << 32 | BlockIdx;
    if (FreeStackHead.compare_exchange_weak(Head, NewHead,
                                            std::memory_order_release,
                                            std::memory_order_acquire))
      return;
  }
}

uint32_t Heap::popFreeBlockIndex() {
  uint64_t Head = FreeStackHead.load(std::memory_order_acquire);
  for (;;) {
    uint32_t Idx = uint32_t(Head);
    if (Idx == 0)
      return 0;
    // The next link may be concurrently rewritten by a popper re-pushing
    // the block; the tagged-head CAS below fails in that case, so a torn
    // read is never installed.
    uint32_t Next = Blocks[Idx].NextFree.load(std::memory_order_relaxed);
    uint64_t NewHead = ((Head >> 32) + 1) << 32 | Next;
    if (FreeStackHead.compare_exchange_weak(Head, NewHead,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
      Blocks[Idx].InStack.store(0, std::memory_order_seq_cst);
      return Idx;
    }
  }
}

uint32_t Heap::claimFreeBlock() {
  for (;;) {
    uint32_t Idx = popFreeBlockIndex();
    if (Idx == 0)
      return 0;
    BlockState Free = BlockState::Free;
    if (Blocks[Idx].State.compare_exchange_strong(Free, BlockState::Claimed,
                                                  std::memory_order_seq_cst,
                                                  std::memory_order_seq_cst)) {
      FreeBlockCount.fetch_sub(1, std::memory_order_relaxed);
      return Idx;
    }
    // Stale entry: the block was claimed in place by large-run placement.
    // Drop it and keep popping; its next free episode re-pushes it.
  }
}

//===----------------------------------------------------------------------===//
// Sharded central free lists.
//===----------------------------------------------------------------------===//

void Heap::carveClaimedBlock(uint32_t BlockIdx, unsigned ClassIdx,
                             unsigned HomeShard) {
  BlockDescriptor &Desc = Blocks[BlockIdx];
  // Fields first, State last: GC lanes read descriptors lock-free and are
  // promised valid fields once they observe an object-holding State.
  Desc.SizeClassIdx = uint8_t(ClassIdx);
  Desc.CellBytes = sizeClassBytes(ClassIdx);
  Desc.CellRecip = uint32_t(divideCeil(1ull << 32, Desc.CellBytes));
  Desc.NumCells = uint32_t(BlockBytes / Desc.CellBytes);
  Desc.HomeShard = uint8_t(HomeShard);
  Desc.State.store(BlockState::SizeClass, std::memory_order_release);

  // Thread all cells into chains of at most ChainCells and queue them on
  // the home shard (whose mutex the caller holds).
  uint64_t Base = uint64_t(BlockIdx) << BlockShift;
  CentralShard &Sh = shard(ClassIdx, HomeShard);
  CellChain Chain;
  for (uint32_t Cell = Desc.NumCells; Cell-- > 0;) {
    ObjectRef Ref = ObjectRef(Base + uint64_t(Cell) * Desc.CellBytes);
    setChainNext(Ref, Chain.Head);
    Chain.Head = Ref;
    if (++Chain.Count == Config.ChainCells) {
      Sh.Chains.push_back(Chain);
      Chain = CellChain();
    }
  }
  if (Chain.Count != 0)
    Sh.Chains.push_back(Chain);
}

Heap::CellChain Heap::popFreeChain(unsigned ClassIdx, unsigned HomeShard) {
  CellChain Chain;
  popFreeChains(ClassIdx, HomeShard, 1, &Chain);
  return Chain;
}

unsigned Heap::popFreeChains(unsigned ClassIdx, unsigned HomeShard,
                             unsigned MaxChains, CellChain *Out,
                             RefillStats *Stats) {
  GENGC_ASSERT(ClassIdx < NumSizeClasses, "size class out of range");
  GENGC_ASSERT(HomeShard < NumShards && MaxChains >= 1,
               "refill shard/batch out of range");
  unsigned Taken = 0;

  // Takes up to MaxChains - Taken chains from the back of Sh's inventory.
  // The shard's mutex must be held.
  auto TakeLocked = [&](CentralShard &Sh, unsigned Limit) {
    while (Taken < Limit && !Sh.Chains.empty()) {
      Out[Taken++] = Sh.Chains.back();
      Sh.Chains.pop_back();
    }
  };

  {
    CentralShard &Home = shard(ClassIdx, HomeShard);
    std::unique_lock Locked(Home.Mutex, std::try_to_lock);
    if (!Locked.owns_lock()) {
      if (Stats)
        Stats->Contended = true;
      Contentions.fetch_add(1, std::memory_order_relaxed);
      Locked.lock();
    }
    TakeLocked(Home, MaxChains);
  }

  if (Taken == 0 && NumShards > 1) {
    // Home shard dry: probe the neighbors in ring order.  Bounded steal —
    // at most half a victim's inventory — so a refill storm from one dry
    // shard cannot strip a busy neighbor bare.
    for (unsigned Offset = 1; Offset < NumShards && Taken == 0; ++Offset) {
      unsigned Victim = (HomeShard + Offset) & (NumShards - 1);
      CentralShard &Sh = shard(ClassIdx, Victim);
      std::scoped_lock Locked(Sh.Mutex);
      if (Stats)
        ++Stats->ShardsProbed;
      unsigned Budget = unsigned(Sh.Chains.size() + 1) / 2;
      TakeLocked(Sh, std::min(MaxChains, std::max(Budget, 1u)));
      if (Taken != 0 && Stats)
        Stats->StolenFrom = int32_t(Victim);
    }
    if (Taken != 0)
      Steals.fetch_add(1, std::memory_order_relaxed);
  }

  if (Taken == 0) {
    // Lazy sweep: before growing the heap's footprint, reclaim a block the
    // last cycle published as needs-sweep.  The engine deposits the block's
    // freed cells into the caller's home shard, where the re-take below is
    // the first to look; a swept block can still yield nothing (every cell
    // live, or a racing refill took the deposit), so keep claiming until
    // chains appear or the class's needs-sweep stock is dry.  Exhaustion —
    // returning 0 below — is therefore only declared once lazy reclamation
    // has nothing left either.
    if (LazySweeper *Lazy = LazyHook.load(std::memory_order_acquire)) {
      while (Taken == 0 && Lazy->sweepOneBlockFor(ClassIdx, HomeShard)) {
        if (Stats)
          ++Stats->LazySwept;
        CentralShard &Home = shard(ClassIdx, HomeShard);
        std::scoped_lock Locked(Home.Mutex);
        TakeLocked(Home, MaxChains);
      }
    }
  }

  if (Taken == 0) {
    // Every shard is empty: carve a fresh block into the home shard.  The
    // shard lock is re-taken first and the inventory re-checked, so two
    // racing refills of the same shard carve at most one block between
    // them.  Block claim itself is lock-free (BlockMutex stays cold).
    CentralShard &Home = shard(ClassIdx, HomeShard);
    std::scoped_lock Locked(Home.Mutex);
    if (Home.Chains.empty()) {
      uint32_t BlockIdx = claimFreeBlock();
      if (BlockIdx == 0)
        return 0;
      carveClaimedBlock(BlockIdx, ClassIdx, HomeShard);
      Carves.fetch_add(1, std::memory_order_relaxed);
      if (Stats)
        Stats->Carved = true;
    }
    TakeLocked(Home, MaxChains);
  }

  uint64_t Cells = 0;
  for (unsigned I = 0; I < Taken; ++I)
    Cells += Out[I].Count;
  uint64_t Bytes = Cells * sizeClassBytes(ClassIdx);
  UsedBytes.fetch_add(Bytes, std::memory_order_relaxed);
  AllocSinceGc.fetch_add(Bytes, std::memory_order_relaxed);
  Refills.fetch_add(1, std::memory_order_relaxed);
  return Taken;
}

void Heap::pushFreeChain(unsigned ClassIdx, CellChain Chain,
                         unsigned HomeShard) {
  GENGC_ASSERT(ClassIdx < NumSizeClasses, "size class out of range");
  GENGC_ASSERT(HomeShard < NumShards, "shard out of range");
  if (Chain.Count == 0)
    return;
  uint64_t Bytes = uint64_t(Chain.Count) * sizeClassBytes(ClassIdx);
  if (LazyHook.load(std::memory_order_relaxed) != nullptr) {
    // Deferred-sweep routing: a chain whose block is published (or mid-
    // sweep) must not re-enter the central lists until the block is swept —
    // park it in the block's stash instead; the claimant re-deposits it.
    // Under the lazy policy every chain is single-block (carve and the
    // per-block sweep both produce such chains, and thread caches only ever
    // shorten them), so the head cell identifies the chain's block.  The
    // re-check under StashMutex pairs with the claimant's markBlockSwept-
    // before-takePendingStash order: an append the claimant's take misses
    // can only happen after the take released StashMutex, by which point
    // this re-check observes Swept and pushes normally.
    const BlockDescriptor &Desc = Blocks[blockIndexOf(Chain.Head)];
    if (Desc.Sweep.load(std::memory_order_acquire) !=
        uint8_t(BlockSweep::Swept)) {
      std::scoped_lock Locked(StashMutex);
      if (Desc.Sweep.load(std::memory_order_acquire) !=
          uint8_t(BlockSweep::Swept)) {
        Stash[blockIndexOf(Chain.Head)].push_back(Chain);
        UsedBytes.fetch_sub(Bytes, std::memory_order_relaxed);
        return;
      }
    }
  }
  {
    CentralShard &Sh = shard(ClassIdx, HomeShard);
    std::scoped_lock Locked(Sh.Mutex);
    Sh.Chains.push_back(Chain);
  }
  // UsedBytes can transiently underflow-race with popFreeChains only in the
  // sense of ordinary relaxed-counter imprecision; totals stay consistent.
  UsedBytes.fetch_sub(Bytes, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Lazy sweep (SweepPolicy::Lazy).
//===----------------------------------------------------------------------===//

void Heap::publishNeedsSweep(uint32_t BlockIdx, uint32_t Epoch) {
  BlockDescriptor &Desc = Blocks[BlockIdx];
  GENGC_ASSERT(Desc.State.load(std::memory_order_acquire) ==
                   BlockState::SizeClass,
               "publishNeedsSweep on a non-size-class block");
  GENGC_ASSERT(Desc.Sweep.load(std::memory_order_acquire) ==
                   uint8_t(BlockSweep::Swept),
               "publishNeedsSweep on an already-published block");
  // Epoch before state: a reader that observes NeedsSweep sees the epoch
  // the block must be swept under.
  Desc.SweepEpoch.store(Epoch, std::memory_order_relaxed);
  Desc.Sweep.store(uint8_t(BlockSweep::NeedsSweep), std::memory_order_release);
}

void Heap::enqueueNeedsSweep(uint32_t BlockIdx) {
  BlockDescriptor &Desc = Blocks[BlockIdx];
  std::atomic<uint64_t> &Head = NeedsSweepHeads[Desc.SizeClassIdx];
  uint64_t H = Head.load(std::memory_order_acquire);
  for (;;) {
    Desc.NextNeedsSweep.store(uint32_t(H), std::memory_order_relaxed);
    uint64_t NewHead = ((H >> 32) + 1) << 32 | BlockIdx;
    if (Head.compare_exchange_weak(H, NewHead, std::memory_order_release,
                                   std::memory_order_acquire))
      break;
  }
  NeedsSweepBlocks.fetch_add(1, std::memory_order_release);
  LazyPublished.fetch_add(1, std::memory_order_relaxed);
}

uint32_t Heap::claimNeedsSweepBlock(unsigned ClassIdx) {
  GENGC_ASSERT(ClassIdx < NumSizeClasses, "size class out of range");
  std::atomic<uint64_t> &Head = NeedsSweepHeads[ClassIdx];
  uint64_t H = Head.load(std::memory_order_acquire);
  for (;;) {
    uint32_t Idx = uint32_t(H);
    if (Idx == 0)
      return 0;
    uint32_t Next = Blocks[Idx].NextNeedsSweep.load(std::memory_order_relaxed);
    uint64_t NewHead = ((H >> 32) + 1) << 32 | Next;
    if (!Head.compare_exchange_weak(H, NewHead, std::memory_order_acq_rel,
                                    std::memory_order_acquire))
      continue;
    // The pop hands this thread the sole claim path for the block, so the
    // CAS below can fail only against a protocol bug; treat a failure
    // defensively by skipping the entry.
    uint8_t Expected = uint8_t(BlockSweep::NeedsSweep);
    if (!Blocks[Idx].Sweep.compare_exchange_strong(
            Expected, uint8_t(BlockSweep::Sweeping),
            std::memory_order_acq_rel, std::memory_order_acquire)) {
      H = Head.load(std::memory_order_acquire);
      continue;
    }
    SweepingBlocks.fetch_add(1, std::memory_order_release);
    NeedsSweepBlocks.fetch_sub(1, std::memory_order_release);
    return Idx;
  }
}

void Heap::markBlockSwept(uint32_t BlockIdx) {
  GENGC_ASSERT(Blocks[BlockIdx].Sweep.load(std::memory_order_acquire) ==
                   uint8_t(BlockSweep::Sweeping),
               "markBlockSwept on an unclaimed block");
  Blocks[BlockIdx].Sweep.store(uint8_t(BlockSweep::Swept),
                               std::memory_order_release);
}

void Heap::finishBlockSweep(bool MutatorContext) {
  (MutatorContext ? LazyMutatorSwept : LazyResidueSwept)
      .fetch_add(1, std::memory_order_relaxed);
  // acq_rel: the residue drain spins on sweepingBlockCount() == 0 before
  // the collector toggles colors, and must observe everything this sweep
  // deposited.
  SweepingBlocks.fetch_sub(1, std::memory_order_acq_rel);
}

void Heap::drainFreeListsToStashes() {
  for (unsigned ClassIdx = 0; ClassIdx < NumSizeClasses; ++ClassIdx) {
    for (unsigned S = 0; S < NumShards; ++S) {
      CentralShard &Sh = shard(ClassIdx, S);
      std::scoped_lock Locked(Sh.Mutex);
      size_t Keep = 0;
      for (size_t I = 0; I < Sh.Chains.size(); ++I) {
        CellChain Chain = Sh.Chains[I];
        uint32_t BlockIdx = blockIndexOf(Chain.Head);
        if (Blocks[BlockIdx].Sweep.load(std::memory_order_acquire) !=
            uint8_t(BlockSweep::Swept)) {
          std::scoped_lock StashLocked(StashMutex);
          Stash[BlockIdx].push_back(Chain);
        } else {
          Sh.Chains[Keep++] = Chain;
        }
      }
      Sh.Chains.resize(Keep);
    }
  }
}

std::vector<Heap::CellChain> Heap::takePendingStash(uint32_t BlockIdx) {
  std::scoped_lock Locked(StashMutex);
  std::vector<CellChain> Taken = std::move(Stash[BlockIdx]);
  Stash[BlockIdx].clear();
  return Taken;
}

void Heap::repushFreeChain(unsigned ClassIdx, CellChain Chain,
                           unsigned HomeShard) {
  GENGC_ASSERT(ClassIdx < NumSizeClasses && HomeShard < NumShards,
               "repush shard/class out of range");
  if (Chain.Count == 0)
    return;
  CentralShard &Sh = shard(ClassIdx, HomeShard);
  std::scoped_lock Locked(Sh.Mutex);
  Sh.Chains.push_back(Chain);
}

bool Heap::freeChainParked(unsigned ClassIdx, unsigned Shard,
                           ObjectRef Head) const {
  const CentralShard &Sh = shard(ClassIdx, Shard);
  std::scoped_lock Locked(Sh.Mutex);
  for (const CellChain &Chain : Sh.Chains)
    if (Chain.Head == Head)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Large objects (whole-block runs).
//===----------------------------------------------------------------------===//

ObjectRef Heap::allocateLarge(uint32_t Bytes) {
  GENGC_ASSERT(Bytes > MaxSmallObjectBytes, "large alloc below threshold");
  uint32_t Needed = uint32_t(divideCeil(Bytes, BlockBytes));
  std::scoped_lock Locked(BlockMutex);

  // First-fit scan for a contiguous run of free blocks.  Linear in the
  // number of blocks, but large allocations are rare in all workloads.
  // BlockMutex serializes large allocations against each other; racing
  // single-block carvers are excluded per block by the Free -> Claimed
  // CAS: every block of the run is claimed in place (its free-stack entry
  // goes stale) and rolled back if a later block of the run is lost.
  uint32_t RunStart = 0, RunLen = 0;
  auto RollBack = [&] {
    // Re-push after unclaiming: a popper may have consumed the block's
    // stale stack entry (and given up) while we held it Claimed, so the
    // entry cannot be assumed to still exist.  seq_cst store pairs with
    // the popper-side handshake (see pushFreeBlock).
    for (uint32_t I = RunStart; I < RunStart + RunLen; ++I) {
      Blocks[I].State.store(BlockState::Free, std::memory_order_seq_cst);
      pushFreeBlock(I);
    }
    RunLen = 0;
  };
  for (uint32_t I = 1; I < Blocks.size(); ++I) {
    BlockState Free = BlockState::Free;
    if (!Blocks[I].State.compare_exchange_strong(Free, BlockState::Claimed,
                                                 std::memory_order_seq_cst,
                                                 std::memory_order_seq_cst)) {
      RollBack();
      continue;
    }
    if (RunLen == 0)
      RunStart = I;
    if (++RunLen == Needed)
      break;
  }
  if (RunLen < Needed) {
    RollBack();
    return NullRef;
  }

  for (uint32_t I = RunStart; I < RunStart + Needed; ++I) {
    BlockDescriptor &Desc = Blocks[I];
    // Fields first, State last (same lock-free reader contract as carving).
    Desc.LargeBytes = I == RunStart ? Bytes : 0;
    Desc.RunBlocks = I == RunStart ? Needed : 0;
    Desc.RunStart = RunStart;
    Desc.State.store(I == RunStart ? BlockState::LargeStart
                                   : BlockState::LargeCont,
                     std::memory_order_release);
  }
  FreeBlockCount.fetch_sub(Needed, std::memory_order_relaxed);

  uint64_t RunBytes = uint64_t(Needed) * BlockBytes;
  UsedBytes.fetch_add(RunBytes, std::memory_order_relaxed);
  AllocSinceGc.fetch_add(RunBytes, std::memory_order_relaxed);
  return ObjectRef(uint64_t(RunStart) << BlockShift);
}

void Heap::freeLargeRun(uint32_t BlockIdx) {
  std::scoped_lock Locked(BlockMutex);
  BlockDescriptor &Start = Blocks[BlockIdx];
  GENGC_ASSERT(Start.State == BlockState::LargeStart,
               "freeLargeRun on a non-run block");
  uint32_t Run = Start.RunBlocks;
  // Scrub the run's dirty cards: the object is garbage, so no mutator can
  // be marking them, and leaving them set would make freed space look
  // scan-worthy to the allocated-range card-scan filter's linear fallback
  // while the summary path (correctly) skips it.  Summary bytes stay set —
  // a chunk can straddle the run boundary and guard a neighbor's cards.
  Cards.clearCardsOverRange(uint64_t(BlockIdx) << BlockShift,
                            uint64_t(BlockIdx + Run) << BlockShift);
  for (uint32_t I = BlockIdx; I < BlockIdx + Run; ++I) {
    BlockDescriptor &Desc = Blocks[I];
    Desc.LargeBytes = 0;
    Desc.RunBlocks = 0;
    Desc.RunStart = 0;
    Desc.State.store(BlockState::Free, std::memory_order_seq_cst);
    pushFreeBlock(I);
  }
  FreeBlockCount.fetch_add(Run, std::memory_order_relaxed);
  UsedBytes.fetch_sub(uint64_t(Run) * BlockBytes, std::memory_order_relaxed);
}

uint32_t Heap::storageBytesOf(ObjectRef Ref) const {
  const BlockDescriptor &Desc = Blocks[blockIndexOf(Ref)];
  switch (Desc.State) {
  case BlockState::SizeClass:
    return Desc.CellBytes;
  case BlockState::LargeStart:
    return uint32_t(uint64_t(Desc.RunBlocks) * BlockBytes);
  case BlockState::LargeCont:
  case BlockState::Free:
  case BlockState::Reserved:
  case BlockState::Claimed:
    break;
  }
  GENGC_UNREACHABLE("storageBytesOf on a ref outside any object block");
}

size_t Heap::countAllocatedCards() const {
  size_t CardsPerBlock = size_t(BlockBytes / Cards.cardBytes());
  size_t Allocated = 0;
  for (const BlockDescriptor &Desc : Blocks)
    if (Desc.State != BlockState::Free && Desc.State != BlockState::Reserved)
      Allocated += CardsPerBlock;
  return Allocated;
}

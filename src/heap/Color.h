//===- heap/Color.h - Tri-color marking colors ------------------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five colors of the paper's collectors (Sections 2, 4 and 5):
///
///  - Blue: the cell is free (on a free list or never allocated).
///  - Gray: traced, but its sons have not been examined yet.
///  - Black: traced together with its sons.  Under the simple generational
///    promotion policy black doubles as "member of the old generation".
///  - White and Yellow: the two *toggling* colors.  One of them is the
///    current "clear color" (collected by sweep) and the other the current
///    "allocation color" (assigned to new objects); their roles swap at the
///    beginning of every collection cycle (Section 5), which removes the
///    create/sweep race of the original DLG collector.
///
/// Colors live in a side table (heap/AtomicByteTable.h) rather than in
/// object headers, mirroring the paper's locality argument for its side age
/// table and keeping sweep's page footprint small (Figure 15).
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_HEAP_COLOR_H
#define GENGC_HEAP_COLOR_H

#include <cstdint>

namespace gengc {

/// Marking colors.  Blue must be zero: side tables are zero-initialized and
/// every cell starts out free.
enum class Color : uint8_t {
  Blue = 0,
  White = 1,
  Yellow = 2,
  Gray = 3,
  Black = 4,
};

/// Returns a human-readable color name for diagnostics and tests.
inline const char *colorName(Color C) {
  switch (C) {
  case Color::Blue:
    return "blue";
  case Color::White:
    return "white";
  case Color::Yellow:
    return "yellow";
  case Color::Gray:
    return "gray";
  case Color::Black:
    return "black";
  }
  return "invalid";
}

/// Returns true for the two colors that participate in the allocation/clear
/// toggle of Section 5.
inline bool isToggleColor(Color C) {
  return C == Color::White || C == Color::Yellow;
}

/// Given one toggle color, returns the other.
inline Color otherToggleColor(Color C) {
  return C == Color::White ? Color::Yellow : Color::White;
}

} // namespace gengc

#endif // GENGC_HEAP_COLOR_H

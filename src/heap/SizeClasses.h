//===- heap/SizeClasses.h - Segregated-fit size classes ---------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heap is a big-bag-of-pages (BiBoP) design: each 64 KiB block holds
/// cells of exactly one size class.  This gives the two properties the
/// paper's collectors rely on: objects never move, and the sweep can walk
/// the heap cell-by-cell without per-object size headers.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_HEAP_SIZECLASSES_H
#define GENGC_HEAP_SIZECLASSES_H

#include <cstdint>

namespace gengc {

/// Number of small-object size classes.  Objects larger than the last class
/// go to the large-object space (whole block runs).
inline constexpr unsigned NumSizeClasses = 16;

/// Largest cell size served from size-class blocks, in bytes.
inline constexpr uint32_t MaxSmallObjectBytes = 8192;

/// Returns the cell size in bytes of size class \p Index (0-based).
uint32_t sizeClassBytes(unsigned Index);

/// Returns the smallest size class whose cells hold \p Bytes, or
/// NumSizeClasses if \p Bytes exceeds MaxSmallObjectBytes (large object).
unsigned sizeClassFor(uint32_t Bytes);

} // namespace gengc

#endif // GENGC_HEAP_SIZECLASSES_H

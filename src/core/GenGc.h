//===- core/GenGc.h - Umbrella header for embedders -------------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one include an embedding program needs: the Runtime (configuration,
/// collector selection, mutator attachment, metrics) plus the RAII
/// RootScope helper for shadow-stack roots.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_CORE_GENGC_H
#define GENGC_CORE_GENGC_H

#include "core/Runtime.h"
#include "runtime/RootScope.h"

#endif // GENGC_CORE_GENGC_H

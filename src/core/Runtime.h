//===- core/Runtime.h - Public embedding API --------------------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one-stop public API.  A Runtime bundles the heap, the shared
/// collector state, the mutator registry, the global roots and a collector
/// (generational or the DLG baseline), wires the allocation back-pressure,
/// and starts the collector thread.
///
/// Typical embedding:
/// \code
///   gengc::RuntimeConfig Config;                 // 32 MB heap, 16 B cards,
///   gengc::Runtime RT(Config);                   // generational collector
///
///   auto M = RT.attachMutator();                 // per program thread
///   gengc::ObjectRef Node = M->allocate(/*RefSlots=*/2, /*DataBytes=*/16);
///   size_t Slot = M->pushRoot(Node);             // keep it alive
///   M->writeRef(Node, 0, OtherNode);             // barriered update
///   M->cooperate();                              // call regularly
///   M->popRoots();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_CORE_RUNTIME_H
#define GENGC_CORE_RUNTIME_H

#include <memory>
#include <string>

#include "gc/Collector.h"
#include "gc/DlgCollector.h"
#include "gc/GenerationalCollector.h"
#include "gc/StwCollector.h"
#include "heap/Heap.h"
#include "obs/GcObserver.h"
#include "obs/Metrics.h"
#include "obs/TraceExport.h"
#include "runtime/Mutator.h"
#include "runtime/MutatorRegistry.h"
#include "runtime/Roots.h"

namespace gengc {

/// Which collector the runtime should run.
enum class CollectorChoice : uint8_t {
  /// The paper's generational on-the-fly collector.
  Generational,
  /// The non-generational DLG baseline (with the Remark 5.1 toggle).
  NonGenerational,
  /// A classic stop-the-world mark-sweep — NOT in the paper; a comparator
  /// for pause-time studies (see gc/StwCollector.h).
  StopTheWorld,
};

/// Everything configurable about a Runtime.
struct RuntimeConfig {
  HeapConfig Heap;
  CollectorConfig Collector;
  CollectorChoice Choice = CollectorChoice::Generational;

  /// Out-of-memory policy installed into every mutator attachMutator
  /// creates: the retry budget, the emergency cache-flush point, and the
  /// optional last-resort OomHandler (see runtime/Mutator.h).
  OomConfig Oom;

  /// Start the collector thread in the constructor.  Tests that drive
  /// cycles manually can defer via start().
  bool StartCollector = true;

  /// Checks the configuration for internal consistency: heap-vs-card-vs-
  /// block-size geometry, GC thread bounds, aging/remembered-set
  /// combinations.  \returns an empty string when valid, otherwise a
  /// description of the first problem found.  The Runtime constructor
  /// calls this and aborts with the message on an invalid configuration.
  std::string validate() const;
};

/// An embedded GC runtime: heap + collector + registries.
class Runtime {
public:
  explicit Runtime(const RuntimeConfig &Config);
  ~Runtime();

  Runtime(const Runtime &) = delete;
  Runtime &operator=(const Runtime &) = delete;

  /// Registers the calling thread as a mutator.  The returned object must
  /// be destroyed on the same thread, before the Runtime.
  std::unique_ptr<Mutator> attachMutator();

  /// Starts the collector thread if it is not running yet.
  void startCollector() { Gc->start(); }

  Heap &heap() { return TheHeap; }
  const Heap &heap() const { return TheHeap; }
  GlobalRoots &globalRoots() { return Roots; }
  Collector &collector() { return *Gc; }
  CollectorState &state() { return State; }
  MutatorRegistry &registry() { return Registry; }
  const RuntimeConfig &config() const { return Config; }

  /// Snapshot of the collector's statistics.
  GcRunStats gcStats() const { return Gc->statsSnapshot(); }

  //===-- Observability ---------------------------------------------------===

  /// Builds a point-in-time metrics snapshot: per-kind cycle aggregates,
  /// the always-on latency histograms (allocation stalls, STW pauses,
  /// handshake response latency) and heap gauges.  Cheap enough to poll.
  MetricsSnapshot metrics() const;

  /// Registers \p Observer for a callback after every completed collection
  /// cycle (see obs/GcObserver.h for the threading contract).
  void addGcObserver(GcObserver &Observer) { Gc->addObserver(Observer); }

  /// Deregisters \p Observer.
  void removeGcObserver(GcObserver &Observer) {
    Gc->removeObserver(Observer);
  }

  /// The event-ring registry (Collector.Obs.Tracing gates whether rings
  /// exist and record).
  ObsRegistry &obs() { return Gc->obs(); }

  /// Merged, timestamp-sorted copy of all recorded events; empty with
  /// tracing off.  Feed it to writeChromeTrace / writeJsonLines.
  TraceSnapshot traceSnapshot() const { return TraceSnapshot::of(Gc->obs()); }

private:
  RuntimeConfig Config;
  Heap TheHeap;
  CollectorState State;
  MutatorRegistry Registry;
  GlobalRoots Roots;
  std::unique_ptr<Collector> Gc;
};

} // namespace gengc

#endif // GENGC_CORE_RUNTIME_H

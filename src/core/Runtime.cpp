//===- core/Runtime.cpp - Public embedding API ------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"

using namespace gengc;

static CollectorConfig fixupCollectorConfig(const RuntimeConfig &Config) {
  CollectorConfig Fixed = Config.Collector;
  // The trigger must agree with the collector choice; fix it up rather than
  // making every caller remember the invariant.
  Fixed.Trigger.Generational =
      Config.Choice == CollectorChoice::Generational;
  if (Config.Choice != CollectorChoice::Generational) {
    Fixed.Aging = false;
    Fixed.RememberedSets = false;
  }
  return Fixed;
}

Runtime::Runtime(const RuntimeConfig &Config)
    : Config(Config), TheHeap(Config.Heap), Registry(State),
      Roots(TheHeap, State) {
  CollectorConfig GcConfig = fixupCollectorConfig(Config);
  switch (Config.Choice) {
  case CollectorChoice::Generational:
    Gc = std::make_unique<GenerationalCollector>(TheHeap, State, Registry,
                                                 Roots, GcConfig);
    break;
  case CollectorChoice::NonGenerational:
    Gc = std::make_unique<DlgCollector>(TheHeap, State, Registry, Roots,
                                        GcConfig);
    break;
  case CollectorChoice::StopTheWorld:
    Gc = std::make_unique<StwCollector>(TheHeap, State, Registry, Roots,
                                        GcConfig);
    break;
  }
  if (Config.StartCollector)
    Gc->start();
}

Runtime::~Runtime() {
  GENGC_ASSERT(Registry.size() == 0,
               "all mutators must detach before the runtime is destroyed");
  Gc->stop();
}

std::unique_ptr<Mutator> Runtime::attachMutator() {
  auto M = std::make_unique<Mutator>(TheHeap, State, Registry);
  M->setMemoryWaiter(Gc.get());
  return M;
}

//===- core/Runtime.cpp - Public embedding API ------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"

#include "support/MathExtras.h"

using namespace gengc;

std::string RuntimeConfig::validate() const {
  // Heap geometry: the arena is carved into fixed 64 KiB blocks.
  if (Heap.HeapBytes < Heap::BlockBytes)
    return "HeapBytes must be at least one block (64 KiB)";
  if (Heap.HeapBytes % Heap::BlockBytes != 0)
    return "HeapBytes must be a multiple of the 64 KiB block size";

  // Card geometry (Section 8.5.3 evaluates 16..4096).
  if (!isPowerOf2(uint64_t(Heap.CardBytes)))
    return "CardBytes must be a power of two";
  if (Heap.CardBytes < 16 || Heap.CardBytes > 4096)
    return "CardBytes must be in [16, 4096]";
  if (uint64_t(Heap.CardBytes) > Heap::BlockBytes)
    return "CardBytes must not exceed the 64 KiB block size";

  if (Heap.ChainCells == 0)
    return "ChainCells must be positive (free memory moves in chains)";

  // Central free-list sharding.  Shard indices must fit the per-block
  // HomeShard byte and the power-of-two mask arithmetic.
  if (Heap.AllocShards != 0 &&
      (!isPowerOf2(uint64_t(Heap.AllocShards)) || Heap.AllocShards > 256))
    return "AllocShards must be 0 (auto) or a power of two in [1, 256]";
  if (Heap.RefillBatchMax < 1)
    return "RefillBatchMax must be at least 1 (1 disables batched refill)";

  // Trigger thresholds.  Values LARGER than the heap are deliberately
  // legal: "YoungBytes = 1 TB" / "FullFraction > 1" is the idiom for
  // disabling automatic triggering (tests drive cycles manually).  Only
  // degenerate values that would trigger a cycle on every allocation are
  // rejected.
  if (Collector.Trigger.YoungBytes == 0)
    return "Trigger.YoungBytes must be positive (use a huge value to "
           "disable automatic partial cycles)";
  if (Collector.Trigger.FullFraction <= 0.0)
    return "Trigger.FullFraction must be positive (use a value above 1 to "
           "disable automatic full cycles)";

  // Worker lanes: 0 would mean no one runs the cycle; an absurd count is
  // almost certainly a unit mix-up.
  if (Collector.GcThreads < 1)
    return "GcThreads must be at least 1 (lane 0 is the collector thread)";
  if (Collector.GcThreads > 256)
    return "GcThreads above 256 is unsupported (suspect a configuration "
           "mix-up)";
  if (Collector.PrefetchDepth > Tracer::MaxPrefetchDepth)
    return "PrefetchDepth above 64 is unsupported (the trace prefetch "
           "window is bounded; 0 disables it)";

  // Generational-policy combinations (mirrors the collector's asserts, but
  // catchable before a thread is spawned).  Only checked for the
  // generational choice: fixupCollectorConfig strips Aging/RememberedSets
  // from the other collectors, preserving the historical "the runtime
  // fixes the trigger/choice invariants" behavior.
  if (Choice == CollectorChoice::Generational) {
    if (Collector.Aging && Collector.RememberedSets)
      return "Aging with RememberedSets is unsupported: remembered sets "
             "are implemented for simple promotion only (Section 3.1)";
    if (Collector.Aging && Collector.OldestAge < 2)
      return "OldestAge (the aging threshold) below 2 is meaningless with "
             "aging: objects are allocated with age 1";
  }

  if (Collector.Obs.RingEvents == 0)
    return "Obs.RingEvents must be positive when tracing can be enabled";

  // Out-of-memory ladder: zero retries would turn every transient
  // exhaustion into an instant handler call (or abort) without ever waiting
  // for the collection that would have fixed it.
  if (Oom.RetryAttempts < 1)
    return "Oom.RetryAttempts must be at least 1 (each attempt waits for "
           "one full collection)";

  // Watchdog: the Callback policy with no callback would silently swallow
  // every stall report.
  if (Collector.Watchdog.Policy == WatchdogPolicy::Callback &&
      !Collector.Watchdog.OnStall)
    return "Watchdog.Policy is Callback but Watchdog.OnStall is empty";

  // Escalate is deadline-driven: without a handshake deadline no wait ever
  // fires, so the ladder could never start, and a zero fire threshold
  // would make the very first fire force-complete the handshake.
  if (Collector.Watchdog.Policy == WatchdogPolicy::Escalate) {
    if (Collector.Watchdog.DeadlineNanos == 0)
      return "Watchdog.Policy is Escalate but Watchdog.DeadlineNanos is 0 "
             "(the escalation ladder is deadline-driven)";
    if (Collector.Watchdog.EscalateAfterFires < 1)
      return "Watchdog.EscalateAfterFires must be at least 1";
  }

  // Sweep policy: the enum is part of the embedding API, so an
  // out-of-range value (e.g. a memset configuration) is caught here rather
  // than surfacing as an unswept heap.
  if (unsigned(Collector.Sweep) > unsigned(SweepPolicy::Lazy))
    return "Collector.Sweep is not a valid SweepPolicy";
  return std::string();
}

static CollectorConfig fixupCollectorConfig(const RuntimeConfig &Config) {
  CollectorConfig Fixed = Config.Collector;
  // The trigger must agree with the collector choice; fix it up rather than
  // making every caller remember the invariant.
  Fixed.Trigger.Generational =
      Config.Choice == CollectorChoice::Generational;
  if (Config.Choice != CollectorChoice::Generational) {
    Fixed.Aging = false;
    Fixed.RememberedSets = false;
  }
  return Fixed;
}

static const HeapConfig &validatedHeapConfig(const RuntimeConfig &Config) {
  // Runs before any member is built so an invalid configuration cannot
  // construct a heap (member initializers run before the ctor body).
  std::string Error = Config.validate();
  if (!Error.empty())
    fatalError(Error.c_str(), __FILE__, __LINE__);
  return Config.Heap;
}

Runtime::Runtime(const RuntimeConfig &Config)
    : Config(Config), TheHeap(validatedHeapConfig(Config)), Registry(State),
      Roots(TheHeap, State) {
  CollectorConfig GcConfig = fixupCollectorConfig(Config);
  switch (Config.Choice) {
  case CollectorChoice::Generational:
    Gc = std::make_unique<GenerationalCollector>(TheHeap, State, Registry,
                                                 Roots, GcConfig);
    break;
  case CollectorChoice::NonGenerational:
    Gc = std::make_unique<DlgCollector>(TheHeap, State, Registry, Roots,
                                        GcConfig);
    break;
  case CollectorChoice::StopTheWorld:
    Gc = std::make_unique<StwCollector>(TheHeap, State, Registry, Roots,
                                        GcConfig);
    break;
  }
  if (Config.StartCollector)
    Gc->start();
}

Runtime::~Runtime() {
  GENGC_ASSERT(Registry.size() == 0,
               "all mutators must detach before the runtime is destroyed");
  Gc->stop();
}

std::unique_ptr<Mutator> Runtime::attachMutator() {
  auto M = std::make_unique<Mutator>(TheHeap, State, Registry);
  M->setMemoryWaiter(Gc.get());
  M->setObsRegistry(&Gc->obs());
  M->setOomConfig(&Config.Oom);
  return M;
}

MetricsSnapshot Runtime::metrics() const {
  MetricsSnapshot M;
  M.addCycles(Gc->statsSnapshot());
  M.HeapBytes = TheHeap.heapBytes();
  const ObsRegistry &Obs = Gc->obs();
  M.EventsWritten = Obs.eventsWritten();
  M.EventsDropped = Obs.eventsDropped();
  M.StallNanos = HistogramSnapshot::of(Obs.stallHistogram());
  M.StwPauseNanos = HistogramSnapshot::of(Obs.stwPauseHistogram());
  M.HandshakeNanos = HistogramSnapshot::of(Obs.handshakeHistogram());
  M.RequestNanos = HistogramSnapshot::of(Obs.requestHistogram());
  M.AllocRefills = TheHeap.refillCount();
  M.AllocRefillSteals = TheHeap.refillStealCount();
  M.AllocCarveFallbacks = TheHeap.carveFallbackCount();
  M.AllocShardContentions = TheHeap.shardContentionCount();
  M.AllocShardCount = TheHeap.allocShards();
  const TraceSegmentPool &SegPool = Gc->traceEngine().segmentPool();
  M.TraceSegmentsAllocated = SegPool.allocatedSegments();
  M.TraceSegmentsPooled = SegPool.pooledSegments();
  M.LazyBlocksPublished = TheHeap.lazyBlocksPublished();
  M.LazyBlocksMutatorSwept = TheHeap.lazyBlocksMutatorSwept();
  M.LazyBlocksResidueSwept = TheHeap.lazyBlocksResidueSwept();
  return M;
}

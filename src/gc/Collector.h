//===- gc/Collector.h - Collector thread and cycle driver -------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The collector base class: one dedicated thread that waits for a trigger
/// (or an explicit request), runs a collection cycle concurrently with the
/// mutators, and records statistics.  Subclasses implement the cycle itself:
/// DlgCollector (the non-generational baseline of Section 2, with the
/// Remark 5.1 color toggle) and GenerationalCollector (Sections 3-7).
///
/// The collector also implements the allocation back-pressure hook: a
/// mutator that finds the heap exhausted calls waitForMemory(), which
/// requests a full collection and cooperates with handshakes while waiting,
/// so the collection it is waiting for can actually make progress.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_GC_COLLECTOR_H
#define GENGC_GC_COLLECTOR_H

#include <condition_variable>
#include <mutex>
#include <thread>

#include "gc/CycleStats.h"
#include "gc/ParallelTrace.h"
#include "gc/Sweeper.h"
#include "gc/Tracer.h"
#include "gc/Trigger.h"
#include "gc/WorkerPool.h"
#include "heap/Heap.h"
#include "runtime/Handshake.h"
#include "runtime/Mutator.h"
#include "runtime/MutatorRegistry.h"
#include "runtime/Roots.h"

namespace gengc {

/// Static collector configuration.
struct CollectorConfig {
  TriggerPolicy Trigger;

  /// Use the Section 6 aging mechanism (GenerationalCollector only).
  bool Aging = false;

  /// Track inter-generational pointers with remembered sets instead of
  /// card marking — the Section 3.1 alternative the paper rejected.
  /// GenerationalCollector, simple promotion only.
  bool RememberedSets = false;

  /// Tenuring threshold for aging mode; objects are allocated with age 1
  /// and promoted when their age reaches this value.  The paper evaluates
  /// 2, 4, 6, 8 and 10 (Figures 18-20).
  uint8_t OldestAge = 2;

  /// How often the collector thread re-evaluates the trigger.
  uint32_t PollMicros = 200;

  /// Drive the partial-collection card scan through the two-level summary
  /// table and the allocated-block filter (GenerationalCollector).  Off
  /// forces the historical linear walk of [0, numCards) — same cards
  /// visited in the same order, strictly more bytes read; exists so tests
  /// can prove the filter changes cost, not outcomes.
  bool CardSummaryScan = true;

  /// Number of GC worker lanes for the parallel cycle phases (card scan,
  /// trace, sweep).  1 (the default) spawns no pool threads and runs the
  /// historical single-threaded algorithms bit-identically; N > 1 spawns
  /// N - 1 persistent pool threads that assist the collector thread.
  /// Mutator-facing machinery (handshakes, write barrier, color toggle) is
  /// unaffected by this knob.
  unsigned GcThreads = 1;
};

/// Base class of both collectors.
class Collector : public MemoryWaiter {
public:
  Collector(Heap &H, CollectorState &S, MutatorRegistry &Registry,
            GlobalRoots &Roots, const CollectorConfig &Config);
  ~Collector() override;

  Collector(const Collector &) = delete;
  Collector &operator=(const Collector &) = delete;

  /// Spawns the collector thread.
  void start();

  /// Finishes any in-progress cycle and joins the thread.  Idempotent.
  void stop();

  /// Asks for a cycle of (at least) \p Kind; returns immediately.
  void requestCycle(CycleRequest Kind);

  /// Requests a cycle and blocks until one completes.  Must be called from
  /// a thread that is NOT a registered mutator (e.g. a test driver);
  /// mutator threads use collectSyncCooperating instead.
  void collectSync(CycleRequest Kind);

  /// Requests a cycle and waits for completion while cooperating with
  /// handshakes on behalf of \p M (safe to call from a mutator thread).
  void collectSyncCooperating(CycleRequest Kind, Mutator &M);

  /// MemoryWaiter: a mutator ran out of memory.
  void waitForMemory(Mutator &M) override;

  /// Copy of the statistics so far.
  GcRunStats statsSnapshot() const;

  /// Resets the accumulated statistics (between benchmark phases).
  void resetStats();

  /// Number of completed cycles.
  uint64_t completedCycles() const {
    return CyclesDone.load(std::memory_order_acquire);
  }

  /// Number of times a mutator had to wait for memory (allocation found
  /// the heap exhausted) — should stay 0 in healthy configurations.
  uint64_t memoryWaits() const {
    return MemoryWaits.load(std::memory_order_relaxed);
  }

  const Trigger &trigger() const { return Trig; }
  CollectorState &state() { return State; }

protected:
  /// Runs one cycle; implemented by subclasses.
  virtual CycleStats runCycle(CycleRequest Kind) = 0;

  /// Resets the per-cycle gray counters of the collector and all mutators.
  void resetGrayCounters();

  /// Sums the per-cycle gray counters into \p Stats (young survivors).
  void sumGrayCounters(CycleStats &Stats);

  Heap &H;
  CollectorState &State;
  MutatorRegistry &Registry;
  GlobalRoots &Roots;
  CollectorConfig Config;

  HandshakeDriver Handshakes;
  /// Worker lanes for the parallel cycle phases; sized by Config.GcThreads.
  /// Must be declared before the engines that capture it.
  GcWorkerPool Pool;
  ParallelTracer TraceEngine;
  Trigger Trig;
  GrayCounters CollectorGrays;

private:
  void threadLoop();
  void runOneCycle(CycleRequest Kind);

  std::thread Thread;
  bool Running = false;
  std::atomic<bool> StopFlag{false};

  std::mutex RequestMutex;
  std::condition_variable RequestCv;
  std::condition_variable DoneCv;
  CycleRequest Pending = CycleRequest::None;

  std::atomic<uint64_t> CyclesDone{0};
  std::atomic<uint64_t> MemoryWaits{0};

  mutable std::mutex StatsMutex;
  GcRunStats Stats;
};

} // namespace gengc

#endif // GENGC_GC_COLLECTOR_H

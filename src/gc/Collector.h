//===- gc/Collector.h - Collector thread and cycle driver -------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The collector base class: one dedicated thread that waits for a trigger
/// (or an explicit request), runs a collection cycle concurrently with the
/// mutators, and records statistics.  Subclasses implement the cycle itself:
/// DlgCollector (the non-generational baseline of Section 2, with the
/// Remark 5.1 color toggle) and GenerationalCollector (Sections 3-7).
///
/// The collector also implements the allocation back-pressure hook: a
/// mutator that finds the heap exhausted calls waitForMemory(), which
/// requests a full collection and cooperates with handshakes while waiting,
/// so the collection it is waiting for can actually make progress.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_GC_COLLECTOR_H
#define GENGC_GC_COLLECTOR_H

#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "gc/CyclePhase.h"
#include "gc/CycleStats.h"
#include "gc/HeapVerifier.h"
#include "gc/ParallelTrace.h"
#include "obs/GcObserver.h"
#include "obs/ObsRegistry.h"
#include "gc/Sweeper.h"
#include "gc/Tracer.h"
#include "gc/Trigger.h"
#include "gc/WorkerPool.h"
#include "heap/Heap.h"
#include "runtime/Handshake.h"
#include "runtime/Mutator.h"
#include "runtime/MutatorRegistry.h"
#include "runtime/Roots.h"
#include "support/FaultInjector.h"

namespace gengc {

/// Static collector configuration.
struct CollectorConfig {
  TriggerPolicy Trigger;

  /// Use the Section 6 aging mechanism (GenerationalCollector only).
  bool Aging = false;

  /// Track inter-generational pointers with remembered sets instead of
  /// card marking — the Section 3.1 alternative the paper rejected.
  /// GenerationalCollector, simple promotion only.
  bool RememberedSets = false;

  /// Tenuring threshold for aging mode; objects are allocated with age 1
  /// and promoted when their age reaches this value.  The paper evaluates
  /// 2, 4, 6, 8 and 10 (Figures 18-20).
  uint8_t OldestAge = 2;

  /// How often the collector thread re-evaluates the trigger.
  uint32_t PollMicros = 200;

  /// Drive the partial-collection card scan through the two-level summary
  /// table and the allocated-block filter (GenerationalCollector).  Off
  /// forces the historical linear walk of [0, numCards) — same cards
  /// visited in the same order, strictly more bytes read; exists so tests
  /// can prove the filter changes cost, not outcomes.
  bool CardSummaryScan = true;

  /// Number of GC worker lanes for the parallel cycle phases (card scan,
  /// trace, sweep).  1 (the default) spawns no pool threads and runs the
  /// historical single-threaded algorithms bit-identically; N > 1 spawns
  /// N - 1 persistent pool threads that assist the collector thread.
  /// Mutator-facing machinery (handshakes, write barrier, color toggle) is
  /// unaffected by this knob.
  unsigned GcThreads = 1;

  /// Trace prefetch window depth: each trace lane pops up to this many
  /// gray refs ahead and software-prefetches their color byte and header
  /// line before tracing the current one, overlapping the mark loop's
  /// cache misses (see DESIGN.md §17).  0 disables the window and traces
  /// in the exact historical LIFO order — GcThreads = 1 with depth 0 is
  /// bit-identical to the pre-window engine.  Validated to at most
  /// Tracer::MaxPrefetchDepth (64); forced to 0 in builds where the
  /// GENGC_PREFETCH probe failed.  All trace statistics are
  /// order-independent, so any depth produces identical CycleStats.
  unsigned PrefetchDepth = 4;

  /// Observability subsystem configuration (see obs/Event.h).  Metrics are
  /// always on; Obs.Tracing additionally records events into per-actor
  /// rings.
  ObsConfig Obs;

  /// Stall watchdog: deadlines for handshake waits and whole cycles, plus
  /// the expiry policy (see runtime/Watchdog.h).  Disabled by default.
  WatchdogConfig Watchdog;

  /// Run the heap-invariant verifier (gc/HeapVerifier.h) at every phase
  /// boundary, aborting on a confirmed violation.  Also enabled by the
  /// GENGC_VERIFY_HEAP environment variable; for debugging and the
  /// hardening tests — each boundary pass scans the whole heap.
  bool VerifyHeap = false;

  /// When reclamation happens (gc/SweepPolicy.h): Eager keeps the
  /// historical whole-heap Sweep phase; Lazy ends the cycle by publishing
  /// blocks needs-sweep, letting mutators sweep on demand and the
  /// collector drain the residue.  Combined with the collector's mode and
  /// OldestAge into the single SweepPlan built by Collector::initSweepPlan
  /// — the one place a sweep configuration is constructed.
  SweepPolicy Sweep = SweepPolicy::Eager;
};

class LazySweepEngine;

/// Base class of both collectors.
class Collector : public MemoryWaiter {
public:
  Collector(Heap &H, CollectorState &S, MutatorRegistry &Registry,
            GlobalRoots &Roots, const CollectorConfig &Config);
  ~Collector() override;

  Collector(const Collector &) = delete;
  Collector &operator=(const Collector &) = delete;

  /// Spawns the collector thread.
  void start();

  /// Finishes any in-progress cycle and joins the thread.  Idempotent.
  void stop();

  /// Asks for a cycle of (at least) \p Kind; returns immediately.
  void requestCycle(CycleRequest Kind);

  /// Requests a cycle and blocks until one completes.  Must be called from
  /// a thread that is NOT a registered mutator (e.g. a test driver);
  /// mutator threads use collectSyncCooperating instead.
  void collectSync(CycleRequest Kind);

  /// Requests a cycle and waits for completion while cooperating with
  /// handshakes on behalf of \p M (safe to call from a mutator thread).
  void collectSyncCooperating(CycleRequest Kind, Mutator &M);

  /// MemoryWaiter: a mutator ran out of memory.
  void waitForMemory(Mutator &M) override;

  /// Copy of the statistics so far.  Taken under the cycle-publication
  /// lock, so a caller that observed completedCycles() >= N is guaranteed a
  /// snapshot containing at least N fully-formed cycles (including their
  /// per-lane worker-time vectors).
  GcRunStats statsSnapshot() const;

  /// Resets the accumulated statistics (between benchmark phases).
  void resetStats();

  /// Number of completed cycles.
  uint64_t completedCycles() const {
    return CyclesDone.load(std::memory_order_acquire);
  }

  /// Number of times a mutator had to wait for memory (allocation found
  /// the heap exhausted) — should stay 0 in healthy configurations.
  uint64_t memoryWaits() const {
    return MemoryWaits.load(std::memory_order_relaxed);
  }

  /// Number of watchdog deadline expirations (handshake or cycle) so far.
  uint64_t watchdogFires() const {
    return State.WatchdogFires.load(std::memory_order_relaxed);
  }

  const Trigger &trigger() const { return Trig; }
  CollectorState &state() { return State; }

  /// The trace engine (segment-pool gauges for Runtime::metrics()).
  const ParallelTracer &traceEngine() const { return TraceEngine; }

  /// The observability registry (event rings + histograms) of this
  /// collector's runtime.
  ObsRegistry &obs() { return Obs; }
  const ObsRegistry &obs() const { return Obs; }

  /// Registers \p Observer for per-cycle callbacks (see obs/GcObserver.h
  /// for the callback contract).  The observer must outlive the collector
  /// or be removed first; thread-safe.
  void addObserver(GcObserver &Observer);

  /// Deregisters \p Observer; no callback is running or will start after
  /// this returns (callbacks are serialized with registration).
  void removeObserver(GcObserver &Observer);

protected:
  /// Runs one cycle; implemented by subclasses.
  virtual CycleStats runCycle(CycleRequest Kind) = 0;

  //===--------------------------------------------------------------------===
  // Cycle recovery (WatchdogPolicy::Escalate; DESIGN.md §19).
  //===--------------------------------------------------------------------===

  /// post + wait with escalation support: a wait() that escalated (every
  /// laggard force-adopted) flips the cycle into the aborting state and
  /// returns false — the phase body must return promptly so abortCycle can
  /// unwind.  Plain pass-throughs when no escalation happens.
  bool handshakeOrAbort(HandshakeStatus Status);
  bool waitOrAbort();

  /// Consults an abort fault site at a phase entry: returns true when the
  /// phase body must be skipped, either because the cycle is already
  /// aborting or because \p Site (TraceAbort / SweepAbort) fired.  Inert
  /// while a cycle that cannot abort runs (STW comparator, the degraded
  /// fallback) so an armed site can never silently skip a sweep it has no
  /// unwind for.
  bool abortPhaseEntry(FaultSite Site, GcPhase Phase);

  /// True once this cycle decided to abort (the pipeline's AbortCheck).
  bool abortPending() const { return AbortCycleFlag; }

  /// Unwinds an aborted cycle to a consistent state — quiesce barrier
  /// shading, finish the handshake protocol back to Async, discard the
  /// gray work, drain lazy-sweep residue, restore every allocated cell to
  /// a traced-looking color (abortRecolor), force the next cycle Full —
  /// and certifies the result with a verifier pass.  The mid-cycle color
  /// toggle (if it happened) is deliberately KEPT, not reverted: racing
  /// allocations stamp the current allocation color, so reverting would
  /// reopen the very create/sweep race the toggle closed; recoloring
  /// forward under the current assignment is race-free.  Collector thread
  /// only, with the phase pipeline already stopped.
  void abortCycle(CycleStats &Cycle);

  /// Collector-specific color restoration for abortCycle: the base
  /// version returns every non-blue cell to the current allocation color
  /// (no Black generation exists for DLG/STW — the next Full cycle's
  /// toggle makes all of it clear and re-traces from roots);
  /// GenerationalCollector overrides to keep the old generation black.
  virtual void abortRecolor();

  /// One cycle of the cooperating-STW degraded fallback: toggle, stop the
  /// world with a forced-progress bound (waitWorldStoppedBounded), mark
  /// global roots, trace, sweep.  The base version is the whole-heap
  /// non-generational cycle; GenerationalCollector overrides with a full
  /// generational cycle (init-full before the toggle, Black trace).
  virtual CycleStats runDegradedCycle(CycleRequest Kind);

  /// StwCollector::waitWorldStopped with a deadline: mutators that fail to
  /// park (or declare themselves blocked) within roughly DeadlineNanos x
  /// EscalateAfterFires are force-shaded (Mutator::forceShadeForStw) and
  /// counted stopped.  Returns the number forced — 0 means every thread
  /// parked voluntarily, the signal that handshakes work again and
  /// on-the-fly collection can resume.
  uint64_t waitWorldStoppedBounded(uint64_t Epoch);

  /// Visits every size-class cell and large-object start in the heap (a
  /// single-threaded block-table walk; only the abort unwind's recolor
  /// passes use it — not a hot path).
  template <typename Fn> void forEachHeapCell(Fn Visit) {
    for (size_t BlockIdx = 0; BlockIdx < H.numBlocks(); ++BlockIdx) {
      const BlockDescriptor &Desc = H.block(BlockIdx);
      uint64_t Base = uint64_t(BlockIdx) << Heap::BlockShift;
      if (Desc.State == BlockState::LargeStart) {
        Visit(ObjectRef(Base));
        continue;
      }
      if (Desc.State != BlockState::SizeClass)
        continue;
      for (uint32_t Cell = 0; Cell < Desc.NumCells; ++Cell)
        Visit(ObjectRef(Base + uint64_t(Cell) * Desc.CellBytes));
    }
  }

  /// Set by DlgCollector/GenerationalCollector: their on-the-fly cycles
  /// know how to abort.  The STW comparator leaves it false — its cycle
  /// has no handshake waits and no unwind.
  bool AbortableCycles = false;
  /// Computed per cycle: AbortableCycles and not running degraded.
  bool AllowAbort = false;
  /// This cycle has decided to abort; phase bodies return early and the
  /// pipeline stops (abortPending).
  bool AbortCycleFlag = false;
  /// The abort came from an escalated handshake (vs. an injected fault):
  /// laggards were force-adopted, so the ladder proceeds to degraded mode.
  bool EscalatedAbort = false;
  /// Phase the abort was requested in, and the escalating wait's fire
  /// count (CycleAbort event payload).
  GcPhase AbortPhase = GcPhase::Idle;
  uint64_t AbortEscalation = 0;
  /// Cycles run as the cooperating-STW fallback until one completes with
  /// no forced mutators.  Collector thread only.
  bool InDegradedMode = false;

  /// Resets the per-cycle gray counters of the collector and all mutators.
  void resetGrayCounters();

  /// Sums the per-cycle gray counters into \p Stats (young survivors).
  void sumGrayCounters(CycleStats &Stats);

  /// The color that marks "traced by this cycle" for the verifier's
  /// post-trace reachability check.  The DLG and STW collectors trace with
  /// the allocation color; the generational collector overrides this with
  /// Color::Black.
  virtual Color tracedBlackColor() const { return State.allocationColor(); }

  /// The AfterPhase callback for runCyclePhases: runs the verifier at every
  /// phase boundary with the sound scope for that boundary.  Returns an
  /// empty function when verification is off (the common case — the phase
  /// runner then skips the hook entirely).  \p FullCycle enables the
  /// post-trace tri-color check, which is only sound when this cycle traced
  /// the whole heap.
  std::function<void(GcPhase)> verifyHook(bool FullCycle);

  /// Builds this collector's SweepPlan from Config (policy, \p Mode, the
  /// tenuring threshold) and, under the lazy policy, constructs the
  /// LazySweepEngine and installs it as the heap's LazySweeper hook.
  /// Called exactly once, from each concrete collector's constructor —
  /// collectors no longer assemble sweep configurations at call sites.
  void initSweepPlan(SweepMode Mode);

  /// The reclamation phase of the cycle pipeline, from the plan: the
  /// historical eager Sweep (whole-heap sweepParallel) or the lazy
  /// PublishSweep.  Both charge CycleStats::SweepNanos, so eager-vs-lazy
  /// benches compare the visible sweep-phase cost directly.
  /// \p GenerationalEstimate selects the generational live-estimate
  /// formula (LiveBytesAfter - AllocColoredBytes) on the eager path; lazy
  /// cycles leave LiveEstimateBytes to the trace phase.
  CyclePhase sweepPhase(bool GenerationalEstimate);

  /// The SweepResidue phase (lazy only): drains every block the previous
  /// cycle published that no mutator claimed, and harvests the sweep
  /// results accumulated since that publish into this cycle's stats
  /// (one-cycle-lag attribution).  Runs FIRST in the pipeline — before
  /// this cycle's color toggle, which keeps every block swept under its
  /// publish epoch.
  CyclePhase residuePhase();

  /// Prepends residuePhase() under the lazy policy; returns \p Phases.
  std::vector<CyclePhase> withResiduePhase(std::vector<CyclePhase> Phases);

  /// True when this collector runs the lazy sweep policy.
  bool lazySweep() const { return Plan.Policy == SweepPolicy::Lazy; }

  /// Runs one verifier pass of \p Scope now; aborts with a full violation
  /// dump if the heap is inconsistent, emits a VerifyPass event if clean.
  /// No-op when verification is off.
  void runVerifier(VerifyScope Scope);

  Heap &H;
  CollectorState &State;
  MutatorRegistry &Registry;
  GlobalRoots &Roots;
  CollectorConfig Config;

  /// Rings and histograms.  Owned here (not by Runtime) so collectors
  /// constructed directly by tests are observable too; declared before the
  /// engines that take ring pointers from it.
  ObsRegistry Obs;

  HandshakeDriver Handshakes;
  /// The heap-invariant checker; non-null only when Config.VerifyHeap or
  /// GENGC_VERIFY_HEAP enabled it at construction.
  std::unique_ptr<HeapVerifier> Verifier;
  /// Worker lanes for the parallel cycle phases; sized by Config.GcThreads.
  /// Must be declared before the engines that capture it.
  GcWorkerPool Pool;
  ParallelTracer TraceEngine;
  Trigger Trig;
  GrayCounters CollectorGrays;

  /// The validated reclamation strategy (see initSweepPlan).
  SweepPlan Plan;
  /// Per-block sweep engine; non-null only under SweepPolicy::Lazy.
  /// Installed into the heap as its LazySweeper hook for the lifetime of
  /// this collector (cleared in the destructor).
  std::unique_ptr<LazySweepEngine> LazyEngine;

private:
  void threadLoop();
  void runOneCycle(CycleRequest Kind);

  /// Invokes every registered observer for \p Cycle.  Runs on the collector
  /// thread with no collector lock held (only ObserverMutex, which
  /// serializes callbacks with add/removeObserver — hence observers must
  /// not register or deregister from inside a callback).
  void notifyObservers(const CycleStats &Cycle, uint64_t CycleIndex);

  std::thread Thread;
  bool Running = false;
  std::atomic<bool> StopFlag{false};

  std::mutex RequestMutex;
  std::condition_variable RequestCv;
  std::condition_variable DoneCv;
  CycleRequest Pending = CycleRequest::None;

  std::atomic<uint64_t> CyclesDone{0};
  std::atomic<uint64_t> MemoryWaits{0};

  /// An aborted cycle consumed its card / remembered-set information
  /// mid-flight; rather than reconstruct per-generation records, the next
  /// cycle traces everything (abortCycle sets this, runOneCycle consumes
  /// it).  Collector thread only.
  bool ForceFullNext = false;

  /// The cycle-publication lock: runOneCycle pushes each finished cycle's
  /// statistics under it *before* CyclesDone is bumped (with release) under
  /// RequestMutex, and statsSnapshot copies under it — so the completed-
  /// cycle count never runs ahead of the visible statistics, and the
  /// per-lane worker-time vectors inside each CycleStats are never read
  /// while being written.
  mutable std::mutex StatsMutex;
  GcRunStats Stats;

  std::mutex ObserverMutex;
  std::vector<GcObserver *> Observers;
};

} // namespace gengc

#endif // GENGC_GC_COLLECTOR_H

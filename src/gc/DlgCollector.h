//===- gc/DlgCollector.h - Non-generational DLG baseline --------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The non-generational on-the-fly mark-and-sweep collector the paper
/// compares against (Section 2), with the color toggle added per Remark 5.1
/// ("it is not fair to let only the generational collector enjoy this
/// improvement") — toggling removes the sweep's recoloring pass and the
/// create/sweep race, exactly as in the generational version.
///
/// With the toggle, "black" is simply the current allocation color: trace
/// shades clear-colored reachable objects gray and recolors them with the
/// allocation color; sweep frees clear-colored cells; the next cycle's
/// toggle swaps the roles.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_GC_DLGCOLLECTOR_H
#define GENGC_GC_DLGCOLLECTOR_H

#include "gc/Collector.h"

namespace gengc {

/// The DLG baseline.  Every cycle collects the whole heap.
class DlgCollector : public Collector {
public:
  DlgCollector(Heap &H, CollectorState &S, MutatorRegistry &Registry,
               GlobalRoots &Roots, const CollectorConfig &Config);

protected:
  CycleStats runCycle(CycleRequest Kind) override;
};

} // namespace gengc

#endif // GENGC_GC_DLGCOLLECTOR_H

//===- gc/GenerationalCollector.h - The paper's collector -------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generational on-the-fly collector — the paper's contribution.
///
/// Simple promotion (Sections 3-5, Figures 1-3): logical generations with
/// black doubling as "old"; partial collections trace only the young
/// objects, rooting additionally at old objects on dirty cards; the yellow
/// color keeps objects created during a cycle young; the color toggle makes
/// yellow/white swap roles each cycle.  Cycle order: ClearCards *before*
/// the color toggle, card marking by mutators only during async.
///
/// Aging (Section 6, Figures 4-6): a side age table with a tenuring
/// threshold; cycle order flips (toggle before ClearCards); card marks
/// survive collections and are cleared with the three-step race-free
/// protocol of Section 7.2 (clear, scan, re-mark if a young referent
/// remains).
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_GC_GENERATIONALCOLLECTOR_H
#define GENGC_GC_GENERATIONALCOLLECTOR_H

#include "gc/Collector.h"

namespace gengc {

/// The generational collector, in simple-promotion or aging mode.
class GenerationalCollector : public Collector {
public:
  GenerationalCollector(Heap &H, CollectorState &S, MutatorRegistry &Registry,
                        GlobalRoots &Roots, const CollectorConfig &Config);

protected:
  CycleStats runCycle(CycleRequest Kind) override;

  /// Both generational variants trace with Black (promoted/old objects), so
  /// the verifier's post-trace check keys on Black, not the allocation
  /// color.
  Color tracedBlackColor() const override { return Color::Black; }

  /// Abort unwind (DESIGN.md §19): unlike the base version, the old
  /// generation stays black — gray objects are promoted (re-grayed old
  /// objects go back where they were; a mid-trace young object tenures
  /// early, under aging with its age bumped to the threshold so the
  /// black-implies-old invariant holds), everything else non-blue returns
  /// to the allocation color.  Dead promotions are floating garbage until
  /// the forced-Full successor cycle sweeps them.
  void abortRecolor() override;

  /// The degraded fallback runs a FULL generational cycle under a stopped
  /// world — init-full recolor before the toggle, Black trace — so the
  /// verifier's Black-keyed checks and the aging invariants keep holding
  /// while the collector rides out the stall.
  CycleStats runDegradedCycle(CycleRequest Kind) override;

private:
  /// Figure 3 InitFullCollection: recolor black/gray objects to the
  /// (pre-toggle) allocation color and clear every card mark.
  void initFullCollectionSimple();

  /// Figure 6 InitFullCollection: recolor only; dirty cards survive, they
  /// stay relevant for the following partial collections.
  void initFullCollectionAging();

  /// Recolors every black or gray object to the current allocation color.
  void recolorTracedToAllocation();

  /// Figure 3 ClearCards: clear each dirty card and shade the black (old)
  /// objects on it gray, so the trace scans them for young sons.  Runs
  /// before the toggle; no mutator can be marking cards concurrently
  /// (they are all at sync1/sync2, where the simple barrier does not mark).
  /// Dirty cards are found through the two-level summary scan over
  /// allocated block ranges (linear card walk when CardSummaryScan is
  /// off), sharded across the worker pool's lanes.
  void clearCardsSimple(CycleStats &Cycle);

  /// Remembered-set analogue of clearCardsSimple: drain the recorded
  /// objects, clear their membership flags, and re-gray the black (old)
  /// ones.  Same cycle position and the same no-concurrent-recording
  /// argument (recording happens only during async).
  void drainRememberedSet(CycleStats &Cycle);

  /// Figure 6 ClearCards with the Section 7.2 three-step protocol: clear
  /// the mark, scan old objects on the card shading their sons, and re-mark
  /// the card if any son is still young.  Runs after the toggle, racing
  /// benignly with mutator card marking — the summary level runs the same
  /// three-step protocol per 64-card chunk (see CardTable).  Sharded by
  /// dirty chunk (card-index ranges on the linear fallback); the per-card
  /// protocol is untouched by the sharding.
  void clearCardsAging(CycleStats &Cycle);
};

} // namespace gengc

#endif // GENGC_GC_GENERATIONALCOLLECTOR_H

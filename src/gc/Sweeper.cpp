//===- gc/Sweeper.cpp - Concurrent sweep ------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "gc/Sweeper.h"

#include <algorithm>
#include <atomic>

#include "support/Timer.h"

using namespace gengc;

const char *gengc::sweepModeName(SweepMode Mode) {
  switch (Mode) {
  case SweepMode::NonGenerational:
    return "non-generational";
  case SweepMode::GenerationalSimple:
    return "generational-simple";
  case SweepMode::GenerationalAging:
    return "generational-aging";
  }
  return "invalid";
}

const char *gengc::sweepPolicyName(SweepPolicy Policy) {
  switch (Policy) {
  case SweepPolicy::Eager:
    return "eager";
  case SweepPolicy::Lazy:
    return "lazy";
  }
  return "invalid";
}

void Sweeper::processSurvivor(ObjectRef Ref, Color C, uint32_t StorageBytes,
                              SweepMode Mode, uint8_t OldestAge,
                              Color AllocColor, Result &R) {
  ++R.LiveObjectsAfter;
  R.LiveBytesAfter += StorageBytes;
  if (C == AllocColor)
    R.AllocColoredBytes += StorageBytes;
  if (Mode != SweepMode::GenerationalAging)
    return;
  // Figure 5: young survivors rejoin the young generation with the
  // allocation color and one more collection on their age; objects at the
  // threshold stay black (tenured).
  AgeTable &Ages = H.ages();
  uint8_t Age = Ages.ageOf(Ref);
  H.pages().touch(Region::AgeTable, Ref >> GranuleShift);
  if (Age >= OldestAge)
    return;
  H.storeColor(Ref, AllocColor);
  Ages.setAge(Ref, uint8_t(Age + 1));
}

template <typename FreeCellFn>
void Sweeper::sweepCells(SweepMode Mode, uint8_t OldestAge,
                         const BlockDescriptor &Desc, uint64_t Base, Result &R,
                         FreeCellFn OnFreed) {
  PageTouchTracker &Pages = H.pages();
  Color Clear = State.clearColor();
  Color Alloc = State.allocationColor();
  for (uint32_t Cell = 0; Cell < Desc.NumCells; ++Cell) {
    ObjectRef Ref = ObjectRef(Base + uint64_t(Cell) * Desc.CellBytes);
    Color C = H.loadColor(Ref, std::memory_order_acquire);
    if (C == Color::Blue)
      continue;
    if (C == Clear) {
      if (H.casColor(Ref, C, Color::Blue)) {
        // Thread the cell into the caller's pending chain.  Writing the
        // link touches the cell's arena page, like the paper's sweep.
        Pages.touch(Region::Arena, Ref);
        if (Mode == SweepMode::GenerationalAging)
          H.ages().setAge(Ref, 0);
        ++R.ObjectsFreed;
        R.BytesFreed += Desc.CellBytes;
        OnFreed(Ref);
        continue;
      }
      // Lost the race to a late shade: the object floats into the next
      // cycle as a live survivor.
      C = H.loadColor(Ref);
    }
    processSurvivor(Ref, C, Desc.CellBytes, Mode, OldestAge, Alloc, R);
  }
}

void Sweeper::sweepBlockRange(SweepMode Mode, uint8_t OldestAge,
                              size_t BlockBegin, size_t BlockEnd, Result &R) {
  PageTouchTracker &Pages = H.pages();
  Color Clear = State.clearColor();
  Color Alloc = State.allocationColor();
  ensureChains();

  for (size_t BlockIdx = BlockBegin; BlockIdx != BlockEnd; ++BlockIdx) {
    const BlockDescriptor &Desc = H.block(BlockIdx);
    uint64_t Base = uint64_t(BlockIdx) << Heap::BlockShift;

    if (Desc.State == BlockState::LargeStart) {
      // A run is owned by the lane whose range covers its start block;
      // continuation blocks are skipped by every lane.
      ObjectRef Ref = ObjectRef(Base);
      Pages.touch(Region::ColorTable, Ref >> GranuleShift);
      Color C = H.loadColor(Ref);
      if (C == Clear && H.casColor(Ref, C, Color::Blue)) {
        uint32_t RunBytes = H.storageBytesOf(Ref);
        H.freeLargeRun(uint32_t(BlockIdx));
        ++R.ObjectsFreed;
        R.BytesFreed += RunBytes;
      } else if (C != Color::Blue) {
        processSurvivor(Ref, C, H.storageBytesOf(Ref), Mode, OldestAge,
                        Alloc, R);
      }
      continue;
    }

    if (Desc.State != BlockState::SizeClass)
      continue;

    unsigned ClassIdx = Desc.SizeClassIdx;
    // Freed cells return to the shard that carved this block, so the
    // mutators hashed there get their recently-touched memory back.
    Heap::CellChain &Chain = chainFor(ClassIdx, Desc.HomeShard);
    Pages.touchRange(Region::ColorTable, Base >> GranuleShift,
                     Heap::BlockBytes >> GranuleShift);
    sweepCells(Mode, OldestAge, Desc, Base, R, [&](ObjectRef Ref) {
      H.setChainNext(Ref, Chain.Head);
      Chain.Head = Ref;
      if (++Chain.Count == H.config().ChainCells) {
        H.pushFreeChain(ClassIdx, Chain, Desc.HomeShard);
        Chain = Heap::CellChain();
      }
    });
  }
}

void Sweeper::sweepClaimedBlock(SweepMode Mode, uint8_t OldestAge,
                                uint32_t BlockIdx, Result &R,
                                std::vector<Heap::CellChain> &Out) {
  const BlockDescriptor &Desc = H.block(BlockIdx);
  GENGC_ASSERT(Desc.State.load(std::memory_order_acquire) ==
                   BlockState::SizeClass,
               "sweepClaimedBlock on a non-size-class block");
  uint64_t Base = uint64_t(BlockIdx) << Heap::BlockShift;
  H.pages().touchRange(Region::ColorTable, Base >> GranuleShift,
                       Heap::BlockBytes >> GranuleShift);
  Heap::CellChain Chain;
  sweepCells(Mode, OldestAge, Desc, Base, R, [&](ObjectRef Ref) {
    H.setChainNext(Ref, Chain.Head);
    Chain.Head = Ref;
    if (++Chain.Count == H.config().ChainCells) {
      Out.push_back(Chain);
      Chain = Heap::CellChain();
    }
  });
  if (Chain.Count != 0)
    Out.push_back(Chain);
}

void Sweeper::flushChains() {
  if (Chains.empty())
    return;
  unsigned Shards = H.allocShards();
  for (unsigned ClassIdx = 0; ClassIdx < NumSizeClasses; ++ClassIdx) {
    for (unsigned Shard = 0; Shard < Shards; ++Shard) {
      Heap::CellChain &Chain = chainFor(ClassIdx, Shard);
      if (Chain.Count != 0) {
        H.pushFreeChain(ClassIdx, Chain, Shard);
        Chain = Heap::CellChain();
      }
    }
  }
}

Sweeper::Result Sweeper::sweep(SweepMode Mode, uint8_t OldestAge) {
  Result R;
  sweepBlockRange(Mode, OldestAge, 0, H.numBlocks(), R);
  flushChains();
  return R;
}

ParallelSweepResult gengc::sweepParallel(Heap &H, CollectorState &S,
                                         GcWorkerPool &Pool,
                                         const SweepPlan &Plan,
                                         ObsRegistry *Obs) {
  SweepMode Mode = Plan.Mode;
  uint8_t OldestAge = Plan.OldestAge;
  unsigned Lanes = Pool.lanes();
  size_t NumBlocks = H.numBlocks();
  // Coarse enough that a lane amortizes its claims, fine enough that an
  // unlucky lane stuck with a dense block range can be helped.
  size_t Chunk = std::max<size_t>(8, NumBlocks / (size_t(Lanes) * 8));

  ParallelSweepResult R;
  R.WorkerNanos.assign(Lanes, 0);
  std::vector<Sweeper> Engines;
  Engines.reserve(Lanes);
  for (unsigned Lane = 0; Lane < Lanes; ++Lane)
    Engines.emplace_back(H, S);
  std::vector<Sweeper::Result> LaneResults(Lanes);

  // Same dynamic chunk claiming as parallelChunks, inlined so each lane can
  // run a per-lane epilogue (flush its chains) after its last chunk.
  std::atomic<size_t> Cursor{0};
  Pool.run([&](unsigned Lane) {
    EventRing *Ring = Obs ? Obs->laneRing(Lane) : nullptr;
    uint64_t Start = nowNanos();
    Sweeper &Engine = Engines[Lane];
    uint64_t BlocksSwept = 0;
    for (;;) {
      size_t Begin = Cursor.fetch_add(Chunk, std::memory_order_relaxed);
      if (Begin >= NumBlocks)
        break;
      size_t End = std::min(Begin + Chunk, NumBlocks);
      uint64_t ChunkStart = Ring ? nowNanos() : 0;
      Engine.sweepBlockRange(Mode, OldestAge, Begin, End, LaneResults[Lane]);
      BlocksSwept += End - Begin;
      if (Ring)
        Ring->emit(ObsEventKind::SweepChunk, ChunkStart,
                   nowNanos() - ChunkStart, Begin, End - Begin);
    }
    Engine.flushChains();
    R.WorkerNanos[Lane] = nowNanos() - Start;
    if (Ring)
      Ring->emit(ObsEventKind::SweepSpan, Start, R.WorkerNanos[Lane],
                 LaneResults[Lane].ObjectsFreed, BlocksSwept);
  });

  for (const Sweeper::Result &LR : LaneResults)
    R.Total.merge(LR);
  return R;
}

//===- gc/SweepPolicy.h - Unified sweep policy ------------------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sweep configuration shared by the collectors, the Sweeper and the
/// lazy-sweep engine.  Collectors used to hand SweepMode + OldestAge to
/// sweepParallel as loose arguments; SweepPlan bundles the whole reclamation
/// strategy into one validated object built in exactly one place
/// (Collector::initSweepPlan).
///
/// SweepPolicy selects *when* reclamation happens:
///
///  - Eager: the historical behavior — a Sweep phase at the end of the cycle
///    walks every allocated block and pushes freed cells to the central
///    lists before the cycle is reported complete.
///
///  - Lazy: the cycle ends with a PublishSweep phase that merely stamps each
///    size-class block *needs-sweep* under the current color-toggle epoch.
///    Mutators claim and sweep a published block inline when a cache refill
///    finds the central lists dry (allocation-interleaved sweep), and the
///    collector drains the residue at low priority while idle and at the
///    start of the next cycle — before the next color toggle, so every block
///    is swept under the epoch it was published with.  See DESIGN.md §15.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_GC_SWEEPPOLICY_H
#define GENGC_GC_SWEEPPOLICY_H

#include <cstdint>

namespace gengc {

/// What the sweep does with survivors — the paper's three collector
/// configurations (Sections 4, 5 and 6).
enum class SweepMode : uint8_t {
  /// DLG baseline: survivors keep their color; no generations.
  NonGenerational,
  /// Simple promotion: survivors stay black (tenured); no age tracking.
  GenerationalSimple,
  /// Aging (Section 6): young survivors are recolored to the allocation
  /// color and age until they reach OldestAge, then tenure.
  GenerationalAging,
};

/// When reclamation happens relative to the collection cycle.
enum class SweepPolicy : uint8_t {
  Eager, ///< Sweep is a collector phase covering the whole heap.
  Lazy,  ///< Blocks are published needs-sweep; mutators sweep on demand.
};

const char *sweepModeName(SweepMode Mode);
const char *sweepPolicyName(SweepPolicy Policy);

/// The complete, validated reclamation strategy for one collector instance.
struct SweepPlan {
  SweepPolicy Policy = SweepPolicy::Eager;
  SweepMode Mode = SweepMode::NonGenerational;
  /// Tenure threshold for GenerationalAging (ignored otherwise).
  uint8_t OldestAge = 0;
};

} // namespace gengc

#endif // GENGC_GC_SWEEPPOLICY_H

//===- gc/LazySweep.h - Allocation-interleaved sweep ------------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lazy-sweep engine (SweepPolicy::Lazy).  After a trace, the
/// collector's PublishSweep phase calls publish(): large runs are reclaimed
/// eagerly (they are rare and block-granular anyway), every size-class
/// block is stamped needs-sweep under the current color-toggle epoch, the
/// central free lists are drained into per-block stashes, and the blocks
/// are pushed onto per-class claim stacks.  From then on reclamation is
/// demand-driven:
///
///  - a mutator whose cache refill finds every shard dry claims a block of
///    the class it needs (Heap::popFreeChains calls sweepOneBlockFor through
///    the Heap::LazySweeper hook) and sweeps it inline — the sweep is the
///    same per-cell CAS loop as the eager sweep, so late mutator shading
///    races freeing exactly as before;
///
///  - the collector drains the residue nobody claimed: a few blocks per
///    idle poll tick (sweepSome) so reclamation terminates on idle heaps,
///    and completely at the start of the next cycle (drainResidue) —
///    *before* that cycle's color toggle, which is what keeps every block
///    swept under the epoch it was published with.
///
/// Freed counts surface one cycle late: what mutators and the drip swept
/// since the previous publish is harvested by takeResults() in the next
/// cycle's SweepResidue phase.  See DESIGN.md §15 for the state machine.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_GC_LAZYSWEEP_H
#define GENGC_GC_LAZYSWEEP_H

#include <mutex>

#include "gc/Sweeper.h"

namespace gengc {

class LazySweepEngine : public LazySweeper {
public:
  LazySweepEngine(Heap &H, CollectorState &S, const SweepPlan &Plan,
                  ObsRegistry *Obs)
      : H(H), State(S), Plan(Plan), Obs(Obs) {}

  /// What one publish pass did: how many size-class blocks went
  /// needs-sweep, plus the eager result over large runs.
  struct PublishResult {
    uint64_t BlocksPublished = 0;
    Sweeper::Result Large;
  };

  /// Collector side, PublishSweep phase.  Must run with no toggle between
  /// it and the drain that retires its blocks.
  PublishResult publish();

  /// Heap::LazySweeper: claims and sweeps one block of \p ClassIdx from a
  /// mutator's refill, depositing into shard \p DepositShard.
  bool sweepOneBlockFor(unsigned ClassIdx, unsigned DepositShard) override;

  /// Collector side, idle drip: sweeps up to \p MaxBlocks residue blocks
  /// (any class).  Returns how many were swept.
  uint64_t sweepSome(uint64_t MaxBlocks);

  /// Collector side, SweepResidue phase: claims and sweeps every remaining
  /// published block, then waits until no block is mid-sweep (a mutator may
  /// hold a claim), so the caller may toggle colors afterwards.  Returns
  /// the number of blocks this call swept.
  uint64_t drainResidue();

  /// Takes (and resets) the sweep results accumulated since the last take:
  /// every mutator claim, drip and drain since the previous publish.
  Sweeper::Result takeResults();

private:
  /// Sweeps already-claimed block \p BlockIdx and deposits its cells into
  /// shard \p DepositShard, honoring the markSwept-before-deposit protocol.
  void sweepClaimed(uint32_t BlockIdx, unsigned DepositShard,
                    bool MutatorContext);

  /// Claims a residue block of any class; 0 when none remains.
  uint32_t claimAny();

  Heap &H;
  CollectorState &State;
  SweepPlan Plan;
  ObsRegistry *Obs;

  std::mutex ResultMutex;
  Sweeper::Result Accum;
};

} // namespace gengc

#endif // GENGC_GC_LAZYSWEEP_H

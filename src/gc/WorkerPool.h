//===- gc/WorkerPool.h - Parallel GC worker pool ----------------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A pool of persistent worker threads that parallelizes the collector's own
/// phases (card scanning, tracing, sweeping) without touching any
/// mutator-facing invariant: handshakes, the write barrier and the color
/// toggle still run exactly as the paper specifies, on the collector thread.
///
/// The pool exposes "lanes": lane 0 is always the calling (collector)
/// thread, lanes 1..N-1 are pool threads.  With a single lane no thread is
/// ever spawned and run() degenerates to a plain call — the GcThreads = 1
/// configuration is bit-identical to the historical single-threaded
/// collector, which the determinism tests rely on.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_GC_WORKERPOOL_H
#define GENGC_GC_WORKERPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/Assert.h"

namespace gengc {

/// Persistent pool executing one job at a time across all lanes.
class GcWorkerPool {
public:
  /// Creates a pool with \p Lanes total execution lanes (clamped to >= 1).
  /// Lanes - 1 threads are spawned; they park on a condition variable
  /// between jobs, so an idle pool costs nothing on collector hot paths.
  explicit GcWorkerPool(unsigned Lanes);
  ~GcWorkerPool();

  GcWorkerPool(const GcWorkerPool &) = delete;
  GcWorkerPool &operator=(const GcWorkerPool &) = delete;

  /// Total number of lanes, including the caller's lane 0.
  unsigned lanes() const { return NumLanes; }

  /// Number of spawned pool threads (lanes() - 1).
  unsigned threadCount() const { return unsigned(Threads.size()); }

  /// Runs \p Job(Lane) on every lane and blocks until all lanes return.
  /// The caller executes lane 0 itself.  If any lane throws, the first
  /// exception is rethrown here after every lane has finished; the pool
  /// remains usable.  Not reentrant: one job at a time.
  void run(const std::function<void(unsigned)> &Job);

private:
  void threadLoop(unsigned Lane);
  void finishLane(std::exception_ptr Error);

  unsigned NumLanes;
  std::vector<std::thread> Threads;

  std::mutex Mutex;
  std::condition_variable WorkCv;
  std::condition_variable DoneCv;
  uint64_t Epoch = 0;
  const std::function<void(unsigned)> *Job = nullptr;
  unsigned Outstanding = 0;
  std::exception_ptr FirstError;
  bool Stopping = false;
};

/// Dynamically-scheduled parallel for over [Begin, End): lanes claim
/// contiguous chunks of \p Chunk items through a shared cursor and invoke
/// \p Body(Lane, ChunkBegin, ChunkEnd).  With one lane the chunks are
/// claimed in ascending order by the caller, so the traversal order is
/// identical to a sequential loop — the parallel phases lean on this for
/// their GcThreads = 1 determinism guarantee.
template <typename BodyFn>
void parallelChunks(GcWorkerPool &Pool, size_t Begin, size_t End, size_t Chunk,
                    BodyFn &&Body) {
  GENGC_ASSERT(Chunk > 0, "parallelChunks needs a positive chunk size");
  if (Begin >= End)
    return;
  std::atomic<size_t> Cursor{Begin};
  Pool.run([&](unsigned Lane) {
    for (;;) {
      size_t ChunkBegin = Cursor.fetch_add(Chunk, std::memory_order_relaxed);
      if (ChunkBegin >= End)
        return;
      Body(Lane, ChunkBegin, std::min(ChunkBegin + Chunk, End));
    }
  });
}

} // namespace gengc

#endif // GENGC_GC_WORKERPOOL_H

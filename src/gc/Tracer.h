//===- gc/Tracer.h - Concurrent tri-color trace -----------------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trace stage: "While there is a gray object: pick a gray object x;
/// MarkBlack(x)" (Figure 2).  The paper leaves the mechanism for finding
/// gray objects unspecified ("we do not present details of the mechanism
/// for keeping track of the objects remaining to be traced"); ours combines
/// a collector-private mark stack for objects the collector shades itself
/// with fixpoint rescans of the color side-table to pick up objects shaded
/// concurrently by mutator write barriers.  Because every shade writes the
/// gray color *before* anything else, a full scan of the color table that
/// finds no gray object (with an empty stack) proves the trace is complete.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_GC_TRACER_H
#define GENGC_GC_TRACER_H

#include <atomic>
#include <vector>

#include "heap/Heap.h"
#include "obs/EventRing.h"
#include "runtime/CollectorState.h"
#include "runtime/WriteBarrier.h"

namespace gengc {

class TraceWorkList;

/// One trace engine.  Historically the singleton owned by a collector; now
/// a per-worker engine: each GcWorkerPool lane drives its own Tracer with a
/// private gray stack, coordinating with its siblings only through the
/// shared TraceWorkList (chunk-granularity work stealing) and the color
/// side-table CASes it already used.  ParallelTrace.h owns the fan-out; the
/// single-lane trace() below remains the complete, self-contained
/// single-threaded algorithm.
class Tracer {
public:
  struct Result {
    /// Number of MarkBlack executions ("objects scanned" of Figure 11).
    uint64_t ObjectsTraced = 0;
    /// Their storage footprint.
    uint64_t BytesTraced = 0;
    /// Number of color-table passes until the clean pass.
    uint64_t Passes = 0;
  };

  Tracer(Heap &H, CollectorState &S) : H(H), State(S) {}

  /// Enables aging-mode card maintenance during the trace: when MarkBlack
  /// blackens an object whose age equals \p OldestAge (it will be tenured
  /// by the coming sweep), the cards of its still-young sons are marked.
  ///
  /// This closes a hole in the paper's Figure 6: ClearCards clears the
  /// dirty mark of a card whose objects are young — correct at that
  /// moment — but the same cycle can then tenure the parent while the
  /// sweep demotes its son back to the young generation, leaving an
  /// old->young pointer on a clean card; the following partial collection
  /// would reclaim the live son.  Section 6's requirement that
  /// "inter-generational pointers are recorded correctly during the
  /// collection cycle" demands exactly this maintenance.  Pass 0 to
  /// disable (simple promotion and the DLG baseline).
  void setAgingThreshold(uint8_t OldestAge) { AgingOldestAge = OldestAge; }

  /// Routes this engine's TraceSteal events to \p Ring (its lane's event
  /// ring; null disables emission).
  void setObsRing(EventRing *Ring) { Obs = Ring; }

  /// Traces to completion.  \p BlackColor is the color that marks a fully
  /// traced object: Color::Black for the generational collectors, the
  /// current allocation color for the non-generational baseline (black and
  /// white toggle, Remark 5.1).  Shades of the sons from the clear color
  /// are recorded in \p Counters.
  Result trace(Color BlackColor, GrayCounters &Counters);

  /// Parallel-lane drain: blackens everything on this engine's stack,
  /// offloading surplus chunks to \p Shared when siblings are hungry and
  /// stealing chunks back when the local stack runs dry.  Returns once all
  /// \p Lanes engines are idle with the shared list empty (the \p NumIdle
  /// counter implements the termination consensus).  Color transitions go
  /// through the same CASes as the single-threaded path, so the
  /// mutator-graying vs. collector race argument is unchanged.
  void drainShared(TraceWorkList &Shared, std::atomic<unsigned> &NumIdle,
                   unsigned Lanes, Color BlackColor, GrayCounters &Counters,
                   Result &R);

private:
  /// MarkBlack (Figure 3): shades all sons of \p Ref gray, then colors
  /// \p Ref with \p BlackColor.
  void markBlack(ObjectRef Ref, Color BlackColor, GrayCounters &Counters,
                 Result &R);

  /// Drains the mark stack, blackening everything on it.
  void drain(Color BlackColor, GrayCounters &Counters, Result &R);

  Heap &H;
  CollectorState &State;
  EventRing *Obs = nullptr;
  std::vector<ObjectRef> Stack;
  uint8_t AgingOldestAge = 0;
};

} // namespace gengc

#endif // GENGC_GC_TRACER_H

//===- gc/Tracer.h - Concurrent tri-color trace -----------------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trace stage: "While there is a gray object: pick a gray object x;
/// MarkBlack(x)" (Figure 2).  The paper leaves the mechanism for finding
/// gray objects unspecified ("we do not present details of the mechanism
/// for keeping track of the objects remaining to be traced"); ours combines
/// a collector-private mark stack for objects the collector shades itself
/// with fixpoint rescans of the color side-table to pick up objects shaded
/// concurrently by mutator write barriers.  Because every shade writes the
/// gray color *before* anything else, a full scan of the color table that
/// finds no gray object (with an empty stack) proves the trace is complete.
///
/// The hot path is packet-structured (DESIGN.md §17): the mark stack is a
/// chain of pooled TraceSegments, work moves between lanes as O(1) segment
/// swaps, shade accounting batches into lane-local counters flushed once
/// per segment, and an optional bounded prefetch window warms the color
/// byte and header line of upcoming gray refs while the current one is
/// traced.  Depth 0 bypasses the window entirely and reproduces the
/// historical pop order exactly.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_GC_TRACER_H
#define GENGC_GC_TRACER_H

#include <atomic>
#include <vector>

#include "gc/TraceSegment.h"
#include "heap/Heap.h"
#include "obs/EventRing.h"
#include "runtime/CollectorState.h"
#include "runtime/WriteBarrier.h"

namespace gengc {

class TraceWorkList;

/// One trace engine.  Historically the singleton owned by a collector; now
/// a per-worker engine: each GcWorkerPool lane drives its own Tracer with a
/// private segmented gray stack, coordinating with its siblings only
/// through the shared TraceWorkList (segment-granularity work stealing)
/// and the color side-table CASes it already used.  ParallelTrace.h owns
/// the fan-out; the single-lane trace() below remains the complete,
/// self-contained single-threaded algorithm.
class Tracer {
public:
  /// Upper bound on the prefetch window (a power of two: the window ring
  /// masks with it).  Also the RuntimeConfig::validate bound.
  static constexpr unsigned MaxPrefetchDepth = 64;

  struct Result {
    /// Number of MarkBlack executions ("objects scanned" of Figure 11).
    uint64_t ObjectsTraced = 0;
    /// Their storage footprint.
    uint64_t BytesTraced = 0;
    /// Number of color-table passes until the clean pass.
    uint64_t Passes = 0;
    /// Wall time inside the termination verification scans (a subset of
    /// the total trace time; the sharded-scan speedup shows up here).
    uint64_t TermScanNanos = 0;
    /// Segments this lane offloaded to the shared work list.
    uint64_t Offloads = 0;
  };

  /// \p SharedPool is the collector-wide segment pool (ParallelTracer's);
  /// standalone engines (tests) pass nothing and use a private pool.
  explicit Tracer(Heap &H, CollectorState &S,
                  TraceSegmentPool *SharedPool = nullptr)
      : H(H), State(S), Pool(SharedPool ? SharedPool : &OwnedPool),
        Stack(*Pool) {}

  /// Enables aging-mode card maintenance during the trace: when MarkBlack
  /// blackens an object whose age equals \p OldestAge (it will be tenured
  /// by the coming sweep), the cards of its still-young sons are marked.
  ///
  /// This closes a hole in the paper's Figure 6: ClearCards clears the
  /// dirty mark of a card whose objects are young — correct at that
  /// moment — but the same cycle can then tenure the parent while the
  /// sweep demotes its son back to the young generation, leaving an
  /// old->young pointer on a clean card; the following partial collection
  /// would reclaim the live son.  Section 6's requirement that
  /// "inter-generational pointers are recorded correctly during the
  /// collection cycle" demands exactly this maintenance.  Pass 0 to
  /// disable (simple promotion and the DLG baseline).
  void setAgingThreshold(uint8_t OldestAge) { AgingOldestAge = OldestAge; }

  /// Routes this engine's TraceSteal events to \p Ring (its lane's event
  /// ring; null disables emission).
  void setObsRing(EventRing *Ring) { Obs = Ring; }

  /// Sets the prefetch window depth: up to \p Depth gray refs are popped
  /// ahead and their color byte + header line prefetched before they are
  /// traced.  Clamped to [0, MaxPrefetchDepth]; forced to 0 in builds
  /// without GENGC_PREFETCH (a window without prefetch is pure overhead).
  /// Depth 0 traces in the exact historical LIFO order.
  void setPrefetchDepth(unsigned Depth);

  /// Traces to completion.  \p BlackColor is the color that marks a fully
  /// traced object: Color::Black for the generational collectors, the
  /// current allocation color for the non-generational baseline (black and
  /// white toggle, Remark 5.1).  Shades of the sons from the clear color
  /// are recorded in \p Counters.
  Result trace(Color BlackColor, GrayCounters &Counters);

  /// Parallel-lane drain: blackens everything on this engine's stack,
  /// offloading surplus segments to \p Shared when siblings are hungry and
  /// stealing segments back when the local stack runs dry.  Returns once
  /// all \p Lanes engines are idle with the shared list empty (the
  /// \p NumIdle counter implements the termination consensus).  Color
  /// transitions go through the same CASes as the single-threaded path, so
  /// the mutator-graying vs. collector race argument is unchanged.
  void drainShared(TraceWorkList &Shared, std::atomic<unsigned> &NumIdle,
                   unsigned Lanes, Color BlackColor, GrayCounters &Counters,
                   Result &R);

private:
  /// MarkBlack (Figure 3): shades all sons of \p Ref gray, then colors
  /// \p Ref with \p BlackColor.
  void markBlack(ObjectRef Ref, Color BlackColor, GrayCounters &Counters,
                 Result &R);

  /// Blackens everything on the local stack (and, with \p Shared non-null,
  /// offloads surplus bottom segments while ahead).  Leaves the batched
  /// shade counters flushed.
  void drainLocal(TraceWorkList *Shared, unsigned Lanes, Color BlackColor,
                  GrayCounters &Counters, Result &R);

  /// Drains the mark stack, blackening everything on it, then re-drains
  /// the shared gray buffer until both are empty.
  void drain(Color BlackColor, GrayCounters &Counters, Result &R);

  /// Publishes the batched FromClear counts into \p Counters.  Batching is
  /// statistics-only: termination never reads these counters, so deferring
  /// the atomics to segment boundaries is safe (DESIGN.md §17).
  void flushCounters(GrayCounters &Counters) {
    if (PendingFromClear != 0) {
      Counters.FromClear.fetch_add(PendingFromClear,
                                   std::memory_order_relaxed);
      Counters.FromClearBytes.fetch_add(PendingFromClearBytes,
                                        std::memory_order_relaxed);
      PendingFromClear = 0;
      PendingFromClearBytes = 0;
    }
    MarksSinceFlush = 0;
  }

  Heap &H;
  CollectorState &State;
  EventRing *Obs = nullptr;
  /// Private pool backing standalone engines; unused when a shared pool
  /// was injected.  Declared before Stack, which borrows from it.
  TraceSegmentPool OwnedPool;
  TraceSegmentPool *Pool;
  SegmentedGrayStack Stack;
  unsigned PrefetchDepth = 0;
  /// Shade accounting batched per segment (see flushCounters).
  uint64_t PendingFromClear = 0;
  uint64_t PendingFromClearBytes = 0;
  uint32_t MarksSinceFlush = 0;
  uint8_t AgingOldestAge = 0;
};

} // namespace gengc

#endif // GENGC_GC_TRACER_H

//===- gc/Trigger.h - Collection triggering ---------------------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Triggering (Section 3.3).  Partial collections start once the bytes
/// allocated since the last collection exceed the configured young-
/// generation size (the paper's default and best choice: 4 MB).  Full (and
/// non-generational) collections start when the heap is "almost full" —
/// like the paper's JVM, whose heap grew from 1 MB toward a 32 MB maximum,
/// we keep a soft limit that starts small and grows when a collection fails
/// to bring occupancy down; the trigger fires against the soft limit.  The
/// full-collection calculation is identical with and without generations
/// (Section 8), so comparisons isolate the effect of generations.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_GC_TRIGGER_H
#define GENGC_GC_TRIGGER_H

#include <atomic>
#include <cstdint>

namespace gengc {

class Heap;

/// What the trigger asks for.
enum class CycleRequest : uint8_t {
  None = 0,
  Partial,
  Full,
};

/// Static triggering parameters.
struct TriggerPolicy {
  /// Young-generation size: partial collection once this many bytes have
  /// been allocated since the last collection.  Paper default: 4 MB.
  uint64_t YoungBytes = 4ull << 20;

  /// Initial soft heap limit (the paper's initial heap size: 1 MB).
  uint64_t InitialSoftBytes = 1ull << 20;

  /// Full collection fires when used bytes exceed this fraction of the
  /// soft limit.
  double FullFraction = 0.8;

  /// Generate Partial requests at all (false for the DLG baseline).
  bool Generational = true;
};

/// Stateful trigger evaluated by the collector thread between cycles.
class Trigger {
public:
  Trigger(const TriggerPolicy &Policy, uint64_t MaxHeapBytes);

  /// Decides whether a collection should start now.
  CycleRequest evaluate(const Heap &H) const;

  /// Adjusts the soft limit after a completed cycle.  \p LiveEstimateBytes
  /// is the collector's estimate of the live set (traced bytes for the
  /// whole-heap collectors; sweep-live minus during-cycle allocations for
  /// partial collections).
  void afterCycle(uint64_t LiveEstimateBytes);

  /// Current soft heap limit in bytes.
  uint64_t softLimitBytes() const {
    return SoftLimit.load(std::memory_order_relaxed);
  }

  const TriggerPolicy &policy() const { return Policy; }

private:
  TriggerPolicy Policy;
  uint64_t MaxHeapBytes;
  std::atomic<uint64_t> SoftLimit;
};

} // namespace gengc

#endif // GENGC_GC_TRIGGER_H

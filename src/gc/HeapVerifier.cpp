//===- gc/HeapVerifier.cpp - Heap-invariant verifier -----------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "gc/HeapVerifier.h"

#include <chrono>
#include <cstdio>
#include <thread>

#include "runtime/ObjectModel.h"

using namespace gengc;

const char *gengc::verifyScopeName(VerifyScope Scope) {
  switch (Scope) {
  case VerifyScope::Concurrent:
    return "concurrent";
  case VerifyScope::PostTraceFull:
    return "post-trace-full";
  case VerifyScope::CycleEnd:
    return "cycle-end";
  }
  return "invalid";
}

namespace {
/// printf-into-std::string helper for violation messages.
template <typename... Args>
std::string format(const char *Fmt, Args... Values) {
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf), Fmt, Values...);
  return Buf;
}

/// Transient-window confirmation: the protocol permits short inconsistent
/// windows (a card byte stored before its summary byte, a referent stored
/// before the barrier shades it).  Re-evaluate \p StillViolated across a few
/// pauses; only a violation that survives every re-read is real.
template <typename Fn> bool confirmViolation(Fn StillViolated) {
  for (unsigned Round = 0; Round < 8; ++Round) {
    if (!StillViolated())
      return false;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  return StillViolated();
}
} // namespace

void HeapVerifier::addViolation(Report &R, std::string Message) const {
  if (R.Violations.size() < MaxViolations)
    R.Violations.push_back(std::move(Message));
  else
    ++R.Suppressed;
}

template <typename Fn> void HeapVerifier::forEachCell(Fn Callback) const {
  size_t NumBlocks = H.numBlocks();
  for (size_t I = 0; I < NumBlocks; ++I) {
    const BlockDescriptor &Desc = H.block(I);
    BlockState S = Desc.State.load(std::memory_order_acquire);
    if (S == BlockState::SizeClass) {
      uint64_t Base = uint64_t(I) << Heap::BlockShift;
      for (uint32_t Cell = 0; Cell < Desc.NumCells; ++Cell)
        Callback(ObjectRef(Base + uint64_t(Cell) * Desc.CellBytes));
    } else if (S == BlockState::LargeStart) {
      Callback(ObjectRef(uint64_t(I) << Heap::BlockShift));
    }
  }
}

void HeapVerifier::verifyBlockTable(Report &R) const {
  H.withBlocksLocked([&] {
    size_t NumBlocks = H.numBlocks();
    uint64_t FreeSeen = 0;
    for (size_t I = 0; I < NumBlocks; ++I) {
      const BlockDescriptor &Desc = H.block(I);
      // Acquire pairs with the carver's release-store of SizeClass: carving
      // no longer holds BlockMutex, so the descriptor fields are only safe
      // to read through the publication protocol GC lanes use.
      BlockState S = Desc.State.load(std::memory_order_acquire);
      ++R.ChecksRun;
      switch (S) {
      case BlockState::Free:
        ++FreeSeen;
        break;
      case BlockState::Reserved:
        if (I != 0)
          addViolation(R, format("block %zu is Reserved (only block 0 may "
                                 "reserve the null ref)",
                                 I));
        break;
      case BlockState::SizeClass: {
        if (Desc.SizeClassIdx >= NumSizeClasses ||
            Desc.CellBytes != sizeClassBytes(Desc.SizeClassIdx)) {
          addViolation(R, format("block %zu: size class %u / cell bytes %u "
                                 "mismatch",
                                 I, unsigned(Desc.SizeClassIdx),
                                 unsigned(Desc.CellBytes)));
          break;
        }
        if (Desc.NumCells == 0 ||
            uint64_t(Desc.NumCells) * Desc.CellBytes > Heap::BlockBytes)
          addViolation(R, format("block %zu: %u cells of %u bytes overflow "
                                 "the block",
                                 I, unsigned(Desc.NumCells),
                                 unsigned(Desc.CellBytes)));
        break;
      }
      case BlockState::LargeStart: {
        if (Desc.RunBlocks == 0 || I + Desc.RunBlocks > NumBlocks ||
            uint64_t(Desc.LargeBytes) >
                uint64_t(Desc.RunBlocks) * Heap::BlockBytes) {
          addViolation(R, format("block %zu: large run of %u blocks / %u "
                                 "bytes is incoherent",
                                 I, unsigned(Desc.RunBlocks),
                                 unsigned(Desc.LargeBytes)));
          break;
        }
        for (uint32_t J = 1; J < Desc.RunBlocks; ++J) {
          const BlockDescriptor &Cont = H.block(I + J);
          ++R.ChecksRun;
          if (Cont.State.load(std::memory_order_relaxed) !=
                  BlockState::LargeCont ||
              Cont.RunStart != I)
            addViolation(R, format("block %zu: not a continuation of the "
                                   "large run starting at %zu",
                                   I + J, I));
        }
        break;
      }
      case BlockState::LargeCont: {
        // Covered from its LargeStart above; standalone sanity: the run
        // start it names must be a LargeStart that reaches it.
        const BlockDescriptor &Start = H.block(Desc.RunStart);
        if (Start.State.load(std::memory_order_relaxed) !=
                BlockState::LargeStart ||
            Desc.RunStart >= I || Desc.RunStart + Start.RunBlocks <= I)
          addViolation(R, format("block %zu: dangling LargeCont (run start "
                                 "%u)",
                                 I, unsigned(Desc.RunStart)));
        break;
      }
      case BlockState::Claimed:
        // Transient: a carver (or large-run placement) won the Free ->
        // Claimed CAS and is about to publish the real state or roll back.
        // Nothing about the descriptor is stable yet.
        break;
      }
    }
    ++R.ChecksRun;
    // Carving bypasses BlockMutex (lock-free block stack), so the table can
    // be mid-transition under our feet: a block may be Claimed before its
    // FreeBlockCount decrement lands, or counted Free twice across the scan.
    // Recount-and-confirm: only a mismatch that persists across several
    // quiescent re-reads is real.
    auto CountMismatch = [&]() -> bool {
      uint64_t Free = 0;
      for (size_t I = 0; I < NumBlocks; ++I)
        if (H.block(I).State.load(std::memory_order_relaxed) ==
            BlockState::Free)
          ++Free;
      FreeSeen = Free;
      return Free != H.freeBlockCount();
    };
    if (FreeSeen != H.freeBlockCount() && confirmViolation(CountMismatch))
      addViolation(R, format("free-block count %llu != %llu Free blocks in "
                             "the table",
                             (unsigned long long)H.freeBlockCount(),
                             (unsigned long long)FreeSeen));
  });
}

void HeapVerifier::verifyFreeLists(Report &R) const {
  // Deferred-sweep suspects: a central chain whose cells sit in an unswept
  // (needs-sweep/sweeping) block violates the lazy-sweep invariant — such
  // cells must be parked in the block's stash, never claimable.  The walk
  // runs under the shard mutex, where a racing publish (which drains the
  // central lists to stashes under the same mutexes) may not have reached
  // this shard yet; record suspects here and confirm them after every lock
  // is released, so confirmViolation never sleeps holding a shard mutex.
  struct Suspect {
    unsigned ClassIdx;
    unsigned Shard;
    ObjectRef ChainHead;
    uint32_t BlockIdx;
  };
  std::vector<Suspect> Suspects;

  H.forEachFreeChain([&](unsigned ClassIdx, unsigned Shard,
                         const Heap::CellChain &Chain) {
    uint32_t CellBytes = sizeClassBytes(ClassIdx);
    uint32_t Walked = 0;
    for (ObjectRef Cell = Chain.Head; Cell != NullRef;
         Cell = H.chainNext(Cell)) {
      if (++Walked > Chain.Count) {
        addViolation(R, format("class %u: free chain longer than its count "
                               "%u (cycle or corrupt link)",
                               ClassIdx, unsigned(Chain.Count)));
        break;
      }
      ++R.ChecksRun;
      uint32_t BlockIdx = H.blockIndexOf(Cell);
      const BlockDescriptor &Desc = H.block(BlockIdx);
      uint64_t Base = uint64_t(BlockIdx) << Heap::BlockShift;
      if (Desc.State.load(std::memory_order_acquire) !=
              BlockState::SizeClass ||
          Desc.SizeClassIdx != ClassIdx ||
          (uint64_t(Cell) - Base) % CellBytes != 0) {
        addViolation(R, format("class %u: free cell %llx is not a class-%u "
                               "cell boundary",
                               ClassIdx, (unsigned long long)Cell, ClassIdx));
        continue;
      }
      ++R.ChecksRun;
      if (Desc.Sweep.load(std::memory_order_acquire) !=
          uint8_t(BlockSweep::Swept))
        Suspects.push_back({ClassIdx, Shard, Chain.Head, BlockIdx});
      if (H.loadColor(Cell) != Color::Blue)
        addViolation(R, format("class %u: free cell %llx is %s, not blue",
                               ClassIdx, (unsigned long long)Cell,
                               colorName(H.loadColor(Cell))));
    }
    ++R.ChecksRun;
    if (Walked != Chain.Count)
      addViolation(R, format("class %u: free chain count %u but %u cells "
                             "linked",
                             ClassIdx, unsigned(Chain.Count),
                             unsigned(Walked)));
  });

  for (const Suspect &S : Suspects)
    // Real only if the same chain is still parked centrally AND the block
    // is still unswept — a publish mid-drain or a sweep mid-deposit clears
    // one side or the other within a few rounds.
    if (confirmViolation([&] {
          return H.freeChainParked(S.ClassIdx, S.Shard, S.ChainHead) &&
                 H.block(S.BlockIdx).Sweep.load(std::memory_order_acquire) !=
                     uint8_t(BlockSweep::Swept);
        }))
      addViolation(R, format("class %u shard %u: central free chain %llx "
                             "holds cells of unswept block %u",
                             S.ClassIdx, S.Shard,
                             (unsigned long long)S.ChainHead,
                             unsigned(S.BlockIdx)));
}

void HeapVerifier::verifyDeferredSweep(Report &R) const {
  if (!H.lazySweepEnabled())
    return;
  uint32_t Epoch = State.ColorEpoch.load(std::memory_order_acquire);
  size_t NumBlocks = H.numBlocks();
  for (size_t I = 0; I < NumBlocks; ++I) {
    const BlockDescriptor &Desc = H.block(I);
    if (Desc.State.load(std::memory_order_acquire) != BlockState::SizeClass)
      continue;
    ++R.ChecksRun;
    if (Desc.Sweep.load(std::memory_order_acquire) ==
        uint8_t(BlockSweep::Swept))
      continue;
    // A publish may be racing the epoch read; only a persistent mismatch
    // (block stays unswept, stamp stays stale against a re-read epoch) is a
    // protocol break.
    if (confirmViolation([&] {
          return Desc.Sweep.load(std::memory_order_acquire) !=
                     uint8_t(BlockSweep::Swept) &&
                 Desc.SweepEpoch.load(std::memory_order_acquire) !=
                     State.ColorEpoch.load(std::memory_order_acquire);
        }))
      addViolation(R, format("block %zu: needs-sweep under epoch %u but the "
                             "color-toggle epoch is %u",
                             I,
                             unsigned(Desc.SweepEpoch.load(
                                 std::memory_order_relaxed)),
                             unsigned(Epoch)));
  }
}

void HeapVerifier::verifyColors(Report &R, VerifyScope Scope) const {
  Color Clear = State.clearColor();
  bool NoClear = Scope == VerifyScope::CycleEnd;
  forEachCell([&](ObjectRef Ref) {
    ++R.ChecksRun;
    uint8_t Raw = uint8_t(H.loadColor(Ref, std::memory_order_relaxed));
    if (Raw > uint8_t(Color::Black)) {
      addViolation(R, format("cell %llx has illegal color byte %u",
                             (unsigned long long)Ref, unsigned(Raw)));
      return;
    }
    if (NoClear && Color(Raw) == Clear &&
        confirmViolation([&] { return H.loadColor(Ref) == Clear; }))
      addViolation(R, format("cell %llx still carries the clear color (%s) "
                             "after sweep",
                             (unsigned long long)Ref, colorName(Clear)));
  });
}

void HeapVerifier::verifyCardSummaries(Report &R) const {
  const CardTable &Cards = H.cards();
  Cards.forEachDirtyIndex([&](size_t CardIdx) {
    ++R.ChecksRun;
    size_t Chunk = Cards.summaryChunkFor(CardIdx);
    // markCard stores the card byte (relaxed) before the summary byte
    // (release); a dirty card whose summary is clean can therefore be a
    // store in flight.  Confirm before reporting.  The converse — a set
    // summary over clean cards — is legal (freeLargeRun clears cards and
    // leaves summaries conservatively set).
    if (!Cards.isSummaryDirty(Chunk) &&
        confirmViolation([&] {
          return Cards.isDirty(CardIdx) && !Cards.isSummaryDirty(Chunk);
        }))
      addViolation(R, format("card %zu is dirty but summary chunk %zu is "
                             "clean",
                             CardIdx, Chunk));
  });
}

void HeapVerifier::verifyNoClearRefsFromTraced(Report &R,
                                               Color TracedBlack) const {
  Color Clear = State.clearColor();
  forEachCell([&](ObjectRef Ref) {
    if (H.loadColor(Ref) != TracedBlack)
      return;
    uint32_t Slots = objectRefSlots(H, Ref);
    uint32_t Capacity = H.storageBytesOf(Ref);
    if (ObjectHeaderBytes + uint64_t(Slots) * RefSlotBytes > Capacity)
      return; // racing (re)initialization; the header is not stable yet
    for (uint32_t Slot = 0; Slot < Slots; ++Slot) {
      ++R.ChecksRun;
      ObjectRef Son = loadRefSlot(H, Ref, Slot);
      if (Son == NullRef || Son >= H.heapBytes())
        continue;
      if (H.loadColor(Son) != Clear)
        continue;
      // The barrier stores the referent before shading it, so a clear son
      // can be a shade in flight; and the slot itself may move on.  A real
      // tri-color break is stable: the parent stays traced, the slot keeps
      // the son, the son stays clear.
      if (confirmViolation([&] {
            return H.loadColor(Ref) == TracedBlack &&
                   loadRefSlot(H, Ref, Slot) == Son &&
                   H.loadColor(Son) == Clear;
          }))
        addViolation(R,
                     format("traced %s object %llx slot %u references "
                            "clear-colored %llx after full trace",
                            colorName(TracedBlack), (unsigned long long)Ref,
                            Slot, (unsigned long long)Son));
    }
  });
}

HeapVerifier::Report HeapVerifier::run(VerifyScope Scope,
                                       Color TracedBlack) const {
  Report R;
  verifyBlockTable(R);
  verifyFreeLists(R);
  verifyColors(R, Scope);
  verifyCardSummaries(R);
  verifyDeferredSweep(R);
  if (Scope == VerifyScope::PostTraceFull)
    verifyNoClearRefsFromTraced(R, TracedBlack);
  return R;
}

//===- gc/DlgCollector.cpp - Non-generational DLG baseline -----------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "gc/DlgCollector.h"

#include "gc/CyclePhase.h"

using namespace gengc;

DlgCollector::DlgCollector(Heap &H, CollectorState &S,
                           MutatorRegistry &Registry, GlobalRoots &Roots,
                           const CollectorConfig &Config)
    : Collector(H, S, Registry, Roots, Config) {
  GENGC_ASSERT(!Config.Aging, "the DLG baseline has no aging mechanism");
  State.Barrier.store(BarrierKind::NonGenerational,
                      std::memory_order_release);
  // The baseline never runs partial collections; its trigger is the
  // "heap almost full" rule alone (Section 8: the full-collection trigger
  // is identical with and without generations).
  GENGC_ASSERT(!Config.Trigger.Generational,
               "DLG baseline must not use the young-generation trigger");
}

CycleStats DlgCollector::runCycle(CycleRequest Kind) {
  (void)Kind; // Every DLG cycle collects the whole heap.
  CycleStats Cycle;
  Cycle.Kind = CycleKind::NonGenerational;
  Cycle.GcWorkers = Pool.lanes();

  runCyclePhases(
      State,
      {
          // clear stage: first handshake — write barriers become active.
          {GcPhase::Clear, &CycleStats::ClearNanos,
           [&](CycleStats &) { Handshakes.handshake(HandshakeStatus::Sync1); }},

          // mark stage: second handshake brackets the color toggle; the
          // third handshake makes every mutator shade its own roots.
          {GcPhase::Mark, &CycleStats::MarkNanos,
           [&](CycleStats &) {
             Handshakes.post(HandshakeStatus::Sync2);
             State.switchAllocationClearColors();
             Handshakes.wait();

             Handshakes.post(HandshakeStatus::Async);
             Roots.markAll(CollectorGrays);
             Handshakes.wait();
           }},

          // trace: "black" is the allocation color (Remark 5.1 toggle).
          {GcPhase::Trace, &CycleStats::TraceNanos,
           [&](CycleStats &C) {
             ParallelTracer::Result TraceResult =
                 TraceEngine.trace(State.allocationColor(), CollectorGrays);
             C.ObjectsTraced = TraceResult.ObjectsTraced;
             C.BytesTraced = TraceResult.BytesTraced;
             C.LiveEstimateBytes = TraceResult.BytesTraced;
             C.TraceSteals = TraceResult.Steals;
             C.TraceWorkerNanos = std::move(TraceResult.WorkerNanos);
           }},

          // sweep.
          {GcPhase::Sweep, &CycleStats::SweepNanos,
           [&](CycleStats &C) {
             ParallelSweepResult SweepResult = sweepParallel(
                 H, State, Pool, SweepMode::NonGenerational, 0, &Obs);
             C.ObjectsFreed = SweepResult.Total.ObjectsFreed;
             C.BytesFreed = SweepResult.Total.BytesFreed;
             C.LiveObjectsAfter = SweepResult.Total.LiveObjectsAfter;
             C.LiveBytesAfter = SweepResult.Total.LiveBytesAfter;
             C.SweepWorkerNanos = std::move(SweepResult.WorkerNanos);
           }},
      },
      Cycle, Obs.laneRing(0), verifyHook(/*FullCycle=*/true));
  return Cycle;
}

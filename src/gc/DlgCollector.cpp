//===- gc/DlgCollector.cpp - Non-generational DLG baseline -----------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "gc/DlgCollector.h"

#include "gc/CyclePhase.h"

using namespace gengc;

DlgCollector::DlgCollector(Heap &H, CollectorState &S,
                           MutatorRegistry &Registry, GlobalRoots &Roots,
                           const CollectorConfig &Config)
    : Collector(H, S, Registry, Roots, Config) {
  GENGC_ASSERT(!Config.Aging, "the DLG baseline has no aging mechanism");
  State.Barrier.store(BarrierKind::NonGenerational,
                      std::memory_order_release);
  // The baseline never runs partial collections; its trigger is the
  // "heap almost full" rule alone (Section 8: the full-collection trigger
  // is identical with and without generations).
  GENGC_ASSERT(!Config.Trigger.Generational,
               "DLG baseline must not use the young-generation trigger");
  initSweepPlan(SweepMode::NonGenerational);
  // The on-the-fly cycle knows how to abort (WatchdogPolicy::Escalate and
  // the TraceAbort/SweepAbort fault sites; DESIGN.md §19).
  AbortableCycles = true;
}

CycleStats DlgCollector::runCycle(CycleRequest Kind) {
  (void)Kind; // Every DLG cycle collects the whole heap.
  CycleStats Cycle;
  Cycle.Kind = CycleKind::NonGenerational;
  Cycle.GcWorkers = Pool.lanes();

  runCyclePhases(
      State,
      withResiduePhase({
          // clear stage: first handshake — write barriers become active.
          {GcPhase::Clear, &CycleStats::ClearNanos,
           [this](CycleStats &) {
             handshakeOrAbort(HandshakeStatus::Sync1);
           }},

          // mark stage: second handshake brackets the color toggle; the
          // third handshake makes every mutator shade its own roots.  An
          // escalated wait aborts the cycle: return promptly, the
          // pipeline's AbortCheck hands control to abortCycle.
          {GcPhase::Mark, &CycleStats::MarkNanos,
           [this](CycleStats &) {
             Handshakes.post(HandshakeStatus::Sync2);
             State.switchAllocationClearColors();
             if (!waitOrAbort())
               return;

             Handshakes.post(HandshakeStatus::Async);
             Roots.markAll(CollectorGrays);
             waitOrAbort();
           }},

          // trace: "black" is the allocation color (Remark 5.1 toggle).
          {GcPhase::Trace, &CycleStats::TraceNanos,
           [this](CycleStats &C) {
             if (abortPhaseEntry(FaultSite::TraceAbort, GcPhase::Trace))
               return;
             ParallelTracer::Result TraceResult =
                 TraceEngine.trace(State.allocationColor(), CollectorGrays);
             C.ObjectsTraced = TraceResult.ObjectsTraced;
             C.BytesTraced = TraceResult.BytesTraced;
             C.LiveEstimateBytes = TraceResult.BytesTraced;
             C.TraceSteals = TraceResult.Steals;
             C.TraceOffloads = TraceResult.Offloads;
             C.TraceSegmentsAcquired = TraceResult.SegmentsAcquired;
             C.TraceTermScanNanos = TraceResult.TermScanNanos;
             C.TraceWorkerNanos = std::move(TraceResult.WorkerNanos);
           }},

          // reclamation: eager whole-heap sweep, or lazy publish.
          sweepPhase(/*GenerationalEstimate=*/false),
      }),
      Cycle, Obs.laneRing(0), verifyHook(/*FullCycle=*/true),
      [this] { return abortPending(); });
  return Cycle;
}

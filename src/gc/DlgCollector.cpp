//===- gc/DlgCollector.cpp - Non-generational DLG baseline -----------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "gc/DlgCollector.h"

#include "support/Timer.h"

using namespace gengc;

DlgCollector::DlgCollector(Heap &H, CollectorState &S,
                           MutatorRegistry &Registry, GlobalRoots &Roots,
                           const CollectorConfig &Config)
    : Collector(H, S, Registry, Roots, Config) {
  GENGC_ASSERT(!Config.Aging, "the DLG baseline has no aging mechanism");
  State.Barrier.store(BarrierKind::NonGenerational,
                      std::memory_order_release);
  // The baseline never runs partial collections; its trigger is the
  // "heap almost full" rule alone (Section 8: the full-collection trigger
  // is identical with and without generations).
  GENGC_ASSERT(!Config.Trigger.Generational,
               "DLG baseline must not use the young-generation trigger");
}

CycleStats DlgCollector::runCycle(CycleRequest Kind) {
  (void)Kind; // Every DLG cycle collects the whole heap.
  CycleStats Cycle;
  Cycle.Kind = CycleKind::NonGenerational;

  // clear stage: first handshake — write barriers become active.
  uint64_t T0 = nowNanos();
  State.Phase.store(GcPhase::Clear, std::memory_order_release);
  Handshakes.handshake(HandshakeStatus::Sync1);
  uint64_t T1 = nowNanos();
  Cycle.ClearNanos = T1 - T0;

  // mark stage: second handshake brackets the color toggle; the third
  // handshake makes every mutator shade its own roots.
  State.Phase.store(GcPhase::Mark, std::memory_order_release);
  Handshakes.post(HandshakeStatus::Sync2);
  State.switchAllocationClearColors();
  Handshakes.wait();

  Handshakes.post(HandshakeStatus::Async);
  Roots.markAll(CollectorGrays);
  Handshakes.wait();
  uint64_t T2 = nowNanos();
  Cycle.MarkNanos = T2 - T1;

  // trace: "black" is the allocation color (Remark 5.1 toggle).
  State.Phase.store(GcPhase::Trace, std::memory_order_release);
  Tracer::Result TraceResult =
      TraceEngine.trace(State.allocationColor(), CollectorGrays);
  Cycle.ObjectsTraced = TraceResult.ObjectsTraced;
  Cycle.BytesTraced = TraceResult.BytesTraced;
  Cycle.LiveEstimateBytes = TraceResult.BytesTraced;

  uint64_t T3 = nowNanos();
  Cycle.TraceNanos = T3 - T2;

  // sweep.
  State.Phase.store(GcPhase::Sweep, std::memory_order_release);
  Sweeper::Result SweepResult =
      SweepEngine.sweep(SweepMode::NonGenerational, 0);
  Cycle.ObjectsFreed = SweepResult.ObjectsFreed;
  Cycle.BytesFreed = SweepResult.BytesFreed;
  Cycle.LiveObjectsAfter = SweepResult.LiveObjectsAfter;
  Cycle.LiveBytesAfter = SweepResult.LiveBytesAfter;

  Cycle.SweepNanos = nowNanos() - T3;
  State.Phase.store(GcPhase::Idle, std::memory_order_release);
  return Cycle;
}

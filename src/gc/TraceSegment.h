//===- gc/TraceSegment.h - Segmented gray stacks ----------------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The work-packet representation of the trace engine's gray stacks: a
/// fixed-capacity, cache-line-aligned segment of object refs, pooled and
/// recycled across cycles.  Lanes keep a doubly-linked chain of segments as
/// their private LIFO stack; moving work between lanes (offload to the
/// shared list, steal from it) is an O(1) segment-pointer swap instead of
/// the element copies and the O(n) vector front-erase the first-draft
/// engine paid.  The same packet design carries MMTk's and Multicore
/// OCaml's parallel markers.
///
/// Ownership: every segment is allocated by exactly one TraceSegmentPool
/// and returns to its free list; the pool's slab vector owns the memory, so
/// segments in flight on a shared work list cannot leak even if a trace is
/// abandoned mid-cycle.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_GC_TRACESEGMENT_H
#define GENGC_GC_TRACESEGMENT_H

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "heap/Ref.h"
#include "support/Assert.h"

namespace gengc {

/// One stealable packet of gray object refs.  The link fields are owned by
/// whichever container currently holds the segment (a lane's stack chain or
/// the shared work list's free-standing stack); a segment is never in two
/// containers at once, so the links need no synchronization.
struct alignas(64) TraceSegment {
  /// Refs per segment.  64 refs = 256 bytes of payload: big enough that
  /// pool and work-list mutexes are touched once per 64 objects traced,
  /// small enough that a stolen packet is a meaningful work quantum.
  static constexpr uint32_t Capacity = 64;

  uint32_t Count = 0;
  /// Toward the bottom of the owning stack (or the next list entry).
  TraceSegment *Below = nullptr;
  /// Toward the top of the owning stack.
  TraceSegment *Above = nullptr;
  ObjectRef Refs[Capacity];
};
static_assert(sizeof(TraceSegment) % 64 == 0,
              "segments must tile cache lines exactly");

/// Free-list pool of trace segments, shared by all lanes of one collector.
/// acquire/release serialize on a mutex (touched once per Capacity pushes
/// on the trace hot path); the statistics counters are atomics so stats
/// readers never take the pool lock mid-cycle.
class TraceSegmentPool {
public:
  /// Returns an empty segment, recycling a pooled one when possible.
  TraceSegment *acquire() {
    NumAcquires.fetch_add(1, std::memory_order_relaxed);
    {
      std::scoped_lock Locked(Mutex);
      if (FreeList != nullptr) {
        TraceSegment *S = FreeList;
        FreeList = S->Below;
        NumFree.fetch_sub(1, std::memory_order_relaxed);
        S->Count = 0;
        S->Below = S->Above = nullptr;
        return S;
      }
    }
    auto Fresh = std::make_unique<TraceSegment>();
    TraceSegment *S = Fresh.get();
    {
      std::scoped_lock Locked(Mutex);
      Slabs.push_back(std::move(Fresh));
    }
    NumAllocated.fetch_add(1, std::memory_order_relaxed);
    return S;
  }

  /// Returns \p S to the free list.
  void release(TraceSegment *S) {
    GENGC_ASSERT(S != nullptr, "releasing a null segment");
    std::scoped_lock Locked(Mutex);
    S->Count = 0;
    S->Above = nullptr;
    S->Below = FreeList;
    FreeList = S;
    NumFree.fetch_add(1, std::memory_order_relaxed);
  }

  /// Total acquire() calls so far (lock-free statistics read).
  uint64_t acquires() const {
    return NumAcquires.load(std::memory_order_relaxed);
  }
  /// Segments ever allocated — the pool's high-water footprint in units of
  /// sizeof(TraceSegment) (lock-free statistics read).
  uint64_t allocatedSegments() const {
    return NumAllocated.load(std::memory_order_relaxed);
  }
  /// Segments currently resting on the free list (lock-free gauge).
  uint64_t pooledSegments() const {
    return NumFree.load(std::memory_order_relaxed);
  }

private:
  std::mutex Mutex;
  TraceSegment *FreeList = nullptr;
  /// Owns every segment this pool ever created.
  std::vector<std::unique_ptr<TraceSegment>> Slabs;
  std::atomic<uint64_t> NumAcquires{0};
  std::atomic<uint64_t> NumAllocated{0};
  std::atomic<uint64_t> NumFree{0};
};

/// A lane-private LIFO gray stack built from pooled segments.  push/pop at
/// the top reproduce the exact order of the historical vector stack (the
/// GcThreads = 1 determinism contract); detachBottom and attachSegment are
/// the O(1) offload/steal primitives.
class SegmentedGrayStack {
public:
  explicit SegmentedGrayStack(TraceSegmentPool &P) : Pool(&P) {}
  ~SegmentedGrayStack() { clear(); }

  SegmentedGrayStack(const SegmentedGrayStack &) = delete;
  SegmentedGrayStack &operator=(const SegmentedGrayStack &) = delete;

  bool empty() const { return NumRefs == 0; }
  size_t size() const { return NumRefs; }
  unsigned segments() const { return NumSegments; }

  void push(ObjectRef Ref) {
    if (Top == nullptr || Top->Count == TraceSegment::Capacity)
      attachEmptyTop();
    Top->Refs[Top->Count++] = Ref;
    ++NumRefs;
  }

  ObjectRef pop() {
    GENGC_ASSERT(NumRefs != 0, "pop from an empty gray stack");
    ObjectRef Ref = Top->Refs[--Top->Count];
    --NumRefs;
    if (Top->Count == 0) {
      TraceSegment *Empty = Top;
      Top = Empty->Below;
      if (Top != nullptr)
        Top->Above = nullptr;
      else
        Bottom = nullptr;
      --NumSegments;
      // One empty segment is kept as a local spare so a push/pop sequence
      // oscillating on a segment boundary does not hit the pool mutex
      // twice per operation.
      if (Spare == nullptr) {
        Empty->Below = nullptr;
        Spare = Empty;
      } else {
        Pool->release(Empty);
      }
    }
    return Ref;
  }

  /// Detaches the bottom (oldest) segment for offloading, or returns null
  /// when fewer than two segments are chained (the active top segment is
  /// never given away).  Bottom entries sit near wide fan-out points, so a
  /// detached segment carries a real subtree — the same heuristic as the
  /// old oldest-half-chunk offload, now without copying a single ref.
  TraceSegment *detachBottom() {
    if (NumSegments < 2)
      return nullptr;
    TraceSegment *S = Bottom;
    Bottom = S->Above;
    Bottom->Below = nullptr;
    --NumSegments;
    NumRefs -= S->Count;
    S->Above = S->Below = nullptr;
    return S;
  }

  /// Attaches a stolen segment on top, so its refs are popped next —
  /// matching the historical append-then-pop order of the vector stack.
  void attachSegment(TraceSegment *S) {
    GENGC_ASSERT(S != nullptr && S->Count > 0,
                 "attaching an empty segment is pointless");
    S->Below = Top;
    S->Above = nullptr;
    if (Top != nullptr)
      Top->Above = S;
    else
      Bottom = S;
    Top = S;
    ++NumSegments;
    NumRefs += S->Count;
  }

  /// Releases every segment (and the spare) back to the pool.
  void clear() {
    while (Top != nullptr) {
      TraceSegment *S = Top;
      Top = S->Below;
      Pool->release(S);
    }
    Bottom = nullptr;
    NumSegments = 0;
    NumRefs = 0;
    if (Spare != nullptr) {
      Pool->release(Spare);
      Spare = nullptr;
    }
  }

private:
  void attachEmptyTop() {
    TraceSegment *S;
    if (Spare != nullptr) {
      S = Spare;
      Spare = nullptr;
    } else {
      S = Pool->acquire();
    }
    S->Count = 0;
    S->Below = Top;
    S->Above = nullptr;
    if (Top != nullptr)
      Top->Above = S;
    else
      Bottom = S;
    Top = S;
    ++NumSegments;
  }

  TraceSegmentPool *Pool;
  TraceSegment *Top = nullptr;
  TraceSegment *Bottom = nullptr;
  TraceSegment *Spare = nullptr;
  size_t NumRefs = 0;
  unsigned NumSegments = 0;
};

} // namespace gengc

#endif // GENGC_GC_TRACESEGMENT_H

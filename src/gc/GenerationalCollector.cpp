//===- gc/GenerationalCollector.cpp - The paper's collector ----------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "gc/GenerationalCollector.h"

#include "runtime/ObjectModel.h"
#include "support/Timer.h"

using namespace gengc;

GenerationalCollector::GenerationalCollector(Heap &H, CollectorState &S,
                                             MutatorRegistry &Registry,
                                             GlobalRoots &Roots,
                                             const CollectorConfig &Config)
    : Collector(H, S, Registry, Roots, Config) {
  GENGC_ASSERT(Config.Trigger.Generational,
               "generational collector needs the young-generation trigger");
  GENGC_ASSERT(!Config.Aging || Config.OldestAge >= 2,
               "aging threshold below 2 is meaningless (allocation age is 1)");
  GENGC_ASSERT(!(Config.RememberedSets && Config.Aging),
               "remembered sets are implemented for simple promotion only "
               "(the paper used cards exclusively; Section 3.1)");
  State.Barrier.store(Config.Aging ? BarrierKind::Aging : BarrierKind::Simple,
                      std::memory_order_release);
  State.UseRememberedSets.store(Config.RememberedSets,
                                std::memory_order_release);
  if (Config.Aging)
    TraceEngine.setAgingThreshold(Config.OldestAge);
}

void GenerationalCollector::recolorTracedToAllocation() {
  Color Alloc = State.allocationColor();
  PageTouchTracker &Pages = H.pages();
  for (size_t BlockIdx = 0, E = H.numBlocks(); BlockIdx != E; ++BlockIdx) {
    const BlockDescriptor &Desc = H.block(BlockIdx);
    uint64_t Base = uint64_t(BlockIdx) << Heap::BlockShift;
    if (Desc.State == BlockState::LargeStart) {
      ObjectRef Ref = ObjectRef(Base);
      Pages.touch(Region::ColorTable, Ref >> GranuleShift);
      Color C = H.loadColor(Ref);
      if (C == Color::Black || C == Color::Gray)
        H.storeColor(Ref, Alloc);
      continue;
    }
    if (Desc.State != BlockState::SizeClass)
      continue;
    Pages.touchRange(Region::ColorTable, Base >> GranuleShift,
                     Heap::BlockBytes >> GranuleShift);
    for (uint32_t Cell = 0; Cell < Desc.NumCells; ++Cell) {
      ObjectRef Ref = ObjectRef(Base + uint64_t(Cell) * Desc.CellBytes);
      Color C = H.loadColor(Ref, std::memory_order_relaxed);
      if (C == Color::Black || C == Color::Gray)
        H.storeColor(Ref, Alloc);
    }
  }
}

void GenerationalCollector::initFullCollectionSimple() {
  recolorTracedToAllocation();
  // Every object is about to be traced, so the recorded inter-generational
  // pointers carry no information this cycle; pointers created from here
  // on re-record themselves (the write barrier stays active all cycle).
  if (Config.RememberedSets) {
    std::vector<ObjectRef> Recorded;
    State.Remembered.drainTo(Recorded);
    for (ObjectRef Ref : Recorded)
      H.rememberedFlags().entryFor(Ref).store(0, std::memory_order_relaxed);
    return;
  }
  H.cards().clearAll();
  H.pages().touchRange(Region::CardTable, 0, H.cards().numCards());
}

void GenerationalCollector::initFullCollectionAging() {
  // Dirty cards are NOT cleared: with aging, a young object may stay young
  // across this full collection, so existing inter-generational pointers
  // remain relevant for the following partial collections (Section 6).
  recolorTracedToAllocation();
}

void GenerationalCollector::clearCardsSimple(CycleStats &Cycle) {
  CardTable &Cards = H.cards();
  PageTouchTracker &Pages = H.pages();
  // The dirty scan reads the whole card table.
  Pages.touchRange(Region::CardTable, 0, Cards.numCards());

  ObjectRef LastScanned = NullRef;
  std::vector<ObjectRef> Regrayed;
  Cards.forEachDirtyIndex([&](size_t CardIdx) {
    ++Cycle.DirtyCardsAtStart;
    Cards.clearCardUncontended(CardIdx);
    H.forEachObjectOverlappingCard(CardIdx, [&](ObjectRef Ref) {
      // Several consecutive dirty cards typically cover one object; scan
      // each object once (cards are visited in address order).
      if (Ref == LastScanned)
        return;
      LastScanned = Ref;
      Pages.touch(Region::ColorTable, Ref >> GranuleShift);
      Color C = H.loadColor(Ref, std::memory_order_relaxed);
      if (C == Color::Blue)
        return;
      Cycle.CardScanAreaBytes += H.storageBytesOf(Ref);
      // Figure 3: shade black (old) objects on dirty cards gray; the trace
      // will scan them and shade their young sons.
      if (C == Color::Black) {
        ++Cycle.OldObjectsScanned;
        H.storeColor(Ref, Color::Gray);
        Regrayed.push_back(Ref);
      }
    });
  });
  State.Grays.pushMany(Regrayed);
}

void GenerationalCollector::drainRememberedSet(CycleStats &Cycle) {
  std::vector<ObjectRef> Recorded;
  State.Remembered.drainTo(Recorded);
  std::vector<ObjectRef> Regrayed;
  for (ObjectRef Ref : Recorded) {
    H.rememberedFlags().entryFor(Ref).store(0, std::memory_order_relaxed);
    Color C = H.loadColor(Ref, std::memory_order_relaxed);
    if (C == Color::Blue)
      continue;
    ++Cycle.DirtyCardsAtStart; // entries play the role of dirty cards
    Cycle.CardScanAreaBytes += H.storageBytesOf(Ref);
    if (C == Color::Black) {
      ++Cycle.OldObjectsScanned;
      H.storeColor(Ref, Color::Gray);
      Regrayed.push_back(Ref);
    }
  }
  State.Grays.pushMany(Regrayed);
}

void GenerationalCollector::clearCardsAging(CycleStats &Cycle) {
  CardTable &Cards = H.cards();
  PageTouchTracker &Pages = H.pages();
  Pages.touchRange(Region::CardTable, 0, Cards.numCards());

  uint8_t OldestAge = Config.OldestAge;
  ObjectRef LastCounted = NullRef;
  Cards.forEachDirtyIndex([&](size_t CardIdx) {
    ++Cycle.DirtyCardsAtStart;
    // Section 7.2, step 1: clear the mark FIRST.  A mutator that writes an
    // inter-generational pointer concurrently either re-marks after our
    // clear (mark survives) or marked before it — in which case its store
    // is visible to the scan below and we re-mark ourselves.
    Cards.clearCard(CardIdx);

    bool Remark = false;
    H.forEachObjectOverlappingCard(CardIdx, [&](ObjectRef Ref) {
      Pages.touch(Region::ColorTable, Ref >> GranuleShift);
      Color C = H.loadColor(Ref);
      if (C != Color::Black || H.ages().ageOf(Ref) != OldestAge)
        return;
      Pages.touch(Region::AgeTable, Ref >> GranuleShift);
      if (Ref != LastCounted) {
        LastCounted = Ref;
        ++Cycle.OldObjectsScanned;
        Cycle.CardScanAreaBytes += H.storageBytesOf(Ref);
      }
      // Figure 6: shade the sons of old objects directly and decide
      // whether the card still holds an inter-generational pointer.
      uint32_t RefSlots = objectRefSlots(H, Ref);
      Pages.touchRange(Region::Arena, Ref,
                       ObjectHeaderBytes + uint64_t(RefSlots) * RefSlotBytes);
      for (uint32_t I = 0; I < RefSlots; ++I) {
        ObjectRef Son = loadRefSlot(H, Ref, I);
        if (Son == NullRef)
          continue;
        markGrayClearOnly(H, State, Son, CollectorGrays);
        if (H.ages().ageOf(Son) < OldestAge)
          Remark = true;
      }
    });
    if (Remark) {
      // Step 3: the card still guards an old->young pointer.
      Cards.markCardIndex(CardIdx);
      ++Cycle.CardsRemarked;
    }
  });
}

CycleStats GenerationalCollector::runCycle(CycleRequest Kind) {
  bool Full = Kind == CycleRequest::Full;
  CycleStats Cycle;
  Cycle.Kind = Full ? CycleKind::Full : CycleKind::Partial;
  Cycle.AllocatedCards = H.countAllocatedCards();

  // clear stage (Figure 2 / Figure 5).
  uint64_t T0 = nowNanos();
  State.Phase.store(GcPhase::Clear, std::memory_order_release);
  if (Full) {
    Cycle.DirtyCardsAtStart = H.cards().countDirty();
    if (Config.Aging)
      initFullCollectionAging();
    else
      initFullCollectionSimple();
  }
  Handshakes.handshake(HandshakeStatus::Sync1);
  uint64_t T1 = nowNanos();
  Cycle.ClearNanos = T1 - T0;

  // mark stage.  Order matters and differs between the variants:
  //   simple: ClearCards, then toggle (Figure 2) — a yellow object can only
  //           appear after its parent's card was already scanned;
  //   aging:  toggle, then ClearCards (Figure 5) — ClearCards must see
  //           post-toggle colors to shade young sons correctly.
  State.Phase.store(GcPhase::Mark, std::memory_order_release);
  Handshakes.post(HandshakeStatus::Sync2);
  if (Config.Aging) {
    State.switchAllocationClearColors();
    if (!Full)
      clearCardsAging(Cycle);
  } else {
    if (!Full) {
      if (Config.RememberedSets)
        drainRememberedSet(Cycle);
      else
        clearCardsSimple(Cycle);
    }
    State.switchAllocationClearColors();
  }
  Handshakes.wait();

  Handshakes.post(HandshakeStatus::Async);
  Roots.markAll(CollectorGrays);
  Handshakes.wait();
  uint64_t T2 = nowNanos();
  Cycle.MarkNanos = T2 - T1;

  // trace: black marks promoted/old objects in both variants.
  State.Phase.store(GcPhase::Trace, std::memory_order_release);
  Tracer::Result TraceResult =
      TraceEngine.trace(Color::Black, CollectorGrays);
  Cycle.ObjectsTraced = TraceResult.ObjectsTraced;
  Cycle.BytesTraced = TraceResult.BytesTraced;

  uint64_t T3 = nowNanos();
  Cycle.TraceNanos = T3 - T2;

  // sweep.
  State.Phase.store(GcPhase::Sweep, std::memory_order_release);
  Sweeper::Result SweepResult = SweepEngine.sweep(
      Config.Aging ? SweepMode::GenerationalAging
                   : SweepMode::GenerationalSimple,
      Config.OldestAge);
  Cycle.ObjectsFreed = SweepResult.ObjectsFreed;
  Cycle.BytesFreed = SweepResult.BytesFreed;
  Cycle.LiveObjectsAfter = SweepResult.LiveObjectsAfter;
  Cycle.LiveBytesAfter = SweepResult.LiveBytesAfter;
  Cycle.LiveEstimateBytes =
      SweepResult.LiveBytesAfter - SweepResult.AllocColoredBytes;

  Cycle.SweepNanos = nowNanos() - T3;
  State.Phase.store(GcPhase::Idle, std::memory_order_release);
  return Cycle;
}

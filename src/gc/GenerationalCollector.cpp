//===- gc/GenerationalCollector.cpp - The paper's collector ----------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "gc/GenerationalCollector.h"

#include <algorithm>

#include "gc/CyclePhase.h"
#include "runtime/ObjectModel.h"
#include "support/FaultInjector.h"
#include "support/Timer.h"

using namespace gengc;

namespace {
/// Per-lane card-scan counters, merged into CycleStats after the shards
/// finish.  Keeping them lane-private means the scan body never touches a
/// shared cache line.
struct CardScanStats {
  uint64_t DirtyCards = 0;
  uint64_t OldObjectsScanned = 0;
  uint64_t CardScanAreaBytes = 0;
  uint64_t CardsRemarked = 0;
  uint64_t SummaryChunksScanned = 0;
  uint64_t CardsSkippedBySummary = 0;
};

/// Chunk size for sharding \p Items across \p Lanes (8 chunks per lane so a
/// lane stuck with a dense range can be helped, floor so tiny tables do not
/// shatter into per-item claims).
size_t shardChunk(size_t Items, unsigned Lanes, size_t Floor) {
  return std::max(Floor, Items / (size_t(Lanes) * 8));
}

/// How the two-level scan clears a summary byte before opening its chunk.
enum class SummaryClear {
  /// No mutator can be marking (simple promotion between handshakes 1 and
  /// 2): plain store.
  Uncontended,
  /// Mutators may be marking (aging): acquiring exchange, the chunk-level
  /// step 1 of Section 7.2.
  Acquire,
};

/// Enumerates every dirty card exactly once and hands it to
/// \p Body(Lane, CardIdx), sharded across the worker pool.  Two strategies:
///
/// With \p UseSummaries the scan is two-level: the dirty-summary index is
/// swept (word-wide, 512 cards per hint load) over allocated block ranges
/// only, producing a work list of dirty chunks; lanes then steal *chunks*,
/// clear each chunk's summary byte per \p ClearMode, and walk just that
/// chunk's 64 card bytes.  Cards outside allocated blocks cannot be dirty
/// (mutators only store into objects and freeLargeRun scrubs reclaimed
/// runs), so restricting the sweep loses nothing.
///
/// Without it, the historical linear walk of [0, numCards) runs — same
/// cards in the same order, strictly more bytes read.  At one lane both
/// strategies visit dirty cards in ascending index order, so per-card state
/// (LastScanned dedup) behaves identically and partial-cycle statistics are
/// bit-equal between them.
///
/// Page accounting (Figure 15) follows the bytes actually read: the linear
/// walk charges the whole card table; the two-level scan charges the whole
/// summary table plus only the card bytes of chunks it opened.
template <typename Fn>
void scanDirtyCards(Heap &H, GcWorkerPool &Pool, ObsRegistry &Obs,
                    bool UseSummaries, SummaryClear ClearMode,
                    std::vector<CardScanStats> &LaneStats, Fn Body) {
  CardTable &Cards = H.cards();
  PageTouchTracker &Pages = H.pages();
  unsigned Lanes = Pool.lanes();

  if (!UseSummaries) {
    // Linear fallback: the dirty scan reads the whole card table.
    Pages.touchRange(Region::CardTable, 0, Cards.numCards());
    parallelChunks(Pool, 0, Cards.numCards(),
                   shardChunk(Cards.numCards(), Lanes, 64),
                   [&](unsigned Lane, size_t ChunkBegin, size_t ChunkEnd) {
                     Cards.forEachDirtyIndexInRange(
                         ChunkBegin, ChunkEnd,
                         [&](size_t CardIdx) { Body(Lane, CardIdx); });
                   });
    return;
  }

  // The summary sweep reads the whole (tiny) summary table.
  Pages.touchRange(Region::CardSummary, 0, Cards.numSummaryChunks());

  // Work-list generation: dirty summary chunks over allocated block ranges,
  // ascending.  A chunk can straddle the free gap between two ranges when
  // cards are large (one chunk of 4096-byte cards spans four blocks); the
  // NextChunk watermark keeps it from being enqueued twice.
  std::vector<uint32_t> Work;
  size_t CoveredCards = 0;
  size_t NextChunk = 0;
  H.forEachAllocatedBlockRange([&](uint64_t ByteBegin, uint64_t ByteEnd) {
    size_t ChunkBegin = Cards.summaryChunkFor(Cards.cardIndexFor(ByteBegin));
    size_t ChunkEnd =
        Cards.summaryChunkFor(Cards.cardIndexFor(ByteEnd - 1)) + 1;
    ChunkBegin = std::max(ChunkBegin, NextChunk);
    if (ChunkBegin >= ChunkEnd)
      return;
    NextChunk = ChunkEnd;
    Cards.forEachDirtySummaryChunkInRange(
        ChunkBegin, ChunkEnd,
        [&](size_t Chunk) { Work.push_back(uint32_t(Chunk)); });
  });
  for (uint32_t Chunk : Work)
    CoveredCards += Cards.chunkCardEnd(Chunk) - Cards.chunkCardBegin(Chunk);
  LaneStats[0].CardsSkippedBySummary += Cards.numCards() - CoveredCards;

  // Lanes steal dirty chunks — work units that each hold at least one dirty
  // card — instead of raw index ranges that are almost entirely clean.
  parallelChunks(
      Pool, 0, Work.size(), shardChunk(Work.size(), Lanes, 1),
      [&](unsigned Lane, size_t WorkBegin, size_t WorkEnd) {
        CardScanStats &S = LaneStats[Lane];
        EventRing *Ring = Obs.laneRing(Lane);
        for (size_t W = WorkBegin; W != WorkEnd; ++W) {
          size_t Chunk = Work[W];
          ++S.SummaryChunksScanned;
          if (Ring)
            Ring->instant(ObsEventKind::CardChunkOpen, nowNanos(), Chunk);
          // Fault site: delay one summary-chunk open, widening the card
          // scan's race windows for the stress tests.
          FaultInjector::fire(FaultSite::CardScanDelay);
          // Chunk-level Section 7.2 step 1: clear the summary before
          // reading the cards it covers.  Any mutator mark that lands
          // after this re-sets the byte for the next collection; step 3 is
          // implicit because every card re-mark also sets the summary.
          if (ClearMode == SummaryClear::Acquire)
            Cards.clearSummaryAcquire(Chunk);
          else
            Cards.clearSummaryUncontended(Chunk);
          size_t CardBegin = Cards.chunkCardBegin(Chunk);
          size_t CardEnd = Cards.chunkCardEnd(Chunk);
          Pages.touchRange(Region::CardTable, CardBegin, CardEnd - CardBegin);
          Cards.forEachDirtyIndexInRange(
              CardBegin, CardEnd,
              [&](size_t CardIdx) { Body(Lane, CardIdx); });
        }
      });
}
} // namespace

GenerationalCollector::GenerationalCollector(Heap &H, CollectorState &S,
                                             MutatorRegistry &Registry,
                                             GlobalRoots &Roots,
                                             const CollectorConfig &Config)
    : Collector(H, S, Registry, Roots, Config) {
  GENGC_ASSERT(Config.Trigger.Generational,
               "generational collector needs the young-generation trigger");
  GENGC_ASSERT(!Config.Aging || Config.OldestAge >= 2,
               "aging threshold below 2 is meaningless (allocation age is 1)");
  GENGC_ASSERT(!(Config.RememberedSets && Config.Aging),
               "remembered sets are implemented for simple promotion only "
               "(the paper used cards exclusively; Section 3.1)");
  State.Barrier.store(Config.Aging ? BarrierKind::Aging : BarrierKind::Simple,
                      std::memory_order_release);
  State.UseRememberedSets.store(Config.RememberedSets,
                                std::memory_order_release);
  if (Config.Aging)
    TraceEngine.setAgingThreshold(Config.OldestAge);
  initSweepPlan(Config.Aging ? SweepMode::GenerationalAging
                             : SweepMode::GenerationalSimple);
  // The on-the-fly cycle knows how to abort (WatchdogPolicy::Escalate and
  // the TraceAbort/SweepAbort fault sites; DESIGN.md §19).
  AbortableCycles = true;
}

void GenerationalCollector::abortRecolor() {
  Color Alloc = State.allocationColor();
  bool Aging = Config.Aging;
  uint8_t OldestAge = Config.OldestAge;
  forEachHeapCell([&](ObjectRef Ref) {
    Color C = H.loadColor(Ref, std::memory_order_relaxed);
    if (C == Color::Blue || C == Color::Black || C == Alloc)
      return;
    if (C == Color::Gray) {
      // Promote: a re-grayed old object returns to the old generation; a
      // mid-trace young one tenures early.  Bumping the age keeps the
      // black-implies-oldest invariant, so the card scans of later partial
      // collections treat it exactly like any other old object.
      H.storeColor(Ref, Color::Black);
      if (Aging)
        H.ages().setAge(Ref, OldestAge);
      return;
    }
    // Clear-colored: possibly-live young object whose trace never
    // finished (or a dead one — floating garbage until the forced-Full
    // successor).  Back to the young generation.
    H.storeColor(Ref, Alloc);
  });
}

CycleStats GenerationalCollector::runDegradedCycle(CycleRequest Kind) {
  (void)Kind; // The fallback always runs a full collection.
  CycleStats Cycle;
  Cycle.Kind = CycleKind::Full;
  Cycle.AllocatedCards = H.countAllocatedCards();
  Cycle.GcWorkers = Pool.lanes();
  Cycle.Degraded = true;

  runCyclePhases(
      State,
      withResiduePhase({
          {GcPhase::Clear, &CycleStats::ClearNanos,
           [this](CycleStats &C) {
             // Full-collection init first (it recolors under the
             // PRE-toggle allocation color, as in the concurrent Full
             // cycle), then toggle, then stop the world with the bounded
             // wait.
             C.DirtyCardsAtStart = H.cards().countDirty();
             if (Config.Aging)
               initFullCollectionAging();
             else
               initFullCollectionSimple();
             State.switchAllocationClearColors();
             uint64_t Epoch =
                 State.StopEpoch.fetch_add(1, std::memory_order_acq_rel) + 1;
             State.StopWorld.store(true, std::memory_order_seq_cst);
             C.ForcedMutators += waitWorldStoppedBounded(Epoch);
           }},

          {GcPhase::Mark, &CycleStats::MarkNanos,
           [this](CycleStats &) { Roots.markAll(CollectorGrays); }},

          {GcPhase::Trace, &CycleStats::TraceNanos,
           [this](CycleStats &C) {
             ParallelTracer::Result TraceResult =
                 TraceEngine.trace(Color::Black, CollectorGrays);
             C.ObjectsTraced = TraceResult.ObjectsTraced;
             C.BytesTraced = TraceResult.BytesTraced;
             C.TraceSteals = TraceResult.Steals;
             C.TraceOffloads = TraceResult.Offloads;
             C.TraceSegmentsAcquired = TraceResult.SegmentsAcquired;
             C.TraceTermScanNanos = TraceResult.TermScanNanos;
             C.TraceWorkerNanos = std::move(TraceResult.WorkerNanos);
             if (lazySweep())
               C.LiveEstimateBytes = TraceResult.BytesTraced;
           }},

          sweepPhase(/*GenerationalEstimate=*/true),
      }),
      Cycle, Obs.laneRing(0), verifyHook(/*FullCycle=*/true));

  State.StopWorld.store(false, std::memory_order_seq_cst);
  return Cycle;
}

void GenerationalCollector::recolorTracedToAllocation() {
  Color Alloc = State.allocationColor();
  PageTouchTracker &Pages = H.pages();
  // Blocks are independent, so the recolor shards cleanly over block-index
  // ranges; every lane only stores to colors of objects in its own blocks.
  parallelChunks(
      Pool, 0, H.numBlocks(), shardChunk(H.numBlocks(), Pool.lanes(), 8),
      [&](unsigned, size_t ChunkBegin, size_t ChunkEnd) {
        for (size_t BlockIdx = ChunkBegin; BlockIdx != ChunkEnd; ++BlockIdx) {
          const BlockDescriptor &Desc = H.block(BlockIdx);
          uint64_t Base = uint64_t(BlockIdx) << Heap::BlockShift;
          if (Desc.State == BlockState::LargeStart) {
            ObjectRef Ref = ObjectRef(Base);
            Pages.touch(Region::ColorTable, Ref >> GranuleShift);
            Color C = H.loadColor(Ref);
            if (C == Color::Black || C == Color::Gray)
              H.storeColor(Ref, Alloc);
            continue;
          }
          if (Desc.State != BlockState::SizeClass)
            continue;
          Pages.touchRange(Region::ColorTable, Base >> GranuleShift,
                           Heap::BlockBytes >> GranuleShift);
          for (uint32_t Cell = 0; Cell < Desc.NumCells; ++Cell) {
            ObjectRef Ref = ObjectRef(Base + uint64_t(Cell) * Desc.CellBytes);
            Color C = H.loadColor(Ref, std::memory_order_relaxed);
            if (C == Color::Black || C == Color::Gray)
              H.storeColor(Ref, Alloc);
          }
        }
      });
}

void GenerationalCollector::initFullCollectionSimple() {
  recolorTracedToAllocation();
  // Every object is about to be traced, so the recorded inter-generational
  // pointers carry no information this cycle; pointers created from here
  // on re-record themselves (the write barrier stays active all cycle).
  if (Config.RememberedSets) {
    std::vector<ObjectRef> Recorded;
    State.Remembered.drainTo(Recorded);
    for (ObjectRef Ref : Recorded)
      H.rememberedFlags().entryFor(Ref).store(0, std::memory_order_relaxed);
    return;
  }
  H.cards().clearAll();
  H.pages().touchRange(Region::CardTable, 0, H.cards().numCards());
  H.pages().touchRange(Region::CardSummary, 0, H.cards().numSummaryChunks());
}

void GenerationalCollector::initFullCollectionAging() {
  // Dirty cards are NOT cleared: with aging, a young object may stay young
  // across this full collection, so existing inter-generational pointers
  // remain relevant for the following partial collections (Section 6).
  recolorTracedToAllocation();
}

void GenerationalCollector::clearCardsSimple(CycleStats &Cycle) {
  CardTable &Cards = H.cards();
  PageTouchTracker &Pages = H.pages();

  // Dirty cards are sharded across lanes (by chunk with summaries, by index
  // range on the fallback).  Each card is handled by exactly one lane; an
  // object overlapping a shard boundary may be scanned by two lanes (the
  // LastScanned dedup is lane-local), which at worst double counts it and
  // re-grays it twice — both benign, and impossible with one lane where
  // ascending chunk order makes this the exact sequential scan.  This runs
  // between the first and second handshakes, where the simple barrier does
  // not mark cards, so both table levels clear uncontended.
  unsigned Lanes = Pool.lanes();
  std::vector<CardScanStats> LaneStats(Lanes);
  std::vector<ObjectRef> LastScanned(Lanes, NullRef);
  std::vector<std::vector<ObjectRef>> Regrayed(Lanes);
  scanDirtyCards(
      H, Pool, Obs, Config.CardSummaryScan, SummaryClear::Uncontended,
      LaneStats,
      [&](unsigned Lane, size_t CardIdx) {
        CardScanStats &S = LaneStats[Lane];
        ++S.DirtyCards;
        Cards.clearCardUncontended(CardIdx);
        H.forEachObjectOverlappingCard(CardIdx, [&](ObjectRef Ref) {
          // Several consecutive dirty cards typically cover one object;
          // scan each object once (cards are visited in address order).
          if (Ref == LastScanned[Lane])
            return;
          LastScanned[Lane] = Ref;
          Pages.touch(Region::ColorTable, Ref >> GranuleShift);
          Color C = H.loadColor(Ref, std::memory_order_relaxed);
          if (C == Color::Blue)
            return;
          S.CardScanAreaBytes += H.storageBytesOf(Ref);
          // Figure 3: shade black (old) objects on dirty cards gray; the
          // trace will scan them and shade their young sons.
          if (C == Color::Black) {
            ++S.OldObjectsScanned;
            H.storeColor(Ref, Color::Gray);
            Regrayed[Lane].push_back(Ref);
          }
        });
      });
  for (unsigned Lane = 0; Lane < Lanes; ++Lane) {
    Cycle.DirtyCardsAtStart += LaneStats[Lane].DirtyCards;
    Cycle.OldObjectsScanned += LaneStats[Lane].OldObjectsScanned;
    Cycle.CardScanAreaBytes += LaneStats[Lane].CardScanAreaBytes;
    Cycle.SummaryChunksScanned += LaneStats[Lane].SummaryChunksScanned;
    Cycle.CardsSkippedBySummary += LaneStats[Lane].CardsSkippedBySummary;
    State.Grays.pushMany(Regrayed[Lane]);
  }
}

void GenerationalCollector::drainRememberedSet(CycleStats &Cycle) {
  std::vector<ObjectRef> Recorded;
  State.Remembered.drainTo(Recorded);
  std::vector<ObjectRef> Regrayed;
  for (ObjectRef Ref : Recorded) {
    H.rememberedFlags().entryFor(Ref).store(0, std::memory_order_relaxed);
    Color C = H.loadColor(Ref, std::memory_order_relaxed);
    if (C == Color::Blue)
      continue;
    ++Cycle.DirtyCardsAtStart; // entries play the role of dirty cards
    Cycle.CardScanAreaBytes += H.storageBytesOf(Ref);
    if (C == Color::Black) {
      ++Cycle.OldObjectsScanned;
      H.storeColor(Ref, Color::Gray);
      Regrayed.push_back(Ref);
    }
  }
  State.Grays.pushMany(Regrayed);
}

void GenerationalCollector::clearCardsAging(CycleStats &Cycle) {
  CardTable &Cards = H.cards();
  PageTouchTracker &Pages = H.pages();

  uint8_t OldestAge = Config.OldestAge;
  // Sharded like clearCardsSimple.  The Section 7.2 three-step protocol is
  // per-card, so it composes with sharding unchanged: each card's
  // clear/scan/re-mark is executed entirely by the lane that owns the
  // card's range, racing only with mutator marking, exactly as before.
  // Here mutators DO mark concurrently, so the summary level runs the same
  // protocol one level up: acquiring summary clear before the chunk's cards
  // are read, re-set by any re-mark (mutator or collector step 3).
  // Son shading goes through markGrayClearOnly's CAS, so two lanes shading
  // the same son from boundary-straddling parents resolve correctly.
  unsigned Lanes = Pool.lanes();
  std::vector<CardScanStats> LaneStats(Lanes);
  std::vector<ObjectRef> LastCounted(Lanes, NullRef);
  scanDirtyCards(
      H, Pool, Obs, Config.CardSummaryScan, SummaryClear::Acquire, LaneStats,
      [&](unsigned Lane, size_t CardIdx) {
        CardScanStats &S = LaneStats[Lane];
        ++S.DirtyCards;
        // Section 7.2, step 1: clear the mark FIRST.  A mutator that
        // writes an inter-generational pointer concurrently either
        // re-marks after our clear (mark survives) or marked before it —
        // in which case its store is visible to the scan below and we
        // re-mark ourselves.
        Cards.clearCard(CardIdx);

        bool Remark = false;
        H.forEachObjectOverlappingCard(CardIdx, [&](ObjectRef Ref) {
          Pages.touch(Region::ColorTable, Ref >> GranuleShift);
          Color C = H.loadColor(Ref);
          if (C != Color::Black || H.ages().ageOf(Ref) != OldestAge)
            return;
          Pages.touch(Region::AgeTable, Ref >> GranuleShift);
          if (Ref != LastCounted[Lane]) {
            LastCounted[Lane] = Ref;
            ++S.OldObjectsScanned;
            S.CardScanAreaBytes += H.storageBytesOf(Ref);
          }
          // Figure 6: shade the sons of old objects directly and decide
          // whether the card still holds an inter-generational pointer.
          uint32_t RefSlots = objectRefSlots(H, Ref);
          Pages.touchRange(Region::Arena, Ref,
                           ObjectHeaderBytes +
                               uint64_t(RefSlots) * RefSlotBytes);
          for (uint32_t I = 0; I < RefSlots; ++I) {
            ObjectRef Son = loadRefSlot(H, Ref, I);
            if (Son == NullRef)
              continue;
            markGrayClearOnly(H, State, Son, CollectorGrays);
            if (H.ages().ageOf(Son) < OldestAge)
              Remark = true;
          }
        });
        if (Remark) {
          // Step 3: the card still guards an old->young pointer (and its
          // summary byte with it).
          Cards.markCardIndex(CardIdx);
          ++S.CardsRemarked;
        }
      });
  for (unsigned Lane = 0; Lane < Lanes; ++Lane) {
    Cycle.DirtyCardsAtStart += LaneStats[Lane].DirtyCards;
    Cycle.OldObjectsScanned += LaneStats[Lane].OldObjectsScanned;
    Cycle.CardScanAreaBytes += LaneStats[Lane].CardScanAreaBytes;
    Cycle.CardsRemarked += LaneStats[Lane].CardsRemarked;
    Cycle.SummaryChunksScanned += LaneStats[Lane].SummaryChunksScanned;
    Cycle.CardsSkippedBySummary += LaneStats[Lane].CardsSkippedBySummary;
  }
}

CycleStats GenerationalCollector::runCycle(CycleRequest Kind) {
  bool Full = Kind == CycleRequest::Full;
  CycleStats Cycle;
  Cycle.Kind = Full ? CycleKind::Full : CycleKind::Partial;
  Cycle.AllocatedCards = H.countAllocatedCards();
  Cycle.GcWorkers = Pool.lanes();

  runCyclePhases(
      State,
      withResiduePhase({
          // clear stage (Figure 2 / Figure 5).
          {GcPhase::Clear, &CycleStats::ClearNanos,
           [&](CycleStats &C) {
             if (Full) {
               C.DirtyCardsAtStart = H.cards().countDirty();
               if (Config.Aging)
                 initFullCollectionAging();
               else
                 initFullCollectionSimple();
             }
             handshakeOrAbort(HandshakeStatus::Sync1);
           }},

          // mark stage.  Order matters and differs between the variants:
          //   simple: ClearCards, then toggle (Figure 2) — a yellow object
          //           can only appear after its parent's card was already
          //           scanned;
          //   aging:  toggle, then ClearCards (Figure 5) — ClearCards must
          //           see post-toggle colors to shade young sons correctly.
          {GcPhase::Mark, &CycleStats::MarkNanos,
           [&](CycleStats &C) {
             Handshakes.post(HandshakeStatus::Sync2);
             if (Config.Aging) {
               State.switchAllocationClearColors();
               if (!Full) {
                 uint64_t ScanStart = nowNanos();
                 clearCardsAging(C);
                 C.CardScanNanos = nowNanos() - ScanStart;
               }
             } else {
               if (!Full) {
                 uint64_t ScanStart = nowNanos();
                 if (Config.RememberedSets)
                   drainRememberedSet(C);
                 else
                   clearCardsSimple(C);
                 C.CardScanNanos = nowNanos() - ScanStart;
               }
               State.switchAllocationClearColors();
             }
             if (!waitOrAbort())
               return;

             Handshakes.post(HandshakeStatus::Async);
             Roots.markAll(CollectorGrays);
             waitOrAbort();
           }},

          // trace: black marks promoted/old objects in both variants.
          {GcPhase::Trace, &CycleStats::TraceNanos,
           [&](CycleStats &C) {
             if (abortPhaseEntry(FaultSite::TraceAbort, GcPhase::Trace))
               return;
             ParallelTracer::Result TraceResult =
                 TraceEngine.trace(Color::Black, CollectorGrays);
             C.ObjectsTraced = TraceResult.ObjectsTraced;
             C.BytesTraced = TraceResult.BytesTraced;
             C.TraceSteals = TraceResult.Steals;
             C.TraceOffloads = TraceResult.Offloads;
             C.TraceSegmentsAcquired = TraceResult.SegmentsAcquired;
             C.TraceTermScanNanos = TraceResult.TermScanNanos;
             C.TraceWorkerNanos = std::move(TraceResult.WorkerNanos);
             // Lazy cycles have no eager sweep to compute the
             // live-after-minus-new estimate from; fall back to bytes
             // traced, like the non-generational collectors.
             if (lazySweep())
               C.LiveEstimateBytes = TraceResult.BytesTraced;
           }},

          // reclamation: eager whole-heap sweep, or lazy publish.  The
          // eager path computes the generational live estimate
          // (LiveBytesAfter - AllocColoredBytes).
          sweepPhase(/*GenerationalEstimate=*/true),
      }),
      Cycle, Obs.laneRing(0), verifyHook(Full),
      [this] { return abortPending(); });
  return Cycle;
}

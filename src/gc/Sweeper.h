//===- gc/Sweeper.h - Concurrent sweep --------------------------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sweep stage (Figures 2 and 5).  Sweep reclaims every object with the
/// clear color; what happens to survivors depends on the mode:
///
///  - NonGenerational: survivors keep the allocation color (the black/white
///    toggle of Remark 5.1 means no recoloring at all).
///  - GenerationalSimple: black survivors stay black — that *is* the
///    promotion to the old generation (Section 3); allocation-colored
///    (yellow) objects stay young, untouched thanks to the toggle.
///  - GenerationalAging: Figure 5 — reachable objects younger than the
///    tenuring threshold are recolored to the allocation color and their
///    age is incremented; objects at the threshold stay black (old).
///
/// Freeing races with late mutator shading (a mutator that still perceives
/// the trace stage may shade a clear-colored object); both transitions go
/// through a CAS on the color byte, so exactly one side wins: either the
/// object is freed, or it floats gray into the next cycle.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_GC_SWEEPER_H
#define GENGC_GC_SWEEPER_H

#include "heap/Heap.h"
#include "runtime/CollectorState.h"

namespace gengc {

/// Which collector variant's sweep semantics to apply.
enum class SweepMode : uint8_t {
  NonGenerational,
  GenerationalSimple,
  GenerationalAging,
};

/// The sweep engine; owned by a collector, reused across cycles.
class Sweeper {
public:
  struct Result {
    uint64_t ObjectsFreed = 0;
    uint64_t BytesFreed = 0;
    uint64_t LiveObjectsAfter = 0;
    uint64_t LiveBytesAfter = 0;
    /// Bytes of survivors carrying the allocation color — objects created
    /// during this cycle.  The generational collectors subtract this from
    /// LiveBytesAfter to estimate the true live set for triggering.
    uint64_t AllocColoredBytes = 0;
  };

  Sweeper(Heap &H, CollectorState &S) : H(H), State(S) {}

  /// Sweeps the whole heap.  \p OldestAge is the tenuring threshold (aging
  /// mode only).
  Result sweep(SweepMode Mode, uint8_t OldestAge);

private:
  /// Handles one live (non-clear, non-blue) object of color \p C.
  void processSurvivor(ObjectRef Ref, Color C, uint32_t StorageBytes,
                       SweepMode Mode, uint8_t OldestAge, Color AllocColor,
                       Result &R);

  Heap &H;
  CollectorState &State;
};

} // namespace gengc

#endif // GENGC_GC_SWEEPER_H

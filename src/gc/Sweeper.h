//===- gc/Sweeper.h - Concurrent sweep --------------------------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sweep stage (Figures 2 and 5).  Sweep reclaims every object with the
/// clear color; what happens to survivors depends on the mode:
///
///  - NonGenerational: survivors keep the allocation color (the black/white
///    toggle of Remark 5.1 means no recoloring at all).
///  - GenerationalSimple: black survivors stay black — that *is* the
///    promotion to the old generation (Section 3); allocation-colored
///    (yellow) objects stay young, untouched thanks to the toggle.
///  - GenerationalAging: Figure 5 — reachable objects younger than the
///    tenuring threshold are recolored to the allocation color and their
///    age is incremented; objects at the threshold stay black (old).
///
/// Freeing races with late mutator shading (a mutator that still perceives
/// the trace stage may shade a clear-colored object); both transitions go
/// through a CAS on the color byte, so exactly one side wins: either the
/// object is freed, or it floats gray into the next cycle.
///
/// Sweep is embarrassingly parallel in this non-moving big-bag-of-pages
/// design: blocks are independent, so sweepParallel partitions the heap by
/// block-index ranges across GcWorkerPool lanes.  Each lane drives its own
/// Sweeper engine whose freed cells accumulate into per-lane CellChain
/// batches, so Heap::pushFreeChain contention stays bounded by the batch
/// size exactly as in the single-threaded sweep.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_GC_SWEEPER_H
#define GENGC_GC_SWEEPER_H

#include <vector>

#include "gc/SweepPolicy.h"
#include "gc/WorkerPool.h"
#include "heap/Heap.h"
#include "obs/ObsRegistry.h"
#include "runtime/CollectorState.h"

namespace gengc {

/// One sweep engine.  Historically the singleton owned by a collector; now
/// a per-worker engine: each lane of a parallel sweep drives its own
/// Sweeper over the block ranges it claims, and the lazy-sweep path
/// constructs one transiently per claimed block (construction is free: the
/// per-shard chain table is only materialized by the range API).
class Sweeper {
public:
  struct Result {
    uint64_t ObjectsFreed = 0;
    uint64_t BytesFreed = 0;
    uint64_t LiveObjectsAfter = 0;
    uint64_t LiveBytesAfter = 0;
    /// Bytes of survivors carrying the allocation color — objects created
    /// during this cycle.  The generational collectors subtract this from
    /// LiveBytesAfter to estimate the true live set for triggering.
    uint64_t AllocColoredBytes = 0;

    /// Accumulates \p Other into this result (lane merging).
    void merge(const Result &Other) {
      ObjectsFreed += Other.ObjectsFreed;
      BytesFreed += Other.BytesFreed;
      LiveObjectsAfter += Other.LiveObjectsAfter;
      LiveBytesAfter += Other.LiveBytesAfter;
      AllocColoredBytes += Other.AllocColoredBytes;
    }
  };

  Sweeper(Heap &H, CollectorState &S) : H(H), State(S) {}

  /// Sweeps the whole heap.  \p OldestAge is the tenuring threshold (aging
  /// mode only).
  Result sweep(SweepMode Mode, uint8_t OldestAge);

  /// Per-lane API: sweeps blocks [\p BlockBegin, \p BlockEnd), accumulating
  /// into \p R and this engine's pending free chains.  Call flushChains()
  /// once after the lane's last range.
  void sweepBlockRange(SweepMode Mode, uint8_t OldestAge, size_t BlockBegin,
                       size_t BlockEnd, Result &R);

  /// Per-block API for lazy sweep: sweeps one claimed (Sweeping) size-class
  /// block from any thread context — a mutator refilling its cache or a
  /// collector residue pass.  Freed cells are threaded into chains of at
  /// most ChainCells appended to \p Out; nothing touches the central lists
  /// (the caller owns the markBlockSwept-then-deposit ordering).  The exact
  /// cell loop of sweepBlockRange, so late mutator shading CAS-races
  /// freeing identically.
  void sweepClaimedBlock(SweepMode Mode, uint8_t OldestAge, uint32_t BlockIdx,
                         Result &R, std::vector<Heap::CellChain> &Out);

  /// Returns all pending chains to the heap's central lists, each to the
  /// shard of the block it came from.
  void flushChains();

private:
  /// Handles one live (non-clear, non-blue) object of color \p C.
  void processSurvivor(ObjectRef Ref, Color C, uint32_t StorageBytes,
                       SweepMode Mode, uint8_t OldestAge, Color AllocColor,
                       Result &R);

  /// The per-cell sweep loop shared by the range and claimed-block APIs:
  /// CAS-frees clear cells (calling \p OnFreed for each) and classifies the
  /// rest through processSurvivor.
  template <typename FreeCellFn>
  void sweepCells(SweepMode Mode, uint8_t OldestAge,
                  const BlockDescriptor &Desc, uint64_t Base, Result &R,
                  FreeCellFn OnFreed);

  /// Materializes the (class, shard) chain table on first range use, so
  /// constructing a Sweeper for a single claimed block stays free.
  void ensureChains() {
    if (Chains.empty())
      Chains.resize(size_t(NumSizeClasses) * H.allocShards());
  }

  Heap &H;
  CollectorState &State;
  /// Freed cells pending return to the central lists, one chain per
  /// (size class, home shard) — freed cells go back to the shard that owns
  /// their block (BlockDescriptor::HomeShard), keeping sweep-to-alloc
  /// transfers with the mutators that populated the block.  Row-major by
  /// class; flushed whenever a chain reaches the heap's batch size.
  std::vector<Heap::CellChain> Chains;

  Heap::CellChain &chainFor(unsigned ClassIdx, unsigned Shard) {
    return Chains[size_t(ClassIdx) * H.allocShards() + Shard];
  }
};

/// A parallel sweep's merged result plus per-lane accounting.
struct ParallelSweepResult {
  Sweeper::Result Total;
  /// Wall time each lane spent sweeping, indexed by lane.
  std::vector<uint64_t> WorkerNanos;
};

/// Sweeps the whole heap across the pool's lanes: block-index ranges are
/// claimed dynamically, each lane sweeping with a private engine.  With one
/// lane this degenerates to the exact sequential sweep (ascending block
/// order, identical chain batching), which the determinism tests rely on.
/// With \p Obs set and tracing enabled, each lane emits one SweepSpan for
/// its share plus a SweepChunk span per claimed block range.  Eager policy
/// only — the plan's Mode and OldestAge select the survivor semantics.
ParallelSweepResult sweepParallel(Heap &H, CollectorState &S,
                                  GcWorkerPool &Pool, const SweepPlan &Plan,
                                  ObsRegistry *Obs = nullptr);

} // namespace gengc

#endif // GENGC_GC_SWEEPER_H

//===- gc/CyclePhase.h - Phase-driven cycle pipeline ------------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The collection cycle as an explicit pipeline of phases.  Every collector
/// (DLG baseline, generational, stop-the-world comparator) expresses its
/// runCycle as an ordered list of CyclePhase entries; the pipeline runner
/// publishes each phase to the shared CollectorState (the write barrier's
/// "Collector is tracing" test reads it), runs the phase body, and records
/// its wall time into the per-cycle statistics slot the phase names.
///
/// The pipeline changes *how the cycle is organized*, not *what it does*:
/// phase order, the handshake points inside the bodies, and the color
/// toggle's position are exactly the paper's.  What the pipeline buys is a
/// single place where phases are timed and where phase bodies can fan work
/// out to the GcWorkerPool.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_GC_CYCLEPHASE_H
#define GENGC_GC_CYCLEPHASE_H

#include <functional>
#include <vector>

#include "gc/CycleStats.h"
#include "obs/EventRing.h"
#include "runtime/CollectorState.h"
#include "support/Timer.h"

namespace gengc {

/// One stage of a collection cycle.
struct CyclePhase {
  /// Published to CollectorState::Phase before the body runs.
  GcPhase Phase;
  /// Where the phase's wall time lands in the cycle's statistics.
  uint64_t CycleStats::*DurationField;
  /// The phase body.
  std::function<void(CycleStats &)> Run;
};

/// Executes \p Phases in order against \p Cycle: for each phase, publishes
/// its GcPhase, runs the body, and accumulates its duration.  Publishes
/// GcPhase::Idle after the last phase.  With \p Obs set (the collector's
/// event ring; tracing enabled), each phase is additionally emitted as a
/// Phase span — reusing the timestamps the pipeline already takes, so
/// tracing adds no clock reads here.  \p AfterPhase (when non-empty) runs
/// after each phase body, outside its timed span, with the completed phase
/// still published in CollectorState — the heap-verifier hook relies on the
/// phase still being visible to the write barrier while it checks.
///
/// \p AbortCheck (when non-empty) is consulted after each phase body: if it
/// returns true the pipeline stops — the remaining phases are skipped, the
/// aborting phase's AfterPhase hook does NOT run (the heap is mid-unwind by
/// definition, so a verifier pass there would check half-done state), Idle
/// is NOT published (Collector::abortCycle owns the state machine from
/// here), and the runner returns false.  Returns true when every phase ran.
inline bool runCyclePhases(CollectorState &State,
                           const std::vector<CyclePhase> &Phases,
                           CycleStats &Cycle, EventRing *Obs = nullptr,
                           const std::function<void(GcPhase)> &AfterPhase = {},
                           const std::function<bool()> &AbortCheck = {}) {
  for (const CyclePhase &P : Phases) {
    State.Phase.store(P.Phase, std::memory_order_release);
    uint64_t Start = nowNanos();
    P.Run(Cycle);
    uint64_t Duration = nowNanos() - Start;
    Cycle.*(P.DurationField) += Duration;
    if (Obs)
      Obs->emit(ObsEventKind::Phase, Start, Duration, uint64_t(P.Phase));
    if (AbortCheck && AbortCheck())
      return false;
    if (AfterPhase)
      AfterPhase(P.Phase);
  }
  State.Phase.store(GcPhase::Idle, std::memory_order_release);
  return true;
}

} // namespace gengc

#endif // GENGC_GC_CYCLEPHASE_H

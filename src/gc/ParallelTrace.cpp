//===- gc/ParallelTrace.cpp - Work-stealing parallel trace ------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "gc/ParallelTrace.h"

#include <algorithm>
#include <thread>

#include "support/Timer.h"

using namespace gengc;

ParallelTracer::ParallelTracer(Heap &H, CollectorState &S, GcWorkerPool &Pool)
    : H(H), State(S), Pool(Pool) {
  for (unsigned Lane = 0; Lane < Pool.lanes(); ++Lane)
    Engines.push_back(std::make_unique<Tracer>(H, S, &SegPool));
}

void ParallelTracer::setAgingThreshold(uint8_t OldestAge) {
  for (auto &Engine : Engines)
    Engine->setAgingThreshold(OldestAge);
}

void ParallelTracer::setPrefetchDepth(unsigned Depth) {
  for (auto &Engine : Engines)
    Engine->setPrefetchDepth(Depth);
}

void ParallelTracer::setObs(ObsRegistry *Registry) {
  Obs = Registry;
  for (unsigned Lane = 0; Lane < Pool.lanes(); ++Lane)
    Engines[Lane]->setObsRing(Registry ? Registry->laneRing(Lane) : nullptr);
}

ParallelTracer::Result ParallelTracer::trace(Color BlackColor,
                                             GrayCounters &Counters) {
  unsigned Lanes = Pool.lanes();
  Result R;
  R.WorkerNanos.assign(Lanes, 0);
  uint64_t AcquiresAtStart = SegPool.acquires();

  if (Lanes == 1) {
    // The historical single-threaded algorithm, verbatim — GcThreads = 1
    // must stay bit-identical to the pre-parallel collector.
    uint64_t Start = nowNanos();
    Tracer::Result Single = Engines[0]->trace(BlackColor, Counters);
    R.WorkerNanos[0] = nowNanos() - Start;
    R.ObjectsTraced = Single.ObjectsTraced;
    R.BytesTraced = Single.BytesTraced;
    R.Passes = Single.Passes;
    R.TermScanNanos = Single.TermScanNanos;
    R.SegmentsAcquired = SegPool.acquires() - AcquiresAtStart;
    if (EventRing *Ring = Obs ? Obs->laneRing(0) : nullptr)
      Ring->emit(ObsEventKind::TraceSpan, Start, R.WorkerNanos[0],
                 R.ObjectsTraced);
    return R;
  }

  PageTouchTracker &Pages = H.pages();
  const AtomicByteTable &Colors = H.colors();
  std::vector<ObjectRef> Pending;
  State.Grays.drainTo(Pending);

  for (;;) {
    if (!Pending.empty()) {
      // Fan the pending grays out as stealable segments and let every lane
      // work-steal until global quiescence.
      TraceWorkList Shared;
      for (size_t I = 0; I < Pending.size(); I += TraceSegment::Capacity) {
        size_t E = std::min(I + size_t(TraceSegment::Capacity),
                            Pending.size());
        TraceSegment *S = SegPool.acquire();
        S->Count = uint32_t(E - I);
        std::copy(Pending.begin() + I, Pending.begin() + E, S->Refs);
        Shared.push(S);
      }
      Pending.clear();
      std::atomic<unsigned> NumIdle{0};
      std::vector<Tracer::Result> LaneResults(Lanes);
      Pool.run([&](unsigned Lane) {
        uint64_t Start = nowNanos();
        Engines[Lane]->drainShared(Shared, NumIdle, Lanes, BlackColor,
                                   Counters, LaneResults[Lane]);
        uint64_t Duration = nowNanos() - Start;
        R.WorkerNanos[Lane] += Duration;
        if (EventRing *Ring = Obs ? Obs->laneRing(Lane) : nullptr)
          Ring->emit(ObsEventKind::TraceSpan, Start, Duration,
                     LaneResults[Lane].ObjectsTraced);
      });
      for (const Tracer::Result &LR : LaneResults) {
        R.ObjectsTraced += LR.ObjectsTraced;
        R.BytesTraced += LR.BytesTraced;
        R.Offloads += LR.Offloads;
      }
      R.Steals += Shared.steals();
    }

    // Termination, step 1: wait out shades whose buffer enqueue is still
    // in flight, then re-drain anything they published.
    while (State.InFlightShades.load(std::memory_order_acquire) != 0)
      std::this_thread::yield();
    if (State.Grays.drainTo(Pending))
      continue;

    // Termination, step 2: one verification scan of the color side-table,
    // sharded across all pool lanes over the allocated block ranges.  Gray
    // can only rest on object-start granules inside allocated blocks — a
    // block carved after the range snapshot holds only freshly allocated
    // (allocation-colored) objects, and a block freed during the scan held
    // only unmarked free cells — so skipping never-carved space finds
    // every gray the historical full-table leader scan would have
    // (DESIGN.md §17).  Grays it finds (rare) go back through the parallel
    // drain above.
    ++R.Passes;
    uint64_t ScanStart = nowNanos();
    std::vector<std::pair<size_t, size_t>> Chunks; // color-entry ranges
    // Four blocks of granules per claimed chunk: coarse enough that the
    // shared-cursor traffic is negligible, fine enough to balance lanes.
    constexpr size_t ScanChunkEntries = 16 * 1024;
    H.forEachAllocatedBlockRange([&](uint64_t ByteBegin, uint64_t ByteEnd) {
      size_t Begin = size_t(ByteBegin >> GranuleShift);
      size_t End = size_t(ByteEnd >> GranuleShift);
      Pages.touchRange(Region::ColorTable, Begin, End - Begin);
      for (size_t C = Begin; C < End; C += ScanChunkEntries)
        Chunks.emplace_back(C, std::min(C + ScanChunkEntries, End));
    });
    std::vector<std::vector<ObjectRef>> LaneFound(Lanes);
    parallelChunks(
        Pool, 0, Chunks.size(), 1, [&](unsigned Lane, size_t B, size_t E) {
          for (size_t C = B; C != E; ++C)
            Colors.forEachEntryEqualInRange(
                Chunks[C].first, Chunks[C].second, uint8_t(Color::Gray),
                [&](size_t Index) {
                  LaneFound[Lane].push_back(ObjectRef(Index << GranuleShift));
                });
        });
    for (const std::vector<ObjectRef> &Found : LaneFound)
      Pending.insert(Pending.end(), Found.begin(), Found.end());
    R.TermScanNanos += nowNanos() - ScanStart;
    if (Pending.empty()) {
      R.SegmentsAcquired = SegPool.acquires() - AcquiresAtStart;
      return R;
    }
  }
}

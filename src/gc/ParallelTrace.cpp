//===- gc/ParallelTrace.cpp - Work-stealing parallel trace ------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "gc/ParallelTrace.h"

#include <thread>

#include "support/Timer.h"

using namespace gengc;

ParallelTracer::ParallelTracer(Heap &H, CollectorState &S, GcWorkerPool &Pool)
    : H(H), State(S), Pool(Pool) {
  for (unsigned Lane = 0; Lane < Pool.lanes(); ++Lane)
    Engines.push_back(std::make_unique<Tracer>(H, S));
}

void ParallelTracer::setAgingThreshold(uint8_t OldestAge) {
  for (auto &Engine : Engines)
    Engine->setAgingThreshold(OldestAge);
}

void ParallelTracer::setObs(ObsRegistry *Registry) {
  Obs = Registry;
  for (unsigned Lane = 0; Lane < Pool.lanes(); ++Lane)
    Engines[Lane]->setObsRing(Registry ? Registry->laneRing(Lane) : nullptr);
}

ParallelTracer::Result ParallelTracer::trace(Color BlackColor,
                                             GrayCounters &Counters) {
  unsigned Lanes = Pool.lanes();
  Result R;
  R.WorkerNanos.assign(Lanes, 0);

  if (Lanes == 1) {
    // The historical single-threaded algorithm, verbatim — GcThreads = 1
    // must stay bit-identical to the pre-parallel collector.
    uint64_t Start = nowNanos();
    Tracer::Result Single = Engines[0]->trace(BlackColor, Counters);
    R.WorkerNanos[0] = nowNanos() - Start;
    R.ObjectsTraced = Single.ObjectsTraced;
    R.BytesTraced = Single.BytesTraced;
    R.Passes = Single.Passes;
    if (EventRing *Ring = Obs ? Obs->laneRing(0) : nullptr)
      Ring->emit(ObsEventKind::TraceSpan, Start, R.WorkerNanos[0],
                 R.ObjectsTraced);
    return R;
  }

  PageTouchTracker &Pages = H.pages();
  const AtomicByteTable &Colors = H.colors();
  std::vector<ObjectRef> Pending;
  State.Grays.drainTo(Pending);

  for (;;) {
    if (!Pending.empty()) {
      // Fan the pending grays out as stealable chunks and let every lane
      // work-steal until global quiescence.
      TraceWorkList Shared;
      for (size_t I = 0; I < Pending.size();
           I += TraceWorkList::ChunkRefs) {
        size_t E = std::min(I + TraceWorkList::ChunkRefs, Pending.size());
        Shared.push(std::vector<ObjectRef>(Pending.begin() + I,
                                           Pending.begin() + E));
      }
      Pending.clear();
      std::atomic<unsigned> NumIdle{0};
      std::vector<Tracer::Result> LaneResults(Lanes);
      Pool.run([&](unsigned Lane) {
        uint64_t Start = nowNanos();
        Engines[Lane]->drainShared(Shared, NumIdle, Lanes, BlackColor,
                                   Counters, LaneResults[Lane]);
        uint64_t Duration = nowNanos() - Start;
        R.WorkerNanos[Lane] += Duration;
        if (EventRing *Ring = Obs ? Obs->laneRing(Lane) : nullptr)
          Ring->emit(ObsEventKind::TraceSpan, Start, Duration,
                     LaneResults[Lane].ObjectsTraced);
      });
      for (const Tracer::Result &LR : LaneResults) {
        R.ObjectsTraced += LR.ObjectsTraced;
        R.BytesTraced += LR.BytesTraced;
      }
      R.Steals += Shared.steals();
    }

    // Termination, step 1: wait out shades whose buffer enqueue is still
    // in flight, then re-drain anything they published.
    while (State.InFlightShades.load(std::memory_order_acquire) != 0)
      std::this_thread::yield();
    if (State.Grays.drainTo(Pending))
      continue;

    // Termination, step 2: one verification scan of the color side-table.
    // Runs on the leader; grays it finds (rare) go back through the
    // parallel drain above.
    ++R.Passes;
    Pages.touchRange(Region::ColorTable, 0, Colors.size());
    for (size_t W = 0, E = Colors.numWords(); W != E; ++W) {
      if (!AtomicByteTable::wordContainsByte(Colors.racyWord(W),
                                             uint8_t(Color::Gray)))
        continue;
      size_t Begin = W * AtomicByteTable::WordEntries;
      for (size_t I = Begin; I != Begin + AtomicByteTable::WordEntries; ++I)
        if (Color(Colors.entry(I).load(std::memory_order_acquire)) ==
            Color::Gray)
          Pending.push_back(ObjectRef(I << GranuleShift));
    }
    if (Pending.empty())
      return R;
  }
}

//===- gc/HeapVerifier.h - Heap-invariant verifier --------------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An on-demand checker of the invariants the collector's correctness
/// arguments rest on: block-table coherence, free-list integrity, color
/// legality, the card/summary containment invariant, and — after a full
/// trace — the tri-color invariant itself (no traced-black object holds a
/// reference to a clear-colored one).  A violation of any of these is a
/// collector bug; the verifier turns "the workload crashed three cycles
/// later" into "this invariant broke at this phase boundary".
///
/// The verifier runs on the collector thread at phase boundaries (gated by
/// CollectorConfig::VerifyHeap or the GENGC_VERIFY_HEAP environment
/// variable) and from tests.  It is heap-order aware but collector-agnostic:
/// which color counts as "traced black" and which scopes are sound at which
/// boundary is the caller's knowledge (see Collector::verifyHook).
///
/// Concurrency: the checks run against a live heap with running mutators.
/// Structural checks freeze the block table (Heap::withBlocksLocked) or a
/// central free list (Heap::forEachFreeChain) while reading it; the color,
/// card and reachability checks read racily and re-confirm any apparent
/// violation after a pause, so the transient windows the protocol permits
/// (a card byte stored before its summary byte, a referent stored before
/// the barrier shades it) are never reported.  Real violations are stable
/// and survive confirmation.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_GC_HEAPVERIFIER_H
#define GENGC_GC_HEAPVERIFIER_H

#include <string>
#include <vector>

#include "heap/Heap.h"
#include "runtime/CollectorState.h"

namespace gengc {

/// Which invariant set to check — keyed to where in the cycle the verifier
/// runs, because some invariants only hold at specific boundaries.
enum class VerifyScope : uint8_t {
  /// Invariants that hold at every phase boundary: block-table coherence,
  /// free-list integrity, color legality, card implies summary.
  Concurrent = 0,
  /// Concurrent plus the tri-color invariant: no object of the traced-black
  /// color references a clear-colored object.  Sound only after the trace
  /// of a FULL cycle (partial cycles legitimately leave dead black parents
  /// pointing at dead young objects).
  PostTraceFull,
  /// Concurrent plus "no object cell carries the clear color" — sweep just
  /// converted every clear cell to Blue, allocation uses the allocation
  /// color, and no shading happens during sweep.
  CycleEnd,
};

/// Number of distinct VerifyScope values (array sizing).
constexpr unsigned NumVerifyScopes = unsigned(VerifyScope::CycleEnd) + 1;

/// Returns a printable name for \p Scope.
const char *verifyScopeName(VerifyScope Scope);

/// The heap-invariant checker.  Stateless between runs; cheap to construct.
class HeapVerifier {
public:
  HeapVerifier(const Heap &H, const CollectorState &State)
      : H(H), State(State) {}

  /// The outcome of one verification pass.
  struct Report {
    /// Individual assertions evaluated (VerifyPass's Arg1).
    uint64_t ChecksRun = 0;
    /// Human-readable descriptions of confirmed violations; capped at
    /// MaxViolations so a systemic corruption cannot OOM the reporter.
    std::vector<std::string> Violations;
    /// Violations found beyond the cap.
    uint64_t Suppressed = 0;

    bool clean() const { return Violations.empty() && Suppressed == 0; }
  };

  /// Most violations recorded verbatim in one report.
  static constexpr size_t MaxViolations = 32;

  /// Runs every check of \p Scope.  \p TracedBlack is the color that marks
  /// "traced by this cycle" for the PostTraceFull reachability check (the
  /// generational full cycle traces with Color::Black; the DLG and STW
  /// collectors trace with the allocation color).
  Report run(VerifyScope Scope, Color TracedBlack = Color::Black) const;

private:
  void addViolation(Report &R, std::string Message) const;

  void verifyBlockTable(Report &R) const;
  void verifyFreeLists(Report &R) const;
  void verifyColors(Report &R, VerifyScope Scope) const;
  void verifyCardSummaries(Report &R) const;
  void verifyNoClearRefsFromTraced(Report &R, Color TracedBlack) const;
  /// Lazy-sweep invariant: every needs-sweep/sweeping block was published
  /// under the CURRENT color-toggle epoch (the collector drains all residue
  /// before toggling, so a stale epoch means a block could be swept under
  /// the wrong clear color).  No-op under the eager policy — no block ever
  /// leaves Swept.
  void verifyDeferredSweep(Report &R) const;

  /// Invokes \p Callback(Ref) for the start of every object cell currently
  /// part of an object-holding block (SizeClass cells and LargeStart run
  /// bases), reading block states racily but safely (the descriptor
  /// fields-before-State publication protocol).
  template <typename Fn> void forEachCell(Fn Callback) const;

  const Heap &H;
  const CollectorState &State;
};

} // namespace gengc

#endif // GENGC_GC_HEAPVERIFIER_H

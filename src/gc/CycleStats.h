//===- gc/CycleStats.h - Forwarder to obs/CycleStats.h ----------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-cycle statistics vocabulary moved to obs/CycleStats.h when the
/// observability subsystem was introduced (it is shared by the collector,
/// the metrics snapshot, the observer API and the exporters).  This header
/// keeps the historical include path working.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_GC_CYCLESTATS_H
#define GENGC_GC_CYCLESTATS_H

#include "obs/CycleStats.h"

#endif // GENGC_GC_CYCLESTATS_H

//===- gc/StwCollector.h - Stop-the-world comparator ------------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classic stop-the-world mark-and-sweep collector, as a comparator for
/// the paper's motivation: "it is not desirable to stop the program and
/// perform the collection … as this leads both to long pause times and
/// poor processor utilization" (Section 1).  It is NOT part of the paper's
/// evaluation; the ablation bench `ablation_pauses` uses it to demonstrate
/// what the on-the-fly design buys — every mutator records its
/// collector-induced stalls (Mutator::pauseStats), and under this
/// collector the maximum stall equals a whole collection, while the
/// on-the-fly collectors' stalls are zero (modulo allocation throttling).
///
/// Protocol: toggle colors; raise StopWorld; each mutator shades its own
/// roots at its next cooperate() and parks; blocked mutators' roots are
/// shaded by the collector; once everyone is accounted for, trace and
/// sweep run with the world stopped; lower StopWorld.  It reuses the same
/// Tracer/Sweeper and the Remark 5.1 color-toggle machinery as the DLG
/// baseline, so the comparison isolates concurrency itself.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_GC_STWCOLLECTOR_H
#define GENGC_GC_STWCOLLECTOR_H

#include "gc/Collector.h"

namespace gengc {

/// Stop-the-world mark-sweep.  Every cycle collects the whole heap.
class StwCollector : public Collector {
public:
  StwCollector(Heap &H, CollectorState &S, MutatorRegistry &Registry,
               GlobalRoots &Roots, const CollectorConfig &Config);

protected:
  CycleStats runCycle(CycleRequest Kind) override;

private:
  /// Blocks until every registered mutator is parked-and-shaded for stop
  /// \p Epoch or blocked (with its roots shaded either way).
  void waitWorldStopped(uint64_t Epoch);
};

} // namespace gengc

#endif // GENGC_GC_STWCOLLECTOR_H

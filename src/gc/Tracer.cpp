//===- gc/Tracer.cpp - Concurrent tri-color trace --------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "gc/Tracer.h"

#include <thread>

#include "gc/ParallelTrace.h"
#include "runtime/ObjectModel.h"
#include "support/Timer.h"

using namespace gengc;

void Tracer::markBlack(ObjectRef Ref, Color BlackColor, GrayCounters &Counters,
                       Result &R) {
  // A buffered entry may have been processed already via another path
  // (duplicates are possible when a mutator shades during root marking);
  // only gray objects are traced.
  if (H.loadColor(Ref, std::memory_order_acquire) != Color::Gray)
    return;
  PageTouchTracker &Pages = H.pages();
  uint32_t RefSlots = objectRefSlots(H, Ref);
  Pages.touchRange(Region::Arena, Ref,
                   ObjectHeaderBytes + uint64_t(RefSlots) * RefSlotBytes);
  Color Clear = State.clearColor();
  // Aging: this object tenures at the coming sweep; its pointers to
  // objects that will stay young must rest on dirty cards (see
  // setAgingThreshold).
  bool WillTenure =
      AgingOldestAge != 0 && H.ages().ageOf(Ref) == AgingOldestAge;
  for (uint32_t I = 0; I < RefSlots; ++I) {
    ObjectRef Son = loadRefSlot(H, Ref, I);
    if (Son == NullRef)
      continue;
    Pages.touch(Region::ColorTable, Son >> GranuleShift);
    if (WillTenure && H.ages().ageOf(Son) < AgingOldestAge)
      H.cards().markCard(refSlotOffset(Ref, I));
    if (tryMarkGray(H, Son, Clear)) {
      Counters.FromClear.fetch_add(1, std::memory_order_relaxed);
      Counters.FromClearBytes.fetch_add(H.storageBytesOf(Son),
                                        std::memory_order_relaxed);
      Stack.push_back(Son);
    }
  }
  H.storeColor(Ref, BlackColor);
  ++R.ObjectsTraced;
  R.BytesTraced += H.storageBytesOf(Ref);
}

void Tracer::drain(Color BlackColor, GrayCounters &Counters, Result &R) {
  do {
    while (!Stack.empty()) {
      ObjectRef Ref = Stack.back();
      Stack.pop_back();
      markBlack(Ref, BlackColor, Counters, R);
    }
    // Pick up objects shaded concurrently by mutator write barriers.
  } while (State.Grays.drainTo(Stack));
}

void Tracer::drainShared(TraceWorkList &Shared, std::atomic<unsigned> &NumIdle,
                         unsigned Lanes, Color BlackColor,
                         GrayCounters &Counters, Result &R) {
  constexpr size_t OffloadAt = 2 * TraceWorkList::ChunkRefs;
  for (;;) {
    while (!Stack.empty()) {
      // Offload the oldest half-chunk when the local stack has plenty and
      // the shared list is not already saturated.  Oldest entries sit near
      // wide fan-out points, so stolen chunks carry real subtrees.
      if (Stack.size() >= OffloadAt && Shared.approxChunks() < Lanes) {
        std::vector<ObjectRef> Chunk(
            Stack.begin(), Stack.begin() + TraceWorkList::ChunkRefs);
        Stack.erase(Stack.begin(),
                    Stack.begin() + TraceWorkList::ChunkRefs);
        Shared.push(std::move(Chunk));
      }
      ObjectRef Ref = Stack.back();
      Stack.pop_back();
      markBlack(Ref, BlackColor, Counters, R);
    }
    if (Shared.steal(Stack)) {
      if (Obs)
        Obs->instant(ObsEventKind::TraceSteal, nowNanos(), Stack.size());
      continue;
    }
    // Idle consensus: a lane deposits chunks only while it is active, so
    // once every lane has voted idle the shared list cannot refill — the
    // last voter's failed steal saw it empty and no active lane remains.
    // Anything shaded by mutators meanwhile sits in the shared gray
    // buffer, which the leader drains after the pool run.
    NumIdle.fetch_add(1, std::memory_order_acq_rel);
    for (;;) {
      if (!Shared.empty()) {
        NumIdle.fetch_sub(1, std::memory_order_acq_rel);
        break;
      }
      if (NumIdle.load(std::memory_order_acquire) == Lanes)
        return;
      std::this_thread::yield();
    }
  }
}

Tracer::Result Tracer::trace(Color BlackColor, GrayCounters &Counters) {
  Result R;
  PageTouchTracker &Pages = H.pages();

  // Main trace: everything shaded so far (roots, dirty-card scans) and
  // everything mutators shade while we run arrives through the gray
  // buffer.  This is O(objects traced), independent of the heap size —
  // the property that makes partial collections cheap.
  State.Grays.drainTo(Stack);
  drain(BlackColor, Counters, R);

  const AtomicByteTable &Colors = H.colors();
  for (;;) {
    // Termination, step 1: wait out shades whose buffer enqueue is still
    // in flight, then re-drain anything they published.
    while (State.InFlightShades.load(std::memory_order_acquire) != 0)
      std::this_thread::yield();
    if (State.Grays.drainTo(Stack)) {
      drain(BlackColor, Counters, R);
      continue;
    }

    // Termination, step 2: one verification scan of the color side-table
    // — "while there is a gray object" made literal.  Normally finds
    // nothing; word hints skip clean regions eight granules at a time.
    ++R.Passes;
    bool FoundGray = false;
    Pages.touchRange(Region::ColorTable, 0, Colors.size());
    for (size_t W = 0, E = Colors.numWords(); W != E; ++W) {
      if (!AtomicByteTable::wordContainsByte(Colors.racyWord(W),
                                             uint8_t(Color::Gray)))
        continue;
      size_t Begin = W * AtomicByteTable::WordEntries;
      for (size_t I = Begin; I != Begin + AtomicByteTable::WordEntries;
           ++I) {
        if (Color(Colors.entry(I).load(std::memory_order_acquire)) !=
            Color::Gray)
          continue;
        FoundGray = true;
        // Only object-start granules ever receive a color, so the granule
        // index converts directly to a reference.
        markBlack(ObjectRef(I << GranuleShift), BlackColor, Counters, R);
        drain(BlackColor, Counters, R);
      }
    }
    if (!FoundGray)
      return R;
  }
}

//===- gc/Tracer.cpp - Concurrent tri-color trace --------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "gc/Tracer.h"

#include <algorithm>
#include <thread>

#include "gc/ParallelTrace.h"
#include "runtime/ObjectModel.h"
#include "support/Prefetch.h"
#include "support/Timer.h"

using namespace gengc;

void Tracer::setPrefetchDepth(unsigned Depth) {
  if (!PrefetchAvailable)
    Depth = 0;
  PrefetchDepth = std::min(Depth, MaxPrefetchDepth);
}

void Tracer::markBlack(ObjectRef Ref, Color BlackColor, GrayCounters &Counters,
                       Result &R) {
  // A buffered entry may have been processed already via another path
  // (duplicates are possible when a mutator shades during root marking);
  // only gray objects are traced.
  if (H.loadColor(Ref, std::memory_order_acquire) != Color::Gray)
    return;
  PageTouchTracker &Pages = H.pages();
  uint32_t RefSlots = objectRefSlots(H, Ref);
  Pages.touchRange(Region::Arena, Ref,
                   ObjectHeaderBytes + uint64_t(RefSlots) * RefSlotBytes);
  Color Clear = State.clearColor();
  // Aging: this object tenures at the coming sweep; its pointers to
  // objects that will stay young must rest on dirty cards (see
  // setAgingThreshold).
  bool WillTenure =
      AgingOldestAge != 0 && H.ages().ageOf(Ref) == AgingOldestAge;
  for (uint32_t I = 0; I < RefSlots; ++I) {
    ObjectRef Son = loadRefSlot(H, Ref, I);
    if (Son == NullRef)
      continue;
    Pages.touch(Region::ColorTable, Son >> GranuleShift);
    if (WillTenure && H.ages().ageOf(Son) < AgingOldestAge)
      H.cards().markCard(refSlotOffset(Ref, I));
    if (tryMarkGray(H, Son, Clear)) {
      // Batched into lane-locals: one pair of fetch_adds per segment of
      // marks instead of two shared-cache-line RMWs per shaded son.
      ++PendingFromClear;
      PendingFromClearBytes += H.storageBytesOf(Son);
      Stack.push(Son);
    }
  }
  H.storeColor(Ref, BlackColor);
  ++R.ObjectsTraced;
  R.BytesTraced += H.storageBytesOf(Ref);
  if (++MarksSinceFlush >= TraceSegment::Capacity)
    flushCounters(Counters);
}

void Tracer::drainLocal(TraceWorkList *Shared, unsigned Lanes,
                        Color BlackColor, GrayCounters &Counters, Result &R) {
  // Offload the oldest segment when the local stack has plenty and the
  // shared list is not already saturated: an O(1) pointer swap — the old
  // vector engine paid an O(n) front-erase here, which must not come back
  // (WorkerPoolTest pins the zero-copy steal, micro_trace_scale the cost).
  auto MaybeOffload = [&] {
    if (Shared == nullptr ||
        Stack.size() < 2 * size_t(TraceSegment::Capacity) ||
        Shared->approxSegments() >= Lanes)
      return;
    if (TraceSegment *S = Stack.detachBottom()) {
      Shared->push(S);
      ++R.Offloads;
    }
  };

  if (PrefetchDepth == 0) {
    // Historical pop order, no window: GcThreads = 1 with PrefetchDepth = 0
    // is bit-identical to the pre-segment engine.
    while (!Stack.empty()) {
      MaybeOffload();
      markBlack(Stack.pop(), BlackColor, Counters, R);
    }
  } else {
    // Bounded FIFO prefetch window: refs are popped up to PrefetchDepth
    // ahead and their color byte + header line prefetched on entry, so the
    // cache misses of the next K objects overlap the tracing of the
    // current one (memory-level parallelism for pointer chasing).
    ObjectRef Window[MaxPrefetchDepth];
    unsigned Head = 0, Tail = 0;
    for (;;) {
      while (Head - Tail < PrefetchDepth && !Stack.empty()) {
        MaybeOffload();
        ObjectRef Next = Stack.pop();
        prefetchRead(H.colorPrefetchAddress(Next));
        prefetchRead(H.prefetchAddress(Next));
        Window[Head++ % MaxPrefetchDepth] = Next;
      }
      if (Head == Tail)
        break;
      markBlack(Window[Tail++ % MaxPrefetchDepth], BlackColor, Counters, R);
    }
  }
  flushCounters(Counters);
}

void Tracer::drain(Color BlackColor, GrayCounters &Counters, Result &R) {
  do {
    drainLocal(/*Shared=*/nullptr, /*Lanes=*/0, BlackColor, Counters, R);
    // Pick up objects shaded concurrently by mutator write barriers.
  } while (State.Grays.drainEach([&](ObjectRef Ref) { Stack.push(Ref); }));
}

void Tracer::drainShared(TraceWorkList &Shared, std::atomic<unsigned> &NumIdle,
                         unsigned Lanes, Color BlackColor,
                         GrayCounters &Counters, Result &R) {
  for (;;) {
    // drainLocal leaves the window empty and the counters flushed, so an
    // idle vote below never hides work or statistics from the leader.
    drainLocal(&Shared, Lanes, BlackColor, Counters, R);
    if (TraceSegment *S = Shared.steal()) {
      if (Obs)
        Obs->instant(ObsEventKind::TraceSteal, nowNanos(), S->Count);
      Stack.attachSegment(S);
      continue;
    }
    // Idle consensus: a lane deposits segments only while it is active, so
    // once every lane has voted idle the shared list cannot refill — the
    // last voter's failed steal saw it empty and no active lane remains.
    // Anything shaded by mutators meanwhile sits in the shared gray
    // buffer, which the leader drains after the pool run.
    NumIdle.fetch_add(1, std::memory_order_acq_rel);
    for (;;) {
      if (!Shared.empty()) {
        NumIdle.fetch_sub(1, std::memory_order_acq_rel);
        break;
      }
      if (NumIdle.load(std::memory_order_acquire) == Lanes)
        return;
      std::this_thread::yield();
    }
  }
}

Tracer::Result Tracer::trace(Color BlackColor, GrayCounters &Counters) {
  Result R;
  PageTouchTracker &Pages = H.pages();

  // Main trace: everything shaded so far (roots, dirty-card scans) and
  // everything mutators shade while we run arrives through the gray
  // buffer.  This is O(objects traced), independent of the heap size —
  // the property that makes partial collections cheap.
  State.Grays.drainEach([&](ObjectRef Ref) { Stack.push(Ref); });
  drain(BlackColor, Counters, R);

  const AtomicByteTable &Colors = H.colors();
  for (;;) {
    // Termination, step 1: wait out shades whose buffer enqueue is still
    // in flight, then re-drain anything they published.
    while (State.InFlightShades.load(std::memory_order_acquire) != 0)
      std::this_thread::yield();
    if (State.Grays.drainEach([&](ObjectRef Ref) { Stack.push(Ref); })) {
      drain(BlackColor, Counters, R);
      continue;
    }

    // Termination, step 2: one verification scan of the color side-table
    // — "while there is a gray object" made literal.  Normally finds
    // nothing; word hints skip clean regions eight granules at a time.
    ++R.Passes;
    uint64_t ScanStart = nowNanos();
    bool FoundGray = false;
    Pages.touchRange(Region::ColorTable, 0, Colors.size());
    Colors.forEachEntryEqualInRange(
        0, Colors.size(), uint8_t(Color::Gray), [&](size_t I) {
          FoundGray = true;
          // Only object-start granules ever receive a color, so the
          // granule index converts directly to a reference.
          markBlack(ObjectRef(I << GranuleShift), BlackColor, Counters, R);
          drain(BlackColor, Counters, R);
        });
    R.TermScanNanos += nowNanos() - ScanStart;
    if (!FoundGray) {
      flushCounters(Counters);
      return R;
    }
  }
}

//===- gc/WorkerPool.cpp - Parallel GC worker pool --------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "gc/WorkerPool.h"

#include "support/FaultInjector.h"

using namespace gengc;

GcWorkerPool::GcWorkerPool(unsigned Lanes) : NumLanes(Lanes < 1 ? 1 : Lanes) {
  Threads.reserve(NumLanes - 1);
  for (unsigned Lane = 1; Lane < NumLanes; ++Lane)
    Threads.emplace_back([this, Lane] { threadLoop(Lane); });
}

GcWorkerPool::~GcWorkerPool() {
  {
    std::scoped_lock Locked(Mutex);
    GENGC_ASSERT(Outstanding == 0, "pool destroyed while a job is running");
    Stopping = true;
  }
  WorkCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void GcWorkerPool::finishLane(std::exception_ptr Error) {
  std::scoped_lock Locked(Mutex);
  if (Error && !FirstError)
    FirstError = Error;
  if (--Outstanding == 0)
    DoneCv.notify_all();
}

void GcWorkerPool::threadLoop(unsigned Lane) {
  uint64_t SeenEpoch = 0;
  for (;;) {
    const std::function<void(unsigned)> *MyJob;
    {
      std::unique_lock Locked(Mutex);
      WorkCv.wait(Locked,
                  [&] { return Stopping || Epoch != SeenEpoch; });
      if (Stopping)
        return;
      SeenEpoch = Epoch;
      MyJob = Job;
    }
    std::exception_ptr Error;
    // Fault site: stall this lane at job start — the slow-worker scenario
    // the phase barriers and the steal protocol must absorb.
    FaultInjector::fire(FaultSite::WorkerLaneStall);
    try {
      (*MyJob)(Lane);
    } catch (...) {
      Error = std::current_exception();
    }
    finishLane(Error);
  }
}

void GcWorkerPool::run(const std::function<void(unsigned)> &Job) {
  if (NumLanes == 1) {
    Job(0); // No pool threads: a plain, deterministic call.
    return;
  }
  {
    std::scoped_lock Locked(Mutex);
    GENGC_ASSERT(Outstanding == 0 && this->Job == nullptr,
                 "GcWorkerPool::run is not reentrant");
    this->Job = &Job;
    Outstanding = NumLanes; // lanes 1..N-1 plus the caller's lane 0
    FirstError = nullptr;
    ++Epoch;
  }
  WorkCv.notify_all();

  std::exception_ptr Error;
  try {
    Job(0);
  } catch (...) {
    Error = std::current_exception();
  }
  finishLane(Error);

  std::exception_ptr Pending;
  {
    std::unique_lock Locked(Mutex);
    DoneCv.wait(Locked, [&] { return Outstanding == 0; });
    this->Job = nullptr;
    Pending = FirstError;
    FirstError = nullptr;
  }
  if (Pending)
    std::rethrow_exception(Pending);
}

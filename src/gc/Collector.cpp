//===- gc/Collector.cpp - Collector thread and cycle driver ----------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "gc/Collector.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "gc/LazySweep.h"
#include "support/Backoff.h"
#include "support/Timer.h"

using namespace gengc;

Collector::Collector(Heap &H, CollectorState &S, MutatorRegistry &Registry,
                     GlobalRoots &Roots, const CollectorConfig &Config)
    : H(H), State(S), Registry(Registry), Roots(Roots), Config(Config),
      Obs(Config.Obs, std::max(1u, Config.GcThreads)),
      Handshakes(S, Registry), Pool(Config.GcThreads),
      TraceEngine(H, S, Pool), Trig(Config.Trigger, H.heapBytes()) {
  Handshakes.setObsRing(Obs.laneRing(0));
  // The watchdog pointer must outlive the driver; the member copy of the
  // config does, the constructor parameter may not.
  Handshakes.setWatchdog(&this->Config.Watchdog);
  TraceEngine.setObs(&Obs);
  TraceEngine.setPrefetchDepth(Config.PrefetchDepth);
  if (Config.VerifyHeap || std::getenv("GENGC_VERIFY_HEAP") != nullptr) {
    this->Config.VerifyHeap = true;
    Verifier = std::make_unique<HeapVerifier>(H, S);
  }
  // During-cycle allocation budget: the trigger fires around YoungBytes of
  // allocation, so allowing another half generation during the cycle
  // bounds occupancy carry-over at 1.5 young generations — comfortably
  // inside the trigger's 3-generation headroom even when two consecutive
  // cycles carry over (identical for both collectors).
  State.ThrottleBytes.store(Config.Trigger.YoungBytes +
                                Config.Trigger.YoungBytes / 2,
                            std::memory_order_relaxed);
}

Collector::~Collector() {
  stop();
  // The heap may outlive this collector (tests construct collectors against
  // a shared heap); never leave it pointing at a dead engine.
  if (LazyEngine)
    H.setLazySweeper(nullptr);
}

void Collector::initSweepPlan(SweepMode Mode) {
  Plan.Policy = Config.Sweep;
  Plan.Mode = Mode;
  Plan.OldestAge = Config.OldestAge;
  if (Plan.Policy == SweepPolicy::Lazy) {
    LazyEngine = std::make_unique<LazySweepEngine>(H, State, Plan, &Obs);
    H.setLazySweeper(LazyEngine.get());
  }
}

CyclePhase Collector::sweepPhase(bool GenerationalEstimate) {
  if (lazySweep())
    return {GcPhase::PublishSweep, &CycleStats::SweepNanos,
            [this](CycleStats &C) {
              if (abortPhaseEntry(FaultSite::SweepAbort, GcPhase::PublishSweep))
                return;
              LazySweepEngine::PublishResult P = LazyEngine->publish();
              C.LazyBlocksPublished = P.BlocksPublished;
              C.ObjectsFreed += P.Large.ObjectsFreed;
              C.BytesFreed += P.Large.BytesFreed;
              C.LiveObjectsAfter += P.Large.LiveObjectsAfter;
              C.LiveBytesAfter += P.Large.LiveBytesAfter;
            }};
  return {GcPhase::Sweep, &CycleStats::SweepNanos,
          [this, GenerationalEstimate](CycleStats &C) {
            if (abortPhaseEntry(FaultSite::SweepAbort, GcPhase::Sweep))
              return;
            ParallelSweepResult R =
                sweepParallel(H, State, Pool, Plan, &Obs);
            C.ObjectsFreed += R.Total.ObjectsFreed;
            C.BytesFreed += R.Total.BytesFreed;
            C.LiveObjectsAfter += R.Total.LiveObjectsAfter;
            C.LiveBytesAfter += R.Total.LiveBytesAfter;
            C.SweepWorkerNanos = std::move(R.WorkerNanos);
            if (GenerationalEstimate)
              C.LiveEstimateBytes =
                  R.Total.LiveBytesAfter - R.Total.AllocColoredBytes;
          }};
}

CyclePhase Collector::residuePhase() {
  return {GcPhase::SweepResidue, &CycleStats::ResidueNanos,
          [this](CycleStats &C) {
            C.LazyBlocksResidueSwept = LazyEngine->drainResidue();
            // Harvest everything swept since the previous publish — the
            // residue just drained plus every mutator claim and idle drip
            // in between (one-cycle-lag attribution).
            Sweeper::Result R = LazyEngine->takeResults();
            C.ObjectsFreed += R.ObjectsFreed;
            C.BytesFreed += R.BytesFreed;
            C.LiveObjectsAfter += R.LiveObjectsAfter;
            C.LiveBytesAfter += R.LiveBytesAfter;
          }};
}

std::vector<CyclePhase>
Collector::withResiduePhase(std::vector<CyclePhase> Phases) {
  // The residue of the previous publish must drain before this cycle's
  // color toggle, so the phase goes first.
  if (lazySweep())
    Phases.insert(Phases.begin(), residuePhase());
  return Phases;
}

void Collector::start() {
  GENGC_ASSERT(!Running, "collector started twice");
  StopFlag.store(false, std::memory_order_relaxed);
  Thread = std::thread([this] { threadLoop(); });
  Running = true;
}

void Collector::stop() {
  if (!Running)
    return;
  {
    std::scoped_lock Locked(RequestMutex);
    StopFlag.store(true, std::memory_order_relaxed);
  }
  RequestCv.notify_all();
  Thread.join();
  Running = false;
}

void Collector::requestCycle(CycleRequest Kind) {
  GENGC_ASSERT(Kind != CycleRequest::None, "requested an empty cycle");
  {
    std::scoped_lock Locked(RequestMutex);
    // Full dominates Partial if both are pending.
    if (Pending == CycleRequest::None || Kind == CycleRequest::Full)
      Pending = Kind;
  }
  RequestCv.notify_all();
}

void Collector::collectSync(CycleRequest Kind) {
  GENGC_ASSERT(Running, "collectSync requires a started collector");
  uint64_t Before = completedCycles();
  requestCycle(Kind);
  std::unique_lock Locked(RequestMutex);
  DoneCv.wait(Locked, [&] { return completedCycles() > Before; });
}

void Collector::collectSyncCooperating(CycleRequest Kind, Mutator &M) {
  GENGC_ASSERT(Running, "collectSyncCooperating requires a started collector");
  uint64_t Before = completedCycles();
  requestCycle(Kind);
  // Backoff instead of a fixed period: cycles span microseconds (idle young
  // heap) to milliseconds (full trace), so a fixed sleep is wrong at one
  // end or the other.  Cooperate before every sleep — the cycle we wait for
  // cannot finish its handshakes otherwise.
  Backoff Back(/*InitialNanos=*/10 * 1000, /*CapNanos=*/200 * 1000);
  while (completedCycles() <= Before) {
    M.cooperate();
    Back.pause();
  }
}

void Collector::waitForMemory(Mutator &M) {
  MemoryWaits.fetch_add(1, std::memory_order_relaxed);
  collectSyncCooperating(CycleRequest::Full, M);
}

GcRunStats Collector::statsSnapshot() const {
  std::scoped_lock Locked(StatsMutex);
  return Stats;
}

void Collector::resetStats() {
  std::scoped_lock Locked(StatsMutex);
  Stats = GcRunStats();
}

void Collector::addObserver(GcObserver &Observer) {
  std::scoped_lock Locked(ObserverMutex);
  Observers.push_back(&Observer);
}

void Collector::removeObserver(GcObserver &Observer) {
  std::scoped_lock Locked(ObserverMutex);
  Observers.erase(std::remove(Observers.begin(), Observers.end(), &Observer),
                  Observers.end());
}

void Collector::notifyObservers(const CycleStats &Cycle,
                                uint64_t CycleIndex) {
  std::scoped_lock Locked(ObserverMutex);
  for (GcObserver *Observer : Observers)
    Observer->onGcCycleEnd(Cycle, CycleIndex);
}

void Collector::runVerifier(VerifyScope Scope) {
  if (!Verifier)
    return;
  HeapVerifier::Report R = Verifier->run(Scope, tracedBlackColor());
  if (!R.clean()) {
    std::fprintf(stderr,
                 "gengc heap verifier: %zu violation(s) at the %s boundary\n",
                 R.Violations.size() + size_t(R.Suppressed),
                 verifyScopeName(Scope));
    for (const std::string &V : R.Violations)
      std::fprintf(stderr, "  %s\n", V.c_str());
    if (R.Suppressed != 0)
      std::fprintf(stderr, "  ... and %llu more\n",
                   (unsigned long long)R.Suppressed);
    fatalError("heap invariant violated", __FILE__, __LINE__);
  }
  if (EventRing *Ring = Obs.laneRing(0))
    Ring->instant(ObsEventKind::VerifyPass, nowNanos(), uint64_t(Scope),
                  R.ChecksRun);
}

std::function<void(GcPhase)> Collector::verifyHook(bool FullCycle) {
  if (!Verifier)
    return {};
  return [this, FullCycle](GcPhase Phase) {
    // One scope per boundary, keyed to what is sound there (the hook runs
    // with the completed phase still published, so the write barrier still
    // behaves as in that phase — the transient-window arguments rely on
    // this).
    VerifyScope Scope = VerifyScope::Concurrent;
    if (Phase == GcPhase::Trace && FullCycle)
      Scope = VerifyScope::PostTraceFull;
    else if (Phase == GcPhase::Sweep)
      Scope = VerifyScope::CycleEnd;
    else if (Phase == GcPhase::SweepResidue)
      // Sound as a cycle-end boundary for the *previous* cycle: no toggle
      // has happened since its publish, and the drain just retired every
      // published block, so no reclaimable cell still carries the current
      // clear color.  (PublishSweep deliberately stays Concurrent — its
      // blocks are unswept by design.)
      Scope = VerifyScope::CycleEnd;
    runVerifier(Scope);
  };
}

void Collector::resetGrayCounters() {
  CollectorGrays.reset();
  Registry.forEach([](Mutator &M) { M.grayCounters().reset(); });
}

void Collector::sumGrayCounters(CycleStats &Stats) {
  uint64_t Objects = CollectorGrays.FromClear.load(std::memory_order_relaxed);
  uint64_t Bytes =
      CollectorGrays.FromClearBytes.load(std::memory_order_relaxed);
  Registry.forEach([&](Mutator &M) {
    Objects += M.grayCounters().FromClear.load(std::memory_order_relaxed);
    Bytes += M.grayCounters().FromClearBytes.load(std::memory_order_relaxed);
  });
  Stats.YoungSurvivors = Objects;
  Stats.YoungSurvivorBytes = Bytes;
}

//===----------------------------------------------------------------------===
// Cycle recovery (WatchdogPolicy::Escalate; DESIGN.md §19).
//===----------------------------------------------------------------------===

bool Collector::waitOrAbort() {
  if (Handshakes.wait())
    return true;
  AbortCycleFlag = true;
  EscalatedAbort = true;
  AbortEscalation = Handshakes.lastEscalation();
  AbortPhase = State.Phase.load(std::memory_order_relaxed);
  return false;
}

bool Collector::handshakeOrAbort(HandshakeStatus Status) {
  Handshakes.post(Status);
  return waitOrAbort();
}

bool Collector::abortPhaseEntry(FaultSite Site, GcPhase Phase) {
  if (!AllowAbort)
    return false;
  if (AbortCycleFlag)
    return true;
  if (!FaultInjector::fire(Site))
    return false;
  AbortCycleFlag = true;
  EscalatedAbort = false;
  AbortPhase = Phase;
  AbortEscalation = 0;
  return true;
}

void Collector::abortRecolor() {
  // Everything allocated becomes the allocation color.  Dead cells are
  // revived as floating garbage for exactly one cycle: the next cycle is
  // forced Full, its toggle turns all of this into the clear color, and
  // its whole-heap trace re-derives liveness from the roots.  Leaving any
  // OTHER color behind would be unsound — a gray or stale-colored object
  // looks either already-traced (sons never scanned) or dead to that
  // cycle.
  Color Alloc = State.allocationColor();
  forEachHeapCell([&](ObjectRef Ref) {
    Color C = H.loadColor(Ref, std::memory_order_relaxed);
    if (C != Color::Blue && C != Alloc)
      H.storeColor(Ref, Alloc);
  });
}

void Collector::abortCycle(CycleStats &Cycle) {
  Cycle.Aborted = true;

  // 1. Quiesce the trace-path barrier tests: no phase is running.  (The
  //    pipeline stopped without publishing Idle — that is ours to do.)
  State.Phase.store(GcPhase::Idle, std::memory_order_release);

  // 2. Finish the handshake protocol back to Async so the mutator-facing
  //    state machine is whole again.  The wedged mutator that caused an
  //    escalated abort is usually still wedged, so this wait is bounded by
  //    the same deadline and ends in force-adoption — counted here, once,
  //    as this cycle's forced mutators.
  if (State.StatusC.load(std::memory_order_acquire) != HandshakeStatus::Async)
    Handshakes.post(HandshakeStatus::Async);
  uint64_t Window =
      std::max<uint64_t>(Config.Watchdog.DeadlineNanos, 1'000'000);
  uint64_t Begin = nowNanos();
  while (Registry.countLaggingAndHelp(HandshakeStatus::Async) != 0) {
    if (nowNanos() - Begin >= Window) {
      Cycle.ForcedMutators +=
          Handshakes.forceCompleteLaggards(HandshakeStatus::Async);
      break;
    }
    std::this_thread::yield();
  }

  // 3. Let in-flight shade publications drain, then discard the gray work.
  //    Every mutator is back at Async with Idle published, so no new
  //    shades start; a bounded wait covers the CAS-won-push-pending window
  //    (a force-adopted thread wedged inside it is the documented
  //    quiet-thread assumption — see DESIGN.md §19).
  Begin = nowNanos();
  while (State.InFlightShades.load(std::memory_order_acquire) != 0 &&
         nowNanos() - Begin < 10'000'000)
    std::this_thread::yield();
  State.Grays.clear();

  // 4. Lazy sweep: nothing was published this cycle (SweepAbort fires
  //    before publish), but drain defensively so no needs-sweep block can
  //    straddle the next cycle's toggle.
  if (LazyEngine)
    LazyEngine->drainResidue();

  // 5. Restore colors under the current (kept) color assignment.
  abortRecolor();

  // 6. The cycle consumed card / remembered-set information mid-flight;
  //    rather than reconstruct it, the next cycle traces everything.
  ForceFullNext = true;

  if (EventRing *Ring = Obs.laneRing(0)) {
    Ring->instant(ObsEventKind::EscalationStep, nowNanos(),
                  uint64_t(EscalationAction::AbortCycle),
                  Cycle.ForcedMutators);
    Ring->instant(ObsEventKind::CycleAbort, nowNanos(), uint64_t(AbortPhase),
                  AbortEscalation);
  }

  // 7. Certify the unwound heap before declaring the abort complete.
  runVerifier(VerifyScope::Concurrent);
}

uint64_t Collector::waitWorldStoppedBounded(uint64_t Epoch) {
  // Same accounting loop as StwCollector::waitWorldStopped, with a
  // deadline: a thread that blew through every handshake grace period gets
  // its roots shaded on its behalf and is counted stopped.
  uint64_t Deadline = Config.Watchdog.DeadlineNanos != 0
                          ? Config.Watchdog.DeadlineNanos
                          : 50'000'000;
  Deadline *= std::max(1u, Config.Watchdog.EscalateAfterFires);
  uint64_t Begin = nowNanos();
  for (unsigned Spin = 0;; ++Spin) {
    size_t Total = 0;
    size_t Accounted = 0;
    Registry.forEach([&](Mutator &M) {
      ++Total;
      if (M.stwParkedFor(Epoch) || M.markRootsIfBlockedForStw())
        ++Accounted;
    });
    if (Accounted >= Total)
      return 0;
    uint64_t Waited = nowNanos() - Begin;
    if (Waited >= Deadline) {
      uint64_t Forced = 0;
      Registry.forEach([&](Mutator &M) {
        if (!M.stwParkedFor(Epoch) && !M.markRootsIfBlockedForStw()) {
          M.forceShadeForStw();
          ++Forced;
        }
      });
      Handshakes.fireStall("stop-the-world", Waited);
      if (EventRing *Ring = Obs.laneRing(0))
        Ring->instant(ObsEventKind::EscalationStep, nowNanos(),
                      uint64_t(EscalationAction::ForceAdopt), Forced);
      return Forced;
    }
    if (Spin < 64)
      std::this_thread::yield();
    else
      std::this_thread::sleep_for(std::chrono::microseconds(20));
  }
}

CycleStats Collector::runDegradedCycle(CycleRequest Kind) {
  (void)Kind; // The fallback always collects the whole heap.
  CycleStats Cycle;
  Cycle.Kind = CycleKind::NonGenerational;
  Cycle.Degraded = true;
  Cycle.GcWorkers = Pool.lanes();

  runCyclePhases(
      State,
      // The residue drain runs before StopWorld is raised, as in the STW
      // comparator.
      withResiduePhase({
          {GcPhase::Clear, &CycleStats::ClearNanos,
           [this](CycleStats &C) {
             State.switchAllocationClearColors();
             uint64_t Epoch =
                 State.StopEpoch.fetch_add(1, std::memory_order_acq_rel) + 1;
             State.StopWorld.store(true, std::memory_order_seq_cst);
             C.ForcedMutators += waitWorldStoppedBounded(Epoch);
           }},

          {GcPhase::Mark, &CycleStats::MarkNanos,
           [this](CycleStats &) { Roots.markAll(CollectorGrays); }},

          {GcPhase::Trace, &CycleStats::TraceNanos,
           [this](CycleStats &C) {
             ParallelTracer::Result TraceResult =
                 TraceEngine.trace(State.allocationColor(), CollectorGrays);
             C.ObjectsTraced = TraceResult.ObjectsTraced;
             C.BytesTraced = TraceResult.BytesTraced;
             C.LiveEstimateBytes = TraceResult.BytesTraced;
             C.TraceSteals = TraceResult.Steals;
             C.TraceOffloads = TraceResult.Offloads;
             C.TraceSegmentsAcquired = TraceResult.SegmentsAcquired;
             C.TraceTermScanNanos = TraceResult.TermScanNanos;
             C.TraceWorkerNanos = std::move(TraceResult.WorkerNanos);
           }},

          sweepPhase(/*GenerationalEstimate=*/false),
      }),
      Cycle, Obs.laneRing(0), verifyHook(/*FullCycle=*/true));

  State.StopWorld.store(false, std::memory_order_seq_cst);
  return Cycle;
}

void Collector::runOneCycle(CycleRequest Kind) {
  H.pages().reset();
  resetGrayCounters();
  // Entries left from the previous cycle's late shades are stale; objects
  // that are genuinely still gray are re-found by this cycle's
  // verification pass.
  State.Grays.clear();

  // An aborted cycle's successor traces everything (abortCycle set this);
  // consuming the flag before the kind is recorded keeps the stats honest.
  if (ForceFullNext) {
    ForceFullNext = false;
    Kind = CycleRequest::Full;
  }

  // Per-cycle abort state: only the on-the-fly cycles of collectors that
  // opted in can abort, and the degraded fallback never does (an armed
  // abort site must not silently skip a sweep it has no unwind for).
  AllowAbort = AbortableCycles && !InDegradedMode;
  AbortCycleFlag = false;
  EscalatedAbort = false;
  AbortPhase = GcPhase::Idle;
  AbortEscalation = 0;

  uint64_t Index = CyclesDone.load(std::memory_order_relaxed);
  EventRing *Ring = Obs.laneRing(0);
  uint64_t CycleStartNanos = Ring ? nowNanos() : 0;

  StopWatch Watch;
  Watch.start();
  bool WasDegraded = InDegradedMode;
  CycleStats Cycle = WasDegraded ? runDegradedCycle(Kind) : runCycle(Kind);
  if (AbortCycleFlag)
    abortCycle(Cycle);
  Cycle.DurationNanos = Watch.stop();
  Cycle.PagesTouched = H.pages().countTouched();
  sumGrayCounters(Cycle);

  // Whole-cycle deadline: a cycle that ran far past its budget is reported
  // through the same stall machinery as a wedged handshake.  (A cycle that
  // never finishes surfaces as a handshake stall first — the per-wait
  // deadline covers that.)  An aborted cycle already reported through the
  // escalation ladder; re-firing here would double-count it.
  if (!Cycle.Aborted && Config.Watchdog.CycleDeadlineNanos != 0 &&
      Cycle.DurationNanos > Config.Watchdog.CycleDeadlineNanos)
    Handshakes.fireStall("cycle", Cycle.DurationNanos);

  if (!Cycle.Aborted) {
    H.resetAllocatedSinceGc();
    Trig.afterCycle(Cycle.LiveEstimateBytes);
  }
  // An aborted cycle freed nothing: leaving the allocation clock running
  // re-triggers the (forced-Full) successor promptly, and the trigger's
  // soft limit never learns from a live estimate that does not exist.

  // Escalation-ladder transitions.  Entering degraded mode is decided by
  // an escalated abort; leaving it by a degraded cycle in which every
  // mutator parked voluntarily — the signal that handshakes work again.
  if (WasDegraded) {
    if (Ring)
      Ring->instant(ObsEventKind::EscalationStep, nowNanos(),
                    uint64_t(EscalationAction::StwFallback),
                    Cycle.ForcedMutators);
    if (Cycle.ForcedMutators == 0) {
      InDegradedMode = false;
      if (Ring) {
        Ring->instant(ObsEventKind::EscalationStep, nowNanos(),
                      uint64_t(EscalationAction::Recovered), 0);
        Ring->instant(ObsEventKind::DegradedMode, nowNanos(), 0, 0);
      }
    }
  } else if (Cycle.Aborted && EscalatedAbort) {
    InDegradedMode = true;
    if (Ring)
      Ring->instant(ObsEventKind::DegradedMode, nowNanos(), 1,
                    Cycle.ForcedMutators);
  }

  if (Ring) {
    // Begin and end are emitted together once the kind is final (the
    // request alone cannot tell a Dlg full cycle from a generational one);
    // exporters order by timestamp, not ring position.
    Ring->instant(ObsEventKind::CycleBegin, CycleStartNanos,
                  uint64_t(Cycle.Kind), Index);
    Ring->instant(ObsEventKind::CycleEnd, nowNanos(), uint64_t(Cycle.Kind),
                  Index);
  }

  // Cycle publication happens in three ordered steps:
  //  1. the statistics, under StatsMutex (the cycle-publication lock);
  //  2. observer callbacks, with no collector lock held — they may call
  //     statsSnapshot() or requestCycle() freely;
  //  3. the completed-cycle count, under RequestMutex so collectSync's
  //     predicate and wakeup cannot miss each other.
  // The 1-before-3 ordering (release increment, acquire read) guarantees
  // that any thread observing completedCycles() >= N sees at least N fully
  // published cycles in statsSnapshot(); 2-before-3 guarantees every
  // observer ran before synchronous waiters on this cycle are released.
  {
    std::scoped_lock Locked(StatsMutex);
    Stats.Cycles.push_back(Cycle);
    Stats.GcActiveNanos += Cycle.DurationNanos;
  }
  notifyObservers(Cycle, Index);
  {
    std::scoped_lock Locked(RequestMutex);
    CyclesDone.fetch_add(1, std::memory_order_release);
  }
  DoneCv.notify_all();
}

void Collector::threadLoop() {
  for (;;) {
    CycleRequest Kind = CycleRequest::None;
    {
      std::unique_lock Locked(RequestMutex);
      RequestCv.wait_for(Locked,
                         std::chrono::microseconds(Config.PollMicros), [&] {
                           return StopFlag.load(std::memory_order_relaxed) ||
                                  Pending != CycleRequest::None;
                         });
      if (StopFlag.load(std::memory_order_relaxed) &&
          Pending == CycleRequest::None)
        return;
      Kind = Pending;
      Pending = CycleRequest::None;
    }
    if (Kind == CycleRequest::None)
      Kind = Trig.evaluate(H);
    if (Kind == CycleRequest::None && LazyEngine &&
        H.needsSweepBlockCount() != 0) {
      // Idle drip: a few residue blocks per poll tick, so reclamation
      // terminates on a heap nobody allocates from.  UsedBytes only drops
      // as blocks are swept, so re-evaluate the trigger once the residue
      // is gone rather than starting a cycle off the stale figure.
      LazyEngine->sweepSome(16);
      continue;
    }
    if (Kind != CycleRequest::None)
      runOneCycle(Kind);
  }
}

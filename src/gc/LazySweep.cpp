//===- gc/LazySweep.cpp - Allocation-interleaved sweep ----------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "gc/LazySweep.h"

#include <vector>

#include "support/Backoff.h"
#include "support/Timer.h"

using namespace gengc;

LazySweepEngine::PublishResult LazySweepEngine::publish() {
  uint32_t Epoch = State.ColorEpoch.load(std::memory_order_acquire);
  PublishResult P;
  Sweeper Engine(H, State);
  std::vector<uint32_t> Published;

  size_t NumBlocks = H.numBlocks();
  for (size_t I = 0; I < NumBlocks; ++I) {
    const BlockDescriptor &Desc = H.block(I);
    BlockState S = Desc.State.load(std::memory_order_acquire);
    if (S == BlockState::LargeStart) {
      // Large runs are reclaimed eagerly: they are rare, block-granular,
      // and freeing one feeds the free-block stack rather than a cell list,
      // so deferring them buys nothing.
      Engine.sweepBlockRange(Plan.Mode, Plan.OldestAge, I, I + 1, P.Large);
    } else if (S == BlockState::SizeClass) {
      H.publishNeedsSweep(uint32_t(I), Epoch);
      Published.push_back(uint32_t(I));
    }
  }
  Engine.flushChains();

  // Chains already parked centrally hold Blue cells of now-published
  // blocks; move them into the blocks' stashes so the deferred-sweep
  // invariant (no central chain from an unswept block) holds from here on.
  // Cells already handed to thread caches stay there — they are Blue, the
  // per-cell sweep skips Blue, and accounting already counts them used.
  H.drainFreeListsToStashes();

  // Only now make the blocks claimable: a block claimed before the drain
  // could be marked swept while its old chains still sat centrally, and
  // the drain would then strand them in a stash nobody revisits.
  for (uint32_t Idx : Published)
    H.enqueueNeedsSweep(Idx);
  P.BlocksPublished = Published.size();

  if (Obs) {
    if (EventRing *Ring = Obs->laneRing(0))
      Ring->instant(ObsEventKind::SweepDeferred, nowNanos(),
                    P.BlocksPublished, Epoch);
  }
  return P;
}

void LazySweepEngine::sweepClaimed(uint32_t BlockIdx, unsigned DepositShard,
                                   bool MutatorContext) {
  const BlockDescriptor &Desc = H.block(BlockIdx);
  unsigned ClassIdx = Desc.SizeClassIdx;

  Sweeper Engine(H, State);
  Sweeper::Result R;
  std::vector<Heap::CellChain> Freed;
  Engine.sweepClaimedBlock(Plan.Mode, Plan.OldestAge, BlockIdx, R, Freed);

  // markSwept BEFORE taking the stash: a pushFreeChain racing this block
  // either appends before our take (we re-deposit it) or, once it can
  // observe the take completed, sees Swept and pushes normally.  Deposits
  // come after markSwept, so every centrally-visible chain belongs to a
  // swept block.
  H.markBlockSwept(BlockIdx);
  std::vector<Heap::CellChain> Stash = H.takePendingStash(BlockIdx);
  for (const Heap::CellChain &Chain : Freed)
    H.pushFreeChain(ClassIdx, Chain, DepositShard);
  for (const Heap::CellChain &Chain : Stash)
    H.repushFreeChain(ClassIdx, Chain, DepositShard);
  H.finishBlockSweep(MutatorContext);

  std::scoped_lock Locked(ResultMutex);
  Accum.merge(R);
}

bool LazySweepEngine::sweepOneBlockFor(unsigned ClassIdx,
                                       unsigned DepositShard) {
  uint32_t BlockIdx = H.claimNeedsSweepBlock(ClassIdx);
  if (BlockIdx == 0)
    return false;
  sweepClaimed(BlockIdx, DepositShard, /*MutatorContext=*/true);
  return true;
}

uint32_t LazySweepEngine::claimAny() {
  for (unsigned ClassIdx = 0; ClassIdx < NumSizeClasses; ++ClassIdx)
    if (uint32_t BlockIdx = H.claimNeedsSweepBlock(ClassIdx))
      return BlockIdx;
  return 0;
}

uint64_t LazySweepEngine::sweepSome(uint64_t MaxBlocks) {
  uint64_t Swept = 0;
  uint64_t Start = (Obs && MaxBlocks) ? nowNanos() : 0;
  while (Swept < MaxBlocks) {
    uint32_t BlockIdx = claimAny();
    if (BlockIdx == 0)
      break;
    // Residue sweeps deposit into the block's own home shard, like the
    // eager sweep did.
    sweepClaimed(BlockIdx, H.block(BlockIdx).HomeShard,
                 /*MutatorContext=*/false);
    ++Swept;
  }
  if (Swept && Obs) {
    if (EventRing *Ring = Obs->laneRing(0))
      Ring->emit(ObsEventKind::SweepResidue, Start, nowNanos() - Start, Swept,
                 0);
  }
  return Swept;
}

uint64_t LazySweepEngine::drainResidue() {
  uint64_t Swept = sweepSome(~0ull);
  // A mutator may still hold a claim from its refill path; the caller is
  // about to toggle colors, and every block must finish under the epoch it
  // was published with, so wait the claim out.  The claimant never blocks
  // on the collector (the sweep path takes only shard/stash mutexes), so
  // this terminates.
  Backoff Back(/*InitialNanos=*/1000, /*CapNanos=*/100'000);
  while (H.sweepingBlockCount() != 0)
    Back.pause();
  return Swept;
}

Sweeper::Result LazySweepEngine::takeResults() {
  std::scoped_lock Locked(ResultMutex);
  Sweeper::Result R = Accum;
  Accum = Sweeper::Result();
  return R;
}

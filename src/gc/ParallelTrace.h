//===- gc/ParallelTrace.h - Work-stealing parallel trace --------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel trace stage.  Each GcWorkerPool lane runs its own Tracer
/// engine over a private segmented gray stack; surplus work moves between
/// lanes as whole TraceSegments through a shared TraceWorkList (steal = pop
/// one segment pointer).  All mutator-facing machinery is untouched:
/// mutators shade through the same write barriers into the same shared gray
/// buffer, every color transition funnels through Heap::casColor, and the
/// termination protocol is the paper-faithful one the single-threaded
/// tracer used — wait out in-flight shades, drain the gray buffer, then run
/// verification scans of the color side-table until one finds no gray
/// object.  The verification scan itself is sharded across the pool lanes
/// over the allocated block ranges (DESIGN.md §17 sketches why that is
/// equivalent to the historical full-table leader scan).
///
/// With one lane, ParallelTracer delegates to the historical Tracer::trace
/// verbatim, so GcThreads = 1 is bit-identical to the single-threaded
/// collector.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_GC_PARALLELTRACE_H
#define GENGC_GC_PARALLELTRACE_H

#include <memory>
#include <mutex>
#include <vector>

#include "gc/TraceSegment.h"
#include "gc/Tracer.h"
#include "gc/WorkerPool.h"
#include "obs/ObsRegistry.h"

namespace gengc {

/// Shared stack of gray-segment pointers; the unit of work stealing.  Push
/// and steal are O(1) pointer swaps — no ref is ever copied — and a plain
/// mutex is plenty: lanes touch the list once per TraceSegment::Capacity
/// objects traced, so contention is bounded by construction.  The
/// statistics counters are atomics, so steals() never takes the list mutex
/// mid-cycle.
class TraceWorkList {
public:
  /// Number of object refs per stealable unit (segment capacity); kept
  /// under its historical name for the offload-threshold arithmetic.
  static constexpr size_t ChunkRefs = TraceSegment::Capacity;

  /// Deposits one segment for stealing; the list takes ownership of the
  /// pointer until a thief attaches it to its own stack.
  void push(TraceSegment *S) {
    GENGC_ASSERT(S != nullptr && S->Count > 0,
                 "work list holds only non-empty segments");
    std::scoped_lock Locked(Mutex);
    S->Below = TopSegment;
    S->Above = nullptr;
    TopSegment = S;
    NumSegments.fetch_add(1, std::memory_order_release);
  }

  /// Pops one segment, or returns null when the list is empty.
  TraceSegment *steal() {
    std::scoped_lock Locked(Mutex);
    TraceSegment *S = TopSegment;
    if (S == nullptr)
      return nullptr;
    TopSegment = S->Below;
    S->Below = nullptr;
    NumSegments.fetch_sub(1, std::memory_order_release);
    Steals.fetch_add(1, std::memory_order_relaxed);
    return S;
  }

  /// Racy emptiness hint for idle-lane spinning (misses are resolved by the
  /// steal's mutex, and ultimately by the tracer's verification scan).
  bool empty() const {
    return NumSegments.load(std::memory_order_acquire) == 0;
  }

  /// Current number of deposited segments (offload throttling hint).
  size_t approxSegments() const {
    return NumSegments.load(std::memory_order_relaxed);
  }

  /// Number of successful steals so far.  Lock-free: statistics snapshots
  /// taken mid-cycle never contend with the lanes' push/steal traffic.
  uint64_t steals() const { return Steals.load(std::memory_order_relaxed); }

private:
  mutable std::mutex Mutex;
  /// Intrusive stack through TraceSegment::Below.
  TraceSegment *TopSegment = nullptr;
  std::atomic<size_t> NumSegments{0};
  std::atomic<uint64_t> Steals{0};
};

/// The parallel trace driver; owned by a collector, reused across cycles.
class ParallelTracer {
public:
  struct Result {
    /// Number of MarkBlack executions, summed over lanes.
    uint64_t ObjectsTraced = 0;
    /// Their storage footprint.
    uint64_t BytesTraced = 0;
    /// Number of color-table verification passes until the clean pass.
    uint64_t Passes = 0;
    /// Segments stolen between lanes (0 with one lane).
    uint64_t Steals = 0;
    /// Segments offloaded to the shared list (0 with one lane).
    uint64_t Offloads = 0;
    /// Segment-pool acquires during this trace (packet churn gauge).
    uint64_t SegmentsAcquired = 0;
    /// Wall time inside the termination verification scans.
    uint64_t TermScanNanos = 0;
    /// Wall time each lane spent inside the trace, indexed by lane.
    std::vector<uint64_t> WorkerNanos;
  };

  ParallelTracer(Heap &H, CollectorState &S, GcWorkerPool &Pool);

  /// See Tracer::setAgingThreshold; forwarded to every lane engine.
  void setAgingThreshold(uint8_t OldestAge);

  /// See Tracer::setPrefetchDepth; forwarded to every lane engine.
  void setPrefetchDepth(unsigned Depth);

  /// Routes per-lane trace events (TraceSpan, TraceSteal) to \p Registry's
  /// lane rings.  Called once at collector construction.
  void setObs(ObsRegistry *Registry);

  /// Traces to completion (see Tracer::trace for the color contract).
  Result trace(Color BlackColor, GrayCounters &Counters);

  /// The collector-wide segment pool (metrics gauges).
  const TraceSegmentPool &segmentPool() const { return SegPool; }

private:
  Heap &H;
  CollectorState &State;
  GcWorkerPool &Pool;
  ObsRegistry *Obs = nullptr;
  /// Segment pool shared by every lane engine; declared before Engines so
  /// their stacks release segments into a live pool on destruction.
  TraceSegmentPool SegPool;
  /// One engine per lane; unique_ptr keeps them stable and non-movable.
  std::vector<std::unique_ptr<Tracer>> Engines;
};

} // namespace gengc

#endif // GENGC_GC_PARALLELTRACE_H

//===- gc/ParallelTrace.h - Work-stealing parallel trace --------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel trace stage.  Each GcWorkerPool lane runs its own Tracer
/// engine over a private gray stack; surplus work moves between lanes in
/// chunks through a shared TraceWorkList (steal = pop one chunk).  All
/// mutator-facing machinery is untouched: mutators shade through the same
/// write barriers into the same shared gray buffer, every color transition
/// funnels through Heap::casColor, and the termination protocol is the
/// paper-faithful one the single-threaded tracer used — wait out in-flight
/// shades, drain the gray buffer, then run verification scans of the color
/// side-table until one finds no gray object.
///
/// With one lane, ParallelTracer delegates to the historical Tracer::trace
/// verbatim, so GcThreads = 1 is bit-identical to the single-threaded
/// collector.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_GC_PARALLELTRACE_H
#define GENGC_GC_PARALLELTRACE_H

#include <memory>
#include <vector>

#include "gc/Tracer.h"
#include "gc/WorkerPool.h"
#include "obs/ObsRegistry.h"

namespace gengc {

/// Shared pool of gray-object chunks; the unit of work stealing.  A plain
/// mutex-protected chunk stack is plenty: lanes touch it once per ChunkRefs
/// objects traced, so contention is bounded by construction.
class TraceWorkList {
public:
  /// Number of object refs per stealable chunk.
  static constexpr size_t ChunkRefs = 64;

  /// Deposits one chunk for stealing.
  void push(std::vector<ObjectRef> &&Chunk) {
    std::scoped_lock Locked(Mutex);
    Chunks.push_back(std::move(Chunk));
    NumChunks.store(Chunks.size(), std::memory_order_release);
  }

  /// Moves one chunk's refs onto the back of \p Out.
  /// \returns true if a chunk was stolen.
  bool steal(std::vector<ObjectRef> &Out) {
    std::scoped_lock Locked(Mutex);
    if (Chunks.empty())
      return false;
    std::vector<ObjectRef> Chunk = std::move(Chunks.back());
    Chunks.pop_back();
    NumChunks.store(Chunks.size(), std::memory_order_release);
    ++Steals;
    Out.insert(Out.end(), Chunk.begin(), Chunk.end());
    return true;
  }

  /// Racy emptiness hint for idle-lane spinning (misses are resolved by the
  /// steal's mutex, and ultimately by the tracer's verification scan).
  bool empty() const {
    return NumChunks.load(std::memory_order_acquire) == 0;
  }

  /// Current number of deposited chunks (offload throttling hint).
  size_t approxChunks() const {
    return NumChunks.load(std::memory_order_relaxed);
  }

  /// Number of successful steals so far (statistics).
  uint64_t steals() const {
    std::scoped_lock Locked(Mutex);
    return Steals;
  }

private:
  mutable std::mutex Mutex;
  std::vector<std::vector<ObjectRef>> Chunks;
  std::atomic<size_t> NumChunks{0};
  uint64_t Steals = 0;
};

/// The parallel trace driver; owned by a collector, reused across cycles.
class ParallelTracer {
public:
  struct Result {
    /// Number of MarkBlack executions, summed over lanes.
    uint64_t ObjectsTraced = 0;
    /// Their storage footprint.
    uint64_t BytesTraced = 0;
    /// Number of color-table verification passes until the clean pass.
    uint64_t Passes = 0;
    /// Chunks stolen between lanes (0 with one lane).
    uint64_t Steals = 0;
    /// Wall time each lane spent inside the trace, indexed by lane.
    std::vector<uint64_t> WorkerNanos;
  };

  ParallelTracer(Heap &H, CollectorState &S, GcWorkerPool &Pool);

  /// See Tracer::setAgingThreshold; forwarded to every lane engine.
  void setAgingThreshold(uint8_t OldestAge);

  /// Routes per-lane trace events (TraceSpan, TraceSteal) to \p Registry's
  /// lane rings.  Called once at collector construction.
  void setObs(ObsRegistry *Registry);

  /// Traces to completion (see Tracer::trace for the color contract).
  Result trace(Color BlackColor, GrayCounters &Counters);

private:
  Heap &H;
  CollectorState &State;
  GcWorkerPool &Pool;
  ObsRegistry *Obs = nullptr;
  /// One engine per lane; unique_ptr keeps them stable and non-movable.
  std::vector<std::unique_ptr<Tracer>> Engines;
};

} // namespace gengc

#endif // GENGC_GC_PARALLELTRACE_H

//===- gc/StwCollector.cpp - Stop-the-world comparator ----------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "gc/StwCollector.h"

#include <thread>

#include "gc/CyclePhase.h"

using namespace gengc;

StwCollector::StwCollector(Heap &H, CollectorState &S,
                           MutatorRegistry &Registry, GlobalRoots &Roots,
                           const CollectorConfig &Config)
    : Collector(H, S, Registry, Roots, Config) {
  GENGC_ASSERT(!Config.Aging, "the STW comparator has no aging mechanism");
  GENGC_ASSERT(!Config.Trigger.Generational,
               "the STW comparator collects the whole heap");
  // No concurrent marking ever happens, so mutators run the cheapest
  // barrier (which is inert while the world is stopped anyway).
  State.Barrier.store(BarrierKind::NonGenerational,
                      std::memory_order_release);
  initSweepPlan(SweepMode::NonGenerational);
}

void StwCollector::waitWorldStopped(uint64_t Epoch) {
  // A mutator counts as stopped when it parked itself AND shaded its roots
  // for this very epoch (a thread still asleep from the previous pause has
  // stale shading and must not be trusted until it re-shades), or when it
  // is blocked (we shade for it).  The registry can change while we wait:
  // re-snapshot every pass.
  for (unsigned Spin = 0;; ++Spin) {
    size_t Total = 0;
    size_t Accounted = 0;
    Registry.forEach([&](Mutator &M) {
      ++Total;
      if (M.stwParkedFor(Epoch) || M.markRootsIfBlockedForStw())
        ++Accounted;
    });
    if (Accounted >= Total)
      return;
    if (Spin < 64)
      std::this_thread::yield();
    else
      std::this_thread::sleep_for(std::chrono::microseconds(20));
  }
}

CycleStats StwCollector::runCycle(CycleRequest Kind) {
  (void)Kind; // Always the whole heap.
  CycleStats Cycle;
  Cycle.Kind = CycleKind::NonGenerational;
  Cycle.GcWorkers = Pool.lanes();

  runCyclePhases(
      State,
      // The residue drain runs before StopWorld is raised — it contends
      // only on shard/stash mutexes, so running it concurrently is safe.
      withResiduePhase({
          {GcPhase::Clear, &CycleStats::ClearNanos,
           [this](CycleStats &C) {
             State.switchAllocationClearColors();

             // Stop the world.  The epoch bump follows the toggle, so a
             // parker that observes the new epoch also sees the new colors
             // when it (re-)shades its roots.  Under the Escalate policy
             // the wait is bounded: a thread that never parks gets its
             // roots force-shaded instead of hanging the collector.
             uint64_t Epoch =
                 State.StopEpoch.fetch_add(1, std::memory_order_acq_rel) + 1;
             State.StopWorld.store(true, std::memory_order_seq_cst);
             if (Config.Watchdog.Policy == WatchdogPolicy::Escalate)
               C.ForcedMutators += waitWorldStoppedBounded(Epoch);
             else
               waitWorldStopped(Epoch);
           }},

          {GcPhase::Mark, &CycleStats::MarkNanos,
           [this](CycleStats &) { Roots.markAll(CollectorGrays); }},

          {GcPhase::Trace, &CycleStats::TraceNanos,
           [this](CycleStats &C) {
             ParallelTracer::Result TraceResult =
                 TraceEngine.trace(State.allocationColor(), CollectorGrays);
             C.ObjectsTraced = TraceResult.ObjectsTraced;
             C.BytesTraced = TraceResult.BytesTraced;
             C.LiveEstimateBytes = TraceResult.BytesTraced;
             C.TraceSteals = TraceResult.Steals;
             C.TraceOffloads = TraceResult.Offloads;
             C.TraceSegmentsAcquired = TraceResult.SegmentsAcquired;
             C.TraceTermScanNanos = TraceResult.TermScanNanos;
             C.TraceWorkerNanos = std::move(TraceResult.WorkerNanos);
           }},

          sweepPhase(/*GenerationalEstimate=*/false),
      }),
      Cycle, Obs.laneRing(0), verifyHook(/*FullCycle=*/true));

  // runCyclePhases already published Idle; resume the world after it.
  State.StopWorld.store(false, std::memory_order_seq_cst);
  return Cycle;
}

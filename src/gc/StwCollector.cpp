//===- gc/StwCollector.cpp - Stop-the-world comparator ----------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "gc/StwCollector.h"

#include <thread>

#include "support/Timer.h"

using namespace gengc;

StwCollector::StwCollector(Heap &H, CollectorState &S,
                           MutatorRegistry &Registry, GlobalRoots &Roots,
                           const CollectorConfig &Config)
    : Collector(H, S, Registry, Roots, Config) {
  GENGC_ASSERT(!Config.Aging, "the STW comparator has no aging mechanism");
  GENGC_ASSERT(!Config.Trigger.Generational,
               "the STW comparator collects the whole heap");
  // No concurrent marking ever happens, so mutators run the cheapest
  // barrier (which is inert while the world is stopped anyway).
  State.Barrier.store(BarrierKind::NonGenerational,
                      std::memory_order_release);
}

void StwCollector::waitWorldStopped() {
  // A mutator counts as stopped when it parked itself (shading its own
  // roots on the way in) or when it is blocked (we shade for it).  The
  // registry can change while we wait: re-snapshot every pass.
  for (unsigned Spin = 0;; ++Spin) {
    size_t Accounted = size_t(
        State.ParkedMutators.load(std::memory_order_acquire));
    size_t Total = 0;
    Registry.forEach([&](Mutator &M) {
      ++Total;
      if (M.markRootsIfBlockedForStw())
        ++Accounted;
    });
    if (Accounted >= Total)
      return;
    if (Spin < 64)
      std::this_thread::yield();
    else
      std::this_thread::sleep_for(std::chrono::microseconds(20));
  }
}

CycleStats StwCollector::runCycle(CycleRequest Kind) {
  (void)Kind; // Always the whole heap.
  CycleStats Cycle;
  Cycle.Kind = CycleKind::NonGenerational;

  uint64_t T0 = nowNanos();
  State.Phase.store(GcPhase::Clear, std::memory_order_release);
  State.switchAllocationClearColors();

  // Stop the world.
  State.StopWorld.store(true, std::memory_order_seq_cst);
  waitWorldStopped();
  uint64_t T1 = nowNanos();
  Cycle.ClearNanos = T1 - T0;

  Roots.markAll(CollectorGrays);
  uint64_t T2 = nowNanos();
  Cycle.MarkNanos = T2 - T1;

  State.Phase.store(GcPhase::Trace, std::memory_order_release);
  Tracer::Result TraceResult =
      TraceEngine.trace(State.allocationColor(), CollectorGrays);
  Cycle.ObjectsTraced = TraceResult.ObjectsTraced;
  Cycle.BytesTraced = TraceResult.BytesTraced;
  Cycle.LiveEstimateBytes = TraceResult.BytesTraced;
  uint64_t T3 = nowNanos();
  Cycle.TraceNanos = T3 - T2;

  State.Phase.store(GcPhase::Sweep, std::memory_order_release);
  Sweeper::Result SweepResult =
      SweepEngine.sweep(SweepMode::NonGenerational, 0);
  Cycle.ObjectsFreed = SweepResult.ObjectsFreed;
  Cycle.BytesFreed = SweepResult.BytesFreed;
  Cycle.LiveObjectsAfter = SweepResult.LiveObjectsAfter;
  Cycle.LiveBytesAfter = SweepResult.LiveBytesAfter;
  Cycle.SweepNanos = nowNanos() - T3;

  // Resume the world.
  State.Phase.store(GcPhase::Idle, std::memory_order_release);
  State.StopWorld.store(false, std::memory_order_seq_cst);
  return Cycle;
}

//===- gc/Trigger.cpp - Collection triggering -------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "gc/Trigger.h"

#include <algorithm>

#include "heap/Heap.h"
#include "support/MathExtras.h"

using namespace gengc;

Trigger::Trigger(const TriggerPolicy &Policy, uint64_t MaxHeapBytes)
    : Policy(Policy), MaxHeapBytes(MaxHeapBytes),
      SoftLimit(std::min(Policy.InitialSoftBytes, MaxHeapBytes)) {}

CycleRequest Trigger::evaluate(const Heap &H) const {
  uint64_t Used = H.usedBytes();
  uint64_t Soft = SoftLimit.load(std::memory_order_relaxed);
  if (double(Used) >= Policy.FullFraction * double(Soft))
    return CycleRequest::Full;
  if (Policy.Generational && H.allocatedSinceGcBytes() >= Policy.YoungBytes)
    return CycleRequest::Partial;
  return CycleRequest::None;
}

void Trigger::afterCycle(uint64_t LiveEstimateBytes) {
  uint64_t Soft = SoftLimit.load(std::memory_order_relaxed);
  // Grow the committed heap so the program has allocation headroom before
  // the next occupancy trigger — the JVM analogue of growing the heap from
  // its 1 MB initial size toward the 32 MB maximum as the live set and
  // allocation rate demand.  Three young generations of headroom: one for
  // the allocation budget itself, one for what mutators allocate *during*
  // the concurrent cycle (not reclaimable until the following cycle), and
  // a half for floating garbage, so a full collection indicates genuine
  // live-set growth rather than ordinary on-the-fly slack.  The same
  // calculation runs with and without generations (Section 8).
  double Target = (double(LiveEstimateBytes) +
                   3.0 * double(Policy.YoungBytes)) /
                  Policy.FullFraction;
  uint64_t Rounded = alignTo(uint64_t(Target) + 1, 64 << 10);
  Soft = std::min(std::max(Soft, Rounded), MaxHeapBytes);
  SoftLimit.store(Soft, std::memory_order_relaxed);
}

//===- obs/Event.cpp - Event vocabulary names and observer anchor ---------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "obs/Event.h"
#include "obs/GcObserver.h"

using namespace gengc;

GcObserver::~GcObserver() = default;

const char *gengc::obsSourceName(ObsSource Source) {
  switch (Source) {
  case ObsSource::Collector:
    return "collector";
  case ObsSource::GcLane:
    return "gc-lane";
  case ObsSource::Mutator:
    return "mutator";
  }
  return "invalid";
}

const char *gengc::obsEventKindName(ObsEventKind Kind) {
  switch (Kind) {
  case ObsEventKind::CycleBegin:
    return "CycleBegin";
  case ObsEventKind::CycleEnd:
    return "CycleEnd";
  case ObsEventKind::Phase:
    return "Phase";
  case ObsEventKind::HandshakeReq:
    return "HandshakeReq";
  case ObsEventKind::HandshakeAck:
    return "HandshakeAck";
  case ObsEventKind::AllocStall:
    return "AllocStall";
  case ObsEventKind::TraceSpan:
    return "TraceSpan";
  case ObsEventKind::TraceSteal:
    return "TraceSteal";
  case ObsEventKind::SweepSpan:
    return "SweepSpan";
  case ObsEventKind::SweepChunk:
    return "SweepChunk";
  case ObsEventKind::CardChunkOpen:
    return "CardChunkOpen";
  case ObsEventKind::OomEscalation:
    return "OomEscalation";
  case ObsEventKind::WatchdogFire:
    return "WatchdogFire";
  case ObsEventKind::VerifyPass:
    return "VerifyPass";
  case ObsEventKind::RefillSteal:
    return "RefillSteal";
  case ObsEventKind::ShardContention:
    return "ShardContention";
  case ObsEventKind::SweepDeferred:
    return "SweepDeferred";
  case ObsEventKind::LazySweepClaim:
    return "LazySweepClaim";
  case ObsEventKind::SweepResidue:
    return "SweepResidue";
  case ObsEventKind::CycleAbort:
    return "CycleAbort";
  case ObsEventKind::DegradedMode:
    return "DegradedMode";
  case ObsEventKind::EscalationStep:
    return "EscalationStep";
  }
  return "invalid";
}

//===- obs/CycleStats.h - Per-cycle and per-run GC statistics ---*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every quantity the paper's evaluation section reports, collected per
/// collection cycle and aggregated per run.  The statistics vocabulary
/// lives in obs/ (the observability subsystem) so that the metrics
/// snapshot, the observer API and the exporters can speak it without
/// depending on the collector layer; gc/CycleStats.h forwards here for the
/// historical include path.
///
///   Figure 10: cycle counts per kind, percent of time GC is active.
///   Figure 11: objects scanned (trace) and old objects scanned for
///              inter-generational pointers (card scan).
///   Figure 12: percentage of objects/bytes freed per cycle kind.
///   Figure 13: average elapsed time of cycles.
///   Figure 14: average objects/space freed per cycle.
///   Figure 15: pages touched by the collector.
///   Figures 22/23: dirty-card percentage and card-scan area.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_OBS_CYCLESTATS_H
#define GENGC_OBS_CYCLESTATS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gengc {

/// The kind of a completed collection cycle.
enum class CycleKind : uint8_t {
  /// Young-generation collection by the generational collector.
  Partial,
  /// Whole-heap collection by the generational collector.
  Full,
  /// Whole-heap collection by the non-generational DLG baseline.
  NonGenerational,
};

/// Returns a printable name for \p Kind.
const char *cycleKindName(CycleKind Kind);

/// Measurements of one collection cycle.
struct CycleStats {
  CycleKind Kind = CycleKind::NonGenerational;
  uint64_t DurationNanos = 0;

  // Phase breakdown (clear covers InitFullCollection + first handshake;
  // mark covers ClearCards, the toggle and the remaining handshakes).
  uint64_t ClearNanos = 0;
  uint64_t MarkNanos = 0;
  uint64_t TraceNanos = 0;
  uint64_t SweepNanos = 0;
  /// Portion of MarkNanos spent inside the card-scan sharding itself
  /// (ClearCards proper, without the toggle or handshakes).
  uint64_t CardScanNanos = 0;
  /// SweepResidue phase (lazy policy): draining the blocks the *previous*
  /// cycle published that no mutator claimed.  0 under the eager policy.
  uint64_t ResidueNanos = 0;

  // Parallel engine accounting.
  /// Lanes the cycle's parallel phases ran on (CollectorConfig::GcThreads).
  uint32_t GcWorkers = 1;
  /// Segments stolen between trace lanes (0 with one lane).
  uint64_t TraceSteals = 0;
  /// Segments lanes offloaded to the shared work list (0 with one lane).
  uint64_t TraceOffloads = 0;
  /// Trace-segment pool acquires during the trace phase (packet churn).
  uint64_t TraceSegmentsAcquired = 0;
  /// Portion of TraceNanos spent inside the termination verification scans
  /// of the color table (sharded across lanes when GcThreads > 1).
  uint64_t TraceTermScanNanos = 0;
  /// Wall time each lane spent inside the trace phase, indexed by lane.
  std::vector<uint64_t> TraceWorkerNanos;
  /// Wall time each lane spent inside the sweep phase, indexed by lane.
  std::vector<uint64_t> SweepWorkerNanos;

  // Trace.
  uint64_t ObjectsTraced = 0;
  uint64_t BytesTraced = 0;
  /// Objects shaded from the clear color (collector + mutators): the young
  /// objects that survived this cycle.
  uint64_t YoungSurvivors = 0;
  uint64_t YoungSurvivorBytes = 0;

  // Card scanning (partial collections only).
  uint64_t DirtyCardsAtStart = 0;
  uint64_t AllocatedCards = 0;
  uint64_t OldObjectsScanned = 0;
  uint64_t CardScanAreaBytes = 0;
  uint64_t CardsRemarked = 0;
  /// Dirty summary chunks the two-level card scan actually opened (0 on
  /// the linear fallback, which has no summary level).
  uint64_t SummaryChunksScanned = 0;
  /// Cards the two-level scan never examined individually: cards outside
  /// allocated block ranges plus cards under clean summary chunks (0 on
  /// the linear fallback).  Pure cost accounting — the skipped cards are
  /// provably clean, so semantic counters are unaffected.
  uint64_t CardsSkippedBySummary = 0;

  // Sweep.
  uint64_t ObjectsFreed = 0;
  uint64_t BytesFreed = 0;
  uint64_t LiveObjectsAfter = 0;
  uint64_t LiveBytesAfter = 0;
  /// Lazy policy: size-class blocks this cycle's PublishSweep deferred, and
  /// residue blocks its SweepResidue phase swept (published by the
  /// *previous* cycle).  Both 0 under the eager policy.  Note the freed /
  /// live-after counters above cover only what this cycle itself swept —
  /// under the lazy policy that is large runs plus the previous publish's
  /// harvest, one cycle late.
  uint64_t LazyBlocksPublished = 0;
  uint64_t LazyBlocksResidueSwept = 0;

  // Cycle recovery (DESIGN.md §19).
  /// This cycle was aborted mid-flight and unwound to pre-cycle state: its
  /// phase counters cover only the work done before the abort and it freed
  /// nothing.
  bool Aborted = false;
  /// This cycle ran as the cooperating-STW degraded fallback.
  bool Degraded = false;
  /// Mutators whose handshake response or STW root scan had to be forced
  /// (escalation force-adopt, degraded-cycle force-shade).
  uint64_t ForcedMutators = 0;

  // Collector page residency (Figure 15).
  uint64_t PagesTouched = 0;

  /// The collector's estimate of the true live set (excluding objects
  /// created during the cycle); drives the trigger's heap growth.
  uint64_t LiveEstimateBytes = 0;
};

/// All cycles of one run plus run-level accounting.
struct GcRunStats {
  std::vector<CycleStats> Cycles;
  /// Total time a cycle was in progress (the collector's stopwatch).
  uint64_t GcActiveNanos = 0;

  /// Number of cycles of kind \p Kind.
  size_t count(CycleKind Kind) const;

  /// Sum of \p Field over cycles of kind \p Kind.
  uint64_t total(CycleKind Kind, uint64_t CycleStats::*Field) const;

  /// Sum of \p Field over all cycles.
  uint64_t totalAll(uint64_t CycleStats::*Field) const;

  /// Mean of \p Field over cycles of kind \p Kind (0 when none ran).
  double mean(CycleKind Kind, uint64_t CycleStats::*Field) const;

  /// GC-active time as a percentage of \p ElapsedNanos (Figure 10).
  double percentActive(uint64_t ElapsedNanos) const;

  /// Percentage of young objects freed in partial collections:
  /// freed / (freed + young survivors), aggregated (Figure 12).
  double percentFreedPartialObjects() const;
  /// Same, in bytes.
  double percentFreedPartialBytes() const;
  /// Percentage of allocated objects freed in cycles of kind \p Kind:
  /// freed / (freed + live-after), aggregated (Figure 12, full &
  /// non-generational columns).
  double percentFreedWholeHeap(CycleKind Kind) const;
};

} // namespace gengc

#endif // GENGC_OBS_CYCLESTATS_H

//===- obs/GcObserver.h - Embedder GC callback API --------------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The embedder-facing observer callback: register one through
/// Runtime::addGcObserver and the collector invokes it once per completed
/// collection cycle.
///
/// Contract:
///  - Callbacks run on the collector thread, after the cycle's statistics
///    are final and before any thread waiting for that cycle's completion
///    (collectSync and friends) is released — so by the time a synchronous
///    collection request returns, every observer has seen the cycle.
///  - Callbacks for one collector are serialized and ordered by cycle
///    index.
///  - No collector lock is held during the callback: observers may call
///    statsSnapshot(), metrics() or requestCycle() freely.  They must not
///    block for long — the collector cannot start the next cycle until
///    they return — must not call collectSync (it would wait on the thread
///    it runs on), and must not add or remove observers (registration is
///    serialized with the callbacks themselves).
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_OBS_GCOBSERVER_H
#define GENGC_OBS_GCOBSERVER_H

#include <cstdint>

#include "obs/CycleStats.h"

namespace gengc {

/// Interface for per-cycle notifications.
class GcObserver {
public:
  virtual ~GcObserver();

  /// One collection cycle completed.  \p Cycle is the cycle's final
  /// statistics record; \p CycleIndex counts completed cycles from 0 for
  /// this collector (so after the callback, completedCycles() returns at
  /// least CycleIndex + 1).
  virtual void onGcCycleEnd(const CycleStats &Cycle, uint64_t CycleIndex) = 0;
};

} // namespace gengc

#endif // GENGC_OBS_GCOBSERVER_H

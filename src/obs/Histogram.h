//===- obs/Histogram.h - Fixed log-scale latency histogram ------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A latency histogram with fixed power-of-two nanosecond buckets: bucket i
/// counts samples in [2^i, 2^(i+1)) nanoseconds (bucket 0 also takes 0).
/// Recording is one relaxed fetch_add — safe from any thread, cheap enough
/// to stay always-on — and snapshots are plain copies whose counts are
/// monotonically approximate, exactly like the other statistics counters.
///
/// 64 buckets cover every representable u64 nanosecond value, so there is
/// no clamping or overflow bucket to reason about.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_OBS_HISTOGRAM_H
#define GENGC_OBS_HISTOGRAM_H

#include <atomic>
#include <cstdint>

#include "support/MathExtras.h"

namespace gengc {

/// Concurrent recording side of the histogram.
class LogHistogram {
public:
  static constexpr unsigned NumBuckets = 64;

  /// Bucket index for \p Nanos: floor(log2), with 0 mapping to bucket 0.
  static unsigned bucketFor(uint64_t Nanos) {
    return Nanos == 0 ? 0 : log2Floor(Nanos);
  }

  /// Lower bound of bucket \p Index in nanoseconds.
  static uint64_t bucketLowNanos(unsigned Index) {
    return Index == 0 ? 0 : (1ull << Index);
  }

  /// Records one sample.
  void record(uint64_t Nanos) {
    Buckets[bucketFor(Nanos)].fetch_add(1, std::memory_order_relaxed);
    TotalNanos.fetch_add(Nanos, std::memory_order_relaxed);
  }

  uint64_t bucketCount(unsigned Index) const {
    return Buckets[Index].load(std::memory_order_relaxed);
  }

  uint64_t count() const {
    uint64_t N = 0;
    for (const auto &B : Buckets)
      N += B.load(std::memory_order_relaxed);
    return N;
  }

  uint64_t totalNanos() const {
    return TotalNanos.load(std::memory_order_relaxed);
  }

private:
  std::atomic<uint64_t> Buckets[NumBuckets]{};
  std::atomic<uint64_t> TotalNanos{0};
};

/// A plain-value copy of a LogHistogram, as carried by MetricsSnapshot.
struct HistogramSnapshot {
  uint64_t Buckets[LogHistogram::NumBuckets] = {};
  uint64_t TotalNanos = 0;

  /// Copies the live histogram's current counts.
  static HistogramSnapshot of(const LogHistogram &H) {
    HistogramSnapshot S;
    for (unsigned I = 0; I < LogHistogram::NumBuckets; ++I)
      S.Buckets[I] = H.bucketCount(I);
    S.TotalNanos = H.totalNanos();
    return S;
  }

  uint64_t count() const {
    uint64_t N = 0;
    for (uint64_t B : Buckets)
      N += B;
    return N;
  }

  double meanNanos() const {
    uint64_t N = count();
    return N == 0 ? 0.0 : double(TotalNanos) / double(N);
  }

  /// Lower bound of the bucket holding the \p Q quantile (0 < Q <= 1),
  /// e.g. 0.99 for "p99 is at least this".  0 when empty.
  uint64_t quantileLowNanos(double Q) const {
    uint64_t N = count();
    if (N == 0)
      return 0;
    uint64_t Rank = uint64_t(Q * double(N));
    if (Rank >= N)
      Rank = N - 1;
    uint64_t Seen = 0;
    for (unsigned I = 0; I < LogHistogram::NumBuckets; ++I) {
      Seen += Buckets[I];
      if (Seen > Rank)
        return LogHistogram::bucketLowNanos(I);
    }
    return LogHistogram::bucketLowNanos(LogHistogram::NumBuckets - 1);
  }

  /// The \p Q quantile with linear interpolation inside the power-of-two
  /// bucket holding it: where quantileLowNanos answers "at least", this
  /// estimates how far into the bucket the quantile rank falls, assuming
  /// samples are spread uniformly across the bucket.  Two distributions
  /// whose tails land in the same bucket still get distinguishable p99s,
  /// which is what the scenario-matrix SLO columns report.  Monotone in
  /// \p Q by construction.  0 when empty.
  double quantileNanos(double Q) const {
    uint64_t N = count();
    if (N == 0)
      return 0.0;
    uint64_t Rank = uint64_t(Q * double(N));
    if (Rank >= N)
      Rank = N - 1;
    uint64_t Seen = 0;
    for (unsigned I = 0; I < LogHistogram::NumBuckets; ++I) {
      if (Buckets[I] == 0)
        continue;
      if (Seen + Buckets[I] > Rank) {
        double Low = double(LogHistogram::bucketLowNanos(I));
        double Width = I == 0 ? 2.0 : Low; // bucket i spans [2^i, 2^(i+1))
        double Into = (double(Rank - Seen) + 0.5) / double(Buckets[I]);
        return Low + Width * Into;
      }
      Seen += Buckets[I];
    }
    return double(LogHistogram::bucketLowNanos(LogHistogram::NumBuckets - 1));
  }

  /// Adds \p Other's counts into this snapshot (multi-copy aggregation:
  /// the merged histogram is what one histogram would have recorded had
  /// every copy reported into it).
  void merge(const HistogramSnapshot &Other) {
    for (unsigned I = 0; I < LogHistogram::NumBuckets; ++I)
      Buckets[I] += Other.Buckets[I];
    TotalNanos += Other.TotalNanos;
  }
};

} // namespace gengc

#endif // GENGC_OBS_HISTOGRAM_H

//===- obs/TraceExport.cpp - Trace aggregation and exporters --------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "obs/TraceExport.h"

#include <algorithm>
#include <ostream>

#include "obs/ObsRegistry.h"

using namespace gengc;

TraceSnapshot TraceSnapshot::of(const ObsRegistry &Registry) {
  TraceSnapshot Snap;
  std::vector<ObsEvent> Scratch;
  Registry.forEachRing([&](const EventRing &Ring) {
    uint32_t Index = uint32_t(Snap.Tracks.size());
    Track T;
    T.Source = Ring.source();
    T.SourceId = Ring.sourceId();
    T.Written = Ring.written();
    T.Dropped = Ring.dropped();
    Snap.Tracks.push_back(T);

    Scratch.clear();
    Ring.snapshot(Scratch);
    for (const ObsEvent &E : Scratch) {
      TraceEvent TE;
      static_cast<ObsEvent &>(TE) = E;
      TE.TrackIndex = Index;
      Snap.Events.push_back(TE);
    }
  });
  std::stable_sort(Snap.Events.begin(), Snap.Events.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     return A.StartNanos < B.StartNanos;
                   });
  return Snap;
}

namespace {

/// A printable per-track thread name ("collector", "gc-lane-3",
/// "mutator-7").
void printTrackName(std::ostream &Os, const TraceSnapshot::Track &T) {
  switch (T.Source) {
  case ObsSource::Collector:
    Os << "collector";
    return;
  case ObsSource::GcLane:
    Os << "gc-lane-" << T.SourceId;
    return;
  case ObsSource::Mutator:
    Os << "mutator-" << T.SourceId;
    return;
  }
  Os << "unknown";
}

/// Chrome numbers virtual threads from 1; track index maps 1:1.
unsigned chromeTid(uint32_t TrackIndex) { return TrackIndex + 1; }

/// Chrome trace timestamps are microseconds; keep sub-microsecond precision
/// by emitting a decimal fraction.
void printMicros(std::ostream &Os, uint64_t Nanos) {
  Os << Nanos / 1000 << '.' << Nanos % 1000 / 100 << Nanos % 100 / 10
     << Nanos % 10;
}

} // namespace

void gengc::writeChromeTrace(std::ostream &Os, const TraceSnapshot &Trace) {
  Os << "{\"traceEvents\":[";
  bool First = true;
  auto Comma = [&] {
    if (!First)
      Os << ",\n";
    First = false;
  };

  // Thread-name metadata so Perfetto labels each track.
  for (uint32_t I = 0; I < Trace.Tracks.size(); ++I) {
    Comma();
    Os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << chromeTid(I) << ",\"args\":{\"name\":\"";
    printTrackName(Os, Trace.Tracks[I]);
    Os << "\"}}";
  }

  for (const TraceSnapshot::TraceEvent &E : Trace.Events) {
    Comma();
    Os << "{\"name\":\"" << obsEventKindName(E.Kind)
       << "\",\"cat\":\"" << obsSourceName(Trace.Tracks[E.TrackIndex].Source)
       << "\",\"ph\":\"" << (E.DurationNanos != 0 ? 'X' : 'i')
       << "\",\"pid\":1,\"tid\":" << chromeTid(E.TrackIndex) << ",\"ts\":";
    printMicros(Os, E.StartNanos);
    if (E.DurationNanos != 0) {
      Os << ",\"dur\":";
      printMicros(Os, E.DurationNanos);
    } else {
      Os << ",\"s\":\"t\"";
    }
    Os << ",\"args\":{\"arg0\":" << E.Arg0 << ",\"arg1\":" << E.Arg1 << "}}";
  }
  Os << "]}\n";
}

void gengc::writeJsonLines(std::ostream &Os, const TraceSnapshot &Trace) {
  for (const TraceSnapshot::Track &T : Trace.Tracks) {
    Os << "{\"track\":\"";
    printTrackName(Os, T);
    Os << "\",\"src\":\"" << obsSourceName(T.Source) << "\",\"id\":"
       << T.SourceId << ",\"written\":" << T.Written
       << ",\"dropped\":" << T.Dropped << "}\n";
  }
  for (const TraceSnapshot::TraceEvent &E : Trace.Events) {
    Os << "{\"kind\":\"" << obsEventKindName(E.Kind) << "\",\"track\":\"";
    printTrackName(Os, Trace.Tracks[E.TrackIndex]);
    Os << "\",\"start\":" << E.StartNanos << ",\"dur\":" << E.DurationNanos
       << ",\"arg0\":" << E.Arg0 << ",\"arg1\":" << E.Arg1 << "}\n";
  }
}

//===- obs/TraceExport.h - Trace aggregation and exporters ------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The read side of the tracing subsystem: TraceSnapshot merges every ring
/// of an ObsRegistry into one timestamp-ordered event sequence with track
/// (actor) metadata, and the two exporters serialize a snapshot as
///
///  - Chrome trace_event JSON ("X" span / "i" instant events, one virtual
///    thread per ring), loadable in Perfetto or chrome://tracing, and
///  - line-JSON (one self-describing object per line), the storage format
///    of the gengc_trace tool.
///
/// Snapshots may be taken while the runtime is live; torn slots are
/// skipped by the ring reader (see obs/EventRing.h).
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_OBS_TRACEEXPORT_H
#define GENGC_OBS_TRACEEXPORT_H

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/Event.h"

namespace gengc {

class ObsRegistry;

/// A merged, timestamp-sorted copy of every event retained in a registry's
/// rings, plus per-ring accounting.
struct TraceSnapshot {
  /// One ring's identity and drop accounting.
  struct Track {
    ObsSource Source = ObsSource::Collector;
    uint32_t SourceId = 0;
    /// Events ever written to the ring (snapshot holds at most the last
    /// capacity of them).
    uint64_t Written = 0;
    /// Events lost to drop-oldest overwriting.
    uint64_t Dropped = 0;
  };

  /// One event, tagged with the track it came from.
  struct TraceEvent : ObsEvent {
    uint32_t TrackIndex = 0;
  };

  std::vector<Track> Tracks;
  /// All retained events, sorted by StartNanos (stable: events with equal
  /// timestamps keep track order, which follows emission order within a
  /// ring).
  std::vector<TraceEvent> Events;

  uint64_t eventsWritten() const {
    uint64_t Sum = 0;
    for (const Track &T : Tracks)
      Sum += T.Written;
    return Sum;
  }

  uint64_t eventsDropped() const {
    uint64_t Sum = 0;
    for (const Track &T : Tracks)
      Sum += T.Dropped;
    return Sum;
  }

  /// Drains \p Registry's rings into a snapshot.  Safe while producers are
  /// still emitting (their in-flight slots are skipped).
  static TraceSnapshot of(const ObsRegistry &Registry);
};

/// Writes \p Trace as a Chrome trace_event JSON document ({"traceEvents":
/// [...]}).  Timestamps are emitted in microseconds as the format requires.
void writeChromeTrace(std::ostream &Os, const TraceSnapshot &Trace);

/// Writes \p Trace as line-JSON: one track-metadata object per ring
/// followed by one object per event, in timestamp order.
void writeJsonLines(std::ostream &Os, const TraceSnapshot &Trace);

} // namespace gengc

#endif // GENGC_OBS_TRACEEXPORT_H

//===- obs/ObsRegistry.h - Ring and metric registry -------------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-runtime hub of the observability subsystem.  It owns:
///
///  - the event rings: one per GC worker lane (created eagerly, lane 0 is
///    the collector thread) and one per mutator (created at attach).  Rings
///    are only created when ObsConfig::Tracing is on; emit sites hold a
///    plain EventRing* that is null otherwise, so the traced-off hot path
///    is a single pointer test;
///  - the always-on latency histograms (allocation stalls, stop-the-world
///    pauses, handshake response latency);
///  - drop accounting across all rings.
///
/// Rings are never destroyed before the registry: a detaching mutator
/// leaves its ring behind (already full of its history) and the aggregator
/// reads it like any other.  Ring registration takes a mutex; everything
/// on emit paths is lock-free.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_OBS_OBSREGISTRY_H
#define GENGC_OBS_OBSREGISTRY_H

#include <memory>
#include <mutex>
#include <vector>

#include "obs/EventRing.h"
#include "obs/Histogram.h"

namespace gengc {

/// Owns every ring and histogram of one runtime.
class ObsRegistry {
public:
  /// Creates the registry; with Config.Tracing on, eagerly creates
  /// \p GcLanes lane rings (so collector phases never take the
  /// registration lock).
  ObsRegistry(const ObsConfig &Config, unsigned GcLanes);

  ObsRegistry(const ObsRegistry &) = delete;
  ObsRegistry &operator=(const ObsRegistry &) = delete;

  const ObsConfig &config() const { return Config; }
  bool tracing() const { return Config.Tracing; }
  unsigned gcLanes() const { return NumLanes; }

  /// The ring of GC worker lane \p Lane (lane 0 doubles as the collector
  /// thread's cycle/phase/handshake ring).  Null with tracing off.
  EventRing *laneRing(unsigned Lane) {
    return Config.Tracing ? LaneRings[Lane].get() : nullptr;
  }

  /// Creates and returns the ring for a newly attached mutator; null with
  /// tracing off.  Thread-safe.
  EventRing *addMutatorRing();

  //===-- Always-on histograms --------------------------------------------===
  LogHistogram &stallHistogram() { return Stalls; }
  LogHistogram &stwPauseHistogram() { return StwPauses; }
  LogHistogram &handshakeHistogram() { return Handshakes; }
  /// End-to-end request latency reported by server-shaped workloads
  /// (workload/Scenario.h); empty unless the embedder records into it.
  LogHistogram &requestHistogram() { return Requests; }
  const LogHistogram &stallHistogram() const { return Stalls; }
  const LogHistogram &stwPauseHistogram() const { return StwPauses; }
  const LogHistogram &handshakeHistogram() const { return Handshakes; }
  const LogHistogram &requestHistogram() const { return Requests; }

  //===-- Aggregation -----------------------------------------------------===
  /// Calls \p Fn(const EventRing &) for every ring (lanes first, then
  /// mutators in attach order).  Takes the registration lock; safe
  /// concurrently with emitters.
  template <typename Fn> void forEachRing(Fn &&Body) const {
    std::scoped_lock Locked(Mutex);
    for (const auto &Ring : LaneRings)
      Body(const_cast<const EventRing &>(*Ring));
    for (const auto &Ring : MutatorRings)
      Body(const_cast<const EventRing &>(*Ring));
  }

  /// Sum of events written / dropped over all rings.
  uint64_t eventsWritten() const;
  uint64_t eventsDropped() const;

private:
  ObsConfig Config;
  unsigned NumLanes;

  mutable std::mutex Mutex;
  std::vector<std::unique_ptr<EventRing>> LaneRings;
  std::vector<std::unique_ptr<EventRing>> MutatorRings;

  LogHistogram Stalls;
  LogHistogram StwPauses;
  LogHistogram Handshakes;
  LogHistogram Requests;
};

} // namespace gengc

#endif // GENGC_OBS_OBSREGISTRY_H

//===- obs/CycleStats.cpp - Per-cycle and per-run GC statistics -----------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "obs/CycleStats.h"

using namespace gengc;

const char *gengc::cycleKindName(CycleKind Kind) {
  switch (Kind) {
  case CycleKind::Partial:
    return "partial";
  case CycleKind::Full:
    return "full";
  case CycleKind::NonGenerational:
    return "non-generational";
  }
  return "invalid";
}

size_t GcRunStats::count(CycleKind Kind) const {
  size_t N = 0;
  for (const CycleStats &C : Cycles)
    if (C.Kind == Kind)
      ++N;
  return N;
}

uint64_t GcRunStats::total(CycleKind Kind,
                           uint64_t CycleStats::*Field) const {
  uint64_t Sum = 0;
  for (const CycleStats &C : Cycles)
    if (C.Kind == Kind)
      Sum += C.*Field;
  return Sum;
}

uint64_t GcRunStats::totalAll(uint64_t CycleStats::*Field) const {
  uint64_t Sum = 0;
  for (const CycleStats &C : Cycles)
    Sum += C.*Field;
  return Sum;
}

double GcRunStats::mean(CycleKind Kind, uint64_t CycleStats::*Field) const {
  size_t N = count(Kind);
  if (N == 0)
    return 0.0;
  return double(total(Kind, Field)) / double(N);
}

double GcRunStats::percentActive(uint64_t ElapsedNanos) const {
  if (ElapsedNanos == 0)
    return 0.0;
  return 100.0 * double(GcActiveNanos) / double(ElapsedNanos);
}

double GcRunStats::percentFreedPartialObjects() const {
  uint64_t Freed = total(CycleKind::Partial, &CycleStats::ObjectsFreed);
  uint64_t Survived = total(CycleKind::Partial, &CycleStats::YoungSurvivors);
  if (Freed + Survived == 0)
    return 0.0;
  return 100.0 * double(Freed) / double(Freed + Survived);
}

double GcRunStats::percentFreedPartialBytes() const {
  uint64_t Freed = total(CycleKind::Partial, &CycleStats::BytesFreed);
  uint64_t Survived =
      total(CycleKind::Partial, &CycleStats::YoungSurvivorBytes);
  if (Freed + Survived == 0)
    return 0.0;
  return 100.0 * double(Freed) / double(Freed + Survived);
}

double GcRunStats::percentFreedWholeHeap(CycleKind Kind) const {
  uint64_t Freed = total(Kind, &CycleStats::ObjectsFreed);
  uint64_t Live = total(Kind, &CycleStats::LiveObjectsAfter);
  if (Freed + Live == 0)
    return 0.0;
  return 100.0 * double(Freed) / double(Freed + Live);
}

//===- obs/Metrics.h - Compact metrics snapshot -----------------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compact, copyable metrics view of a runtime: per-kind cycle
/// aggregates, latency histograms (stalls, stop-the-world pauses,
/// handshake response latency) and point-in-time gauges.  Built on demand
/// by Runtime::metrics() from the collector's run statistics and the
/// ObsRegistry's always-on histograms; the figure benches read their
/// numbers from this snapshot instead of hand-rolling counters on top of
/// raw CycleStats vectors.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_OBS_METRICS_H
#define GENGC_OBS_METRICS_H

#include "obs/CycleStats.h"
#include "obs/Histogram.h"

namespace gengc {

/// A point-in-time copy of every metric the subsystem keeps.
struct MetricsSnapshot {
  static constexpr unsigned NumKinds = 3; // CycleKind values

  /// Per-cycle-kind aggregates, indexed by CycleKind.
  struct KindAggregate {
    uint64_t Count = 0;
    uint64_t TotalDurationNanos = 0;
    uint64_t ObjectsFreed = 0;
    uint64_t BytesFreed = 0;
    uint64_t ObjectsTraced = 0;
  };
  KindAggregate Kinds[NumKinds];

  /// Total time a cycle was in progress (the Figure 10 stopwatch).
  uint64_t GcActiveNanos = 0;

  //===-- Gauges (state after the most recent cycle) ----------------------===
  uint64_t HeapBytes = 0;
  uint64_t LiveBytesAfterLastCycle = 0;
  uint64_t DirtyCardsAtLastCycleStart = 0;

  //===-- Event-ring accounting (0 with tracing off) ----------------------===
  uint64_t EventsWritten = 0;
  uint64_t EventsDropped = 0;

  //===-- Allocation path (sharded central free lists) --------------------===
  /// Central-list refills (popFreeChains calls that found memory).
  uint64_t AllocRefills = 0;
  /// Refills served by a non-home shard (bounded steal-from-neighbor).
  uint64_t AllocRefillSteals = 0;
  /// Refills that carved a fresh block because every shard was empty.
  uint64_t AllocCarveFallbacks = 0;
  /// Refills that found their home shard's mutex contended on entry.
  uint64_t AllocShardContentions = 0;
  /// Central free-list shards per size class (configuration gauge).
  uint64_t AllocShardCount = 0;

  //===-- Trace engine (segmented gray stacks) ----------------------------===
  /// Segments stolen between trace lanes, summed over cycles.
  uint64_t TraceSteals = 0;
  /// Segments offloaded to the shared work list, summed over cycles.
  uint64_t TraceOffloads = 0;
  /// Trace-segment pool acquires, summed over cycles.
  uint64_t TraceSegmentsAcquired = 0;
  /// Time inside termination verification scans, summed over cycles.
  uint64_t TraceTermScanNanos = 0;
  /// Segments the pool ever allocated (high-water footprint gauge).
  uint64_t TraceSegmentsAllocated = 0;
  /// Segments currently resting on the pool free list (gauge).
  uint64_t TraceSegmentsPooled = 0;

  //===-- Lazy sweep (SweepPolicy::Lazy; all 0 under Eager) ---------------===
  /// Size-class blocks published needs-sweep by PublishSweep phases.
  uint64_t LazyBlocksPublished = 0;
  /// Published blocks claimed and swept inline by mutator cache refills.
  uint64_t LazyBlocksMutatorSwept = 0;
  /// Published blocks swept by the collector (idle drip + SweepResidue).
  uint64_t LazyBlocksResidueSwept = 0;

  //===-- Cycle recovery (WatchdogPolicy::Escalate; DESIGN.md §19) --------===
  /// Cycles aborted mid-flight and unwound to pre-cycle state.
  uint64_t CycleAborts = 0;
  /// Cycles that ran as the cooperating-STW degraded fallback.
  uint64_t DegradedCycles = 0;
  /// Mutators force-adopted / force-shaded across all cycles.
  uint64_t ForcedMutators = 0;

  //===-- Latency histograms (always on) ----------------------------------===
  /// Voluntary allocation stalls (throttle + out-of-memory waits).
  HistogramSnapshot StallNanos;
  /// True stop-the-world parks (StwCollector only; empty for the paper's
  /// on-the-fly collectors — their headline property).
  HistogramSnapshot StwPauseNanos;
  /// Handshake request-to-response latency, one sample per mutator per
  /// handshake.
  HistogramSnapshot HandshakeNanos;
  /// End-to-end request latency recorded by server-shaped workloads
  /// (workload/Scenario.h): open-loop scheduled arrival to completion, so
  /// collector-induced queueing is part of every sample.  Empty for the
  /// figure-shaped workloads.  The scenario matrix reads p50/p99/p999
  /// from here (quantileNanos).
  HistogramSnapshot RequestNanos;

  //===-- Accessors mirroring GcRunStats ----------------------------------===
  const KindAggregate &kind(CycleKind Kind) const {
    return Kinds[unsigned(Kind)];
  }

  uint64_t count(CycleKind Kind) const { return kind(Kind).Count; }

  uint64_t cyclesTotal() const {
    uint64_t N = 0;
    for (const KindAggregate &K : Kinds)
      N += K.Count;
    return N;
  }

  /// Mean cycle wall time of \p Kind in nanoseconds (0 when none ran).
  double meanCycleNanos(CycleKind Kind) const {
    const KindAggregate &K = kind(Kind);
    return K.Count == 0 ? 0.0
                        : double(K.TotalDurationNanos) / double(K.Count);
  }

  /// GC-active time as a percentage of \p ElapsedNanos (Figure 10).
  double percentActive(uint64_t ElapsedNanos) const {
    if (ElapsedNanos == 0)
      return 0.0;
    return 100.0 * double(GcActiveNanos) / double(ElapsedNanos);
  }

  /// Aggregates \p Stats into the per-kind slots (used by the builder;
  /// gauges and histograms are filled separately).
  void addCycles(const GcRunStats &Stats) {
    for (const CycleStats &C : Stats.Cycles) {
      KindAggregate &K = Kinds[unsigned(C.Kind)];
      ++K.Count;
      K.TotalDurationNanos += C.DurationNanos;
      K.ObjectsFreed += C.ObjectsFreed;
      K.BytesFreed += C.BytesFreed;
      K.ObjectsTraced += C.ObjectsTraced;
      TraceSteals += C.TraceSteals;
      TraceOffloads += C.TraceOffloads;
      TraceSegmentsAcquired += C.TraceSegmentsAcquired;
      TraceTermScanNanos += C.TraceTermScanNanos;
      CycleAborts += C.Aborted ? 1 : 0;
      DegradedCycles += C.Degraded ? 1 : 0;
      ForcedMutators += C.ForcedMutators;
    }
    GcActiveNanos += Stats.GcActiveNanos;
    if (!Stats.Cycles.empty()) {
      const CycleStats &Last = Stats.Cycles.back();
      LiveBytesAfterLastCycle = Last.LiveBytesAfter;
      DirtyCardsAtLastCycleStart = Last.DirtyCardsAtStart;
    }
  }

  /// Folds \p Other — the snapshot of an independent runtime running a
  /// simultaneous copy of the same workload — into this one.  Counters,
  /// cycle aggregates and histograms add; footprint gauges add (the copies
  /// coexist in memory); configuration gauges take the maximum.  Used by
  /// workload::runWorkload to make multi-copy results real aggregates
  /// instead of copy 0's view.  Note GcActiveNanos becomes the sum over
  /// copies, so percentActive against wall time can exceed 100 on a
  /// saturated machine — that is the honest reading.
  void merge(const MetricsSnapshot &Other) {
    for (unsigned I = 0; I < NumKinds; ++I) {
      Kinds[I].Count += Other.Kinds[I].Count;
      Kinds[I].TotalDurationNanos += Other.Kinds[I].TotalDurationNanos;
      Kinds[I].ObjectsFreed += Other.Kinds[I].ObjectsFreed;
      Kinds[I].BytesFreed += Other.Kinds[I].BytesFreed;
      Kinds[I].ObjectsTraced += Other.Kinds[I].ObjectsTraced;
    }
    GcActiveNanos += Other.GcActiveNanos;
    HeapBytes += Other.HeapBytes;
    LiveBytesAfterLastCycle += Other.LiveBytesAfterLastCycle;
    DirtyCardsAtLastCycleStart += Other.DirtyCardsAtLastCycleStart;
    EventsWritten += Other.EventsWritten;
    EventsDropped += Other.EventsDropped;
    AllocRefills += Other.AllocRefills;
    AllocRefillSteals += Other.AllocRefillSteals;
    AllocCarveFallbacks += Other.AllocCarveFallbacks;
    AllocShardContentions += Other.AllocShardContentions;
    AllocShardCount = AllocShardCount > Other.AllocShardCount
                          ? AllocShardCount
                          : Other.AllocShardCount;
    TraceSteals += Other.TraceSteals;
    TraceOffloads += Other.TraceOffloads;
    TraceSegmentsAcquired += Other.TraceSegmentsAcquired;
    TraceTermScanNanos += Other.TraceTermScanNanos;
    TraceSegmentsAllocated += Other.TraceSegmentsAllocated;
    TraceSegmentsPooled += Other.TraceSegmentsPooled;
    LazyBlocksPublished += Other.LazyBlocksPublished;
    LazyBlocksMutatorSwept += Other.LazyBlocksMutatorSwept;
    LazyBlocksResidueSwept += Other.LazyBlocksResidueSwept;
    CycleAborts += Other.CycleAborts;
    DegradedCycles += Other.DegradedCycles;
    ForcedMutators += Other.ForcedMutators;
    StallNanos.merge(Other.StallNanos);
    StwPauseNanos.merge(Other.StwPauseNanos);
    HandshakeNanos.merge(Other.HandshakeNanos);
    RequestNanos.merge(Other.RequestNanos);
  }
};

} // namespace gengc

#endif // GENGC_OBS_METRICS_H

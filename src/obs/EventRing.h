//===- obs/EventRing.h - Lock-free per-actor event ring ---------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-capacity, single-producer event ring.  The producer (the actor
/// that owns the ring) appends with plain relaxed stores — no locks, no
/// read-modify-write, no fences on x86 — and overwrites the oldest slot
/// when the ring is full; the number of overwritten (dropped) events is
/// Written - Capacity.  The aggregator may snapshot the ring at any time,
/// concurrently with the producer.
///
/// Memory-ordering rationale (see DESIGN.md "Observability"):
///
///  - Each slot is a seqlock: the producer bumps the slot's sequence to odd
///    (release of nothing — relaxed), stores the payload fields as relaxed
///    atomics, then publishes the even sequence with a release store.  A
///    reader acquires the sequence, copies the payload, and re-checks the
///    sequence; a torn slot (odd, or changed between the reads) is simply
///    discarded — observability data is advisory, losing one in-flight
///    event beats adding synchronization to the producer.
///  - Payload fields are relaxed std::atomic<uint64_t>, which compile to
///    the same plain MOVs as non-atomic stores on every mainstream ISA but
///    keep the concurrent snapshot free of C++ data races (and of TSan
///    reports — the TSan suite runs with tracing enabled).
///  - Head is published with a release store after the slot, so a reader
///    that observes Head >= N can read slots [Head - Capacity, N) and rely
///    on the per-slot sequence alone to reject the (at most one) slot the
///    producer is mid-write in.
///
/// Slots are cache-line sized and the ring's hot members (Head) live on the
/// producer's line; an idle ring costs the producer nothing, an active one
/// costs ~6 relaxed stores per event.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_OBS_EVENTRING_H
#define GENGC_OBS_EVENTRING_H

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "obs/Event.h"
#include "support/MathExtras.h"

namespace gengc {

/// One single-producer, drop-oldest event ring.
class EventRing {
public:
  /// Creates a ring of at least \p Capacity slots (rounded up to a power
  /// of two, minimum 64) owned by the actor \p Source / \p SourceId.
  EventRing(ObsSource Source, uint32_t SourceId, uint32_t Capacity)
      : Source(Source), SourceId(SourceId),
        CapacityMask(slotCount(Capacity) - 1),
        Slots(new Slot[slotCount(Capacity)]) {}

  EventRing(const EventRing &) = delete;
  EventRing &operator=(const EventRing &) = delete;

  ObsSource source() const { return Source; }
  uint32_t sourceId() const { return SourceId; }
  size_t capacity() const { return CapacityMask + 1; }

  /// Producer side: appends one event.  Never blocks; overwrites the
  /// oldest event when full.
  void emit(ObsEventKind Kind, uint64_t StartNanos, uint64_t DurationNanos,
            uint64_t Arg0 = 0, uint64_t Arg1 = 0) {
    uint64_t H = Head.load(std::memory_order_relaxed);
    Slot &S = Slots[H & CapacityMask];
    // Seqlock write: odd marks the slot in flight for concurrent readers.
    uint64_t Seq = S.Seq.load(std::memory_order_relaxed);
    S.Seq.store(Seq + 1, std::memory_order_relaxed);
    S.StartNanos.store(StartNanos, std::memory_order_relaxed);
    S.DurationNanos.store(DurationNanos, std::memory_order_relaxed);
    S.Arg0.store(Arg0, std::memory_order_relaxed);
    S.Arg1.store(Arg1, std::memory_order_relaxed);
    S.Kind.store(uint8_t(Kind), std::memory_order_relaxed);
    S.Seq.store(Seq + 2, std::memory_order_release);
    Head.store(H + 1, std::memory_order_release);
  }

  /// Convenience: an instant event (duration 0) stamped with \p AtNanos.
  void instant(ObsEventKind Kind, uint64_t AtNanos, uint64_t Arg0 = 0,
               uint64_t Arg1 = 0) {
    emit(Kind, AtNanos, 0, Arg0, Arg1);
  }

  /// Total events ever emitted.
  uint64_t written() const { return Head.load(std::memory_order_acquire); }

  /// Events lost to drop-oldest overwriting.
  uint64_t dropped() const {
    uint64_t W = written();
    return W > capacity() ? W - capacity() : 0;
  }

  /// Reader side: copies the retained events, oldest first, into \p Out.
  /// Safe concurrently with the producer; slots the producer is mid-write
  /// in (at most one, plus any overwritten while we read) are skipped.
  /// \returns the number of events appended to \p Out.
  size_t snapshot(std::vector<ObsEvent> &Out) const {
    uint64_t H = Head.load(std::memory_order_acquire);
    uint64_t Begin = H > capacity() ? H - capacity() : 0;
    size_t Appended = 0;
    for (uint64_t I = Begin; I < H; ++I) {
      const Slot &S = Slots[I & CapacityMask];
      uint64_t SeqBefore = S.Seq.load(std::memory_order_acquire);
      if (SeqBefore & 1)
        continue; // mid-write
      ObsEvent E;
      E.StartNanos = S.StartNanos.load(std::memory_order_relaxed);
      E.DurationNanos = S.DurationNanos.load(std::memory_order_relaxed);
      E.Arg0 = S.Arg0.load(std::memory_order_relaxed);
      E.Arg1 = S.Arg1.load(std::memory_order_relaxed);
      E.Kind = ObsEventKind(S.Kind.load(std::memory_order_relaxed));
      // Acquire reload instead of the textbook fence: TSan cannot
      // instrument atomic_thread_fence, and the payload fields are
      // individually atomic, so a missed tear costs one inconsistent
      // advisory event rather than undefined behavior.
      if (S.Seq.load(std::memory_order_acquire) != SeqBefore)
        continue; // overwritten while copying
      Out.push_back(E);
      ++Appended;
    }
    return Appended;
  }

private:
  /// One cache-line-sized seqlocked slot.
  struct alignas(64) Slot {
    std::atomic<uint64_t> Seq{0};
    std::atomic<uint64_t> StartNanos{0};
    std::atomic<uint64_t> DurationNanos{0};
    std::atomic<uint64_t> Arg0{0};
    std::atomic<uint64_t> Arg1{0};
    std::atomic<uint8_t> Kind{0};
  };

  static size_t slotCount(uint32_t Capacity) {
    return size_t(1) << log2Ceil(std::max<uint32_t>(Capacity, 64));
  }

  const ObsSource Source;
  const uint32_t SourceId;
  const size_t CapacityMask;

  /// Producer-owned write cursor; padded so snapshots do not bounce the
  /// producer's line.
  alignas(64) std::atomic<uint64_t> Head{0};

  std::unique_ptr<Slot[]> Slots;
};

} // namespace gengc

#endif // GENGC_OBS_EVENTRING_H

//===- obs/Event.h - Observability event vocabulary -------------*- C++ -*-===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event taxonomy of the tracing subsystem.  Every actor that emits
/// events — the collector thread, each GC worker lane, each mutator — owns
/// one EventRing (see obs/EventRing.h) and writes fixed-size ObsEvent
/// records into it.  Events are either *spans* (a start timestamp plus a
/// duration) or *instants* (duration zero); the two integer arguments carry
/// kind-specific payload, documented per kind below.
///
/// The vocabulary is deliberately small and flat: a uint8_t kind, two u64
/// args, and a source identity attached by the ring, so the hot-path store
/// sequence stays a handful of relaxed stores and the exporters need no
/// per-kind schemas.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_OBS_EVENT_H
#define GENGC_OBS_EVENT_H

#include <cstdint>

namespace gengc {

/// What kind of actor owns an event ring.
enum class ObsSource : uint8_t {
  /// The collector thread (cycle, phase and handshake-post events).
  Collector = 0,
  /// One GC worker lane (trace/sweep/card-scan activity).  Lane 0 is the
  /// collector thread wearing its worker hat.
  GcLane = 1,
  /// One registered mutator thread.
  Mutator = 2,
};

/// Returns a printable name for \p Source.
const char *obsSourceName(ObsSource Source);

/// Every event kind the subsystem records.
enum class ObsEventKind : uint8_t {
  /// Instant, collector ring: a collection cycle begins.
  /// Arg0 = CycleKind, Arg1 = cycle index (completed cycles so far).
  CycleBegin = 0,
  /// Instant, collector ring: the cycle ended.  Args as CycleBegin.
  CycleEnd,
  /// Span, collector ring: one pipeline phase (emitted from runCyclePhases).
  /// Arg0 = GcPhase.
  Phase,
  /// Instant, collector ring: postHandshake published a new status.
  /// Arg0 = HandshakeStatus posted.
  HandshakeReq,
  /// Span, mutator ring: this mutator adopted a posted status; the span
  /// runs from the post to the response, so its duration is the
  /// request-to-response latency.  Arg0 = HandshakeStatus adopted,
  /// Arg1 = 1 when the collector responded on behalf of a blocked thread.
  HandshakeAck,
  /// Span, mutator ring: the thread stalled for the collector.
  /// Arg0 = StallCause, Arg1 = bytes allocated since the last GC when the
  /// stall began (throttle stalls) or 0.
  AllocStall,
  /// Span, lane ring: the lane's share of one trace phase.
  /// Arg0 = objects traced by this lane.
  TraceSpan,
  /// Instant, lane ring: the lane stole a chunk of gray work.
  /// Arg0 = refs in the stolen chunk (post-steal stack growth).
  TraceSteal,
  /// Span, lane ring: the lane's share of one sweep phase.
  /// Arg0 = objects freed by this lane, Arg1 = blocks swept.
  SweepSpan,
  /// Span, lane ring: one claimed block range inside a sweep.
  /// Arg0 = first block index, Arg1 = number of blocks.
  SweepChunk,
  /// Instant, lane ring: the two-level card scan opened a dirty summary
  /// chunk.  Arg0 = summary chunk index.
  CardChunkOpen,
  /// Instant, mutator ring: the out-of-memory escalation ladder advanced a
  /// step (see OomEscalationStep).  Arg0 = OomEscalationStep, Arg1 = the
  /// failed attempt count when the step was taken.
  OomEscalation,
  /// Instant, collector ring: a watchdog deadline expired (handshake wait
  /// or whole-cycle).  Arg0 = HandshakeStatus posted when it fired,
  /// Arg1 = nanoseconds waited.
  WatchdogFire,
  /// Instant, collector ring: a heap-verifier pass completed cleanly.
  /// Arg0 = VerifyScope, Arg1 = number of checks run.
  VerifyPass,
  /// Instant, mutator ring: a cache refill's home shard was dry and the
  /// chains came from a neighbor (or a carve).  Arg0 = shard the chains
  /// came from (or the home shard when a fresh block was carved),
  /// Arg1 = shards probed beyond the home shard.
  RefillSteal,
  /// Instant, mutator ring: a cache refill found its home shard's mutex
  /// contended (had to block behind another refill or a sweep flush).
  /// Arg0 = size-class index, Arg1 = home shard.
  ShardContention,
  /// Instant, collector ring: a PublishSweep phase deferred reclamation
  /// (SweepPolicy::Lazy).  Arg0 = size-class blocks published needs-sweep,
  /// Arg1 = the color-toggle epoch they were published under.
  SweepDeferred,
  /// Instant, mutator ring: a cache refill found every shard dry and swept
  /// published block(s) inline.  Arg0 = size-class index, Arg1 = blocks
  /// swept by this refill.
  LazySweepClaim,
  /// Span, collector ring: a residue pass (idle drip or the SweepResidue
  /// phase) swept blocks no mutator claimed.  Arg0 = blocks swept.
  SweepResidue,
  /// Instant, collector ring: an on-the-fly cycle was aborted mid-flight
  /// and unwound to a consistent pre-cycle state (watchdog escalation or
  /// an injected TraceAbort/SweepAbort fault).  Arg0 = GcPhase the abort
  /// was requested in, Arg1 = watchdog fires of the escalating wait (0 for
  /// fault-injected aborts).
  CycleAbort,
  /// Instant, collector ring: degraded-mode transition.  Arg0 = 1 when
  /// entering (subsequent cycles run as the cooperating-STW fallback), 0
  /// when leaving (a degraded cycle saw every mutator park voluntarily).
  /// Arg1 = mutators forced by the cycle that caused the transition.
  DegradedMode,
  /// Instant, collector ring: the watchdog escalation ladder advanced a
  /// rung (see EscalationAction).  Arg0 = EscalationAction, Arg1 =
  /// action-specific count (fires for Refire, mutators forced for
  /// ForceAdopt / StwFallback, 0 for the rest).
  EscalationStep,
};

/// Number of distinct ObsEventKind values (array sizing).
constexpr unsigned NumObsEventKinds =
    unsigned(ObsEventKind::EscalationStep) + 1;

/// Returns a printable name for \p Kind (stable; the exporters and the
/// gengc_trace summarizer both key on it).
const char *obsEventKindName(ObsEventKind Kind);

/// Why a mutator stalled (AllocStall's Arg0).
enum class StallCause : uint8_t {
  /// The during-cycle allocation budget was exhausted
  /// (CollectorState::ThrottleBytes back-pressure).
  Throttle = 0,
  /// The heap was exhausted and the thread waited inside waitForMemory.
  OutOfMemory = 1,
};

/// Which rung of the out-of-memory escalation ladder was taken
/// (OomEscalation's Arg0).  See Mutator::allocate for the ladder itself.
enum class OomEscalationStep : uint8_t {
  /// An ordinary waitForMemory round: wait for a full collection, retry.
  Wait = 0,
  /// The emergency rung: the mutator returned its other thread-local cache
  /// chains to the heap before waiting, so hoarded free memory becomes
  /// allocatable again.
  Emergency = 1,
  /// The ladder was exhausted and the installed OomHandler was invoked.
  Handler = 2,
  /// The handler chose GiveUp; the allocation returns NullRef.
  GaveUp = 3,
};

/// Which rung of the watchdog escalation ladder was taken (EscalationStep's
/// Arg0).  The ladder, in order: re-fire the stall report on a capped
/// backoff schedule, force-complete the laggards' handshakes, abort the
/// on-the-fly cycle, run the next cycles as cooperating-STW, and return to
/// on-the-fly once a degraded cycle needed no forcing.  DESIGN.md §19.
enum class EscalationAction : uint8_t {
  /// A still-stalled wait re-fired its stall report.
  Refire = 0,
  /// Lagging mutators were force-adopted to the posted status (their owed
  /// root shades are skipped; the cycle is aborted right after).
  ForceAdopt = 1,
  /// The on-the-fly cycle was aborted and unwound to pre-cycle state.
  AbortCycle = 2,
  /// A cycle ran as the cooperating-STW degraded fallback.
  StwFallback = 3,
  /// Handshakes succeed again; on-the-fly collection resumed.
  Recovered = 4,
};

/// One recorded event, as read out of a ring.
struct ObsEvent {
  /// nowNanos() when the event (or span) began.
  uint64_t StartNanos = 0;
  /// Span length; 0 for instants.
  uint64_t DurationNanos = 0;
  /// Kind-specific payload (see ObsEventKind).
  uint64_t Arg0 = 0;
  uint64_t Arg1 = 0;
  ObsEventKind Kind = ObsEventKind::CycleBegin;
};

/// Static configuration of the tracing side of the subsystem.  Metrics
/// (histograms, gauges, the MetricsSnapshot) are always on — they are a
/// few relaxed counter bumps on paths that are already slow.  Event rings
/// are gated by Tracing because they cost memory (Capacity * 64 bytes per
/// actor) and a timestamp per event.
struct ObsConfig {
  /// Record events into per-actor rings.  Off by default: the default
  /// runtime stays bit-identical to the untraced collector (the
  /// DeterminismTest contract).
  bool Tracing = false;

  /// Events per ring; rounded up to a power of two, minimum 64.  At the
  /// default, one ring is 512 KiB of event slots.
  uint32_t RingEvents = 8192;
};

} // namespace gengc

#endif // GENGC_OBS_EVENT_H

//===- obs/ObsRegistry.cpp - Ring and metric registry ---------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include "obs/ObsRegistry.h"

using namespace gengc;

ObsRegistry::ObsRegistry(const ObsConfig &Config, unsigned GcLanes)
    : Config(Config), NumLanes(GcLanes) {
  if (!Config.Tracing)
    return;
  LaneRings.reserve(GcLanes);
  for (unsigned Lane = 0; Lane < GcLanes; ++Lane)
    LaneRings.push_back(std::make_unique<EventRing>(
        Lane == 0 ? ObsSource::Collector : ObsSource::GcLane, Lane,
        Config.RingEvents));
}

EventRing *ObsRegistry::addMutatorRing() {
  if (!Config.Tracing)
    return nullptr;
  std::scoped_lock Locked(Mutex);
  uint32_t Id = uint32_t(MutatorRings.size());
  MutatorRings.push_back(
      std::make_unique<EventRing>(ObsSource::Mutator, Id, Config.RingEvents));
  return MutatorRings.back().get();
}

uint64_t ObsRegistry::eventsWritten() const {
  uint64_t Sum = 0;
  forEachRing([&](const EventRing &Ring) { Sum += Ring.written(); });
  return Sum;
}

uint64_t ObsRegistry::eventsDropped() const {
  uint64_t Sum = 0;
  forEachRing([&](const EventRing &Ring) { Sum += Ring.dropped(); });
  return Sum;
}

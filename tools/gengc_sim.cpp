//===- tools/gengc_sim.cpp - Workload/configuration explorer ---------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
//
// A command-line driver for one-off experiments: run any benchmark profile
// under any collector configuration and print the full per-run statistics.
//
//   gengc-sim [options]
//     --profile NAME      anagram|mtrt|raytracer|compress|db|jess|javac|jack
//     --collector KIND    gen|dlg|stw            (default gen)
//     --young MB          young generation size  (default 4)
//     --card BYTES        card size 16..4096     (default 16)
//     --aging N           aging with threshold N (default off)
//     --remset            remembered sets instead of cards
//     --threads N         override profile thread count
//     --scale F           allocation budget multiplier (default 1.0)
//     --heap MB           maximum heap           (default 32)
//     --cycles            print the per-cycle table
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "support/Table.h"
#include "workload/Runner.h"

using namespace gengc;
using namespace gengc::workload;

namespace {

[[noreturn]] void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--profile NAME] [--collector gen|dlg|stw] [--young MB]\n"
      "          [--card BYTES] [--aging N] [--remset] [--threads N]\n"
      "          [--scale F] [--heap MB] [--cycles]\n",
      Argv0);
  std::exit(2);
}

} // namespace

int main(int Argc, char **Argv) {
  std::string ProfileName = "javac";
  std::string CollectorName = "gen";
  uint64_t YoungMb = 4, HeapMb = 32;
  uint32_t CardBytes = 16;
  unsigned AgingThreshold = 0, ThreadOverride = 0;
  bool RemSet = false, PrintCycles = false;
  double Scale = 1.0;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc)
        usage(Argv[0]);
      return Argv[++I];
    };
    if (Arg == "--profile")
      ProfileName = Next();
    else if (Arg == "--collector")
      CollectorName = Next();
    else if (Arg == "--young")
      YoungMb = std::strtoull(Next(), nullptr, 10);
    else if (Arg == "--card")
      CardBytes = uint32_t(std::strtoul(Next(), nullptr, 10));
    else if (Arg == "--aging")
      AgingThreshold = unsigned(std::strtoul(Next(), nullptr, 10));
    else if (Arg == "--remset")
      RemSet = true;
    else if (Arg == "--threads")
      ThreadOverride = unsigned(std::strtoul(Next(), nullptr, 10));
    else if (Arg == "--scale")
      Scale = std::strtod(Next(), nullptr);
    else if (Arg == "--heap")
      HeapMb = std::strtoull(Next(), nullptr, 10);
    else if (Arg == "--cycles")
      PrintCycles = true;
    else
      usage(Argv[0]);
  }

  Profile P = profileByName(ProfileName);
  if (ThreadOverride)
    P.Threads = ThreadOverride;

  RuntimeConfig Config = makeConfig(CollectorChoice::Generational,
                                    YoungMb << 20, CardBytes);
  Config.Heap.HeapBytes = HeapMb << 20;
  if (CollectorName == "gen")
    Config.Choice = CollectorChoice::Generational;
  else if (CollectorName == "dlg")
    Config.Choice = CollectorChoice::NonGenerational;
  else if (CollectorName == "stw")
    Config.Choice = CollectorChoice::StopTheWorld;
  else
    usage(Argv[0]);
  if (AgingThreshold) {
    Config.Collector.Aging = true;
    Config.Collector.OldestAge = uint8_t(AgingThreshold);
  }
  Config.Collector.RememberedSets = RemSet;

  std::printf("profile=%s collector=%s young=%lluMB card=%uB heap=%lluMB "
              "threads=%u scale=%.2f%s%s\n",
              P.Name.c_str(), CollectorName.c_str(),
              (unsigned long long)YoungMb, CardBytes,
              (unsigned long long)HeapMb, P.Threads, Scale,
              AgingThreshold ? " aging" : "", RemSet ? " remset" : "");

  RunOptions Options;
  Options.Scale = Scale;
  RunResult R = runWorkload(P, Config, Options);

  std::printf("\nelapsed %.3f s | allocated %llu objects (%llu MB) | "
              "GC active %.1f%%\n",
              R.ElapsedSeconds, (unsigned long long)R.AllocatedObjects,
              (unsigned long long)(R.AllocatedBytes >> 20),
              R.percentGcActive());
  std::printf("cycles: %zu partial, %zu full, %zu whole-heap\n",
              R.Gc.count(CycleKind::Partial), R.Gc.count(CycleKind::Full),
              R.Gc.count(CycleKind::NonGenerational));
  std::printf("partial collections freed %.1f%% of young objects "
              "(%.1f%% of bytes)\n",
              R.Gc.percentFreedPartialObjects(),
              R.Gc.percentFreedPartialBytes());
  std::printf("heap grew to %llu MB (soft limit)\n",
              (unsigned long long)(R.SoftLimitBytes >> 20));

  Table Summary({"cycle kind", "count", "avg ms", "avg traced",
                 "avg inter-gen", "avg freed", "avg freed KB"});
  for (CycleKind Kind : {CycleKind::Partial, CycleKind::Full,
                         CycleKind::NonGenerational}) {
    if (R.Gc.count(Kind) == 0)
      continue;
    Summary.addRow(
        {cycleKindName(Kind), Table::count(R.Gc.count(Kind)),
         Table::number(R.Gc.mean(Kind, &CycleStats::DurationNanos) * 1e-6,
                       2),
         Table::number(R.Gc.mean(Kind, &CycleStats::ObjectsTraced), 0),
         Table::number(R.Gc.mean(Kind, &CycleStats::OldObjectsScanned), 0),
         Table::number(R.Gc.mean(Kind, &CycleStats::ObjectsFreed), 0),
         Table::number(R.Gc.mean(Kind, &CycleStats::BytesFreed) / 1024.0,
                       0)});
  }
  std::printf("\n");
  Summary.print(stdout);

  if (PrintCycles) {
    std::printf("\n");
    Table Cycles({"#", "kind", "ms", "traced", "inter-gen", "dirty",
                  "skipped", "freed", "freed KB", "live after"});
    for (size_t I = 0; I < R.Gc.Cycles.size(); ++I) {
      const CycleStats &C = R.Gc.Cycles[I];
      Cycles.addRow({Table::count(I), cycleKindName(C.Kind),
                     Table::number(double(C.DurationNanos) * 1e-6, 2),
                     Table::count(C.ObjectsTraced),
                     Table::count(C.OldObjectsScanned),
                     Table::count(C.DirtyCardsAtStart),
                     Table::count(C.CardsSkippedBySummary),
                     Table::count(C.ObjectsFreed),
                     Table::count(C.BytesFreed >> 10),
                     Table::count(C.LiveObjectsAfter)});
    }
    Cycles.print(stdout);
  }
  return 0;
}

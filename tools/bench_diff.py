#!/usr/bin/env python3
"""Compare a benchmark JSON run against a committed baseline.

Two input schemas are understood, detected per file:

- google-benchmark JSON (the micro benches): a throughput
  (items_per_second) drop of more than --max-regression at any of the
  checked --threads counts fails with exit code 1.  Only those thread
  counts are gated (high-thread points on an oversubscribed CI box are too
  noisy); every benchmark present in both files is still printed.

- the scenario matrix ("schema": "gengc-scenario-matrix", written by
  bench/scenario_matrix --json): every cell is gated — a
  requests_per_second drop beyond --max-regression or a p99_usec growth
  beyond --max-p99-growth (a factor, not a fraction) fails, as does a
  missing cell.  The headline SLO ordering is also asserted on the current
  run: the generational collector's churn/base p99 must stay below the
  stop-the-world collector's.

Stdlib only — no pip installs.

`bench_diff.py --list` takes no JSON arguments: it scans bench/baselines/
and prints each committed baseline with its benchmarks and the CMake check
target that gates it (the bench-gate CTest label runs all of them).
"""

import argparse
import json
import os
import re
import sys


def load_throughputs(path):
    """benchmark name -> items_per_second for every real-time benchmark.

    When the run used --benchmark_repetitions, the median aggregate is
    preferred over the raw per-repetition samples (keyed by run_name so it
    diffs cleanly against a single-run baseline and vice versa)."""
    with open(path) as f:
        data = json.load(f)
    raw, medians = {}, {}
    for bench in data.get("benchmarks", []):
        ips = bench.get("items_per_second")
        if not ips:
            continue
        if bench.get("run_type") == "aggregate":
            if bench.get("aggregate_name") == "median":
                medians[bench["run_name"]] = float(ips)
        else:
            raw[bench.get("run_name", bench["name"])] = float(ips)
    raw.update(medians)
    return raw


def thread_count(name):
    m = re.search(r"/threads:(\d+)$", name)
    return int(m.group(1)) if m else 1


def load_json(path):
    with open(path) as f:
        return json.load(f)


def is_scenario_matrix(data):
    return data.get("schema") == "gengc-scenario-matrix"


def load_scenario_cells(data):
    """cell key "scenario/collector/config" -> cell dict."""
    cells = {}
    for cell in data.get("cells", []):
        key = "/".join((cell["scenario"], cell["collector"], cell["config"]))
        cells[key] = cell
    return cells


def diff_scenario_matrix(base_data, cur_data, args):
    """Gate the scenario matrix: throughput drops, p99 growth, the churn
    SLO ordering.  Returns the exit status."""
    base = load_scenario_cells(base_data)
    cur = load_scenario_cells(cur_data)
    if not base:
        print("bench_diff: no cells in the baseline matrix")
        return 1

    failures = []
    print(f"{'cell':28} {'rps base':>10} {'rps cur':>10} {'rps d':>8} "
          f"{'p99 base':>10} {'p99 cur':>10} {'p99 x':>7}")
    for key in sorted(base):
        if key not in cur:
            failures.append((key, "missing from current run"))
            print(f"{key:28} missing from current run  REGRESSION")
            continue
        b, c = base[key], cur[key]
        rps_b, rps_c = b["requests_per_second"], c["requests_per_second"]
        p99_b, p99_c = b["p99_usec"], c["p99_usec"]
        rps_delta = (rps_c - rps_b) / rps_b if rps_b else 0.0
        # Guard the division: an idle cell can legitimately record a tiny
        # p99; only gate growth against a >=1us baseline.
        p99_factor = p99_c / max(p99_b, 1.0)
        # A single OS preemption on a small shared box adds milliseconds to
        # the p99 of a cell whose baseline tail is a few hundred us, so the
        # growth factor alone is all noise there.  A cell fails only when
        # its p99 exceeds BOTH the growth bound and the absolute floor —
        # the gate catches order-of-magnitude tail regressions, not
        # scheduler jitter.
        p99_limit = max(p99_b * args.max_p99_growth, args.p99_floor_usec)
        marker = ""
        if rps_delta < -args.max_regression:
            failures.append((key, f"throughput {rps_delta:+.1%}"))
            marker = "  REGRESSION(rps)"
        if p99_c > p99_limit:
            failures.append((key, f"p99 grew {p99_factor:.1f}x to "
                                  f"{p99_c:.0f}us (limit {p99_limit:.0f}us)"))
            marker += "  REGRESSION(p99)"
        print(f"{key:28} {rps_b:10.0f} {rps_c:10.0f} {rps_delta:+7.1%} "
              f"{p99_b:10.1f} {p99_c:10.1f} {p99_factor:6.2f}x{marker}")

    # The matrix's reason to exist: the on-the-fly generational collector
    # must keep the churn-scenario tail below the stop-the-world one.
    gen = cur.get("churn/gen/base")
    stw = cur.get("churn/stw/base")
    if gen and stw and gen["p99_usec"] >= stw["p99_usec"]:
        failures.append(("churn/gen/base",
                         f"SLO ordering lost: gen p99 {gen['p99_usec']:.1f}us"
                         f" >= stw p99 {stw['p99_usec']:.1f}us"))

    if failures:
        print(f"\nbench_diff: FAIL — {len(failures)} scenario cell(s) "
              f"regressed (rps drop > {args.max_regression:.0%}, or p99 "
              f"beyond {args.max_p99_growth:.1f}x baseline and "
              f"{args.p99_floor_usec:.0f}us):")
        for key, why in failures:
            print(f"  {key}: {why}")
        return 1
    print(f"\nbench_diff: OK — no cell lost more than "
          f"{args.max_regression:.0%} throughput or blew the p99 bound "
          f"({args.max_p99_growth:.1f}x and {args.p99_floor_usec:.0f}us), "
          f"and gen holds the churn SLO ordering")
    return 0


# Committed baseline file -> the CMake target that re-runs and gates it.
# Baselines without an entry are listed with a warning instead of silently
# skipped, so a new baseline missing its gate is visible.
CHECK_TARGETS = {
    "BENCH_alloc_scale.json": "bench_alloc_scale_check",
    "BENCH_lazy_sweep.json": "bench_lazy_sweep_check",
    "BENCH_trace_scale.json": "bench_trace_check",
    "BENCH_scenario_matrix.json": "bench_scenario_check",
}


def list_baselines(baselines_dir):
    """Print every committed baseline, its benchmarks and its check target."""
    if not os.path.isdir(baselines_dir):
        print(f"bench_diff: no baselines directory at {baselines_dir}")
        return 1
    names = sorted(n for n in os.listdir(baselines_dir) if n.endswith(".json"))
    if not names:
        print(f"bench_diff: no baselines in {baselines_dir}")
        return 1
    status = 0
    for name in names:
        target = CHECK_TARGETS.get(name)
        if target is None:
            target = "NO CHECK TARGET (add one to CHECK_TARGETS and CMake)"
            status = 1
        print(f"{name}  ->  {target}")
        data = load_json(os.path.join(baselines_dir, name))
        if is_scenario_matrix(data):
            for key in sorted(load_scenario_cells(data)):
                print(f"    {key}")
        else:
            for bench in sorted(load_throughputs(os.path.join(baselines_dir,
                                                              name))):
                print(f"    {bench}")
    print("\nrun all gates: ctest -C bench -L bench-gate (or the individual "
          "CMake targets above)")
    return status


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?", help="committed baseline JSON")
    parser.add_argument("current", nargs="?", help="freshly produced JSON")
    parser.add_argument(
        "--list",
        action="store_true",
        help="list committed baselines and their check targets, then exit",
    )
    parser.add_argument(
        "--baselines-dir",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             os.pardir, "bench", "baselines"),
        help="baselines directory for --list (default: ../bench/baselines)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.15,
        help="maximum fractional throughput drop before failing (default 0.15)",
    )
    parser.add_argument(
        "--threads",
        type=int,
        nargs="+",
        default=[1, 8],
        help="thread counts whose regressions are gating (default: 1 8)",
    )
    parser.add_argument(
        "--max-p99-growth",
        type=float,
        default=4.0,
        help="scenario matrix only: maximum p99 growth factor per cell "
             "before failing (default 4.0)",
    )
    parser.add_argument(
        "--p99-floor-usec",
        type=float,
        default=10000.0,
        help="scenario matrix only: a cell's p99 must also exceed this "
             "absolute value (us) to fail the growth gate (default 10000)",
    )
    args = parser.parse_args()

    if args.list:
        return list_baselines(os.path.normpath(args.baselines_dir))
    if args.baseline is None or args.current is None:
        parser.error("baseline and current JSON files are required "
                     "(or use --list)")

    base_data = load_json(args.baseline)
    cur_data = load_json(args.current)
    if is_scenario_matrix(base_data) != is_scenario_matrix(cur_data):
        print("bench_diff: baseline and current use different schemas")
        return 1
    if is_scenario_matrix(base_data):
        return diff_scenario_matrix(base_data, cur_data, args)

    base = load_throughputs(args.baseline)
    cur = load_throughputs(args.current)
    if not base:
        print(f"bench_diff: no usable benchmarks in baseline {args.baseline}")
        return 1
    gated = set(args.threads)
    failures = []
    missing = sorted(set(base) - set(cur))

    print(f"{'benchmark':60} {'baseline':>14} {'current':>14} {'delta':>8}")
    for name in sorted(set(base) & set(cur)):
        b, c = base[name], cur[name]
        delta = (c - b) / b
        gating = thread_count(name) in gated
        marker = ""
        if gating and delta < -args.max_regression:
            failures.append((name, delta))
            marker = "  REGRESSION"
        elif not gating:
            marker = "  (not gated)"
        print(f"{name:60} {b:14.0f} {c:14.0f} {delta:+7.1%}{marker}")

    for name in missing:
        if thread_count(name) in gated:
            failures.append((name, None))
            print(f"{name:60} missing from current run  REGRESSION")

    if failures:
        print(
            f"\nbench_diff: FAIL — {len(failures)} gated benchmark(s) "
            f"regressed more than {args.max_regression:.0%} "
            f"(threads {sorted(gated)}):"
        )
        for name, delta in failures:
            print(f"  {name}: " + ("missing" if delta is None else f"{delta:+.1%}"))
        return 1
    print(
        f"\nbench_diff: OK — no gated regression beyond "
        f"{args.max_regression:.0%} at threads {sorted(gated)}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

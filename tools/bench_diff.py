#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a committed baseline.

Used by the bench_alloc_scale_check CMake target to gate the allocation-path
scalability bench: a throughput (items_per_second) drop of more than
--max-regression at any of the checked thread counts fails with exit code 1.

Only the thread counts named by --threads are gated (high-thread points on an
oversubscribed CI box are too noisy to gate on); every benchmark present in
both files is still printed for the record.  Stdlib only — no pip installs.

`bench_diff.py --list` takes no JSON arguments: it scans bench/baselines/
and prints each committed baseline with its benchmarks and the CMake check
target that gates it (the bench-gate CTest label runs all of them).
"""

import argparse
import json
import os
import re
import sys


def load_throughputs(path):
    """benchmark name -> items_per_second for every real-time benchmark.

    When the run used --benchmark_repetitions, the median aggregate is
    preferred over the raw per-repetition samples (keyed by run_name so it
    diffs cleanly against a single-run baseline and vice versa)."""
    with open(path) as f:
        data = json.load(f)
    raw, medians = {}, {}
    for bench in data.get("benchmarks", []):
        ips = bench.get("items_per_second")
        if not ips:
            continue
        if bench.get("run_type") == "aggregate":
            if bench.get("aggregate_name") == "median":
                medians[bench["run_name"]] = float(ips)
        else:
            raw[bench.get("run_name", bench["name"])] = float(ips)
    raw.update(medians)
    return raw


def thread_count(name):
    m = re.search(r"/threads:(\d+)$", name)
    return int(m.group(1)) if m else 1


# Committed baseline file -> the CMake target that re-runs and gates it.
# Baselines without an entry are listed with a warning instead of silently
# skipped, so a new baseline missing its gate is visible.
CHECK_TARGETS = {
    "BENCH_alloc_scale.json": "bench_alloc_scale_check",
    "BENCH_lazy_sweep.json": "bench_lazy_sweep_check",
    "BENCH_trace_scale.json": "bench_trace_check",
}


def list_baselines(baselines_dir):
    """Print every committed baseline, its benchmarks and its check target."""
    if not os.path.isdir(baselines_dir):
        print(f"bench_diff: no baselines directory at {baselines_dir}")
        return 1
    names = sorted(n for n in os.listdir(baselines_dir) if n.endswith(".json"))
    if not names:
        print(f"bench_diff: no baselines in {baselines_dir}")
        return 1
    status = 0
    for name in names:
        target = CHECK_TARGETS.get(name)
        if target is None:
            target = "NO CHECK TARGET (add one to CHECK_TARGETS and CMake)"
            status = 1
        print(f"{name}  ->  {target}")
        for bench in sorted(load_throughputs(os.path.join(baselines_dir, name))):
            print(f"    {bench}")
    print("\nrun all gates: ctest -C bench -L bench-gate (or the individual "
          "CMake targets above)")
    return status


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?", help="committed baseline JSON")
    parser.add_argument("current", nargs="?", help="freshly produced JSON")
    parser.add_argument(
        "--list",
        action="store_true",
        help="list committed baselines and their check targets, then exit",
    )
    parser.add_argument(
        "--baselines-dir",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             os.pardir, "bench", "baselines"),
        help="baselines directory for --list (default: ../bench/baselines)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.15,
        help="maximum fractional throughput drop before failing (default 0.15)",
    )
    parser.add_argument(
        "--threads",
        type=int,
        nargs="+",
        default=[1, 8],
        help="thread counts whose regressions are gating (default: 1 8)",
    )
    args = parser.parse_args()

    if args.list:
        return list_baselines(os.path.normpath(args.baselines_dir))
    if args.baseline is None or args.current is None:
        parser.error("baseline and current JSON files are required "
                     "(or use --list)")

    base = load_throughputs(args.baseline)
    cur = load_throughputs(args.current)
    if not base:
        print(f"bench_diff: no usable benchmarks in baseline {args.baseline}")
        return 1
    gated = set(args.threads)
    failures = []
    missing = sorted(set(base) - set(cur))

    print(f"{'benchmark':60} {'baseline':>14} {'current':>14} {'delta':>8}")
    for name in sorted(set(base) & set(cur)):
        b, c = base[name], cur[name]
        delta = (c - b) / b
        gating = thread_count(name) in gated
        marker = ""
        if gating and delta < -args.max_regression:
            failures.append((name, delta))
            marker = "  REGRESSION"
        elif not gating:
            marker = "  (not gated)"
        print(f"{name:60} {b:14.0f} {c:14.0f} {delta:+7.1%}{marker}")

    for name in missing:
        if thread_count(name) in gated:
            failures.append((name, None))
            print(f"{name:60} missing from current run  REGRESSION")

    if failures:
        print(
            f"\nbench_diff: FAIL — {len(failures)} gated benchmark(s) "
            f"regressed more than {args.max_regression:.0%} "
            f"(threads {sorted(gated)}):"
        )
        for name, delta in failures:
            print(f"  {name}: " + ("missing" if delta is None else f"{delta:+.1%}"))
        return 1
    print(
        f"\nbench_diff: OK — no gated regression beyond "
        f"{args.max_regression:.0%} at threads {sorted(gated)}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a committed baseline.

Used by the bench_alloc_scale_check CMake target to gate the allocation-path
scalability bench: a throughput (items_per_second) drop of more than
--max-regression at any of the checked thread counts fails with exit code 1.

Only the thread counts named by --threads are gated (high-thread points on an
oversubscribed CI box are too noisy to gate on); every benchmark present in
both files is still printed for the record.  Stdlib only — no pip installs.
"""

import argparse
import json
import re
import sys


def load_throughputs(path):
    """benchmark name -> items_per_second for every real-time benchmark."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        ips = bench.get("items_per_second")
        if ips:
            out[bench["name"]] = float(ips)
    return out


def thread_count(name):
    m = re.search(r"/threads:(\d+)$", name)
    return int(m.group(1)) if m else 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly produced JSON")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.15,
        help="maximum fractional throughput drop before failing (default 0.15)",
    )
    parser.add_argument(
        "--threads",
        type=int,
        nargs="+",
        default=[1, 8],
        help="thread counts whose regressions are gating (default: 1 8)",
    )
    args = parser.parse_args()

    base = load_throughputs(args.baseline)
    cur = load_throughputs(args.current)
    if not base:
        print(f"bench_diff: no usable benchmarks in baseline {args.baseline}")
        return 1
    gated = set(args.threads)
    failures = []
    missing = sorted(set(base) - set(cur))

    print(f"{'benchmark':60} {'baseline':>14} {'current':>14} {'delta':>8}")
    for name in sorted(set(base) & set(cur)):
        b, c = base[name], cur[name]
        delta = (c - b) / b
        gating = thread_count(name) in gated
        marker = ""
        if gating and delta < -args.max_regression:
            failures.append((name, delta))
            marker = "  REGRESSION"
        elif not gating:
            marker = "  (not gated)"
        print(f"{name:60} {b:14.0f} {c:14.0f} {delta:+7.1%}{marker}")

    for name in missing:
        if thread_count(name) in gated:
            failures.append((name, None))
            print(f"{name:60} missing from current run  REGRESSION")

    if failures:
        print(
            f"\nbench_diff: FAIL — {len(failures)} gated benchmark(s) "
            f"regressed more than {args.max_regression:.0%} "
            f"(threads {sorted(gated)}):"
        )
        for name, delta in failures:
            print(f"  {name}: " + ("missing" if delta is None else f"{delta:+.1%}"))
        return 1
    print(
        f"\nbench_diff: OK — no gated regression beyond "
        f"{args.max_regression:.0%} at threads {sorted(gated)}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

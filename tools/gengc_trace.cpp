//===- tools/gengc_trace.cpp - GC trace recorder / summarizer --------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// Records a GC event trace while running a benchmark profile, or summarizes
// a previously recorded line-JSON trace.
//
//   gengc-trace record [options]
//     --profile NAME      anagram|mtrt|raytracer|...   (default raytracer)
//     --collector KIND    gen|dlg|stw                  (default gen)
//     --out FILE          Chrome trace_event JSON      (default trace.json)
//     --jsonl FILE        also write line-JSON (gengc-trace's own format)
//     --threads N         override profile thread count
//     --gc-threads N      GC worker lanes              (default 2)
//     --scale F           allocation budget multiplier (default 1.0)
//     --young MB          young generation size        (default 4)
//     --ring N            per-actor ring capacity      (default 8192)
//
//   gengc-trace summarize FILE.jsonl
//     Prints per-kind and per-track event counts and total span time.
//
// Open the Chrome JSON in Perfetto (ui.perfetto.dev) or chrome://tracing:
// one row per actor (collector, GC lanes, mutators), spans for cycles,
// phases, per-lane trace/sweep work, instants for handshakes and steals.
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "support/Table.h"
#include "workload/Runner.h"

using namespace gengc;
using namespace gengc::workload;

namespace {

[[noreturn]] void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s record [--profile NAME] [--collector gen|dlg|stw]\n"
      "          [--out FILE] [--jsonl FILE] [--threads N] [--gc-threads N]\n"
      "          [--scale F] [--young MB] [--ring N]\n"
      "       %s summarize FILE.jsonl\n",
      Argv0, Argv0);
  std::exit(2);
}

int record(int Argc, char **Argv) {
  std::string ProfileName = "raytracer";
  std::string CollectorName = "gen";
  std::string OutPath = "trace.json";
  std::string JsonlPath;
  unsigned ThreadOverride = 0, GcThreads = 2;
  uint64_t YoungMb = 4;
  uint32_t RingEvents = 8192;
  double Scale = 1.0;

  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc)
        usage(Argv[0]);
      return Argv[++I];
    };
    if (Arg == "--profile")
      ProfileName = Next();
    else if (Arg == "--collector")
      CollectorName = Next();
    else if (Arg == "--out")
      OutPath = Next();
    else if (Arg == "--jsonl")
      JsonlPath = Next();
    else if (Arg == "--threads")
      ThreadOverride = unsigned(std::strtoul(Next(), nullptr, 10));
    else if (Arg == "--gc-threads")
      GcThreads = unsigned(std::strtoul(Next(), nullptr, 10));
    else if (Arg == "--scale")
      Scale = std::strtod(Next(), nullptr);
    else if (Arg == "--young")
      YoungMb = std::strtoull(Next(), nullptr, 10);
    else if (Arg == "--ring")
      RingEvents = uint32_t(std::strtoul(Next(), nullptr, 10));
    else
      usage(Argv[0]);
  }

  Profile P = profileByName(ProfileName);
  if (ThreadOverride)
    P.Threads = ThreadOverride;

  RuntimeConfig Config = makeConfig(CollectorChoice::Generational,
                                    YoungMb << 20, /*CardBytes=*/16);
  if (CollectorName == "gen")
    Config.Choice = CollectorChoice::Generational;
  else if (CollectorName == "dlg")
    Config.Choice = CollectorChoice::NonGenerational;
  else if (CollectorName == "stw")
    Config.Choice = CollectorChoice::StopTheWorld;
  else
    usage(Argv[0]);
  Config.Collector.GcThreads = GcThreads;
  Config.Collector.Obs.Tracing = true;
  Config.Collector.Obs.RingEvents = RingEvents;

  std::printf("recording: profile=%s collector=%s threads=%u gc-threads=%u "
              "scale=%.2f ring=%u\n",
              P.Name.c_str(), CollectorName.c_str(), P.Threads, GcThreads,
              Scale, RingEvents);

  RunOptions Options;
  Options.Scale = Scale;
  RunResult R = runWorkload(P, Config, Options);

  std::ofstream Out(OutPath);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  writeChromeTrace(Out, R.Trace);
  Out.close();
  std::printf("wrote %s: %zu events on %zu tracks (%llu written, "
              "%llu dropped)\n",
              OutPath.c_str(), R.Trace.Events.size(), R.Trace.Tracks.size(),
              (unsigned long long)R.Trace.eventsWritten(),
              (unsigned long long)R.Trace.eventsDropped());

  if (!JsonlPath.empty()) {
    std::ofstream Jsonl(JsonlPath);
    if (!Jsonl) {
      std::fprintf(stderr, "error: cannot write %s\n", JsonlPath.c_str());
      return 1;
    }
    writeJsonLines(Jsonl, R.Trace);
    std::printf("wrote %s\n", JsonlPath.c_str());
  }

  std::printf("run: %.3f s elapsed, %zu cycles, GC active %.1f%%\n",
              R.ElapsedSeconds, size_t(R.Metrics.cyclesTotal()),
              R.percentGcActive());
  return 0;
}

/// Minimal extractor for the flat one-line objects writeJsonLines emits:
/// finds `"key":` and parses the value as an unquoted token or quoted
/// string.  Not a general JSON parser; it only reads what we write.
bool jsonField(const std::string &Line, const std::string &Key,
               std::string &Value) {
  std::string Needle = "\"" + Key + "\":";
  size_t At = Line.find(Needle);
  if (At == std::string::npos)
    return false;
  size_t Begin = At + Needle.size();
  if (Begin < Line.size() && Line[Begin] == '"') {
    size_t End = Line.find('"', Begin + 1);
    if (End == std::string::npos)
      return false;
    Value = Line.substr(Begin + 1, End - Begin - 1);
    return true;
  }
  size_t End = Line.find_first_of(",}", Begin);
  if (End == std::string::npos)
    return false;
  Value = Line.substr(Begin, End - Begin);
  return true;
}

int summarize(const char *Argv0, const char *Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot read %s\n", Path);
    return 1;
  }

  struct KindAgg {
    uint64_t Count = 0;
    uint64_t SpanNanos = 0;
  };
  std::map<std::string, KindAgg> Kinds;
  std::map<std::string, uint64_t> Tracks;
  uint64_t Written = 0, Dropped = 0;
  uint64_t MinStart = UINT64_MAX, MaxEnd = 0;

  std::string Line;
  while (std::getline(In, Line)) {
    std::string V;
    if (jsonField(Line, "written", V)) {
      // Track-metadata line ("track" holds the display name).
      Written += std::strtoull(V.c_str(), nullptr, 10);
      if (jsonField(Line, "dropped", V))
        Dropped += std::strtoull(V.c_str(), nullptr, 10);
      continue;
    }
    if (!jsonField(Line, "kind", V))
      continue;
    KindAgg &K = Kinds[V];
    ++K.Count;
    uint64_t Start = 0, Dur = 0;
    std::string N;
    if (jsonField(Line, "start", N))
      Start = std::strtoull(N.c_str(), nullptr, 10);
    if (jsonField(Line, "dur", N))
      Dur = std::strtoull(N.c_str(), nullptr, 10);
    K.SpanNanos += Dur;
    MinStart = Start < MinStart ? Start : MinStart;
    MaxEnd = Start + Dur > MaxEnd ? Start + Dur : MaxEnd;
    if (jsonField(Line, "track", N))
      ++Tracks[N];
  }

  if (Kinds.empty()) {
    std::fprintf(stderr, "%s: no events found in %s\n", Argv0, Path);
    return 1;
  }

  std::printf("%s: %llu events written, %llu dropped, span %.3f s\n", Path,
              (unsigned long long)Written, (unsigned long long)Dropped,
              MaxEnd > MinStart ? double(MaxEnd - MinStart) * 1e-9 : 0.0);

  Table ByKind({"event kind", "count", "total span ms"});
  for (const auto &[Kind, Agg] : Kinds)
    ByKind.addRow({Kind, Table::count(Agg.Count),
                   Table::number(double(Agg.SpanNanos) * 1e-6, 2)});
  ByKind.print(stdout);

  // Resilience digest: the escalation-ladder events (DESIGN.md §19) get
  // their own call-out so a degraded or aborted run is visible without
  // scanning the per-kind table.
  auto countOf = [&](const char *Kind) -> uint64_t {
    auto It = Kinds.find(Kind);
    return It == Kinds.end() ? 0 : It->second.Count;
  };
  uint64_t Fires = countOf("WatchdogFire");
  uint64_t Aborts = countOf("CycleAbort");
  uint64_t Degraded = countOf("DegradedMode");
  uint64_t Steps = countOf("EscalationStep");
  if (Fires || Aborts || Degraded || Steps) {
    std::printf("\nresilience: %llu watchdog fires, %llu escalation steps, "
                "%llu cycle aborts, %llu degraded-mode transitions\n",
                (unsigned long long)Fires, (unsigned long long)Steps,
                (unsigned long long)Aborts, (unsigned long long)Degraded);
    if (Aborts || Degraded)
      std::printf("  (the run left the no-fault fast path; see DESIGN.md "
                  "§19 and README \"Running degraded\")\n");
  }

  std::printf("\n");
  Table ByTrack({"track", "events"});
  for (const auto &[Name, Count] : Tracks)
    ByTrack.addRow({Name, Table::count(Count)});
  ByTrack.print(stdout);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    usage(Argv[0]);
  std::string Cmd = Argv[1];
  if (Cmd == "record")
    return record(Argc, Argv);
  if (Cmd == "summarize" && Argc == 3)
    return summarize(Argv[0], Argv[2]);
  usage(Argv[0]);
}


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/heap/AgeTableTest.cpp" "tests/CMakeFiles/test_heap.dir/heap/AgeTableTest.cpp.o" "gcc" "tests/CMakeFiles/test_heap.dir/heap/AgeTableTest.cpp.o.d"
  "/root/repo/tests/heap/AtomicByteTableTest.cpp" "tests/CMakeFiles/test_heap.dir/heap/AtomicByteTableTest.cpp.o" "gcc" "tests/CMakeFiles/test_heap.dir/heap/AtomicByteTableTest.cpp.o.d"
  "/root/repo/tests/heap/CardTableTest.cpp" "tests/CMakeFiles/test_heap.dir/heap/CardTableTest.cpp.o" "gcc" "tests/CMakeFiles/test_heap.dir/heap/CardTableTest.cpp.o.d"
  "/root/repo/tests/heap/ColorTest.cpp" "tests/CMakeFiles/test_heap.dir/heap/ColorTest.cpp.o" "gcc" "tests/CMakeFiles/test_heap.dir/heap/ColorTest.cpp.o.d"
  "/root/repo/tests/heap/HeapStressTest.cpp" "tests/CMakeFiles/test_heap.dir/heap/HeapStressTest.cpp.o" "gcc" "tests/CMakeFiles/test_heap.dir/heap/HeapStressTest.cpp.o.d"
  "/root/repo/tests/heap/HeapTest.cpp" "tests/CMakeFiles/test_heap.dir/heap/HeapTest.cpp.o" "gcc" "tests/CMakeFiles/test_heap.dir/heap/HeapTest.cpp.o.d"
  "/root/repo/tests/heap/LargeObjectTest.cpp" "tests/CMakeFiles/test_heap.dir/heap/LargeObjectTest.cpp.o" "gcc" "tests/CMakeFiles/test_heap.dir/heap/LargeObjectTest.cpp.o.d"
  "/root/repo/tests/heap/PageTouchTest.cpp" "tests/CMakeFiles/test_heap.dir/heap/PageTouchTest.cpp.o" "gcc" "tests/CMakeFiles/test_heap.dir/heap/PageTouchTest.cpp.o.d"
  "/root/repo/tests/heap/SizeClassesTest.cpp" "tests/CMakeFiles/test_heap.dir/heap/SizeClassesTest.cpp.o" "gcc" "tests/CMakeFiles/test_heap.dir/heap/SizeClassesTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gengc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gengc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gengc_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gengc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gengc_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gengc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

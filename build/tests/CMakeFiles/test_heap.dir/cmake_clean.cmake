file(REMOVE_RECURSE
  "CMakeFiles/test_heap.dir/heap/AgeTableTest.cpp.o"
  "CMakeFiles/test_heap.dir/heap/AgeTableTest.cpp.o.d"
  "CMakeFiles/test_heap.dir/heap/AtomicByteTableTest.cpp.o"
  "CMakeFiles/test_heap.dir/heap/AtomicByteTableTest.cpp.o.d"
  "CMakeFiles/test_heap.dir/heap/CardTableTest.cpp.o"
  "CMakeFiles/test_heap.dir/heap/CardTableTest.cpp.o.d"
  "CMakeFiles/test_heap.dir/heap/ColorTest.cpp.o"
  "CMakeFiles/test_heap.dir/heap/ColorTest.cpp.o.d"
  "CMakeFiles/test_heap.dir/heap/HeapStressTest.cpp.o"
  "CMakeFiles/test_heap.dir/heap/HeapStressTest.cpp.o.d"
  "CMakeFiles/test_heap.dir/heap/HeapTest.cpp.o"
  "CMakeFiles/test_heap.dir/heap/HeapTest.cpp.o.d"
  "CMakeFiles/test_heap.dir/heap/LargeObjectTest.cpp.o"
  "CMakeFiles/test_heap.dir/heap/LargeObjectTest.cpp.o.d"
  "CMakeFiles/test_heap.dir/heap/PageTouchTest.cpp.o"
  "CMakeFiles/test_heap.dir/heap/PageTouchTest.cpp.o.d"
  "CMakeFiles/test_heap.dir/heap/SizeClassesTest.cpp.o"
  "CMakeFiles/test_heap.dir/heap/SizeClassesTest.cpp.o.d"
  "test_heap"
  "test_heap.pdb"
  "test_heap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

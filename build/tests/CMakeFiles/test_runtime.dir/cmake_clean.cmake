file(REMOVE_RECURSE
  "CMakeFiles/test_runtime.dir/runtime/GrayBufferTest.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/GrayBufferTest.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/HandshakeTest.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/HandshakeTest.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/MutatorTest.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/MutatorTest.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/ObjectModelTest.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/ObjectModelTest.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/RootsTest.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/RootsTest.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/WriteBarrierTest.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/WriteBarrierTest.cpp.o.d"
  "test_runtime"
  "test_runtime.pdb"
  "test_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime/GrayBufferTest.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/GrayBufferTest.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/GrayBufferTest.cpp.o.d"
  "/root/repo/tests/runtime/HandshakeTest.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/HandshakeTest.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/HandshakeTest.cpp.o.d"
  "/root/repo/tests/runtime/MutatorTest.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/MutatorTest.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/MutatorTest.cpp.o.d"
  "/root/repo/tests/runtime/ObjectModelTest.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/ObjectModelTest.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/ObjectModelTest.cpp.o.d"
  "/root/repo/tests/runtime/RootsTest.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/RootsTest.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/RootsTest.cpp.o.d"
  "/root/repo/tests/runtime/WriteBarrierTest.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/WriteBarrierTest.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/WriteBarrierTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gengc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gengc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gengc_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gengc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gengc_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gengc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

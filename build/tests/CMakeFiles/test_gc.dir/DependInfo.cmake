
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gc/AgingTest.cpp" "tests/CMakeFiles/test_gc.dir/gc/AgingTest.cpp.o" "gcc" "tests/CMakeFiles/test_gc.dir/gc/AgingTest.cpp.o.d"
  "/root/repo/tests/gc/CardRaceTest.cpp" "tests/CMakeFiles/test_gc.dir/gc/CardRaceTest.cpp.o" "gcc" "tests/CMakeFiles/test_gc.dir/gc/CardRaceTest.cpp.o.d"
  "/root/repo/tests/gc/CollectorCycleTest.cpp" "tests/CMakeFiles/test_gc.dir/gc/CollectorCycleTest.cpp.o" "gcc" "tests/CMakeFiles/test_gc.dir/gc/CollectorCycleTest.cpp.o.d"
  "/root/repo/tests/gc/CollectorTest.cpp" "tests/CMakeFiles/test_gc.dir/gc/CollectorTest.cpp.o" "gcc" "tests/CMakeFiles/test_gc.dir/gc/CollectorTest.cpp.o.d"
  "/root/repo/tests/gc/ColorInvariantTest.cpp" "tests/CMakeFiles/test_gc.dir/gc/ColorInvariantTest.cpp.o" "gcc" "tests/CMakeFiles/test_gc.dir/gc/ColorInvariantTest.cpp.o.d"
  "/root/repo/tests/gc/CycleStatsTest.cpp" "tests/CMakeFiles/test_gc.dir/gc/CycleStatsTest.cpp.o" "gcc" "tests/CMakeFiles/test_gc.dir/gc/CycleStatsTest.cpp.o.d"
  "/root/repo/tests/gc/DlgCollectorTest.cpp" "tests/CMakeFiles/test_gc.dir/gc/DlgCollectorTest.cpp.o" "gcc" "tests/CMakeFiles/test_gc.dir/gc/DlgCollectorTest.cpp.o.d"
  "/root/repo/tests/gc/Figure6GapTest.cpp" "tests/CMakeFiles/test_gc.dir/gc/Figure6GapTest.cpp.o" "gcc" "tests/CMakeFiles/test_gc.dir/gc/Figure6GapTest.cpp.o.d"
  "/root/repo/tests/gc/GenerationalCollectorTest.cpp" "tests/CMakeFiles/test_gc.dir/gc/GenerationalCollectorTest.cpp.o" "gcc" "tests/CMakeFiles/test_gc.dir/gc/GenerationalCollectorTest.cpp.o.d"
  "/root/repo/tests/gc/RememberedSetTest.cpp" "tests/CMakeFiles/test_gc.dir/gc/RememberedSetTest.cpp.o" "gcc" "tests/CMakeFiles/test_gc.dir/gc/RememberedSetTest.cpp.o.d"
  "/root/repo/tests/gc/RuntimeFacadeTest.cpp" "tests/CMakeFiles/test_gc.dir/gc/RuntimeFacadeTest.cpp.o" "gcc" "tests/CMakeFiles/test_gc.dir/gc/RuntimeFacadeTest.cpp.o.d"
  "/root/repo/tests/gc/StwCollectorTest.cpp" "tests/CMakeFiles/test_gc.dir/gc/StwCollectorTest.cpp.o" "gcc" "tests/CMakeFiles/test_gc.dir/gc/StwCollectorTest.cpp.o.d"
  "/root/repo/tests/gc/SweeperTest.cpp" "tests/CMakeFiles/test_gc.dir/gc/SweeperTest.cpp.o" "gcc" "tests/CMakeFiles/test_gc.dir/gc/SweeperTest.cpp.o.d"
  "/root/repo/tests/gc/TracerTest.cpp" "tests/CMakeFiles/test_gc.dir/gc/TracerTest.cpp.o" "gcc" "tests/CMakeFiles/test_gc.dir/gc/TracerTest.cpp.o.d"
  "/root/repo/tests/gc/TriggerTest.cpp" "tests/CMakeFiles/test_gc.dir/gc/TriggerTest.cpp.o" "gcc" "tests/CMakeFiles/test_gc.dir/gc/TriggerTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gengc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gengc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gengc_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gengc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gengc_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gengc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/ConcurrentStressTest.cpp" "tests/CMakeFiles/test_integration.dir/integration/ConcurrentStressTest.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/ConcurrentStressTest.cpp.o.d"
  "/root/repo/tests/integration/PropertyTest.cpp" "tests/CMakeFiles/test_integration.dir/integration/PropertyTest.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/PropertyTest.cpp.o.d"
  "/root/repo/tests/integration/WorkloadTest.cpp" "tests/CMakeFiles/test_integration.dir/integration/WorkloadTest.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/WorkloadTest.cpp.o.d"
  "/root/repo/tests/integration/WorkloadUnitTest.cpp" "tests/CMakeFiles/test_integration.dir/integration/WorkloadUnitTest.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/WorkloadUnitTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gengc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gengc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gengc_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gengc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gengc_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gengc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/support/AssertTest.cpp" "tests/CMakeFiles/test_support.dir/support/AssertTest.cpp.o" "gcc" "tests/CMakeFiles/test_support.dir/support/AssertTest.cpp.o.d"
  "/root/repo/tests/support/MathExtrasTest.cpp" "tests/CMakeFiles/test_support.dir/support/MathExtrasTest.cpp.o" "gcc" "tests/CMakeFiles/test_support.dir/support/MathExtrasTest.cpp.o.d"
  "/root/repo/tests/support/RandomTest.cpp" "tests/CMakeFiles/test_support.dir/support/RandomTest.cpp.o" "gcc" "tests/CMakeFiles/test_support.dir/support/RandomTest.cpp.o.d"
  "/root/repo/tests/support/TableTest.cpp" "tests/CMakeFiles/test_support.dir/support/TableTest.cpp.o" "gcc" "tests/CMakeFiles/test_support.dir/support/TableTest.cpp.o.d"
  "/root/repo/tests/support/TimerTest.cpp" "tests/CMakeFiles/test_support.dir/support/TimerTest.cpp.o" "gcc" "tests/CMakeFiles/test_support.dir/support/TimerTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gengc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gengc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gengc_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gengc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gengc_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gengc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

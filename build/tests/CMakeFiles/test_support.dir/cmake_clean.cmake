file(REMOVE_RECURSE
  "CMakeFiles/test_support.dir/support/AssertTest.cpp.o"
  "CMakeFiles/test_support.dir/support/AssertTest.cpp.o.d"
  "CMakeFiles/test_support.dir/support/MathExtrasTest.cpp.o"
  "CMakeFiles/test_support.dir/support/MathExtrasTest.cpp.o.d"
  "CMakeFiles/test_support.dir/support/RandomTest.cpp.o"
  "CMakeFiles/test_support.dir/support/RandomTest.cpp.o.d"
  "CMakeFiles/test_support.dir/support/TableTest.cpp.o"
  "CMakeFiles/test_support.dir/support/TableTest.cpp.o.d"
  "CMakeFiles/test_support.dir/support/TimerTest.cpp.o"
  "CMakeFiles/test_support.dir/support/TimerTest.cpp.o.d"
  "test_support"
  "test_support.pdb"
  "test_support[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/example_gcbench.dir/gcbench.cpp.o"
  "CMakeFiles/example_gcbench.dir/gcbench.cpp.o.d"
  "example_gcbench"
  "example_gcbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_gcbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for example_gcbench.
# This may be replaced when dependencies are built.

# Empty dependencies file for example_gcbench.
# This may be replaced when dependencies are built.

# Empty dependencies file for example_anagram.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_anagram.dir/anagram.cpp.o"
  "CMakeFiles/example_anagram.dir/anagram.cpp.o.d"
  "example_anagram"
  "example_anagram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_anagram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/example_raytracer.dir/raytracer.cpp.o"
  "CMakeFiles/example_raytracer.dir/raytracer.cpp.o.d"
  "example_raytracer"
  "example_raytracer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_raytracer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

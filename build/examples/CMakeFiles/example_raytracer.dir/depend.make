# Empty dependencies file for example_raytracer.
# This may be replaced when dependencies are built.

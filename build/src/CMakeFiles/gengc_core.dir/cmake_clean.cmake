file(REMOVE_RECURSE
  "CMakeFiles/gengc_core.dir/core/Runtime.cpp.o"
  "CMakeFiles/gengc_core.dir/core/Runtime.cpp.o.d"
  "libgengc_core.a"
  "libgengc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gengc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/gengc_heap.dir/heap/AgeTable.cpp.o"
  "CMakeFiles/gengc_heap.dir/heap/AgeTable.cpp.o.d"
  "CMakeFiles/gengc_heap.dir/heap/Block.cpp.o"
  "CMakeFiles/gengc_heap.dir/heap/Block.cpp.o.d"
  "CMakeFiles/gengc_heap.dir/heap/CardTable.cpp.o"
  "CMakeFiles/gengc_heap.dir/heap/CardTable.cpp.o.d"
  "CMakeFiles/gengc_heap.dir/heap/Heap.cpp.o"
  "CMakeFiles/gengc_heap.dir/heap/Heap.cpp.o.d"
  "CMakeFiles/gengc_heap.dir/heap/PageTouch.cpp.o"
  "CMakeFiles/gengc_heap.dir/heap/PageTouch.cpp.o.d"
  "CMakeFiles/gengc_heap.dir/heap/SizeClasses.cpp.o"
  "CMakeFiles/gengc_heap.dir/heap/SizeClasses.cpp.o.d"
  "libgengc_heap.a"
  "libgengc_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gengc_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

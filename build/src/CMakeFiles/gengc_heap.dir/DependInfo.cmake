
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/heap/AgeTable.cpp" "src/CMakeFiles/gengc_heap.dir/heap/AgeTable.cpp.o" "gcc" "src/CMakeFiles/gengc_heap.dir/heap/AgeTable.cpp.o.d"
  "/root/repo/src/heap/Block.cpp" "src/CMakeFiles/gengc_heap.dir/heap/Block.cpp.o" "gcc" "src/CMakeFiles/gengc_heap.dir/heap/Block.cpp.o.d"
  "/root/repo/src/heap/CardTable.cpp" "src/CMakeFiles/gengc_heap.dir/heap/CardTable.cpp.o" "gcc" "src/CMakeFiles/gengc_heap.dir/heap/CardTable.cpp.o.d"
  "/root/repo/src/heap/Heap.cpp" "src/CMakeFiles/gengc_heap.dir/heap/Heap.cpp.o" "gcc" "src/CMakeFiles/gengc_heap.dir/heap/Heap.cpp.o.d"
  "/root/repo/src/heap/PageTouch.cpp" "src/CMakeFiles/gengc_heap.dir/heap/PageTouch.cpp.o" "gcc" "src/CMakeFiles/gengc_heap.dir/heap/PageTouch.cpp.o.d"
  "/root/repo/src/heap/SizeClasses.cpp" "src/CMakeFiles/gengc_heap.dir/heap/SizeClasses.cpp.o" "gcc" "src/CMakeFiles/gengc_heap.dir/heap/SizeClasses.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gengc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

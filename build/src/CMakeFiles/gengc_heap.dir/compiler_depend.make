# Empty compiler generated dependencies file for gengc_heap.
# This may be replaced when dependencies are built.

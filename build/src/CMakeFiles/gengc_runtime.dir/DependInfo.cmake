
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/Handshake.cpp" "src/CMakeFiles/gengc_runtime.dir/runtime/Handshake.cpp.o" "gcc" "src/CMakeFiles/gengc_runtime.dir/runtime/Handshake.cpp.o.d"
  "/root/repo/src/runtime/Mutator.cpp" "src/CMakeFiles/gengc_runtime.dir/runtime/Mutator.cpp.o" "gcc" "src/CMakeFiles/gengc_runtime.dir/runtime/Mutator.cpp.o.d"
  "/root/repo/src/runtime/MutatorRegistry.cpp" "src/CMakeFiles/gengc_runtime.dir/runtime/MutatorRegistry.cpp.o" "gcc" "src/CMakeFiles/gengc_runtime.dir/runtime/MutatorRegistry.cpp.o.d"
  "/root/repo/src/runtime/ObjectModel.cpp" "src/CMakeFiles/gengc_runtime.dir/runtime/ObjectModel.cpp.o" "gcc" "src/CMakeFiles/gengc_runtime.dir/runtime/ObjectModel.cpp.o.d"
  "/root/repo/src/runtime/Roots.cpp" "src/CMakeFiles/gengc_runtime.dir/runtime/Roots.cpp.o" "gcc" "src/CMakeFiles/gengc_runtime.dir/runtime/Roots.cpp.o.d"
  "/root/repo/src/runtime/WriteBarrier.cpp" "src/CMakeFiles/gengc_runtime.dir/runtime/WriteBarrier.cpp.o" "gcc" "src/CMakeFiles/gengc_runtime.dir/runtime/WriteBarrier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gengc_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gengc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for gengc_runtime.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/gengc_runtime.dir/runtime/Handshake.cpp.o"
  "CMakeFiles/gengc_runtime.dir/runtime/Handshake.cpp.o.d"
  "CMakeFiles/gengc_runtime.dir/runtime/Mutator.cpp.o"
  "CMakeFiles/gengc_runtime.dir/runtime/Mutator.cpp.o.d"
  "CMakeFiles/gengc_runtime.dir/runtime/MutatorRegistry.cpp.o"
  "CMakeFiles/gengc_runtime.dir/runtime/MutatorRegistry.cpp.o.d"
  "CMakeFiles/gengc_runtime.dir/runtime/ObjectModel.cpp.o"
  "CMakeFiles/gengc_runtime.dir/runtime/ObjectModel.cpp.o.d"
  "CMakeFiles/gengc_runtime.dir/runtime/Roots.cpp.o"
  "CMakeFiles/gengc_runtime.dir/runtime/Roots.cpp.o.d"
  "CMakeFiles/gengc_runtime.dir/runtime/WriteBarrier.cpp.o"
  "CMakeFiles/gengc_runtime.dir/runtime/WriteBarrier.cpp.o.d"
  "libgengc_runtime.a"
  "libgengc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gengc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libgengc_runtime.a"
)

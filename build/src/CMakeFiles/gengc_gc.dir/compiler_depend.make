# Empty compiler generated dependencies file for gengc_gc.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/gengc_gc.dir/gc/Collector.cpp.o"
  "CMakeFiles/gengc_gc.dir/gc/Collector.cpp.o.d"
  "CMakeFiles/gengc_gc.dir/gc/CycleStats.cpp.o"
  "CMakeFiles/gengc_gc.dir/gc/CycleStats.cpp.o.d"
  "CMakeFiles/gengc_gc.dir/gc/DlgCollector.cpp.o"
  "CMakeFiles/gengc_gc.dir/gc/DlgCollector.cpp.o.d"
  "CMakeFiles/gengc_gc.dir/gc/GenerationalCollector.cpp.o"
  "CMakeFiles/gengc_gc.dir/gc/GenerationalCollector.cpp.o.d"
  "CMakeFiles/gengc_gc.dir/gc/StwCollector.cpp.o"
  "CMakeFiles/gengc_gc.dir/gc/StwCollector.cpp.o.d"
  "CMakeFiles/gengc_gc.dir/gc/Sweeper.cpp.o"
  "CMakeFiles/gengc_gc.dir/gc/Sweeper.cpp.o.d"
  "CMakeFiles/gengc_gc.dir/gc/Tracer.cpp.o"
  "CMakeFiles/gengc_gc.dir/gc/Tracer.cpp.o.d"
  "CMakeFiles/gengc_gc.dir/gc/Trigger.cpp.o"
  "CMakeFiles/gengc_gc.dir/gc/Trigger.cpp.o.d"
  "libgengc_gc.a"
  "libgengc_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gengc_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

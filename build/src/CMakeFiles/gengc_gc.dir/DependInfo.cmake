
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gc/Collector.cpp" "src/CMakeFiles/gengc_gc.dir/gc/Collector.cpp.o" "gcc" "src/CMakeFiles/gengc_gc.dir/gc/Collector.cpp.o.d"
  "/root/repo/src/gc/CycleStats.cpp" "src/CMakeFiles/gengc_gc.dir/gc/CycleStats.cpp.o" "gcc" "src/CMakeFiles/gengc_gc.dir/gc/CycleStats.cpp.o.d"
  "/root/repo/src/gc/DlgCollector.cpp" "src/CMakeFiles/gengc_gc.dir/gc/DlgCollector.cpp.o" "gcc" "src/CMakeFiles/gengc_gc.dir/gc/DlgCollector.cpp.o.d"
  "/root/repo/src/gc/GenerationalCollector.cpp" "src/CMakeFiles/gengc_gc.dir/gc/GenerationalCollector.cpp.o" "gcc" "src/CMakeFiles/gengc_gc.dir/gc/GenerationalCollector.cpp.o.d"
  "/root/repo/src/gc/StwCollector.cpp" "src/CMakeFiles/gengc_gc.dir/gc/StwCollector.cpp.o" "gcc" "src/CMakeFiles/gengc_gc.dir/gc/StwCollector.cpp.o.d"
  "/root/repo/src/gc/Sweeper.cpp" "src/CMakeFiles/gengc_gc.dir/gc/Sweeper.cpp.o" "gcc" "src/CMakeFiles/gengc_gc.dir/gc/Sweeper.cpp.o.d"
  "/root/repo/src/gc/Tracer.cpp" "src/CMakeFiles/gengc_gc.dir/gc/Tracer.cpp.o" "gcc" "src/CMakeFiles/gengc_gc.dir/gc/Tracer.cpp.o.d"
  "/root/repo/src/gc/Trigger.cpp" "src/CMakeFiles/gengc_gc.dir/gc/Trigger.cpp.o" "gcc" "src/CMakeFiles/gengc_gc.dir/gc/Trigger.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gengc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gengc_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gengc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libgengc_gc.a"
)

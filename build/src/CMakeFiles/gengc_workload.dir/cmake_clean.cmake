file(REMOVE_RECURSE
  "CMakeFiles/gengc_workload.dir/workload/Profile.cpp.o"
  "CMakeFiles/gengc_workload.dir/workload/Profile.cpp.o.d"
  "CMakeFiles/gengc_workload.dir/workload/Program.cpp.o"
  "CMakeFiles/gengc_workload.dir/workload/Program.cpp.o.d"
  "CMakeFiles/gengc_workload.dir/workload/Runner.cpp.o"
  "CMakeFiles/gengc_workload.dir/workload/Runner.cpp.o.d"
  "libgengc_workload.a"
  "libgengc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gengc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

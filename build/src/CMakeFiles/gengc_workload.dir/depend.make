# Empty dependencies file for gengc_workload.
# This may be replaced when dependencies are built.

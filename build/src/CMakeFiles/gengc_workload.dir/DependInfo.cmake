
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/Profile.cpp" "src/CMakeFiles/gengc_workload.dir/workload/Profile.cpp.o" "gcc" "src/CMakeFiles/gengc_workload.dir/workload/Profile.cpp.o.d"
  "/root/repo/src/workload/Program.cpp" "src/CMakeFiles/gengc_workload.dir/workload/Program.cpp.o" "gcc" "src/CMakeFiles/gengc_workload.dir/workload/Program.cpp.o.d"
  "/root/repo/src/workload/Runner.cpp" "src/CMakeFiles/gengc_workload.dir/workload/Runner.cpp.o" "gcc" "src/CMakeFiles/gengc_workload.dir/workload/Runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gengc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gengc_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gengc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gengc_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gengc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libgengc_workload.a"
)

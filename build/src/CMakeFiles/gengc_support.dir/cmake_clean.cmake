file(REMOVE_RECURSE
  "CMakeFiles/gengc_support.dir/support/Random.cpp.o"
  "CMakeFiles/gengc_support.dir/support/Random.cpp.o.d"
  "CMakeFiles/gengc_support.dir/support/Table.cpp.o"
  "CMakeFiles/gengc_support.dir/support/Table.cpp.o.d"
  "CMakeFiles/gengc_support.dir/support/Timer.cpp.o"
  "CMakeFiles/gengc_support.dir/support/Timer.cpp.o.d"
  "libgengc_support.a"
  "libgengc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gengc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for gengc_support.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libgengc_support.a"
)

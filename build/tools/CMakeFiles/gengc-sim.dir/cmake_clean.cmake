file(REMOVE_RECURSE
  "CMakeFiles/gengc-sim.dir/gengc_sim.cpp.o"
  "CMakeFiles/gengc-sim.dir/gengc_sim.cpp.o.d"
  "gengc-sim"
  "gengc-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gengc-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for gengc-sim.
# This may be replaced when dependencies are built.

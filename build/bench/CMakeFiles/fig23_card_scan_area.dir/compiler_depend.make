# Empty compiler generated dependencies file for fig23_card_scan_area.
# This may be replaced when dependencies are built.

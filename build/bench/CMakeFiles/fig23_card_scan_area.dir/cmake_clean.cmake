file(REMOVE_RECURSE
  "CMakeFiles/fig23_card_scan_area.dir/fig23_card_scan_area.cpp.o"
  "CMakeFiles/fig23_card_scan_area.dir/fig23_card_scan_area.cpp.o.d"
  "fig23_card_scan_area"
  "fig23_card_scan_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_card_scan_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

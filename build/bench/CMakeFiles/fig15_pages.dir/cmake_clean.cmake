file(REMOVE_RECURSE
  "CMakeFiles/fig15_pages.dir/fig15_pages.cpp.o"
  "CMakeFiles/fig15_pages.dir/fig15_pages.cpp.o.d"
  "fig15_pages"
  "fig15_pages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_pages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig15_pages.
# This may be replaced when dependencies are built.

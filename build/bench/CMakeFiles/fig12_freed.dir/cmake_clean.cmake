file(REMOVE_RECURSE
  "CMakeFiles/fig12_freed.dir/fig12_freed.cpp.o"
  "CMakeFiles/fig12_freed.dir/fig12_freed.cpp.o.d"
  "fig12_freed"
  "fig12_freed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_freed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

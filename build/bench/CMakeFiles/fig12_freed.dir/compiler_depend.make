# Empty compiler generated dependencies file for fig12_freed.
# This may be replaced when dependencies are built.

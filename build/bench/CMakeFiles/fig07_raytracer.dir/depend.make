# Empty dependencies file for fig07_raytracer.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig07_raytracer.dir/fig07_raytracer.cpp.o"
  "CMakeFiles/fig07_raytracer.dir/fig07_raytracer.cpp.o.d"
  "fig07_raytracer"
  "fig07_raytracer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_raytracer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

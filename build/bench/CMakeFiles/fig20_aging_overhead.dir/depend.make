# Empty dependencies file for fig20_aging_overhead.
# This may be replaced when dependencies are built.

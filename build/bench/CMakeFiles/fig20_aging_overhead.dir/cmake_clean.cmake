file(REMOVE_RECURSE
  "CMakeFiles/fig20_aging_overhead.dir/fig20_aging_overhead.cpp.o"
  "CMakeFiles/fig20_aging_overhead.dir/fig20_aging_overhead.cpp.o.d"
  "fig20_aging_overhead"
  "fig20_aging_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_aging_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

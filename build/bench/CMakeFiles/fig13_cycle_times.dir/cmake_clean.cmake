file(REMOVE_RECURSE
  "CMakeFiles/fig13_cycle_times.dir/fig13_cycle_times.cpp.o"
  "CMakeFiles/fig13_cycle_times.dir/fig13_cycle_times.cpp.o.d"
  "fig13_cycle_times"
  "fig13_cycle_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_cycle_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

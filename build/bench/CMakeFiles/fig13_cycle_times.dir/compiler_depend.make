# Empty compiler generated dependencies file for fig13_cycle_times.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig17_young_size.
# This may be replaced when dependencies are built.

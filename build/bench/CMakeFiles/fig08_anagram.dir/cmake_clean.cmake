file(REMOVE_RECURSE
  "CMakeFiles/fig08_anagram.dir/fig08_anagram.cpp.o"
  "CMakeFiles/fig08_anagram.dir/fig08_anagram.cpp.o.d"
  "fig08_anagram"
  "fig08_anagram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_anagram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig08_anagram.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig18_aging_lo.
# This may be replaced when dependencies are built.

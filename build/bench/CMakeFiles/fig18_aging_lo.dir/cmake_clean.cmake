file(REMOVE_RECURSE
  "CMakeFiles/fig18_aging_lo.dir/fig18_aging_lo.cpp.o"
  "CMakeFiles/fig18_aging_lo.dir/fig18_aging_lo.cpp.o.d"
  "fig18_aging_lo"
  "fig18_aging_lo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_aging_lo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig16_raytracer_young.
# This may be replaced when dependencies are built.

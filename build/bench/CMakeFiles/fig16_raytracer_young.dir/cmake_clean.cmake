file(REMOVE_RECURSE
  "CMakeFiles/fig16_raytracer_young.dir/fig16_raytracer_young.cpp.o"
  "CMakeFiles/fig16_raytracer_young.dir/fig16_raytracer_young.cpp.o.d"
  "fig16_raytracer_young"
  "fig16_raytracer_young.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_raytracer_young.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ablation_remset.dir/ablation_remset.cpp.o"
  "CMakeFiles/ablation_remset.dir/ablation_remset.cpp.o.d"
  "ablation_remset"
  "ablation_remset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_remset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_remset.
# This may be replaced when dependencies are built.

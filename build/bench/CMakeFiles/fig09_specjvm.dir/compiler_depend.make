# Empty compiler generated dependencies file for fig09_specjvm.
# This may be replaced when dependencies are built.

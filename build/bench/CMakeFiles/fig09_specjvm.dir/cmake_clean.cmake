file(REMOVE_RECURSE
  "CMakeFiles/fig09_specjvm.dir/fig09_specjvm.cpp.o"
  "CMakeFiles/fig09_specjvm.dir/fig09_specjvm.cpp.o.d"
  "fig09_specjvm"
  "fig09_specjvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_specjvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

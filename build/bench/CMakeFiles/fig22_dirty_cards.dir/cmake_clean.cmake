file(REMOVE_RECURSE
  "CMakeFiles/fig22_dirty_cards.dir/fig22_dirty_cards.cpp.o"
  "CMakeFiles/fig22_dirty_cards.dir/fig22_dirty_cards.cpp.o.d"
  "fig22_dirty_cards"
  "fig22_dirty_cards.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_dirty_cards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig22_dirty_cards.
# This may be replaced when dependencies are built.

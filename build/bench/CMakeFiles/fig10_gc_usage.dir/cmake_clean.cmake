file(REMOVE_RECURSE
  "CMakeFiles/fig10_gc_usage.dir/fig10_gc_usage.cpp.o"
  "CMakeFiles/fig10_gc_usage.dir/fig10_gc_usage.cpp.o.d"
  "fig10_gc_usage"
  "fig10_gc_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_gc_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

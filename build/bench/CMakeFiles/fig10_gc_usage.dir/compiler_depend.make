# Empty compiler generated dependencies file for fig10_gc_usage.
# This may be replaced when dependencies are built.

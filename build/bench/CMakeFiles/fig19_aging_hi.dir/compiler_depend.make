# Empty compiler generated dependencies file for fig19_aging_hi.
# This may be replaced when dependencies are built.

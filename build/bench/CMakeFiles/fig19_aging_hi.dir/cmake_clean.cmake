file(REMOVE_RECURSE
  "CMakeFiles/fig19_aging_hi.dir/fig19_aging_hi.cpp.o"
  "CMakeFiles/fig19_aging_hi.dir/fig19_aging_hi.cpp.o.d"
  "fig19_aging_hi"
  "fig19_aging_hi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_aging_hi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ablation_pauses.dir/ablation_pauses.cpp.o"
  "CMakeFiles/ablation_pauses.dir/ablation_pauses.cpp.o.d"
  "ablation_pauses"
  "ablation_pauses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pauses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_pauses.
# This may be replaced when dependencies are built.

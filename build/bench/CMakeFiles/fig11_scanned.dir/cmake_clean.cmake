file(REMOVE_RECURSE
  "CMakeFiles/fig11_scanned.dir/fig11_scanned.cpp.o"
  "CMakeFiles/fig11_scanned.dir/fig11_scanned.cpp.o.d"
  "fig11_scanned"
  "fig11_scanned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_scanned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

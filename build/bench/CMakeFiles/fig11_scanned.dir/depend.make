# Empty dependencies file for fig11_scanned.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig14_cycle_gain.dir/fig14_cycle_gain.cpp.o"
  "CMakeFiles/fig14_cycle_gain.dir/fig14_cycle_gain.cpp.o.d"
  "fig14_cycle_gain"
  "fig14_cycle_gain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_cycle_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig14_cycle_gain.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig21_card_size.
# This may be replaced when dependencies are built.

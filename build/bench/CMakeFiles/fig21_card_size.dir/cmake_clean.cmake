file(REMOVE_RECURSE
  "CMakeFiles/fig21_card_size.dir/fig21_card_size.cpp.o"
  "CMakeFiles/fig21_card_size.dir/fig21_card_size.cpp.o.d"
  "fig21_card_size"
  "fig21_card_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_card_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

//===- tests/support/AssertTest.cpp ----------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "support/Assert.h"

namespace {

TEST(Assert, PassingAssertIsSilent) {
  GENGC_ASSERT(1 + 1 == 2, "arithmetic works");
  SUCCEED();
}

TEST(AssertDeathTest, FailingAssertAborts) {
  EXPECT_DEATH(GENGC_ASSERT(false, "expected failure"), "assertion failed");
}

TEST(AssertDeathTest, UnreachableAborts) {
  EXPECT_DEATH(GENGC_UNREACHABLE("expected unreachable"), "unreachable");
}

TEST(AssertDeathTest, MessageIncludesCondition) {
  EXPECT_DEATH(GENGC_ASSERT(2 > 3, "math broke"), "2 > 3");
}

} // namespace

//===- tests/support/RandomTest.cpp ----------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <set>

#include "support/Random.h"

using namespace gengc;

namespace {

TEST(Random, DeterministicForFixedSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Random, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  unsigned Same = 0;
  for (int I = 0; I < 100; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_EQ(Same, 0u);
}

TEST(Random, ReseedRestartsTheStream) {
  Rng A(7);
  std::vector<uint64_t> First;
  for (int I = 0; I < 10; ++I)
    First.push_back(A.next());
  A.reseed(7);
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(A.next(), First[size_t(I)]);
}

TEST(Random, NextBelowStaysInRange) {
  Rng R(123);
  for (uint64_t Bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40})
    for (int I = 0; I < 1000; ++I)
      EXPECT_LT(R.nextBelow(Bound), Bound);
}

TEST(Random, NextInRangeInclusive) {
  Rng R(5);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 10000; ++I) {
    uint64_t V = R.nextInRange(3, 7);
    EXPECT_GE(V, 3u);
    EXPECT_LE(V, 7u);
    SawLo |= V == 3;
    SawHi |= V == 7;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Random, DoubleInUnitInterval) {
  Rng R(99);
  for (int I = 0; I < 10000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Random, BoolProbabilityRoughlyHonored) {
  Rng R(321);
  int Hits = 0;
  constexpr int N = 100000;
  for (int I = 0; I < N; ++I)
    if (R.nextBool(0.25))
      ++Hits;
  EXPECT_NEAR(double(Hits) / N, 0.25, 0.02);
}

TEST(Random, NoShortCycles) {
  Rng R(17);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 10000; ++I)
    Seen.insert(R.next());
  EXPECT_EQ(Seen.size(), 10000u);
}

TEST(Random, UniformityAcrossBuckets) {
  Rng R(2718);
  constexpr int Buckets = 16;
  int Counts[Buckets] = {};
  constexpr int N = 160000;
  for (int I = 0; I < N; ++I)
    ++Counts[R.nextBelow(Buckets)];
  for (int Count : Counts)
    EXPECT_NEAR(double(Count), N / Buckets, N / Buckets * 0.1);
}

} // namespace

//===- tests/support/TimerTest.cpp -----------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <thread>

#include "support/Timer.h"

using namespace gengc;

namespace {

TEST(Timer, NowNanosIsMonotonic) {
  uint64_t A = nowNanos();
  uint64_t B = nowNanos();
  EXPECT_LE(A, B);
}

TEST(Timer, StopWatchMeasuresSleep) {
  StopWatch W;
  W.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  uint64_t Interval = W.stop();
  EXPECT_GE(Interval, 9'000'000u); // at least ~9ms
  EXPECT_EQ(W.totalNanos(), Interval);
}

TEST(Timer, StopWatchAccumulatesIntervals) {
  StopWatch W;
  W.start();
  W.stop();
  uint64_t First = W.totalNanos();
  W.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  W.stop();
  EXPECT_GT(W.totalNanos(), First);
}

TEST(Timer, ResetClearsAccumulation) {
  StopWatch W;
  W.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  W.stop();
  W.reset();
  EXPECT_EQ(W.totalNanos(), 0u);
}

TEST(Timer, MillisMatchesNanos) {
  StopWatch W;
  W.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  W.stop();
  EXPECT_DOUBLE_EQ(W.totalMillis(), double(W.totalNanos()) * 1e-6);
}

} // namespace

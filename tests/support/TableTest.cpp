//===- tests/support/TableTest.cpp -----------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstring>

#include "support/Table.h"

using namespace gengc;

namespace {

/// Renders a table into a string via a temporary file.
std::string render(const Table &T) {
  std::FILE *Tmp = std::tmpfile();
  T.print(Tmp);
  std::fseek(Tmp, 0, SEEK_SET);
  std::string Out;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), Tmp)) > 0)
    Out.append(Buf, N);
  std::fclose(Tmp);
  return Out;
}

TEST(Table, RendersHeaderAndRows) {
  Table T({"name", "value"});
  T.addRow({"alpha", "1"});
  T.addRow({"beta", "2"});
  std::string Out = render(T);
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("alpha"), std::string::npos);
  EXPECT_NE(Out.find("beta"), std::string::npos);
}

TEST(Table, ColumnsAreAligned) {
  Table T({"a", "b"});
  T.addRow({"longcellvalue", "x"});
  T.addRow({"s", "y"});
  std::string Out = render(T);
  // Both data rows must place their second column at the same offset.
  size_t RowStart1 = Out.find("longcellvalue");
  size_t RowStart2 = Out.find("s", Out.find('y')); // crude but stable
  ASSERT_NE(RowStart1, std::string::npos);
  size_t X = Out.find('x', RowStart1) - RowStart1;
  size_t LineStart2 = Out.rfind('\n', Out.find('y')) + 1;
  size_t Y = Out.find('y', LineStart2) - LineStart2;
  EXPECT_EQ(X, Y);
  (void)RowStart2;
}

TEST(Table, ShortRowsArePadded) {
  Table T({"a", "b", "c"});
  T.addRow({"only"});
  EXPECT_NE(render(T).find("only"), std::string::npos);
}

TEST(Table, SeparatorRendersDashes) {
  Table T({"h"});
  T.addSeparator();
  T.addRow({"v"});
  EXPECT_NE(render(T).find("---"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::number(3.14159, 2), "3.14");
  EXPECT_EQ(Table::number(3.0, 0), "3");
  EXPECT_EQ(Table::number(-2.5, 1), "-2.5");
}

TEST(Table, PercentFormattingShowsSign) {
  EXPECT_EQ(Table::percent(3.7), "+3.7");
  EXPECT_EQ(Table::percent(-3.7), "-3.7");
  EXPECT_EQ(Table::percent(0.0), "+0.0");
}

TEST(Table, CountFormatting) {
  EXPECT_EQ(Table::count(0), "0");
  EXPECT_EQ(Table::count(123456789), "123456789");
}

} // namespace

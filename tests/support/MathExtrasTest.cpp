//===- tests/support/MathExtrasTest.cpp ------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "support/MathExtras.h"

using namespace gengc;

namespace {

TEST(MathExtras, IsPowerOf2) {
  EXPECT_FALSE(isPowerOf2(0));
  EXPECT_TRUE(isPowerOf2(1));
  EXPECT_TRUE(isPowerOf2(2));
  EXPECT_FALSE(isPowerOf2(3));
  EXPECT_TRUE(isPowerOf2(4096));
  EXPECT_FALSE(isPowerOf2(4097));
  EXPECT_TRUE(isPowerOf2(1ull << 63));
  EXPECT_FALSE(isPowerOf2(~0ull));
}

TEST(MathExtras, AlignTo) {
  EXPECT_EQ(alignTo(0, 16), 0u);
  EXPECT_EQ(alignTo(1, 16), 16u);
  EXPECT_EQ(alignTo(16, 16), 16u);
  EXPECT_EQ(alignTo(17, 16), 32u);
  EXPECT_EQ(alignTo(4095, 4096), 4096u);
}

TEST(MathExtras, Log2Floor) {
  EXPECT_EQ(log2Floor(1), 0u);
  EXPECT_EQ(log2Floor(2), 1u);
  EXPECT_EQ(log2Floor(3), 1u);
  EXPECT_EQ(log2Floor(4), 2u);
  EXPECT_EQ(log2Floor(4096), 12u);
  EXPECT_EQ(log2Floor(1ull << 63), 63u);
}

TEST(MathExtras, Log2Ceil) {
  EXPECT_EQ(log2Ceil(1), 0u);
  EXPECT_EQ(log2Ceil(2), 1u);
  EXPECT_EQ(log2Ceil(3), 2u);
  EXPECT_EQ(log2Ceil(4), 2u);
  EXPECT_EQ(log2Ceil(5), 3u);
}

TEST(MathExtras, DivideCeil) {
  EXPECT_EQ(divideCeil(0, 4), 0u);
  EXPECT_EQ(divideCeil(1, 4), 1u);
  EXPECT_EQ(divideCeil(4, 4), 1u);
  EXPECT_EQ(divideCeil(5, 4), 2u);
  EXPECT_EQ(divideCeil(65536, 48), 1366u);
}

/// Property: alignTo always yields a multiple of the alignment, and never
/// moves a value by a full alignment or more.
class AlignToProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t>> {};

TEST_P(AlignToProperty, AlignedAndMinimal) {
  auto [Value, Align] = GetParam();
  uint64_t Aligned = alignTo(Value, Align);
  EXPECT_EQ(Aligned % Align, 0u);
  EXPECT_GE(Aligned, Value);
  EXPECT_LT(Aligned - Value, Align);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AlignToProperty,
    ::testing::Combine(::testing::Values(0, 1, 7, 15, 16, 17, 100, 65535,
                                         65536, 1000000),
                       ::testing::Values(1, 2, 16, 64, 4096)));

} // namespace

//===- tests/runtime/RootsTest.cpp -----------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <thread>

#include "runtime/Roots.h"

using namespace gengc;

namespace {

struct RootsTest : ::testing::Test {
  RootsTest() : H(HeapConfig{.HeapBytes = 2 << 20}), Roots(H, State) {
    Chain = H.popFreeChain(0);
  }

  ObjectRef freshCell() {
    ObjectRef Ref = Chain.Head;
    Chain.Head = H.chainNext(Ref);
    --Chain.Count;
    return Ref;
  }

  Heap H;
  CollectorState State;
  GlobalRoots Roots;
  Heap::CellChain Chain;
};

TEST_F(RootsTest, AddAndGet) {
  ObjectRef A = freshCell();
  size_t Index = Roots.addRoot(A);
  EXPECT_EQ(Roots.get(Index), A);
  EXPECT_EQ(Roots.size(), 1u);
}

TEST_F(RootsTest, DefaultInitialIsNull) {
  size_t Index = Roots.addRoot();
  EXPECT_EQ(Roots.get(Index), NullRef);
}

TEST_F(RootsTest, SetOverwrites) {
  size_t Index = Roots.addRoot();
  ObjectRef A = freshCell();
  Roots.set(Index, A);
  EXPECT_EQ(Roots.get(Index), A);
  Roots.set(Index, NullRef);
  EXPECT_EQ(Roots.get(Index), NullRef);
}

TEST_F(RootsTest, MarkAllShadesClearColoredRoots) {
  ObjectRef A = freshCell(), B = freshCell(), C = freshCell();
  H.storeColor(A, State.clearColor());
  H.storeColor(B, Color::Black);
  H.storeColor(C, State.allocationColor());
  Roots.addRoot(A);
  Roots.addRoot(B);
  Roots.addRoot(C);
  Roots.addRoot(NullRef);
  GrayCounters Counters;
  Roots.markAll(Counters);
  EXPECT_EQ(H.loadColor(A), Color::Gray);
  EXPECT_EQ(H.loadColor(B), Color::Black);
  EXPECT_EQ(H.loadColor(C), State.allocationColor());
  EXPECT_EQ(Counters.FromClear.load(), 1u);
}

TEST_F(RootsTest, SetDuringMarkPhaseShadesValue) {
  ObjectRef A = freshCell();
  H.storeColor(A, State.clearColor());
  size_t Index = Roots.addRoot();
  State.Phase.store(GcPhase::Mark);
  Roots.set(Index, A);
  State.Phase.store(GcPhase::Idle);
  EXPECT_EQ(H.loadColor(A), Color::Gray)
      << "a root store during marking must protect the value";
}

TEST_F(RootsTest, SetDuringMarkShadesAllocationColoredToo) {
  ObjectRef A = freshCell();
  H.storeColor(A, State.allocationColor());
  size_t Index = Roots.addRoot();
  State.Phase.store(GcPhase::Clear);
  Roots.set(Index, A);
  State.Phase.store(GcPhase::Idle);
  EXPECT_EQ(H.loadColor(A), Color::Gray);
}

TEST_F(RootsTest, SetDuringSweepOrIdleDoesNotShade) {
  ObjectRef A = freshCell();
  H.storeColor(A, State.clearColor());
  size_t Index = Roots.addRoot();
  Roots.set(Index, A); // idle
  EXPECT_EQ(H.loadColor(A), State.clearColor());
  State.Phase.store(GcPhase::Sweep);
  Roots.set(Index, A);
  State.Phase.store(GcPhase::Idle);
  EXPECT_EQ(H.loadColor(A), State.clearColor());
}

TEST_F(RootsTest, ConcurrentAddsAreSafe) {
  constexpr unsigned Threads = 4, PerThread = 500;
  std::vector<std::thread> Workers;
  for (unsigned W = 0; W < Threads; ++W)
    Workers.emplace_back([&] {
      for (unsigned I = 0; I < PerThread; ++I)
        Roots.addRoot(NullRef);
    });
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(Roots.size(), Threads * PerThread);
}

} // namespace

//===- tests/runtime/MutatorTest.cpp ---------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "runtime/Mutator.h"
#include "runtime/MutatorRegistry.h"

using namespace gengc;

namespace {

struct MutatorTest : ::testing::Test {
  MutatorTest()
      : H(HeapConfig{.HeapBytes = 8 << 20}), Registry(State) {}

  Heap H;
  CollectorState State;
  MutatorRegistry Registry;
};

TEST_F(MutatorTest, RegistersAndDeregisters) {
  EXPECT_EQ(Registry.size(), 0u);
  {
    Mutator M(H, State, Registry);
    EXPECT_EQ(Registry.size(), 1u);
    Mutator M2(H, State, Registry);
    EXPECT_EQ(Registry.size(), 2u);
  }
  EXPECT_EQ(Registry.size(), 0u);
}

TEST_F(MutatorTest, AllocateInitializesObject) {
  Mutator M(H, State, Registry);
  ObjectRef Ref = M.allocate(2, 16, 5);
  EXPECT_NE(Ref, NullRef);
  EXPECT_EQ(objectRefSlots(H, Ref), 2u);
  EXPECT_EQ(objectTag(H, Ref), 5);
  EXPECT_EQ(M.readRef(Ref, 0), NullRef);
  EXPECT_EQ(H.loadColor(Ref), State.allocationColor());
}

TEST_F(MutatorTest, AllocationsAreDistinct) {
  Mutator M(H, State, Registry);
  std::set<ObjectRef> Seen;
  for (int I = 0; I < 10000; ++I)
    EXPECT_TRUE(Seen.insert(M.allocate(1, 24)).second);
}

TEST_F(MutatorTest, AllocationCountersTrack) {
  Mutator M(H, State, Registry);
  for (int I = 0; I < 100; ++I)
    M.allocate(1, 20);
  EXPECT_EQ(M.allocatedObjects(), 100u);
  EXPECT_EQ(M.allocatedBytes(), 100u * objectBytesFor(1, 20));
}

TEST_F(MutatorTest, LargeAllocationGoesToRuns) {
  Mutator M(H, State, Registry);
  ObjectRef Ref = M.allocate(4, 100 << 10);
  EXPECT_EQ(H.block(H.blockIndexOf(Ref)).State, BlockState::LargeStart);
  EXPECT_EQ(objectRefSlots(H, Ref), 4u);
}

TEST_F(MutatorTest, RootStackPushPopSetGet) {
  Mutator M(H, State, Registry);
  ObjectRef A = M.allocate(0, 8), B = M.allocate(0, 8);
  size_t SlotA = M.pushRoot(A);
  size_t SlotB = M.pushRoot(B);
  EXPECT_EQ(M.numRoots(), 2u);
  EXPECT_EQ(M.root(SlotA), A);
  EXPECT_EQ(M.root(SlotB), B);
  M.setRoot(SlotA, B);
  EXPECT_EQ(M.root(SlotA), B);
  M.popRoots(2);
  EXPECT_EQ(M.numRoots(), 0u);
}

TEST_F(MutatorTest, WriteRefStoresValue) {
  Mutator M(H, State, Registry);
  ObjectRef A = M.allocate(2, 8), B = M.allocate(0, 8);
  M.writeRef(A, 0, B);
  EXPECT_EQ(M.readRef(A, 0), B);
  M.writeRef(A, 0, NullRef);
  EXPECT_EQ(M.readRef(A, 0), NullRef);
}

TEST_F(MutatorTest, CooperateFollowsCollectorStatus) {
  Mutator M(H, State, Registry);
  EXPECT_EQ(M.status(), HandshakeStatus::Async);
  State.StatusC.store(HandshakeStatus::Sync1);
  EXPECT_EQ(M.status(), HandshakeStatus::Async) << "no response before cooperate";
  M.cooperate();
  EXPECT_EQ(M.status(), HandshakeStatus::Sync1);
  State.StatusC.store(HandshakeStatus::Sync2);
  M.cooperate();
  EXPECT_EQ(M.status(), HandshakeStatus::Sync2);
  State.StatusC.store(HandshakeStatus::Async);
  M.cooperate();
  EXPECT_EQ(M.status(), HandshakeStatus::Async);
}

TEST_F(MutatorTest, RootsAreShadedOnThirdHandshakeResponse) {
  Mutator M(H, State, Registry);
  // Walk the mutator to sync2.
  State.StatusC.store(HandshakeStatus::Sync1);
  M.cooperate();
  State.StatusC.store(HandshakeStatus::Sync2);
  M.cooperate();

  ObjectRef Root = M.allocate(0, 8);
  // Make the root clear-colored, as a pre-cycle object would be after the
  // toggle.
  H.storeColor(Root, State.clearColor());
  M.pushRoot(Root);

  State.StatusC.store(HandshakeStatus::Async);
  M.cooperate(); // sync2 -> async response shades roots
  EXPECT_EQ(H.loadColor(Root), Color::Gray);
  M.popRoots(1);
}

TEST_F(MutatorTest, NewMutatorAdoptsCurrentStatus) {
  State.StatusC.store(HandshakeStatus::Sync2);
  Mutator M(H, State, Registry);
  EXPECT_EQ(M.status(), HandshakeStatus::Sync2);
}

TEST_F(MutatorTest, AgingBarrierSetsAgeOne) {
  State.Barrier.store(BarrierKind::Aging);
  Mutator M(H, State, Registry);
  ObjectRef Ref = M.allocate(1, 8);
  EXPECT_EQ(H.ages().ageOf(Ref), 1);
}

TEST_F(MutatorTest, SimpleBarrierLeavesAgeZero) {
  State.Barrier.store(BarrierKind::Simple);
  Mutator M(H, State, Registry);
  ObjectRef Ref = M.allocate(1, 8);
  EXPECT_EQ(H.ages().ageOf(Ref), 0);
}

TEST_F(MutatorTest, DestructorReturnsCachedCells) {
  uint64_t UsedBefore = H.usedBytes();
  uint64_t CellBytes = sizeClassBytes(sizeClassFor(objectBytesFor(1, 24)));
  {
    Mutator M(H, State, Registry);
    M.allocate(1, 24); // pulls a whole chain into the cache
    EXPECT_GT(H.usedBytes(), UsedBefore + CellBytes);
  }
  // The cache chain returns to the heap; only the one allocated cell stays
  // out (it would be reclaimed by a sweep, not by the mutator exit).
  EXPECT_EQ(H.usedBytes(), UsedBefore + CellBytes);
}

TEST_F(MutatorTest, HelpIfBlockedRespondsForParkedThread) {
  Mutator M(H, State, Registry);
  M.enterBlocked();
  State.StatusC.store(HandshakeStatus::Sync1);
  EXPECT_EQ(M.status(), HandshakeStatus::Async);
  M.helpIfBlocked();
  EXPECT_EQ(M.status(), HandshakeStatus::Sync1);
  M.exitBlocked();
}

TEST_F(MutatorTest, ExitBlockedCatchesUp) {
  Mutator M(H, State, Registry);
  M.enterBlocked();
  State.StatusC.store(HandshakeStatus::Sync1);
  M.exitBlocked();
  EXPECT_EQ(M.status(), HandshakeStatus::Sync1);
}

} // namespace

//===- tests/runtime/WriteBarrierTest.cpp ----------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
//
// Unit tests for the Figure 1 / Figure 4 barrier variants, exercising every
// (status, phase) combination the pseudo-code distinguishes.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "runtime/Mutator.h"
#include "runtime/MutatorRegistry.h"
#include "runtime/WriteBarrier.h"

using namespace gengc;

namespace {

struct WriteBarrierTest : ::testing::Test {
  WriteBarrierTest()
      : H(HeapConfig{.HeapBytes = 4 << 20}), Registry(State),
        M(H, State, Registry) {
    A = M.allocate(2, 8);
    B = M.allocate(2, 8);
    C = M.allocate(2, 8);
  }

  /// Walks the registered mutator to \p Target status.
  void advanceTo(HandshakeStatus Target) {
    for (HandshakeStatus S :
         {HandshakeStatus::Sync1, HandshakeStatus::Sync2,
          HandshakeStatus::Async}) {
      State.StatusC.store(S);
      M.cooperate();
      if (S == Target)
        return;
    }
  }

  size_t cardOf(ObjectRef X, uint32_t Slot) {
    return H.cards().cardIndexFor(refSlotOffset(X, Slot));
  }

  Heap H;
  CollectorState State;
  MutatorRegistry Registry;
  Mutator M;
  ObjectRef A, B, C;
};

//===----------------------------------------------------------------------===
// MarkGray primitives.
//===----------------------------------------------------------------------===

TEST_F(WriteBarrierTest, TryMarkGrayOnlyFromMatchingColor) {
  H.storeColor(A, Color::White);
  EXPECT_FALSE(tryMarkGray(H, A, Color::Yellow));
  EXPECT_EQ(H.loadColor(A), Color::White);
  EXPECT_TRUE(tryMarkGray(H, A, Color::White));
  EXPECT_EQ(H.loadColor(A), Color::Gray);
  EXPECT_FALSE(tryMarkGray(H, A, Color::White)) << "already gray";
}

TEST_F(WriteBarrierTest, ShadeGrayEnqueues) {
  H.storeColor(A, State.clearColor());
  EXPECT_TRUE(shadeGray(H, State, A, State.clearColor()));
  std::vector<ObjectRef> Drained;
  EXPECT_TRUE(State.Grays.drainTo(Drained));
  ASSERT_EQ(Drained.size(), 1u);
  EXPECT_EQ(Drained[0], A);
}

TEST_F(WriteBarrierTest, MarkGraySimpleShadesClearColored) {
  GrayCounters Counters;
  H.storeColor(A, State.clearColor());
  markGraySimple(H, State, HandshakeStatus::Async, A, Counters);
  EXPECT_EQ(H.loadColor(A), Color::Gray);
  EXPECT_EQ(Counters.FromClear.load(), 1u);
  EXPECT_EQ(Counters.FromClearBytes.load(), H.storageBytesOf(A));
}

TEST_F(WriteBarrierTest, MarkGraySimpleYellowExceptionDuringSync) {
  GrayCounters Counters;
  H.storeColor(A, State.allocationColor());
  // In async: allocation-colored objects are NOT shaded.
  markGraySimple(H, State, HandshakeStatus::Async, A, Counters);
  EXPECT_EQ(H.loadColor(A), State.allocationColor());
  // In sync1/sync2: they are (the Section 7.1 exception).
  markGraySimple(H, State, HandshakeStatus::Sync1, A, Counters);
  EXPECT_EQ(H.loadColor(A), Color::Gray);
  H.storeColor(B, State.allocationColor());
  markGraySimple(H, State, HandshakeStatus::Sync2, B, Counters);
  EXPECT_EQ(H.loadColor(B), Color::Gray);
  // The exception shades do not count as young survivors from clear.
  EXPECT_EQ(Counters.FromClear.load(), 0u);
}

TEST_F(WriteBarrierTest, MarkGrayClearOnlyIgnoresAllocationColor) {
  GrayCounters Counters;
  H.storeColor(A, State.allocationColor());
  markGrayClearOnly(H, State, A, Counters);
  EXPECT_EQ(H.loadColor(A), State.allocationColor());
  H.storeColor(A, State.clearColor());
  markGrayClearOnly(H, State, A, Counters);
  EXPECT_EQ(H.loadColor(A), Color::Gray);
}

TEST_F(WriteBarrierTest, MarkGrayNullIsNoop) {
  GrayCounters Counters;
  markGraySimple(H, State, HandshakeStatus::Sync1, NullRef, Counters);
  markGrayClearOnly(H, State, NullRef, Counters);
  SUCCEED();
}

//===----------------------------------------------------------------------===
// Figure 1 Update (simple barrier).
//===----------------------------------------------------------------------===

TEST_F(WriteBarrierTest, SimpleAsyncIdleMarksCardOnly) {
  State.Barrier.store(BarrierKind::Simple);
  H.storeColor(B, State.clearColor());
  M.writeRef(A, 0, B);
  EXPECT_EQ(M.readRef(A, 0), B);
  EXPECT_EQ(H.loadColor(B), State.clearColor()) << "no shading when idle";
  EXPECT_TRUE(H.cards().isDirty(cardOf(A, 0)));
}

TEST_F(WriteBarrierTest, SimpleAsyncTracingShadesOldValueAndMarksCard) {
  State.Barrier.store(BarrierKind::Simple);
  M.writeRef(A, 0, B);
  H.cards().clearAll();
  H.storeColor(B, State.clearColor());
  State.Phase.store(GcPhase::Trace);
  M.writeRef(A, 0, C);
  State.Phase.store(GcPhase::Idle);
  EXPECT_EQ(H.loadColor(B), Color::Gray) << "overwritten value shaded";
  EXPECT_NE(H.loadColor(C), Color::Gray) << "new value not shaded in async";
  EXPECT_TRUE(H.cards().isDirty(cardOf(A, 0)));
}

TEST_F(WriteBarrierTest, SimpleSyncShadesBothValuesNoCard) {
  State.Barrier.store(BarrierKind::Simple);
  M.writeRef(A, 0, B); // old value in place
  H.cards().clearAll();
  H.storeColor(B, State.clearColor());
  H.storeColor(C, State.clearColor());
  advanceTo(HandshakeStatus::Sync1);
  M.writeRef(A, 0, C);
  EXPECT_EQ(H.loadColor(B), Color::Gray);
  EXPECT_EQ(H.loadColor(C), Color::Gray);
  EXPECT_FALSE(H.cards().isDirty(cardOf(A, 0)))
      << "no card marking during sync1/sync2 (Section 7.1)";
}

TEST_F(WriteBarrierTest, SimpleSweepPhaseMarksCardOnly) {
  State.Barrier.store(BarrierKind::Simple);
  H.storeColor(B, State.clearColor());
  State.Phase.store(GcPhase::Sweep);
  M.writeRef(A, 1, B);
  State.Phase.store(GcPhase::Idle);
  EXPECT_EQ(H.loadColor(B), State.clearColor());
  EXPECT_TRUE(H.cards().isDirty(cardOf(A, 1)));
}

//===----------------------------------------------------------------------===
// Figure 4 Update (aging barrier).
//===----------------------------------------------------------------------===

TEST_F(WriteBarrierTest, AgingAlwaysMarksCardEvenInSync) {
  State.Barrier.store(BarrierKind::Aging);
  advanceTo(HandshakeStatus::Sync1);
  M.writeRef(A, 0, B);
  EXPECT_TRUE(H.cards().isDirty(cardOf(A, 0)))
      << "aging marks cards in every state (Figure 4)";
}

TEST_F(WriteBarrierTest, AgingSyncShadesClearOnlyNoYellowException) {
  State.Barrier.store(BarrierKind::Aging);
  H.storeColor(C, State.allocationColor());
  advanceTo(HandshakeStatus::Sync2);
  M.writeRef(A, 0, C);
  EXPECT_EQ(H.loadColor(C), State.allocationColor())
      << "Figure 4 MarkGray has no allocation-color exception";
}

TEST_F(WriteBarrierTest, AgingTracingShadesOldValue) {
  State.Barrier.store(BarrierKind::Aging);
  M.writeRef(A, 0, B);
  H.storeColor(B, State.clearColor());
  State.Phase.store(GcPhase::Trace);
  M.writeRef(A, 0, C);
  State.Phase.store(GcPhase::Idle);
  EXPECT_EQ(H.loadColor(B), Color::Gray);
}

//===----------------------------------------------------------------------===
// Non-generational barrier.
//===----------------------------------------------------------------------===

TEST_F(WriteBarrierTest, NonGenNeverMarksCards) {
  State.Barrier.store(BarrierKind::NonGenerational);
  advanceTo(HandshakeStatus::Sync1);
  M.writeRef(A, 0, B);
  advanceTo(HandshakeStatus::Async);
  State.Phase.store(GcPhase::Trace);
  M.writeRef(A, 0, C);
  State.Phase.store(GcPhase::Idle);
  M.writeRef(A, 1, B);
  EXPECT_EQ(H.cards().countDirty(), 0u);
}

TEST_F(WriteBarrierTest, NonGenSyncShadesBothValues) {
  State.Barrier.store(BarrierKind::NonGenerational);
  M.writeRef(A, 0, B);
  H.storeColor(B, State.clearColor());
  H.storeColor(C, State.clearColor());
  advanceTo(HandshakeStatus::Sync2);
  M.writeRef(A, 0, C);
  EXPECT_EQ(H.loadColor(B), Color::Gray);
  EXPECT_EQ(H.loadColor(C), Color::Gray);
}

//===----------------------------------------------------------------------===
// The in-flight shade window.
//===----------------------------------------------------------------------===

TEST_F(WriteBarrierTest, InFlightCounterReturnsToZero) {
  H.storeColor(A, State.clearColor());
  shadeGray(H, State, A, State.clearColor());
  EXPECT_EQ(State.InFlightShades.load(), 0);
}

} // namespace

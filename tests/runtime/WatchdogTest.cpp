//===- tests/runtime/WatchdogTest.cpp --------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
//
// The handshake/stall watchdog: a mutator that stops cooperating past the
// configured deadline produces a stall report (with per-mutator
// diagnostics) through the configured policy, whole-cycle deadlines fire
// the same machinery, and the Abort policy dies with a pinned message.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/Runtime.h"

using namespace gengc;

namespace {

RuntimeConfig manualConfig() {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 8 << 20;
  Config.Choice = CollectorChoice::Generational;
  Config.Collector.Trigger.YoungBytes = 1ull << 40;
  Config.Collector.Trigger.InitialSoftBytes = 8 << 20;
  Config.Collector.Trigger.FullFraction = 100.0;
  return Config;
}

TEST(Watchdog, StatusNames) {
  EXPECT_STREQ(handshakeStatusName(HandshakeStatus::Async), "async");
  EXPECT_STREQ(handshakeStatusName(HandshakeStatus::Sync1), "sync1");
  EXPECT_STREQ(handshakeStatusName(HandshakeStatus::Sync2), "sync2");
}

TEST(Watchdog, ValidateRejectsCallbackWithoutOnStall) {
  RuntimeConfig Config = manualConfig();
  Config.Collector.Watchdog.Policy = WatchdogPolicy::Callback;
  EXPECT_NE(Config.validate().find("OnStall"), std::string::npos);
  Config.Collector.Watchdog.OnStall = [](const StallReport &) {};
  EXPECT_TRUE(Config.validate().empty());
}

TEST(Watchdog, CallbackFiresOnUnresponsiveMutator) {
  RuntimeConfig Config = manualConfig();
  std::atomic<unsigned> Fires{0};
  std::atomic<uint64_t> ReportedMutators{0};
  std::atomic<bool> SawHandshakeWhat{false};
  Config.Collector.Watchdog.DeadlineNanos = 2'000'000; // 2 ms
  Config.Collector.Watchdog.Policy = WatchdogPolicy::Callback;
  Config.Collector.Watchdog.OnStall = [&](const StallReport &Report) {
    ++Fires;
    ReportedMutators = Report.Mutators.size();
    if (std::string(Report.What) == "handshake" &&
        Report.WaitedNanos >= 2'000'000)
      SawHandshakeWhat = true;
  };
  Runtime RT(Config);

  std::atomic<bool> Ready{false}, CycleDone{false};
  std::thread Slacker([&] {
    auto M = RT.attachMutator();
    M->allocate(1, 24);
    Ready = true;
    // Miss the handshake deadline once, then cooperate until the cycle
    // completes so the collector is never wedged for real.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    while (!CycleDone.load()) {
      M->cooperate();
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    M->cooperate();
  });

  while (!Ready.load())
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  RT.collector().collectSync(CycleRequest::Full);
  CycleDone = true;
  Slacker.join();

  EXPECT_GE(Fires.load(), 1u);
  EXPECT_GE(RT.collector().watchdogFires(), 1u);
  EXPECT_GE(ReportedMutators.load(), 1u) << "the stalled mutator is listed";
  EXPECT_TRUE(SawHandshakeWhat.load());
}

TEST(Watchdog, CycleDeadlineFiresUnderLogPolicy) {
  RuntimeConfig Config = manualConfig();
  // Any real cycle takes longer than 1 ns; the report goes to stderr.
  Config.Collector.Watchdog.CycleDeadlineNanos = 1;
  Runtime RT(Config);
  auto M = RT.attachMutator();
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  EXPECT_GE(RT.collector().watchdogFires(), 1u);
}

TEST(Watchdog, FiresAreCountedPerExpiry) {
  RuntimeConfig Config = manualConfig();
  Config.Collector.Watchdog.CycleDeadlineNanos = 1;
  Runtime RT(Config);
  auto M = RT.attachMutator();
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  EXPECT_GE(RT.collector().watchdogFires(), 2u);
}

TEST(WatchdogDeathTest, AbortPolicyDies) {
  EXPECT_DEATH(
      {
        RuntimeConfig Config = manualConfig();
        Config.Collector.Watchdog.CycleDeadlineNanos = 1;
        Config.Collector.Watchdog.Policy = WatchdogPolicy::Abort;
        Runtime RT(Config);
        RT.collector().collectSync(CycleRequest::Full);
      },
      "watchdog deadline expired");
}

} // namespace

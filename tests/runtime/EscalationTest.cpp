//===- tests/runtime/EscalationTest.cpp ------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
//
// The WatchdogPolicy::Escalate ladder, end to end and without death tests:
// a wedged mutator drives re-fire -> force-adopt -> cycle abort -> the
// cooperating-STW degraded fallback -> recovery back to on-the-fly
// collection, with the heap verifier on at every phase boundary and the
// surviving object graph checksummed against a fault-free run of the same
// workload.  Also covers the capped re-fire schedule's escalation counter
// and per-mutator diagnostics, configuration validation, and the
// fault-injected (TraceAbort) unwind with its forced-Full successor.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/Runtime.h"
#include "runtime/ObjectModel.h"
#include "support/FaultInjector.h"

using namespace gengc;

namespace {

RuntimeConfig manualConfig() {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 8 << 20;
  Config.Choice = CollectorChoice::Generational;
  Config.Collector.Trigger.YoungBytes = 1ull << 40;
  Config.Collector.Trigger.InitialSoftBytes = 8 << 20;
  Config.Collector.Trigger.FullFraction = 100.0;
  Config.Collector.VerifyHeap = true;
  return Config;
}

/// Builds NODES list nodes tagged 1..NODES, keeping every one reachable
/// from the mutator's root stack, cooperating as it goes; afterwards walks
/// the list and folds (position, tag) into a checksum.  The structure is
/// identical in every run, so the checksum is too — unless the collector
/// freed or clobbered a live node.
struct ListBuilder {
  static constexpr int Nodes = 2000;

  std::atomic<bool> Ready{false};
  std::atomic<bool> Done{false};
  std::atomic<uint64_t> Checksum{0};

  void run(Runtime &RT) {
    auto M = RT.attachMutator();
    size_t Slot = M->pushRoot(NullRef);
    int Built = 0;
    while (!Done.load(std::memory_order_acquire)) {
      if (Built < Nodes) {
        ObjectRef Node =
            M->allocate(/*RefSlots=*/1, /*DataBytes=*/16,
                        /*Tag=*/uint16_t(++Built));
        M->writeRef(Node, 0, M->root(Slot));
        M->setRoot(Slot, Node);
      }
      if (Built == Nodes)
        Ready.store(true, std::memory_order_release);
      M->cooperate();
      if (Built >= Nodes)
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    uint64_t Sum = 0;
    uint64_t Position = 0;
    for (ObjectRef Node = M->root(Slot); Node != NullRef;
         Node = M->readRef(Node, 0))
      Sum += (++Position) * 1000003u + objectTag(RT.heap(), Node);
    Checksum.store(Sum, std::memory_order_release);
    M->popRoots();
  }
};

/// Runs the list workload against \p Config, driving \p Cycles synchronous
/// full collections (with an optional wedge thread that sleeps through its
/// handshakes once), and returns the surviving-list checksum.
uint64_t runListWorkload(const RuntimeConfig &Config, int Cycles,
                         bool Wedge) {
  Runtime RT(Config);
  ListBuilder Builder;
  std::thread BuilderThread([&] { Builder.run(RT); });

  std::atomic<bool> WedgeDone{false};
  std::thread WedgeThread;
  if (Wedge)
    WedgeThread = std::thread([&] {
      auto M = RT.attachMutator();
      M->allocate(1, 24);
      // Miss every handshake for 30 ms — long enough to blow through the
      // escalation threshold several times over — then cooperate until
      // the driver is finished, so recovery has a responsive thread to
      // observe.
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      while (!WedgeDone.load()) {
        M->cooperate();
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    });

  while (!Builder.Ready.load())
    std::this_thread::sleep_for(std::chrono::microseconds(50));

  for (int I = 0; I < Cycles; ++I)
    RT.collector().collectSync(CycleRequest::Full);

  if (Wedge) {
    // Ride the ladder all the way back: keep collecting until a cycle
    // completes that neither aborted, ran degraded, nor forced anyone.
    for (int I = 0; I < 300; ++I) {
      RT.collector().collectSync(CycleRequest::Full);
      GcRunStats Stats = RT.collector().statsSnapshot();
      const CycleStats &Last = Stats.Cycles.back();
      if (!Last.Aborted && !Last.Degraded && Last.ForcedMutators == 0)
        break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  WedgeDone = true;
  if (WedgeThread.joinable())
    WedgeThread.join();
  Builder.Done = true;
  BuilderThread.join();
  return Builder.Checksum.load();
}

TEST(Escalation, ValidationRejectsEscalateWithoutDeadline) {
  RuntimeConfig Config = manualConfig();
  Config.Collector.Watchdog.Policy = WatchdogPolicy::Escalate;
  Config.Collector.Watchdog.DeadlineNanos = 0;
  EXPECT_NE(Config.validate().find("DeadlineNanos"), std::string::npos);

  Config.Collector.Watchdog.DeadlineNanos = 1'000'000;
  Config.Collector.Watchdog.EscalateAfterFires = 0;
  EXPECT_NE(Config.validate().find("EscalateAfterFires"), std::string::npos);

  Config.Collector.Watchdog.EscalateAfterFires = 3;
  EXPECT_TRUE(Config.validate().empty());
}

TEST(Escalation, RefireCountsUpAndReportsDiagnostics) {
  // Under Callback (no escalation), a wait that stays stalled re-fires on
  // the capped-exponential schedule: the reports carry 1-based escalation
  // indices, the posted-status name, and per-mutator time-since-response.
  RuntimeConfig Config = manualConfig();
  Config.Collector.Watchdog.DeadlineNanos = 1'000'000; // 1 ms
  Config.Collector.Watchdog.RefireCapNanos = 2'000'000;
  Config.Collector.Watchdog.Policy = WatchdogPolicy::Callback;
  std::atomic<uint64_t> MaxEscalation{0};
  std::atomic<bool> SawPostedName{false};
  std::atomic<bool> SawSinceResponse{false};
  Config.Collector.Watchdog.OnStall = [&](const StallReport &Report) {
    uint64_t Seen = MaxEscalation.load();
    while (Report.Escalation > Seen &&
           !MaxEscalation.compare_exchange_weak(Seen, Report.Escalation)) {
    }
    if (Report.PostedName != nullptr && Report.PostedName[0] != '\0')
      SawPostedName = true;
    for (const MutatorDiag &D : Report.Mutators)
      if (D.SinceResponseNanos != 0)
        SawSinceResponse = true;
  };
  Runtime RT(Config);

  std::atomic<bool> Ready{false}, CycleDone{false};
  std::thread Slacker([&] {
    auto M = RT.attachMutator();
    M->allocate(1, 24);
    Ready = true;
    // Stay wedged until the watchdog has demonstrably re-fired (not for a
    // fixed duration: sanitizer builds slow the collector enough that a
    // wall-clock wedge can end before the handshake wait even starts).
    while (MaxEscalation.load() < 2 && !CycleDone.load())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    while (!CycleDone.load()) {
      M->cooperate();
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    M->cooperate();
  });

  while (!Ready.load())
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  RT.collector().collectSync(CycleRequest::Full);
  CycleDone = true;
  Slacker.join();

  EXPECT_GE(MaxEscalation.load(), 2u)
      << "a 20 ms wedge against a 1 ms deadline re-fires";
  EXPECT_TRUE(SawPostedName.load());
  EXPECT_TRUE(SawSinceResponse.load());
}

TEST(Escalation, AbortDegradeRecoverKeepsChecksum) {
  RuntimeConfig Config = manualConfig();
  Config.Collector.Watchdog.DeadlineNanos = 2'000'000; // 2 ms
  Config.Collector.Watchdog.EscalateAfterFires = 2;
  Config.Collector.Watchdog.Policy = WatchdogPolicy::Escalate;
  Config.Collector.Watchdog.OnStall = [](const StallReport &) {};

  uint64_t FaultFree = runListWorkload(Config, /*Cycles=*/3, /*Wedge=*/false);
  ASSERT_NE(FaultFree, 0u);

  RuntimeConfig Wedged = Config;
  std::atomic<unsigned> Stalls{0};
  Wedged.Collector.Watchdog.OnStall = [&](const StallReport &) { ++Stalls; };
  Runtime RT(Wedged);
  ListBuilder Builder;
  std::thread BuilderThread([&] { Builder.run(RT); });

  std::atomic<bool> WedgeDone{false}, WedgeRelease{false};
  std::thread WedgeThread([&] {
    auto M = RT.attachMutator();
    M->allocate(1, 24);
    // Wedged until the driver has seen the abort land — a fixed sleep is
    // not enough under sanitizer slowdown — then responsive so recovery
    // has something to observe.
    while (!WedgeRelease.load() && !WedgeDone.load())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    while (!WedgeDone.load()) {
      M->cooperate();
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });

  while (!Builder.Ready.load())
    std::this_thread::sleep_for(std::chrono::microseconds(50));

  // First cycle against the wedge: the Sync1 wait escalates, the cycle
  // aborts, and the collector enters degraded mode.
  RT.collector().collectSync(CycleRequest::Full);
  WedgeRelease = true;
  // Keep collecting until recovery: a degraded cycle with zero forced
  // mutators flips the collector back to on-the-fly, and the next cycle
  // runs normally.
  bool Recovered = false;
  for (int I = 0; I < 300 && !Recovered; ++I) {
    RT.collector().collectSync(CycleRequest::Full);
    GcRunStats Stats = RT.collector().statsSnapshot();
    const CycleStats &Last = Stats.Cycles.back();
    Recovered = !Last.Aborted && !Last.Degraded && Last.ForcedMutators == 0;
    if (!Recovered)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  WedgeDone = true;
  WedgeThread.join();
  Builder.Done = true;
  BuilderThread.join();

  EXPECT_TRUE(Recovered) << "the ladder must come back to on-the-fly mode";
  EXPECT_GE(Stalls.load(), 1u);

  GcRunStats Stats = RT.collector().statsSnapshot();
  uint64_t Aborted = 0, Degraded = 0, Forced = 0;
  for (const CycleStats &C : Stats.Cycles) {
    Aborted += C.Aborted ? 1 : 0;
    Degraded += C.Degraded ? 1 : 0;
    Forced += C.ForcedMutators;
  }
  EXPECT_GE(Aborted, 1u) << "the wedge must abort at least one cycle";
  EXPECT_GE(Degraded, 1u) << "an escalated abort enters degraded mode";
  EXPECT_GE(Forced, 1u) << "the wedged mutator was force-completed";
  EXPECT_FALSE(Stats.Cycles.back().Aborted);
  EXPECT_FALSE(Stats.Cycles.back().Degraded);

  MetricsSnapshot Metrics = RT.metrics();
  EXPECT_EQ(Metrics.CycleAborts, Aborted);
  EXPECT_EQ(Metrics.DegradedCycles, Degraded);
  EXPECT_EQ(Metrics.ForcedMutators, Forced);

  EXPECT_EQ(Builder.Checksum.load(), FaultFree)
      << "abort + degraded + recovery must not lose or clobber a live node";
}

TEST(Escalation, TraceAbortFaultUnwindsAndForcesFull) {
  // A fault-injected abort (no watchdog, no wedge): the cycle unwinds
  // cleanly, the synchronous waiter is still released, the successor cycle
  // is forced Full, and the list survives bit-exact.
  RuntimeConfig Config = manualConfig();
  uint64_t FaultFree = runListWorkload(Config, /*Cycles=*/3, /*Wedge=*/false);

  FaultInjector::arm(FaultSite::TraceAbort,
                     FaultConfig{.Probability = 1.0, .MaxHits = 1});
  Runtime RT(Config);
  ListBuilder Builder;
  std::thread BuilderThread([&] { Builder.run(RT); });
  while (!Builder.Ready.load())
    std::this_thread::sleep_for(std::chrono::microseconds(50));

  RT.collector().collectSync(CycleRequest::Partial); // aborts at trace entry
  RT.collector().collectSync(CycleRequest::Partial); // upgraded to Full
  RT.collector().collectSync(CycleRequest::Partial); // normal partial again

  Builder.Done = true;
  BuilderThread.join();
  FaultInjector::disarmAll();

  GcRunStats Stats = RT.collector().statsSnapshot();
  ASSERT_GE(Stats.Cycles.size(), 3u);
  EXPECT_TRUE(Stats.Cycles[0].Aborted);
  EXPECT_EQ(Stats.Cycles[0].ForcedMutators, 0u)
      << "a fault-injected abort needs no force-adoption";
  EXPECT_FALSE(Stats.Cycles[1].Aborted);
  EXPECT_EQ(Stats.Cycles[1].Kind, CycleKind::Full)
      << "the cycle after an abort traces everything";
  EXPECT_FALSE(Stats.Cycles[2].Degraded)
      << "fault-injected aborts do not enter degraded mode";
  EXPECT_EQ(RT.metrics().CycleAborts, 1u);
  EXPECT_EQ(Builder.Checksum.load(), FaultFree);
}

} // namespace

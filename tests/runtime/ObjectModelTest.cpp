//===- tests/runtime/ObjectModelTest.cpp -----------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "heap/Heap.h"
#include "runtime/ObjectModel.h"

using namespace gengc;

namespace {

struct ObjectModelTest : ::testing::Test {
  ObjectModelTest() : H(HeapConfig{.HeapBytes = 4 << 20}) {}

  ObjectRef freshCell(uint32_t Bytes) {
    Heap::CellChain Chain = H.popFreeChain(sizeClassFor(Bytes));
    return Chain.Head; // leaks the rest; fine for tests
  }

  Heap H;
};

TEST_F(ObjectModelTest, HeaderRoundTrip) {
  ObjectRef Ref = freshCell(64);
  initObject(H, Ref, 3, 42, 64);
  EXPECT_EQ(objectRefSlots(H, Ref), 3u);
  EXPECT_EQ(objectTag(H, Ref), 42);
  EXPECT_EQ(objectAllocBytes(H, Ref), 64u);
}

TEST_F(ObjectModelTest, InitClearsRefSlots) {
  ObjectRef Ref = freshCell(64);
  // Scribble over the cell to simulate reuse.
  for (uint64_t Offset = 0; Offset < 64; Offset += 4)
    H.wordAt(Ref + Offset).store(0xFFFFFFFF);
  initObject(H, Ref, 4, 0, 64);
  for (uint32_t I = 0; I < 4; ++I)
    EXPECT_EQ(loadRefSlot(H, Ref, I), NullRef);
}

TEST_F(ObjectModelTest, SlotStoresAreIndependent) {
  ObjectRef Ref = freshCell(64);
  initObject(H, Ref, 4, 0, 64);
  storeRefSlotRaw(H, Ref, 1, 0x1230);
  storeRefSlotRaw(H, Ref, 3, 0x4560);
  EXPECT_EQ(loadRefSlot(H, Ref, 0), NullRef);
  EXPECT_EQ(loadRefSlot(H, Ref, 1), 0x1230u);
  EXPECT_EQ(loadRefSlot(H, Ref, 2), NullRef);
  EXPECT_EQ(loadRefSlot(H, Ref, 3), 0x4560u);
}

TEST_F(ObjectModelTest, DataWordsFollowRefSlots) {
  ObjectRef Ref = freshCell(64);
  initObject(H, Ref, 2, 0, 40); // 8 hdr + 8 refs + 24 data
  EXPECT_EQ(objectDataWords(H, Ref), 6u);
  for (uint32_t I = 0; I < 6; ++I)
    storeDataWord(H, Ref, I, I * 100);
  for (uint32_t I = 0; I < 6; ++I)
    EXPECT_EQ(loadDataWord(H, Ref, I), I * 100);
  // Data stores must not clobber ref slots.
  EXPECT_EQ(loadRefSlot(H, Ref, 0), NullRef);
  EXPECT_EQ(loadRefSlot(H, Ref, 1), NullRef);
}

TEST_F(ObjectModelTest, ZeroRefSlotObjects) {
  ObjectRef Ref = freshCell(32);
  initObject(H, Ref, 0, 7, 32);
  EXPECT_EQ(objectRefSlots(H, Ref), 0u);
  EXPECT_EQ(objectDataWords(H, Ref), (32u - 8u) / 4u);
}

TEST_F(ObjectModelTest, ObjectBytesForFormula) {
  EXPECT_EQ(objectBytesFor(0, 0), ObjectHeaderBytes);
  EXPECT_EQ(objectBytesFor(2, 0), ObjectHeaderBytes + 8);
  EXPECT_EQ(objectBytesFor(2, 24), ObjectHeaderBytes + 8 + 24);
}

TEST_F(ObjectModelTest, LargeObjectHeaders) {
  ObjectRef Run = H.allocateLarge(100 << 10);
  ASSERT_NE(Run, NullRef);
  initObject(H, Run, 1000, 9, 100 << 10);
  EXPECT_EQ(objectRefSlots(H, Run), 1000u);
  EXPECT_EQ(objectTag(H, Run), 9);
  storeRefSlotRaw(H, Run, 999, 0x10);
  EXPECT_EQ(loadRefSlot(H, Run, 999), 0x10u);
}

TEST_F(ObjectModelTest, MaxRefSlotsBoundedByHeader) {
  // 16-bit field: MaxRefSlots slots are representable.
  EXPECT_EQ(MaxRefSlots, 0xFFFFu);
}

} // namespace

//===- tests/runtime/GrayBufferTest.cpp ------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <thread>

#include "runtime/GrayBuffer.h"

using namespace gengc;

namespace {

TEST(GrayBuffer, StartsEmpty) {
  GrayBuffer B;
  std::vector<ObjectRef> Out;
  EXPECT_FALSE(B.drainTo(Out));
  EXPECT_TRUE(Out.empty());
}

TEST(GrayBuffer, PushDrainRoundTrip) {
  GrayBuffer B;
  B.push(16);
  B.push(32);
  std::vector<ObjectRef> Out;
  EXPECT_TRUE(B.drainTo(Out));
  EXPECT_EQ(Out, (std::vector<ObjectRef>{16, 32}));
  EXPECT_FALSE(B.drainTo(Out)) << "drain empties the buffer";
}

TEST(GrayBuffer, DrainAppendsToExisting) {
  GrayBuffer B;
  B.push(48);
  std::vector<ObjectRef> Out{16};
  EXPECT_TRUE(B.drainTo(Out));
  EXPECT_EQ(Out, (std::vector<ObjectRef>{16, 48}));
}

TEST(GrayBuffer, PushManyBatches) {
  GrayBuffer B;
  B.pushMany({});
  std::vector<ObjectRef> Out;
  EXPECT_FALSE(B.drainTo(Out)) << "empty batch adds nothing";
  B.pushMany({16, 32, 48});
  B.push(64);
  EXPECT_TRUE(B.drainTo(Out));
  EXPECT_EQ(Out, (std::vector<ObjectRef>{16, 32, 48, 64}));
}

TEST(GrayBuffer, ClearDiscards) {
  GrayBuffer B;
  B.push(16);
  B.clear();
  std::vector<ObjectRef> Out;
  EXPECT_FALSE(B.drainTo(Out));
}

TEST(GrayBuffer, ConcurrentPushersLoseNothing) {
  GrayBuffer B;
  constexpr unsigned Threads = 4, PerThread = 10000;
  std::vector<std::thread> Workers;
  for (unsigned W = 0; W < Threads; ++W)
    Workers.emplace_back([&B, W] {
      for (unsigned I = 0; I < PerThread; ++I)
        B.push(ObjectRef((W * PerThread + I + 1) * 16));
    });
  std::vector<ObjectRef> Out;
  // Drain concurrently with the pushers, then once more after they join.
  for (int I = 0; I < 100; ++I)
    B.drainTo(Out);
  for (std::thread &W : Workers)
    W.join();
  B.drainTo(Out);
  EXPECT_EQ(Out.size(), size_t(Threads) * PerThread);
  std::sort(Out.begin(), Out.end());
  EXPECT_TRUE(std::adjacent_find(Out.begin(), Out.end()) == Out.end())
      << "no entry duplicated";
}

} // namespace

//===- tests/runtime/OomTest.cpp -------------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
//
// The recoverable out-of-memory ladder: heap exhaustion escalates through
// waitForMemory rounds, an emergency cache flush and the installed
// OomHandler instead of aborting the process, tryAllocate reports
// exhaustion as NullRef, and the classic no-handler abort behavior (with
// its exact messages) is pinned by death tests.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/Runtime.h"

using namespace gengc;

namespace {

// A deliberately tiny heap with automatic triggering disabled: cycles run
// only when the OOM ladder (or the test) asks for them.
RuntimeConfig tinyHeapConfig() {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 2 << 20;
  Config.Choice = CollectorChoice::Generational;
  Config.Collector.Trigger.YoungBytes = 1ull << 40;
  Config.Collector.Trigger.InitialSoftBytes = 1ull << 40;
  Config.Collector.Trigger.FullFraction = 100.0;
  Config.Oom.RetryAttempts = 3;
  Config.Oom.EmergencyAfter = 1;
  return Config;
}

// Roots objects until tryAllocate reports exhaustion.  Returns the number
// of objects rooted.
size_t fillHeap(Mutator &M, uint32_t RefSlots = 1, uint32_t DataBytes = 24) {
  size_t Rooted = 0;
  for (;;) {
    ObjectRef Ref = M.tryAllocate(RefSlots, DataBytes);
    if (Ref == NullRef)
      return Rooted;
    M.pushRoot(Ref);
    ++Rooted;
  }
}

TEST(Oom, TryAllocateReturnsNullOnExhaustionAndRecovers) {
  Runtime RT(tinyHeapConfig());
  auto M = RT.attachMutator();

  size_t Rooted = fillHeap(*M);
  EXPECT_GT(Rooted, 1000u) << "a 2 MB heap holds many 32-byte cells";
  EXPECT_EQ(M->tryAllocate(1, 24), NullRef) << "still exhausted";

  // Drop everything and reclaim; tryAllocate works again.
  M->popRoots(M->numRoots());
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  EXPECT_NE(M->tryAllocate(1, 24), NullRef);
}

TEST(Oom, HandlerRecoversSmallAllocation) {
  RuntimeConfig Config = tinyHeapConfig();
  std::atomic<unsigned> HandlerCalls{0};
  Config.Oom.Handler = [&](Mutator &M, const OomInfo &Info) {
    ++HandlerCalls;
    EXPECT_FALSE(Info.LargeObject);
    EXPECT_GE(Info.Attempts, 3u) << "the whole retry budget ran first";
    EXPECT_GT(Info.RequestBytes, 0u);
    M.popRoots(M.numRoots()); // free the world, then retry
    return OomAction::Retry;
  };
  Runtime RT(Config);
  auto M = RT.attachMutator();

  fillHeap(*M);
  // Everything is rooted, so the ladder's collections reclaim nothing until
  // the handler drops the roots.
  ObjectRef Ref = M->allocate(1, 24);
  EXPECT_NE(Ref, NullRef);
  EXPECT_GE(HandlerCalls.load(), 1u);
  EXPECT_GT(RT.collector().memoryWaits(), 0u);
  M->popRoots(M->numRoots());
}

TEST(Oom, HandlerRecoversLargeAllocation) {
  RuntimeConfig Config = tinyHeapConfig();
  std::atomic<unsigned> HandlerCalls{0};
  Config.Oom.Handler = [&](Mutator &M, const OomInfo &Info) {
    ++HandlerCalls;
    EXPECT_TRUE(Info.LargeObject);
    M.popRoots(M.numRoots());
    return OomAction::Retry;
  };
  Runtime RT(Config);
  auto M = RT.attachMutator();

  // Fill with rooted large objects (block runs), then ask for one more.
  fillHeap(*M, 2, 100 << 10);
  ObjectRef Ref = M->allocate(2, 100 << 10);
  EXPECT_NE(Ref, NullRef);
  EXPECT_GE(HandlerCalls.load(), 1u);
  M->popRoots(M->numRoots());
}

TEST(Oom, GiveUpMakesAllocateReturnNull) {
  RuntimeConfig Config = tinyHeapConfig();
  std::atomic<unsigned> HandlerCalls{0};
  Config.Oom.Handler = [&](Mutator &, const OomInfo &) {
    ++HandlerCalls;
    return OomAction::GiveUp;
  };
  Runtime RT(Config);
  auto M = RT.attachMutator();

  fillHeap(*M);
  EXPECT_EQ(M->allocate(1, 24), NullRef);
  EXPECT_EQ(HandlerCalls.load(), 1u);

  // The mutator is still usable: drop the roots and allocate again.
  M->popRoots(M->numRoots());
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  EXPECT_NE(M->allocate(1, 24), NullRef);
  M->popRoots(M->numRoots());
}

TEST(Oom, EscalationEventsAreEmitted) {
  RuntimeConfig Config = tinyHeapConfig();
  Config.Collector.Obs.Tracing = true;
  Config.Oom.Handler = [](Mutator &, const OomInfo &) {
    return OomAction::GiveUp;
  };
  Runtime RT(Config);
  auto M = RT.attachMutator();

  fillHeap(*M);
  EXPECT_EQ(M->allocate(1, 24), NullRef);
  M->popRoots(M->numRoots());

  // The ladder emitted one OomEscalation per rung: Wait and Emergency
  // rounds, the Handler consultation and the GaveUp verdict.
  TraceSnapshot Snap = RT.traceSnapshot();
  bool SawWait = false, SawEmergency = false, SawHandler = false,
       SawGaveUp = false;
  for (const TraceSnapshot::TraceEvent &E : Snap.Events) {
    if (E.Kind != ObsEventKind::OomEscalation)
      continue;
    switch (OomEscalationStep(E.Arg0)) {
    case OomEscalationStep::Wait:
      SawWait = true;
      break;
    case OomEscalationStep::Emergency:
      SawEmergency = true;
      break;
    case OomEscalationStep::Handler:
      SawHandler = true;
      break;
    case OomEscalationStep::GaveUp:
      SawGaveUp = true;
      break;
    }
  }
  EXPECT_TRUE(SawWait);
  EXPECT_TRUE(SawEmergency);
  EXPECT_TRUE(SawHandler);
  EXPECT_TRUE(SawGaveUp);
}

TEST(Oom, ValidateRejectsZeroRetryAttempts) {
  RuntimeConfig Config = tinyHeapConfig();
  Config.Oom.RetryAttempts = 0;
  EXPECT_NE(Config.validate().find("RetryAttempts"), std::string::npos);
}

// The classic behavior is pinned: a bare mutator (no MemoryWaiter, the
// unit-test construction) still aborts with the historical messages.
TEST(OomDeathTest, NoWaiterAbortsOnSmallExhaustion) {
  EXPECT_DEATH(
      {
        Heap H(HeapConfig{.HeapBytes = 2 << 20});
        CollectorState State;
        MutatorRegistry Registry(State);
        Mutator M(H, State, Registry);
        for (int I = 0; I < 200000; ++I)
          M.allocate(1, 24);
      },
      "heap exhausted and no memory waiter installed");
}

TEST(OomDeathTest, NoWaiterAbortsOnLargeExhaustion) {
  EXPECT_DEATH(
      {
        Heap H(HeapConfig{.HeapBytes = 2 << 20});
        CollectorState State;
        MutatorRegistry Registry(State);
        Mutator M(H, State, Registry);
        for (int I = 0; I < 64; ++I)
          M.allocate(2, 200 << 10);
      },
      "heap exhausted \\(large\\) and no memory waiter installed");
}

} // namespace

//===- tests/runtime/HandshakeTest.cpp -------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <thread>

#include "runtime/Handshake.h"
#include "runtime/Mutator.h"

using namespace gengc;

namespace {

struct HandshakeTest : ::testing::Test {
  HandshakeTest()
      : H(HeapConfig{.HeapBytes = 64 << 20}), Registry(State),
        Driver(State, Registry) {}

  Heap H;
  CollectorState State;
  MutatorRegistry Registry;
  HandshakeDriver Driver;
};

TEST_F(HandshakeTest, PostPublishesStatus) {
  Driver.post(HandshakeStatus::Sync1);
  EXPECT_EQ(State.StatusC.load(), HandshakeStatus::Sync1);
}

TEST_F(HandshakeTest, WaitReturnsImmediatelyWithNoMutators) {
  Driver.handshake(HandshakeStatus::Sync1);
  Driver.handshake(HandshakeStatus::Sync2);
  Driver.handshake(HandshakeStatus::Async);
  SUCCEED();
}

TEST_F(HandshakeTest, WaitBlocksUntilMutatorCooperates) {
  Mutator M(H, State, Registry);
  std::atomic<bool> HandshakeDone{false};
  std::thread Collector([&] {
    Driver.handshake(HandshakeStatus::Sync1);
    HandshakeDone.store(true, std::memory_order_release);
  });
  // Give the collector a moment: it must NOT complete.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(HandshakeDone.load(std::memory_order_acquire));
  M.cooperate();
  Collector.join();
  EXPECT_TRUE(HandshakeDone.load(std::memory_order_acquire));
}

TEST_F(HandshakeTest, WaitCompletesForBlockedMutators) {
  Mutator M(H, State, Registry);
  M.enterBlocked();
  // The driver responds on the blocked mutator's behalf.
  Driver.handshake(HandshakeStatus::Sync1);
  EXPECT_EQ(M.status(), HandshakeStatus::Sync1);
  M.exitBlocked();
}

TEST_F(HandshakeTest, FullCycleOfStatusesWithManyThreads) {
  constexpr unsigned NumThreads = 6;
  std::atomic<bool> Stop{false};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&] {
      Mutator M(H, State, Registry);
      uint64_t Allocs = 0;
      while (!Stop.load(std::memory_order_acquire)) {
        // Bounded: there is no collector in this test to reclaim memory.
        if (Allocs++ < 200000)
          M.allocate(1, 16);
        M.cooperate();
      }
    });
  // Run several complete handshake cycles against the churning threads.
  for (int Cycle = 0; Cycle < 20; ++Cycle) {
    Driver.handshake(HandshakeStatus::Sync1);
    Driver.handshake(HandshakeStatus::Sync2);
    Driver.handshake(HandshakeStatus::Async);
  }
  Stop.store(true, std::memory_order_release);
  for (std::thread &T : Threads)
    T.join();
  SUCCEED();
}

TEST_F(HandshakeTest, DeregistrationUnblocksWait) {
  auto M = std::make_unique<Mutator>(H, State, Registry);
  std::atomic<bool> HandshakeDone{false};
  std::thread Collector([&] {
    Driver.handshake(HandshakeStatus::Sync1);
    HandshakeDone.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(HandshakeDone.load(std::memory_order_acquire));
  M.reset(); // thread "exits" without ever cooperating
  Collector.join();
  EXPECT_TRUE(HandshakeDone.load(std::memory_order_acquire));
}

} // namespace

//===- tests/gc/ParallelCycleTest.cpp --------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// Correctness of the parallel cycle engine at GcThreads = 4: every
// collector variant must preserve reachable objects, reclaim garbage, and
// report coherent per-lane statistics, with and without concurrent mutator
// load.  These tests are also compiled into the ThreadSanitizer binary
// (test_gc_tsan), where they double as the data-race regression suite for
// the worker pool, the work-stealing trace, the sharded card scan and the
// parallel sweep.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <thread>

#include "core/Runtime.h"
#include "support/Random.h"

using namespace gengc;

namespace {

RuntimeConfig parallelConfig(CollectorChoice Choice, bool Aging) {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 32ull << 20;
  Config.Heap.CardBytes = 16;
  Config.Choice = Choice;
  Config.Collector.GcThreads = 4;
  Config.Collector.Aging = Aging;
  Config.Collector.OldestAge = 3;
  // Triggering stays manual (huge thresholds); the tests request cycles.
  Config.Collector.Trigger.YoungBytes = 1ull << 40;
  Config.Collector.Trigger.InitialSoftBytes = 16ull << 20;
  Config.Collector.Trigger.FullFraction = 1.1;
  return Config;
}

struct ParallelParam {
  CollectorChoice Choice;
  bool Aging;
  const char *Name;
};

class ParallelCycleTest : public ::testing::TestWithParam<ParallelParam> {};

/// Builds a chain of \p Len nodes rooted at slot \p Slot.
ObjectRef buildChain(Mutator &M, unsigned Slot, unsigned Len) {
  ObjectRef Head = NullRef;
  for (unsigned I = 0; I < Len; ++I) {
    ObjectRef Node = M.allocate(2, 16);
    M.writeRef(Node, 0, Head);
    Head = Node;
    M.setRoot(Slot, Head);
  }
  return Head;
}

TEST_P(ParallelCycleTest, PreservesReachableReclaimsGarbage) {
  Runtime RT(parallelConfig(GetParam().Choice, GetParam().Aging));
  auto M = RT.attachMutator();
  constexpr unsigned Keep = 8, ChainLen = 500;
  for (unsigned I = 0; I < 2 * Keep; ++I)
    M->pushRoot(NullRef);
  for (unsigned I = 0; I < 2 * Keep; ++I)
    buildChain(*M, I, ChainLen);
  // Drop half the chains: ChainLen * Keep objects become garbage.
  for (unsigned I = Keep; I < 2 * Keep; ++I)
    M->setRoot(I, NullRef);

  // Two full cycles: the first may float the dropped chains (shaded before
  // the drop), the second must reclaim them.
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);

  // Everything still rooted is alive and walkable.
  for (unsigned I = 0; I < Keep; ++I) {
    unsigned Steps = 0;
    for (ObjectRef Node = M->root(I); Node != NullRef;
         Node = M->readRef(Node, 0), ++Steps) {
      ASSERT_NE(RT.heap().loadColor(Node), Color::Blue);
      ASSERT_LE(Steps, ChainLen);
    }
    EXPECT_EQ(Steps, ChainLen);
  }

  GcRunStats Stats = RT.gcStats();
  ASSERT_EQ(Stats.Cycles.size(), 2u);
  uint64_t Freed = Stats.Cycles[0].ObjectsFreed + Stats.Cycles[1].ObjectsFreed;
  EXPECT_GE(Freed, uint64_t(Keep) * ChainLen);
  M->popRoots(M->numRoots());
}

TEST_P(ParallelCycleTest, ReportsPerLaneStatistics) {
  Runtime RT(parallelConfig(GetParam().Choice, GetParam().Aging));
  auto M = RT.attachMutator();
  M->pushRoot(NullRef);
  buildChain(*M, 0, 2000);
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);

  GcRunStats Stats = RT.gcStats();
  ASSERT_EQ(Stats.Cycles.size(), 1u);
  const CycleStats &Cycle = Stats.Cycles[0];
  EXPECT_EQ(Cycle.GcWorkers, 4u);
  ASSERT_EQ(Cycle.TraceWorkerNanos.size(), 4u);
  ASSERT_EQ(Cycle.SweepWorkerNanos.size(), 4u);
  // Lane 0 is the collector thread itself; it always participates.
  EXPECT_GT(Cycle.TraceWorkerNanos[0], 0u);
  EXPECT_GT(Cycle.SweepWorkerNanos[0], 0u);
  EXPECT_GE(Cycle.ObjectsTraced, 2000u);
  M->popRoots(M->numRoots());
}

TEST_P(ParallelCycleTest, SurvivesMutatorLoadAcrossManyCycles) {
  Runtime RT(parallelConfig(GetParam().Choice, GetParam().Aging));
  constexpr unsigned NumThreads = 3;
  constexpr uint64_t OpsPerThread = 6000;
  std::atomic<bool> Stop{false};

  // A driver thread forces back-to-back cycles (alternating kinds for the
  // generational collector) while mutators churn the graph; it runs at
  // least MinCycles even if the mutators finish first.
  constexpr unsigned MinCycles = 6;
  std::thread Driver([&] {
    auto M = RT.attachMutator();
    bool Partial = false;
    for (unsigned Cycle = 0;
         Cycle < MinCycles || !Stop.load(std::memory_order_acquire); ++Cycle) {
      RT.collector().collectSyncCooperating(
          Partial ? CycleRequest::Partial : CycleRequest::Full, *M);
      Partial = !Partial;
    }
  });

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Rng Rand(0x5EED + T);
      auto M = RT.attachMutator();
      constexpr unsigned Ring = 32;
      for (unsigned I = 0; I < Ring; ++I)
        M->pushRoot(NullRef);
      for (uint64_t Op = 0; Op < OpsPerThread; ++Op) {
        M->cooperate();
        unsigned Slot = unsigned(Rand.nextBelow(Ring));
        switch (Rand.nextBelow(4)) {
        case 0:
        case 1: {
          ObjectRef Node = M->allocate(2, uint32_t(Rand.nextInRange(8, 48)));
          M->writeRef(Node, 0, M->root(Slot));
          M->setRoot(Slot, Node);
          break;
        }
        case 2:
          M->setRoot(Slot, NullRef);
          break;
        case 3: {
          unsigned Steps = 0;
          for (ObjectRef Node = M->root(Slot); Node != NullRef && Steps < 64;
               Node = M->readRef(Node, 0), ++Steps)
            ASSERT_NE(RT.heap().loadColor(Node), Color::Blue)
                << "reachable object reclaimed by a parallel cycle";
          break;
        }
        }
      }
      M->popRoots(M->numRoots());
    });
  for (std::thread &T : Threads)
    T.join();
  Stop.store(true, std::memory_order_release);
  Driver.join();
  EXPECT_GE(RT.collector().completedCycles(), MinCycles);
}

INSTANTIATE_TEST_SUITE_P(
    Collectors, ParallelCycleTest,
    ::testing::Values(
        ParallelParam{CollectorChoice::Generational, false, "GenSimple"},
        ParallelParam{CollectorChoice::Generational, true, "GenAging"},
        ParallelParam{CollectorChoice::NonGenerational, false, "Dlg"},
        ParallelParam{CollectorChoice::StopTheWorld, false, "Stw"}),
    [](const auto &Info) { return std::string(Info.param.Name); });

} // namespace

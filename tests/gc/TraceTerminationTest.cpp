//===- tests/gc/TraceTerminationTest.cpp -----------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// The sharded termination scan: with GcThreads > 1 the trace's step-2
// verification scan of the color table runs word-range-partitioned across
// all pool lanes (over the allocated block ranges) while mutators keep
// shading through the write barrier.  These tests hammer exactly that
// window — continuous shade storms across many full cycles — and then
// prove the two properties the paper's Section 4 termination argument
// promises: nothing reachable is left gray once the storm quiesces, and a
// quiesced heap is traced exactly once per cycle (no double-trace).  Wired
// into the plain, TSan and ASan gc suites; under TSan this is the
// data-race regression gate for the scan sharding.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/Runtime.h"
#include "support/Random.h"

using namespace gengc;

namespace {

RuntimeConfig scanConfig(CollectorChoice Choice, bool VerifyHeap) {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 32ull << 20;
  Config.Heap.CardBytes = 16;
  Config.Choice = Choice;
  Config.Collector.GcThreads = 4;
  Config.Collector.VerifyHeap = VerifyHeap;
  // Cycles are driven manually; the triggers stay out of the way.
  Config.Collector.Trigger.YoungBytes = 1ull << 40;
  Config.Collector.Trigger.InitialSoftBytes = 16ull << 20;
  Config.Collector.Trigger.FullFraction = 100.0;
  return Config;
}

/// Number of gray entries in the whole color table.
size_t countGray(const Heap &H) {
  size_t Grays = 0;
  H.colors().forEachEntryEqualInRange(0, H.colors().size(),
                                      uint8_t(Color::Gray),
                                      [&](size_t) { ++Grays; });
  return Grays;
}

TEST(TraceTermination, ShadeStormLeavesNoGrayAndNoDoubleTrace) {
  Runtime RT(scanConfig(CollectorChoice::NonGenerational,
                        /*VerifyHeap=*/false));
  constexpr unsigned NumShaders = 3;
  constexpr unsigned MinStormCycles = 6;
  std::atomic<bool> StormOver{false};
  std::atomic<unsigned> ShadersDone{0};

  // Shader threads continuously rewire rooted chains: every writeRef runs
  // the write barrier, so during each cycle's trace — including its
  // sharded termination scans — a steady stream of objects is shaded gray
  // out from under the scanning lanes.  Chains are dropped regularly:
  // cycles must keep freeing garbage or the shaders would fill the heap
  // and block in allocate() forever.
  std::vector<std::thread> Shaders;
  for (unsigned T = 0; T < NumShaders; ++T)
    Shaders.emplace_back([&, T] {
      Rng Rand(0xACE + T);
      auto M = RT.attachMutator();
      constexpr unsigned Ring = 24;
      for (unsigned I = 0; I < Ring; ++I)
        M->pushRoot(NullRef);
      while (!StormOver.load(std::memory_order_acquire)) {
        M->cooperate();
        unsigned Slot = unsigned(Rand.nextBelow(Ring));
        if (Rand.nextBelow(4) == 0) {
          M->setRoot(Slot, NullRef); // cut the chain: garbage for the sweep
          continue;
        }
        ObjectRef Node = M->allocate(2, uint32_t(Rand.nextInRange(8, 48)));
        // Cross-link into another slot's chain, then re-root: two barrier
        // shades per iteration, one of them into a foreign subgraph.
        M->writeRef(Node, 0, M->root(Slot));
        M->writeRef(Node, 1, M->root(unsigned(Rand.nextBelow(Ring))));
        M->setRoot(Slot, Node);
      }
      M->popRoots(M->numRoots());
      ShadersDone.fetch_add(1, std::memory_order_acq_rel);
    });

  // Driver: a stable rooted structure, then back-to-back full cycles with
  // the storm guaranteed live for all MinStormCycles of them.  After
  // raising StormOver the driver MUST keep cycling until every shader has
  // confirmed exit: a shader blocked in allocate() on a full heap is
  // waiting for the next collection to free memory and cannot see the
  // flag until one runs.
  auto M = RT.attachMutator();
  constexpr unsigned ChainLen = 1500;
  M->pushRoot(NullRef);
  for (unsigned I = 0; I < ChainLen; ++I) {
    ObjectRef Node = M->allocate(2, 16);
    M->writeRef(Node, 0, M->root(0));
    M->setRoot(0, Node);
  }
  for (unsigned Cycle = 0; Cycle < MinStormCycles; ++Cycle)
    RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  StormOver.store(true, std::memory_order_release);
  while (ShadersDone.load(std::memory_order_acquire) < NumShaders)
    RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  for (std::thread &T : Shaders)
    T.join();

  // Quiesced epilogue: three more cycles with no mutator running.  The
  // first may still trace storm leftovers (floating garbage shaded just
  // before the join); the last two see an identical live set.
  for (int I = 0; I < 3; ++I)
    RT.collector().collectSyncCooperating(CycleRequest::Full, *M);

  // Property 1: no object is left gray — the termination scans proved
  // quiescence, and the sweep saw no gray to spare.
  EXPECT_EQ(countGray(RT.heap()), 0u);

  // Property 2: no double-trace — a quiesced heap traces each live object
  // exactly once per cycle, so two quiesced cycles trace identical counts.
  GcRunStats Stats = RT.gcStats();
  ASSERT_GE(Stats.Cycles.size(), size_t(MinStormCycles) + 3);
  const CycleStats &A = Stats.Cycles[Stats.Cycles.size() - 2];
  const CycleStats &B = Stats.Cycles[Stats.Cycles.size() - 1];
  EXPECT_EQ(A.ObjectsTraced, B.ObjectsTraced);
  EXPECT_EQ(A.BytesTraced, B.BytesTraced);
  EXPECT_GE(B.ObjectsTraced, uint64_t(ChainLen));

  // The driver's chain survived the storm intact.
  unsigned Steps = 0;
  for (ObjectRef Node = M->root(0); Node != NullRef;
       Node = M->readRef(Node, 0), ++Steps)
    ASSERT_NE(RT.heap().loadColor(Node), Color::Blue);
  EXPECT_EQ(Steps, ChainLen);
  M->popRoots(M->numRoots());
}

// Same storm under the heap verifier: every phase boundary re-checks the
// block table, colors and — after each full trace — the tri-color
// invariant, so a termination scan that missed a reachable gray object or
// blackened something twice aborts the run with a violation dump.
TEST(TraceTermination, ShadeStormUnderHeapVerifier) {
  Runtime RT(scanConfig(CollectorChoice::NonGenerational,
                        /*VerifyHeap=*/true));
  std::atomic<bool> StormOver{false};
  std::atomic<bool> ShaderDone{false};
  std::thread Shader([&] {
    Rng Rand(0xBEEF);
    auto M = RT.attachMutator();
    constexpr unsigned Ring = 16;
    for (unsigned I = 0; I < Ring; ++I)
      M->pushRoot(NullRef);
    while (!StormOver.load(std::memory_order_acquire)) {
      M->cooperate();
      unsigned Slot = unsigned(Rand.nextBelow(Ring));
      if (Rand.nextBelow(4) == 0) {
        M->setRoot(Slot, NullRef);
        continue;
      }
      ObjectRef Node = M->allocate(2, 24);
      M->writeRef(Node, 0, M->root(Slot));
      M->writeRef(Node, 1, M->root(unsigned(Rand.nextBelow(Ring))));
      M->setRoot(Slot, Node);
    }
    M->popRoots(M->numRoots());
    ShaderDone.store(true, std::memory_order_release);
  });

  auto M = RT.attachMutator();
  for (int Cycle = 0; Cycle < 3; ++Cycle)
    RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  StormOver.store(true, std::memory_order_release);
  // Keep cycling until the shader confirms exit (it may be blocked in
  // allocate() waiting for the next collection to free memory).
  while (!ShaderDone.load(std::memory_order_acquire))
    RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  Shader.join();
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  EXPECT_EQ(countGray(RT.heap()), 0u);
}

// The sharded scan must report its cost: with GcThreads > 1 every cycle
// runs at least one termination pass, so the new per-cycle counters are
// live (and the segment engine actually moved packets).
TEST(TraceTermination, ReportsTermScanAndSegmentStatistics) {
  Runtime RT(scanConfig(CollectorChoice::NonGenerational,
                        /*VerifyHeap=*/false));
  auto M = RT.attachMutator();
  M->pushRoot(NullRef);
  for (unsigned I = 0; I < 3000; ++I) {
    ObjectRef Node = M->allocate(2, 16);
    M->writeRef(Node, 0, M->root(0));
    M->setRoot(0, Node);
  }
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);

  GcRunStats Stats = RT.gcStats();
  ASSERT_EQ(Stats.Cycles.size(), 1u);
  const CycleStats &Cycle = Stats.Cycles[0];
  EXPECT_GT(Cycle.TraceTermScanNanos, 0u);
  EXPECT_GT(Cycle.TraceSegmentsAcquired, 0u);
  // 3000 nodes = dozens of segments through a 4-lane fan-out; the pool
  // gauges surface in the metrics snapshot too.
  MetricsSnapshot Metrics = RT.metrics();
  EXPECT_GT(Metrics.TraceSegmentsAcquired, 0u);
  EXPECT_GT(Metrics.TraceSegmentsAllocated, 0u);
  EXPECT_EQ(Metrics.TraceTermScanNanos, Cycle.TraceTermScanNanos);
  M->popRoots(M->numRoots());
}

} // namespace

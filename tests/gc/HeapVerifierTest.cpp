//===- tests/gc/HeapVerifierTest.cpp ---------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
//
// The heap-invariant verifier: a healthy heap passes every scope, each
// class of induced corruption (wrong free-cell color, dirty card without a
// summary, clear-colored survivors, clear-referencing traced objects) is
// reported, and the collector-integrated mode (VerifyHeap /
// GENGC_VERIFY_HEAP) runs clean at every phase boundary of real cycles.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <string>

#include "core/Runtime.h"
#include "gc/HeapVerifier.h"

using namespace gengc;

namespace {

bool anyViolationContains(const HeapVerifier::Report &R,
                          const std::string &Needle) {
  for (const std::string &V : R.Violations)
    if (V.find(Needle) != std::string::npos)
      return true;
  return false;
}

struct HeapVerifierTest : ::testing::Test {
  HeapVerifierTest()
      : H(HeapConfig{.HeapBytes = 8 << 20}), Registry(State),
        M(H, State, Registry), V(H, State) {}

  Heap H;
  CollectorState State;
  MutatorRegistry Registry;
  Mutator M;
  HeapVerifier V;
};

TEST_F(HeapVerifierTest, CleanHeapPassesEveryScope) {
  // A small object graph: parents pointing at sons, plus a large object.
  for (int I = 0; I < 100; ++I) {
    ObjectRef Parent = M.allocate(2, 8);
    ObjectRef Son = M.allocate(0, 16);
    M.writeRef(Parent, 0, Son);
  }
  M.allocate(1, 100 << 10);

  for (VerifyScope Scope : {VerifyScope::Concurrent, VerifyScope::CycleEnd}) {
    HeapVerifier::Report R = V.run(Scope, State.allocationColor());
    EXPECT_TRUE(R.clean()) << verifyScopeName(Scope) << ": "
                           << (R.Violations.empty() ? "" : R.Violations[0]);
    EXPECT_GT(R.ChecksRun, 0u);
  }
  // Fresh allocations carry the allocation color and only reference other
  // allocation-colored objects, so the post-trace check passes with the
  // allocation color as "traced black".
  HeapVerifier::Report R =
      V.run(VerifyScope::PostTraceFull, State.allocationColor());
  EXPECT_TRUE(R.clean()) << (R.Violations.empty() ? "" : R.Violations[0]);
}

TEST_F(HeapVerifierTest, ScopeNames) {
  EXPECT_STREQ(verifyScopeName(VerifyScope::Concurrent), "concurrent");
  EXPECT_STREQ(verifyScopeName(VerifyScope::PostTraceFull), "post-trace-full");
  EXPECT_STREQ(verifyScopeName(VerifyScope::CycleEnd), "cycle-end");
}

TEST_F(HeapVerifierTest, DetectsNonBlueFreeCell) {
  // Corrupt a parked central chain: free cells must be Blue.
  Heap::CellChain Chain = H.popFreeChain(0);
  ASSERT_GT(Chain.Count, 0u);
  H.storeColor(Chain.Head, Color::Gray);
  H.pushFreeChain(0, Chain);

  HeapVerifier::Report R = V.run(VerifyScope::Concurrent);
  EXPECT_FALSE(R.clean());
  EXPECT_TRUE(anyViolationContains(R, "free"));

  // Repair so the fixture's teardown leaves a sane heap.
  H.storeColor(Chain.Head, Color::Blue);
}

TEST_F(HeapVerifierTest, DetectsDirtyCardWithoutSummary) {
  ObjectRef Ref = M.allocate(1, 8);
  size_t Card = H.cards().cardIndexFor(Ref);
  H.cards().markCardIndex(Card);
  H.cards().clearSummaryUncontended(H.cards().summaryChunkFor(Card));

  HeapVerifier::Report R = V.run(VerifyScope::Concurrent);
  EXPECT_FALSE(R.clean());
  EXPECT_TRUE(anyViolationContains(R, "summary"));

  H.cards().clearCardUncontended(Card);
}

TEST_F(HeapVerifierTest, DetectsClearColoredCellAtCycleEnd) {
  ObjectRef Ref = M.allocate(1, 8);
  H.storeColor(Ref, State.clearColor());

  EXPECT_TRUE(V.run(VerifyScope::Concurrent).clean())
      << "a clear-colored object is legal mid-cycle";
  HeapVerifier::Report R = V.run(VerifyScope::CycleEnd);
  EXPECT_FALSE(R.clean());
  EXPECT_TRUE(anyViolationContains(R, "clear"));

  H.storeColor(Ref, State.allocationColor());
}

TEST_F(HeapVerifierTest, DetectsTracedObjectReferencingClearObject) {
  ObjectRef Parent = M.allocate(1, 8);
  ObjectRef Son = M.allocate(0, 8);
  M.writeRef(Parent, 0, Son);
  H.storeColor(Son, State.clearColor());

  HeapVerifier::Report R =
      V.run(VerifyScope::PostTraceFull, State.allocationColor());
  EXPECT_FALSE(R.clean());

  H.storeColor(Son, State.allocationColor());
}

//===----------------------------------------------------------------------===//
// Collector integration: VerifyHeap runs the verifier at every phase
// boundary of real cycles without tripping (the checks must absorb every
// transient the protocol permits), and emits VerifyPass events.
//===----------------------------------------------------------------------===//

RuntimeConfig verifyingConfig(CollectorChoice Choice) {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 8 << 20;
  Config.Choice = Choice;
  Config.Collector.Trigger.YoungBytes = 1ull << 40;
  Config.Collector.Trigger.InitialSoftBytes = 8 << 20;
  Config.Collector.Trigger.FullFraction = 100.0;
  Config.Collector.VerifyHeap = true;
  Config.Collector.Obs.Tracing = true;
  return Config;
}

// Builds garbage and live structure, then runs partial and full cycles.
// A confirmed violation would abort the process, so surviving with
// VerifyPass events recorded is the assertion.
void churnAndCollect(RuntimeConfig Config) {
  Runtime RT(Config);
  auto M = RT.attachMutator();
  ObjectRef List = NullRef;
  for (int Round = 0; Round < 3; ++Round) {
    for (int I = 0; I < 2000; ++I) {
      ObjectRef Node = M->allocate(2, 8);
      M->writeRef(Node, 0, List);
      if (I % 3 != 0)
        List = Node; // two thirds stay live, one third is garbage
      M->cooperate();
    }
    size_t Slot = M->pushRoot(List);
    RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
    RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
    List = M->root(Slot);
    M->popRoots();
  }

  TraceSnapshot Snap = RT.traceSnapshot();
  uint64_t Passes = 0;
  bool SawPostTrace = false, SawCycleEnd = false;
  for (const TraceSnapshot::TraceEvent &E : Snap.Events) {
    if (E.Kind != ObsEventKind::VerifyPass)
      continue;
    ++Passes;
    EXPECT_GT(E.Arg1, 0u) << "a pass runs a positive number of checks";
    if (VerifyScope(E.Arg0) == VerifyScope::PostTraceFull)
      SawPostTrace = true;
    if (VerifyScope(E.Arg0) == VerifyScope::CycleEnd)
      SawCycleEnd = true;
  }
  EXPECT_GT(Passes, 0u);
  EXPECT_TRUE(SawPostTrace) << "full cycles run the tri-color check";
  EXPECT_TRUE(SawCycleEnd) << "sweep boundaries run the clear-color check";
}

TEST(HeapVerifierRuntime, GenerationalCyclesVerifyClean) {
  churnAndCollect(verifyingConfig(CollectorChoice::Generational));
}

TEST(HeapVerifierRuntime, AgingCyclesVerifyClean) {
  RuntimeConfig Config = verifyingConfig(CollectorChoice::Generational);
  Config.Collector.Aging = true;
  Config.Collector.OldestAge = 2;
  churnAndCollect(Config);
}

TEST(HeapVerifierRuntime, DlgCyclesVerifyClean) {
  churnAndCollect(verifyingConfig(CollectorChoice::NonGenerational));
}

TEST(HeapVerifierRuntime, StwCyclesVerifyClean) {
  churnAndCollect(verifyingConfig(CollectorChoice::StopTheWorld));
}

} // namespace

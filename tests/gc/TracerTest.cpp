//===- tests/gc/TracerTest.cpp ---------------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "gc/Tracer.h"
#include "runtime/Mutator.h"
#include "runtime/MutatorRegistry.h"

using namespace gengc;

namespace {

struct TracerTest : ::testing::Test {
  TracerTest()
      : H(HeapConfig{.HeapBytes = 4 << 20}), Registry(State),
        M(H, State, Registry), Engine(H, State) {}

  /// Allocates an object with \p Slots ref slots, colored \p C.
  ObjectRef makeObject(Color C, uint32_t Slots = 2) {
    ObjectRef Ref = M.allocate(Slots, 8);
    H.storeColor(Ref, C);
    return Ref;
  }

  /// Links Parent.slot[I] = Child without any barrier.
  void link(ObjectRef Parent, uint32_t I, ObjectRef Child) {
    storeRefSlotRaw(H, Parent, I, Child);
  }

  /// Shades an object gray and queues it, as roots/card scans would.
  void shade(ObjectRef Ref) {
    H.storeColor(Ref, Color::Gray);
    State.Grays.push(Ref);
  }

  Heap H;
  CollectorState State;
  MutatorRegistry Registry;
  Mutator M;
  Tracer Engine;
  GrayCounters Counters;
};

TEST_F(TracerTest, EmptyTraceTerminates) {
  Tracer::Result R = Engine.trace(Color::Black, Counters);
  EXPECT_EQ(R.ObjectsTraced, 0u);
  EXPECT_GE(R.Passes, 1u) << "at least one verification pass";
}

TEST_F(TracerTest, TracesLinkedChainFromGrayRoot) {
  Color Clear = State.clearColor();
  ObjectRef A = makeObject(Clear), B = makeObject(Clear),
            C = makeObject(Clear);
  link(A, 0, B);
  link(B, 1, C);
  shade(A);
  Tracer::Result R = Engine.trace(Color::Black, Counters);
  EXPECT_EQ(R.ObjectsTraced, 3u);
  EXPECT_EQ(H.loadColor(A), Color::Black);
  EXPECT_EQ(H.loadColor(B), Color::Black);
  EXPECT_EQ(H.loadColor(C), Color::Black);
}

TEST_F(TracerTest, DoesNotTraceAllocationColoredSons) {
  Color Clear = State.clearColor();
  ObjectRef A = makeObject(Clear);
  ObjectRef Yellow = makeObject(State.allocationColor());
  link(A, 0, Yellow);
  shade(A);
  Engine.trace(Color::Black, Counters);
  EXPECT_EQ(H.loadColor(A), Color::Black);
  EXPECT_EQ(H.loadColor(Yellow), State.allocationColor())
      << "yellow objects are not traced (Section 4)";
}

TEST_F(TracerTest, DoesNotRevisitBlackSons) {
  ObjectRef A = makeObject(State.clearColor());
  ObjectRef Old = makeObject(Color::Black);
  link(A, 0, Old);
  shade(A);
  Tracer::Result R = Engine.trace(Color::Black, Counters);
  EXPECT_EQ(R.ObjectsTraced, 1u) << "black sons are already done";
}

TEST_F(TracerTest, HandlesCyclesInTheObjectGraph) {
  Color Clear = State.clearColor();
  ObjectRef A = makeObject(Clear), B = makeObject(Clear);
  link(A, 0, B);
  link(B, 0, A);
  link(A, 1, A); // self loop too
  shade(A);
  Tracer::Result R = Engine.trace(Color::Black, Counters);
  EXPECT_EQ(R.ObjectsTraced, 2u);
  EXPECT_EQ(H.loadColor(A), Color::Black);
  EXPECT_EQ(H.loadColor(B), Color::Black);
}

TEST_F(TracerTest, UnreachedClearObjectsStayClear) {
  Color Clear = State.clearColor();
  ObjectRef Garbage = makeObject(Clear);
  ObjectRef Live = makeObject(Clear);
  shade(Live);
  Engine.trace(Color::Black, Counters);
  EXPECT_EQ(H.loadColor(Garbage), Clear);
}

TEST_F(TracerTest, VerificationScanFindsUnqueuedGrays) {
  // A gray object whose buffer enqueue "got lost" (simulating the in-flight
  // race the verification pass guards against).
  ObjectRef Orphan = makeObject(State.clearColor());
  H.storeColor(Orphan, Color::Gray); // gray but never pushed
  Tracer::Result R = Engine.trace(Color::Black, Counters);
  EXPECT_EQ(H.loadColor(Orphan), Color::Black);
  EXPECT_EQ(R.ObjectsTraced, 1u);
}

TEST_F(TracerTest, NonGenerationalBlackIsAllocationColor) {
  Color Clear = State.clearColor();
  Color Alloc = State.allocationColor();
  ObjectRef A = makeObject(Clear), B = makeObject(Clear);
  link(A, 0, B);
  shade(A);
  Engine.trace(Alloc, Counters); // Remark 5.1: black = allocation color
  EXPECT_EQ(H.loadColor(A), Alloc);
  EXPECT_EQ(H.loadColor(B), Alloc);
}

TEST_F(TracerTest, CountsBytesAndSurvivors) {
  Color Clear = State.clearColor();
  ObjectRef A = makeObject(Clear), B = makeObject(Clear);
  link(A, 0, B);
  shade(A);
  Tracer::Result R = Engine.trace(Color::Black, Counters);
  EXPECT_EQ(R.BytesTraced, H.storageBytesOf(A) + H.storageBytesOf(B));
  // B was shaded from clear by the tracer; A was shaded by the test
  // directly (as the collector's root marking would count separately).
  EXPECT_EQ(Counters.FromClear.load(), 1u);
}

TEST_F(TracerTest, TracesLargeObjects) {
  ObjectRef Run = H.allocateLarge(100 << 10);
  ASSERT_NE(Run, NullRef);
  initObject(H, Run, 3, 0, 100 << 10);
  ObjectRef Son = makeObject(State.clearColor());
  link(Run, 2, Son);
  H.storeColor(Run, Color::Gray);
  State.Grays.push(Run);
  Tracer::Result R = Engine.trace(Color::Black, Counters);
  EXPECT_EQ(R.ObjectsTraced, 2u);
  EXPECT_EQ(H.loadColor(Run), Color::Black);
  EXPECT_EQ(H.loadColor(Son), Color::Black);
}

TEST_F(TracerTest, WideFanoutTracesEverything) {
  Color Clear = State.clearColor();
  ObjectRef Hub = M.allocate(64, 0);
  H.storeColor(Hub, Clear);
  std::vector<ObjectRef> Leaves;
  for (uint32_t I = 0; I < 64; ++I) {
    ObjectRef Leaf = makeObject(Clear, 0);
    link(Hub, I, Leaf);
    Leaves.push_back(Leaf);
  }
  shade(Hub);
  Tracer::Result R = Engine.trace(Color::Black, Counters);
  EXPECT_EQ(R.ObjectsTraced, 65u);
  for (ObjectRef Leaf : Leaves)
    EXPECT_EQ(H.loadColor(Leaf), Color::Black);
}

} // namespace

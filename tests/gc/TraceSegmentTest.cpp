//===- tests/gc/TraceSegmentTest.cpp ---------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// The segmented gray stack is the trace engine's hot-path data structure,
// so its contracts are pinned down here: exact LIFO order across segment
// boundaries (the GcThreads = 1 determinism lean), O(1) detach/attach
// moving whole segments by identity, pool recycling, and the lock-free
// statistics counters.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <vector>

#include "gc/TraceSegment.h"

using namespace gengc;

namespace {

TEST(TraceSegmentPool, RecyclesReleasedSegments) {
  TraceSegmentPool Pool;
  TraceSegment *A = Pool.acquire();
  EXPECT_EQ(Pool.allocatedSegments(), 1u);
  A->Refs[A->Count++] = ObjectRef(16);
  Pool.release(A);
  EXPECT_EQ(Pool.pooledSegments(), 1u);
  // The recycled segment comes back reset, not reallocated.
  TraceSegment *B = Pool.acquire();
  EXPECT_EQ(B, A);
  EXPECT_EQ(B->Count, 0u);
  EXPECT_EQ(B->Below, nullptr);
  EXPECT_EQ(B->Above, nullptr);
  EXPECT_EQ(Pool.allocatedSegments(), 1u);
  EXPECT_EQ(Pool.pooledSegments(), 0u);
  EXPECT_EQ(Pool.acquires(), 2u);
  Pool.release(B);
}

TEST(TraceSegmentPool, AllocatesWhenFreeListIsDry) {
  TraceSegmentPool Pool;
  TraceSegment *A = Pool.acquire();
  TraceSegment *B = Pool.acquire();
  EXPECT_NE(A, B);
  EXPECT_EQ(Pool.allocatedSegments(), 2u);
  Pool.release(A);
  Pool.release(B);
  EXPECT_EQ(Pool.pooledSegments(), 2u);
}

TEST(SegmentedGrayStack, ExactLifoAcrossSegmentBoundaries) {
  TraceSegmentPool Pool;
  SegmentedGrayStack Stack(Pool);
  EXPECT_TRUE(Stack.empty());
  // Three segments' worth plus a partial — pops must reverse pushes
  // exactly, as the historical vector stack did.
  constexpr size_t N = 3 * TraceSegment::Capacity + 17;
  for (size_t I = 0; I < N; ++I)
    Stack.push(ObjectRef((I + 1) * 16));
  EXPECT_EQ(Stack.size(), N);
  EXPECT_EQ(Stack.segments(), 4u);
  for (size_t I = N; I != 0; --I)
    EXPECT_EQ(Stack.pop(), ObjectRef(I * 16));
  EXPECT_TRUE(Stack.empty());
  EXPECT_EQ(Stack.segments(), 0u);
}

TEST(SegmentedGrayStack, BoundaryOscillationDoesNotChurnThePool) {
  TraceSegmentPool Pool;
  SegmentedGrayStack Stack(Pool);
  // Fill exactly one segment, then oscillate push/pop across its boundary:
  // the stack's spare-segment cache must absorb this without a pool
  // round-trip per operation.
  for (size_t I = 0; I < TraceSegment::Capacity; ++I)
    Stack.push(ObjectRef((I + 1) * 16));
  uint64_t AcquiresBefore = Pool.acquires();
  for (int I = 0; I < 1000; ++I) {
    Stack.push(ObjectRef(16));
    EXPECT_EQ(Stack.pop(), ObjectRef(16));
  }
  // One acquire to create the second segment the first push needs; the
  // spare then serves every later oscillation.
  EXPECT_LE(Pool.acquires() - AcquiresBefore, 1u);
}

TEST(SegmentedGrayStack, DetachBottomMovesOldestSegmentByIdentity) {
  TraceSegmentPool Pool;
  SegmentedGrayStack Stack(Pool);
  // Nothing to detach while a single segment holds everything: the active
  // top segment is never given away.
  Stack.push(ObjectRef(16));
  EXPECT_EQ(Stack.detachBottom(), nullptr);

  constexpr size_t N = 2 * TraceSegment::Capacity + 5;
  for (size_t I = 1; I < N; ++I)
    Stack.push(ObjectRef((I + 1) * 16));
  ASSERT_EQ(Stack.segments(), 3u);

  TraceSegment *Bottom = Stack.detachBottom();
  ASSERT_NE(Bottom, nullptr);
  // The bottom segment holds the OLDEST refs — pushes 1..Capacity.
  EXPECT_EQ(Bottom->Count, TraceSegment::Capacity);
  EXPECT_EQ(Bottom->Refs[0], ObjectRef(16));
  EXPECT_EQ(Stack.segments(), 2u);
  EXPECT_EQ(Stack.size(), N - TraceSegment::Capacity);

  // The remaining stack still pops in exact LIFO order.
  EXPECT_EQ(Stack.pop(), ObjectRef(N * 16));
  Pool.release(Bottom);
}

TEST(SegmentedGrayStack, AttachSegmentIsPoppedNext) {
  TraceSegmentPool Pool;
  SegmentedGrayStack Stack(Pool);
  Stack.push(ObjectRef(1 * 16));

  TraceSegment *S = Pool.acquire();
  S->Refs[S->Count++] = ObjectRef(2 * 16);
  S->Refs[S->Count++] = ObjectRef(3 * 16);
  Stack.attachSegment(S);
  EXPECT_EQ(Stack.size(), 3u);

  // Attached (stolen) refs come off first, then the original content.
  EXPECT_EQ(Stack.pop(), ObjectRef(3 * 16));
  EXPECT_EQ(Stack.pop(), ObjectRef(2 * 16));
  EXPECT_EQ(Stack.pop(), ObjectRef(1 * 16));
  EXPECT_TRUE(Stack.empty());
}

TEST(SegmentedGrayStack, ClearReturnsEverySegmentToThePool) {
  TraceSegmentPool Pool;
  {
    SegmentedGrayStack Stack(Pool);
    for (size_t I = 0; I < 5 * TraceSegment::Capacity; ++I)
      Stack.push(ObjectRef(16));
    Stack.clear();
    EXPECT_TRUE(Stack.empty());
    EXPECT_EQ(Pool.allocatedSegments(), Pool.pooledSegments());
    // Reusable after clear.
    Stack.push(ObjectRef(32));
    EXPECT_EQ(Stack.pop(), ObjectRef(32));
  } // destructor clears again — every segment must be back in the pool
  EXPECT_EQ(Pool.allocatedSegments(), Pool.pooledSegments());
}

} // namespace

//===- tests/gc/CycleStatsTest.cpp -----------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "gc/CycleStats.h"

using namespace gengc;

namespace {

GcRunStats sampleStats() {
  GcRunStats S;
  CycleStats P1;
  P1.Kind = CycleKind::Partial;
  P1.DurationNanos = 1000;
  P1.ObjectsFreed = 90;
  P1.YoungSurvivors = 10;
  P1.BytesFreed = 900;
  P1.YoungSurvivorBytes = 100;
  CycleStats P2 = P1;
  P2.DurationNanos = 3000;
  P2.ObjectsFreed = 70;
  P2.YoungSurvivors = 30;
  P2.BytesFreed = 700;
  P2.YoungSurvivorBytes = 300;
  CycleStats F;
  F.Kind = CycleKind::Full;
  F.DurationNanos = 10000;
  F.ObjectsFreed = 50;
  F.LiveObjectsAfter = 150;
  S.Cycles = {P1, P2, F};
  S.GcActiveNanos = 14000;
  return S;
}

TEST(CycleStats, KindNames) {
  EXPECT_STREQ(cycleKindName(CycleKind::Partial), "partial");
  EXPECT_STREQ(cycleKindName(CycleKind::Full), "full");
  EXPECT_STREQ(cycleKindName(CycleKind::NonGenerational),
               "non-generational");
}

TEST(CycleStats, CountPerKind) {
  GcRunStats S = sampleStats();
  EXPECT_EQ(S.count(CycleKind::Partial), 2u);
  EXPECT_EQ(S.count(CycleKind::Full), 1u);
  EXPECT_EQ(S.count(CycleKind::NonGenerational), 0u);
}

TEST(CycleStats, TotalsPerKind) {
  GcRunStats S = sampleStats();
  EXPECT_EQ(S.total(CycleKind::Partial, &CycleStats::ObjectsFreed), 160u);
  EXPECT_EQ(S.total(CycleKind::Full, &CycleStats::ObjectsFreed), 50u);
  EXPECT_EQ(S.totalAll(&CycleStats::ObjectsFreed), 210u);
}

TEST(CycleStats, MeanPerKind) {
  GcRunStats S = sampleStats();
  EXPECT_DOUBLE_EQ(S.mean(CycleKind::Partial, &CycleStats::DurationNanos),
                   2000.0);
  EXPECT_DOUBLE_EQ(S.mean(CycleKind::Full, &CycleStats::DurationNanos),
                   10000.0);
  EXPECT_DOUBLE_EQ(
      S.mean(CycleKind::NonGenerational, &CycleStats::DurationNanos), 0.0);
}

TEST(CycleStats, PercentActive) {
  GcRunStats S = sampleStats();
  EXPECT_DOUBLE_EQ(S.percentActive(28000), 50.0);
  EXPECT_DOUBLE_EQ(S.percentActive(0), 0.0);
}

TEST(CycleStats, PercentFreedPartial) {
  GcRunStats S = sampleStats();
  // freed 160 of (160 freed + 40 survivors).
  EXPECT_DOUBLE_EQ(S.percentFreedPartialObjects(), 80.0);
  EXPECT_DOUBLE_EQ(S.percentFreedPartialBytes(), 80.0);
}

TEST(CycleStats, PercentFreedWholeHeap) {
  GcRunStats S = sampleStats();
  // full: freed 50 of (50 + 150 live).
  EXPECT_DOUBLE_EQ(S.percentFreedWholeHeap(CycleKind::Full), 25.0);
}

TEST(CycleStats, EmptyStatsYieldZeroes) {
  GcRunStats S;
  EXPECT_EQ(S.count(CycleKind::Partial), 0u);
  EXPECT_DOUBLE_EQ(S.percentFreedPartialObjects(), 0.0);
  EXPECT_DOUBLE_EQ(S.percentFreedWholeHeap(CycleKind::Full), 0.0);
  EXPECT_DOUBLE_EQ(S.percentActive(1000), 0.0);
}

} // namespace

//===- tests/gc/CardRaceTest.cpp -------------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
//
// The Section 7.2 race, tested head on: the collector clears card marks
// with the three-step protocol (clear, scan, re-mark) while a mutator
// concurrently stores inter-generational pointers with the two-step order
// (store, then mark).  The paper's claim: "if a new inter-generational
// pointer is created, then the card mark will be properly set and this
// pointer will be noticed during subsequent collections."  We hammer the
// interleaving and assert no young object referenced from the old
// generation is ever reclaimed.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <thread>

#include "core/Runtime.h"
#include "support/Random.h"

using namespace gengc;

namespace {

RuntimeConfig agingConfig() {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 16 << 20;
  Config.Heap.CardBytes = 16;
  Config.Choice = CollectorChoice::Generational;
  Config.Collector.Aging = true;
  Config.Collector.OldestAge = 3;
  // Aggressive autonomous collection.
  Config.Collector.Trigger.YoungBytes = 256 << 10;
  Config.Collector.Trigger.InitialSoftBytes = 1 << 20;
  Config.Collector.PollMicros = 50;
  return Config;
}

/// A mutator thread that continuously creates inter-generational pointers
/// into a set of tenured parents and verifies its referents survive.
void racerThread(Runtime &RT, const std::vector<ObjectRef> &Parents,
                 unsigned Idx, uint64_t Ops) {
  Rng Rand(0xCA4D + Idx);
  auto M = RT.attachMutator();
  // Each parent slot this thread owns holds the only reference to its
  // current young payload.
  std::vector<ObjectRef> Payloads(Parents.size(), NullRef);
  for (uint64_t Op = 0; Op < Ops; ++Op) {
    M->cooperate();
    size_t P = size_t(Rand.nextBelow(Parents.size()));
    // Verify the previous payload survived every collection so far.
    ObjectRef Expected = Payloads[P];
    ObjectRef InHeap = M->readRef(Parents[P], Idx);
    ASSERT_EQ(InHeap, Expected)
        << "slot lost its value — an update vanished";
    if (Expected != NullRef) {
      ASSERT_NE(RT.heap().loadColor(Expected), Color::Blue)
          << "young object referenced only from the old generation was "
             "reclaimed (the Section 7.2 race fired)";
    }
    // Install a fresh young payload through the racing barrier.
    ObjectRef Fresh = M->allocate(1, uint32_t(Rand.nextInRange(8, 48)));
    M->writeRef(Parents[P], Idx, Fresh);
    Payloads[P] = Fresh;
    // Churn to keep the collector busy.
    M->allocate(1, 24);
  }
  M->popRoots(M->numRoots());
}

class CardRaceTest : public ::testing::TestWithParam<bool> {};

TEST_P(CardRaceTest, InterGenPointersSurviveConcurrentClearCards) {
  bool Aging = GetParam();
  RuntimeConfig Config = agingConfig();
  Config.Collector.Aging = Aging;
  Runtime RT(Config);

  // Tenure a parent array: each racer thread uses its own slot index.
  constexpr unsigned NumParents = 64, NumThreads = 2;
  std::vector<ObjectRef> Parents;
  {
    auto M = RT.attachMutator();
    for (unsigned I = 0; I < NumParents; ++I) {
      ObjectRef P = M->allocate(NumThreads, 8);
      M->pushRoot(P);
      RT.globalRoots().addRoot(P);
      Parents.push_back(P);
    }
    // Let them tenure past any aging threshold.
    for (int I = 0; I < 4; ++I)
      RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
    for (ObjectRef P : Parents)
      ASSERT_EQ(RT.heap().loadColor(P), Color::Black);
    M->popRoots(M->numRoots());
  }

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back(
        [&RT, &Parents, T] { racerThread(RT, Parents, T, 60000); });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_GT(RT.collector().completedCycles(), 3u)
      << "the race needs real collections to be exercised";
}

INSTANTIATE_TEST_SUITE_P(SimpleAndAging, CardRaceTest, ::testing::Bool(),
                         [](const auto &Info) {
                           return Info.param ? "Aging" : "Simple";
                         });

} // namespace

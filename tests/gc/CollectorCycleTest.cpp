//===- tests/gc/CollectorCycleTest.cpp - End-to-end cycle tests ------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
//
// End-to-end collection cycles through the public Runtime API: liveness
// (reachable objects survive), completeness (garbage is reclaimed), and
// the generational promotion behavior of Sections 3-5.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "core/Runtime.h"

using namespace gengc;

namespace {

RuntimeConfig smallConfig(CollectorChoice Choice) {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 8ull << 20;
  Config.Heap.CardBytes = 16;
  Config.Choice = Choice;
  // Disable spontaneous trigger firing so tests control cycles (the young
  // threshold is made huge and the soft limit starts at the maximum).
  Config.Collector.Trigger.YoungBytes = 1ull << 40;
  Config.Collector.Trigger.InitialSoftBytes = 8ull << 20;
  Config.Collector.Trigger.FullFraction = 1.1;
  return Config;
}

/// Builds a linked list of \p Length nodes, returning the head (rooted).
ObjectRef buildList(Mutator &M, unsigned Length) {
  ObjectRef Head = NullRef;
  size_t Slot = M.pushRoot(NullRef);
  for (unsigned I = 0; I < Length; ++I) {
    ObjectRef Node = M.allocate(/*RefSlots=*/1, /*DataBytes=*/8);
    M.writeRef(Node, 0, Head);
    Head = Node;
    M.setRoot(Slot, Head);
  }
  return Head;
}

/// Counts the nodes reachable from \p Head and checks none is blue.
unsigned countList(Runtime &RT, Mutator &M, ObjectRef Head) {
  unsigned Count = 0;
  for (ObjectRef Node = Head; Node != NullRef; Node = M.readRef(Node, 0)) {
    EXPECT_NE(RT.heap().loadColor(Node), Color::Blue)
        << "reachable node was reclaimed";
    ++Count;
  }
  return Count;
}

class CollectorCycleTest
    : public ::testing::TestWithParam<CollectorChoice> {};

TEST_P(CollectorCycleTest, ReachableListSurvivesFullCollection) {
  Runtime RT(smallConfig(GetParam()));
  auto M = RT.attachMutator();
  ObjectRef Head = buildList(*M, 500);
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  EXPECT_EQ(countList(RT, *M, Head), 500u);
  M->popRoots(M->numRoots());
}

TEST_P(CollectorCycleTest, GarbageIsReclaimedWithinTwoFullCollections) {
  Runtime RT(smallConfig(GetParam()));
  auto M = RT.attachMutator();
  buildList(*M, 1000);
  M->popRoots(M->numRoots()); // drop the list
  uint64_t UsedBefore = RT.heap().usedBytes();
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  GcRunStats Stats = RT.gcStats();
  uint64_t Freed = Stats.totalAll(&CycleStats::ObjectsFreed);
  EXPECT_GE(Freed, 1000u);
  // Free cells return to the heap; used bytes must not have grown.
  EXPECT_LE(RT.heap().usedBytes(), UsedBefore);
}

TEST_P(CollectorCycleTest, DeepListSurvivesRepeatedCycles) {
  Runtime RT(smallConfig(GetParam()));
  auto M = RT.attachMutator();
  ObjectRef Head = buildList(*M, 5000);
  for (int I = 0; I < 4; ++I)
    RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  EXPECT_EQ(countList(RT, *M, Head), 5000u);
  M->popRoots(M->numRoots());
}

TEST_P(CollectorCycleTest, GlobalRootKeepsObjectAlive) {
  Runtime RT(smallConfig(GetParam()));
  auto M = RT.attachMutator();
  ObjectRef Obj = M->allocate(1, 16);
  RT.globalRoots().addRoot(Obj);
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  EXPECT_NE(RT.heap().loadColor(Obj), Color::Blue);
}

INSTANTIATE_TEST_SUITE_P(BothCollectors, CollectorCycleTest,
                         ::testing::Values(CollectorChoice::Generational,
                                           CollectorChoice::NonGenerational),
                         [](const auto &Info) {
                           return Info.param == CollectorChoice::Generational
                                      ? "Generational"
                                      : "NonGenerational";
                         });

TEST(GenerationalBehavior, PartialCollectionPromotesSurvivors) {
  Runtime RT(smallConfig(CollectorChoice::Generational));
  auto M = RT.attachMutator();
  ObjectRef Head = buildList(*M, 100);
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  // Simple promotion: every survivor of one collection is black = old.
  for (ObjectRef Node = Head; Node != NullRef; Node = M->readRef(Node, 0))
    EXPECT_EQ(RT.heap().loadColor(Node), Color::Black);
  M->popRoots(M->numRoots());
}

TEST(GenerationalBehavior, PartialCollectionDoesNotReclaimOldGarbage) {
  Runtime RT(smallConfig(CollectorChoice::Generational));
  auto M = RT.attachMutator();
  ObjectRef Head = buildList(*M, 200);
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  // Everything is old now; drop it and run another partial: old garbage
  // must NOT be reclaimed by a young collection...
  M->popRoots(M->numRoots());
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  for (ObjectRef Node = Head; Node != NullRef;) {
    EXPECT_EQ(RT.heap().loadColor(Node), Color::Black);
    Node = loadRefSlot(RT.heap(), Node, 0);
  }
  // ...but a full collection reclaims it.
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  EXPECT_EQ(RT.heap().loadColor(Head), Color::Blue);
}

TEST(GenerationalBehavior, InterGenerationalPointerKeepsYoungAlive) {
  Runtime RT(smallConfig(CollectorChoice::Generational));
  auto M = RT.attachMutator();

  // Make an old object.
  ObjectRef Old = M->allocate(1, 8);
  M->pushRoot(Old);
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  ASSERT_EQ(RT.heap().loadColor(Old), Color::Black);

  // Store a young object into it; keep no other reference to the young.
  ObjectRef Young = M->allocate(0, 8);
  M->writeRef(Old, 0, Young);

  // The young object is reachable only through the old one; the partial
  // collection must find it via the dirty card.
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  EXPECT_NE(RT.heap().loadColor(Young), Color::Blue);
  EXPECT_EQ(M->readRef(Old, 0), Young);

  M->popRoots(M->numRoots());
}

TEST(GenerationalBehavior, YoungGarbageDiesInPartialCollection) {
  Runtime RT(smallConfig(CollectorChoice::Generational));
  auto M = RT.attachMutator();
  std::vector<ObjectRef> Garbage;
  for (int I = 0; I < 300; ++I)
    Garbage.push_back(M->allocate(1, 16));
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  // Unreferenced young objects are reclaimed by the young collection.
  for (ObjectRef Ref : Garbage)
    EXPECT_EQ(RT.heap().loadColor(Ref), Color::Blue);
}

} // namespace

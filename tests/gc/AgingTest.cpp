//===- tests/gc/AgingTest.cpp ----------------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
//
// The Section 6 aging mechanism end to end: allocation age, per-cycle
// increments, tenuring at the threshold, card-mark persistence across
// collections, and full-collection behavior (Figures 4-6).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "core/Runtime.h"

using namespace gengc;

namespace {

RuntimeConfig agingConfig(uint8_t OldestAge) {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 8 << 20;
  Config.Heap.CardBytes = 16;
  Config.Choice = CollectorChoice::Generational;
  Config.Collector.Aging = true;
  Config.Collector.OldestAge = OldestAge;
  Config.Collector.Trigger.YoungBytes = 1ull << 40;
  Config.Collector.Trigger.InitialSoftBytes = 8 << 20;
  Config.Collector.Trigger.FullFraction = 1.1;
  return Config;
}

TEST(Aging, UsesAgingBarrier) {
  Runtime RT(agingConfig(4));
  EXPECT_EQ(RT.state().Barrier.load(), BarrierKind::Aging);
}

TEST(Aging, ObjectsAllocatedWithAgeOne) {
  Runtime RT(agingConfig(4));
  auto M = RT.attachMutator();
  ObjectRef Obj = M->allocate(1, 8);
  EXPECT_EQ(RT.heap().ages().ageOf(Obj), 1);
}

TEST(Aging, SurvivorStaysYoungUntilThreshold) {
  Runtime RT(agingConfig(4));
  auto M = RT.attachMutator();
  ObjectRef Obj = M->allocate(1, 8);
  M->pushRoot(Obj);
  // Each survived collection increments the age and recolors the object to
  // the allocation color (Figure 5) — it stays young while age < 4.
  for (uint8_t Age = 2; Age <= 4; ++Age) {
    RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
    EXPECT_EQ(RT.heap().ages().ageOf(Obj), Age);
    if (Age < 4) {
      EXPECT_TRUE(isToggleColor(RT.heap().loadColor(Obj)))
          << "age " << unsigned(Age) << " is still young";
    }
  }
  // At the threshold, the next trace blackens it and sweep leaves it black:
  // tenured.
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  EXPECT_EQ(RT.heap().ages().ageOf(Obj), 4);
  EXPECT_EQ(RT.heap().loadColor(Obj), Color::Black);
  M->popRoots(1);
}

TEST(Aging, YoungGarbageDiesAtAnyAge) {
  Runtime RT(agingConfig(6));
  auto M = RT.attachMutator();
  ObjectRef Obj = M->allocate(1, 8);
  M->pushRoot(Obj);
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  ASSERT_EQ(RT.heap().ages().ageOf(Obj), 3);
  M->popRoots(1); // dies at age 3, still young
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  EXPECT_EQ(RT.heap().loadColor(Obj), Color::Blue)
      << "young garbage is reclaimed by partial collections";
}

TEST(Aging, TenuredGarbageNeedsFullCollection) {
  Runtime RT(agingConfig(2));
  auto M = RT.attachMutator();
  ObjectRef Obj = M->allocate(1, 8);
  M->pushRoot(Obj);
  // Threshold 2: age reaches 2 after the first survived collection, and
  // the second collection's sweep leaves the traced object black.
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  ASSERT_EQ(RT.heap().loadColor(Obj), Color::Black) << "tenured at 2";
  M->popRoots(1);
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  EXPECT_EQ(RT.heap().loadColor(Obj), Color::Black)
      << "partials do not reclaim tenured garbage";
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  EXPECT_EQ(RT.heap().loadColor(Obj), Color::Blue);
}

TEST(Aging, InterGenPointerCardStaysDirtyWhileSonIsYoung) {
  Runtime RT(agingConfig(4));
  auto M = RT.attachMutator();
  // Tenure a parent.
  ObjectRef Old = M->allocate(1, 8);
  M->pushRoot(Old);
  for (int I = 0; I < 4; ++I)
    RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  ASSERT_EQ(RT.heap().loadColor(Old), Color::Black);

  // Point it at a young object; across several partials the young son
  // stays protected even though it is not tenured yet.
  ObjectRef Young = M->allocate(0, 8);
  M->writeRef(Old, 0, Young);
  for (int I = 0; I < 2; ++I) {
    RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
    EXPECT_NE(RT.heap().loadColor(Young), Color::Blue) << "cycle " << I;
    EXPECT_LT(RT.heap().ages().ageOf(Young), 4);
  }
  // The Section 7.2 protocol re-marked the card each time.
  GcRunStats S = RT.gcStats();
  EXPECT_GE(S.Cycles.back().CardsRemarked, 1u);
  M->popRoots(M->numRoots());
}

TEST(Aging, CardClearedOnceSonTenures) {
  Runtime RT(agingConfig(2));
  auto M = RT.attachMutator();
  ObjectRef Old = M->allocate(1, 8);
  M->pushRoot(Old);
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  ASSERT_EQ(RT.heap().loadColor(Old), Color::Black);

  ObjectRef Young = M->allocate(0, 8);
  M->writeRef(Old, 0, Young);
  // Son tenures at threshold 2 after two collections (age 2, then kept
  // black by the following sweep)...
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  ASSERT_EQ(RT.heap().loadColor(Young), Color::Black);
  // ...so the following partial finds no young referent and clears the
  // card for good.
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  EXPECT_EQ(RT.heap().cards().countDirty(), 0u);
  M->popRoots(M->numRoots());
}

TEST(Aging, FullCollectionPreservesDirtyCards) {
  Runtime RT(agingConfig(6));
  auto M = RT.attachMutator();
  // Tenure a parent (6 survived collections).
  ObjectRef Old = M->allocate(1, 8);
  M->pushRoot(Old);
  for (int I = 0; I < 6; ++I)
    RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  ASSERT_EQ(RT.heap().loadColor(Old), Color::Black);

  ObjectRef Young = M->allocate(0, 8);
  M->writeRef(Old, 0, Young);
  ASSERT_GT(RT.heap().cards().countDirty(), 0u);

  // A full collection must NOT clear the cards (Figure 6): the young son
  // stays young and its inter-generational pointer stays relevant.
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  EXPECT_NE(RT.heap().loadColor(Young), Color::Blue);
  EXPECT_GT(RT.heap().cards().countDirty(), 0u);

  // And the following partial still protects the son through the card.
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  EXPECT_NE(RT.heap().loadColor(Young), Color::Blue);
  M->popRoots(M->numRoots());
}

TEST(Aging, FullCollectionResetsTenureOfDeadAndKeepsLive) {
  Runtime RT(agingConfig(2));
  auto M = RT.attachMutator();
  ObjectRef Live = M->allocate(1, 8);
  M->pushRoot(Live);
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  ASSERT_EQ(RT.heap().loadColor(Live), Color::Black);
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  // Still reachable: re-tenured (black) with its threshold age intact.
  EXPECT_EQ(RT.heap().loadColor(Live), Color::Black);
  EXPECT_EQ(RT.heap().ages().ageOf(Live), 2);
  M->popRoots(1);
}

TEST(AgingDeathTest, ThresholdBelowTwoRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        RuntimeConfig Config = agingConfig(1);
        Runtime RT(Config);
      },
      "aging threshold");
}

} // namespace

//===- tests/gc/CardSummaryStressTest.cpp ----------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// Race stress for the two-level card table: mutator threads hammer
// markCard (card byte, then summary byte — the write barrier's two plain
// stores) while a collector thread runs the chunk-level Section 7.2
// protocol (acquiring summary clear, hint-guided card walk, per-card
// acquiring clear, occasional re-mark).  Registered in both the plain
// test_gc binary and the ThreadSanitizer gengc_tsan suite; the TSan run is
// the regression gate for the summary level's memory-ordering choices.
//
// The asserted property is the table's quiescent invariant: once all
// threads join, every dirty card sits under a set summary byte.  During
// the run the protocol's own step-1 window (summary cleared, chunk cards
// not yet consumed) transiently breaks it by design — only the collector
// can observe that window, and it is the one reading the cards.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "heap/CardTable.h"
#include "support/Random.h"

using namespace gengc;

namespace {

TEST(CardSummaryStress, ConcurrentMarkVsChunkProtocolKeepsInvariant) {
  constexpr uint64_t HeapBytes = 4 << 20;
  CardTable T(HeapBytes, 16);
  constexpr unsigned Markers = 3;
  constexpr int MarkRounds = 60000;
  std::atomic<bool> Stop{false};

  std::vector<std::thread> Threads;
  for (unsigned M = 0; M < Markers; ++M)
    Threads.emplace_back([&, M] {
      Rng Rand(0xBEEF + M);
      for (int I = 0; I < MarkRounds; ++I) {
        // Concentrate on a narrow window so marks and clears really
        // collide, with a tail of scattered marks for coverage.
        uint64_t Offset = I % 8 ? Rand.nextBelow(64 << 10)
                                : Rand.nextBelow(HeapBytes);
        T.markCard(Offset);
      }
    });

  std::thread Collector([&] {
    Rng Rand(0xC01D);
    while (!Stop.load(std::memory_order_acquire)) {
      for (size_t Chunk = 0; Chunk < T.numSummaryChunks(); ++Chunk) {
        if (!T.isSummaryDirty(Chunk))
          continue;
        T.clearSummaryAcquire(Chunk);
        T.forEachDirtyIndexInRange(
            T.chunkCardBegin(Chunk), T.chunkCardEnd(Chunk), [&](size_t Card) {
              T.clearCard(Card);
              // Sometimes the scan decides the card still guards an
              // inter-generational pointer: step 3 re-marks both levels.
              if (Rand.nextBelow(4) == 0)
                T.markCardIndex(Card);
            });
      }
    }
  });

  for (std::thread &Th : Threads)
    Th.join();
  Stop.store(true, std::memory_order_release);
  Collector.join();

  for (size_t Card = 0; Card < T.numCards(); ++Card) {
    if (T.isDirty(Card)) {
      EXPECT_TRUE(T.isSummaryDirty(T.summaryChunkFor(Card)))
          << "dirty card " << Card << " lost its summary byte";
    }
  }
}

} // namespace

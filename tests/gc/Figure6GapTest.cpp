//===- tests/gc/Figure6GapTest.cpp -----------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
//
// Regression test for the gap we found in the paper's Figure 6 pseudo-code
// (see DESIGN.md §9 and Tracer::setAgingThreshold): a young parent on a
// dirty card is cleared without re-marking; the same cycle tenures the
// parent and demotes its son, leaving an old->young pointer on a clean
// card, and the next partial collection reclaims the live son.
//
// The deterministic construction below reproduces the exact scenario that
// property-based testing first caught (aging, threshold 2).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "core/Runtime.h"

using namespace gengc;

namespace {

RuntimeConfig agingConfig(uint8_t OldestAge) {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 8 << 20;
  Config.Heap.CardBytes = 16;
  Config.Choice = CollectorChoice::Generational;
  Config.Collector.Aging = true;
  Config.Collector.OldestAge = OldestAge;
  Config.Collector.Trigger.YoungBytes = 1ull << 40;
  Config.Collector.Trigger.InitialSoftBytes = 8 << 20;
  Config.Collector.Trigger.FullFraction = 1.1;
  return Config;
}

TEST(Figure6Gap, ParentTenuredWhileSonDemotedKeepsSonAlive) {
  Runtime RT(agingConfig(2));
  auto M = RT.attachMutator();

  // Parent survives one collection: age 2 (== threshold) but still
  // young-colored — it will be *tenured by the next cycle it survives*.
  ObjectRef Parent = M->allocate(1, 8);
  size_t ParentSlot = M->pushRoot(Parent);
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  ASSERT_EQ(RT.heap().ages().ageOf(Parent), 2);
  ASSERT_TRUE(isToggleColor(RT.heap().loadColor(Parent)))
      << "parent is still young-colored (the tenuring gap)";

  // Fresh son (age 1), referenced ONLY from the parent; the store dirties
  // the parent's card while the parent is young.
  ObjectRef Son = M->allocate(0, 8);
  M->writeRef(Parent, 0, Son);

  // This cycle: ClearCards clears the parent's card (young parent, no
  // re-mark per Figure 6); the trace blackens both; the sweep TENURES the
  // parent (age == threshold) and DEMOTES the son (age 1 -> 2, young
  // color).  Without the fix the old->young pointer now rests on a clean
  // card.
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  ASSERT_EQ(RT.heap().loadColor(Parent), Color::Black) << "parent tenured";
  ASSERT_NE(RT.heap().loadColor(Son), Color::Black) << "son stayed young";
  ASSERT_NE(RT.heap().loadColor(Son), Color::Blue);

  // The next partial must still find the son through a dirty card — this
  // is the collection that reclaimed it before the fix.
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  EXPECT_NE(RT.heap().loadColor(Son), Color::Blue)
      << "Figure 6 gap: live son reclaimed after its parent's promotion";
  EXPECT_EQ(M->readRef(Parent, 0), Son);

  M->popRoots(M->numRoots() - ParentSlot);
}

TEST(Figure6Gap, HoldsAcrossThresholds) {
  for (uint8_t Threshold : {uint8_t(3), uint8_t(4)}) {
    Runtime RT(agingConfig(Threshold));
    auto M = RT.attachMutator();

    ObjectRef Parent = M->allocate(1, 8);
    M->pushRoot(Parent);
    // Bring the parent to age == threshold while young-colored.
    for (uint8_t Age = 2; Age <= Threshold; ++Age)
      RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
    ASSERT_EQ(RT.heap().ages().ageOf(Parent), Threshold);
    ASSERT_TRUE(isToggleColor(RT.heap().loadColor(Parent)));

    ObjectRef Son = M->allocate(0, 8);
    M->writeRef(Parent, 0, Son);
    RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
    ASSERT_EQ(RT.heap().loadColor(Parent), Color::Black);

    // Several further partials: the son must survive until it tenures on
    // its own.
    for (int I = 0; I < Threshold + 1; ++I) {
      RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
      ASSERT_NE(RT.heap().loadColor(Son), Color::Blue)
          << "threshold " << unsigned(Threshold) << " cycle " << I;
    }
    M->popRoots(M->numRoots());
  }
}

TEST(Figure6Gap, ChainOfDemotedSonsSurvives) {
  Runtime RT(agingConfig(2));
  auto M = RT.attachMutator();

  ObjectRef Parent = M->allocate(1, 8);
  M->pushRoot(Parent);
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);

  // A whole chain of young objects hanging off the to-be-tenured parent.
  ObjectRef S1 = M->allocate(1, 8), S2 = M->allocate(1, 8),
            S3 = M->allocate(0, 8);
  M->writeRef(S2, 0, S3);
  M->writeRef(S1, 0, S2);
  M->writeRef(Parent, 0, S1);

  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  EXPECT_NE(RT.heap().loadColor(S1), Color::Blue);
  EXPECT_NE(RT.heap().loadColor(S2), Color::Blue);
  EXPECT_NE(RT.heap().loadColor(S3), Color::Blue);
  M->popRoots(M->numRoots());
}

} // namespace

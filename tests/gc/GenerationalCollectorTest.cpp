//===- tests/gc/GenerationalCollectorTest.cpp -------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
//
// The generational collector's defining behaviors beyond the end-to-end
// cycle tests: card-driven root discovery, full-collection demotion, the
// ClearCards/toggle ordering, and the statistics the benches consume.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "core/Runtime.h"

using namespace gengc;

namespace {

RuntimeConfig genConfig(uint32_t CardBytes = 16) {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 8 << 20;
  Config.Heap.CardBytes = CardBytes;
  Config.Choice = CollectorChoice::Generational;
  Config.Collector.Trigger.YoungBytes = 1ull << 40;
  Config.Collector.Trigger.InitialSoftBytes = 8 << 20;
  Config.Collector.Trigger.FullFraction = 1.1;
  return Config;
}

/// Makes an old (black) object holding one ref slot.
ObjectRef makeOld(Runtime &RT, Mutator &M) {
  ObjectRef Obj = M.allocate(2, 8);
  size_t Slot = M.pushRoot(Obj);
  RT.collector().collectSyncCooperating(CycleRequest::Partial, M);
  EXPECT_EQ(RT.heap().loadColor(Obj), Color::Black);
  M.popRoots(M.numRoots() - Slot);
  return Obj;
}

TEST(GenerationalCollector, CardsAreClearedByPartialCollection) {
  Runtime RT(genConfig());
  auto M = RT.attachMutator();
  ObjectRef A = M->allocate(2, 8);
  ObjectRef B = M->allocate(0, 8);
  M->writeRef(A, 0, B);
  EXPECT_GT(RT.heap().cards().countDirty(), 0u);
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  EXPECT_EQ(RT.heap().cards().countDirty(), 0u);
}

TEST(GenerationalCollector, DirtyOldObjectCountsAsInterGenScan) {
  Runtime RT(genConfig());
  auto M = RT.attachMutator();
  ObjectRef Old = makeOld(RT, *M);
  ObjectRef Young = M->allocate(0, 8);
  M->writeRef(Old, 0, Young);
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  GcRunStats S = RT.gcStats();
  const CycleStats &Last = S.Cycles.back();
  EXPECT_GE(Last.OldObjectsScanned, 1u);
  EXPECT_GE(Last.DirtyCardsAtStart, 1u);
  EXPECT_GT(Last.CardScanAreaBytes, 0u);
}

TEST(GenerationalCollector, ChainOfYoungReachableViaOldSurvives) {
  Runtime RT(genConfig());
  auto M = RT.attachMutator();
  ObjectRef Old = makeOld(RT, *M);
  // Build young chain Old -> Y1 -> Y2 -> Y3.
  ObjectRef Y1 = M->allocate(1, 8), Y2 = M->allocate(1, 8),
            Y3 = M->allocate(0, 8);
  M->writeRef(Y2, 0, Y3);
  M->writeRef(Y1, 0, Y2);
  M->writeRef(Old, 0, Y1);
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  EXPECT_EQ(RT.heap().loadColor(Y1), Color::Black);
  EXPECT_EQ(RT.heap().loadColor(Y2), Color::Black);
  EXPECT_EQ(RT.heap().loadColor(Y3), Color::Black);
}

TEST(GenerationalCollector, SeveredInterGenPointerLetsYoungDie) {
  Runtime RT(genConfig());
  auto M = RT.attachMutator();
  ObjectRef Old = makeOld(RT, *M);
  ObjectRef Young = M->allocate(0, 8);
  M->writeRef(Old, 0, Young);
  M->writeRef(Old, 0, NullRef); // severed before any collection
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  EXPECT_EQ(RT.heap().loadColor(Young), Color::Blue);
}

TEST(GenerationalCollector, FullCollectionDemotesEverything) {
  Runtime RT(genConfig());
  auto M = RT.attachMutator();
  ObjectRef Kept = M->allocate(1, 8);
  M->pushRoot(Kept);
  ObjectRef Dropped = M->allocate(1, 8);
  M->pushRoot(Dropped);
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  ASSERT_EQ(RT.heap().loadColor(Dropped), Color::Black);
  M->popRoots(1); // drop Dropped, keep Kept
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  EXPECT_EQ(RT.heap().loadColor(Dropped), Color::Blue)
      << "full collections reclaim old garbage";
  EXPECT_EQ(RT.heap().loadColor(Kept), Color::Black)
      << "live old objects are re-tenured by the full trace";
  M->popRoots(1);
}

TEST(GenerationalCollector, FullCollectionClearsCards) {
  Runtime RT(genConfig());
  auto M = RT.attachMutator();
  ObjectRef A = M->allocate(2, 8);
  ObjectRef B = M->allocate(0, 8);
  M->pushRoot(A);
  M->writeRef(A, 0, B);
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  EXPECT_EQ(RT.heap().cards().countDirty(), 0u);
  M->popRoots(1);
}

TEST(GenerationalCollector, ToggleAlternates) {
  Runtime RT(genConfig());
  auto M = RT.attachMutator();
  Color First = RT.state().allocationColor();
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  EXPECT_EQ(RT.state().allocationColor(), otherToggleColor(First));
}

TEST(GenerationalCollector, YoungSurvivorStatsArePlausible) {
  Runtime RT(genConfig());
  auto M = RT.attachMutator();
  constexpr unsigned Kept = 50, Dead = 500;
  for (unsigned I = 0; I < Kept; ++I)
    M->pushRoot(M->allocate(1, 16));
  for (unsigned I = 0; I < Dead; ++I)
    M->allocate(1, 16);
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  GcRunStats S = RT.gcStats();
  const CycleStats &Last = S.Cycles.back();
  EXPECT_GE(Last.YoungSurvivors, Kept);
  EXPECT_LE(Last.YoungSurvivors, Kept + 50) << "few spurious survivors";
  EXPECT_GE(Last.ObjectsFreed, Dead);
  M->popRoots(M->numRoots());
}

TEST(GenerationalCollector, WorksAcrossCardSizes) {
  for (uint32_t CardBytes : {16u, 128u, 4096u}) {
    Runtime RT(genConfig(CardBytes));
    auto M = RT.attachMutator();
    ObjectRef Old = makeOld(RT, *M);
    ObjectRef Young = M->allocate(0, 8);
    M->writeRef(Old, 0, Young);
    RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
    EXPECT_NE(RT.heap().loadColor(Young), Color::Blue)
        << "card size " << CardBytes;
  }
}

TEST(GenerationalCollector, ObjectCreatedDuringIdleIsYoung) {
  Runtime RT(genConfig());
  auto M = RT.attachMutator();
  ObjectRef Obj = M->allocate(1, 8);
  EXPECT_EQ(RT.heap().loadColor(Obj), RT.state().allocationColor());
  EXPECT_TRUE(isToggleColor(RT.heap().loadColor(Obj)));
}

TEST(GenerationalCollector, LargeObjectsParticipateInGenerations) {
  Runtime RT(genConfig());
  auto M = RT.attachMutator();
  ObjectRef Big = M->allocate(4, 100 << 10);
  M->pushRoot(Big);
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  EXPECT_EQ(RT.heap().loadColor(Big), Color::Black) << "promoted";
  M->popRoots(1);
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  EXPECT_EQ(RT.heap().loadColor(Big), Color::Black)
      << "old large objects survive partials";
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  EXPECT_EQ(RT.heap().loadColor(Big), Color::Blue)
      << "full collection reclaims the dead large object";
}

} // namespace

//===- tests/gc/LazySweepTest.cpp ------------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
//
// SweepPolicy::Lazy: the publish/claim protocol (every published block is
// claimed exactly once, however many threads race), the epoch invariant
// across a color toggle (the verifier must catch a stale publish), residue
// completion on an idle heap (the collector's drip alone must finish
// reclamation), mutator-side inline sweeping, and a many-mutator churn with
// the heap verifier armed at every phase boundary.
//
// SweepPolicy is deliberately reached through the GenGc.h umbrella — the
// policy is embedder-facing API and must be visible there.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "core/GenGc.h"
#include "gc/HeapVerifier.h"
#include "gc/LazySweep.h"

using namespace gengc;

namespace {

/// Manual-cycle lazy runtime: triggers disabled, idle drip suppressed (the
/// collector polls once a second, so tests control exactly who sweeps).
RuntimeConfig lazyManualConfig() {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 32ull << 20;
  Config.Choice = CollectorChoice::NonGenerational;
  Config.Collector.Sweep = SweepPolicy::Lazy;
  Config.Collector.Trigger.YoungBytes = 1ull << 40;
  Config.Collector.Trigger.InitialSoftBytes = 1ull << 40;
  Config.Collector.Trigger.FullFraction = 100.0;
  Config.Collector.PollMicros = 1000 * 1000;
  return Config;
}

/// Allocates \p Count objects per size mix and drops them all on the floor.
void makeGarbage(Mutator &M, int Count) {
  for (int I = 0; I < Count; ++I) {
    M.allocate(0, 8);    // 16-byte class
    M.allocate(2, 24);   // 48-byte class
    M.allocate(0, 200);  // larger class
    if (I % 64 == 0)
      M.cooperate();
  }
}

TEST(LazySweep, ConfigValidationAndNames) {
  EXPECT_STREQ(sweepPolicyName(SweepPolicy::Eager), "eager");
  EXPECT_STREQ(sweepPolicyName(SweepPolicy::Lazy), "lazy");

  RuntimeConfig Config = lazyManualConfig();
  EXPECT_TRUE(Config.validate().empty()) << Config.validate();
  Config.Collector.Sweep = SweepPolicy(7);
  EXPECT_FALSE(Config.validate().empty());
}

TEST(LazySweep, PublishedBlocksClaimedExactlyOnce) {
  Runtime RT(lazyManualConfig());
  Heap &H = RT.heap();
  {
    auto M = RT.attachMutator();
    makeGarbage(*M, 4000);
    RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  }
  RT.collector().stop();

  uint64_t Published = H.needsSweepBlockCount();
  ASSERT_GT(Published, 0u);

  // Race the claim stacks: every published block must be handed out to
  // exactly one thread.
  constexpr unsigned NumThreads = 8;
  std::vector<std::vector<uint32_t>> Claimed(NumThreads);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (;;) {
        uint32_t Block = 0;
        for (unsigned ClassIdx = 0; ClassIdx < NumSizeClasses && !Block;
             ++ClassIdx)
          Block = H.claimNeedsSweepBlock(ClassIdx);
        if (!Block)
          return;
        Claimed[T].push_back(Block);
      }
    });
  for (std::thread &T : Threads)
    T.join();

  std::set<uint32_t> Unique;
  uint64_t Total = 0;
  for (const std::vector<uint32_t> &PerThread : Claimed)
    for (uint32_t Block : PerThread) {
      ++Total;
      EXPECT_TRUE(Unique.insert(Block).second)
          << "block " << Block << " claimed twice";
    }
  EXPECT_EQ(Total, Published);
  EXPECT_EQ(H.needsSweepBlockCount(), 0u);

  // Finish the protocol by hand so the heap is coherent again, then let the
  // verifier judge the result.
  Sweeper Engine(H, RT.state());
  for (uint32_t Block : Unique) {
    unsigned ClassIdx = H.block(Block).SizeClassIdx;
    unsigned Shard = H.block(Block).HomeShard;
    Sweeper::Result R;
    std::vector<Heap::CellChain> Freed;
    Engine.sweepClaimedBlock(SweepMode::NonGenerational, 0, Block, R, Freed);
    H.markBlockSwept(Block);
    std::vector<Heap::CellChain> Stash = H.takePendingStash(Block);
    for (const Heap::CellChain &Chain : Freed)
      H.pushFreeChain(ClassIdx, Chain, Shard);
    for (const Heap::CellChain &Chain : Stash)
      H.repushFreeChain(ClassIdx, Chain, Shard);
    H.finishBlockSweep(/*MutatorContext=*/false);
  }
  EXPECT_EQ(H.sweepingBlockCount(), 0u);

  HeapVerifier V(H, RT.state());
  HeapVerifier::Report R = V.run(VerifyScope::Concurrent);
  EXPECT_TRUE(R.clean()) << (R.Violations.empty() ? "" : R.Violations[0]);
}

TEST(LazySweep, VerifierCatchesEpochMismatchAcrossToggle) {
  Runtime RT(lazyManualConfig());
  Heap &H = RT.heap();
  {
    auto M = RT.attachMutator();
    makeGarbage(*M, 2000);
    RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  }
  RT.collector().stop();
  ASSERT_GT(H.needsSweepBlockCount(), 0u);

  HeapVerifier V(H, RT.state());
  // Published under the current epoch: clean.
  HeapVerifier::Report Before = V.run(VerifyScope::Concurrent);
  EXPECT_TRUE(Before.clean())
      << (Before.Violations.empty() ? "" : Before.Violations[0]);

  // A toggle the protocol forbids (the collector always drains residue
  // first) must make every still-published block a stale-epoch violation.
  RT.state().switchAllocationClearColors();
  HeapVerifier::Report After = V.run(VerifyScope::Concurrent);
  EXPECT_FALSE(After.clean());
  bool FoundEpoch = false;
  for (const std::string &Violation : After.Violations)
    if (Violation.find("needs-sweep under epoch") != std::string::npos)
      FoundEpoch = true;
  EXPECT_TRUE(FoundEpoch);

  // Toggle back so the runtime tears down under the published epoch.
  RT.state().switchAllocationClearColors();
}

TEST(LazySweep, ResidueCompletesOnIdleHeap) {
  RuntimeConfig Config = lazyManualConfig();
  Config.Collector.PollMicros = 200; // normal drip cadence
  Runtime RT(Config);
  {
    auto M = RT.attachMutator();
    makeGarbage(*M, 3000);
    RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  }

  // Nobody allocates; the collector's idle drip alone must retire every
  // published block.
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (RT.heap().needsSweepBlockCount() != 0 ||
         RT.heap().sweepingBlockCount() != 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), Deadline)
        << "idle drip never drained the residue";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  MetricsSnapshot M = RT.metrics();
  EXPECT_GT(M.LazyBlocksPublished, 0u);
  EXPECT_GT(M.LazyBlocksResidueSwept, 0u);
}

TEST(LazySweep, MutatorRefillSweepsPublishedBlocksInline) {
  Runtime RT(lazyManualConfig()); // drip suppressed: mutators must sweep
  Heap &H = RT.heap();
  auto M = RT.attachMutator();
  makeGarbage(*M, 4000);
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  ASSERT_GT(H.needsSweepBlockCount(), 0u);

  // Publish drained the central lists, so the next refills find every
  // shard dry and must claim published blocks through the lazy hook.
  uint64_t Before = H.lazyBlocksMutatorSwept();
  makeGarbage(*M, 4000);
  EXPECT_GT(H.lazyBlocksMutatorSwept(), Before);
  EXPECT_GT(RT.metrics().LazyBlocksMutatorSwept, 0u);
  M.reset();
}

TEST(LazySweep, ManyMutatorChurnUnderVerifier) {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 64ull << 20;
  Config.Choice = CollectorChoice::NonGenerational;
  Config.Collector.Sweep = SweepPolicy::Lazy;
  Config.Collector.VerifyHeap = true;
  Config.Collector.GcThreads = 2;
  // Trigger-driven cycles: enough churn to publish, claim and drain many
  // times over.
  Config.Collector.Trigger.YoungBytes = 2ull << 20;
  Config.Collector.Trigger.InitialSoftBytes = 8ull << 20;
  Runtime RT(Config);

  constexpr unsigned NumThreads = 64;
  constexpr int AllocsPerThread = 6000;
  std::atomic<bool> Failed{false};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      auto M = RT.attachMutator();
      // A small per-thread survivor window plus garbage: both claim paths
      // (mutator refill and collector residue) stay busy.
      ObjectRef Window[16] = {};
      for (int I = 0; I < AllocsPerThread; ++I) {
        ObjectRef Ref = M->allocate(1, 8 + (I % 3) * 32);
        if (Ref == NullRef) {
          Failed.store(true);
          break;
        }
        Window[I % 16] = Ref;
        if (I % 8 == 0 && Window[(I + 7) % 16] != NullRef)
          M->writeRef(Ref, 0, Window[(I + 7) % 16]);
        if (unsigned(I % 64) == T % 64)
          M->cooperate();
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_FALSE(Failed.load());

  // One synchronous full cycle so a publish/claim/drain round trips with
  // the verifier armed, then drain-by-hand check: stopping the collector
  // leaves no block mid-sweep.
  {
    auto M = RT.attachMutator();
    RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  }
  RT.collector().stop();
  EXPECT_EQ(RT.heap().sweepingBlockCount(), 0u);
  MetricsSnapshot Snapshot = RT.metrics();
  EXPECT_GT(Snapshot.LazyBlocksPublished, 0u);
}

} // namespace

//===- tests/gc/DlgCollectorTest.cpp ---------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "core/Runtime.h"

using namespace gengc;

namespace {

RuntimeConfig baseConfig() {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 8 << 20;
  Config.Choice = CollectorChoice::NonGenerational;
  Config.Collector.Trigger.YoungBytes = 1ull << 40; // manual cycles only
  Config.Collector.Trigger.InitialSoftBytes = 8 << 20;
  Config.Collector.Trigger.FullFraction = 1.1;
  return Config;
}

TEST(DlgCollector, UsesNonGenerationalBarrier) {
  Runtime RT(baseConfig());
  EXPECT_EQ(RT.state().Barrier.load(), BarrierKind::NonGenerational);
}

TEST(DlgCollector, EveryCycleIsNonGenerational) {
  Runtime RT(baseConfig());
  auto M = RT.attachMutator();
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  GcRunStats S = RT.gcStats();
  ASSERT_EQ(S.Cycles.size(), 2u);
  for (const CycleStats &C : S.Cycles)
    EXPECT_EQ(C.Kind, CycleKind::NonGenerational);
}

TEST(DlgCollector, ColorToggleAlternatesAcrossCycles) {
  Runtime RT(baseConfig());
  auto M = RT.attachMutator();
  Color First = RT.state().allocationColor();
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  Color Second = RT.state().allocationColor();
  EXPECT_EQ(Second, otherToggleColor(First)) << "Remark 5.1 toggle";
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  EXPECT_EQ(RT.state().allocationColor(), First);
}

TEST(DlgCollector, SurvivorsCarryAllocationColorAfterCycle) {
  Runtime RT(baseConfig());
  auto M = RT.attachMutator();
  ObjectRef Obj = M->allocate(1, 16);
  M->pushRoot(Obj);
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  // With the toggle, "black" of the finished cycle is the allocation color
  // that was current during the cycle.
  EXPECT_EQ(RT.heap().loadColor(Obj), RT.state().allocationColor());
  M->popRoots(1);
}

TEST(DlgCollector, ReclaimsGarbageEveryCycle) {
  Runtime RT(baseConfig());
  auto M = RT.attachMutator();
  for (int Cycle = 0; Cycle < 3; ++Cycle) {
    for (int I = 0; I < 1000; ++I)
      M->allocate(1, 24);
    RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
    GcRunStats S = RT.gcStats();
    EXPECT_GE(S.Cycles.back().ObjectsFreed, 1000u)
        << "cycle " << Cycle << " must reclaim the garbage";
  }
}

TEST(DlgCollector, NoCardsEverDirty) {
  Runtime RT(baseConfig());
  auto M = RT.attachMutator();
  ObjectRef A = M->allocate(2, 8);
  ObjectRef B = M->allocate(2, 8);
  M->pushRoot(A);
  M->writeRef(A, 0, B);
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  M->writeRef(A, 1, B);
  EXPECT_EQ(RT.heap().cards().countDirty(), 0u);
  M->popRoots(1);
}

TEST(DlgCollector, GarbageWithCyclesIsReclaimed) {
  Runtime RT(baseConfig());
  auto M = RT.attachMutator();
  // Build a cyclic structure, then drop it: reference counting would leak
  // this; tracing must not.
  ObjectRef A = M->allocate(1, 8);
  ObjectRef B = M->allocate(1, 8);
  M->pushRoot(A);
  M->writeRef(A, 0, B);
  M->writeRef(B, 0, A);
  M->popRoots(1);
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  EXPECT_EQ(RT.heap().loadColor(A), Color::Blue);
  EXPECT_EQ(RT.heap().loadColor(B), Color::Blue);
}

TEST(DlgCollectorDeathTest, RejectsGenerationalTrigger) {
  // Constructing the baseline with a generational trigger is a usage error.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  RuntimeConfig Config = baseConfig();
  EXPECT_DEATH(
      {
        Heap H(Config.Heap);
        CollectorState S;
        MutatorRegistry Registry(S);
        GlobalRoots Roots(H, S);
        CollectorConfig GcConfig = Config.Collector;
        GcConfig.Trigger.Generational = true;
        DlgCollector C(H, S, Registry, Roots, GcConfig);
      },
      "young-generation trigger");
}

} // namespace

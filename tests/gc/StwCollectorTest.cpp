//===- tests/gc/StwCollectorTest.cpp ---------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
//
// The stop-the-world comparator: correctness (liveness/completeness) and
// the defining behavioral contrast with the on-the-fly collectors — the
// mutators actually stop.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <thread>

#include "core/Runtime.h"

using namespace gengc;

namespace {

RuntimeConfig stwConfig() {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 8 << 20;
  Config.Choice = CollectorChoice::StopTheWorld;
  Config.Collector.Trigger.YoungBytes = 1ull << 40;
  Config.Collector.Trigger.InitialSoftBytes = 8 << 20;
  Config.Collector.Trigger.FullFraction = 1.1;
  return Config;
}

TEST(StwCollector, ReachableObjectsSurvive) {
  Runtime RT(stwConfig());
  auto M = RT.attachMutator();
  ObjectRef Head = NullRef;
  size_t Slot = M->pushRoot(NullRef);
  for (int I = 0; I < 1000; ++I) {
    ObjectRef Node = M->allocate(1, 16);
    M->writeRef(Node, 0, Head);
    Head = Node;
    M->setRoot(Slot, Head);
  }
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  unsigned Count = 0;
  for (ObjectRef Node = Head; Node != NullRef; Node = M->readRef(Node, 0)) {
    ASSERT_NE(RT.heap().loadColor(Node), Color::Blue);
    ++Count;
  }
  EXPECT_EQ(Count, 1000u);
  M->popRoots(1);
}

TEST(StwCollector, GarbageIsReclaimedInOneCycle) {
  Runtime RT(stwConfig());
  auto M = RT.attachMutator();
  std::vector<ObjectRef> Garbage;
  for (int I = 0; I < 2000; ++I)
    Garbage.push_back(M->allocate(1, 16));
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  // STW has no floating garbage: everything dead dies immediately.
  for (ObjectRef Ref : Garbage)
    EXPECT_EQ(RT.heap().loadColor(Ref), Color::Blue);
}

TEST(StwCollector, MutatorsRecordRealPauses) {
  Runtime RT(stwConfig());
  auto M = RT.attachMutator();
  // Build a live set so the stopped trace takes measurable time.
  size_t Slot = M->pushRoot(NullRef);
  for (int I = 0; I < 50000; ++I) {
    ObjectRef Node = M->allocate(2, 24);
    M->writeRef(Node, 0, M->root(Slot));
    M->setRoot(Slot, Node);
  }
  ASSERT_EQ(M->pauseStats().Count, 0u);
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  Mutator::PauseStats Pauses = M->pauseStats();
  EXPECT_GE(Pauses.Count, 1u) << "the mutator must have been stopped";
  EXPECT_GT(Pauses.MaxNanos, 0u);
  M->popRoots(1);
}

TEST(StwCollector, OnTheFlyCollectorsNeverStopMutators) {
  for (CollectorChoice Choice : {CollectorChoice::Generational,
                                 CollectorChoice::NonGenerational}) {
    RuntimeConfig Config = stwConfig();
    Config.Choice = Choice;
    Runtime RT(Config);
    auto M = RT.attachMutator();
    size_t Slot = M->pushRoot(NullRef);
    for (int I = 0; I < 50000; ++I) {
      ObjectRef Node = M->allocate(2, 24);
      M->writeRef(Node, 0, M->root(Slot));
      M->setRoot(Slot, Node);
    }
    RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
    // No stop-the-world parks; with manual triggering and a huge young
    // budget there is no allocation throttling either.
    EXPECT_EQ(M->pauseStats().Count, 0u)
        << "on-the-fly collector stopped a mutator";
    M->popRoots(1);
  }
}

TEST(StwCollector, MultithreadedStopAndResume) {
  RuntimeConfig Config = stwConfig();
  Config.Collector.Trigger.InitialSoftBytes = 1 << 20; // autonomous fulls
  Config.Collector.PollMicros = 50;
  Runtime RT(Config);
  constexpr unsigned NumThreads = 3;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&RT, T] {
      auto M = RT.attachMutator();
      size_t Slot = M->pushRoot(NullRef);
      for (int I = 0; I < 100000; ++I) {
        ObjectRef Node = M->allocate(1, 16 + (T * 8) % 48);
        if (I % 3 == 0)
          M->setRoot(Slot, Node);
        M->cooperate();
        if (M->root(Slot) != NullRef) {
          ASSERT_NE(RT.heap().loadColor(M->root(Slot)), Color::Blue);
        }
      }
      M->popRoots(M->numRoots());
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_GT(RT.collector().completedCycles(), 0u);
}

TEST(StwCollector, BlockedThreadsAreHandledByCollector) {
  Runtime RT(stwConfig());
  auto Blockee = RT.attachMutator();
  ObjectRef Kept = Blockee->allocate(1, 16);
  Blockee->pushRoot(Kept);
  std::atomic<bool> Release{false};
  std::thread Parked([&] {
    BlockedScope Scope(*Blockee);
    while (!Release.load(std::memory_order_acquire))
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });

  {
    auto M = RT.attachMutator();
    RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
    // The blocked thread's root survived: the collector shaded it.
    EXPECT_NE(RT.heap().loadColor(Kept), Color::Blue);
  }
  Release.store(true, std::memory_order_release);
  Parked.join();
  Blockee->popRoots(1);
}

} // namespace

//===- tests/gc/RuntimeFacadeTest.cpp --------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
//
// The core/Runtime facade: construction variants, accessor wiring, and the
// configuration fix-ups it performs on behalf of the user.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "core/Runtime.h"

using namespace gengc;

namespace {

TEST(RuntimeFacade, DefaultsMatchThePaper) {
  RuntimeConfig Config;
  EXPECT_EQ(Config.Heap.HeapBytes, 32ull << 20);
  EXPECT_EQ(Config.Heap.CardBytes, 16u);
  EXPECT_EQ(Config.Collector.Trigger.YoungBytes, 4ull << 20);
  EXPECT_EQ(Config.Choice, CollectorChoice::Generational);
  EXPECT_FALSE(Config.Collector.Aging);
}

TEST(RuntimeFacade, AccessorsAreWired) {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 4 << 20;
  Runtime RT(Config);
  EXPECT_EQ(RT.heap().heapBytes(), 4u << 20);
  EXPECT_EQ(RT.globalRoots().size(), 0u);
  EXPECT_EQ(RT.registry().size(), 0u);
  EXPECT_EQ(RT.config().Heap.HeapBytes, 4u << 20);
  EXPECT_EQ(RT.gcStats().Cycles.size(), 0u);
}

TEST(RuntimeFacade, TriggerGenerationalityFollowsChoice) {
  for (auto [Choice, Expected] :
       {std::pair{CollectorChoice::Generational, true},
        std::pair{CollectorChoice::NonGenerational, false},
        std::pair{CollectorChoice::StopTheWorld, false}}) {
    RuntimeConfig Config;
    Config.Heap.HeapBytes = 4 << 20;
    Config.Choice = Choice;
    // Deliberately wrong on purpose: the Runtime must fix it up.
    Config.Collector.Trigger.Generational = !Expected;
    Runtime RT(Config);
    EXPECT_EQ(RT.collector().trigger().policy().Generational, Expected);
  }
}

TEST(RuntimeFacade, AgingAndRemsetsStrippedFromNonGenerational) {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 4 << 20;
  Config.Choice = CollectorChoice::NonGenerational;
  Config.Collector.Aging = true; // would assert inside DlgCollector
  Config.Collector.RememberedSets = true;
  Runtime RT(Config); // must not die
  EXPECT_FALSE(RT.state().UseRememberedSets.load());
}

TEST(RuntimeFacade, AttachedMutatorHasMemoryBackpressure) {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 2 << 20; // tiny: forces the waiter path
  Config.Collector.Trigger.InitialSoftBytes = 2 << 20;
  Runtime RT(Config);
  auto M = RT.attachMutator();
  // 6 MB of garbage through a 2 MB heap only works with the waiter wired.
  for (int I = 0; I < 100000; ++I) {
    M->allocate(1, 40);
    M->cooperate();
  }
  SUCCEED();
}

TEST(RuntimeFacade, BarrierKindMatchesChoice) {
  struct Case {
    CollectorChoice Choice;
    bool Aging;
    BarrierKind Expected;
  } Cases[] = {
      {CollectorChoice::Generational, false, BarrierKind::Simple},
      {CollectorChoice::Generational, true, BarrierKind::Aging},
      {CollectorChoice::NonGenerational, false,
       BarrierKind::NonGenerational},
      {CollectorChoice::StopTheWorld, false,
       BarrierKind::NonGenerational},
  };
  for (const Case &C : Cases) {
    RuntimeConfig Config;
    Config.Heap.HeapBytes = 4 << 20;
    Config.Choice = C.Choice;
    Config.Collector.Aging = C.Aging;
    Runtime RT(Config);
    EXPECT_EQ(RT.state().Barrier.load(), C.Expected);
  }
}

TEST(RuntimeFacadeDeathTest, DestructionWithLiveMutatorAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        RuntimeConfig Config;
        Config.Heap.HeapBytes = 4 << 20;
        auto RT = std::make_unique<Runtime>(Config);
        auto M = RT->attachMutator();
        RT.reset(); // mutator still attached
      },
      "mutators must detach");
}

} // namespace

//===- tests/gc/ColorInvariantTest.cpp --------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
//
// Whole-heap color invariants at collector-idle safe points, per collector
// mode.  These pin the color discipline the paper's correctness argument
// rests on:
//
//   simple generational: live objects are Black (old) or carry a toggle
//                        color (young); Gray may only float transiently.
//   aging:               live objects are Black(age==threshold) or
//                        toggle-colored with age in [1, threshold].
//   DLG baseline:        live objects carry the current allocation color.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "core/Runtime.h"
#include "support/Random.h"

using namespace gengc;

namespace {

RuntimeConfig makeConfig(CollectorChoice Choice, bool Aging,
                         uint8_t OldestAge) {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 8 << 20;
  Config.Choice = Choice;
  Config.Collector.Aging = Aging;
  Config.Collector.OldestAge = OldestAge;
  Config.Collector.Trigger.YoungBytes = 1ull << 40;
  Config.Collector.Trigger.InitialSoftBytes = 8 << 20;
  Config.Collector.Trigger.FullFraction = 1.1;
  return Config;
}

/// Runs a small mutation/collection workload and returns the runtime for
/// inspection at an idle safe point.
void churn(Runtime &RT, Mutator &M, Rng &Rand, int Cycles) {
  constexpr unsigned Roots = 16;
  while (M.numRoots() < Roots)
    M.pushRoot(NullRef);
  for (int C = 0; C < Cycles; ++C) {
    for (int I = 0; I < 500; ++I) {
      ObjectRef Obj = M.allocate(uint32_t(Rand.nextInRange(0, 3)),
                                 uint32_t(Rand.nextInRange(0, 48)));
      if (Rand.nextBool(0.5))
        M.setRoot(size_t(Rand.nextBelow(Roots)), Obj);
    }
    RT.collector().collectSyncCooperating(
        Rand.nextBool(0.25) ? CycleRequest::Full : CycleRequest::Partial,
        M);
  }
}

/// Applies \p Check to the color (and ref) of every non-blue cell.
template <typename Fn> void forEachLive(Heap &H, Fn Check) {
  for (size_t B = 0; B < H.numBlocks(); ++B) {
    const BlockDescriptor &Desc = H.block(B);
    uint64_t Base = uint64_t(B) << Heap::BlockShift;
    if (Desc.State == BlockState::LargeStart) {
      Color C = H.loadColor(ObjectRef(Base));
      if (C != Color::Blue)
        Check(ObjectRef(Base), C);
      continue;
    }
    if (Desc.State != BlockState::SizeClass)
      continue;
    for (uint32_t Cell = 0; Cell < Desc.NumCells; ++Cell) {
      ObjectRef Ref = ObjectRef(Base + uint64_t(Cell) * Desc.CellBytes);
      Color C = H.loadColor(Ref);
      if (C != Color::Blue)
        Check(Ref, C);
    }
  }
}

TEST(ColorInvariant, SimpleGenerationalHeapIsBlackOrToggle) {
  Runtime RT(makeConfig(CollectorChoice::Generational, false, 2));
  auto M = RT.attachMutator();
  Rng Rand(11);
  churn(RT, *M, Rand, 12);
  unsigned Old = 0, Young = 0;
  forEachLive(RT.heap(), [&](ObjectRef, Color C) {
    if (C == Color::Black)
      ++Old;
    else if (isToggleColor(C))
      ++Young;
    else
      FAIL() << "unexpected idle color " << colorName(C);
  });
  EXPECT_GT(Old, 0u) << "promotion must have happened";
  M->popRoots(M->numRoots());
}

TEST(ColorInvariant, AgingHeapRespectsAgeColorCoupling) {
  constexpr uint8_t Threshold = 3;
  Runtime RT(makeConfig(CollectorChoice::Generational, true, Threshold));
  auto M = RT.attachMutator();
  Rng Rand(22);
  churn(RT, *M, Rand, 12);
  forEachLive(RT.heap(), [&](ObjectRef Ref, Color C) {
    uint8_t Age = RT.heap().ages().ageOf(Ref);
    if (C == Color::Black) {
      EXPECT_EQ(Age, Threshold)
          << "idle black objects are exactly the tenured ones";
    } else if (isToggleColor(C)) {
      EXPECT_GE(Age, 1);
      EXPECT_LE(Age, Threshold);
    } else {
      ADD_FAILURE() << "unexpected idle color " << colorName(C);
    }
  });
  M->popRoots(M->numRoots());
}

TEST(ColorInvariant, DlgHeapIsSingleColored) {
  Runtime RT(makeConfig(CollectorChoice::NonGenerational, false, 2));
  auto M = RT.attachMutator();
  Rng Rand(33);
  churn(RT, *M, Rand, 8);
  // Everything alive right after a cycle carries the allocation color (no
  // Black ever exists in the baseline; at most transient Gray floats).
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  Color Alloc = RT.state().allocationColor();
  forEachLive(RT.heap(), [&](ObjectRef, Color C) {
    EXPECT_TRUE(C == Alloc || C == otherToggleColor(Alloc))
        << "unexpected baseline color " << colorName(C);
    EXPECT_NE(C, Color::Black);
  });
  M->popRoots(M->numRoots());
}

TEST(ColorInvariant, ToggleRolesSwapEveryCycleForEveryCollector) {
  for (CollectorChoice Choice : {CollectorChoice::Generational,
                                 CollectorChoice::NonGenerational,
                                 CollectorChoice::StopTheWorld}) {
    Runtime RT(makeConfig(Choice, false, 2));
    auto M = RT.attachMutator();
    for (int I = 0; I < 6; ++I) {
      Color Before = RT.state().allocationColor();
      EXPECT_EQ(RT.state().clearColor(), otherToggleColor(Before));
      RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
      EXPECT_EQ(RT.state().allocationColor(), otherToggleColor(Before));
    }
  }
}

TEST(ColorInvariant, NoGrayOrBlueEscapesToLiveGraphAfterManyCycles) {
  Runtime RT(makeConfig(CollectorChoice::Generational, false, 2));
  auto M = RT.attachMutator();
  Rng Rand(44);
  churn(RT, *M, Rand, 20);
  // Walk the reachable graph: every visited object must be Black or
  // toggle-colored (never Gray at idle, never Blue).
  std::vector<ObjectRef> Work;
  for (size_t I = 0; I < M->numRoots(); ++I)
    if (M->root(I) != NullRef)
      Work.push_back(M->root(I));
  std::set<ObjectRef> Seen(Work.begin(), Work.end());
  while (!Work.empty()) {
    ObjectRef Ref = Work.back();
    Work.pop_back();
    Color C = RT.heap().loadColor(Ref);
    EXPECT_TRUE(C == Color::Black || isToggleColor(C))
        << colorName(C) << " in the live graph at idle";
    for (uint32_t I = 0, E = objectRefSlots(RT.heap(), Ref); I < E; ++I) {
      ObjectRef Son = loadRefSlot(RT.heap(), Ref, I);
      if (Son != NullRef && Seen.insert(Son).second)
        Work.push_back(Son);
    }
  }
  M->popRoots(M->numRoots());
}

} // namespace

//===- tests/gc/WorkerPoolTest.cpp -----------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// The GcWorkerPool and its companions carry the parallel cycle phases, so
// their contracts are pinned down here: lane numbering, reuse across jobs,
// exception propagation, the parallelChunks claiming discipline, and the
// TraceWorkList steal/drain behavior.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>

#include "gc/ParallelTrace.h"
#include "gc/WorkerPool.h"

using namespace gengc;

namespace {

TEST(WorkerPool, StartupAndShutdown) {
  for (unsigned Lanes : {1u, 2u, 4u, 8u}) {
    GcWorkerPool Pool(Lanes);
    EXPECT_EQ(Pool.lanes(), Lanes);
    EXPECT_EQ(Pool.threadCount(), Lanes - 1);
  }
  // Destruction with idle threads must not hang (checked by running at all).
}

TEST(WorkerPool, ZeroLanesClampsToOne) {
  GcWorkerPool Pool(0);
  EXPECT_EQ(Pool.lanes(), 1u);
  EXPECT_EQ(Pool.threadCount(), 0u);
}

TEST(WorkerPool, RunsEveryLaneExactlyOnce) {
  constexpr unsigned Lanes = 4;
  GcWorkerPool Pool(Lanes);
  std::atomic<unsigned> Counts[Lanes] = {};
  Pool.run([&](unsigned Lane) {
    ASSERT_LT(Lane, Lanes);
    Counts[Lane].fetch_add(1);
  });
  for (unsigned Lane = 0; Lane < Lanes; ++Lane)
    EXPECT_EQ(Counts[Lane].load(), 1u) << "lane " << Lane;
}

TEST(WorkerPool, LaneZeroIsTheCaller) {
  GcWorkerPool Pool(3);
  std::thread::id Lane0Id;
  Pool.run([&](unsigned Lane) {
    if (Lane == 0)
      Lane0Id = std::this_thread::get_id();
  });
  EXPECT_EQ(Lane0Id, std::this_thread::get_id());
}

TEST(WorkerPool, SingleLaneSpawnsNoThreads) {
  GcWorkerPool Pool(1);
  EXPECT_EQ(Pool.threadCount(), 0u);
  std::thread::id RunId;
  Pool.run([&](unsigned Lane) {
    EXPECT_EQ(Lane, 0u);
    RunId = std::this_thread::get_id();
  });
  EXPECT_EQ(RunId, std::this_thread::get_id());
}

TEST(WorkerPool, ReusableAcrossManyJobs) {
  GcWorkerPool Pool(4);
  std::atomic<uint64_t> Total{0};
  for (int Job = 0; Job < 100; ++Job)
    Pool.run([&](unsigned) { Total.fetch_add(1); });
  EXPECT_EQ(Total.load(), 400u);
}

TEST(WorkerPool, ExceptionFromWorkerLanePropagates) {
  GcWorkerPool Pool(4);
  EXPECT_THROW(Pool.run([&](unsigned Lane) {
                 if (Lane == 2)
                   throw std::runtime_error("lane 2 failed");
               }),
               std::runtime_error);
  // The pool stays usable after a failed job.
  std::atomic<unsigned> Ran{0};
  Pool.run([&](unsigned) { Ran.fetch_add(1); });
  EXPECT_EQ(Ran.load(), 4u);
}

TEST(WorkerPool, ExceptionFromCallerLanePropagates) {
  GcWorkerPool Pool(2);
  EXPECT_THROW(Pool.run([&](unsigned Lane) {
                 if (Lane == 0)
                   throw std::runtime_error("caller lane failed");
               }),
               std::runtime_error);
  std::atomic<unsigned> Ran{0};
  Pool.run([&](unsigned) { Ran.fetch_add(1); });
  EXPECT_EQ(Ran.load(), 2u);
}

TEST(ParallelChunks, CoversEveryIndexExactlyOnce) {
  GcWorkerPool Pool(4);
  constexpr size_t N = 1013; // deliberately not a multiple of the chunk
  std::vector<std::atomic<unsigned>> Seen(N);
  parallelChunks(Pool, 0, N, 16,
                 [&](unsigned, size_t Begin, size_t End) {
                   for (size_t I = Begin; I != End; ++I)
                     Seen[I].fetch_add(1);
                 });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Seen[I].load(), 1u) << "index " << I;
}

TEST(ParallelChunks, SingleLaneClaimsAscending) {
  GcWorkerPool Pool(1);
  std::vector<size_t> Starts;
  parallelChunks(Pool, 0, 100, 8,
                 [&](unsigned Lane, size_t Begin, size_t End) {
                   EXPECT_EQ(Lane, 0u);
                   EXPECT_LE(End, 100u);
                   Starts.push_back(Begin);
                 });
  ASSERT_EQ(Starts.size(), 13u);
  for (size_t I = 1; I < Starts.size(); ++I)
    EXPECT_EQ(Starts[I], Starts[I - 1] + 8);
}

TEST(ParallelChunks, EmptyRangeRunsNothing) {
  GcWorkerPool Pool(2);
  parallelChunks(Pool, 5, 5, 8,
                 [&](unsigned, size_t, size_t) { FAIL() << "no work exists"; });
}

TEST(TraceWorkList, StealDrainsEverythingPushed) {
  TraceWorkList List;
  EXPECT_TRUE(List.empty());
  size_t Pushed = 0;
  for (int Chunk = 0; Chunk < 5; ++Chunk) {
    std::vector<ObjectRef> Refs;
    for (size_t I = 0; I < TraceWorkList::ChunkRefs; ++I)
      Refs.push_back(ObjectRef(++Pushed * 16));
    List.push(std::move(Refs));
  }
  EXPECT_FALSE(List.empty());
  EXPECT_EQ(List.approxChunks(), 5u);

  std::set<ObjectRef> Stolen;
  std::vector<ObjectRef> Out;
  while (List.steal(Out)) {
    Stolen.insert(Out.begin(), Out.end());
    Out.clear();
  }
  EXPECT_TRUE(List.empty());
  EXPECT_EQ(List.steals(), 5u);
  EXPECT_EQ(Stolen.size(), Pushed);
}

TEST(TraceWorkList, ConcurrentPushersAndStealersLoseNothing) {
  TraceWorkList List;
  constexpr unsigned Pushers = 2, Stealers = 2;
  constexpr size_t ChunksEach = 200;
  std::atomic<size_t> StolenRefs{0};
  std::atomic<unsigned> PushersDone{0};

  std::vector<std::thread> Threads;
  for (unsigned P = 0; P < Pushers; ++P)
    Threads.emplace_back([&, P] {
      for (size_t C = 0; C < ChunksEach; ++C) {
        std::vector<ObjectRef> Refs(TraceWorkList::ChunkRefs,
                                    ObjectRef((P * ChunksEach + C + 1) * 16));
        List.push(std::move(Refs));
      }
      PushersDone.fetch_add(1);
    });
  for (unsigned S = 0; S < Stealers; ++S)
    Threads.emplace_back([&] {
      std::vector<ObjectRef> Out;
      for (;;) {
        if (List.steal(Out)) {
          StolenRefs.fetch_add(Out.size());
          Out.clear();
        } else if (PushersDone.load() == Pushers && List.empty()) {
          return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(StolenRefs.load(),
            size_t(Pushers) * ChunksEach * TraceWorkList::ChunkRefs);
}

} // namespace

//===- tests/gc/WorkerPoolTest.cpp -----------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// The GcWorkerPool and its companions carry the parallel cycle phases, so
// their contracts are pinned down here: lane numbering, reuse across jobs,
// exception propagation, the parallelChunks claiming discipline, and the
// TraceWorkList steal/drain behavior.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>

#include "gc/ParallelTrace.h"
#include "gc/WorkerPool.h"

using namespace gengc;

namespace {

TEST(WorkerPool, StartupAndShutdown) {
  for (unsigned Lanes : {1u, 2u, 4u, 8u}) {
    GcWorkerPool Pool(Lanes);
    EXPECT_EQ(Pool.lanes(), Lanes);
    EXPECT_EQ(Pool.threadCount(), Lanes - 1);
  }
  // Destruction with idle threads must not hang (checked by running at all).
}

TEST(WorkerPool, ZeroLanesClampsToOne) {
  GcWorkerPool Pool(0);
  EXPECT_EQ(Pool.lanes(), 1u);
  EXPECT_EQ(Pool.threadCount(), 0u);
}

TEST(WorkerPool, RunsEveryLaneExactlyOnce) {
  constexpr unsigned Lanes = 4;
  GcWorkerPool Pool(Lanes);
  std::atomic<unsigned> Counts[Lanes] = {};
  Pool.run([&](unsigned Lane) {
    ASSERT_LT(Lane, Lanes);
    Counts[Lane].fetch_add(1);
  });
  for (unsigned Lane = 0; Lane < Lanes; ++Lane)
    EXPECT_EQ(Counts[Lane].load(), 1u) << "lane " << Lane;
}

TEST(WorkerPool, LaneZeroIsTheCaller) {
  GcWorkerPool Pool(3);
  std::thread::id Lane0Id;
  Pool.run([&](unsigned Lane) {
    if (Lane == 0)
      Lane0Id = std::this_thread::get_id();
  });
  EXPECT_EQ(Lane0Id, std::this_thread::get_id());
}

TEST(WorkerPool, SingleLaneSpawnsNoThreads) {
  GcWorkerPool Pool(1);
  EXPECT_EQ(Pool.threadCount(), 0u);
  std::thread::id RunId;
  Pool.run([&](unsigned Lane) {
    EXPECT_EQ(Lane, 0u);
    RunId = std::this_thread::get_id();
  });
  EXPECT_EQ(RunId, std::this_thread::get_id());
}

TEST(WorkerPool, ReusableAcrossManyJobs) {
  GcWorkerPool Pool(4);
  std::atomic<uint64_t> Total{0};
  for (int Job = 0; Job < 100; ++Job)
    Pool.run([&](unsigned) { Total.fetch_add(1); });
  EXPECT_EQ(Total.load(), 400u);
}

TEST(WorkerPool, ExceptionFromWorkerLanePropagates) {
  GcWorkerPool Pool(4);
  EXPECT_THROW(Pool.run([&](unsigned Lane) {
                 if (Lane == 2)
                   throw std::runtime_error("lane 2 failed");
               }),
               std::runtime_error);
  // The pool stays usable after a failed job.
  std::atomic<unsigned> Ran{0};
  Pool.run([&](unsigned) { Ran.fetch_add(1); });
  EXPECT_EQ(Ran.load(), 4u);
}

TEST(WorkerPool, ExceptionFromCallerLanePropagates) {
  GcWorkerPool Pool(2);
  EXPECT_THROW(Pool.run([&](unsigned Lane) {
                 if (Lane == 0)
                   throw std::runtime_error("caller lane failed");
               }),
               std::runtime_error);
  std::atomic<unsigned> Ran{0};
  Pool.run([&](unsigned) { Ran.fetch_add(1); });
  EXPECT_EQ(Ran.load(), 2u);
}

TEST(ParallelChunks, CoversEveryIndexExactlyOnce) {
  GcWorkerPool Pool(4);
  constexpr size_t N = 1013; // deliberately not a multiple of the chunk
  std::vector<std::atomic<unsigned>> Seen(N);
  parallelChunks(Pool, 0, N, 16,
                 [&](unsigned, size_t Begin, size_t End) {
                   for (size_t I = Begin; I != End; ++I)
                     Seen[I].fetch_add(1);
                 });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Seen[I].load(), 1u) << "index " << I;
}

TEST(ParallelChunks, SingleLaneClaimsAscending) {
  GcWorkerPool Pool(1);
  std::vector<size_t> Starts;
  parallelChunks(Pool, 0, 100, 8,
                 [&](unsigned Lane, size_t Begin, size_t End) {
                   EXPECT_EQ(Lane, 0u);
                   EXPECT_LE(End, 100u);
                   Starts.push_back(Begin);
                 });
  ASSERT_EQ(Starts.size(), 13u);
  for (size_t I = 1; I < Starts.size(); ++I)
    EXPECT_EQ(Starts[I], Starts[I - 1] + 8);
}

TEST(ParallelChunks, EmptyRangeRunsNothing) {
  GcWorkerPool Pool(2);
  parallelChunks(Pool, 5, 5, 8,
                 [&](unsigned, size_t, size_t) { FAIL() << "no work exists"; });
}

TEST(TraceWorkList, StealDrainsEverythingPushed) {
  TraceSegmentPool Pool;
  TraceWorkList List;
  EXPECT_TRUE(List.empty());
  size_t Pushed = 0;
  for (int Seg = 0; Seg < 5; ++Seg) {
    TraceSegment *S = Pool.acquire();
    for (size_t I = 0; I < TraceSegment::Capacity; ++I)
      S->Refs[S->Count++] = ObjectRef(++Pushed * 16);
    List.push(S);
  }
  EXPECT_FALSE(List.empty());
  EXPECT_EQ(List.approxSegments(), 5u);

  std::set<ObjectRef> Stolen;
  while (TraceSegment *S = List.steal()) {
    Stolen.insert(S->Refs, S->Refs + S->Count);
    Pool.release(S);
  }
  EXPECT_TRUE(List.empty());
  EXPECT_EQ(List.steals(), 5u);
  EXPECT_EQ(Stolen.size(), Pushed);
}

// The whole point of the segment rework: moving work between lanes is a
// pointer swap.  A stolen segment must be the SAME object that was pushed
// — any reintroduction of per-ref copying (the old vector chunks, or the
// O(n) front-erase offload they forced) breaks this identity check.
TEST(TraceWorkList, StealIsZeroCopyPointerIdentity) {
  TraceSegmentPool Pool;
  TraceWorkList List;
  TraceSegment *A = Pool.acquire();
  TraceSegment *B = Pool.acquire();
  A->Refs[A->Count++] = ObjectRef(16);
  B->Refs[B->Count++] = ObjectRef(32);
  const ObjectRef *APayload = A->Refs;
  List.push(A);
  List.push(B);
  // LIFO: B back first, then A — each by identity, payload untouched.
  EXPECT_EQ(List.steal(), B);
  TraceSegment *StolenA = List.steal();
  EXPECT_EQ(StolenA, A);
  EXPECT_EQ(StolenA->Refs, APayload);
  EXPECT_EQ(StolenA->Count, 1u);
  EXPECT_EQ(StolenA->Refs[0], ObjectRef(16));
  EXPECT_EQ(List.steal(), nullptr);
  Pool.release(A);
  Pool.release(B);
}

TEST(TraceWorkList, StealsCounterIsLockFreeToRead) {
  // steals() is read by mid-cycle stats snapshots and must not serialize
  // against the lanes' push/steal traffic (it used to take the list
  // mutex).  Read it concurrently with a push/steal storm: the atomic
  // counter only moves forward.
  TraceSegmentPool Pool;
  TraceWorkList List;
  std::atomic<bool> Stop{false};
  std::thread Churn([&] {
    while (!Stop.load()) {
      TraceSegment *S = Pool.acquire();
      S->Refs[S->Count++] = ObjectRef(16);
      List.push(S);
      if (TraceSegment *T = List.steal())
        Pool.release(T);
    }
  });
  uint64_t Last = 0;
  for (int I = 0; I < 10000; ++I) {
    uint64_t Now = List.steals();
    EXPECT_GE(Now, Last);
    Last = Now;
  }
  Stop.store(true);
  Churn.join();
}

TEST(TraceWorkList, ConcurrentPushersAndStealersLoseNothing) {
  TraceSegmentPool Pool;
  TraceWorkList List;
  constexpr unsigned Pushers = 2, Stealers = 2;
  constexpr size_t SegmentsEach = 200;
  std::atomic<size_t> StolenRefs{0};
  std::atomic<unsigned> PushersDone{0};

  std::vector<std::thread> Threads;
  for (unsigned P = 0; P < Pushers; ++P)
    Threads.emplace_back([&, P] {
      for (size_t C = 0; C < SegmentsEach; ++C) {
        TraceSegment *S = Pool.acquire();
        for (size_t I = 0; I < TraceSegment::Capacity; ++I)
          S->Refs[S->Count++] = ObjectRef((P * SegmentsEach + C + 1) * 16);
        List.push(S);
      }
      PushersDone.fetch_add(1);
    });
  for (unsigned S = 0; S < Stealers; ++S)
    Threads.emplace_back([&] {
      for (;;) {
        if (TraceSegment *Seg = List.steal()) {
          StolenRefs.fetch_add(Seg->Count);
          Pool.release(Seg);
        } else if (PushersDone.load() == Pushers && List.empty()) {
          return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(StolenRefs.load(),
            size_t(Pushers) * SegmentsEach * TraceSegment::Capacity);
}

} // namespace

//===- tests/gc/DeterminismTest.cpp ----------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// Behavior-preservation proof for the parallel-engine refactor: with
// GcThreads = 1 the phase pipeline must execute the historical
// single-threaded algorithms bit-identically.  A fixed-seed workload that
// only mutates between cycles is run twice; every per-cycle statistic that
// reflects *what the collector did* (trace, card scan, sweep, promotion
// counts) must match exactly between the runs.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "core/Runtime.h"
#include "support/Random.h"

using namespace gengc;

namespace {

RuntimeConfig deterministicConfig(CollectorChoice Choice, bool Aging) {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 16ull << 20;
  Config.Heap.CardBytes = 16;
  Config.Choice = Choice;
  Config.Collector.GcThreads = 1;
  Config.Collector.Aging = Aging;
  Config.Collector.OldestAge = 3;
  // The trigger must never fire on its own: cycles happen only where the
  // workload requests them, so both runs see identical request points.
  Config.Collector.Trigger.YoungBytes = 1ull << 40;
  Config.Collector.Trigger.InitialSoftBytes = 8ull << 20;
  Config.Collector.Trigger.FullFraction = 1.1;
  return Config;
}

/// One deterministic workload: fixed-seed graph churn on a single mutator,
/// with collections requested at fixed operation counts.  The mutator does
/// not allocate while a cycle runs (collectSyncCooperating only polls), so
/// the object graph at each cycle is a pure function of the seed.
GcRunStats runWorkload(CollectorChoice Choice, bool Aging,
                       bool Tracing = false, int PrefetchDepth = -1) {
  RuntimeConfig Config = deterministicConfig(Choice, Aging);
  Config.Collector.Obs.Tracing = Tracing;
  if (PrefetchDepth >= 0)
    Config.Collector.PrefetchDepth = unsigned(PrefetchDepth);
  Runtime RT(Config);
  auto M = RT.attachMutator();
  Rng Rand(0xD37E12);
  constexpr unsigned Ring = 48;
  for (unsigned I = 0; I < Ring; ++I)
    M->pushRoot(NullRef);

  bool Partial = false;
  for (uint64_t Op = 0; Op < 30000; ++Op) {
    unsigned Slot = unsigned(Rand.nextBelow(Ring));
    switch (Rand.nextBelow(5)) {
    case 0:
    case 1: {
      ObjectRef Node = M->allocate(2, uint32_t(Rand.nextInRange(8, 64)));
      M->writeRef(Node, 0, M->root(Slot));
      M->setRoot(Slot, Node);
      break;
    }
    case 2:
      M->setRoot(Slot, NullRef);
      break;
    case 3: {
      ObjectRef A = M->root(Slot);
      if (A != NullRef)
        M->writeRef(A, 1, M->root(unsigned(Rand.nextBelow(Ring))));
      break;
    }
    case 4:
      break; // breathing room, keeps the op mix seed-stable
    }
    if (Op % 5000 == 4999) {
      RT.collector().collectSyncCooperating(
          Partial ? CycleRequest::Partial : CycleRequest::Full, *M);
      Partial = !Partial;
    }
  }
  M->popRoots(M->numRoots());
  return RT.gcStats();
}

struct DeterminismParam {
  CollectorChoice Choice;
  bool Aging;
  const char *Name;
};

class DeterminismTest : public ::testing::TestWithParam<DeterminismParam> {};

/// Every per-cycle statistic that reflects what the collector *did* must
/// match exactly between \p First and \p Second.
void expectIdenticalCollectionStats(const GcRunStats &First,
                                    const GcRunStats &Second) {
  ASSERT_EQ(First.Cycles.size(), Second.Cycles.size());
  ASSERT_EQ(First.Cycles.size(), 6u);
  for (size_t I = 0; I < First.Cycles.size(); ++I) {
    const CycleStats &A = First.Cycles[I];
    const CycleStats &B = Second.Cycles[I];
    SCOPED_TRACE("cycle " + std::to_string(I));
    EXPECT_EQ(A.Kind, B.Kind);
    EXPECT_EQ(A.GcWorkers, 1u);
    EXPECT_EQ(A.ObjectsTraced, B.ObjectsTraced);
    EXPECT_EQ(A.BytesTraced, B.BytesTraced);
    EXPECT_EQ(A.YoungSurvivors, B.YoungSurvivors);
    EXPECT_EQ(A.YoungSurvivorBytes, B.YoungSurvivorBytes);
    EXPECT_EQ(A.DirtyCardsAtStart, B.DirtyCardsAtStart);
    EXPECT_EQ(A.OldObjectsScanned, B.OldObjectsScanned);
    EXPECT_EQ(A.CardScanAreaBytes, B.CardScanAreaBytes);
    EXPECT_EQ(A.CardsRemarked, B.CardsRemarked);
    EXPECT_EQ(A.SummaryChunksScanned, B.SummaryChunksScanned);
    EXPECT_EQ(A.CardsSkippedBySummary, B.CardsSkippedBySummary);
    EXPECT_EQ(A.ObjectsFreed, B.ObjectsFreed);
    EXPECT_EQ(A.BytesFreed, B.BytesFreed);
    EXPECT_EQ(A.LiveObjectsAfter, B.LiveObjectsAfter);
    EXPECT_EQ(A.LiveBytesAfter, B.LiveBytesAfter);
    EXPECT_EQ(A.LiveEstimateBytes, B.LiveEstimateBytes);
    EXPECT_EQ(A.TraceSteals, 0u);
    EXPECT_EQ(B.TraceSteals, 0u);
  }
}

TEST_P(DeterminismTest, IdenticalStatsAcrossRunsAtOneGcThread) {
  GcRunStats First = runWorkload(GetParam().Choice, GetParam().Aging);
  GcRunStats Second = runWorkload(GetParam().Choice, GetParam().Aging);
  expectIdenticalCollectionStats(First, Second);
}

TEST_P(DeterminismTest, TracingDoesNotPerturbCollection) {
  // Event tracing must be purely observational: the same workload with the
  // rings enabled produces bit-identical collection statistics.
  GcRunStats Off = runWorkload(GetParam().Choice, GetParam().Aging,
                               /*Tracing=*/false);
  GcRunStats On = runWorkload(GetParam().Choice, GetParam().Aging,
                              /*Tracing=*/true);
  expectIdenticalCollectionStats(Off, On);
}

TEST_P(DeterminismTest, PrefetchWindowDoesNotPerturbCollection) {
  // The software-prefetch window reorders the gray-stack traversal (FIFO
  // within the window instead of pure LIFO) but the traced SET is fixed by
  // the color CAS, so every collection statistic — all order-independent
  // sums — must be bit-identical at depth 0 (the exact historical loop),
  // the default depth, and the maximum window.
  GcRunStats Off = runWorkload(GetParam().Choice, GetParam().Aging,
                               /*Tracing=*/false, /*PrefetchDepth=*/0);
  GcRunStats Default = runWorkload(GetParam().Choice, GetParam().Aging);
  GcRunStats Wide =
      runWorkload(GetParam().Choice, GetParam().Aging, /*Tracing=*/false,
                  /*PrefetchDepth=*/int(Tracer::MaxPrefetchDepth));
  expectIdenticalCollectionStats(Off, Default);
  expectIdenticalCollectionStats(Off, Wide);
}

INSTANTIATE_TEST_SUITE_P(
    Collectors, DeterminismTest,
    ::testing::Values(
        DeterminismParam{CollectorChoice::Generational, false, "GenSimple"},
        DeterminismParam{CollectorChoice::Generational, true, "GenAging"},
        DeterminismParam{CollectorChoice::NonGenerational, false, "Dlg"}),
    [](const auto &Info) { return std::string(Info.param.Name); });

} // namespace

//===- tests/gc/CardScanModeTest.cpp ---------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// The two-level card scan is a pure cost optimization: with GcThreads = 1 a
// fixed-seed workload must report bit-identical *semantic* per-cycle
// statistics whether the scan walks dirty summary chunks over allocated
// block ranges or linearly walks [0, numCards).  Only the cost counters
// (SummaryChunksScanned, CardsSkippedBySummary, page touches) may differ —
// the filter changes what the collector reads, never what it concludes.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "core/Runtime.h"
#include "support/Random.h"

using namespace gengc;

namespace {

RuntimeConfig modeConfig(bool Aging, bool SummaryScan) {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 16ull << 20;
  Config.Heap.CardBytes = 16;
  Config.Choice = CollectorChoice::Generational;
  Config.Collector.GcThreads = 1;
  Config.Collector.Aging = Aging;
  Config.Collector.OldestAge = 3;
  Config.Collector.CardSummaryScan = SummaryScan;
  // Cycles only where the workload requests them (see DeterminismTest).
  Config.Collector.Trigger.YoungBytes = 1ull << 40;
  Config.Collector.Trigger.InitialSoftBytes = 8ull << 20;
  Config.Collector.Trigger.FullFraction = 1.1;
  return Config;
}

/// Same deterministic workload shape as DeterminismTest: fixed-seed graph
/// churn on one mutator, cycles at fixed operation counts, ending with
/// several partial collections so the card scan actually runs.
GcRunStats runWorkload(bool Aging, bool SummaryScan) {
  Runtime RT(modeConfig(Aging, SummaryScan));
  auto M = RT.attachMutator();
  Rng Rand(0x5CA9);
  constexpr unsigned Ring = 48;
  for (unsigned I = 0; I < Ring; ++I)
    M->pushRoot(NullRef);

  bool Partial = false;
  for (uint64_t Op = 0; Op < 24000; ++Op) {
    unsigned Slot = unsigned(Rand.nextBelow(Ring));
    switch (Rand.nextBelow(4)) {
    case 0:
    case 1: {
      ObjectRef Node = M->allocate(2, uint32_t(Rand.nextInRange(8, 64)));
      M->writeRef(Node, 0, M->root(Slot));
      M->setRoot(Slot, Node);
      break;
    }
    case 2: {
      ObjectRef A = M->root(Slot);
      if (A != NullRef)
        M->writeRef(A, 1, M->root(unsigned(Rand.nextBelow(Ring))));
      break;
    }
    case 3:
      break;
    }
    if (Op % 4000 == 3999) {
      RT.collector().collectSyncCooperating(
          Partial ? CycleRequest::Partial : CycleRequest::Full, *M);
      Partial = !Partial;
    }
  }
  M->popRoots(M->numRoots());
  return RT.gcStats();
}

class CardScanModeTest : public ::testing::TestWithParam<bool> {};

TEST_P(CardScanModeTest, SummaryScanChangesCostNotOutcomes) {
  bool Aging = GetParam();
  GcRunStats Summary = runWorkload(Aging, /*SummaryScan=*/true);
  GcRunStats Linear = runWorkload(Aging, /*SummaryScan=*/false);

  ASSERT_EQ(Summary.Cycles.size(), Linear.Cycles.size());
  ASSERT_EQ(Summary.Cycles.size(), 6u);
  bool SawSkips = false;
  for (size_t I = 0; I < Summary.Cycles.size(); ++I) {
    const CycleStats &A = Summary.Cycles[I];
    const CycleStats &B = Linear.Cycles[I];
    SCOPED_TRACE("cycle " + std::to_string(I));
    EXPECT_EQ(A.Kind, B.Kind);
    // Semantic outcomes: identical card set, identical scan conclusions,
    // identical trace and sweep results.
    EXPECT_EQ(A.DirtyCardsAtStart, B.DirtyCardsAtStart);
    EXPECT_EQ(A.OldObjectsScanned, B.OldObjectsScanned);
    EXPECT_EQ(A.CardScanAreaBytes, B.CardScanAreaBytes);
    EXPECT_EQ(A.CardsRemarked, B.CardsRemarked);
    EXPECT_EQ(A.ObjectsTraced, B.ObjectsTraced);
    EXPECT_EQ(A.BytesTraced, B.BytesTraced);
    EXPECT_EQ(A.YoungSurvivors, B.YoungSurvivors);
    EXPECT_EQ(A.YoungSurvivorBytes, B.YoungSurvivorBytes);
    EXPECT_EQ(A.ObjectsFreed, B.ObjectsFreed);
    EXPECT_EQ(A.BytesFreed, B.BytesFreed);
    EXPECT_EQ(A.LiveObjectsAfter, B.LiveObjectsAfter);
    EXPECT_EQ(A.LiveBytesAfter, B.LiveBytesAfter);
    // Cost counters: the fallback has no summary level at all.
    EXPECT_EQ(B.SummaryChunksScanned, 0u);
    EXPECT_EQ(B.CardsSkippedBySummary, 0u);
    if (A.Kind == CycleKind::Partial) {
      // A 16 MB heap holds 1M cards and the workload's live set is small:
      // the filter must be skipping nearly all of them.
      EXPECT_GT(A.CardsSkippedBySummary, 0u);
      SawSkips = true;
      if (A.DirtyCardsAtStart > 0) {
        EXPECT_GT(A.SummaryChunksScanned, 0u);
      }
    }
  }
  EXPECT_TRUE(SawSkips) << "no partial cycle exercised the summary path";
}

INSTANTIATE_TEST_SUITE_P(Barriers, CardScanModeTest, ::testing::Bool(),
                         [](const auto &Info) {
                           return Info.param ? "Aging" : "Simple";
                         });

} // namespace

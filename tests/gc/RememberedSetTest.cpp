//===- tests/gc/RememberedSetTest.cpp --------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
//
// The remembered-set alternative to card marking (Section 3.1): identical
// generational semantics, different inter-generational bookkeeping.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "core/Runtime.h"

using namespace gengc;

namespace {

RuntimeConfig remsetConfig() {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 8 << 20;
  Config.Choice = CollectorChoice::Generational;
  Config.Collector.RememberedSets = true;
  Config.Collector.Trigger.YoungBytes = 1ull << 40;
  Config.Collector.Trigger.InitialSoftBytes = 8 << 20;
  Config.Collector.Trigger.FullFraction = 1.1;
  return Config;
}

ObjectRef makeOld(Runtime &RT, Mutator &M) {
  ObjectRef Obj = M.allocate(2, 8);
  size_t Slot = M.pushRoot(Obj);
  RT.collector().collectSyncCooperating(CycleRequest::Partial, M);
  EXPECT_EQ(RT.heap().loadColor(Obj), Color::Black);
  M.popRoots(M.numRoots() - Slot);
  return Obj;
}

TEST(RememberedSet, ModeIsActive) {
  Runtime RT(remsetConfig());
  EXPECT_TRUE(RT.state().UseRememberedSets.load());
}

TEST(RememberedSet, NoCardsAreEverDirtied) {
  Runtime RT(remsetConfig());
  auto M = RT.attachMutator();
  ObjectRef A = M->allocate(2, 8);
  ObjectRef B = M->allocate(0, 8);
  M->writeRef(A, 0, B);
  EXPECT_EQ(RT.heap().cards().countDirty(), 0u);
}

TEST(RememberedSet, BarrierSetsFlagOncePerObject) {
  Runtime RT(remsetConfig());
  auto M = RT.attachMutator();
  ObjectRef A = M->allocate(2, 8);
  ObjectRef B = M->allocate(0, 8);
  M->writeRef(A, 0, B);
  EXPECT_EQ(RT.heap().rememberedFlags().entryFor(A).load(), 1);
  M->writeRef(A, 1, B); // second store: flag already set, no new entry
  std::vector<ObjectRef> Entries;
  RT.state().Remembered.drainTo(Entries);
  EXPECT_EQ(Entries, std::vector<ObjectRef>{A});
  RT.state().Remembered.pushMany(Entries); // restore for the collector
}

TEST(RememberedSet, InterGenerationalPointerKeepsYoungAlive) {
  Runtime RT(remsetConfig());
  auto M = RT.attachMutator();
  ObjectRef Old = makeOld(RT, *M);
  ObjectRef Young = M->allocate(0, 8);
  M->writeRef(Old, 0, Young);
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  EXPECT_NE(RT.heap().loadColor(Young), Color::Blue);
  EXPECT_EQ(M->readRef(Old, 0), Young);
}

TEST(RememberedSet, FlagsAreClearedByPartialCollection) {
  Runtime RT(remsetConfig());
  auto M = RT.attachMutator();
  ObjectRef Old = makeOld(RT, *M);
  ObjectRef Young = M->allocate(0, 8);
  M->writeRef(Old, 0, Young);
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  EXPECT_EQ(RT.heap().rememberedFlags().entryFor(Old).load(), 0)
      << "the drained object can be re-recorded next cycle";
}

TEST(RememberedSet, SeveredPointerLetsYoungDie) {
  Runtime RT(remsetConfig());
  auto M = RT.attachMutator();
  ObjectRef Old = makeOld(RT, *M);
  ObjectRef Young = M->allocate(0, 8);
  M->writeRef(Old, 0, Young);
  M->writeRef(Old, 0, NullRef);
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  EXPECT_EQ(RT.heap().loadColor(Young), Color::Blue);
}

TEST(RememberedSet, ChainThroughOldSurvives) {
  Runtime RT(remsetConfig());
  auto M = RT.attachMutator();
  ObjectRef Old = makeOld(RT, *M);
  ObjectRef Y1 = M->allocate(1, 8), Y2 = M->allocate(0, 8);
  M->writeRef(Y1, 0, Y2);
  M->writeRef(Old, 0, Y1);
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  EXPECT_EQ(RT.heap().loadColor(Y1), Color::Black);
  EXPECT_EQ(RT.heap().loadColor(Y2), Color::Black);
}

TEST(RememberedSet, FullCollectionResetsTheSet) {
  Runtime RT(remsetConfig());
  auto M = RT.attachMutator();
  ObjectRef Old = makeOld(RT, *M);
  ObjectRef Young = M->allocate(0, 8);
  M->pushRoot(Young); // keep it reachable through the full collection
  M->writeRef(Old, 0, Young);
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  EXPECT_EQ(RT.heap().rememberedFlags().entryFor(Old).load(), 0);
  EXPECT_NE(RT.heap().loadColor(Young), Color::Blue);
  M->popRoots(M->numRoots());
}

TEST(RememberedSet, SurvivesManyMixedCycles) {
  Runtime RT(remsetConfig());
  auto M = RT.attachMutator();
  ObjectRef Old = makeOld(RT, *M);
  M->pushRoot(Old); // keep the parent live through the full collections
  for (int I = 0; I < 20; ++I) {
    ObjectRef Young = M->allocate(0, 8);
    M->writeRef(Old, 0, Young);
    RT.collector().collectSyncCooperating(
        I % 5 == 4 ? CycleRequest::Full : CycleRequest::Partial, *M);
    ASSERT_NE(RT.heap().loadColor(Young), Color::Blue) << "cycle " << I;
    ASSERT_EQ(M->readRef(Old, 0), Young);
  }
  M->popRoots(M->numRoots());
}

TEST(RememberedSetDeathTest, RejectsAgingCombination) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        RuntimeConfig Config = remsetConfig();
        Config.Collector.Aging = true;
        Config.Collector.OldestAge = 4;
        Runtime RT(Config);
      },
      "simple promotion only");
}

} // namespace
